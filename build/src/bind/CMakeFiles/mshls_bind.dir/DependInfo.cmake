
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bind/area_report.cpp" "src/bind/CMakeFiles/mshls_bind.dir/area_report.cpp.o" "gcc" "src/bind/CMakeFiles/mshls_bind.dir/area_report.cpp.o.d"
  "/root/repo/src/bind/binding.cpp" "src/bind/CMakeFiles/mshls_bind.dir/binding.cpp.o" "gcc" "src/bind/CMakeFiles/mshls_bind.dir/binding.cpp.o.d"
  "/root/repo/src/bind/registers.cpp" "src/bind/CMakeFiles/mshls_bind.dir/registers.cpp.o" "gcc" "src/bind/CMakeFiles/mshls_bind.dir/registers.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mshls_common.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/mshls_model.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/mshls_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/modulo/CMakeFiles/mshls_modulo.dir/DependInfo.cmake"
  "/root/repo/build/src/fds/CMakeFiles/mshls_fds.dir/DependInfo.cmake"
  "/root/repo/build/src/dfg/CMakeFiles/mshls_dfg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
