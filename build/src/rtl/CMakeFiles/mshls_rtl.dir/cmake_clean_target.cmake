file(REMOVE_RECURSE
  "libmshls_rtl.a"
)
