#include "report/experiment_report.h"

#include "common/text_table.h"

namespace mshls {
namespace {

std::string ProfileString(const std::vector<int>& profile) {
  std::string out;
  for (std::size_t i = 0; i < profile.size(); ++i) {
    if (i) out += " ";
    out += std::to_string(profile[i]);
  }
  return out;
}

}  // namespace

std::string RenderTable1(const SystemModel& model,
                         const CoupledResult& result) {
  const ResourceLibrary& lib = model.library();
  TextTable table;
  table.SetHeader({"type", "process", "authorization A_p(tau)", "#insts"});
  table.AlignRight(3);

  for (const ResourceType& t : lib.types()) {
    const GlobalTypeAllocation* pool = result.allocation.FindGlobal(t.id);
    if (pool != nullptr) {
      table.AddRule();
      for (std::size_t u = 0; u < pool->users.size(); ++u) {
        table.AddRow({u == 0 ? t.name : "",
                      model.process(pool->users[u]).name,
                      ProfileString(pool->authorization[u]), ""});
      }
      table.AddRow({"", "all (sum, G)", ProfileString(pool->profile),
                    std::to_string(pool->instances)});
    } else {
      table.AddRule();
      bool first = true;
      int total = 0;
      for (const Process& p : model.processes()) {
        const int n = result.allocation.local[p.id.index()][t.id.index()];
        if (n == 0) continue;
        table.AddRow({first ? t.name : "", p.name, "(local)",
                      std::to_string(n)});
        total += n;
        first = false;
      }
      if (!first)
        table.AddRow({"", "all", "", std::to_string(total)});
    }
  }
  return table.Render();
}

std::string SummarizeAllocation(const SystemModel& model,
                                const Allocation& allocation) {
  const ResourceLibrary& lib = model.library();
  std::string out;
  for (const ResourceType& t : lib.types()) {
    const int n = allocation.TotalInstances(t.id);
    if (n == 0) continue;
    if (!out.empty()) out += " ";
    out += t.name + "=" + std::to_string(n);
  }
  out += " area=" + std::to_string(allocation.TotalArea(lib));
  return out;
}

std::string AllocationCsv(const SystemModel& model,
                          const Allocation& allocation) {
  const ResourceLibrary& lib = model.library();
  std::string out = "type,process,scope,instances\n";
  for (const ResourceType& t : lib.types()) {
    if (const GlobalTypeAllocation* pool = allocation.FindGlobal(t.id)) {
      out += t.name + ",all,global," + std::to_string(pool->instances) +
             "\n";
    }
    for (const Process& p : model.processes()) {
      const int n = allocation.local[p.id.index()][t.id.index()];
      if (n == 0) continue;
      out += t.name + "," + p.name + ",local," + std::to_string(n) + "\n";
    }
  }
  out += "area,,," + std::to_string(allocation.TotalArea(lib)) + "\n";
  return out;
}

std::string RenderAreaBreakdown(const AreaBreakdown& area) {
  TextTable table;
  table.SetHeader({"component", "count", "area"});
  table.AlignRight(1);
  table.AlignRight(2);
  table.AddRow({"functional units", "", std::to_string(area.fu_area)});
  table.AddRow({"registers", std::to_string(area.register_count),
                FormatDouble(area.register_area, 2)});
  table.AddRow({"mux (2:1 slices)", std::to_string(area.mux2_count),
                FormatDouble(area.mux_area, 2)});
  table.AddRule();
  table.AddRow({"total", "", FormatDouble(area.total_area, 2)});
  return table.Render();
}

}  // namespace mshls
