#include <gtest/gtest.h>

#include "modulo/assignment_search.h"
#include "workloads/benchmarks.h"
#include "workloads/paper_system.h"

namespace mshls {
namespace {

class AssignmentSearchTest : public ::testing::Test {
 protected:
  SystemModel model_;
  PaperTypes types_ = AddPaperTypes(model_.library());

  ProcessId AddProcessOf(const std::string& name, int adds, int mults,
                         int range) {
    DataFlowGraph g;
    for (int i = 0; i < adds; ++i)
      g.AddOp(types_.add, name + "_a" + std::to_string(i));
    for (int i = 0; i < mults; ++i)
      g.AddOp(types_.mult, name + "_m" + std::to_string(i));
    EXPECT_TRUE(g.Validate().ok());
    const ProcessId p = model_.AddProcess(name, range);
    model_.AddBlock(p, name + "_main", std::move(g), range);
    return p;
  }
};

TEST_F(AssignmentSearchTest, PrefersSharingWhenItSavesArea) {
  // Two low-utilization processes: sharing the multiplier saves 4 area
  // units, sharing the adder saves 1.
  AddProcessOf("p1", 2, 1, 8);
  AddProcessOf("p2", 2, 1, 8);
  ASSERT_TRUE(model_.Validate().ok());
  // Exhaustive referee: assert the full enumeration is scheduled. The
  // harmonic default may prune masks against the probe's area floor; its
  // winner identity is covered by HarmonicSearchMatchesExhaustive below.
  AssignmentSearchOptions options;
  options.configurator = PeriodConfigurator::kExhaustive;
  auto result = SearchAssignments(model_, CoupledParams{}, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().combinations, 4);  // 2 shareable types
  EXPECT_EQ(result.value().evaluated, 4);
  for (const AssignmentChoice& c : result.value().choices) {
    EXPECT_TRUE(c.global) << model_.library().type(c.type).name;
    EXPECT_EQ(c.period, 8);  // gcd of the deadlines
  }
  // area: 1 adder + 1 mult = 5 vs all-local 2 + 8 = 10.
  EXPECT_EQ(result.value().area, 5);
}

TEST_F(AssignmentSearchTest, ModelLeftConfiguredWithWinner) {
  AddProcessOf("p1", 1, 1, 6);
  AddProcessOf("p2", 1, 1, 6);
  ASSERT_TRUE(model_.Validate().ok());
  auto result = SearchAssignments(model_, CoupledParams{});
  ASSERT_TRUE(result.ok());
  for (const AssignmentChoice& c : result.value().choices)
    EXPECT_EQ(model_.is_global(c.type), c.global);
}

TEST_F(AssignmentSearchTest, TypeUsedByOneProcessIsNotShareable) {
  AddProcessOf("p1", 2, 0, 6);
  AddProcessOf("p2", 2, 1, 6);  // only p2 multiplies
  ASSERT_TRUE(model_.Validate().ok());
  auto result = SearchAssignments(model_, CoupledParams{});
  ASSERT_TRUE(result.ok());
  // Only the adder is shareable.
  ASSERT_EQ(result.value().choices.size(), 1u);
  EXPECT_EQ(result.value().choices[0].type, types_.add);
  EXPECT_FALSE(model_.is_global(types_.mult));
}

TEST_F(AssignmentSearchTest, NoShareableTypesIsAnError) {
  AddProcessOf("p1", 1, 0, 4);
  ASSERT_TRUE(model_.Validate().ok());
  auto result = SearchAssignments(model_, CoupledParams{});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(AssignmentSearchTest, EvaluationCapRespected) {
  AddProcessOf("p1", 2, 1, 8);
  AddProcessOf("p2", 2, 1, 8);
  ASSERT_TRUE(model_.Validate().ok());
  AssignmentSearchOptions options;
  options.configurator = PeriodConfigurator::kExhaustive;
  options.max_evaluations = 2;
  auto result = SearchAssignments(model_, CoupledParams{}, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().evaluated, 2);
}

TEST_F(AssignmentSearchTest, SearchNeverWorseThanAllLocal) {
  // The all-local combination (mask 0) is part of the search space, so
  // the winner's area is a lower bound of it.
  AddProcessOf("p1", 3, 2, 10);
  AddProcessOf("p2", 1, 1, 10);
  AddProcessOf("p3", 2, 1, 20);
  ASSERT_TRUE(model_.Validate().ok());

  // All-local area first.
  CoupledParams params;
  params.mode = GlobalForceMode::kIgnoreGlobal;
  CoupledScheduler local(model_, params);
  auto local_run = local.Run();
  ASSERT_TRUE(local_run.ok());
  const int local_area =
      local_run.value().allocation.TotalArea(model_.library());

  auto result = SearchAssignments(model_, CoupledParams{});
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result.value().area, local_area);
}

TEST_F(AssignmentSearchTest, PaperSystemSharesTheExpensiveTypes) {
  // On the paper system the search explores all 8 scope combinations.
  // With its gcd-period heuristic (sub period 15 instead of the paper's
  // common 5) the exact winner may differ in the cheap subtracter, but the
  // expensive multiplier must be shared and the area must match or beat
  // the paper's hand assignment (17).
  PaperSystem sys = BuildPaperSystem();
  auto result = SearchAssignments(sys.model, CoupledParams{});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().combinations, 8);
  bool mult_global = false;
  int global_count = 0;
  for (const AssignmentChoice& c : result.value().choices) {
    global_count += c.global ? 1 : 0;
    if (c.type == sys.types.mult) mult_global = c.global;
  }
  EXPECT_TRUE(mult_global);
  EXPECT_GE(global_count, 2);
  EXPECT_LE(result.value().area, 17);
}

TEST_F(AssignmentSearchTest, HarmonicSearchMatchesExhaustive) {
  // Differential referee for the harmonic configurator's per-mask area
  // lower-bound prune: identical winner (choices, periods, area), and
  // pruned masks strictly account for the evaluation savings.
  AddProcessOf("p1", 2, 1, 8);
  AddProcessOf("p2", 2, 1, 8);
  ASSERT_TRUE(model_.Validate().ok());
  SystemModel harmonic_model = model_;
  AssignmentSearchOptions exhaustive_options;
  exhaustive_options.configurator = PeriodConfigurator::kExhaustive;
  auto exhaustive = SearchAssignments(model_, CoupledParams{},
                                      exhaustive_options);
  ASSERT_TRUE(exhaustive.ok());
  auto harmonic = SearchAssignments(harmonic_model, CoupledParams{});
  ASSERT_TRUE(harmonic.ok());
  EXPECT_EQ(harmonic.value().area, exhaustive.value().area);
  ASSERT_EQ(harmonic.value().choices.size(),
            exhaustive.value().choices.size());
  for (std::size_t i = 0; i < harmonic.value().choices.size(); ++i) {
    EXPECT_EQ(harmonic.value().choices[i].global,
              exhaustive.value().choices[i].global);
    EXPECT_EQ(harmonic.value().choices[i].period,
              exhaustive.value().choices[i].period);
  }
  EXPECT_EQ(harmonic.value().evaluated + harmonic.value().pruned,
            exhaustive.value().evaluated);
  // Both leave the model configured identically.
  for (const AssignmentChoice& c : harmonic.value().choices)
    EXPECT_EQ(harmonic_model.is_global(c.type), model_.is_global(c.type));
}

// ---- utilization heuristic ----

TEST_F(AssignmentSearchTest, TypeUtilizationIsWorkOverSteps) {
  const ProcessId p = AddProcessOf("p1", 4, 2, 8);
  ASSERT_TRUE(model_.Validate().ok());
  // 4 add occupancy-steps / 8 steps; 2 pipelined mult issues / 8 steps.
  EXPECT_DOUBLE_EQ(TypeUtilization(model_, p, types_.add), 0.5);
  EXPECT_DOUBLE_EQ(TypeUtilization(model_, p, types_.mult), 0.25);
  EXPECT_DOUBLE_EQ(TypeUtilization(model_, p, types_.sub), 0.0);
}

TEST_F(AssignmentSearchTest, SuggestSharesLowUtilizationTypes) {
  AddProcessOf("p1", 2, 1, 8);  // add 0.25, mult 0.125
  AddProcessOf("p2", 2, 1, 8);
  ASSERT_TRUE(model_.Validate().ok());
  auto choices = SuggestAssignments(model_, /*utilization_threshold=*/1.0);
  ASSERT_TRUE(choices.ok());
  for (const AssignmentChoice& c : choices.value()) {
    EXPECT_TRUE(c.global);
    EXPECT_EQ(c.period, 8);
    EXPECT_TRUE(model_.is_global(c.type));
  }
}

TEST_F(AssignmentSearchTest, SuggestKeepsHighUtilizationTypesLocal) {
  // 7 adds in 8 steps per process: utilization 0.875 each, sum 1.75 > 1
  // -> one shared adder cannot absorb both, keep local.
  AddProcessOf("p1", 7, 0, 8);
  AddProcessOf("p2", 7, 0, 8);
  ASSERT_TRUE(model_.Validate().ok());
  auto choices = SuggestAssignments(model_, 1.0);
  ASSERT_TRUE(choices.ok());
  ASSERT_EQ(choices.value().size(), 1u);
  EXPECT_FALSE(choices.value()[0].global);
  EXPECT_FALSE(model_.is_global(types_.add));
}

TEST_F(AssignmentSearchTest, SuggestMatchesPaperChoiceOnPaperSystem) {
  // Group utilizations on the paper system: adds 26/30+26/30+26/25 +
  // 2/15+2/15 ~ 3.04 > 1 would stay local... with a threshold at the
  // pool-size level the paper's choice corresponds to allowing sums up to
  // ~4 (it builds 4 adders). The check here: with threshold 4 every type
  // is shared, matching the paper's S1.
  PaperSystem sys = BuildPaperSystem();
  auto choices = SuggestAssignments(sys.model, /*utilization_threshold=*/4.0);
  ASSERT_TRUE(choices.ok());
  ASSERT_EQ(choices.value().size(), 3u);
  for (const AssignmentChoice& c : choices.value()) EXPECT_TRUE(c.global);
  // And the resulting model still schedules to the paper's area.
  CoupledScheduler scheduler(sys.model, CoupledParams{});
  auto result = scheduler.Run();
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result.value().allocation.TotalArea(sys.model.library()), 20);
}

}  // namespace
}  // namespace mshls
