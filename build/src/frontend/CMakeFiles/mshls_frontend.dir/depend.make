# Empty dependencies file for mshls_frontend.
# This may be replaced when dependencies are built.
