#include "modulo/schedule_cache.h"

#include "common/hashing.h"
#include "engine/fingerprint.h"
#include "obs/metrics.h"

namespace mshls {

std::uint64_t ScheduleCacheKey(const SystemModel& model,
                               const CoupledParams& params) {
  StableHasher h;
  h.Mix(ModelFingerprint(model));
  h.Mix(params.fds.lookahead);
  h.Mix(params.fds.global_spring_constant);
  h.Mix(params.fds.area_weighting);
  h.Mix(params.fds.mid_estimate);
  h.Mix(static_cast<int>(params.mode));
  return h.Digest();
}

StatusOr<CoupledResult> ScheduleWithCache(SystemModel& model,
                                          const CoupledParams& params,
                                          ScheduleCache* cache,
                                          bool* cache_hit) {
  if (cache_hit != nullptr) *cache_hit = false;
  std::uint64_t key = 0;
  if (cache != nullptr) {
    key = ScheduleCacheKey(model, params);
    if (std::optional<CoupledResult> found = cache->Lookup(key)) {
      if (cache_hit != nullptr) *cache_hit = true;
      if (obs::Enabled())
        obs::MetricsRegistry::Global()
            .GetCounter("schedule_cache.hits", obs::MetricKind::kStable)
            .Add();
      return *std::move(found);
    }
    if (obs::Enabled())
      obs::MetricsRegistry::Global()
          .GetCounter("schedule_cache.misses", obs::MetricKind::kStable)
          .Add();
  }
  if (Status s = model.Validate(); !s.ok()) return s;
  CoupledScheduler scheduler(model, params);
  auto run_or = scheduler.Run();
  if (!run_or.ok()) return run_or.status();
  if (cache != nullptr) cache->Insert(key, run_or.value());
  return std::move(run_or).value();
}

}  // namespace mshls
