// Coupled multi-process Modulo Scheduling — step (S3) of the paper and its
// two-part modification of Improved Force-Directed Scheduling (paper §5/§6).
//
// All blocks of all processes are scheduled *simultaneously*: a partial
// solution is the set of time frames of every operation in the system, and
// each iteration performs one IFDS-style gradual time-frame reduction on
// the globally worst candidate.
//
// Forces for a locally assigned resource type are the classic block-local
// spring forces. Forces for a globally assigned type g are evaluated on the
// group demand profile (paper eq. 7–9):
//
//     d_b(t)   block-local distribution of g            (eq. 4)
//     D_b(tau) = max{ d_b(t) : (phase_b + t) mod lambda_g = tau }   (eq. 7)
//     M_p(tau) = max{ D_b(tau) : b in blocks(p) }       (eq. 9, inner max —
//                blocks of one process never overlap, condition C2)
//     G(tau)   = sum over group processes p of M_p(tau) (eq. 9, outer sum)
//
// Part 1 (periodic alignment) is the modulo-maximum transform D; part 2
// (global balancing) is the max/sum chain to G. `GlobalForceMode` lets
// benches ablate the parts.
//
// Incremental force engine (DESIGN.md §2 row 26): every candidate's
// end-point forces are cached and only re-evaluated when an input of the
// evaluation actually changed — ops of the narrowed block that share a
// resource type with the transitively moved frames, plus (eq. 9 coupling)
// candidates of other group blocks when the narrowed block's modulo-max /
// process-max profile changed. Block, process and group profiles are
// updated scope-by-scope with the same loops the full rebuild uses, so the
// incremental state is bit-identical to a from-scratch recomputation; the
// `check_incremental` debug mode (also the MSHLS_CHECK_INCREMENTAL CMake
// option / env var) re-derives everything each iteration and fails with
// kInternal on any divergence. The per-iteration candidate sweep can fan
// out over `jobs` worker threads with bit-identical results (pre-assigned
// cache slots, canonical-order reduction — same contract as the period
// search fan-out).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/status.h"
#include "fds/fds_scheduler.h"
#include "modulo/allocation.h"
#include "sched/time_frames.h"

namespace mshls {

class ThreadPool;

namespace obs {
class TraceTrack;
}  // namespace obs

enum class GlobalForceMode {
  /// Part 1 + part 2: forces on the group profile G (the paper's method).
  kFull,
  /// Part 1 only: forces on the block's own modulo profile D_b.
  kBlockModuloOnly,
  /// Ignore global assignments in the force model (classic block-local
  /// forces everywhere); allocation still honours the assignment.
  kIgnoreGlobal,
};

struct CoupledCandidate {
  BlockId block;
  OpId op;
  TimeFrame frame;
  double force_begin = 0;
  double force_end = 0;
  double diff = 0;
};

struct CoupledIterationTrace {
  int iteration = 0;
  /// Filled only when an observer is installed (the copies are skipped
  /// entirely otherwise).
  std::vector<CoupledCandidate> candidates;
  BlockId chosen_block;
  OpId chosen_op;
  bool shrank_begin = false;
};

using CoupledObserver = std::function<void(const CoupledIterationTrace&)>;

struct CoupledParams {
  FdsParams fds;
  GlobalForceMode mode = GlobalForceMode::kFull;
  CoupledObserver observer;
  /// Worker threads for the per-iteration candidate sweep; <= 1 runs
  /// serially. Any value produces bit-identical results: every worker
  /// writes only its own blocks' pre-assigned cache slots and the
  /// reduction runs in canonical (block, op) order.
  int jobs = 1;
  /// Dirty-candidate caching + scoped profile updates (the default).
  /// false falls back to the naive full re-evaluation each iteration —
  /// the reference path the incremental engine is differentially tested
  /// against (and the bench_coupled baseline).
  bool incremental = true;
  /// Debug mode: re-derives all profiles and candidate forces from scratch
  /// every iteration and fails the run with kInternal on any divergence
  /// from the incremental state. Also enabled globally by the
  /// MSHLS_CHECK_INCREMENTAL environment variable or CMake option.
  bool check_incremental = false;
  /// Emit a per-iteration decision log to the installed obs tracer (one
  /// single-owner "coupled#N" track per run). The searches turn this off
  /// for their fanned-out worker runs and log canonically from the
  /// reduction loop instead, keeping traces bit-identical at any --jobs.
  bool trace = true;
  /// Online-repair pinning (modulo/repair.h): pinned_starts[block][op] >= 0
  /// fixes that op's start step before the first iteration — narrowed to a
  /// single-step frame and propagated like any committed reduction, so the
  /// remaining free ops schedule around the pins. -1 leaves an op free;
  /// missing inner entries (or an empty outer vector) mean no pin. An
  /// unsatisfiable pin fails the run with kInfeasible. Participates in the
  /// schedule cache key (modulo/schedule_cache.h).
  std::vector<std::vector<int>> pinned_starts;
  /// Hierarchical boundary reconciliation (modulo/hierarchy.h): constant
  /// per-residue demand other clusters place on a global pool, indexed by
  /// resource type id. A non-empty entry must belong to a global type and
  /// have exactly lambda_g values; it seeds the group profile G as a fixed
  /// baseline before the per-process accumulation, biasing this run's
  /// forces away from residues that are busy elsewhere. The baseline never
  /// constrains feasibility — allocation still sizes pools to actual
  /// demand — it only shapes the force model. Missing entries (or an empty
  /// outer vector) mean no external demand. Participates in the schedule
  /// cache key (modulo/schedule_cache.h).
  std::vector<Profile> external_demand;
};

/// Incremental-engine work accounting for one Run(). Every field is a
/// semantic total that is invariant under the sweep worker count, so the
/// struct is safe to expose through deterministic exports (and through the
/// schedule cache: a replayed result carries the stats of the original
/// run).
struct CoupledStats {
  long long iterations = 0;
  /// Sweep outcomes per candidate refresh: full end-point re-evaluations,
  /// cheap eq. 9 re-prices, and cache entries reused as-is.
  long long candidates_evaluated = 0;
  long long candidates_repriced = 0;
  long long candidates_reused = 0;
  /// Invalidation transitions applied after each narrow: tier 1 knocks an
  /// entry to kInvalid (block-level input moved), tier 2 demotes kValid to
  /// kGlobalStale (only eq. 9 inputs of other blocks changed).
  long long tier1_invalidations = 0;
  long long tier2_invalidations = 0;
};

struct CoupledResult {
  SystemSchedule schedule;
  Allocation allocation;
  int iterations = 0;
  CoupledStats stats;
};

class CoupledScheduler {
 public:
  /// The model must have passed Validate().
  CoupledScheduler(const SystemModel& model, CoupledParams params);
  ~CoupledScheduler();

  /// Runs the coupled IFDS to completion. Deterministic for any `jobs`.
  [[nodiscard]] StatusOr<CoupledResult> Run();

  /// Current group demand profile of a global type (for tracing); only
  /// meaningful between construction and Run() or from the observer.
  [[nodiscard]] const Profile& GroupProfile(ResourceTypeId type) const;

 private:
  /// One per-type summand of a cached end-point force, in library order.
  /// Local terms keep only the final contribution; global (eq. 9) terms
  /// also keep the candidate's displaced modulo-max profile so the term can
  /// be re-priced against fresh process/group profiles without redoing the
  /// frame propagation.
  struct ForceTerm {
    ResourceTypeId type;
    bool global = false;
    double contribution = 0;
    Profile modulo_next;  // displaced D_b (global kFull terms only)
  };

  /// Cached end-point evaluation of one candidate (block, op). The type
  /// mask remembers which resource types the two tentative narrows
  /// displaced — the exact set of inputs the cached forces depend on.
  struct CandidateCache {
    /// kInvalid — a block-level input (this block's frames or local
    /// profiles of a touched type) changed: full re-evaluation.
    /// kGlobalStale — only eq. 9 inputs of other blocks (process max /
    /// group sum) changed: the cached terms re-price in O(lambda).
    /// kValid — reusable as is.
    enum class State : std::uint8_t { kInvalid, kGlobalStale, kValid };
    double force_begin = 0;
    double force_end = 0;
    /// Union over both end-point evaluations of TypeBit() of every type
    /// with a displaced op.
    std::uint64_t touched_types = 0;
    State state = State::kInvalid;
    std::vector<ForceTerm> begin_terms;
    std::vector<ForceTerm> end_terms;
  };

  struct BlockState {
    TimeFrameSet frames;
    /// Block-local distribution d per resource type id.
    std::vector<Profile> local;
    /// Modulo-max profile D per resource type id (empty when not global
    /// for this block's process).
    std::vector<Profile> modulo;
    /// Dirty-candidate cache, by op id.
    std::vector<CandidateCache> cache;
    /// TypeBit mask of the types with GlobalForBlock() == true.
    std::uint64_t global_type_mask = 0;
  };

  /// Reusable per-worker buffers for EvaluateForce: no per-candidate
  /// allocation once warm.
  struct EvalScratch {
    TimeFrameSet next;
    std::vector<Profile> dq;       // per type id
    std::vector<char> touched;     // per type id
    std::vector<int> touched_list;
    Profile d_next;
    Profile modulo_next;
    Profile delta;
    Profile m_next;
    /// Per-worker sweep outcome counters, summed into stats_ in shard
    /// index order after each sweep (integer totals, so any partitioning
    /// yields the same sums).
    long long evaluated = 0;
    long long repriced = 0;
    long long reused = 0;
    void Prepare(std::size_t types);
  };

  /// Saturating type bit: types with index >= 64 share the top bit, which
  /// only ever over-approximates an intersection (extra invalidation, never
  /// a stale hit).
  [[nodiscard]] static std::uint64_t TypeBit(std::size_t type_index) {
    return std::uint64_t{1} << (type_index < 63 ? type_index : 63);
  }

  void RebuildBlockState(BlockId b);
  void RebuildProcessAndGroupProfiles();

  /// Copies params_.external_demand[type_index] (when present) into the
  /// freshly zeroed group profile `g` before the per-process accumulation.
  /// Called from all three group-profile derivations (full rebuild, scoped
  /// narrow update, incremental self-check) so the seeded baseline is
  /// bit-identical across them. Tolerates malformed entries by copying the
  /// overlapping prefix — Run() rejects those before any real work.
  void SeedExternalDemand(std::size_t type_index, Profile& g) const;

  /// kInvalidArgument when external_demand names a local type, has more
  /// rows than the library, a wrong-length profile, or non-finite/negative
  /// values.
  [[nodiscard]] Status ValidateExternalDemand() const;

  /// Commits params_.pinned_starts as pre-iteration frame reductions and
  /// rebuilds every profile they moved. kInfeasible when a pin falls
  /// outside its frame or pins conflict through precedence propagation.
  [[nodiscard]] Status ApplyPinnedStarts();

  /// Force of tentatively narrowing `op` of block `b` to `target` under the
  /// configured mode. Accumulates TypeBit() of every displaced type into
  /// `touched_mask` when non-null and records the per-type summands into
  /// `terms` when non-null (buffers are reused in place).
  [[nodiscard]] double EvaluateForce(BlockId b, OpId op, TimeFrame target,
                                     EvalScratch& scratch,
                                     std::uint64_t* touched_mask,
                                     std::vector<ForceTerm>* terms) const;

  /// Re-sums cached terms of one endpoint, recomputing only the global
  /// eq. 9 contributions from the cached displaced modulo-max profiles and
  /// the current process/group state. Bit-identical to a fresh
  /// EvaluateForce when no block-level input of the candidate changed.
  [[nodiscard]] double RepriceGlobalTerms(BlockId b,
                                          std::vector<ForceTerm>& terms,
                                          EvalScratch& scratch) const;

  /// Recomputes every invalid cache entry of `b`'s unfixed ops.
  void RefreshBlock(BlockId b, EvalScratch& scratch);

  /// Scoped post-narrow update: rebuilds only the (block, type) profiles
  /// whose inputs moved, cascades to process/group profiles of changed
  /// types, and invalidates exactly the candidates whose cached inputs
  /// changed. `before` holds the chosen block's frames prior to Narrow().
  void ApplyNarrowUpdate(BlockId chosen, std::span<const TimeFrame> before);

  /// check_incremental: re-derives all profiles and forces from scratch
  /// and compares bit-for-bit with the incremental state.
  [[nodiscard]] Status VerifyIncrementalState();

  void InvalidateAllCandidates();

  /// True if `type` participates in global force evaluation for `block`.
  [[nodiscard]] bool GlobalForBlock(ResourceTypeId type, BlockId block) const;

  const SystemModel& model_;
  CoupledParams params_;
  std::vector<BlockState> blocks_;          // by block id
  std::vector<std::vector<Profile>> mp_;    // [process][type] M_p
  std::vector<Profile> group_;              // [type] G
  std::vector<DelayFn> delays_;             // by block id
  std::vector<EvalScratch> scratch_;        // one per sweep worker
  CoupledStats stats_;                      // accounting for the active Run()
  obs::TraceTrack* track_ = nullptr;        // decision log (may stay null)
};

}  // namespace mshls
