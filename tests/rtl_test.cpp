#include <gtest/gtest.h>

#include "bind/binding.h"
#include "modulo/coupled_scheduler.h"
#include "rtl/verilog_gen.h"
#include "workloads/benchmarks.h"
#include "workloads/paper_system.h"

namespace mshls {
namespace {

int CountOccurrences(const std::string& haystack, const std::string& needle) {
  int count = 0;
  for (std::size_t pos = 0;
       (pos = haystack.find(needle, pos)) != std::string::npos;
       pos += needle.size())
    ++count;
  return count;
}

class RtlTest : public ::testing::Test {
 protected:
  /// Two processes sharing one adder pool on period 2.
  void BuildShared() {
    types_ = AddPaperTypes(model_.library());
    for (int pi = 0; pi < 2; ++pi) {
      DataFlowGraph g;
      const OpId a = g.AddOp(types_.add, "a0");
      const OpId b = g.AddOp(types_.add, "a1");
      g.AddEdge(a, b);
      ASSERT_TRUE(g.Validate().ok());
      const ProcessId p = model_.AddProcess("proc" + std::to_string(pi), 4);
      model_.AddBlock(p, "main", std::move(g), 4);
    }
    model_.MakeGlobal(types_.add,
                      {model_.processes()[0].id, model_.processes()[1].id});
    model_.SetPeriod(types_.add, 2);
    ASSERT_TRUE(model_.Validate().ok());
  }

  RtlDesign Generate() {
    CoupledScheduler scheduler(model_, CoupledParams{});
    auto result = scheduler.Run();
    EXPECT_TRUE(result.ok());
    auto binding = BindSystem(model_, result.value().schedule,
                              result.value().allocation);
    EXPECT_TRUE(binding.ok()) << binding.status().ToString();
    auto design = GenerateRtl(model_, result.value().schedule,
                              result.value().allocation, binding.value());
    EXPECT_TRUE(design.ok());
    return std::move(design).value();
  }

  SystemModel model_;
  PaperTypes types_;
};

TEST_F(RtlTest, EmitsOneModulePerProcessPlusLibraryAndTop) {
  BuildShared();
  const RtlDesign design = Generate();
  // 3 FU library modules (add, sub, mult) + 2 processes + top.
  EXPECT_EQ(design.module_names.size(), 6u);
  EXPECT_EQ(design.module_names.back(), "mshls_system");
  EXPECT_EQ(CountOccurrences(design.source, "\nmodule "), 6);
  EXPECT_NE(design.source.find("module mshls_fu_add"), std::string::npos);
  EXPECT_NE(design.source.find("module proc_proc0"), std::string::npos);
  EXPECT_NE(design.source.find("module proc_proc1"), std::string::npos);
  EXPECT_NE(design.source.find("module mshls_system"), std::string::npos);
}

TEST_F(RtlTest, BalancedModuleEndmoduleAndBeginEnd) {
  BuildShared();
  const RtlDesign design = Generate();
  const int modules = CountOccurrences(design.source, "\nmodule ");
  EXPECT_EQ(CountOccurrences(design.source, "endmodule"), modules);
  EXPECT_EQ(CountOccurrences(design.source, "begin"),
            CountOccurrences(design.source, "end") -
                CountOccurrences(design.source, "endcase") -
                CountOccurrences(design.source, "endmodule"));
}

TEST_F(RtlTest, PipelinedMultiplierHasInternalStage) {
  BuildShared();
  const RtlDesign design = Generate();
  // delay 2 -> exactly one internal pipeline register p0 in the mult FU.
  const std::size_t mult_pos = design.source.find("module mshls_fu_mult");
  ASSERT_NE(mult_pos, std::string::npos);
  const std::size_t mult_end = design.source.find("endmodule", mult_pos);
  const std::string mult_src =
      design.source.substr(mult_pos, mult_end - mult_pos);
  EXPECT_NE(mult_src.find("reg [WIDTH-1:0] p0;"), std::string::npos);
  EXPECT_EQ(mult_src.find("p1"), std::string::npos);
  EXPECT_NE(mult_src.find("a * b"), std::string::npos);
}

TEST_F(RtlTest, AdderIsCombinational) {
  BuildShared();
  const RtlDesign design = Generate();
  const std::size_t pos = design.source.find("module mshls_fu_add");
  const std::size_t end = design.source.find("endmodule", pos);
  const std::string add_src = design.source.substr(pos, end - pos);
  EXPECT_NE(add_src.find("assign y = result;"), std::string::npos);
  EXPECT_EQ(add_src.find("always"), std::string::npos);
}

TEST_F(RtlTest, TopHasResidueCounterAndPoolMux) {
  BuildShared();
  const RtlDesign design = Generate();
  EXPECT_NE(design.source.find("reg [15:0] cnt_add;"), std::string::npos);
  // Counter wraps at period-1 = 1.
  EXPECT_NE(design.source.find("cnt_add == 1"), std::string::npos);
  // Pool instance muxed by residue: case over cnt_add with both residues
  // present (each process owns one residue after alignment).
  EXPECT_NE(design.source.find("case (cnt_add)"), std::string::npos);
  EXPECT_NE(design.source.find("proc0_add_g0_a"), std::string::npos);
  EXPECT_NE(design.source.find("proc1_add_g0_a"), std::string::npos);
}

TEST_F(RtlTest, ProcessModuleHasFsmAndStartPorts) {
  BuildShared();
  const RtlDesign design = Generate();
  EXPECT_NE(design.source.find("input  wire start_main,"),
            std::string::npos);
  EXPECT_NE(design.source.find("reg running_main;"), std::string::npos);
  EXPECT_NE(design.source.find("assign busy = running_main;"),
            std::string::npos);
  // Block length 4: the FSM clears running at cstep == 3.
  EXPECT_NE(design.source.find("cstep == 3"), std::string::npos);
}

TEST_F(RtlTest, SequentialAddsWriteDifferentCsteps) {
  BuildShared();
  const RtlDesign design = Generate();
  // Each process has a 2-op chain: two distinct write-back case labels.
  const std::size_t pos = design.source.find("module proc_proc0");
  const std::size_t end = design.source.find("endmodule", pos);
  const std::string proc = design.source.substr(pos, end - pos);
  EXPECT_GE(CountOccurrences(proc, ": begin r"), 2);
}

TEST_F(RtlTest, PaperSystemGeneratesCompleteDesign) {
  PaperSystem sys = BuildPaperSystem();
  CoupledScheduler scheduler(sys.model, CoupledParams{});
  auto result = scheduler.Run();
  ASSERT_TRUE(result.ok());
  auto binding = BindSystem(sys.model, result.value().schedule,
                            result.value().allocation);
  ASSERT_TRUE(binding.ok());
  auto design = GenerateRtl(sys.model, result.value().schedule,
                            result.value().allocation, binding.value());
  ASSERT_TRUE(design.ok());
  // 3 FU modules + 5 process modules + top.
  EXPECT_EQ(design.value().module_names.size(), 9u);
  // All three global pools have residue counters.
  EXPECT_NE(design.value().source.find("cnt_add"), std::string::npos);
  EXPECT_NE(design.value().source.find("cnt_mult"), std::string::npos);
  EXPECT_NE(design.value().source.find("cnt_sub"), std::string::npos);
  // Every process instantiated in the top level.
  for (const Process& p : sys.model.processes())
    EXPECT_NE(design.value().source.find("u_" + p.name),
              std::string::npos);
}

TEST_F(RtlTest, CustomOptionsRespected) {
  BuildShared();
  CoupledScheduler scheduler(model_, CoupledParams{});
  auto result = scheduler.Run();
  ASSERT_TRUE(result.ok());
  auto binding = BindSystem(model_, result.value().schedule,
                            result.value().allocation);
  ASSERT_TRUE(binding.ok());
  RtlOptions options;
  options.data_width = 32;
  options.top_name = "my_top";
  auto design = GenerateRtl(model_, result.value().schedule,
                            result.value().allocation, binding.value(),
                            options);
  ASSERT_TRUE(design.ok());
  EXPECT_NE(design.value().source.find("module my_top"), std::string::npos);
  EXPECT_NE(design.value().source.find("parameter WIDTH = 32"),
            std::string::npos);
}

}  // namespace
}  // namespace mshls
