// AST -> SystemModel lowering with semantic checks.
#pragma once

#include <string_view>

#include "common/status.h"
#include "frontend/ast.h"
#include "model/system_model.h"

namespace mshls {

/// Semantic checks performed:
///  * duplicate resource / process / block names;
///  * unknown resource in a statement ('using') or share declaration;
///  * unknown process in a share declaration;
///  * double assignment of an identifier within a block;
///  * use of an identifier after its own definition only (an identifier
///    never assigned in the block is a data input of the block).
/// The resulting model has passed SystemModel::Validate().
[[nodiscard]] StatusOr<SystemModel> LowerSystem(const AstSystem& ast);

/// Parse + lower in one step.
[[nodiscard]] StatusOr<SystemModel> CompileSystem(std::string_view source);

}  // namespace mshls
