# Empty dependencies file for mshls_dfg.
# This may be replaced when dependencies are built.
