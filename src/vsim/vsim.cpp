#include "vsim/vsim.h"

#include <cassert>
#include <cctype>
#include <map>
#include <optional>

namespace mshls {
namespace {

// ---------------------------------------------------------------- lexer --

enum class VTok {
  kIdent,
  kNumber,
  kLParen, kRParen, kLBracket, kRBracket, kLBrace, kRBrace,
  kSemicolon, kComma, kDot, kHash, kColon, kQuestion, kAt,
  kAssignEq,      // =
  kNonBlocking,   // <=
  kEqEq,          // ==
  kLess,          // <
  kNot,           // !
  kAndAnd,        // &&
  kOrOr,          // ||
  kOr,            // |
  kPlus, kMinus, kStar, kSlash,
  kEof,
};

struct VToken {
  VTok kind = VTok::kEof;
  std::string text;
  std::uint64_t number = 0;
  int line = 0;
};

StatusOr<std::vector<VToken>> VTokenize(std::string_view src) {
  std::vector<VToken> out;
  int line = 1;
  std::size_t i = 0;
  auto push = [&](VTok kind, std::string text = {}, std::uint64_t num = 0) {
    out.push_back(VToken{kind, std::move(text), num, line});
  };
  while (i < src.size()) {
    const char c = src[i];
    if (c == '\n') { ++line; ++i; continue; }
    if (c == ' ' || c == '\t' || c == '\r') { ++i; continue; }
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
      while (i < src.size() && src[i] != '\n') ++i;
      continue;
    }
    if (c == '`') {  // compiler directive (`timescale ...): skip line
      while (i < src.size() && src[i] != '\n') ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t j = i;
      while (j < src.size() &&
             (std::isalnum(static_cast<unsigned char>(src[j])) ||
              src[j] == '_'))
        ++j;
      push(VTok::kIdent, std::string(src.substr(i, j - i)));
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      // plain decimal, possibly a sized literal: 16'd0, 1'b0.
      std::size_t j = i;
      std::uint64_t value = 0;
      while (j < src.size() && std::isdigit(static_cast<unsigned char>(
                                   src[j]))) {
        value = value * 10 + static_cast<std::uint64_t>(src[j] - '0');
        ++j;
      }
      if (j < src.size() && src[j] == '\'') {
        ++j;  // size prefix consumed; parse base + digits
        if (j >= src.size())
          return Status{StatusCode::kParseError,
                        "line " + std::to_string(line) +
                            ": dangling literal base"};
        const char base = src[j++];
        std::uint64_t v = 0;
        if (base == 'd') {
          while (j < src.size() && std::isdigit(static_cast<unsigned char>(
                                       src[j])))
            v = v * 10 + static_cast<std::uint64_t>(src[j++] - '0');
        } else if (base == 'b') {
          while (j < src.size() && (src[j] == '0' || src[j] == '1'))
            v = v * 2 + static_cast<std::uint64_t>(src[j++] - '0');
        } else if (base == 'h') {
          while (j < src.size() && std::isxdigit(static_cast<unsigned char>(
                                       src[j]))) {
            const char h = src[j++];
            v = v * 16 + static_cast<std::uint64_t>(
                             std::isdigit(static_cast<unsigned char>(h))
                                 ? h - '0'
                                 : std::tolower(h) - 'a' + 10);
          }
        } else {
          return Status{StatusCode::kParseError,
                        "line " + std::to_string(line) +
                            ": unsupported literal base '" +
                            std::string(1, base) + "'"};
        }
        push(VTok::kNumber, {}, v);
      } else {
        push(VTok::kNumber, {}, value);
      }
      i = j;
      continue;
    }
    // multi-char operators
    auto two = [&](char a, char b) {
      return c == a && i + 1 < src.size() && src[i + 1] == b;
    };
    if (two('<', '=')) { push(VTok::kNonBlocking); i += 2; continue; }
    if (two('=', '=')) { push(VTok::kEqEq); i += 2; continue; }
    if (two('&', '&')) { push(VTok::kAndAnd); i += 2; continue; }
    if (two('|', '|')) { push(VTok::kOrOr); i += 2; continue; }
    switch (c) {
      case '(': push(VTok::kLParen); break;
      case ')': push(VTok::kRParen); break;
      case '[': push(VTok::kLBracket); break;
      case ']': push(VTok::kRBracket); break;
      case '{': push(VTok::kLBrace); break;
      case '}': push(VTok::kRBrace); break;
      case ';': push(VTok::kSemicolon); break;
      case ',': push(VTok::kComma); break;
      case '.': push(VTok::kDot); break;
      case '#': push(VTok::kHash); break;
      case ':': push(VTok::kColon); break;
      case '?': push(VTok::kQuestion); break;
      case '@': push(VTok::kAt); break;
      case '=': push(VTok::kAssignEq); break;
      case '<': push(VTok::kLess); break;
      case '!': push(VTok::kNot); break;
      case '|': push(VTok::kOr); break;
      case '+': push(VTok::kPlus); break;
      case '-': push(VTok::kMinus); break;
      case '*': push(VTok::kStar); break;
      case '/': push(VTok::kSlash); break;
      default:
        return Status{StatusCode::kParseError,
                      "line " + std::to_string(line) +
                          ": unexpected character '" + std::string(1, c) +
                          "'"};
    }
    ++i;
  }
  out.push_back(VToken{VTok::kEof, {}, 0, line});
  return out;
}

// ----------------------------------------------------------------- AST --

struct VExpr;
using VExprPtr = std::unique_ptr<VExpr>;

struct VExpr {
  enum class Kind { kConst, kIdent, kUnary, kBinary, kTernary, kConcat,
                    kRepl };
  Kind kind = Kind::kConst;
  std::uint64_t value = 0;       // kConst
  std::string ident;             // kIdent
  VTok op = VTok::kEof;          // kUnary/kBinary operator token
  std::vector<VExprPtr> args;
};

struct VStmt {
  enum class Kind { kAssign, kNonBlocking, kIf, kCase };
  Kind kind = Kind::kAssign;
  std::string lhs;               // assignment target
  VExprPtr rhs;
  VExprPtr cond;                 // kIf / kCase selector
  std::vector<VStmt> then_body;
  std::vector<VStmt> else_body;
  struct CaseItem {
    std::uint64_t label = 0;
    std::vector<VStmt> body;
  };
  std::vector<CaseItem> items;
};

struct VPort {
  std::string name;
  bool is_input = true;
  VExprPtr msb;  // null: 1-bit
};

struct VNet {
  std::string name;
  bool is_reg = false;
  VExprPtr msb;
};

struct VContAssign {
  std::string lhs;
  VExprPtr rhs;
};

struct VAlways {
  bool clocked = false;  // true: @(posedge clk); false: @*
  std::vector<VStmt> body;
};

struct VInstance {
  std::string module_name;
  std::string instance_name;
  std::vector<std::pair<std::string, std::string>> connections;  // .p(sig)
};

struct VModule {
  std::string name;
  std::string param_name;  // empty if none
  std::uint64_t param_default = 0;
  std::vector<VPort> ports;
  std::vector<VNet> nets;
  std::vector<VContAssign> assigns;
  std::vector<VAlways> always_blocks;
  std::vector<VInstance> instances;
};

// --------------------------------------------------------------- parser --

class VParser {
 public:
  explicit VParser(std::vector<VToken> tokens) : toks_(std::move(tokens)) {}

  StatusOr<std::vector<VModule>> Parse() {
    std::vector<VModule> modules;
    while (!At(VTok::kEof)) {
      if (!AtKeyword("module")) return Error("expected 'module'");
      auto m = ParseModule();
      if (!m.ok()) return m.status();
      modules.push_back(std::move(m).value());
    }
    return modules;
  }

 private:
  const VToken& Peek(int ahead = 0) const {
    const std::size_t i = pos_ + static_cast<std::size_t>(ahead);
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  bool At(VTok kind) const { return Peek().kind == kind; }
  bool AtKeyword(std::string_view kw) const {
    return Peek().kind == VTok::kIdent && Peek().text == kw;
  }
  VToken Take() { return toks_[pos_++]; }

  Status Error(const std::string& message) const {
    return {StatusCode::kParseError,
            "verilog line " + std::to_string(Peek().line) + ": " + message};
  }
  StatusOr<VToken> Expect(VTok kind, const char* what) {
    if (!At(kind)) return Error(std::string("expected ") + what);
    return Take();
  }
  StatusOr<VToken> ExpectKeyword(const char* kw) {
    if (!AtKeyword(kw)) return Error(std::string("expected '") + kw + "'");
    return Take();
  }

  // --- expressions (precedence climbing) ---
  // ternary < || < && < | < == < '<' < +- < */ < unary < primary
  StatusOr<VExprPtr> ParseExpr() { return ParseTernary(); }

  StatusOr<VExprPtr> ParseTernary() {
    auto cond = ParseOrOr();
    if (!cond.ok()) return cond.status();
    if (!At(VTok::kQuestion)) return cond;
    Take();
    auto then_e = ParseTernary();
    if (!then_e.ok()) return then_e.status();
    if (auto s = Expect(VTok::kColon, "':'"); !s.ok()) return s.status();
    auto else_e = ParseTernary();
    if (!else_e.ok()) return else_e.status();
    auto e = std::make_unique<VExpr>();
    e->kind = VExpr::Kind::kTernary;
    e->args.push_back(std::move(cond).value());
    e->args.push_back(std::move(then_e).value());
    e->args.push_back(std::move(else_e).value());
    return e;
  }

  template <typename Next>
  StatusOr<VExprPtr> ParseBinaryLevel(std::initializer_list<VTok> ops,
                                      Next next) {
    auto lhs = next();
    if (!lhs.ok()) return lhs.status();
    VExprPtr acc = std::move(lhs).value();
    for (;;) {
      bool matched = false;
      for (VTok op : ops) {
        if (At(op)) {
          Take();
          auto rhs = next();
          if (!rhs.ok()) return rhs.status();
          auto e = std::make_unique<VExpr>();
          e->kind = VExpr::Kind::kBinary;
          e->op = op;
          e->args.push_back(std::move(acc));
          e->args.push_back(std::move(rhs).value());
          acc = std::move(e);
          matched = true;
          break;
        }
      }
      if (!matched) return acc;
    }
  }

  StatusOr<VExprPtr> ParseOrOr() {
    return ParseBinaryLevel({VTok::kOrOr}, [this] { return ParseAndAnd(); });
  }
  StatusOr<VExprPtr> ParseAndAnd() {
    return ParseBinaryLevel({VTok::kAndAnd}, [this] { return ParseBitOr(); });
  }
  StatusOr<VExprPtr> ParseBitOr() {
    return ParseBinaryLevel({VTok::kOr}, [this] { return ParseEquality(); });
  }
  StatusOr<VExprPtr> ParseEquality() {
    return ParseBinaryLevel({VTok::kEqEq},
                            [this] { return ParseRelational(); });
  }
  StatusOr<VExprPtr> ParseRelational() {
    return ParseBinaryLevel({VTok::kLess},
                            [this] { return ParseAdditive(); });
  }
  StatusOr<VExprPtr> ParseAdditive() {
    return ParseBinaryLevel({VTok::kPlus, VTok::kMinus},
                            [this] { return ParseMultiplicative(); });
  }
  StatusOr<VExprPtr> ParseMultiplicative() {
    return ParseBinaryLevel({VTok::kStar, VTok::kSlash},
                            [this] { return ParseUnary(); });
  }

  StatusOr<VExprPtr> ParseUnary() {
    if (At(VTok::kNot)) {
      Take();
      auto inner = ParseUnary();
      if (!inner.ok()) return inner.status();
      auto e = std::make_unique<VExpr>();
      e->kind = VExpr::Kind::kUnary;
      e->op = VTok::kNot;
      e->args.push_back(std::move(inner).value());
      return e;
    }
    return ParsePrimary();
  }

  StatusOr<VExprPtr> ParsePrimary() {
    if (At(VTok::kNumber)) {
      auto e = std::make_unique<VExpr>();
      e->kind = VExpr::Kind::kConst;
      e->value = Take().number;
      return e;
    }
    if (At(VTok::kIdent)) {
      auto e = std::make_unique<VExpr>();
      e->kind = VExpr::Kind::kIdent;
      e->ident = Take().text;
      return e;
    }
    if (At(VTok::kLParen)) {
      Take();
      auto inner = ParseExpr();
      if (!inner.ok()) return inner.status();
      if (auto s = Expect(VTok::kRParen, "')'"); !s.ok()) return s.status();
      return inner;
    }
    if (At(VTok::kLBrace)) {
      // Concatenation {a, b, ...} or replication {count{expr}}.
      Take();
      auto first = ParseExpr();
      if (!first.ok()) return first.status();
      if (At(VTok::kLBrace)) {
        // replication: first is the count
        Take();
        auto inner = ParseExpr();
        if (!inner.ok()) return inner.status();
        if (auto s = Expect(VTok::kRBrace, "'}'"); !s.ok())
          return s.status();
        if (auto s = Expect(VTok::kRBrace, "'}'"); !s.ok())
          return s.status();
        auto e = std::make_unique<VExpr>();
        e->kind = VExpr::Kind::kRepl;
        e->args.push_back(std::move(first).value());
        e->args.push_back(std::move(inner).value());
        return e;
      }
      auto e = std::make_unique<VExpr>();
      e->kind = VExpr::Kind::kConcat;
      e->args.push_back(std::move(first).value());
      while (At(VTok::kComma)) {
        Take();
        auto part = ParseExpr();
        if (!part.ok()) return part.status();
        e->args.push_back(std::move(part).value());
      }
      if (auto s = Expect(VTok::kRBrace, "'}'"); !s.ok()) return s.status();
      return e;
    }
    return Error("expected an expression");
  }

  // --- declarations & statements ---

  /// Optional [msb:0] range; returns msb expression or null.
  StatusOr<VExprPtr> ParseOptionalRange() {
    if (!At(VTok::kLBracket)) return VExprPtr{};
    Take();
    auto msb = ParseExpr();
    if (!msb.ok()) return msb.status();
    if (auto s = Expect(VTok::kColon, "':'"); !s.ok()) return s.status();
    auto lsb = Expect(VTok::kNumber, "0");
    if (!lsb.ok()) return lsb.status();
    if (lsb.value().number != 0) return Error("only [msb:0] ranges");
    if (auto s = Expect(VTok::kRBracket, "']'"); !s.ok()) return s.status();
    return msb;
  }

  StatusOr<VStmt> ParseStatement() {
    if (AtKeyword("if")) {
      Take();
      VStmt stmt;
      stmt.kind = VStmt::Kind::kIf;
      if (auto s = Expect(VTok::kLParen, "'('"); !s.ok()) return s.status();
      auto cond = ParseExpr();
      if (!cond.ok()) return cond.status();
      stmt.cond = std::move(cond).value();
      if (auto s = Expect(VTok::kRParen, "')'"); !s.ok()) return s.status();
      auto then_body = ParseStatementOrBlock();
      if (!then_body.ok()) return then_body.status();
      stmt.then_body = std::move(then_body).value();
      if (AtKeyword("else")) {
        Take();
        auto else_body = ParseStatementOrBlock();
        if (!else_body.ok()) return else_body.status();
        stmt.else_body = std::move(else_body).value();
      }
      return stmt;
    }
    if (AtKeyword("case")) {
      Take();
      VStmt stmt;
      stmt.kind = VStmt::Kind::kCase;
      if (auto s = Expect(VTok::kLParen, "'('"); !s.ok()) return s.status();
      auto sel = ParseExpr();
      if (!sel.ok()) return sel.status();
      stmt.cond = std::move(sel).value();
      if (auto s = Expect(VTok::kRParen, "')'"); !s.ok()) return s.status();
      while (!AtKeyword("endcase")) {
        VStmt::CaseItem item;
        auto label = Expect(VTok::kNumber, "case label");
        if (!label.ok()) return label.status();
        item.label = label.value().number;
        if (auto s = Expect(VTok::kColon, "':'"); !s.ok())
          return s.status();
        auto body = ParseStatementOrBlock();
        if (!body.ok()) return body.status();
        item.body = std::move(body).value();
        stmt.items.push_back(std::move(item));
      }
      Take();  // endcase
      return stmt;
    }
    // assignment: ident (= | <=) expr ;
    auto lhs = Expect(VTok::kIdent, "assignment target");
    if (!lhs.ok()) return lhs.status();
    VStmt stmt;
    if (At(VTok::kNonBlocking)) {
      Take();
      stmt.kind = VStmt::Kind::kNonBlocking;
    } else if (At(VTok::kAssignEq)) {
      Take();
      stmt.kind = VStmt::Kind::kAssign;
    } else {
      return Error("expected '=' or '<='");
    }
    stmt.lhs = lhs.value().text;
    auto rhs = ParseExpr();
    if (!rhs.ok()) return rhs.status();
    stmt.rhs = std::move(rhs).value();
    if (auto s = Expect(VTok::kSemicolon, "';'"); !s.ok())
      return s.status();
    return stmt;
  }

  StatusOr<std::vector<VStmt>> ParseStatementOrBlock() {
    std::vector<VStmt> body;
    if (AtKeyword("begin")) {
      Take();
      while (!AtKeyword("end")) {
        auto stmt = ParseStatement();
        if (!stmt.ok()) return stmt.status();
        body.push_back(std::move(stmt).value());
      }
      Take();  // end
    } else {
      auto stmt = ParseStatement();
      if (!stmt.ok()) return stmt.status();
      body.push_back(std::move(stmt).value());
    }
    return body;
  }

  StatusOr<VModule> ParseModule() {
    VModule m;
    if (auto s = ExpectKeyword("module"); !s.ok()) return s.status();
    auto name = Expect(VTok::kIdent, "module name");
    if (!name.ok()) return name.status();
    m.name = name.value().text;
    if (At(VTok::kHash)) {
      Take();
      if (auto s = Expect(VTok::kLParen, "'('"); !s.ok()) return s.status();
      if (auto s = ExpectKeyword("parameter"); !s.ok()) return s.status();
      auto pname = Expect(VTok::kIdent, "parameter name");
      if (!pname.ok()) return pname.status();
      m.param_name = pname.value().text;
      if (auto s = Expect(VTok::kAssignEq, "'='"); !s.ok())
        return s.status();
      auto pval = Expect(VTok::kNumber, "parameter value");
      if (!pval.ok()) return pval.status();
      m.param_default = pval.value().number;
      if (auto s = Expect(VTok::kRParen, "')'"); !s.ok()) return s.status();
    }
    if (auto s = Expect(VTok::kLParen, "'('"); !s.ok()) return s.status();
    while (!At(VTok::kRParen)) {
      VPort port;
      if (AtKeyword("input")) port.is_input = true;
      else if (AtKeyword("output")) port.is_input = false;
      else return Error("expected 'input' or 'output'");
      Take();
      if (AtKeyword("wire") || AtKeyword("reg")) {
        // reg outputs behave like regs inside the module.
        if (Peek().text == "reg") {
          VNet net;
          net.is_reg = true;
          Take();
          auto msb = ParseOptionalRange();
          if (!msb.ok()) return msb.status();
          auto port_name = Expect(VTok::kIdent, "port name");
          if (!port_name.ok()) return port_name.status();
          port.name = port_name.value().text;
          port.msb = msb.value() ? CloneExpr(*msb.value()) : nullptr;
          net.name = port.name;
          net.msb = std::move(msb).value();
          m.nets.push_back(std::move(net));
          m.ports.push_back(std::move(port));
          if (At(VTok::kComma)) Take();
          continue;
        }
        Take();  // wire
      }
      auto msb = ParseOptionalRange();
      if (!msb.ok()) return msb.status();
      auto port_name = Expect(VTok::kIdent, "port name");
      if (!port_name.ok()) return port_name.status();
      port.name = port_name.value().text;
      port.msb = std::move(msb).value();
      m.ports.push_back(std::move(port));
      if (At(VTok::kComma)) Take();
    }
    Take();  // ')'
    if (auto s = Expect(VTok::kSemicolon, "';'"); !s.ok())
      return s.status();

    while (!AtKeyword("endmodule")) {
      if (AtKeyword("wire") || AtKeyword("reg")) {
        const bool is_reg = Peek().text == "reg";
        Take();
        auto msb = ParseOptionalRange();
        if (!msb.ok()) return msb.status();
        auto net_name = Expect(VTok::kIdent, "net name");
        if (!net_name.ok()) return net_name.status();
        VNet net;
        net.name = net_name.value().text;
        net.is_reg = is_reg;
        net.msb = std::move(msb).value();
        if (At(VTok::kAssignEq)) {
          Take();  // initialised wire == continuous assign
          auto rhs = ParseExpr();
          if (!rhs.ok()) return rhs.status();
          m.assigns.push_back(VContAssign{net.name, std::move(rhs).value()});
        }
        m.nets.push_back(std::move(net));
        if (auto s = Expect(VTok::kSemicolon, "';'"); !s.ok())
          return s.status();
        continue;
      }
      if (AtKeyword("assign")) {
        Take();
        auto lhs = Expect(VTok::kIdent, "assign target");
        if (!lhs.ok()) return lhs.status();
        if (auto s = Expect(VTok::kAssignEq, "'='"); !s.ok())
          return s.status();
        auto rhs = ParseExpr();
        if (!rhs.ok()) return rhs.status();
        m.assigns.push_back(
            VContAssign{lhs.value().text, std::move(rhs).value()});
        if (auto s = Expect(VTok::kSemicolon, "';'"); !s.ok())
          return s.status();
        continue;
      }
      if (AtKeyword("always")) {
        Take();
        if (auto s = Expect(VTok::kAt, "'@'"); !s.ok()) return s.status();
        VAlways always;
        if (At(VTok::kStar)) {
          Take();
          always.clocked = false;
        } else {
          if (auto s = Expect(VTok::kLParen, "'('"); !s.ok())
            return s.status();
          if (auto s = ExpectKeyword("posedge"); !s.ok()) return s.status();
          auto clk = Expect(VTok::kIdent, "clock signal");
          if (!clk.ok()) return clk.status();
          if (clk.value().text != "clk")
            return Error("only 'posedge clk' is supported");
          if (auto s = Expect(VTok::kRParen, "')'"); !s.ok())
            return s.status();
          always.clocked = true;
        }
        auto body = ParseStatementOrBlock();
        if (!body.ok()) return body.status();
        always.body = std::move(body).value();
        m.always_blocks.push_back(std::move(always));
        continue;
      }
      if (At(VTok::kIdent)) {
        // instantiation: Module [#(IDENT)] name (.p(sig), ...);
        VInstance inst;
        inst.module_name = Take().text;
        if (At(VTok::kHash)) {
          Take();
          if (auto s = Expect(VTok::kLParen, "'('"); !s.ok())
            return s.status();
          // parameter pass-through: an identifier (parent's parameter)
          // or a number; our generator always passes WIDTH.
          if (At(VTok::kIdent)) Take();
          else if (At(VTok::kNumber)) Take();
          else return Error("expected parameter value");
          if (auto s = Expect(VTok::kRParen, "')'"); !s.ok())
            return s.status();
        }
        auto inst_name = Expect(VTok::kIdent, "instance name");
        if (!inst_name.ok()) return inst_name.status();
        inst.instance_name = inst_name.value().text;
        if (auto s = Expect(VTok::kLParen, "'('"); !s.ok())
          return s.status();
        while (!At(VTok::kRParen)) {
          if (auto s = Expect(VTok::kDot, "'.'"); !s.ok())
            return s.status();
          auto port = Expect(VTok::kIdent, "port name");
          if (!port.ok()) return port.status();
          if (auto s = Expect(VTok::kLParen, "'('"); !s.ok())
            return s.status();
          auto sig = Expect(VTok::kIdent, "connected signal");
          if (!sig.ok()) return sig.status();
          if (auto s = Expect(VTok::kRParen, "')'"); !s.ok())
            return s.status();
          inst.connections.emplace_back(port.value().text,
                                        sig.value().text);
          if (At(VTok::kComma)) Take();
        }
        Take();  // ')'
        if (auto s = Expect(VTok::kSemicolon, "';'"); !s.ok())
          return s.status();
        m.instances.push_back(std::move(inst));
        continue;
      }
      return Error("unexpected token in module body");
    }
    Take();  // endmodule
    return m;
  }

  static VExprPtr CloneExpr(const VExpr& e) {
    auto out = std::make_unique<VExpr>();
    out->kind = e.kind;
    out->value = e.value;
    out->ident = e.ident;
    out->op = e.op;
    for (const VExprPtr& a : e.args) out->args.push_back(CloneExpr(*a));
    return out;
  }

  std::vector<VToken> toks_;
  std::size_t pos_ = 0;
};

// ----------------------------------------------------- elaboration/sim --

struct Signal {
  std::string name;
  int width = 1;
  std::uint64_t value = 0;
  bool driven_by_comb = false;  // target of assign / always @*
};

/// Expression with identifiers resolved to signal indices.
struct RExpr {
  VExpr::Kind kind;
  std::uint64_t value = 0;
  int signal = -1;
  VTok op = VTok::kEof;
  std::vector<RExpr> args;
  std::vector<int> widths;  // kConcat: widths of the parts (args order)
  int repl_count = 0;       // kRepl (resolved at elaboration)
  int repl_width = 1;       // kRepl: width of the replicated expr
};

struct RStmt {
  VStmt::Kind kind;
  int lhs = -1;
  RExpr rhs;
  RExpr cond;
  std::vector<RStmt> then_body;
  std::vector<RStmt> else_body;
  struct CaseItem {
    std::uint64_t label;
    std::vector<RStmt> body;
  };
  std::vector<CaseItem> items;
};

struct RProcess {
  bool clocked = false;
  std::vector<RStmt> body;
};

struct RAssign {
  int lhs = -1;
  RExpr rhs;
};

std::uint64_t MaskOf(int width) {
  return width >= 64 ? ~0ULL : ((1ULL << width) - 1);
}

}  // namespace

struct VerilogSimulator::Impl {
  std::vector<Signal> signals;
  std::map<std::string, int> by_name;
  std::vector<RAssign> assigns;       // continuous, in elaboration order
  std::vector<RProcess> processes;    // comb + clocked
  std::vector<std::pair<int, std::uint64_t>> nb_queue;

  // ---- elaboration ----
  const std::map<std::string, const VModule*>* modules = nullptr;
  Status error;

  int AddSignal(const std::string& name, int width) {
    const int id = static_cast<int>(signals.size());
    signals.push_back(Signal{name, width, 0, false});
    by_name.emplace(name, id);
    return id;
  }

  StatusOr<int> Lookup(const std::string& prefix,
                       const std::string& ident) const {
    const auto it = by_name.find(prefix + ident);
    if (it == by_name.end())
      return Status{StatusCode::kNotFound,
                    "unknown signal '" + prefix + ident + "'"};
    return it->second;
  }

  /// Width of an expression for concat purposes.
  int WidthOf(const RExpr& e) const {
    switch (e.kind) {
      case VExpr::Kind::kIdent:
        return signals[static_cast<std::size_t>(e.signal)].width;
      case VExpr::Kind::kRepl:
        return e.repl_count * e.repl_width;
      case VExpr::Kind::kConcat: {
        int total = 0;
        for (int w : e.widths) total += w;
        return total;
      }
      default:
        return 64;  // constants/arithmetic: natural width
    }
  }

  /// Evaluates a constant expression (widths, replication counts) with
  /// the parameter environment.
  static StatusOr<std::uint64_t> EvalConst(
      const VExpr& e, const std::map<std::string, std::uint64_t>& env) {
    switch (e.kind) {
      case VExpr::Kind::kConst:
        return e.value;
      case VExpr::Kind::kIdent: {
        const auto it = env.find(e.ident);
        if (it == env.end())
          return Status{StatusCode::kParseError,
                        "non-constant identifier '" + e.ident +
                            "' in constant context"};
        return it->second;
      }
      case VExpr::Kind::kBinary: {
        auto a = EvalConst(*e.args[0], env);
        auto b = EvalConst(*e.args[1], env);
        if (!a.ok()) return a.status();
        if (!b.ok()) return b.status();
        switch (e.op) {
          case VTok::kPlus: return a.value() + b.value();
          case VTok::kMinus: return a.value() - b.value();
          case VTok::kStar: return a.value() * b.value();
          case VTok::kSlash:
            return b.value() ? a.value() / b.value() : 0;
          default: break;
        }
        return Status{StatusCode::kParseError,
                      "unsupported constant operator"};
      }
      default:
        return Status{StatusCode::kParseError,
                      "unsupported constant expression"};
    }
  }

  StatusOr<RExpr> Resolve(const VExpr& e, const std::string& prefix,
                          const std::map<std::string, std::uint64_t>& env) {
    RExpr out;
    out.kind = e.kind;
    out.op = e.op;
    switch (e.kind) {
      case VExpr::Kind::kConst:
        out.value = e.value;
        break;
      case VExpr::Kind::kIdent: {
        // The parameter name may appear in run-time expressions too
        // (never emitted today, but cheap to support as a constant).
        const auto env_it = env.find(e.ident);
        if (env_it != env.end() && by_name.find(prefix + e.ident) ==
                                       by_name.end()) {
          out.kind = VExpr::Kind::kConst;
          out.value = env_it->second;
          break;
        }
        auto sig = Lookup(prefix, e.ident);
        if (!sig.ok()) return sig.status();
        out.signal = sig.value();
        break;
      }
      case VExpr::Kind::kRepl: {
        auto count = EvalConst(*e.args[0], env);
        if (!count.ok()) return count.status();
        out.repl_count = static_cast<int>(count.value());
        auto inner = Resolve(*e.args[1], prefix, env);
        if (!inner.ok()) return inner.status();
        out.repl_width = WidthOf(inner.value());
        // A replicated sized literal like 1'b0 has width 1.
        if (inner.value().kind == VExpr::Kind::kConst) out.repl_width = 1;
        out.args.push_back(std::move(inner).value());
        break;
      }
      case VExpr::Kind::kConcat: {
        for (const VExprPtr& part : e.args) {
          auto r = Resolve(*part, prefix, env);
          if (!r.ok()) return r.status();
          int w = WidthOf(r.value());
          if (r.value().kind == VExpr::Kind::kConst) w = 1;
          out.widths.push_back(w);
          out.args.push_back(std::move(r).value());
        }
        break;
      }
      default:
        for (const VExprPtr& a : e.args) {
          auto r = Resolve(*a, prefix, env);
          if (!r.ok()) return r.status();
          out.args.push_back(std::move(r).value());
        }
    }
    return out;
  }

  StatusOr<RStmt> ResolveStmt(const VStmt& s, const std::string& prefix,
                              const std::map<std::string, std::uint64_t>&
                                  env) {
    RStmt out;
    out.kind = s.kind;
    if (s.kind == VStmt::Kind::kAssign ||
        s.kind == VStmt::Kind::kNonBlocking) {
      auto lhs = Lookup(prefix, s.lhs);
      if (!lhs.ok()) return lhs.status();
      out.lhs = lhs.value();
      auto rhs = Resolve(*s.rhs, prefix, env);
      if (!rhs.ok()) return rhs.status();
      out.rhs = std::move(rhs).value();
      return out;
    }
    auto cond = Resolve(*s.cond, prefix, env);
    if (!cond.ok()) return cond.status();
    out.cond = std::move(cond).value();
    if (s.kind == VStmt::Kind::kIf) {
      for (const VStmt& t : s.then_body) {
        auto r = ResolveStmt(t, prefix, env);
        if (!r.ok()) return r.status();
        out.then_body.push_back(std::move(r).value());
      }
      for (const VStmt& t : s.else_body) {
        auto r = ResolveStmt(t, prefix, env);
        if (!r.ok()) return r.status();
        out.else_body.push_back(std::move(r).value());
      }
      return out;
    }
    for (const VStmt::CaseItem& item : s.items) {
      RStmt::CaseItem out_item;
      out_item.label = item.label;
      for (const VStmt& t : item.body) {
        auto r = ResolveStmt(t, prefix, env);
        if (!r.ok()) return r.status();
        out_item.body.push_back(std::move(r).value());
      }
      out.items.push_back(std::move(out_item));
    }
    return out;
  }

  /// Recursively elaborates `module` under `prefix` with parameter value
  /// `width`.
  Status ElaborateModule(const VModule& module, const std::string& prefix,
                         std::uint64_t width) {
    std::map<std::string, std::uint64_t> env;
    if (!module.param_name.empty())
      env[module.param_name] = width ? width : module.param_default;

    auto width_of = [&](const VExprPtr& msb) -> StatusOr<int> {
      if (!msb) return 1;
      auto v = EvalConst(*msb, env);
      if (!v.ok()) return v.status();
      return static_cast<int>(v.value()) + 1;
    };

    // Ports (reg output ports were also added to nets; skip duplicates).
    for (const VPort& port : module.ports) {
      if (by_name.contains(prefix + port.name)) continue;
      auto w = width_of(port.msb);
      if (!w.ok()) return w.status();
      AddSignal(prefix + port.name, w.value());
    }
    for (const VNet& net : module.nets) {
      if (by_name.contains(prefix + net.name)) continue;
      auto w = width_of(net.msb);
      if (!w.ok()) return w.status();
      AddSignal(prefix + net.name, w.value());
    }

    for (const VContAssign& ca : module.assigns) {
      auto lhs = Lookup(prefix, ca.lhs);
      if (!lhs.ok()) return lhs.status();
      auto rhs = Resolve(*ca.rhs, prefix, env);
      if (!rhs.ok()) return rhs.status();
      signals[static_cast<std::size_t>(lhs.value())].driven_by_comb = true;
      assigns.push_back(RAssign{lhs.value(), std::move(rhs).value()});
    }
    for (const VAlways& a : module.always_blocks) {
      RProcess proc;
      proc.clocked = a.clocked;
      for (const VStmt& s : a.body) {
        auto r = ResolveStmt(s, prefix, env);
        if (!r.ok()) return r.status();
        proc.body.push_back(std::move(r).value());
      }
      processes.push_back(std::move(proc));
    }

    for (const VInstance& inst : module.instances) {
      const auto it = modules->find(inst.module_name);
      if (it == modules->end())
        return Status{StatusCode::kNotFound,
                      "unknown module '" + inst.module_name + "'"};
      const VModule& child = *it->second;
      const std::string child_prefix =
          prefix + inst.instance_name + ".";
      const std::uint64_t child_width =
          module.param_name.empty() ? 0 : env[module.param_name];
      if (Status s = ElaborateModule(child, child_prefix, child_width);
          !s.ok())
        return s;
      // Port connections as continuous assigns in the right direction.
      for (const auto& [port_name, parent_sig] : inst.connections) {
        const VPort* port = nullptr;
        for (const VPort& p : child.ports)
          if (p.name == port_name) port = &p;
        if (port == nullptr)
          return Status{StatusCode::kNotFound,
                        "module '" + child.name + "' has no port '" +
                            port_name + "'"};
        auto child_sig = Lookup(child_prefix, port_name);
        if (!child_sig.ok()) return child_sig.status();
        auto parent = Lookup(prefix, parent_sig);
        if (!parent.ok()) return parent.status();
        RExpr src;
        src.kind = VExpr::Kind::kIdent;
        if (port->is_input) {
          src.signal = parent.value();
          signals[static_cast<std::size_t>(child_sig.value())]
              .driven_by_comb = true;
          assigns.push_back(RAssign{child_sig.value(), std::move(src)});
        } else {
          src.signal = child_sig.value();
          signals[static_cast<std::size_t>(parent.value())]
              .driven_by_comb = true;
          assigns.push_back(RAssign{parent.value(), std::move(src)});
        }
      }
    }
    return Status::Ok();
  }

  // ---- simulation ----

  std::uint64_t Eval(const RExpr& e) const {
    switch (e.kind) {
      case VExpr::Kind::kConst:
        return e.value;
      case VExpr::Kind::kIdent:
        return signals[static_cast<std::size_t>(e.signal)].value;
      case VExpr::Kind::kUnary:
        return Eval(e.args[0]) == 0 ? 1 : 0;  // only '!'
      case VExpr::Kind::kBinary: {
        const std::uint64_t a = Eval(e.args[0]);
        const std::uint64_t b = Eval(e.args[1]);
        switch (e.op) {
          case VTok::kPlus: return a + b;
          case VTok::kMinus: return a - b;
          case VTok::kStar: return a * b;
          case VTok::kSlash: return b ? a / b : 0;
          case VTok::kEqEq: return a == b ? 1 : 0;
          case VTok::kLess: return a < b ? 1 : 0;
          case VTok::kAndAnd: return (a != 0 && b != 0) ? 1 : 0;
          case VTok::kOrOr: return (a != 0 || b != 0) ? 1 : 0;
          case VTok::kOr: return a | b;
          default: return 0;
        }
      }
      case VExpr::Kind::kTernary:
        return Eval(e.args[0]) != 0 ? Eval(e.args[1]) : Eval(e.args[2]);
      case VExpr::Kind::kRepl: {
        const std::uint64_t bit = Eval(e.args[0]) & MaskOf(e.repl_width);
        std::uint64_t out = 0;
        for (int i = 0; i < e.repl_count && i * e.repl_width < 64; ++i)
          out |= bit << (i * e.repl_width);
        return out;
      }
      case VExpr::Kind::kConcat: {
        // Verilog concatenation: first part is the most significant.
        std::uint64_t out = 0;
        for (std::size_t i = 0; i < e.args.size(); ++i) {
          const int w = e.widths[i];
          out = (out << w) | (Eval(e.args[i]) & MaskOf(w));
        }
        return out;
      }
    }
    return 0;
  }

  void Write(int sig, std::uint64_t v) {
    Signal& s = signals[static_cast<std::size_t>(sig)];
    s.value = v & MaskOf(s.width);
  }

  void ExecBlocking(const std::vector<RStmt>& body) {
    for (const RStmt& s : body) ExecStmt(s, /*nonblocking=*/false);
  }

  void ExecStmt(const RStmt& s, bool nonblocking) {
    switch (s.kind) {
      case VStmt::Kind::kAssign:
        Write(s.lhs, Eval(s.rhs));
        return;
      case VStmt::Kind::kNonBlocking: {
        const Signal& sig = signals[static_cast<std::size_t>(s.lhs)];
        nb_queue.emplace_back(s.lhs, Eval(s.rhs) & MaskOf(sig.width));
        return;
      }
      case VStmt::Kind::kIf: {
        const auto& body = Eval(s.cond) != 0 ? s.then_body : s.else_body;
        for (const RStmt& t : body) ExecStmt(t, nonblocking);
        return;
      }
      case VStmt::Kind::kCase: {
        const std::uint64_t sel = Eval(s.cond);
        for (const auto& item : s.items) {
          if (item.label == sel) {
            for (const RStmt& t : item.body) ExecStmt(t, nonblocking);
            return;
          }
        }
        return;
      }
    }
  }

  Status SettleComb() {
    // Fixed point on sweep level: blocking assignments inside @* blocks
    // may write intermediate values (default-then-override), so change
    // detection compares the whole signal state before/after each sweep.
    std::vector<std::uint64_t> before(signals.size());
    for (int round = 0; round < 1000; ++round) {
      for (std::size_t i = 0; i < signals.size(); ++i)
        before[i] = signals[i].value;
      for (const RAssign& a : assigns) Write(a.lhs, Eval(a.rhs));
      for (const RProcess& p : processes) {
        if (p.clocked) continue;
        for (const RStmt& s : p.body) ExecStmt(s, /*nonblocking=*/false);
      }
      bool changed = false;
      for (std::size_t i = 0; i < signals.size(); ++i)
        changed |= before[i] != signals[i].value;
      if (!changed) return Status::Ok();
    }
    return {StatusCode::kInternal,
            "combinational logic did not settle (loop?)"};
  }

  Status ClockEdge() {
    nb_queue.clear();
    for (const RProcess& p : processes) {
      if (!p.clocked) continue;
      for (const RStmt& s : p.body) ExecStmt(s, /*nonblocking=*/true);
    }
    for (const auto& [sig, value] : nb_queue) Write(sig, value);
    return Status::Ok();
  }

  bool change_flag_ = false;
};

VerilogSimulator::VerilogSimulator(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}
VerilogSimulator::VerilogSimulator(VerilogSimulator&&) noexcept = default;
VerilogSimulator& VerilogSimulator::operator=(VerilogSimulator&&) noexcept =
    default;
VerilogSimulator::~VerilogSimulator() = default;

StatusOr<VerilogSimulator> VerilogSimulator::Elaborate(
    std::string_view source, const std::string& top, int width) {
  auto tokens = VTokenize(source);
  if (!tokens.ok()) return tokens.status();
  VParser parser(std::move(tokens).value());
  auto modules_or = parser.Parse();
  if (!modules_or.ok()) return modules_or.status();
  // Keep module storage alive during elaboration only; everything needed
  // afterwards is flattened into Impl.
  const std::vector<VModule> modules = std::move(modules_or).value();
  std::map<std::string, const VModule*> by_name;
  for (const VModule& m : modules) by_name.emplace(m.name, &m);
  const auto it = by_name.find(top);
  if (it == by_name.end())
    return Status{StatusCode::kNotFound, "no module named '" + top + "'"};

  auto impl = std::make_unique<Impl>();
  impl->modules = &by_name;
  if (Status s = impl->ElaborateModule(
          *it->second, "", static_cast<std::uint64_t>(width));
      !s.ok())
    return s;
  impl->modules = nullptr;
  VerilogSimulator sim(std::move(impl));
  if (Status s = sim.Settle(); !s.ok()) return s;
  return sim;
}

Status VerilogSimulator::Poke(const std::string& port, std::uint64_t value) {
  const auto it = impl_->by_name.find(port);
  if (it == impl_->by_name.end())
    return {StatusCode::kNotFound, "unknown port '" + port + "'"};
  const Signal& sig = impl_->signals[static_cast<std::size_t>(it->second)];
  if (sig.driven_by_comb)
    return {StatusCode::kInvalidArgument,
            "'" + port + "' is driven by the design, not pokeable"};
  impl_->Write(it->second, value);
  return Status::Ok();
}

StatusOr<std::uint64_t> VerilogSimulator::Peek(
    const std::string& name) const {
  const auto it = impl_->by_name.find(name);
  if (it == impl_->by_name.end())
    return Status{StatusCode::kNotFound, "unknown signal '" + name + "'"};
  return impl_->signals[static_cast<std::size_t>(it->second)].value;
}

Status VerilogSimulator::Settle() { return impl_->SettleComb(); }

Status VerilogSimulator::Step() {
  if (Status s = impl_->SettleComb(); !s.ok()) return s;
  if (Status s = impl_->ClockEdge(); !s.ok()) return s;
  return impl_->SettleComb();
}

std::size_t VerilogSimulator::signal_count() const {
  return impl_->signals.size();
}

}  // namespace mshls
