#include "sched/time_frames.h"

#include <algorithm>
#include <cassert>

namespace mshls {

StatusOr<TimeFrameSet> TimeFrameSet::Compute(const DataFlowGraph& graph,
                                             const DelayFn& delay,
                                             int time_range) {
  assert(graph.validated());
  TimeFrameSet set;
  set.frames_.assign(graph.op_count(), TimeFrame{});
  for (const Operation& op : graph.ops()) {
    const int d = delay(op.id);
    if (d < 1)
      return Status{StatusCode::kInvalidArgument,
                    "non-positive delay for op " + std::to_string(
                        op.id.value())};
    const int latest = time_range - d;
    if (latest < 0)
      return Status{StatusCode::kInfeasible,
                    "op " + std::to_string(op.id.value()) +
                        " cannot finish within the time range"};
    set.frames_[op.id.index()] = TimeFrame{0, latest};
  }
  if (Status s = set.Propagate(graph, delay); !s.ok()) return s;
  return set;
}

Status TimeFrameSet::Propagate(const DataFlowGraph& graph,
                               const DelayFn& delay) {
  // Forward pass: tighten ASAP from predecessors.
  for (OpId id : graph.topological_order()) {
    TimeFrame& f = frames_[id.index()];
    for (OpId p : graph.preds(id)) {
      const TimeFrame& pf = frames_[p.index()];
      f.asap = std::max(f.asap, pf.asap + delay(p));
    }
    if (f.asap > f.alap)
      return {StatusCode::kInfeasible,
              "empty time frame for op " + std::to_string(id.value())};
  }
  // Backward pass: tighten ALAP from successors.
  const auto topo = graph.topological_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const OpId id = *it;
    TimeFrame& f = frames_[id.index()];
    const int d = delay(id);
    for (OpId s : graph.succs(id)) {
      const TimeFrame& sf = frames_[s.index()];
      f.alap = std::min(f.alap, sf.alap - d);
    }
    if (f.asap > f.alap)
      return {StatusCode::kInfeasible,
              "empty time frame for op " + std::to_string(id.value())};
  }
  return Status::Ok();
}

Status TimeFrameSet::Narrow(const DataFlowGraph& graph, const DelayFn& delay,
                            OpId op, TimeFrame next) {
  TimeFrame& f = frames_[op.index()];
  assert(next.asap >= f.asap && next.alap <= f.alap && next.asap <= next.alap);
  f = next;
  return Propagate(graph, delay);
}

bool TimeFrameSet::AllFixed() const {
  return std::all_of(frames_.begin(), frames_.end(),
                     [](const TimeFrame& f) { return f.fixed(); });
}

int TimeFrameSet::TotalSlack() const {
  int total = 0;
  for (const TimeFrame& f : frames_) total += f.width() - 1;
  return total;
}

}  // namespace mshls
