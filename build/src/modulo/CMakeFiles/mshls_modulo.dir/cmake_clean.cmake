file(REMOVE_RECURSE
  "CMakeFiles/mshls_modulo.dir/allocation.cpp.o"
  "CMakeFiles/mshls_modulo.dir/allocation.cpp.o.d"
  "CMakeFiles/mshls_modulo.dir/assignment_search.cpp.o"
  "CMakeFiles/mshls_modulo.dir/assignment_search.cpp.o.d"
  "CMakeFiles/mshls_modulo.dir/baseline.cpp.o"
  "CMakeFiles/mshls_modulo.dir/baseline.cpp.o.d"
  "CMakeFiles/mshls_modulo.dir/coupled_scheduler.cpp.o"
  "CMakeFiles/mshls_modulo.dir/coupled_scheduler.cpp.o.d"
  "CMakeFiles/mshls_modulo.dir/modulo_map.cpp.o"
  "CMakeFiles/mshls_modulo.dir/modulo_map.cpp.o.d"
  "CMakeFiles/mshls_modulo.dir/period_search.cpp.o"
  "CMakeFiles/mshls_modulo.dir/period_search.cpp.o.d"
  "CMakeFiles/mshls_modulo.dir/refinement.cpp.o"
  "CMakeFiles/mshls_modulo.dir/refinement.cpp.o.d"
  "CMakeFiles/mshls_modulo.dir/resource_constrained.cpp.o"
  "CMakeFiles/mshls_modulo.dir/resource_constrained.cpp.o.d"
  "libmshls_modulo.a"
  "libmshls_modulo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mshls_modulo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
