# Empty dependencies file for type_merge_test.
# This may be replaced when dependencies are built.
