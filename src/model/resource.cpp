#include "model/resource.h"

namespace mshls {

ResourceTypeId ResourceLibrary::AddType(std::string_view name, int delay,
                                        int dii, int area) {
  const ResourceTypeId id{static_cast<ResourceTypeId::value_type>(
      types_.size())};
  types_.push_back(ResourceType{id, std::string(name), delay, dii, area});
  return id;
}

ResourceTypeId ResourceLibrary::FindByName(std::string_view name) const {
  for (const ResourceType& t : types_)
    if (t.name == name) return t.id;
  return ResourceTypeId::invalid();
}

Status ResourceLibrary::Validate() const {
  for (const ResourceType& t : types_) {
    if (t.name.empty())
      return {StatusCode::kInvalidArgument, "resource type with empty name"};
    if (t.delay < 1)
      return {StatusCode::kInvalidArgument,
              "resource type '" + t.name + "' has non-positive delay"};
    if (t.dii < 1 || t.dii > t.delay)
      return {StatusCode::kInvalidArgument,
              "resource type '" + t.name +
                  "' needs 1 <= dii <= delay (got dii=" +
                  std::to_string(t.dii) + ", delay=" +
                  std::to_string(t.delay) + ")"};
    if (t.area < 0)
      return {StatusCode::kInvalidArgument,
              "resource type '" + t.name + "' has negative area"};
    for (const ResourceType& u : types_) {
      if (u.id != t.id && u.name == t.name)
        return {StatusCode::kInvalidArgument,
                "duplicate resource type name '" + t.name + "'"};
    }
  }
  return Status::Ok();
}

}  // namespace mshls
