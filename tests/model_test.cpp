#include <gtest/gtest.h>

#include "model/system_model.h"
#include "workloads/benchmarks.h"
#include "workloads/paper_system.h"

namespace mshls {
namespace {

TEST(ResourceLibraryTest, AddAndFind) {
  ResourceLibrary lib;
  const ResourceTypeId add = lib.AddType("add", 1, 1, 1);
  EXPECT_EQ(lib.FindByName("add"), add);
  EXPECT_FALSE(lib.FindByName("mult").valid());
  EXPECT_TRUE(lib.Validate().ok());
}

TEST(ResourceLibraryTest, RejectsDuplicateName) {
  ResourceLibrary lib;
  lib.AddType("add", 1, 1, 1);
  lib.AddType("add", 2, 1, 2);
  EXPECT_FALSE(lib.Validate().ok());
}

TEST(ResourceLibraryTest, RejectsBadDelayAndDii) {
  {
    ResourceLibrary lib;
    lib.AddType("x", 0, 1, 1);
    EXPECT_FALSE(lib.Validate().ok());
  }
  {
    ResourceLibrary lib;
    lib.AddType("x", 2, 3, 1);  // dii > delay
    EXPECT_FALSE(lib.Validate().ok());
  }
  {
    ResourceLibrary lib;
    lib.AddType("x", 2, 0, 1);  // dii < 1
    EXPECT_FALSE(lib.Validate().ok());
  }
}

TEST(ResourceLibraryTest, ConvenienceConstructors) {
  ResourceLibrary lib;
  const ResourceTypeId p = lib.AddPipelined("p", 3, 2);
  const ResourceTypeId s = lib.AddSimple("s", 3, 2);
  EXPECT_EQ(lib.type(p).dii, 1);
  EXPECT_EQ(lib.type(s).dii, 3);
}

class SystemModelTest : public ::testing::Test {
 protected:
  SystemModel model_;
  PaperTypes types_ = AddPaperTypes(model_.library());

  DataFlowGraph TinyGraph() {
    DataFlowGraph g;
    const OpId a = g.AddOp(types_.add, "a");
    const OpId b = g.AddOp(types_.mult, "b");
    g.AddEdge(a, b);
    return g;
  }
};

TEST_F(SystemModelTest, AddProcessAndBlock) {
  const ProcessId p = model_.AddProcess("p", 10);
  const BlockId b = model_.AddBlock(p, "main", TinyGraph(), 10);
  EXPECT_EQ(model_.process_count(), 1u);
  EXPECT_EQ(model_.block_count(), 1u);
  EXPECT_EQ(model_.block(b).process, p);
  EXPECT_EQ(model_.process(p).blocks.size(), 1u);
  EXPECT_TRUE(model_.Validate().ok());
}

TEST_F(SystemModelTest, ValidateRejectsInfeasibleTimeRange) {
  const ProcessId p = model_.AddProcess("p");
  model_.AddBlock(p, "main", TinyGraph(), 2);  // critical path is 3
  const Status s = model_.Validate();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInfeasible);
}

TEST_F(SystemModelTest, ValidateRejectsEmptyBlock) {
  const ProcessId p = model_.AddProcess("p");
  model_.AddBlock(p, "main", DataFlowGraph{}, 10);
  EXPECT_FALSE(model_.Validate().ok());
}

TEST_F(SystemModelTest, DefaultAssignmentIsLocal) {
  model_.AddProcess("p");
  EXPECT_FALSE(model_.is_global(types_.add));
  EXPECT_TRUE(model_.GlobalTypes().empty());
}

TEST_F(SystemModelTest, MakeGlobalDeduplicatesGroup) {
  const ProcessId p1 = model_.AddProcess("p1");
  const ProcessId p2 = model_.AddProcess("p2");
  model_.MakeGlobal(types_.add, {p2, p1, p2});
  const TypeAssignment& a = model_.assignment(types_.add);
  EXPECT_EQ(a.group, (std::vector<ProcessId>{p1, p2}));
  EXPECT_TRUE(model_.InGroup(types_.add, p1));
  EXPECT_TRUE(model_.is_global(types_.add));
}

TEST_F(SystemModelTest, MakeLocalReverts) {
  const ProcessId p = model_.AddProcess("p");
  model_.MakeGlobal(types_.add, {p});
  model_.MakeLocal(types_.add);
  EXPECT_FALSE(model_.is_global(types_.add));
}

TEST_F(SystemModelTest, ValidateRequiresPeriodForGlobal) {
  const ProcessId p = model_.AddProcess("p");
  model_.AddBlock(p, "main", TinyGraph(), 10);
  model_.MakeGlobal(types_.add, {p});
  model_.SetPeriod(types_.add, 0);
  EXPECT_FALSE(model_.Validate().ok());
  model_.SetPeriod(types_.add, 5);
  EXPECT_TRUE(model_.Validate().ok());
}

TEST_F(SystemModelTest, ProcessUsesType) {
  const ProcessId p = model_.AddProcess("p");
  model_.AddBlock(p, "main", TinyGraph(), 10);
  EXPECT_TRUE(model_.ProcessUsesType(p, types_.add));
  EXPECT_TRUE(model_.ProcessUsesType(p, types_.mult));
  EXPECT_FALSE(model_.ProcessUsesType(p, types_.sub));
}

TEST_F(SystemModelTest, GlobalUsersExcludesNonUsingGroupMembers) {
  const ProcessId p1 = model_.AddProcess("p1");
  model_.AddBlock(p1, "b1", TinyGraph(), 10);
  const ProcessId p2 = model_.AddProcess("p2");
  DataFlowGraph only_add;
  only_add.AddOp(types_.add, "a");
  model_.AddBlock(p2, "b2", std::move(only_add), 10);
  // p2 never multiplies but is in the group.
  model_.MakeGlobal(types_.mult, {p1, p2});
  model_.SetPeriod(types_.mult, 5);
  EXPECT_EQ(model_.GlobalUsers(types_.mult), (std::vector<ProcessId>{p1}));
}

TEST_F(SystemModelTest, GridSpacingIsLcmOfUsedGlobalPeriods) {
  const ProcessId p = model_.AddProcess("p");
  model_.AddBlock(p, "main", TinyGraph(), 60);
  model_.MakeGlobal(types_.add, {p});
  model_.SetPeriod(types_.add, 4);
  model_.MakeGlobal(types_.mult, {p});
  model_.SetPeriod(types_.mult, 6);
  EXPECT_EQ(model_.GridSpacing(p), 12);  // lcm(4, 6), paper eq. 3
}

TEST_F(SystemModelTest, GridSpacingOneWithoutGlobals) {
  const ProcessId p = model_.AddProcess("p");
  model_.AddBlock(p, "main", TinyGraph(), 10);
  EXPECT_EQ(model_.GridSpacing(p), 1);
}

TEST_F(SystemModelTest, GridSpacingIgnoresUnusedGlobalTypes) {
  const ProcessId p = model_.AddProcess("p");
  model_.AddBlock(p, "main", TinyGraph(), 10);  // no sub ops
  model_.MakeGlobal(types_.sub, {p});
  model_.SetPeriod(types_.sub, 7);
  EXPECT_EQ(model_.GridSpacing(p), 1);
}

TEST_F(SystemModelTest, DelayOfUsesLibrary) {
  const ProcessId p = model_.AddProcess("p");
  const BlockId b = model_.AddBlock(p, "main", TinyGraph(), 10);
  const DelayFn delay = model_.DelayOf(b);
  EXPECT_EQ(delay(OpId{0}), 1);  // add
  EXPECT_EQ(delay(OpId{1}), 2);  // mult
}

TEST(PaperSystemTest, MatchesPaperSetup) {
  const PaperSystem sys = BuildPaperSystem();
  EXPECT_EQ(sys.model.process_count(), 5u);
  EXPECT_EQ(sys.model.block_count(), 5u);
  // Adder and multiplier global to all five, subtracter to the two diffeqs.
  EXPECT_TRUE(sys.model.is_global(sys.types.add));
  EXPECT_TRUE(sys.model.is_global(sys.types.mult));
  EXPECT_TRUE(sys.model.is_global(sys.types.sub));
  EXPECT_EQ(sys.model.assignment(sys.types.add).group.size(), 5u);
  EXPECT_EQ(sys.model.assignment(sys.types.sub).group.size(), 2u);
  EXPECT_EQ(sys.model.assignment(sys.types.add).period, 5);
  // Deadlines (reconstruction documented in DESIGN.md).
  EXPECT_EQ(sys.model.process(sys.ewf[0]).deadline, 30);
  EXPECT_EQ(sys.model.process(sys.ewf[2]).deadline, 25);
  EXPECT_EQ(sys.model.process(sys.diffeq[0]).deadline, 15);
  // Grid spacings divide every deadline (eq. 3 compatibility).
  for (const Process& p : sys.model.processes())
    EXPECT_EQ(p.deadline % sys.model.GridSpacing(p.id), 0);
}

TEST(PaperSystemTest, LocalVariantHasNoGlobalTypes) {
  PaperSystemOptions options;
  options.make_global = false;
  const PaperSystem sys = BuildPaperSystem(options);
  EXPECT_TRUE(sys.model.GlobalTypes().empty());
}

}  // namespace
}  // namespace mshls
