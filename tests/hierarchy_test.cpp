// Scaling tier (`ctest -L scaling`): hierarchical coupled scheduling on
// instances past the flat scheduler's comfort zone. The contract under
// test, per modulo/hierarchy.h:
//  * the sharing-graph partition is a deterministic exact cover;
//  * clustered runs certify and agree with the flat path on feasibility
//    (clustering may cost area, never feasibility);
//  * the clustered report is bit-identical for any --jobs width.
#include <gtest/gtest.h>

#include <set>

#include "fuzz/generator.h"
#include "modulo/coupled_scheduler.h"
#include "modulo/hierarchy.h"
#include "verify/certifier.h"
#include "workloads/paper_system.h"

namespace mshls {
namespace {

/// Generator tuning for cluster territory: one block per process keeps a
/// 50-process case schedulable in test time, the high share rate makes the
/// sharing graph dense enough that the partitioner has real work.
FuzzGenOptions LargeGen(int processes) {
  FuzzGenOptions gen;
  gen.min_processes = processes;
  gen.max_processes = processes;
  gen.max_blocks_per_process = 1;
  gen.max_ops_per_block = 6;
  gen.share_probability = 0.9;
  gen.infeasible_probability = 0.0;
  gen.grid_hostile_probability = 0.0;
  return gen;
}

void ExpectSameSchedule(const SystemSchedule& a, const SystemSchedule& b) {
  ASSERT_EQ(a.blocks.size(), b.blocks.size());
  for (std::size_t i = 0; i < a.blocks.size(); ++i) {
    ASSERT_EQ(a.blocks[i].size(), b.blocks[i].size());
    for (std::size_t op = 0; op < a.blocks[i].size(); ++op)
      EXPECT_EQ(a.blocks[i].start(OpId(op)), b.blocks[i].start(OpId(op)))
          << "block " << i << " op " << op;
  }
}

TEST(PartitionSharingGraph, IsAnExactCoverWithinTheCap) {
  GeneratedCase c = GenerateSystem(7, LargeGen(50));
  ASSERT_EQ(c.cls, CaseClass::kClean);
  ASSERT_TRUE(c.model.Validate().ok());
  for (int cap : {4, 8, 16}) {
    const auto clusters = PartitionSharingGraph(c.model, cap);
    std::set<int> seen;
    for (const std::vector<ProcessId>& cluster : clusters) {
      EXPECT_FALSE(cluster.empty());
      EXPECT_LE(static_cast<int>(cluster.size()), cap);
      for (std::size_t i = 0; i < cluster.size(); ++i) {
        if (i > 0) {
          EXPECT_LT(cluster[i - 1].value(), cluster[i].value());
        }
        EXPECT_TRUE(seen.insert(cluster[i].value()).second)
            << "process " << cluster[i].value() << " in two clusters";
      }
    }
    EXPECT_EQ(seen.size(), c.model.process_count());
  }
}

TEST(PartitionSharingGraph, IsDeterministic) {
  GeneratedCase c = GenerateSystem(9, LargeGen(40));
  ASSERT_TRUE(c.model.Validate().ok());
  const auto first = PartitionSharingGraph(c.model, 8);
  const auto second = PartitionSharingGraph(c.model, 8);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i)
    EXPECT_EQ(first[i], second[i]);
}

TEST(PartitionSharingGraph, PaperSystemIsOneComponent) {
  // The add/mult groups span all five processes, so under a roomy cap the
  // whole system is one cluster; a cap of 2 forces bisection but still
  // covers every process exactly once.
  const PaperSystem sys = BuildPaperSystem();
  const auto whole = PartitionSharingGraph(sys.model, 16);
  ASSERT_EQ(whole.size(), 1u);
  EXPECT_EQ(whole[0].size(), sys.model.process_count());
  const auto split = PartitionSharingGraph(sys.model, 2);
  std::size_t covered = 0;
  for (const auto& cluster : split) {
    EXPECT_LE(cluster.size(), 2u);
    covered += cluster.size();
  }
  EXPECT_EQ(covered, sys.model.process_count());
}

TEST(PartitionSharingGraph, DisjointGroupsStaySeparate) {
  // Two sharing islands: {p0,p1} share add, {p2,p3} share mult. No edge
  // crosses, so even a huge cap yields two clusters.
  SystemModel m;
  const PaperTypes t = AddPaperTypes(m.library());
  auto add_proc = [&](const std::string& name, ResourceTypeId type) {
    DataFlowGraph g;
    g.AddOp(type, name + "_op");
    EXPECT_TRUE(g.Validate().ok());
    const ProcessId p = m.AddProcess(name, 8);
    m.AddBlock(p, name + "_b", std::move(g), 8);
    return p;
  };
  const ProcessId p0 = add_proc("p0", t.add);
  const ProcessId p1 = add_proc("p1", t.add);
  const ProcessId p2 = add_proc("p2", t.mult);
  const ProcessId p3 = add_proc("p3", t.mult);
  m.MakeGlobal(t.add, {p0, p1});
  m.MakeGlobal(t.mult, {p2, p3});
  ASSERT_TRUE(m.Validate().ok());
  const auto clusters = PartitionSharingGraph(m, 16);
  ASSERT_EQ(clusters.size(), 2u);
  EXPECT_EQ(clusters[0], (std::vector<ProcessId>{p0, p1}));
  EXPECT_EQ(clusters[1], (std::vector<ProcessId>{p2, p3}));
}

TEST(ScheduleHierarchical, AgreesWithFlatOnFiftyProcesses) {
  // The headline scaling contract: on 50-process fuzz-generated instances
  // the clustered and flat paths agree on feasibility and both certify.
  for (std::uint64_t seed : {11u, 23u}) {
    GeneratedCase c = GenerateSystem(seed, LargeGen(50));
    ASSERT_EQ(c.cls, CaseClass::kClean) << "seed " << seed;
    ASSERT_TRUE(c.model.Validate().ok()) << "seed " << seed;

    SystemModel flat_model = c.model;
    CoupledScheduler flat(flat_model, CoupledParams{});
    auto flat_run = flat.Run();

    HierarchyOptions options;
    options.max_cluster_processes = 8;
    auto clustered = ScheduleHierarchical(c.model, CoupledParams{}, options);

    ASSERT_EQ(flat_run.ok(), clustered.ok())
        << "seed " << seed << ": flat="
        << (flat_run.ok() ? "feasible" : flat_run.status().ToString())
        << " clustered="
        << (clustered.ok() ? "feasible" : clustered.status().ToString());
    if (!clustered.ok()) continue;

    const CertificateReport flat_cert = CertifySchedule(
        flat_model, flat_run.value().schedule, flat_run.value().allocation);
    EXPECT_TRUE(flat_cert.ok()) << flat_cert.Summary();
    const CertificateReport cert = CertifySchedule(
        c.model, clustered.value().schedule, clustered.value().allocation);
    EXPECT_TRUE(cert.ok()) << cert.Summary();

    const HierarchicalResult& h = clustered.value();
    EXPECT_GE(h.stats.clusters, 2) << "cap 8 on 50 processes must split";
    // Per-cluster gates + the stitched gate all passed.
    EXPECT_GE(h.stats.certified, h.stats.clusters + 1);
    EXPECT_EQ(h.area, h.allocation.TotalArea(c.model.library()));
  }
}

TEST(ScheduleHierarchical, ClusteredReportBitIdenticalAcrossJobs) {
  GeneratedCase c = GenerateSystem(31, LargeGen(50));
  ASSERT_EQ(c.cls, CaseClass::kClean);
  ASSERT_TRUE(c.model.Validate().ok());
  HierarchicalResult reference;
  for (int jobs : {1, 2, 8}) {
    HierarchyOptions options;
    options.max_cluster_processes = 8;
    options.jobs = jobs;
    auto run = ScheduleHierarchical(c.model, CoupledParams{}, options);
    ASSERT_TRUE(run.ok()) << "jobs=" << jobs << ": "
                          << run.status().ToString();
    if (jobs == 1) {
      reference = std::move(run).value();
      continue;
    }
    const HierarchicalResult& r = run.value();
    EXPECT_EQ(r.area, reference.area) << "jobs=" << jobs;
    EXPECT_EQ(r.iterations, reference.iterations);
    EXPECT_EQ(r.stats.clusters, reference.stats.clusters);
    EXPECT_EQ(r.stats.cut_types, reference.stats.cut_types);
    EXPECT_EQ(r.stats.reconcile_rounds, reference.stats.reconcile_rounds);
    EXPECT_EQ(r.stats.reconcile_adopted, reference.stats.reconcile_adopted);
    EXPECT_EQ(r.stats.cluster_iterations, reference.stats.cluster_iterations);
    EXPECT_EQ(r.stats.certified, reference.stats.certified);
    ASSERT_EQ(r.clusters.size(), reference.clusters.size());
    for (std::size_t i = 0; i < r.clusters.size(); ++i) {
      EXPECT_EQ(r.clusters[i].processes, reference.clusters[i].processes);
      EXPECT_EQ(r.clusters[i].area, reference.clusters[i].area);
      EXPECT_EQ(r.clusters[i].iterations, reference.clusters[i].iterations);
      EXPECT_EQ(r.clusters[i].reconciled, reference.clusters[i].reconciled);
    }
    ExpectSameSchedule(r.schedule, reference.schedule);
  }
}

TEST(ScheduleHierarchical, ReconciliationKeepsTheCertificate) {
  // Four processes all sharing one adder pool, cap 2: the pool is a cut
  // type, so the reconciliation pass runs with real cross-cluster demand.
  // Adopted or not, the final stitched result must certify.
  SystemModel m;
  const PaperTypes t = AddPaperTypes(m.library());
  std::vector<ProcessId> procs;
  for (int i = 0; i < 4; ++i) {
    DataFlowGraph g;
    g.AddOp(t.add, "a" + std::to_string(i));
    g.AddOp(t.add, "b" + std::to_string(i));
    ASSERT_TRUE(g.Validate().ok());
    const ProcessId p = m.AddProcess("p" + std::to_string(i), 8);
    m.AddBlock(p, "blk" + std::to_string(i), std::move(g), 8);
    procs.push_back(p);
  }
  m.MakeGlobal(t.add, procs);
  m.SetPeriod(t.add, 4);
  ASSERT_TRUE(m.Validate().ok());
  HierarchyOptions options;
  options.max_cluster_processes = 2;
  options.reconcile_rounds = 2;
  auto run = ScheduleHierarchical(m, CoupledParams{}, options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run.value().stats.clusters, 2);
  EXPECT_EQ(run.value().stats.cut_types, 1);
  const CertificateReport cert =
      CertifySchedule(m, run.value().schedule, run.value().allocation);
  EXPECT_TRUE(cert.ok()) << cert.Summary();
}

TEST(ScheduleHierarchical, RejectsPresetExternalDemand) {
  // external_demand is the reconciliation pass's private channel; a caller
  // preloading it would desynchronize the certifier-gated adoption logic.
  const PaperSystem sys = BuildPaperSystem();
  CoupledParams params;
  params.external_demand.resize(1);
  auto run = ScheduleHierarchical(sys.model, params, HierarchyOptions{});
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument);
}

TEST(CoupledScheduler, ValidatesExternalDemand) {
  PaperSystem sys = BuildPaperSystem();
  const int lambda = sys.model.assignment(sys.types.add).period;
  ASSERT_GT(lambda, 0);

  // Wrong profile length for a global type.
  {
    CoupledParams params;
    params.external_demand.resize(sys.types.add.index() + 1);
    params.external_demand[sys.types.add.index()] =
        Profile(static_cast<std::size_t>(lambda) + 1, 0.5);
    CoupledScheduler scheduler(sys.model, params);
    auto run = scheduler.Run();
    ASSERT_FALSE(run.ok());
    EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument);
  }
  // A well-formed row biases forces but never breaks feasibility.
  {
    CoupledParams params;
    params.external_demand.resize(sys.types.add.index() + 1);
    params.external_demand[sys.types.add.index()] =
        Profile(static_cast<std::size_t>(lambda), 0.75);
    CoupledScheduler scheduler(sys.model, params);
    auto run = scheduler.Run();
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    const CertificateReport cert = CertifySchedule(
        sys.model, run.value().schedule, run.value().allocation);
    EXPECT_TRUE(cert.ok()) << cert.Summary();
  }
}

}  // namespace
}  // namespace mshls
