// Wire framing + protocol robustness and the daemon server end to end:
// oversized / zero-length / torn frames come back as typed outcomes,
// concurrent clients get bit-identical responses at any worker count,
// overload produces typed rejections, and a server restart over the same
// cache directory serves warm hits with byte-identical payloads.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "serve/client.h"
#include "serve/disk_cache.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/wire.h"

namespace mshls {
namespace {

namespace fs = std::filesystem;

constexpr const char* kTinyDesign = R"(
resource add  delay 1 area 1;
resource mult delay 2 dii 1 area 4;

process alpha deadline 10 {
  block main time 10 {
    m1 = a * b;
    m2 = c * d;
    s1 = m1 + m2;
    y  = s1 + e;
  }
}
process beta deadline 10 {
  block main time 10 {
    m1 = p * q;
    y  = m1 + r;
  }
}
share add  among alpha, beta period 5;
share mult among alpha, beta period 5;
)";

constexpr const char* kSecondDesign = R"(
resource add delay 1 area 1;
process solo deadline 8 {
  block main time 8 {
    s1 = a + b;
    s2 = s1 + c;
    s3 = s2 + d;
  }
}
)";

// ---------------------------------------------------------------- wire --

struct SocketPair {
  int a = -1;
  int b = -1;
  SocketPair() {
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = fds[0];
    b = fds[1];
  }
  ~SocketPair() {
    if (a >= 0) ::close(a);
    if (b >= 0) ::close(b);
  }
  void CloseA() {
    ::close(a);
    a = -1;
  }
};

TEST(Wire, FrameRoundtrip) {
  SocketPair pair;
  ASSERT_TRUE(serve::WriteFrame(pair.a, "hello frame").ok());
  const serve::FrameRead frame = serve::ReadFrame(pair.b, 1 << 20);
  ASSERT_EQ(frame.outcome, serve::FrameRead::Outcome::kFrame);
  EXPECT_EQ(frame.payload, "hello frame");
}

TEST(Wire, CleanEofOnFrameBoundary) {
  SocketPair pair;
  pair.CloseA();
  EXPECT_EQ(serve::ReadFrame(pair.b, 1 << 20).outcome,
            serve::FrameRead::Outcome::kEof);
}

TEST(Wire, ZeroLengthFrameIsMalformed) {
  SocketPair pair;
  std::string prefix;
  serve::PutU32(prefix, 0);
  ASSERT_EQ(::write(pair.a, prefix.data(), prefix.size()),
            static_cast<ssize_t>(prefix.size()));
  EXPECT_EQ(serve::ReadFrame(pair.b, 1 << 20).outcome,
            serve::FrameRead::Outcome::kMalformed);
}

TEST(Wire, OversizedDeclarationIsTooLargeWithTheClaimedSize) {
  SocketPair pair;
  std::string prefix;
  serve::PutU32(prefix, 5u << 20);
  ASSERT_EQ(::write(pair.a, prefix.data(), prefix.size()),
            static_cast<ssize_t>(prefix.size()));
  const serve::FrameRead frame = serve::ReadFrame(pair.b, 1 << 20);
  EXPECT_EQ(frame.outcome, serve::FrameRead::Outcome::kTooLarge);
  EXPECT_EQ(frame.declared, 5u << 20);
}

TEST(Wire, MidFrameDisconnectIsMalformed) {
  SocketPair pair;
  std::string partial;
  serve::PutU32(partial, 100);  // declares 100 bytes...
  partial += "only a few";      // ...delivers 10, then hangs up
  ASSERT_EQ(::write(pair.a, partial.data(), partial.size()),
            static_cast<ssize_t>(partial.size()));
  pair.CloseA();
  EXPECT_EQ(serve::ReadFrame(pair.b, 1 << 20).outcome,
            serve::FrameRead::Outcome::kMalformed);
}

TEST(Wire, TimeoutWhenNothingArrives) {
  SocketPair pair;
  EXPECT_EQ(serve::ReadFrame(pair.b, 1 << 20, /*timeout_ms=*/50).outcome,
            serve::FrameRead::Outcome::kTimeout);
}

// ------------------------------------------------------------- protocol --

TEST(Protocol, RequestRoundtrip) {
  serve::ServeRequest request;
  request.mode = JobMode::kSearchPeriods;
  request.flags = serve::kFlagSkipCertify;
  request.timeout_ms = 1234;
  request.source = "process p {}";
  auto decoded_or = serve::DecodeRequest(serve::EncodeRequest(request));
  ASSERT_TRUE(decoded_or.ok()) << decoded_or.status().ToString();
  EXPECT_EQ(decoded_or.value().mode, request.mode);
  EXPECT_EQ(decoded_or.value().flags, request.flags);
  EXPECT_EQ(decoded_or.value().timeout_ms, request.timeout_ms);
  EXPECT_EQ(decoded_or.value().source, request.source);
}

TEST(Protocol, ResponseRoundtripKeepsHitCountsInTheHeader) {
  serve::ServeResponse response;
  response.status = serve::ServeStatus::kOk;
  response.rung = 2;
  response.evaluated = 36;
  response.cache_hits = 7;
  response.store_hits = 3;
  response.payload = "{\"schema\":\"mshls-serve-v1\"}";
  auto decoded_or = serve::DecodeResponse(serve::EncodeResponse(response));
  ASSERT_TRUE(decoded_or.ok()) << decoded_or.status().ToString();
  EXPECT_EQ(decoded_or.value().status, serve::ServeStatus::kOk);
  EXPECT_EQ(decoded_or.value().rung, 2);
  EXPECT_EQ(decoded_or.value().evaluated, 36u);
  EXPECT_EQ(decoded_or.value().cache_hits, 7u);
  EXPECT_EQ(decoded_or.value().store_hits, 3u);
  EXPECT_EQ(decoded_or.value().payload, response.payload);
}

TEST(Protocol, RequestRoundtripCarriesTheRepairDelta) {
  serve::ServeRequest request;
  request.source = "process p {}";
  request.delta = "deadline alpha 12;";
  auto decoded_or = serve::DecodeRequest(serve::EncodeRequest(request));
  ASSERT_TRUE(decoded_or.ok()) << decoded_or.status().ToString();
  EXPECT_EQ(decoded_or.value().source, request.source);
  EXPECT_EQ(decoded_or.value().delta, request.delta);
}

TEST(Protocol, V1FrameWithoutDeltaStillDecodes) {
  // A v1 client's frame ends right after the source bytes — no delta
  // length field at all. A v2 daemon must keep accepting it.
  const std::string source = "process p {}";
  std::string frame;
  serve::PutU32(frame, serve::kRequestMagic);
  serve::PutU32(frame, 1);          // v1
  frame.push_back(0);               // mode kCoupled
  frame.push_back(0);               // flags
  frame.push_back(0);               // reserved
  frame.push_back(0);
  serve::PutU32(frame, 750);        // timeout_ms
  serve::PutU32(frame, static_cast<std::uint32_t>(source.size()));
  frame += source;
  auto decoded_or = serve::DecodeRequest(frame);
  ASSERT_TRUE(decoded_or.ok()) << decoded_or.status().ToString();
  EXPECT_EQ(decoded_or.value().source, source);
  EXPECT_EQ(decoded_or.value().timeout_ms, 750u);
  EXPECT_TRUE(decoded_or.value().delta.empty());

  // Trailing bytes after a v1 source are NOT silently read as a delta.
  EXPECT_FALSE(serve::DecodeRequest(frame + "extra").ok());
}

TEST(Protocol, UnknownBaseIsATypedRejectionStatus) {
  serve::ServeResponse response;
  response.status = serve::ServeStatus::kUnknownBase;
  response.payload = "no cached schedule for base";
  auto decoded_or = serve::DecodeResponse(serve::EncodeResponse(response));
  ASSERT_TRUE(decoded_or.ok()) << decoded_or.status().ToString();
  EXPECT_EQ(decoded_or.value().status, serve::ServeStatus::kUnknownBase);
  EXPECT_TRUE(serve::IsRejection(decoded_or.value().status));

  // One past the newest status is still unknown.
  std::string bytes = serve::EncodeResponse(response);
  bytes[8] = static_cast<char>(
      static_cast<std::uint8_t>(serve::ServeStatus::kUnknownBase) + 1);
  EXPECT_FALSE(serve::DecodeResponse(bytes).ok());
}

TEST(Protocol, RejectsBadMagicVersionModeAndLengths) {
  serve::ServeRequest request;
  request.source = "x";
  std::string bytes = serve::EncodeRequest(request);
  std::string bad = bytes;
  bad[0] = 'X';
  EXPECT_FALSE(serve::DecodeRequest(bad).ok());  // magic
  bad = bytes;
  bad[4] = static_cast<char>(bad[4] + 1);
  EXPECT_FALSE(serve::DecodeRequest(bad).ok());  // version
  bad = bytes;
  bad[8] = 17;
  EXPECT_FALSE(serve::DecodeRequest(bad).ok());  // mode out of range
  bad = bytes + "trailing";
  EXPECT_FALSE(serve::DecodeRequest(bad).ok());  // length mismatch
  serve::ServeRequest empty;
  EXPECT_FALSE(serve::DecodeRequest(serve::EncodeRequest(empty)).ok());
}

// --------------------------------------------------------------- server --

/// Bounded-lifetime server fixture on a per-test relative socket path
/// (ctest runs in the build tree; sun_path is too short for deep
/// absolute paths).
struct TestServer {
  serve::Server server;
  explicit TestServer(serve::ServerOptions options)
      : server(std::move(options)) {}
  ~TestServer() {
    server.RequestStop();
    server.Wait();
  }
};

serve::ServerOptions Options(const char* socket_name) {
  serve::ServerOptions options;
  options.socket_path = socket_name;
  options.workers = 2;
  return options;
}

StatusOr<serve::ServeResponse> SubmitSource(const std::string& socket_path,
                                            const std::string& source) {
  serve::Client client;
  if (Status s = client.Connect(socket_path); !s.ok()) return s;
  serve::ServeRequest request;
  request.source = source;
  return client.Submit(request);
}

TEST(Server, SolvesAndThenServesFromTheMemoryTier) {
  TestServer ts(Options("st_mem.sock"));
  ASSERT_TRUE(ts.server.Start().ok());
  auto cold_or = SubmitSource("st_mem.sock", kTinyDesign);
  ASSERT_TRUE(cold_or.ok()) << cold_or.status().ToString();
  ASSERT_EQ(cold_or.value().status, serve::ServeStatus::kOk);
  EXPECT_FALSE(cold_or.value().cache_hit());
  EXPECT_NE(cold_or.value().payload.find("mshls-serve-v1"), std::string::npos);

  auto warm_or = SubmitSource("st_mem.sock", kTinyDesign);
  ASSERT_TRUE(warm_or.ok());
  ASSERT_EQ(warm_or.value().status, serve::ServeStatus::kOk);
  EXPECT_TRUE(warm_or.value().cache_hit());
  EXPECT_FALSE(warm_or.value().store_hit());
  // The acceptance contract: a warm response's payload is byte-identical.
  EXPECT_EQ(cold_or.value().payload, warm_or.value().payload);
}

TEST(Server, RestartServesFromThePersistentTierBitIdentically) {
  const fs::path dir = "st_restart_cache";
  fs::remove_all(dir);
  std::string cold_payload;
  {
    serve::DiskCache disk({dir.string()});
    ASSERT_TRUE(disk.Open().ok());
    serve::ServerOptions options = Options("st_restart.sock");
    options.store = &disk;
    TestServer ts(std::move(options));
    ASSERT_TRUE(ts.server.Start().ok());
    auto cold_or = SubmitSource("st_restart.sock", kTinyDesign);
    ASSERT_TRUE(cold_or.ok());
    ASSERT_EQ(cold_or.value().status, serve::ServeStatus::kOk);
    cold_payload = cold_or.value().payload;
  }
  // Full restart: new server, new DiskCache instance, same directory.
  serve::DiskCache disk({dir.string()});
  ASSERT_TRUE(disk.Open().ok());
  ASSERT_EQ(disk.entry_count(), 1u);
  serve::ServerOptions options = Options("st_restart.sock");
  options.store = &disk;
  TestServer ts(std::move(options));
  ASSERT_TRUE(ts.server.Start().ok());
  auto warm_or = SubmitSource("st_restart.sock", kTinyDesign);
  ASSERT_TRUE(warm_or.ok());
  ASSERT_EQ(warm_or.value().status, serve::ServeStatus::kOk);
  EXPECT_TRUE(warm_or.value().cache_hit());
  EXPECT_TRUE(warm_or.value().store_hit());
  EXPECT_EQ(warm_or.value().payload, cold_payload);
  EXPECT_GT(disk.stats().HitRate(), 0.0);
}

TEST(Server, TypedRejectionsForOversizedAndMalformedFrames) {
  serve::ServerOptions options = Options("st_reject.sock");
  options.max_request_bytes = 1024;
  TestServer ts(std::move(options));
  ASSERT_TRUE(ts.server.Start().ok());

  {
    serve::Client client;
    ASSERT_TRUE(client.Connect("st_reject.sock").ok());
    serve::ServeRequest request;
    request.source = std::string(4096, 'x');  // over the 1 KiB cap
    auto response_or = client.Submit(request);
    ASSERT_TRUE(response_or.ok()) << response_or.status().ToString();
    EXPECT_EQ(response_or.value().status, serve::ServeStatus::kTooLarge);
    EXPECT_TRUE(serve::IsRejection(response_or.value().status));
  }
  {
    // Raw garbage inside a well-formed frame: malformed-frame, typed.
    serve::Client client;
    ASSERT_TRUE(client.Connect("st_reject.sock").ok());
    serve::ServeRequest probe;  // only used to reach the raw socket below
    probe.source = "x";
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::string path = "st_reject.sock";
    std::copy(path.begin(), path.end() + 1, addr.sun_path);
    ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    ASSERT_TRUE(serve::WriteFrame(fd, "this is not a request").ok());
    const serve::FrameRead frame =
        serve::ReadFrame(fd, serve::kAbsoluteMaxFrameBytes, 10000);
    ASSERT_EQ(frame.outcome, serve::FrameRead::Outcome::kFrame);
    auto response_or = serve::DecodeResponse(frame.payload);
    ASSERT_TRUE(response_or.ok());
    EXPECT_EQ(response_or.value().status, serve::ServeStatus::kMalformedFrame);
    ::close(fd);
  }
  // The server survived both: a normal job still works.
  auto ok_or = SubmitSource("st_reject.sock", kSecondDesign);
  ASSERT_TRUE(ok_or.ok());
  EXPECT_EQ(ok_or.value().status, serve::ServeStatus::kOk);
}

TEST(Server, OverloadReturnsTypedRejectionsAndNeverHangs) {
  serve::ServerOptions options = Options("st_load.sock");
  options.workers = 1;
  options.queue_limit = 0;  // admission limit 1
  TestServer ts(std::move(options));
  ASSERT_TRUE(ts.server.Start().ok());

  constexpr int kClients = 12;
  constexpr int kRounds = 6;
  std::atomic<long> ok{0}, overloaded{0}, other{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c)
    clients.emplace_back([&] {
      serve::Client client;
      if (!client.Connect("st_load.sock").ok()) {
        ++other;
        return;
      }
      for (int r = 0; r < kRounds; ++r) {
        serve::ServeRequest request;
        request.source = kTinyDesign;
        auto response_or = client.Submit(request);
        if (!response_or.ok()) {
          ++other;
          continue;
        }
        switch (response_or.value().status) {
          case serve::ServeStatus::kOk: ++ok; break;
          case serve::ServeStatus::kOverloaded: ++overloaded; break;
          default: ++other; break;
        }
      }
    });
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(ok + overloaded + other, kClients * kRounds);
  EXPECT_GT(ok.load(), 0);          // somebody always gets through
  EXPECT_GT(overloaded.load(), 0);  // and the bound actually rejects
  EXPECT_EQ(other.load(), 0);       // no crashes, hangs or malformed frames
  EXPECT_GT(ts.server.stats().rejected_overloaded, 0);
}

TEST(Server, ConcurrentClientsGetBitIdenticalResponsesAtAnyWorkerCount) {
  const std::vector<std::string> sources = {kTinyDesign, kSecondDesign};
  // payloads[w][design index] for worker counts 1, 2, 8.
  std::map<int, std::vector<std::string>> payloads;
  for (int workers : {1, 2, 8}) {
    serve::ServerOptions options = Options("st_jobs.sock");
    options.workers = workers;
    TestServer ts(std::move(options));
    ASSERT_TRUE(ts.server.Start().ok());
    std::vector<std::string> responses(sources.size());
    std::vector<std::thread> clients;
    for (std::size_t i = 0; i < sources.size(); ++i)
      clients.emplace_back([&, i] {
        auto response_or = SubmitSource("st_jobs.sock", sources[i]);
        if (response_or.ok() &&
            response_or.value().status == serve::ServeStatus::kOk)
          responses[i] = response_or.value().payload;
      });
    for (std::thread& t : clients) t.join();
    for (const std::string& payload : responses) EXPECT_FALSE(payload.empty());
    payloads[workers] = std::move(responses);
  }
  EXPECT_EQ(payloads[1], payloads[2]);
  EXPECT_EQ(payloads[1], payloads[8]);
}

TEST(Server, DrainAnswersShuttingDownAndRemovesTheSocket) {
  serve::ServerOptions options = Options("st_drain.sock");
  auto* ts = new TestServer(std::move(options));
  ASSERT_TRUE(ts->server.Start().ok());

  serve::Client client;
  ASSERT_TRUE(client.Connect("st_drain.sock").ok());
  ts->server.RequestStop();
  // The open connection is answered with a typed shutting-down until the
  // drain completes (or the connection is dropped — both are clean).
  serve::ServeRequest request;
  request.source = kTinyDesign;
  auto response_or = client.Submit(request, /*timeout_ms=*/10000);
  if (response_or.ok())
    EXPECT_EQ(response_or.value().status, serve::ServeStatus::kShuttingDown);
  delete ts;  // joins everything
  EXPECT_FALSE(fs::exists("st_drain.sock"));
}

TEST(Server, RepairOnAnUnknownBaseIsATypedRejection) {
  TestServer ts(Options("st_repair_cold.sock"));
  ASSERT_TRUE(ts.server.Start().ok());
  // Straight to repair on a fresh daemon: no cache tier holds the base
  // schedule, and the daemon refuses to hide a cold solve under a repair
  // label.
  serve::Client client;
  ASSERT_TRUE(client.Connect("st_repair_cold.sock").ok());
  serve::ServeRequest request;
  request.source = kTinyDesign;
  request.delta = "deadline alpha 12;";
  auto response_or = client.Submit(request);
  ASSERT_TRUE(response_or.ok()) << response_or.status().ToString();
  EXPECT_EQ(response_or.value().status, serve::ServeStatus::kUnknownBase);
  EXPECT_TRUE(serve::IsRejection(response_or.value().status));
  EXPECT_FALSE(response_or.value().payload.empty());
  EXPECT_EQ(ts.server.stats().rejected_unknown_base, 1);

  // The documented recovery: solve the base, then repeat the repair.
  serve::ServeRequest solve;
  solve.source = kTinyDesign;
  auto solve_or = client.Submit(solve);
  ASSERT_TRUE(solve_or.ok());
  ASSERT_EQ(solve_or.value().status, serve::ServeStatus::kOk);
  auto retry_or = client.Submit(request);
  ASSERT_TRUE(retry_or.ok());
  EXPECT_EQ(retry_or.value().status, serve::ServeStatus::kOk);
}

TEST(Server, RepairServesACertifiedRepairOffTheCachedBase) {
  TestServer ts(Options("st_repair.sock"));
  ASSERT_TRUE(ts.server.Start().ok());
  serve::Client client;
  ASSERT_TRUE(client.Connect("st_repair.sock").ok());

  serve::ServeRequest solve;
  solve.source = kTinyDesign;
  auto solve_or = client.Submit(solve);
  ASSERT_TRUE(solve_or.ok()) << solve_or.status().ToString();
  ASSERT_EQ(solve_or.value().status, serve::ServeStatus::kOk);

  serve::ServeRequest repair;
  repair.source = kTinyDesign;
  repair.delta = "deadline beta 9;";
  auto repair_or = client.Submit(repair);
  ASSERT_TRUE(repair_or.ok()) << repair_or.status().ToString();
  ASSERT_EQ(repair_or.value().status, serve::ServeStatus::kOk);
  // The payload spells out that this went through the repair pipeline,
  // and the header rung byte carries the winning RepairRung.
  EXPECT_NE(repair_or.value().payload.find("\"repaired\":true"),
            std::string::npos);
  EXPECT_EQ(ts.server.stats().repaired, 1);
  EXPECT_EQ(ts.server.stats().rejected_unknown_base, 0);
}

TEST(Server, JobFailureIsAFailureNotARejection) {
  TestServer ts(Options("st_fail.sock"));
  ASSERT_TRUE(ts.server.Start().ok());
  auto response_or = SubmitSource("st_fail.sock", "this does not parse");
  ASSERT_TRUE(response_or.ok());
  EXPECT_EQ(response_or.value().status, serve::ServeStatus::kJobFailed);
  EXPECT_FALSE(serve::IsRejection(response_or.value().status));
  EXPECT_FALSE(response_or.value().payload.empty());
}

}  // namespace
}  // namespace mshls
