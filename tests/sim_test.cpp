#include <gtest/gtest.h>

#include "modulo/coupled_scheduler.h"
#include "sim/simulator.h"
#include "workloads/benchmarks.h"
#include "workloads/paper_system.h"

namespace mshls {
namespace {

class SimTest : public ::testing::Test {
 protected:
  SystemModel model_;
  PaperTypes types_ = AddPaperTypes(model_.library());
  std::vector<BlockId> blocks_;

  void BuildTwoSharingProcesses() {
    for (int pi = 0; pi < 2; ++pi) {
      DataFlowGraph g;
      g.AddOp(types_.add, "a0");
      g.AddOp(types_.add, "a1");
      ASSERT_TRUE(g.Validate().ok());
      const ProcessId p = model_.AddProcess("p" + std::to_string(pi), 4);
      blocks_.push_back(model_.AddBlock(p, "b", std::move(g), 4));
    }
    model_.MakeGlobal(types_.add,
                      {model_.processes()[0].id, model_.processes()[1].id});
    model_.SetPeriod(types_.add, 2);
    ASSERT_TRUE(model_.Validate().ok());
  }

  CoupledResult Run() {
    CoupledScheduler scheduler(model_, CoupledParams{});
    auto result = scheduler.Run();
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(result).value();
  }
};

TEST_F(SimTest, GridAlignedTraceIsConflictFree) {
  BuildTwoSharingProcesses();
  const CoupledResult result = Run();
  SystemSimulator sim(model_, result.schedule, result.allocation);
  // Arbitrary grid-aligned starts, heavily overlapping across processes.
  const std::vector<Activation> trace = {
      {blocks_[0], 0}, {blocks_[1], 0},  {blocks_[0], 4},
      {blocks_[1], 6}, {blocks_[0], 10}, {blocks_[1], 10},
  };
  const SimReport report = sim.Run(trace);
  EXPECT_TRUE(report.ok) << (report.violations.empty()
                                   ? ""
                                   : report.violations[0].detail);
}

TEST_F(SimTest, OffGridStartIsFlaggedAndMayConflict) {
  BuildTwoSharingProcesses();
  const CoupledResult result = Run();
  SystemSimulator sim(model_, result.schedule, result.allocation);
  // Start p1 one step off the grid: its ops land on the residue class
  // authorized for the other process.
  const std::vector<Activation> trace = {
      {blocks_[0], 0},
      {blocks_[1], 1},  // grid spacing is 2 -> misaligned
  };
  const SimReport report = sim.Run(trace);
  EXPECT_FALSE(report.ok);
  bool misaligned = false;
  bool conflict = false;
  for (const SimViolation& v : report.violations) {
    misaligned |= v.kind == SimViolationKind::kGridMisaligned;
    conflict |= v.kind == SimViolationKind::kAuthorizationExceeded ||
                v.kind == SimViolationKind::kPoolOversubscribed;
  }
  EXPECT_TRUE(misaligned);
  // With the pool at a single instance and both residues claimed, the
  // off-grid start must actually provoke a resource conflict — this is
  // the negative control showing the grid restriction is load-bearing.
  EXPECT_TRUE(conflict);
}

TEST_F(SimTest, OverlappingBlocksOfOneProcessFlagged) {
  BuildTwoSharingProcesses();
  const CoupledResult result = Run();
  SystemSimulator sim(model_, result.schedule, result.allocation);
  const std::vector<Activation> trace = {
      {blocks_[0], 0},
      {blocks_[0], 2},  // same process re-activated before finishing
  };
  const SimReport report = sim.Run(trace);
  bool overlap = false;
  for (const SimViolation& v : report.violations)
    overlap |= v.kind == SimViolationKind::kProcessOverlap;
  EXPECT_TRUE(overlap);
}

TEST_F(SimTest, RandomTracesAreLegalByConstruction) {
  BuildTwoSharingProcesses();
  const CoupledResult result = Run();
  SystemSimulator sim(model_, result.schedule, result.allocation);
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    TraceOptions options;
    options.seed = seed;
    options.activations_per_process = 6;
    const auto trace = RandomActivationTrace(model_, options);
    const SimReport report = sim.Run(trace);
    EXPECT_TRUE(report.ok)
        << "seed " << seed << ": "
        << (report.violations.empty() ? "" : report.violations[0].detail);
  }
}

TEST_F(SimTest, PaperSystemRandomTracesConflictFree) {
  PaperSystem sys = BuildPaperSystem();
  CoupledScheduler scheduler(sys.model, CoupledParams{});
  auto result = scheduler.Run();
  ASSERT_TRUE(result.ok());
  SystemSimulator sim(sys.model, result.value().schedule,
                      result.value().allocation);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    TraceOptions options;
    options.seed = seed;
    options.activations_per_process = 4;
    const auto trace = RandomActivationTrace(sys.model, options);
    const SimReport report = sim.Run(trace);
    EXPECT_TRUE(report.ok)
        << "seed " << seed << ": "
        << (report.violations.empty() ? "" : report.violations[0].detail);
  }
}

TEST_F(SimTest, UndersizedAllocationDetected) {
  BuildTwoSharingProcesses();
  const CoupledResult result = Run();
  // Sabotage: drop the pool to zero instances and zero authorizations.
  Allocation bad = result.allocation;
  bad.global[0].instances = 0;
  for (auto& auth : bad.global[0].authorization)
    std::fill(auth.begin(), auth.end(), 0);
  SystemSimulator sim(model_, result.schedule, bad);
  const std::vector<Activation> trace = {{blocks_[0], 0}};
  const SimReport report = sim.Run(trace);
  EXPECT_FALSE(report.ok);
}

TEST_F(SimTest, UtilizationStatsAreSane) {
  BuildTwoSharingProcesses();
  const CoupledResult result = Run();
  SystemSimulator sim(model_, result.schedule, result.allocation);
  TraceOptions options;
  options.max_gap_units = 0;  // back-to-back: highest utilization
  const auto trace = RandomActivationTrace(model_, options);
  const SimReport report = sim.Run(trace);
  ASSERT_TRUE(report.ok);
  const SimTypeStats& add_stats = report.stats[types_.add.index()];
  // 2 adds per 4-cycle activation per process, 8+8 activations total,
  // 1 shared instance: utilization must be substantial and <= 1.
  EXPECT_GT(add_stats.utilization, 0.5);
  EXPECT_LE(add_stats.utilization, 1.0);
  EXPECT_EQ(add_stats.instances, 1);
  EXPECT_EQ(add_stats.busy_instance_cycles,
            2 * 2 * static_cast<std::int64_t>(
                        8));  // 2 ops x 2 procs x 8 activations
}

TEST_F(SimTest, EmptyTraceIsTriviallyOk) {
  BuildTwoSharingProcesses();
  const CoupledResult result = Run();
  SystemSimulator sim(model_, result.schedule, result.allocation);
  const SimReport report = sim.Run({});
  EXPECT_TRUE(report.ok);
  EXPECT_EQ(report.horizon, 0);
}

TEST_F(SimTest, ViolationReportTruncated) {
  BuildTwoSharingProcesses();
  const CoupledResult result = Run();
  Allocation bad = result.allocation;
  bad.global[0].instances = 0;
  for (auto& auth : bad.global[0].authorization)
    std::fill(auth.begin(), auth.end(), 0);
  SystemSimulator sim(model_, result.schedule, bad);
  TraceOptions options;
  options.activations_per_process = 10;
  const auto trace = RandomActivationTrace(model_, options);
  const SimReport report = sim.Run(trace, /*max_violations=*/3);
  EXPECT_FALSE(report.ok);
  EXPECT_LE(report.violations.size(), 3u);
}

TEST_F(SimTest, PhasedBlockMustStartOnItsPhase) {
  // A block with phase 1 on grid 2: starting at an even time is a
  // violation, at an odd time it is legal.
  DataFlowGraph g;
  g.AddOp(types_.add, "a");
  ASSERT_TRUE(g.Validate().ok());
  const ProcessId p = model_.AddProcess("p", 4);
  const BlockId b = model_.AddBlock(p, "b", std::move(g), 4, /*phase=*/1);
  model_.MakeGlobal(types_.add, {p});
  model_.SetPeriod(types_.add, 2);
  ASSERT_TRUE(model_.Validate().ok());
  CoupledScheduler scheduler(model_, CoupledParams{});
  auto result = scheduler.Run();
  ASSERT_TRUE(result.ok());
  SystemSimulator sim(model_, result.value().schedule,
                      result.value().allocation);
  {
    const SimReport report = sim.Run({{b, 1}});
    EXPECT_TRUE(report.ok);
  }
  {
    const SimReport report = sim.Run({{b, 2}});
    bool misaligned = false;
    for (const SimViolation& v : report.violations)
      misaligned |= v.kind == SimViolationKind::kGridMisaligned;
    EXPECT_TRUE(misaligned);
  }
}

}  // namespace
}  // namespace mshls
