// Tests for the graceful-degradation ladder in the scheduling pipeline:
// failed attempts walk the documented rungs, the winning rung and every
// attempt land in JobResult, and batch mode isolates poisoned inputs.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/degradation.h"
#include "engine/job.h"
#include "engine/job_service.h"

namespace mshls {
namespace {

constexpr const char* kGoodDesign = R"(
resource add  delay 1 area 1;
resource mult delay 2 dii 1 area 4;

process alpha deadline 10 {
  block main time 10 {
    m1 = a * b;
    s1 = m1 + c;
  }
}
process beta deadline 10 {
  block main time 10 {
    m1 = p * q;
    y  = m1 + r;
  }
}
share mult among alpha, beta period 5;
)";

// Period 3 does not divide the time range 10, so any pool built from this
// declaration breaks the paper's eq. 3 — the producers do not re-check it
// in plain coupled mode, but the certifier does.
constexpr const char* kGridIncompatibleDesign = R"(
resource add delay 1 area 1;

process alpha deadline 10 {
  block main time 10 {
    x = a + b;
    y = x + c;
  }
}
process beta deadline 10 {
  block main time 10 {
    u = p + q;
  }
}
share add among alpha, beta period 3;
)";

// Critical path 3 > time range 2: infeasible at compile time.
constexpr const char* kCompileInfeasibleDesign = R"(
resource add delay 1 area 1;
process p deadline 2 {
  block main time 2 {
    a = b + c;
    d = a + e;
    f = d + g;
  }
}
)";

SchedulingJob MakeJob(const char* source,
                      std::vector<DegradationRung> ladder = DefaultLadder()) {
  SchedulingJob job;
  job.source = source;
  job.ladder = std::move(ladder);
  return job;
}

TEST(Degradation, CleanJobStaysOnTheRequestedRung) {
  const JobResult r = RunSchedulingJob(MakeJob(kGoodDesign));
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.rung, DegradationRung::kAsRequested);
  ASSERT_EQ(r.attempts.size(), 1u);
  EXPECT_TRUE(r.attempts[0].status.ok());
}

TEST(Degradation, CertificateFailureFallsToRelaxedPeriods) {
  const JobResult r = RunSchedulingJob(MakeJob(kGridIncompatibleDesign));
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.rung, DegradationRung::kRelaxPeriods);
  ASSERT_EQ(r.attempts.size(), 2u);
  EXPECT_EQ(r.attempts[0].rung, DegradationRung::kAsRequested);
  EXPECT_EQ(r.attempts[0].status.code(), StatusCode::kInternal);
  EXPECT_NE(r.attempts[0].status.message().find("certificate"),
            std::string::npos)
      << r.attempts[0].status.ToString();
  EXPECT_TRUE(r.attempts[1].status.ok());
  // The relaxed run found eq.-3-compatible periods, so pools survived.
  EXPECT_FALSE(r.result.allocation.global.empty());
}

TEST(Degradation, DemoteGlobalsRungDropsEveryPool) {
  const JobResult r = RunSchedulingJob(
      MakeJob(kGridIncompatibleDesign,
              {DegradationRung::kAsRequested, DegradationRung::kDemoteGlobals}));
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.rung, DegradationRung::kDemoteGlobals);
  EXPECT_TRUE(r.result.allocation.global.empty());
}

TEST(Degradation, LocalBaselineIsTheLastResort) {
  const JobResult r = RunSchedulingJob(
      MakeJob(kGridIncompatibleDesign,
              {DegradationRung::kAsRequested, DegradationRung::kLocalBaseline}));
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.rung, DegradationRung::kLocalBaseline);
  EXPECT_TRUE(r.result.allocation.global.empty());
}

TEST(Degradation, SingleRungLadderSurfacesTheCertificate) {
  const JobResult r = RunSchedulingJob(
      MakeJob(kGridIncompatibleDesign, {DegradationRung::kAsRequested}));
  ASSERT_FALSE(r.status.ok());
  EXPECT_EQ(r.status.code(), StatusCode::kInternal);
  EXPECT_NE(r.status.message().find("certificate"), std::string::npos);
  EXPECT_EQ(r.attempts.size(), 1u);
}

TEST(Degradation, DisablingCertificationSkipsTheIndependentCheck) {
  // Without the certifier the producer-side validators accept the
  // eq.-3-incompatible pool — which is exactly why the certifier exists.
  SchedulingJob job =
      MakeJob(kGridIncompatibleDesign, {DegradationRung::kAsRequested});
  job.certify = false;
  const JobResult r = RunSchedulingJob(job);
  EXPECT_TRUE(r.status.ok()) << r.status.ToString();
}

TEST(Degradation, CompileFailuresNeverEnterTheLadder) {
  const JobResult infeasible =
      RunSchedulingJob(MakeJob(kCompileInfeasibleDesign));
  EXPECT_EQ(infeasible.status.code(), StatusCode::kInfeasible);
  EXPECT_TRUE(infeasible.attempts.empty());

  const JobResult garbage = RunSchedulingJob(MakeJob("definitely not hls"));
  EXPECT_EQ(garbage.status.code(), StatusCode::kParseError);
  EXPECT_TRUE(garbage.attempts.empty());
}

TEST(Degradation, RedundantRungsAreSkippedNotAttempted) {
  // A local-baseline request has nothing to relax or demote; a failure
  // would surface directly (here it succeeds, on its requested rung).
  SchedulingJob job = MakeJob(kGoodDesign);
  job.mode = JobMode::kLocalBaseline;
  const JobResult r = RunSchedulingJob(job);
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.rung, DegradationRung::kAsRequested);
  EXPECT_EQ(r.attempts.size(), 1u);
}

TEST(Degradation, BatchIsolatesPoisonedInputs) {
  std::vector<SchedulingJob> jobs;
  jobs.push_back(MakeJob(kGoodDesign));
  jobs[0].name = "good";
  jobs.push_back(MakeJob(kCompileInfeasibleDesign));
  jobs[1].name = "infeasible";
  jobs.push_back(MakeJob("syntax }{ error"));
  jobs[2].name = "malformed";
  jobs.push_back(MakeJob(kGridIncompatibleDesign));
  jobs[3].name = "degraded";

  JobServiceOptions options;
  options.workers = 2;
  JobService service(options);
  const std::vector<JobResult> results = service.RunBatch(std::move(jobs));
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(results[0].name, "good");
  EXPECT_TRUE(results[0].status.ok()) << results[0].status.ToString();
  EXPECT_EQ(results[1].status.code(), StatusCode::kInfeasible);
  EXPECT_EQ(results[2].status.code(), StatusCode::kParseError);
  EXPECT_TRUE(results[3].status.ok()) << results[3].status.ToString();
  EXPECT_EQ(results[3].rung, DegradationRung::kRelaxPeriods);
}

TEST(Degradation, RungNamesAreStable) {
  EXPECT_STREQ(DegradationRungName(DegradationRung::kAsRequested),
               "as-requested");
  EXPECT_STREQ(DegradationRungName(DegradationRung::kRelaxPeriods),
               "relax-periods");
  EXPECT_STREQ(DegradationRungName(DegradationRung::kDemoteGlobals),
               "demote-globals");
  EXPECT_STREQ(DegradationRungName(DegradationRung::kLocalBaseline),
               "local-baseline");
  EXPECT_FALSE(IsDegradable(StatusCode::kParseError));
  EXPECT_FALSE(IsDegradable(StatusCode::kCancelled));
  EXPECT_TRUE(IsDegradable(StatusCode::kInfeasible));
  EXPECT_TRUE(IsDegradable(StatusCode::kDeadlineExceeded));
  EXPECT_TRUE(IsDegradable(StatusCode::kInternal));
}

}  // namespace
}  // namespace mshls
