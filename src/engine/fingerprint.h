// Canonical fingerprints of scheduling inputs, used as result-cache keys.
//
// Two models produce the same fingerprint iff they describe the same
// scheduling problem: resource library (delay/dii/area per type),
// processes (deadlines), blocks (owning process, time range, phase, DFG
// operations and edges) and the full S1/S2 state (scope, sharing group,
// period per type). Names are included for library types (they select RTL
// and report behavior) but process/block display names are excluded — two
// sweeps over renamed copies of one system should share cache entries.
#pragma once

#include <cstdint>

#include "model/system_model.h"

namespace mshls {

[[nodiscard]] std::uint64_t ModelFingerprint(const SystemModel& model);

/// Fingerprint of one data-flow graph (ops + deduplicated edges).
[[nodiscard]] std::uint64_t GraphFingerprint(const DataFlowGraph& graph);

}  // namespace mshls
