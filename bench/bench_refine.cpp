// Experiment A10 — post-scheduling refinement: how much area the
// constructive force-directed result leaves on the table. Hill climbing
// on the complete schedule (modulo/refinement.h) over the paper system
// and a sweep of random shared systems.
#include <cstdio>

#include "common/math_util.h"
#include "common/text_table.h"
#include "modulo/coupled_scheduler.h"
#include "modulo/refinement.h"
#include "report/bench_json.h"
#include "workloads/benchmarks.h"
#include "workloads/paper_system.h"

using namespace mshls;

int main(int argc, char** argv) {
  const std::string json_file = TakeJsonFlag(argc, argv);
  BenchJson json("A10", "refine");
  std::printf("== A10: hill-climbing refinement of coupled schedules ==\n\n");
  TextTable table;
  table.SetHeader({"system", "area (IFDS)", "area (refined)", "moves",
                   "rounds"});
  for (std::size_t c = 1; c < 5; ++c) table.AlignRight(c);

  auto add_json_row = [&](const std::string& system, const RefineResult& r) {
    json.AddRow()
        .S("system", system)
        .I("area_before", r.area_before)
        .I("area_after", r.area_after)
        .I("moves_accepted", r.moves_accepted)
        .I("rounds", r.rounds);
  };

  {
    PaperSystem sys = BuildPaperSystem();
    CoupledScheduler scheduler(sys.model, CoupledParams{});
    auto run = scheduler.Run();
    if (!run.ok()) return 1;
    RefineOptions options;
    options.max_rounds = 3;
    auto refined = RefineSchedule(sys.model, run.value().schedule, options);
    if (!refined.ok()) return 1;
    table.AddRow({"paper system",
                  std::to_string(refined.value().area_before),
                  std::to_string(refined.value().area_after),
                  std::to_string(refined.value().moves_accepted),
                  std::to_string(refined.value().rounds)});
    add_json_row("paper system", refined.value());
  }

  Rng rng(777);
  for (int trial = 0; trial < 6; ++trial) {
    SystemModel model;
    const PaperTypes t = AddPaperTypes(model.library());
    std::vector<ProcessId> procs;
    for (int i = 0; i < 3; ++i) {
      RandomDfgOptions options;
      options.ops = rng.NextInt(8, 16);
      options.layers = 3;
      DataFlowGraph g = BuildRandomDfg(t, rng, options);
      const DelayFn delay = [&](OpId op) {
        return model.library().type(g.op(op).type).delay;
      };
      const int range = static_cast<int>(
          CeilDiv(g.CriticalPathLength(delay) + rng.NextInt(2, 8), 4) * 4);
      const ProcessId p = model.AddProcess("p" + std::to_string(i), range);
      model.AddBlock(p, "b", std::move(g), range);
      procs.push_back(p);
    }
    model.MakeGlobal(t.mult, procs);
    model.MakeGlobal(t.add, procs);
    model.SetPeriod(t.mult, 4);
    model.SetPeriod(t.add, 4);
    if (!model.Validate().ok()) continue;
    CoupledScheduler scheduler(model, CoupledParams{});
    auto run = scheduler.Run();
    if (!run.ok()) continue;
    auto refined = RefineSchedule(model, run.value().schedule);
    if (!refined.ok()) continue;
    table.AddRow({"random #" + std::to_string(trial),
                  std::to_string(refined.value().area_before),
                  std::to_string(refined.value().area_after),
                  std::to_string(refined.value().moves_accepted),
                  std::to_string(refined.value().rounds)});
    add_json_row("random #" + std::to_string(trial), refined.value());
  }
  std::printf("%s", table.Render().c_str());
  std::printf("\nexpected shape: refinement never increases area; on the "
              "paper system the constructive result is already locally "
              "optimal (the paper's 17), while looser random systems "
              "occasionally yield a unit or two.\n");
  if (!json_file.empty() && !json.WriteFile(json_file)) return 1;
  return 0;
}
