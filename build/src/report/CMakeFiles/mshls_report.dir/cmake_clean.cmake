file(REMOVE_RECURSE
  "CMakeFiles/mshls_report.dir/experiment_report.cpp.o"
  "CMakeFiles/mshls_report.dir/experiment_report.cpp.o.d"
  "CMakeFiles/mshls_report.dir/gantt.cpp.o"
  "CMakeFiles/mshls_report.dir/gantt.cpp.o.d"
  "CMakeFiles/mshls_report.dir/json_export.cpp.o"
  "CMakeFiles/mshls_report.dir/json_export.cpp.o.d"
  "libmshls_report.a"
  "libmshls_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mshls_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
