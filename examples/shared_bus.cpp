// Shared-interconnect demo (paper §1.1: the considered resources include
// "memories or busses"). Two filter processes are rewritten so that every
// value transport is an explicit transfer op on a 'bus' resource; a single
// global bus, time-multiplexed by the modulo access control, then carries
// all traffic of both processes.
//
//   $ ./examples/shared_bus
#include <cstdio>

#include "dfg/bus_insertion.h"
#include "modulo/baseline.h"
#include "modulo/coupled_scheduler.h"
#include "report/experiment_report.h"
#include "sim/simulator.h"
#include "workloads/benchmarks.h"

using namespace mshls;

int main() {
  SystemModel model;
  const PaperTypes types = AddPaperTypes(model.library());
  const ResourceTypeId bus =
      model.library().AddType("bus", /*delay=*/1, /*dii=*/1, /*area=*/6);

  std::vector<ProcessId> procs;
  const struct {
    const char* name;
    DataFlowGraph (*build)(const PaperTypes&);
    int deadline;
  } kernels[] = {
      // Low per-process bus utilization is what makes sharing pay off —
      // exactly the paper's §2 motivation.
      {"deq_a", &BuildDiffeq, 36},
      {"deq_b", &BuildDiffeq, 36},
      {"lattice", &BuildArLattice, 36},
  };
  for (const auto& kernel : kernels) {
    DataFlowGraph g = kernel.build(types);
    BusInsertionOptions options;
    options.bus_type = bus;
    DataFlowGraph with_bus = InsertBusTransfers(g, options);
    std::printf("%s: %zu ops (+%zu bus transfers)\n", kernel.name,
                g.op_count(), with_bus.op_count() - g.op_count());
    const ProcessId p = model.AddProcess(kernel.name, kernel.deadline);
    model.AddBlock(p, std::string(kernel.name) + "_main",
                   std::move(with_bus), kernel.deadline);
    procs.push_back(p);
  }

  model.MakeGlobal(bus, procs);
  model.SetPeriod(bus, 12);  // divides both deadlines
  if (Status s = model.Validate(); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  CoupledScheduler scheduler(model, CoupledParams{});
  auto result_or = scheduler.Run();
  if (!result_or.ok()) {
    std::fprintf(stderr, "%s\n", result_or.status().ToString().c_str());
    return 1;
  }
  const CoupledResult result = std::move(result_or).value();

  const GlobalTypeAllocation* pool = result.allocation.FindGlobal(bus);
  std::printf("\nshared buses: %d (local scheduling would build one per "
              "process)\n",
              pool->instances);
  std::printf("bus authorization per residue:\n");
  for (std::size_t u = 0; u < pool->users.size(); ++u) {
    std::printf("  %-8s:", model.process(pool->users[u]).name.c_str());
    for (int v : pool->authorization[u]) std::printf(" %d", v);
    std::printf("\n");
  }
  auto baseline = ScheduleLocalBaseline(model, CoupledParams{});
  if (baseline.ok()) {
    std::printf("\narea shared %d vs local %d\n",
                result.allocation.TotalArea(model.library()),
                baseline.value().allocation.TotalArea(model.library()));
  }

  // Prove it at runtime.
  SystemSimulator sim(model, result.schedule, result.allocation);
  TraceOptions options;
  options.activations_per_process = 10;
  const auto trace = RandomActivationTrace(model, options);
  const SimReport report = sim.Run(trace);
  std::printf("simulated %zu activations: %s\n", trace.size(),
              report.ok ? "conflict-free" : "CONFLICT (bug!)");
  return report.ok ? 0 : 1;
}
