#include "report/json_export.h"

#include <cstdio>

namespace mshls {
namespace {

/// Tiny append-only JSON builder: tracks whether a separator is needed.
class Json {
 public:
  void BeginObject() { Sep(); out_ += '{'; fresh_ = true; }
  void EndObject() { out_ += '}'; fresh_ = false; }
  void BeginArray() { Sep(); out_ += '['; fresh_ = true; }
  void EndArray() { out_ += ']'; fresh_ = false; }
  void Key(const std::string& k) {
    Sep();
    out_ += '"' + JsonEscape(k) + "\":";
    fresh_ = true;
  }
  void String(const std::string& v) {
    Sep();
    out_ += '"' + JsonEscape(v) + '"';
    fresh_ = false;
  }
  void Int(long long v) {
    Sep();
    out_ += std::to_string(v);
    fresh_ = false;
  }
  void Bool(bool v) {
    Sep();
    out_ += v ? "true" : "false";
    fresh_ = false;
  }
  [[nodiscard]] std::string Take() { return std::move(out_); }

 private:
  void Sep() {
    if (!fresh_ && !out_.empty()) {
      const char last = out_.back();
      if (last != '{' && last != '[' && last != ':') out_ += ',';
    }
    fresh_ = false;
  }
  std::string out_;
  bool fresh_ = true;
};

}  // namespace

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string ResultToJson(const SystemModel& model,
                         const CoupledResult& result) {
  const ResourceLibrary& lib = model.library();
  Json j;
  j.BeginObject();
  j.Key("processes");
  j.BeginArray();
  for (const Process& p : model.processes()) {
    j.BeginObject();
    j.Key("name");
    j.String(p.name);
    j.Key("deadline");
    j.Int(p.deadline);
    j.Key("blocks");
    j.BeginArray();
    for (BlockId bid : p.blocks) {
      const Block& b = model.block(bid);
      j.BeginObject();
      j.Key("name");
      j.String(b.name);
      j.Key("time_range");
      j.Int(b.time_range);
      j.Key("phase");
      j.Int(b.phase);
      j.Key("ops");
      j.BeginArray();
      for (const Operation& op : b.graph.ops()) {
        j.BeginObject();
        j.Key("id");
        j.Int(op.id.value());
        j.Key("name");
        j.String(op.name);
        j.Key("type");
        j.String(lib.type(op.type).name);
        j.Key("start");
        j.Int(result.schedule.of(bid).start(op.id));
        j.EndObject();
      }
      j.EndArray();
      j.EndObject();
    }
    j.EndArray();
    j.EndObject();
  }
  j.EndArray();

  j.Key("allocation");
  j.BeginObject();
  j.Key("local");
  j.BeginArray();
  for (const Process& p : model.processes()) {
    for (const ResourceType& t : lib.types()) {
      const int n = result.allocation.local[p.id.index()][t.id.index()];
      if (n == 0) continue;
      j.BeginObject();
      j.Key("process");
      j.String(p.name);
      j.Key("type");
      j.String(t.name);
      j.Key("instances");
      j.Int(n);
      j.EndObject();
    }
  }
  j.EndArray();
  j.Key("global");
  j.BeginArray();
  for (const GlobalTypeAllocation& ga : result.allocation.global) {
    j.BeginObject();
    j.Key("type");
    j.String(lib.type(ga.type).name);
    j.Key("period");
    j.Int(ga.period);
    j.Key("instances");
    j.Int(ga.instances);
    j.Key("users");
    j.BeginArray();
    for (std::size_t u = 0; u < ga.users.size(); ++u) {
      j.BeginObject();
      j.Key("process");
      j.String(model.process(ga.users[u]).name);
      j.Key("authorization");
      j.BeginArray();
      for (int v : ga.authorization[u]) j.Int(v);
      j.EndArray();
      j.EndObject();
    }
    j.EndArray();
    j.Key("profile");
    j.BeginArray();
    for (int v : ga.profile) j.Int(v);
    j.EndArray();
    j.EndObject();
  }
  j.EndArray();
  j.EndObject();

  j.Key("area");
  j.Int(result.allocation.TotalArea(lib));
  j.Key("iterations");
  j.Int(result.iterations);

  // Incremental-engine accounting of the run that produced this result
  // (carried through the schedule cache, so a replay reports the original
  // run's work).
  j.Key("stats");
  j.BeginObject();
  j.Key("iterations");
  j.Int(result.stats.iterations);
  j.Key("candidates_evaluated");
  j.Int(result.stats.candidates_evaluated);
  j.Key("candidates_repriced");
  j.Int(result.stats.candidates_repriced);
  j.Key("candidates_reused");
  j.Int(result.stats.candidates_reused);
  j.Key("tier1_invalidations");
  j.Int(result.stats.tier1_invalidations);
  j.Key("tier2_invalidations");
  j.Int(result.stats.tier2_invalidations);
  j.EndObject();
  j.EndObject();
  return j.Take();
}

std::string BindingToJson(const SystemModel& model,
                          const SystemBinding& binding) {
  Json j;
  j.BeginObject();
  j.Key("instances");
  j.BeginArray();
  for (const InstanceInfo& info : binding.instances) {
    j.BeginObject();
    j.Key("id");
    j.Int(info.id.value());
    j.Key("name");
    j.String(info.name);
    j.Key("type");
    j.String(model.library().type(info.type).name);
    j.Key("global");
    j.Bool(info.global);
    if (!info.global) {
      j.Key("owner");
      j.String(model.process(info.owner).name);
    }
    j.Key("index");
    j.Int(info.local_index);
    j.EndObject();
  }
  j.EndArray();
  j.Key("ops");
  j.BeginArray();
  for (const Block& b : model.blocks()) {
    for (const Operation& op : b.graph.ops()) {
      j.BeginObject();
      j.Key("block");
      j.String(b.name);
      j.Key("op");
      j.Int(op.id.value());
      j.Key("instance");
      j.Int(binding.of(b.id, op.id).value());
      j.EndObject();
    }
  }
  j.EndArray();
  j.EndObject();
  return j.Take();
}

}  // namespace mshls
