file(REMOVE_RECURSE
  "CMakeFiles/bench_large.dir/bench_large.cpp.o"
  "CMakeFiles/bench_large.dir/bench_large.cpp.o.d"
  "bench_large"
  "bench_large.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_large.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
