// Experiment A6 — optimality gap of the heuristics. The paper inherits
// FDS/IFDS without quantifying how far they sit from the optimum; the
// branch-and-bound scheduler provides the exact reference on graphs small
// enough to close. Reports area(FDS), area(IFDS), area(list) vs
// area(exact) over the small benchmarks and a random-graph sweep.
#include <cstdio>

#include "common/text_table.h"
#include "fds/fds_scheduler.h"
#include "report/bench_json.h"
#include "sched/exact_scheduler.h"
#include "sched/list_scheduler.h"
#include "workloads/benchmarks.h"

using namespace mshls;

namespace {

int AreaOf(const ResourceLibrary& lib, const std::vector<int>& usage) {
  int area = 0;
  for (const ResourceType& t : lib.types())
    area += usage[t.id.index()] * t.area;
  return area;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_file = TakeJsonFlag(argc, argv);
  BenchJson json("A6", "optimality");
  std::printf("== A6: optimality gap of the scheduling heuristics ==\n\n");
  SystemModel model;
  const PaperTypes t = AddPaperTypes(model.library());

  TextTable table;
  table.SetHeader({"graph", "deadline", "exact", "fds", "ifds", "list",
                   "nodes", "optimal?"});
  for (std::size_t c = 1; c < 7; ++c) table.AlignRight(c);

  struct Case {
    std::string name;
    DataFlowGraph graph;
    int range;
  };
  std::vector<Case> cases;
  cases.push_back({"diffeq", BuildDiffeq(t), 8});
  cases.push_back({"diffeq", BuildDiffeq(t), 10});
  cases.push_back({"diffeq", BuildDiffeq(t), 12});
  cases.push_back({"fir16", BuildFir16(t), 8});
  Rng rng(2026);
  for (int i = 0; i < 6; ++i) {
    RandomDfgOptions options;
    options.ops = 8 + i;
    options.layers = 3;
    DataFlowGraph g = BuildRandomDfg(t, rng, options);
    const DelayFn delay = [&](OpId op) {
      return model.library().type(g.op(op).type).delay;
    };
    const int range = g.CriticalPathLength(delay) + 2 + (i % 3);
    cases.push_back({"rand" + std::to_string(i), std::move(g), range});
  }

  long heuristic_total = 0;
  long exact_total = 0;
  for (Case& c : cases) {
    const ProcessId p = model.AddProcess(c.name + "@" +
                                         std::to_string(c.range));
    const BlockId bid = model.AddBlock(p, "b", std::move(c.graph), c.range);
    if (Status s = model.Validate(); !s.ok()) continue;
    const Block& block = model.block(bid);

    ExactOptions exact_options;
    exact_options.max_nodes = 5'000'000;
    auto exact = ScheduleBlockExact(block, model.library(), exact_options);
    auto fds = ScheduleBlockFds(block, model.library(), {});
    auto ifds = ScheduleBlockIfds(block, model.library(), {});
    auto list = ListScheduleTimeConstrained(block, model.library());
    if (!exact.ok() || !fds.ok() || !ifds.ok() || !list.ok()) continue;

    const int ea = exact.value().area;
    const int fa = AreaOf(model.library(), fds.value().usage);
    const int ia = AreaOf(model.library(), ifds.value().usage);
    const int la = AreaOf(model.library(), list.value().allocation);
    heuristic_total += ia;
    exact_total += ea;
    table.AddRow({c.name, std::to_string(c.range), std::to_string(ea),
                  std::to_string(fa), std::to_string(ia),
                  std::to_string(la),
                  std::to_string(exact.value().nodes),
                  exact.value().proven_optimal ? "yes" : "cap"});
    json.AddRow()
        .S("graph", c.name)
        .I("deadline", c.range)
        .I("exact_area", ea)
        .I("fds_area", fa)
        .I("ifds_area", ia)
        .I("list_area", la)
        .I("nodes", exact.value().nodes)
        .B("proven_optimal", exact.value().proven_optimal);
  }
  std::printf("%s", table.Render().c_str());
  std::printf("\nIFDS total area %ld vs exact %ld -> average gap %.1f%%\n",
              heuristic_total, exact_total,
              100.0 * (static_cast<double>(heuristic_total) / exact_total -
                       1.0));
  if (!json_file.empty() && !json.WriteFile(json_file)) return 1;
  return 0;
}
