// Persistence layer of the scheduling service: the CoupledResult codec
// and the on-disk fingerprint cache — roundtrips, crash-safety (torn /
// corrupt / truncated / foreign-version entries are skipped, never
// crash), warm restarts and LRU eviction under a size budget.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/hashing.h"
#include "frontend/lowering.h"
#include "modulo/coupled_scheduler.h"
#include "modulo/schedule_cache.h"
#include "report/experiment_report.h"
#include "serve/disk_cache.h"
#include "serve/result_codec.h"
#include "serve/wire.h"

namespace mshls {
namespace {

namespace fs = std::filesystem;

constexpr const char* kTinyDesign = R"(
resource add  delay 1 area 1;
resource mult delay 2 dii 1 area 4;

process alpha deadline 10 {
  block main time 10 {
    m1 = a * b;
    m2 = c * d;
    s1 = m1 + m2;
    y  = s1 + e;
  }
}
process beta deadline 10 {
  block main time 10 {
    m1 = p * q;
    y  = m1 + r;
  }
}
share add  among alpha, beta period 5;
share mult among alpha, beta period 5;
)";

constexpr const char* kOtherDesign = R"(
resource add delay 1 area 1;
process solo deadline 8 {
  block main time 8 {
    s1 = a + b;
    s2 = s1 + c;
  }
}
)";

SystemModel Compile(const char* text) {
  auto model_or = CompileSystem(text);
  EXPECT_TRUE(model_or.ok()) << model_or.status().ToString();
  return std::move(model_or).value();
}

CoupledResult Solve(SystemModel& model) {
  CoupledScheduler scheduler(model, CoupledParams{});
  auto run = scheduler.Run();
  EXPECT_TRUE(run.ok()) << run.status().ToString();
  return std::move(run).value();
}

bool SameSchedule(const SystemSchedule& a, const SystemSchedule& b) {
  if (a.blocks.size() != b.blocks.size()) return false;
  for (std::size_t i = 0; i < a.blocks.size(); ++i) {
    if (a.blocks[i].size() != b.blocks[i].size()) return false;
    for (std::size_t op = 0; op < a.blocks[i].size(); ++op)
      if (a.blocks[i].start(OpId(static_cast<std::int32_t>(op))) !=
          b.blocks[i].start(OpId(static_cast<std::int32_t>(op))))
        return false;
  }
  return true;
}

/// Fresh (pre-cleaned) per-test directory under the build tree.
fs::path TestDir(const char* name) {
  fs::path dir = fs::path("serve_test_tmp") / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// --------------------------------------------------------------- codec --

TEST(ResultCodec, RoundtripsScheduleStatsAndAllocation) {
  SystemModel model = Compile(kTinyDesign);
  ASSERT_TRUE(model.Validate().ok());
  const CoupledResult original = Solve(model);

  const std::string bytes = serve::EncodeResult(model, original);
  auto decoded_or = serve::DecodeResult(bytes, model);
  ASSERT_TRUE(decoded_or.ok()) << decoded_or.status().ToString();
  const CoupledResult& decoded = decoded_or.value();

  EXPECT_TRUE(SameSchedule(original.schedule, decoded.schedule));
  EXPECT_EQ(original.iterations, decoded.iterations);
  EXPECT_EQ(original.stats.candidates_evaluated,
            decoded.stats.candidates_evaluated);
  // The allocation is re-derived, not stored — and must still match.
  EXPECT_EQ(SummarizeAllocation(model, original.allocation),
            SummarizeAllocation(model, decoded.allocation));
  EXPECT_EQ(original.allocation.TotalArea(model.library()),
            decoded.allocation.TotalArea(model.library()));
}

TEST(ResultCodec, RejectsTruncationAtEveryLength) {
  SystemModel model = Compile(kTinyDesign);
  ASSERT_TRUE(model.Validate().ok());
  const std::string bytes = serve::EncodeResult(model, Solve(model));
  for (std::size_t len = 0; len < bytes.size(); ++len)
    EXPECT_FALSE(serve::DecodeResult(bytes.substr(0, len), model).ok())
        << "prefix of " << len << " bytes decoded";
}

TEST(ResultCodec, RejectsTrailingBytesForeignVersionAndWrongModel) {
  SystemModel model = Compile(kTinyDesign);
  ASSERT_TRUE(model.Validate().ok());
  const std::string bytes = serve::EncodeResult(model, Solve(model));

  EXPECT_FALSE(serve::DecodeResult(bytes + "x", model).ok());

  std::string versioned = bytes;
  versioned[0] = static_cast<char>(versioned[0] + 1);  // format version LSB
  EXPECT_FALSE(serve::DecodeResult(versioned, model).ok());

  SystemModel other = Compile(kOtherDesign);
  ASSERT_TRUE(other.Validate().ok());
  EXPECT_FALSE(serve::DecodeResult(bytes, other).ok());
}

TEST(ResultCodec, ForeignFormatVersionIsACompatSkipNotCorruption) {
  SystemModel model = Compile(kTinyDesign);
  ASSERT_TRUE(model.Validate().ok());
  std::string bytes = serve::EncodeResult(model, Solve(model));
  bytes[0] = 1;  // rewrite the format version LSB to v1
  const auto decoded = serve::DecodeResult(bytes, model);
  ASSERT_FALSE(decoded.ok());
  // The disk cache keys its skipped_version / skipped_corrupt split on
  // this code.
  EXPECT_EQ(decoded.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ResultCodec, TamperedCertificateStatsAreRejected) {
  SystemModel model = Compile(kTinyDesign);
  ASSERT_TRUE(model.Validate().ok());
  std::string bytes = serve::EncodeResult(model, Solve(model));
  // The trailing 6x i64 are the stored certificate stats; nudging one must
  // break the load-time re-certification agreement.
  bytes[bytes.size() - 8] = static_cast<char>(bytes[bytes.size() - 8] + 1);
  const auto decoded = serve::DecodeResult(bytes, model);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(decoded.status().message().find("certificate stats mismatch"),
            std::string::npos)
      << decoded.status().message();
}

// ----------------------------------------------------------- disk cache --

TEST(DiskCache, RoundtripsAndSurvivesRestart) {
  const fs::path dir = TestDir("roundtrip");
  SystemModel model = Compile(kTinyDesign);
  ASSERT_TRUE(model.Validate().ok());
  const CoupledResult result = Solve(model);
  const std::uint64_t key = ScheduleCacheKey(model, CoupledParams{});

  {
    serve::DiskCache cache({dir.string()});
    ASSERT_TRUE(cache.Open().ok());
    EXPECT_FALSE(cache.Load(key, model).has_value());  // cold miss
    cache.Store(key, model, result);
    EXPECT_EQ(cache.entry_count(), 1u);
    auto hit = cache.Load(key, model);
    ASSERT_TRUE(hit.has_value());
    EXPECT_TRUE(SameSchedule(result.schedule, hit->schedule));
    EXPECT_EQ(cache.stats().hits, 1);
    EXPECT_EQ(cache.stats().insertions, 1);
  }
  // A fresh instance over the same directory — the warm restart.
  serve::DiskCache reopened({dir.string()});
  ASSERT_TRUE(reopened.Open().ok());
  EXPECT_EQ(reopened.entry_count(), 1u);
  auto hit = reopened.Load(key, model);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(SameSchedule(result.schedule, hit->schedule));
}

TEST(DiskCache, SkipsCorruptTruncatedAndGarbageEntries) {
  const fs::path dir = TestDir("corrupt");
  SystemModel model = Compile(kTinyDesign);
  ASSERT_TRUE(model.Validate().ok());
  const CoupledResult result = Solve(model);
  const std::uint64_t key = ScheduleCacheKey(model, CoupledParams{});

  serve::DiskCache writer({dir.string()});
  ASSERT_TRUE(writer.Open().ok());
  writer.Store(key, model, result);
  const fs::path entry = dir / serve::DiskCache::EntryFileName(key);
  ASSERT_TRUE(fs::exists(entry));
  std::string bytes;
  {
    std::ifstream in(entry, std::ios::binary);
    bytes.assign((std::istreambuf_iterator<char>(in)),
                 std::istreambuf_iterator<char>());
  }

  auto expect_skipped = [&](const std::string& mutated, const char* what) {
    serve::DiskCache cache({dir.string(), /*max_bytes=*/256u << 20,
                            /*warn_on_skip=*/false});
    {
      std::ofstream out(entry, std::ios::binary | std::ios::trunc);
      out << mutated;
    }
    ASSERT_TRUE(cache.Open().ok());
    EXPECT_FALSE(cache.Load(key, model).has_value()) << what;
    EXPECT_EQ(cache.stats().skipped_corrupt, 1) << what;
    // The bad entry was dropped; a later Store may rewrite it cleanly.
    EXPECT_FALSE(fs::exists(entry)) << what;
  };

  std::string flipped = bytes;
  flipped[flipped.size() / 2] =
      static_cast<char>(flipped[flipped.size() / 2] ^ 0x5a);
  expect_skipped(flipped, "bit flip");
  expect_skipped(bytes.substr(0, bytes.size() / 2), "truncation");
  expect_skipped("not a cache entry at all", "garbage");
  expect_skipped("", "empty file");
}

TEST(DiskCache, SkipsForeignEnvelopeVersion) {
  const fs::path dir = TestDir("version");
  SystemModel model = Compile(kTinyDesign);
  ASSERT_TRUE(model.Validate().ok());
  const std::uint64_t key = ScheduleCacheKey(model, CoupledParams{});
  serve::DiskCache writer({dir.string()});
  ASSERT_TRUE(writer.Open().ok());
  writer.Store(key, model, Solve(model));

  const fs::path entry = dir / serve::DiskCache::EntryFileName(key);
  std::string bytes;
  {
    std::ifstream in(entry, std::ios::binary);
    bytes.assign((std::istreambuf_iterator<char>(in)),
                 std::istreambuf_iterator<char>());
  }
  bytes[4] = static_cast<char>(bytes[4] + 1);  // envelope version LSB
  {
    std::ofstream out(entry, std::ios::binary | std::ios::trunc);
    out << bytes;
  }
  serve::DiskCache cache({dir.string(), /*max_bytes=*/256u << 20,
                          /*warn_on_skip=*/false});
  ASSERT_TRUE(cache.Open().ok());
  EXPECT_FALSE(cache.Load(key, model).has_value());
  EXPECT_EQ(cache.stats().skipped_version, 1);
  EXPECT_EQ(cache.stats().skipped_corrupt, 0);
}

TEST(DiskCache, TamperedEntryWithRepairedChecksumDowngradesToMiss) {
  // An attacker (or a buggy sync job) that edits an entry *and* fixes the
  // envelope checksum gets past the byte-integrity layer — the persisted
  // certificate stats are the second line: the load-time re-certification
  // disagrees and the entry is dropped as corrupt.
  const fs::path dir = TestDir("tampered");
  SystemModel model = Compile(kTinyDesign);
  ASSERT_TRUE(model.Validate().ok());
  const std::uint64_t key = ScheduleCacheKey(model, CoupledParams{});
  serve::DiskCache writer({dir.string()});
  ASSERT_TRUE(writer.Open().ok());
  writer.Store(key, model, Solve(model));

  const fs::path entry = dir / serve::DiskCache::EntryFileName(key);
  std::string bytes;
  {
    std::ifstream in(entry, std::ios::binary);
    bytes.assign((std::istreambuf_iterator<char>(in)),
                 std::istreambuf_iterator<char>());
  }
  // Envelope: magic u32, version u32, key u64, stamp_len u32, stamp,
  // payload_len u32, payload, checksum u64 over the payload.
  std::size_t cursor = 4 + 4 + 8;  // skip magic u32, version u32, key u64
  std::uint32_t stamp_len = 0;
  ASSERT_TRUE(serve::GetU32(bytes, cursor, &stamp_len));
  cursor += stamp_len;
  std::uint32_t payload_len = 0;
  ASSERT_TRUE(serve::GetU32(bytes, cursor, &payload_len));
  std::string payload = bytes.substr(cursor, payload_len);
  // Bump a stored certificate-stats long (the payload's trailing 48
  // bytes), then recompute the checksum so the envelope still verifies.
  payload[payload.size() - 8] =
      static_cast<char>(payload[payload.size() - 8] + 1);
  std::string tampered = bytes.substr(0, cursor) + payload;
  StableHasher h;
  h.Mix(std::string_view(payload));
  serve::PutU64(tampered, h.Digest());
  {
    std::ofstream out(entry, std::ios::binary | std::ios::trunc);
    out << tampered;
  }

  serve::DiskCache cache({dir.string(), /*max_bytes=*/256u << 20,
                          /*warn_on_skip=*/false});
  ASSERT_TRUE(cache.Open().ok());
  EXPECT_FALSE(cache.Load(key, model).has_value());
  EXPECT_EQ(cache.stats().skipped_corrupt, 1);
  EXPECT_FALSE(fs::exists(entry));  // dropped, a re-solve overwrites it
}

TEST(DiskCache, SweepsTmpResidueFromKilledWriter) {
  const fs::path dir = TestDir("tmp_residue");
  // Simulate a writer killed between tmp write and rename.
  {
    std::ofstream out(dir / "0123456789abcdef.msc.tmp42.1", std::ios::binary);
    out << "half-written entry";
  }
  serve::DiskCache cache({dir.string()});
  ASSERT_TRUE(cache.Open().ok());
  EXPECT_EQ(cache.stats().dropped_tmp, 1);
  EXPECT_EQ(cache.entry_count(), 0u);
  EXPECT_FALSE(fs::exists(dir / "0123456789abcdef.msc.tmp42.1"));
}

TEST(DiskCache, EvictsLeastRecentlyUsedUnderBudget) {
  const fs::path dir = TestDir("lru");
  SystemModel model = Compile(kTinyDesign);
  ASSERT_TRUE(model.Validate().ok());
  const CoupledResult result = Solve(model);
  const std::uint64_t key = ScheduleCacheKey(model, CoupledParams{});

  // Measure one entry, then budget for exactly two.
  serve::DiskCache probe({dir.string()});
  ASSERT_TRUE(probe.Open().ok());
  probe.Store(key, model, result);
  const std::uint64_t entry_bytes = probe.total_bytes();
  ASSERT_GT(entry_bytes, 0u);
  fs::remove_all(dir);

  serve::DiskCache cache({dir.string(), /*max_bytes=*/2 * entry_bytes + 1});
  ASSERT_TRUE(cache.Open().ok());
  // Distinct keys, same payload (the cache never cross-checks key vs
  // content on Store — the key IS the fingerprint upstream).
  cache.Store(key, model, result);
  cache.Store(key + 1, model, result);
  EXPECT_EQ(cache.entry_count(), 2u);
  // Touch the oldest so the *other* one is now least-recent.
  EXPECT_TRUE(cache.Load(key, model).has_value());
  cache.Store(key + 2, model, result);
  EXPECT_EQ(cache.entry_count(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1);
  EXPECT_TRUE(fs::exists(dir / serve::DiskCache::EntryFileName(key)));
  EXPECT_FALSE(fs::exists(dir / serve::DiskCache::EntryFileName(key + 1)));
  EXPECT_TRUE(fs::exists(dir / serve::DiskCache::EntryFileName(key + 2)));
}

TEST(DiskCache, RejectsEntriesLargerThanTheWholeBudget) {
  const fs::path dir = TestDir("oversize");
  SystemModel model = Compile(kTinyDesign);
  ASSERT_TRUE(model.Validate().ok());
  serve::DiskCache cache({dir.string(), /*max_bytes=*/16});
  ASSERT_TRUE(cache.Open().ok());
  cache.Store(7, model, Solve(model));
  EXPECT_EQ(cache.entry_count(), 0u);
  EXPECT_EQ(cache.stats().rejected_oversize, 1);
}

// -------------------------------------------------- two-tier integration --

TEST(ScheduleWithCache, StoreHitSkipsTheSolverAndPromotes) {
  const fs::path dir = TestDir("two_tier");
  serve::DiskCache disk({dir.string()});
  ASSERT_TRUE(disk.Open().ok());

  SystemModel cold_model = Compile(kTinyDesign);
  ScheduleCache cold_cache;
  bool hit = true, store_hit = true;
  auto cold = ScheduleWithCache(cold_model, CoupledParams{}, &cold_cache, &hit,
                                &disk, &store_hit);
  ASSERT_TRUE(cold.ok());
  EXPECT_FALSE(hit);
  EXPECT_FALSE(store_hit);

  // New process simulation: fresh memory tier, same disk.
  SystemModel warm_model = Compile(kTinyDesign);
  ScheduleCache warm_cache;
  auto warm = ScheduleWithCache(warm_model, CoupledParams{}, &warm_cache, &hit,
                                &disk, &store_hit);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(hit);
  EXPECT_TRUE(store_hit);
  EXPECT_TRUE(SameSchedule(cold.value().schedule, warm.value().schedule));
  // Promoted: the next lookup hits the memory tier, not the disk.
  EXPECT_EQ(warm_cache.stats().insertions, 1);
  const long long disk_hits_before = disk.stats().hits;
  bool hit2 = false, store_hit2 = true;
  auto memory = ScheduleWithCache(warm_model, CoupledParams{}, &warm_cache,
                                  &hit2, &disk, &store_hit2);
  ASSERT_TRUE(memory.ok());
  EXPECT_TRUE(hit2);
  EXPECT_FALSE(store_hit2);
  EXPECT_EQ(disk.stats().hits, disk_hits_before);
}

}  // namespace
}  // namespace mshls
