file(REMOVE_RECURSE
  "CMakeFiles/type_merge_test.dir/type_merge_test.cpp.o"
  "CMakeFiles/type_merge_test.dir/type_merge_test.cpp.o.d"
  "type_merge_test"
  "type_merge_test.pdb"
  "type_merge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/type_merge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
