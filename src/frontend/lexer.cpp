#include "frontend/lexer.h"

#include <cctype>
#include <limits>

namespace mshls {

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdent: return "identifier";
    case TokenKind::kInt: return "integer";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kComma: return "','";
    case TokenKind::kSemicolon: return "';'";
    case TokenKind::kAssign: return "'='";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kLess: return "'<'";
    case TokenKind::kEof: return "end of input";
  }
  return "?";
}

StatusOr<std::vector<Token>> Tokenize(std::string_view source) {
  std::vector<Token> tokens;
  int line = 1;
  int column = 1;
  std::size_t i = 0;
  const std::size_t n = source.size();

  auto advance = [&](std::size_t count) {
    for (std::size_t k = 0; k < count; ++k) {
      if (source[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
      ++i;
    }
  };

  while (i < n) {
    const char c = source[i];
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance(1);
      continue;
    }
    if (c == '#' || (c == '/' && i + 1 < n && source[i + 1] == '/')) {
      while (i < n && source[i] != '\n') advance(1);
      continue;
    }

    Token tok;
    tok.line = line;
    tok.column = column;

    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(source[j])) ||
                       source[j] == '_'))
        ++j;
      tok.kind = TokenKind::kIdent;
      tok.text = std::string(source.substr(i, j - i));
      advance(j - i);
      tokens.push_back(std::move(tok));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      long value = 0;
      constexpr long kMax = std::numeric_limits<long>::max();
      while (j < n && std::isdigit(static_cast<unsigned char>(source[j]))) {
        const long digit = source[j] - '0';
        if (value > (kMax - digit) / 10)
          return Status{StatusCode::kParseError,
                        "line " + std::to_string(line) +
                            ": integer literal overflows"};
        value = value * 10 + digit;
        ++j;
      }
      tok.kind = TokenKind::kInt;
      tok.text = std::string(source.substr(i, j - i));
      tok.value = value;
      advance(j - i);
      tokens.push_back(std::move(tok));
      continue;
    }

    switch (c) {
      case '{': tok.kind = TokenKind::kLBrace; break;
      case '}': tok.kind = TokenKind::kRBrace; break;
      case '(': tok.kind = TokenKind::kLParen; break;
      case ')': tok.kind = TokenKind::kRParen; break;
      case ',': tok.kind = TokenKind::kComma; break;
      case ';': tok.kind = TokenKind::kSemicolon; break;
      case '=': tok.kind = TokenKind::kAssign; break;
      case '+': tok.kind = TokenKind::kPlus; break;
      case '-': tok.kind = TokenKind::kMinus; break;
      case '*': tok.kind = TokenKind::kStar; break;
      case '/': tok.kind = TokenKind::kSlash; break;
      case '<': tok.kind = TokenKind::kLess; break;
      default:
        return Status{StatusCode::kParseError,
                      "line " + std::to_string(line) +
                          ": unexpected character '" + std::string(1, c) +
                          "'"};
    }
    tok.text = std::string(1, c);
    advance(1);
    tokens.push_back(std::move(tok));
  }

  Token eof;
  eof.kind = TokenKind::kEof;
  eof.line = line;
  eof.column = column;
  tokens.push_back(std::move(eof));
  return tokens;
}

}  // namespace mshls
