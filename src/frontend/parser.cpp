#include "frontend/parser.h"

#include <optional>

#include "frontend/lexer.h"

namespace mshls {
namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<AstSystem> Parse() {
    AstSystem system;
    while (!At(TokenKind::kEof)) {
      if (AtKeyword("resource")) {
        auto r = ParseResource();
        if (!r.ok()) return r.status();
        system.resources.push_back(std::move(r).value());
      } else if (AtKeyword("process")) {
        auto p = ParseProcess();
        if (!p.ok()) return p.status();
        system.processes.push_back(std::move(p).value());
      } else if (AtKeyword("share")) {
        auto s = ParseShare();
        if (!s.ok()) return s.status();
        system.shares.push_back(std::move(s).value());
      } else {
        return Error("expected 'resource', 'process' or 'share'");
      }
    }
    return system;
  }

 private:
  [[nodiscard]] const Token& Peek() const { return tokens_[pos_]; }
  [[nodiscard]] bool At(TokenKind kind) const { return Peek().kind == kind; }
  [[nodiscard]] bool AtKeyword(std::string_view kw) const {
    return Peek().kind == TokenKind::kIdent && Peek().text == kw;
  }
  Token Take() { return tokens_[pos_++]; }

  Status Error(const std::string& message) const {
    return {StatusCode::kParseError,
            "line " + std::to_string(Peek().line) + ": " + message +
                " (found " + std::string(TokenKindName(Peek().kind)) +
                (Peek().text.empty() ? "" : " '" + Peek().text + "'") + ")"};
  }

  StatusOr<Token> Expect(TokenKind kind, const std::string& what) {
    if (!At(kind)) return Error("expected " + what);
    return Take();
  }

  StatusOr<Token> ExpectKeyword(std::string_view kw) {
    if (!AtKeyword(kw)) return Error("expected '" + std::string(kw) + "'");
    return Take();
  }

  StatusOr<int> ExpectInt(const std::string& what) {
    auto t = Expect(TokenKind::kInt, what);
    if (!t.ok()) return t.status();
    return static_cast<int>(t.value().value);
  }

  StatusOr<AstResource> ParseResource() {
    AstResource r;
    r.line = Peek().line;
    if (auto s = ExpectKeyword("resource"); !s.ok()) return s.status();
    auto name = Expect(TokenKind::kIdent, "resource name");
    if (!name.ok()) return name.status();
    r.name = name.value().text;
    if (auto s = ExpectKeyword("delay"); !s.ok()) return s.status();
    auto delay = ExpectInt("delay value");
    if (!delay.ok()) return delay.status();
    r.delay = delay.value();
    if (AtKeyword("dii")) {
      Take();
      auto dii = ExpectInt("dii value");
      if (!dii.ok()) return dii.status();
      r.dii = dii.value();
    }
    if (auto s = ExpectKeyword("area"); !s.ok()) return s.status();
    auto area = ExpectInt("area value");
    if (!area.ok()) return area.status();
    r.area = area.value();
    if (auto s = Expect(TokenKind::kSemicolon, "';'"); !s.ok())
      return s.status();
    return r;
  }

  StatusOr<AstProcess> ParseProcess() {
    AstProcess p;
    p.line = Peek().line;
    if (auto s = ExpectKeyword("process"); !s.ok()) return s.status();
    auto name = Expect(TokenKind::kIdent, "process name");
    if (!name.ok()) return name.status();
    p.name = name.value().text;
    if (AtKeyword("deadline")) {
      Take();
      auto d = ExpectInt("deadline value");
      if (!d.ok()) return d.status();
      p.deadline = d.value();
    }
    if (auto s = Expect(TokenKind::kLBrace, "'{'"); !s.ok())
      return s.status();
    while (!At(TokenKind::kRBrace)) {
      auto b = ParseBlock();
      if (!b.ok()) return b.status();
      p.blocks.push_back(std::move(b).value());
    }
    Take();  // '}'
    if (p.blocks.empty())
      return Status{StatusCode::kParseError,
                    "line " + std::to_string(p.line) + ": process '" +
                        p.name + "' has no blocks"};
    return p;
  }

  StatusOr<AstBlock> ParseBlock() {
    AstBlock b;
    b.line = Peek().line;
    if (auto s = ExpectKeyword("block"); !s.ok()) return s.status();
    auto name = Expect(TokenKind::kIdent, "block name");
    if (!name.ok()) return name.status();
    b.name = name.value().text;
    if (auto s = ExpectKeyword("time"); !s.ok()) return s.status();
    auto t = ExpectInt("time range");
    if (!t.ok()) return t.status();
    b.time_range = t.value();
    if (AtKeyword("phase")) {
      Take();
      auto ph = ExpectInt("phase value");
      if (!ph.ok()) return ph.status();
      b.phase = ph.value();
    }
    if (auto s = Expect(TokenKind::kLBrace, "'{'"); !s.ok())
      return s.status();
    while (!At(TokenKind::kRBrace)) {
      auto stmt = ParseStatement();
      if (!stmt.ok()) return stmt.status();
      b.statements.push_back(std::move(stmt).value());
    }
    Take();  // '}'
    return b;
  }

  [[nodiscard]] static std::optional<std::string> OperatorResource(
      TokenKind kind) {
    switch (kind) {
      case TokenKind::kPlus: return "add";
      case TokenKind::kMinus: return "sub";
      case TokenKind::kStar: return "mult";
      case TokenKind::kSlash: return "div";
      case TokenKind::kLess: return "cmp";
      default: return std::nullopt;
    }
  }

  StatusOr<AstStatement> ParseStatement() {
    AstStatement stmt;
    stmt.line = Peek().line;
    auto target = Expect(TokenKind::kIdent, "assignment target");
    if (!target.ok()) return target.status();
    stmt.target = target.value().text;
    if (auto s = Expect(TokenKind::kAssign, "'='"); !s.ok())
      return s.status();

    auto first = Expect(TokenKind::kIdent, "operand or function name");
    if (!first.ok()) return first.status();

    if (At(TokenKind::kLParen)) {
      // Call form: name(args...) using resource
      Take();
      stmt.operands.clear();
      for (;;) {
        auto arg = Expect(TokenKind::kIdent, "call argument");
        if (!arg.ok()) return arg.status();
        stmt.operands.push_back(arg.value().text);
        if (At(TokenKind::kComma)) {
          Take();
          continue;
        }
        break;
      }
      if (auto s = Expect(TokenKind::kRParen, "')'"); !s.ok())
        return s.status();
      if (auto s = ExpectKeyword("using"); !s.ok()) return s.status();
      auto res = Expect(TokenKind::kIdent, "resource name");
      if (!res.ok()) return res.status();
      stmt.resource = res.value().text;
    } else {
      // Binary operator form.
      const auto resource = OperatorResource(Peek().kind);
      if (!resource.has_value())
        return Error("expected an operator (+ - * / <) or '('");
      Take();
      stmt.resource = *resource;
      stmt.operands.push_back(first.value().text);
      auto rhs = Expect(TokenKind::kIdent, "right operand");
      if (!rhs.ok()) return rhs.status();
      stmt.operands.push_back(rhs.value().text);
    }
    if (auto s = Expect(TokenKind::kSemicolon, "';'"); !s.ok())
      return s.status();
    return stmt;
  }

  StatusOr<AstShare> ParseShare() {
    AstShare share;
    share.line = Peek().line;
    if (auto s = ExpectKeyword("share"); !s.ok()) return s.status();
    auto res = Expect(TokenKind::kIdent, "resource name");
    if (!res.ok()) return res.status();
    share.resource = res.value().text;
    if (auto s = ExpectKeyword("among"); !s.ok()) return s.status();
    for (;;) {
      auto p = Expect(TokenKind::kIdent, "process name");
      if (!p.ok()) return p.status();
      share.processes.push_back(p.value().text);
      if (At(TokenKind::kComma)) {
        Take();
        continue;
      }
      break;
    }
    if (AtKeyword("period")) {
      Take();
      auto period = ExpectInt("period value");
      if (!period.ok()) return period.status();
      share.period = period.value();
    }
    if (auto s = Expect(TokenKind::kSemicolon, "';'"); !s.ok())
      return s.status();
    return share;
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

StatusOr<AstSystem> ParseSystemText(std::string_view source) {
  auto tokens = Tokenize(source);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).value());
  return parser.Parse();
}

}  // namespace mshls
