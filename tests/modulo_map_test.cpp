#include <gtest/gtest.h>

#include "common/rng.h"
#include "modulo/modulo_map.h"

namespace mshls {
namespace {

TEST(ResidueTest, BasicMapping) {
  // Paper eq. 1: tau = t mod lambda (phase 0).
  EXPECT_EQ(ResidueOf(0, 0, 5), 0);
  EXPECT_EQ(ResidueOf(7, 0, 5), 2);
  EXPECT_EQ(ResidueOf(5, 0, 5), 0);
}

TEST(ResidueTest, PhaseShiftsResidue) {
  EXPECT_EQ(ResidueOf(0, 3, 5), 3);
  EXPECT_EQ(ResidueOf(2, 3, 5), 0);
  EXPECT_EQ(ResidueOf(4, 4, 5), 3);
}

TEST(ModuloMaxTest, TakesMaximumPerResidueClass) {
  // d over 6 steps, lambda 3: classes {0,3}, {1,4}, {2,5}.
  const Profile d{1.0, 0.5, 0.0, 2.0, 0.25, 3.0};
  const Profile out = ModuloMaxTransform(std::span<const double>(d), 0, 3);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[0], 2.0);
  EXPECT_DOUBLE_EQ(out[1], 0.5);
  EXPECT_DOUBLE_EQ(out[2], 3.0);
}

TEST(ModuloMaxTest, PhaseRotatesClasses) {
  const Profile d{1.0, 0.0, 0.0, 0.0};
  const Profile out = ModuloMaxTransform(std::span<const double>(d), 2, 4);
  // Step 0 maps to residue 2.
  EXPECT_DOUBLE_EQ(out[2], 1.0);
  EXPECT_DOUBLE_EQ(out[0], 0.0);
}

TEST(ModuloMaxTest, PeriodOneCollapsesToGlobalMax) {
  const Profile d{0.25, 4.0, 1.0};
  const Profile out = ModuloMaxTransform(std::span<const double>(d), 0, 1);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0], 4.0);
}

TEST(ModuloMaxTest, PeriodBeyondLengthIsIdentityPlusZeros) {
  const Profile d{1.0, 2.0};
  const Profile out = ModuloMaxTransform(std::span<const double>(d), 0, 4);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_DOUBLE_EQ(out[0], 1.0);
  EXPECT_DOUBLE_EQ(out[1], 2.0);
  EXPECT_DOUBLE_EQ(out[2], 0.0);
  EXPECT_DOUBLE_EQ(out[3], 0.0);
}

TEST(ModuloMaxTest, IntegerVariantAgrees) {
  const std::vector<int> d{1, 0, 3, 2, 0, 1};
  const std::vector<int> out =
      ModuloMaxTransform(std::span<const int>(d), 1, 2);
  ASSERT_EQ(out.size(), 2u);
  // Residues with phase 1: t0->1, t1->0, t2->1, t3->0, t4->1, t5->0.
  EXPECT_EQ(out[1], 3);  // max(1, 3, 0)
  EXPECT_EQ(out[0], 2);  // max(0, 2, 1)
}

TEST(ModuloMaxTest, MatchesBruteForceOnRandomProfiles) {
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    const int len = rng.NextInt(1, 40);
    const int lambda = rng.NextInt(1, 12);
    const int phase = rng.NextInt(0, lambda - 1);
    Profile d(static_cast<std::size_t>(len));
    for (double& v : d) v = rng.NextDouble() * 10;
    const Profile out = ModuloMaxTransform(std::span<const double>(d), phase,
                                           lambda);
    ASSERT_EQ(out.size(), static_cast<std::size_t>(lambda));
    for (int tau = 0; tau < lambda; ++tau) {
      double expect = 0;
      for (int t = 0; t < len; ++t)
        if ((phase + t) % lambda == tau)
          expect = std::max(expect, d[static_cast<std::size_t>(t)]);
      EXPECT_DOUBLE_EQ(out[static_cast<std::size_t>(tau)], expect);
    }
  }
}

TEST(ModuloMaxTest, IdempotentOnPeriodicProfiles) {
  // Folding a profile that is already one period long is the identity.
  const Profile d{1.5, 0.5, 2.5};
  const Profile once = ModuloMaxTransform(std::span<const double>(d), 0, 3);
  const Profile twice =
      ModuloMaxTransform(std::span<const double>(once), 0, 3);
  EXPECT_EQ(once, twice);
}

TEST(ElementwiseMaxTest, DoubleAndIntVariants) {
  const Profile a{1.0, 5.0, 0.0};
  const Profile b{2.0, 4.0, 0.0};
  EXPECT_EQ(ElementwiseMax(std::span<const double>(a),
                           std::span<const double>(b)),
            (Profile{2.0, 5.0, 0.0}));
  const std::vector<int> ia{1, 5, 0};
  const std::vector<int> ib{2, 4, 0};
  EXPECT_EQ(
      ElementwiseMax(std::span<const int>(ia), std::span<const int>(ib)),
      (std::vector<int>{2, 5, 0}));
}

}  // namespace
}  // namespace mshls
