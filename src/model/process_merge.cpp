#include "model/process_merge.h"

#include <algorithm>

namespace mshls {

StatusOr<SystemModel> MergeProcesses(const SystemModel& model,
                                     std::span<const ProcessId> sources,
                                     std::string_view merged_name) {
  if (sources.size() < 2)
    return Status{StatusCode::kInvalidArgument,
                  "process merge needs at least two source processes"};
  for (ProcessId p : sources) {
    if (!p.valid() || p.index() >= model.process_count())
      return Status{StatusCode::kInvalidArgument,
                    "process merge: unknown process id"};
    if (model.process(p).blocks.size() != 1)
      return Status{StatusCode::kInvalidArgument,
                    "process merge requires single-block processes ('" +
                        model.process(p).name + "' has " +
                        std::to_string(model.process(p).blocks.size()) +
                        " blocks)"};
  }

  SystemModel merged;
  // Copy the resource library verbatim.
  for (const ResourceType& t : model.library().types())
    merged.library().AddType(t.name, t.delay, t.dii, t.area);

  auto is_source = [&](ProcessId p) {
    return std::find(sources.begin(), sources.end(), p) != sources.end();
  };

  // Merged block: disjoint union of the sources' graphs; the combined
  // time range must admit every source's schedule — the max of the source
  // ranges (all sources now share one activation, so the fast ones wait
  // for the slow ones; that IS the cost of merging).
  DataFlowGraph union_graph;
  int merged_range = 0;
  int merged_deadline = 0;
  for (ProcessId pid : sources) {
    const Process& p = model.process(pid);
    const Block& b = model.block(p.blocks[0]);
    merged_range = std::max(merged_range, b.time_range);
    merged_deadline = std::max(merged_deadline, p.deadline);
    std::vector<OpId> map(b.graph.op_count());
    for (const Operation& op : b.graph.ops())
      map[op.id.index()] =
          union_graph.AddOp(op.type, p.name + "_" + op.name);
    for (const Edge& e : b.graph.edges())
      union_graph.AddEdge(map[e.from.index()], map[e.to.index()]);
  }
  if (Status s = union_graph.Validate(); !s.ok()) return s;

  const ProcessId merged_pid =
      merged.AddProcess(merged_name, merged_deadline);
  merged.AddBlock(merged_pid, std::string(merged_name) + "_main",
                  std::move(union_graph), merged_range);

  // Copy the remaining processes.
  for (const Process& p : model.processes()) {
    if (is_source(p.id)) continue;
    const ProcessId np = merged.AddProcess(p.name, p.deadline);
    for (BlockId bid : p.blocks) {
      const Block& b = model.block(bid);
      DataFlowGraph g;
      for (const Operation& op : b.graph.ops()) g.AddOp(op.type, op.name);
      for (const Edge& e : b.graph.edges()) g.AddEdge(e.from, e.to);
      if (Status s = g.Validate(); !s.ok()) return s;
      merged.AddBlock(np, b.name, std::move(g), b.time_range, b.phase);
    }
  }

  if (Status s = merged.Validate(); !s.ok()) return s;
  return merged;
}

}  // namespace mshls
