#include "serve/disk_cache.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <vector>

#include <unistd.h>

#include "common/build_info.h"
#include "common/hashing.h"
#include "obs/metrics.h"
#include "serve/result_codec.h"
#include "serve/wire.h"

namespace mshls::serve {
namespace {

constexpr std::uint32_t kEntryMagic = 0x4348534du;  // "MSHC"
/// On-disk envelope version (independent of the result payload's own
/// format version inside serve/result_codec.h).
constexpr std::uint32_t kEntryVersion = 1;
constexpr const char* kEntrySuffix = ".msc";

std::string BuildStamp() {
  const BuildInfo& info = GetBuildInfo();
  return std::string(info.version) + " " + info.git_hash;
}

/// Entry file bytes: magic, envelope version, key, build-stamp string
/// (provenance only), payload, checksum over the payload.
std::string EncodeEntry(std::uint64_t key, const std::string& payload) {
  std::string out;
  const std::string stamp = BuildStamp();
  out.reserve(32 + stamp.size() + payload.size());
  PutU32(out, kEntryMagic);
  PutU32(out, kEntryVersion);
  PutU64(out, key);
  PutU32(out, static_cast<std::uint32_t>(stamp.size()));
  out.append(stamp);
  PutU32(out, static_cast<std::uint32_t>(payload.size()));
  out.append(payload);
  StableHasher h;
  h.Mix(std::string_view(payload));
  PutU64(out, h.Digest());
  return out;
}

enum class EntryProblem { kNone, kCorrupt, kVersion };

/// Splits an entry file back into its payload; returns the problem class
/// (kVersion only for a well-formed envelope of a different version).
EntryProblem DecodeEntry(std::string_view bytes, std::uint64_t expected_key,
                         std::string* payload, std::string* why) {
  std::size_t cursor = 0;
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  std::uint64_t key = 0;
  std::uint32_t stamp_len = 0;
  if (!GetU32(bytes, cursor, &magic) || magic != kEntryMagic) {
    *why = "bad magic";
    return EntryProblem::kCorrupt;
  }
  if (!GetU32(bytes, cursor, &version)) {
    *why = "truncated header";
    return EntryProblem::kCorrupt;
  }
  if (version != kEntryVersion) {
    *why = "envelope version " + std::to_string(version) + " != " +
           std::to_string(kEntryVersion);
    return EntryProblem::kVersion;
  }
  if (!GetU64(bytes, cursor, &key)) {
    *why = "truncated header";
    return EntryProblem::kCorrupt;
  }
  if (key != expected_key) {
    *why = "key mismatch (file renamed?)";
    return EntryProblem::kCorrupt;
  }
  if (!GetU32(bytes, cursor, &stamp_len) ||
      cursor + stamp_len > bytes.size()) {
    *why = "truncated build stamp";
    return EntryProblem::kCorrupt;
  }
  cursor += stamp_len;  // provenance only; never compat-checked
  std::uint32_t payload_len = 0;
  if (!GetU32(bytes, cursor, &payload_len) ||
      cursor + payload_len + 8 != bytes.size()) {
    *why = "truncated payload";
    return EntryProblem::kCorrupt;
  }
  const std::string_view body = bytes.substr(cursor, payload_len);
  cursor += payload_len;
  std::uint64_t checksum = 0;
  (void)GetU64(bytes, cursor, &checksum);
  StableHasher h;
  h.Mix(body);
  if (h.Digest() != checksum) {
    *why = "checksum mismatch";
    return EntryProblem::kCorrupt;
  }
  payload->assign(body);
  return EntryProblem::kNone;
}

bool ReadFileBytes(const std::filesystem::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) return false;
  *out = std::move(bytes);
  return true;
}

}  // namespace

DiskCache::DiskCache(DiskCacheOptions options)
    : options_(std::move(options)) {}

std::string DiskCache::EntryFileName(std::uint64_t key) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(key));
  return std::string(buf) + kEntrySuffix;
}

std::filesystem::path DiskCache::PathOf(std::uint64_t key) const {
  return std::filesystem::path(options_.dir) / EntryFileName(key);
}

void DiskCache::Warn(const std::string& file, const std::string& why) const {
  if (options_.warn_on_skip)
    std::fprintf(stderr, "mshls disk cache: skipping %s: %s\n", file.c_str(),
                 why.c_str());
}

Status DiskCache::Open() {
  namespace fs = std::filesystem;
  std::lock_guard<std::mutex> lock(mutex_);
  std::error_code ec;
  fs::create_directories(options_.dir, ec);
  if (ec)
    return Status{StatusCode::kInvalidArgument,
                  "cannot create cache dir " + options_.dir + ": " +
                      ec.message()};

  // Collect (mtime, name, key, size) of every plausible entry; everything
  // else under the directory is either crash residue (tmp files — removed)
  // or foreign (ignored).
  struct Found {
    fs::file_time_type mtime;
    std::string name;
    std::uint64_t key;
    std::uint64_t bytes;
  };
  std::vector<Found> found;
  fs::directory_iterator it(options_.dir, ec);
  if (ec)
    return Status{StatusCode::kInvalidArgument,
                  "cannot read cache dir " + options_.dir + ": " +
                      ec.message()};
  for (const fs::directory_entry& entry : it) {
    std::error_code entry_ec;
    if (!entry.is_regular_file(entry_ec) || entry_ec) continue;
    const std::string name = entry.path().filename().string();
    if (name.find(".tmp") != std::string::npos) {
      fs::remove(entry.path(), entry_ec);
      ++stats_.dropped_tmp;
      continue;
    }
    if (name.size() != 16 + 4 || name.substr(16) != kEntrySuffix) continue;
    std::uint64_t key = 0;
    bool hex_ok = true;
    for (int i = 0; i < 16; ++i) {
      const char c = name[static_cast<std::size_t>(i)];
      key <<= 4;
      if (c >= '0' && c <= '9') key |= static_cast<std::uint64_t>(c - '0');
      else if (c >= 'a' && c <= 'f')
        key |= static_cast<std::uint64_t>(c - 'a' + 10);
      else { hex_ok = false; break; }
    }
    if (!hex_ok) continue;
    Found f;
    f.mtime = entry.last_write_time(entry_ec);
    if (entry_ec) continue;
    f.bytes = entry.file_size(entry_ec);
    if (entry_ec) continue;
    f.name = name;
    f.key = key;
    found.push_back(std::move(f));
  }

  // Oldest first, name as the deterministic tie-break.
  std::sort(found.begin(), found.end(), [](const Found& a, const Found& b) {
    if (a.mtime != b.mtime) return a.mtime < b.mtime;
    return a.name < b.name;
  });
  index_.clear();
  lru_.clear();
  total_bytes_ = 0;
  for (const Found& f : found) {
    Entry e;
    e.bytes = f.bytes;
    lru_.push_back(f.key);
    e.lru_pos = std::prev(lru_.end());
    index_.emplace(f.key, e);
    total_bytes_ += f.bytes;
  }
  EvictOverBudgetLocked();
  return Status::Ok();
}

std::optional<CoupledResult> DiskCache::Load(std::uint64_t key,
                                             const SystemModel& model) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  const std::filesystem::path path = PathOf(key);
  std::string bytes;
  if (!ReadFileBytes(path, &bytes)) {
    Warn(path.filename().string(), "unreadable");
    ++stats_.skipped_corrupt;
    ++stats_.misses;
    DropEntryLocked(key, /*count_as_eviction=*/false);
    return std::nullopt;
  }
  std::string payload;
  std::string why;
  const EntryProblem problem = DecodeEntry(bytes, key, &payload, &why);
  if (problem != EntryProblem::kNone) {
    Warn(path.filename().string(), why);
    ++(problem == EntryProblem::kVersion ? stats_.skipped_version
                                         : stats_.skipped_corrupt);
    ++stats_.misses;
    DropEntryLocked(key, /*count_as_eviction=*/false);
    return std::nullopt;
  }
  auto result_or = DecodeResult(payload, model);
  if (!result_or.ok()) {
    Warn(path.filename().string(), result_or.status().message());
    // kFailedPrecondition marks a payload written by another result-codec
    // format version (e.g. v1 entries after the v2 certificate-stats
    // extension) — a compat skip, not corruption.
    ++(result_or.status().code() == StatusCode::kFailedPrecondition
           ? stats_.skipped_version
           : stats_.skipped_corrupt);
    ++stats_.misses;
    DropEntryLocked(key, /*count_as_eviction=*/false);
    return std::nullopt;
  }
  ++stats_.hits;
  TouchLocked(key);
  return std::move(result_or).value();
}

void DiskCache::Store(std::uint64_t key, const SystemModel& model,
                      const CoupledResult& result) {
  // The key fingerprints the model; the model itself is still needed to
  // take the certificate that travels with the entry (result_codec v2).
  const std::string entry = EncodeEntry(key, EncodeResult(model, result));
  std::lock_guard<std::mutex> lock(mutex_);
  if (options_.max_bytes > 0 && entry.size() > options_.max_bytes) {
    ++stats_.rejected_oversize;
    return;
  }
  if (index_.count(key) > 0) {
    // First result wins, exactly like the memory tier: runs are
    // deterministic, so rewriting only churns the disk.
    TouchLocked(key);
    return;
  }
  namespace fs = std::filesystem;
  const fs::path path = PathOf(key);
  const fs::path tmp =
      fs::path(options_.dir) /
      (EntryFileName(key) + ".tmp" + std::to_string(::getpid()) + "." +
       std::to_string(++write_seq_));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out ||
        !out.write(entry.data(), static_cast<std::streamsize>(entry.size()))) {
      ++stats_.write_failures;
      std::error_code ec;
      fs::remove(tmp, ec);
      return;
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    ++stats_.write_failures;
    fs::remove(tmp, ec);
    return;
  }
  Entry e;
  e.bytes = entry.size();
  lru_.push_back(key);
  e.lru_pos = std::prev(lru_.end());
  // A concurrent daemon sharing the directory may have published the same
  // key between our index check and the rename; the rename simply
  // replaced identical bytes, so only the bookkeeping needs the update.
  auto [it, inserted] = index_.emplace(key, e);
  if (!inserted) {
    lru_.erase(e.lru_pos);
    TouchLocked(key);
    return;
  }
  total_bytes_ += e.bytes;
  ++stats_.insertions;
  EvictOverBudgetLocked();
}

void DiskCache::TouchLocked(std::uint64_t key) {
  auto it = index_.find(key);
  if (it == index_.end()) return;
  lru_.erase(it->second.lru_pos);
  lru_.push_back(key);
  it->second.lru_pos = std::prev(lru_.end());
  // Refresh mtime so LRU recency survives a restart (Open() rebuilds the
  // order from mtimes).
  std::error_code ec;
  std::filesystem::last_write_time(
      PathOf(key), std::filesystem::file_time_type::clock::now(), ec);
}

void DiskCache::EvictOverBudgetLocked() {
  if (options_.max_bytes == 0) return;
  while (total_bytes_ > options_.max_bytes && lru_.size() > 1)
    DropEntryLocked(lru_.front(), /*count_as_eviction=*/true);
}

void DiskCache::DropEntryLocked(std::uint64_t key, bool count_as_eviction) {
  auto it = index_.find(key);
  if (it == index_.end()) return;
  lru_.erase(it->second.lru_pos);
  total_bytes_ -= it->second.bytes;
  index_.erase(it);
  std::error_code ec;
  std::filesystem::remove(PathOf(key), ec);
  if (count_as_eviction) ++stats_.evictions;
}

DiskCacheStats DiskCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t DiskCache::entry_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return index_.size();
}

std::uint64_t DiskCache::total_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_bytes_;
}

void DiskCache::PublishMetrics() {
  if (!obs::Enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  const obs::MetricKind kS = obs::MetricKind::kStable;
  reg.GetCounter("disk_cache.hits", kS).Add(stats_.hits - published_.hits);
  reg.GetCounter("disk_cache.misses", kS)
      .Add(stats_.misses - published_.misses);
  reg.GetCounter("disk_cache.insertions", kS)
      .Add(stats_.insertions - published_.insertions);
  reg.GetCounter("disk_cache.evictions", kS)
      .Add(stats_.evictions - published_.evictions);
  reg.GetCounter("disk_cache.skipped_corrupt", kS)
      .Add(stats_.skipped_corrupt - published_.skipped_corrupt);
  reg.GetCounter("disk_cache.skipped_version", kS)
      .Add(stats_.skipped_version - published_.skipped_version);
  published_ = stats_;
}

}  // namespace mshls::serve
