#!/usr/bin/env bash
# Regenerates the committed performance baselines (BENCH_coupled.json,
# BENCH_service.json, BENCH_repair.json and BENCH_scaling.json at the
# repo root) in the default RelWithDebInfo tree.
#
# C1 (bench_coupled) runs the full A-series scaling ladder in the three
# engine configurations (serial-naive, incremental, incremental + jobs)
# and cross-checks that all three produce bit-identical schedules.
#
# S1 (bench_service) runs the scheduling service end to end — cold solve,
# memory-tier warm, daemon restart onto the persistent tier, and an
# overload phase — and cross-checks that cold and warm-restart payloads
# are byte-identical and that overload produces only typed rejections.
#
# R1 (bench_repair) answers one perturbation per delta class twice —
# fresh post-delta resolve vs RepairSchedule off the certified base — and
# enforces the acceptance floor itself: a median single-process speedup
# below 5x (or any uncertified schedule on either side) exits non-zero.
#
# S2 (bench_scaling) schedules 50/100/200-process dense-sharing systems
# hierarchically (flat reference up to 100) and enforces its acceptance
# gate itself: every schedule certified and the 200-process/5000-op
# clustered row under 60 s, else non-zero.
#
# All benches exit non-zero on any divergence, so a regenerated baseline
# is also a consistency run. Numbers are machine-dependent — re-record
# EXPERIMENTS.md §C1/§S1/§R1/§S2 alongside when refreshing the files. Each emitted
# file is validated against the shared mshls-bench-v1 schema (every bench
# binary emits the same envelope via --json; see src/report/bench_json.h)
# before it is accepted as the new baseline.
#
# Usage: scripts/bench_baseline.sh [build-dir]     (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
build="${1:-build}"

cmake -B "${build}" -S . > /dev/null
cmake --build "${build}" --target bench_coupled bench_service \
      bench_repair bench_scaling -j "$(nproc)" > /dev/null
"${build}/bench/bench_coupled" --json BENCH_coupled.json
# bench_service binds its socket next to its cwd (sun_path is short);
# run it from the build tree and move the baseline into place.
(cd "${build}/bench" && ./bench_service --json BENCH_service.json)
mv "${build}/bench/BENCH_service.json" BENCH_service.json
"${build}/bench/bench_repair" --json BENCH_repair.json
"${build}/bench/bench_scaling" --json BENCH_scaling.json

python3 - BENCH_coupled.json BENCH_service.json BENCH_repair.json \
          BENCH_scaling.json <<'EOF'
import json, sys

# Per-experiment required row keys on top of the shared envelope.
ROW_KEYS = {
    "C1": ("processes", "ops", "naive_ms", "incremental_ms",
           "trace_overhead_pct", "candidates_evaluated"),
    "S1": ("phase", "ok", "rejected", "failed", "jobs_per_sec",
           "p50_ms", "p99_ms"),
    "R1": ("case", "scope", "fresh_ms", "repair_ms", "speedup", "rung",
           "pinned_ops", "certified"),
    "S2": ("processes", "ops", "mode", "ms", "area", "certified"),
}

for path in sys.argv[1:]:
    with open(path) as f:
        doc = json.load(f)

    def fail(msg):
        sys.exit(f"{path}: schema violation: {msg}")

    if doc.get("schema") != "mshls-bench-v1":
        fail(f"schema is {doc.get('schema')!r}, want 'mshls-bench-v1'")
    for key in ("experiment", "name", "build", "params", "rows"):
        if key not in doc:
            fail(f"missing top-level key {key!r}")
    build = doc["build"]
    for key in ("git_hash", "compiler", "build_type", "trace_compiled_in"):
        if key not in build:
            fail(f"missing build key {key!r}")
    if not isinstance(doc["rows"], list) or not doc["rows"]:
        fail("rows must be a non-empty list")
    row_keys = ROW_KEYS.get(doc["experiment"], ())
    for i, row in enumerate(doc["rows"]):
        if doc["experiment"] == "S1":
            if "phase" not in row:
                fail(f"row {i} missing 'phase'")
            if row["phase"] == "identity":  # the bit-identity verdict row
                if "cold_equals_warm_disk" not in row:
                    fail(f"row {i} missing 'cold_equals_warm_disk'")
                continue
        for key in row_keys:
            if key not in row:
                fail(f"row {i} missing {key!r}")
    if doc["experiment"] == "R1":
        params = doc["params"]
        if params.get("median_speedup_single_process", 0) < 5:
            fail("median single-process repair speedup below the 5x floor")
        if params.get("all_certified") is not True:
            fail("a schedule on either side failed certification")
    if doc["experiment"] == "S2":
        params = doc["params"]
        if params.get("all_certified") is not True:
            fail("a flat or clustered schedule failed certification")
        if params.get("headline_200p_5000ops_under_60s") is not True:
            fail("no certified 200-process/5000-op clustered row under 60 s")
    print(f"{path}: mshls-bench-v1 OK "
          f"({doc['experiment']}/{doc['name']}, {len(doc['rows'])} row(s))")
EOF
