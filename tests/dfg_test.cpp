#include <gtest/gtest.h>

#include "dfg/dot_export.h"
#include "dfg/graph.h"
#include "model/resource.h"
#include "workloads/benchmarks.h"

namespace mshls {
namespace {

class DfgTest : public ::testing::Test {
 protected:
  ResourceLibrary lib_;
  ResourceTypeId add_ = lib_.AddType("add", 1, 1, 1);
  ResourceTypeId mult_ = lib_.AddPipelined("mult", 2, 4);

  DelayFn DelayOf(const DataFlowGraph& g) {
    return [this, &g](OpId op) { return lib_.type(g.op(op).type).delay; };
  }
};

TEST_F(DfgTest, AddOpAssignsDenseIds) {
  DataFlowGraph g;
  EXPECT_EQ(g.AddOp(add_).value(), 0);
  EXPECT_EQ(g.AddOp(mult_).value(), 1);
  EXPECT_EQ(g.op_count(), 2u);
}

TEST_F(DfgTest, ValidateBuildsAdjacency) {
  DataFlowGraph g;
  const OpId a = g.AddOp(add_, "a");
  const OpId b = g.AddOp(add_, "b");
  const OpId c = g.AddOp(mult_, "c");
  g.AddEdge(a, c);
  g.AddEdge(b, c);
  ASSERT_TRUE(g.Validate().ok());
  EXPECT_EQ(g.preds(c).size(), 2u);
  EXPECT_EQ(g.succs(a).size(), 1u);
  EXPECT_EQ(g.succs(a)[0], c);
}

TEST_F(DfgTest, ValidateRejectsSelfLoop) {
  DataFlowGraph g;
  const OpId a = g.AddOp(add_);
  g.AddEdge(a, a);
  const Status s = g.Validate();
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST_F(DfgTest, ValidateRejectsCycle) {
  DataFlowGraph g;
  const OpId a = g.AddOp(add_);
  const OpId b = g.AddOp(add_);
  const OpId c = g.AddOp(add_);
  g.AddEdge(a, b);
  g.AddEdge(b, c);
  g.AddEdge(c, a);
  const Status s = g.Validate();
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("cycle"), std::string::npos);
}

TEST_F(DfgTest, ValidateRejectsOutOfRangeEdge) {
  DataFlowGraph g;
  const OpId a = g.AddOp(add_);
  g.AddEdge(a, OpId{5});
  EXPECT_FALSE(g.Validate().ok());
}

TEST_F(DfgTest, ValidateDeduplicatesParallelEdges) {
  DataFlowGraph g;
  const OpId a = g.AddOp(add_);
  const OpId b = g.AddOp(add_);
  g.AddEdge(a, b);
  g.AddEdge(a, b);
  g.AddEdge(a, b);
  ASSERT_TRUE(g.Validate().ok());
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_EQ(g.preds(b).size(), 1u);
}

TEST_F(DfgTest, TopologicalOrderRespectsEdgesAndIsStable) {
  DataFlowGraph g;
  const OpId a = g.AddOp(add_);  // 0
  const OpId b = g.AddOp(add_);  // 1
  const OpId c = g.AddOp(add_);  // 2
  const OpId d = g.AddOp(add_);  // 3
  g.AddEdge(c, a);
  g.AddEdge(d, b);
  ASSERT_TRUE(g.Validate().ok());
  const auto topo = g.topological_order();
  // Lexicographically smallest order: c(2) unblocks a(0), which precedes
  // the remaining source d(3).
  EXPECT_EQ(topo[0], c);
  EXPECT_EQ(topo[1], a);
  EXPECT_EQ(topo[2], d);
  EXPECT_EQ(topo[3], b);
  // Positions respect edges.
  std::vector<int> pos(g.op_count());
  for (std::size_t i = 0; i < topo.size(); ++i) pos[topo[i].index()] = int(i);
  for (const Edge& e : g.edges())
    EXPECT_LT(pos[e.from.index()], pos[e.to.index()]);
}

TEST_F(DfgTest, CriticalPathSingleChain) {
  DataFlowGraph g;
  const OpId a = g.AddOp(add_);
  const OpId m = g.AddOp(mult_);
  const OpId b = g.AddOp(add_);
  g.AddEdge(a, m);
  g.AddEdge(m, b);
  ASSERT_TRUE(g.Validate().ok());
  EXPECT_EQ(g.CriticalPathLength(DelayOf(g)), 1 + 2 + 1);
}

TEST_F(DfgTest, CriticalPathTakesHeaviestBranch) {
  DataFlowGraph g;
  const OpId a = g.AddOp(add_);
  const OpId m1 = g.AddOp(mult_);
  const OpId m2 = g.AddOp(mult_);
  const OpId b = g.AddOp(add_);
  g.AddEdge(a, m1);
  g.AddEdge(m1, m2);
  g.AddEdge(m2, b);
  g.AddEdge(a, b);  // light branch
  ASSERT_TRUE(g.Validate().ok());
  EXPECT_EQ(g.CriticalPathLength(DelayOf(g)), 1 + 2 + 2 + 1);
}

TEST_F(DfgTest, SourceAndSinkOps) {
  DataFlowGraph g;
  const OpId a = g.AddOp(add_);
  const OpId b = g.AddOp(add_);
  const OpId c = g.AddOp(add_);
  g.AddEdge(a, b);
  g.AddEdge(b, c);
  ASSERT_TRUE(g.Validate().ok());
  EXPECT_EQ(g.SourceOps(), std::vector<OpId>{a});
  EXPECT_EQ(g.SinkOps(), std::vector<OpId>{c});
}

TEST_F(DfgTest, CountOpsPerType) {
  DataFlowGraph g;
  g.AddOp(add_);
  g.AddOp(mult_);
  g.AddOp(add_);
  const auto counts = CountOpsPerType(g);
  EXPECT_EQ(counts[add_.index()], 2);
  EXPECT_EQ(counts[mult_.index()], 1);
}

TEST_F(DfgTest, DotExportContainsNodesAndEdges) {
  DataFlowGraph g;
  const OpId a = g.AddOp(add_, "x");
  const OpId b = g.AddOp(mult_, "y");
  g.AddEdge(a, b);
  ASSERT_TRUE(g.Validate().ok());
  DotOptions options;
  options.type_label = [this](ResourceTypeId t) { return lib_.type(t).name; };
  const std::string dot = ToDot(g, "test", options);
  EXPECT_NE(dot.find("digraph \"test\""), std::string::npos);
  EXPECT_NE(dot.find("n0 [label=\"x\\nadd\"]"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1;"), std::string::npos);
}

// --- benchmark graph properties (paper workload fidelity) ---

class BenchmarkGraphTest : public ::testing::Test {
 protected:
  ResourceLibrary lib_;
  PaperTypes types_ = AddPaperTypes(lib_);

  DelayFn DelayOf(const DataFlowGraph& g) {
    return [this, &g](OpId op) { return lib_.type(g.op(op).type).delay; };
  }

  int CountType(const DataFlowGraph& g, ResourceTypeId t) {
    int n = 0;
    for (const Operation& op : g.ops())
      if (op.type == t) ++n;
    return n;
  }
};

TEST_F(BenchmarkGraphTest, PaperTypesMatchPaperParameters) {
  EXPECT_EQ(lib_.type(types_.add).delay, 1);
  EXPECT_EQ(lib_.type(types_.add).area, 1);
  EXPECT_EQ(lib_.type(types_.sub).delay, 1);
  EXPECT_EQ(lib_.type(types_.sub).area, 1);
  EXPECT_EQ(lib_.type(types_.mult).delay, 2);
  EXPECT_EQ(lib_.type(types_.mult).dii, 1);  // pipelined
  EXPECT_EQ(lib_.type(types_.mult).area, 4);
}

TEST_F(BenchmarkGraphTest, EwfHasCanonicalOperationMix) {
  const DataFlowGraph g = BuildEwf(types_);
  EXPECT_EQ(g.op_count(), 34u);
  EXPECT_EQ(CountType(g, types_.add), 26);
  EXPECT_EQ(CountType(g, types_.mult), 8);
  EXPECT_EQ(CountType(g, types_.sub), 0);
}

TEST_F(BenchmarkGraphTest, EwfHasCanonicalCriticalPath) {
  const DataFlowGraph g = BuildEwf(types_);
  EXPECT_EQ(g.CriticalPathLength(DelayOf(g)), 17);
}

TEST_F(BenchmarkGraphTest, DiffeqHasCanonicalOperationMix) {
  const DataFlowGraph g = BuildDiffeq(types_);
  EXPECT_EQ(g.op_count(), 11u);
  EXPECT_EQ(CountType(g, types_.mult), 6);
  EXPECT_EQ(CountType(g, types_.add), 2);
  // Two subtractions plus the comparator-substituted one (paper §7).
  EXPECT_EQ(CountType(g, types_.sub), 3);
}

TEST_F(BenchmarkGraphTest, DiffeqCriticalPath) {
  const DataFlowGraph g = BuildDiffeq(types_);
  EXPECT_EQ(g.CriticalPathLength(DelayOf(g)), 8);
}

TEST_F(BenchmarkGraphTest, Fir16Structure) {
  const DataFlowGraph g = BuildFir16(types_);
  EXPECT_EQ(CountType(g, types_.mult), 16);
  EXPECT_EQ(CountType(g, types_.add), 15);
  EXPECT_EQ(g.CriticalPathLength(DelayOf(g)), 2 + 4);
}

TEST_F(BenchmarkGraphTest, ArLatticeStructure) {
  const DataFlowGraph g = BuildArLattice(types_);
  EXPECT_EQ(g.op_count(), 28u);
  EXPECT_EQ(CountType(g, types_.mult), 16);
  EXPECT_EQ(CountType(g, types_.add), 12);
  EXPECT_EQ(g.CriticalPathLength(DelayOf(g)), 16);
}

TEST_F(BenchmarkGraphTest, RandomDfgIsDeterministicInSeed) {
  Rng rng1(42);
  Rng rng2(42);
  const DataFlowGraph a = BuildRandomDfg(types_, rng1, {});
  const DataFlowGraph b = BuildRandomDfg(types_, rng2, {});
  ASSERT_EQ(a.op_count(), b.op_count());
  ASSERT_EQ(a.edge_count(), b.edge_count());
  for (std::size_t i = 0; i < a.edge_count(); ++i) {
    EXPECT_EQ(a.edges()[i].from, b.edges()[i].from);
    EXPECT_EQ(a.edges()[i].to, b.edges()[i].to);
  }
}

TEST_F(BenchmarkGraphTest, RandomDfgRespectsOpCount) {
  Rng rng(7);
  RandomDfgOptions options;
  options.ops = 37;
  const DataFlowGraph g = BuildRandomDfg(types_, rng, options);
  EXPECT_EQ(g.op_count(), 37u);
  EXPECT_TRUE(g.validated());
}

}  // namespace
}  // namespace mshls
