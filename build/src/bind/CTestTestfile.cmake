# CMake generated Testfile for 
# Source directory: /root/repo/src/bind
# Build directory: /root/repo/build/src/bind
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
