# Empty compiler generated dependencies file for mshls_common.
# This may be replaced when dependencies are built.
