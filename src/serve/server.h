// mshlsd's server core: a unix-domain stream socket accepting scheduling
// jobs as length-prefixed frames (serve/wire.h + serve/protocol.h) and
// dispatching them through engine::JobService onto its persistent thread
// pool, with a two-tier schedule cache (in-memory ScheduleCache backed by
// the persistent DiskCache) shared by every job.
//
// Concurrency model: one accept thread (poll on the listen socket + a
// self-pipe so a drain request wakes it immediately), one thread per
// connection (cheap: connections block on job futures most of the time),
// and the JobService pool bounding actual scheduling parallelism.
// Admission control (serve/admission.h) caps jobs past the socket layer
// at workers + queue slots — beyond that clients get an immediate typed
// `overloaded` rejection instead of a blocked connection.
//
// Shutdown is a graceful drain: RequestStop() (the daemon's SIGTERM
// handler calls it, tests call it directly) stops the accept loop,
// answers new requests on open connections with `shutting-down`, lets
// in-flight jobs finish, then Wait() joins everything and removes the
// socket file.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"
#include "engine/job_service.h"
#include "serve/admission.h"
#include "serve/protocol.h"

namespace mshls::serve {

struct ServerOptions {
  /// Unix-domain socket path; bound on Start(), unlinked on Wait(). Keep
  /// it short — sun_path caps around 100 bytes.
  std::string socket_path;
  /// Scheduling worker threads (JobService pool width).
  int workers = 1;
  /// Extra admitted-but-waiting jobs beyond `workers`; total admission
  /// limit is workers + queue_limit. <= -1 disables admission control.
  int queue_limit = 8;
  /// Per-request frame cap; larger frames get a typed `too-large`.
  std::size_t max_request_bytes = 4u << 20;  // 4 MiB
  /// Default per-job wall-clock budget when the request carries none
  /// (0 = unlimited).
  long default_timeout_ms = 0;
  /// Idle budget for one read on an open connection; the connection is
  /// closed when a client sends nothing for this long. <= 0: no limit.
  long idle_timeout_ms = 0;
  /// > 0 routes coupled-mode jobs through hierarchical scheduling with
  /// this cluster-size cap (modulo/hierarchy.h); 0 = flat coupled runs.
  /// Server-side policy, no protocol change: payloads grow a "clusters"
  /// field when it applies.
  int cluster_cap = 0;
  /// In-memory schedule-cache capacity (entries); 0 = unbounded.
  std::size_t cache_capacity = 0;
  /// Persistent second cache tier (not owned; may be null; must be
  /// Open()ed by the caller and outlive the server).
  ScheduleStore* store = nullptr;
};

struct ServerStats {
  long long connections = 0;
  long long requests = 0;  // frames that decoded into a request
  long long ok = 0;
  long long repaired = 0;  // of `ok`, served by the repair pipeline
  long long job_failed = 0;
  long long rejected_overloaded = 0;
  long long rejected_too_large = 0;
  long long rejected_malformed = 0;
  long long rejected_shutting_down = 0;
  long long rejected_unknown_base = 0;  // repair on an uncached base
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds + listens + starts the accept thread. Fails (typed) when the
  /// path is too long for sun_path or the bind/listen fails.
  [[nodiscard]] Status Start();

  /// Begins the drain; safe from any thread and from a signal-handler
  /// context via a prior self-pipe arrangement in the daemon binary.
  /// Idempotent.
  void RequestStop();

  /// Blocks until the accept loop and every connection thread finished,
  /// then unlinks the socket. Returns immediately if never started.
  void Wait();

  [[nodiscard]] bool draining() const {
    return draining_.load(std::memory_order_acquire);
  }
  [[nodiscard]] ServerStats stats() const;
  [[nodiscard]] JobService& service() { return *service_; }
  [[nodiscard]] const std::string& socket_path() const {
    return options_.socket_path;
  }

  /// Mirrors admission + cache counters into the metrics registry.
  void PublishMetrics();

 private:
  void AcceptLoop();
  void ServeConnection(int fd);
  [[nodiscard]] ServeResponse HandleRequest(const ServeRequest& request);
  void CountResponse(ServeStatus status);

  ServerOptions options_;
  std::unique_ptr<JobService> service_;
  AdmissionController admission_;

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::atomic<bool> draining_{false};
  std::thread accept_thread_;
  /// Connections run on detached threads; Wait() joins them through this
  /// counter instead of accumulating thread handles for the daemon's
  /// whole lifetime.
  std::mutex threads_mutex_;
  std::condition_variable idle_cv_;
  int active_connections_ = 0;
  bool started_ = false;

  mutable std::mutex stats_mutex_;
  ServerStats stats_;
};

}  // namespace mshls::serve
