// Explicit interconnect modelling: rewrites a data-flow graph so that every
// value transport runs over a named transfer resource ("bus").
//
// The paper's resource model explicitly covers interconnect: "the
// considered resources range from simple adders, memories or busses to
// more complex functions" (§1.1). With this pass a bus becomes an ordinary
// resource type — it can be assigned locally or globally (S1), gets a
// period (S2), and the coupled scheduler balances transfer slots across
// processes exactly like functional units, reproducing time-multiplexed
// shared buses with static access control.
#pragma once

#include "common/ids.h"
#include "dfg/graph.h"

namespace mshls {

struct BusInsertionOptions {
  /// Resource type of the inserted transfer ops (typically delay 1,
  /// dii 1, small area).
  ResourceTypeId bus_type;
  /// true: one broadcast transfer per produced value, feeding all its
  /// consumers (a bus drives many readers in one slot);
  /// false: one transfer per edge (point-to-point interconnect).
  bool broadcast = true;
  /// Skip transfers out of source ops (their operands arrive via input
  /// ports, not the bus).
  bool skip_sources = false;
};

/// Returns a new, validated graph: original ops keep their ids/order,
/// transfer ops ("bus_<producer>" / "bus_<producer>_<consumer>") are
/// appended; every original edge u->v becomes u->transfer->v.
[[nodiscard]] DataFlowGraph InsertBusTransfers(
    const DataFlowGraph& graph, const BusInsertionOptions& options);

}  // namespace mshls
