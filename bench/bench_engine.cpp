// Experiment E1 — the concurrent scheduling engine on the A8-scale
// workload (10 mixed processes, 253 ops, shared adder + multiplier
// pools):
//   1. period search fan-out: wall clock at --jobs 1 vs --jobs 2/4, with
//      a bit-identity check of the parallel against the serial result;
//   2. result cache: a repeated sweep (as a deadline re-tuning loop
//      would issue) served from the cache;
//   3. batch throughput: the job service scheduling many designs
//      concurrently vs serially.
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/text_table.h"
#include "engine/job_service.h"
#include "frontend/emitter.h"
#include "modulo/period_search.h"
#include "report/bench_json.h"
#include "workloads/benchmarks.h"

using namespace mshls;

namespace {

struct Kernel {
  const char* name;
  DataFlowGraph (*build)(const PaperTypes&);
  int deadline;
};

constexpr Kernel kKernels[] = {
    {"ewf_a", &BuildEwf, 40},      {"ewf_b", &BuildEwf, 30},
    {"ewf_c", &BuildEwf, 20},      {"deq_a", &BuildDiffeq, 20},
    {"deq_b", &BuildDiffeq, 10},   {"deq_c", &BuildDiffeq, 30},
    {"fir_a", &BuildFir16, 10},    {"fir_b", &BuildFir16, 20},
    {"ar_a", &BuildArLattice, 20}, {"ar_b", &BuildArLattice, 30},
};

/// The A8 system with add + mult global over all processes but the period
/// left unset — exactly what SearchPeriods explores.
SystemModel BuildSystem() {
  SystemModel model;
  const PaperTypes t = AddPaperTypes(model.library());
  std::vector<ProcessId> procs;
  for (const Kernel& k : kKernels) {
    const ProcessId p = model.AddProcess(k.name, k.deadline);
    model.AddBlock(p, std::string(k.name) + "_main", k.build(t), k.deadline);
    procs.push_back(p);
  }
  model.MakeGlobal(t.add, procs);
  model.MakeGlobal(t.mult, procs);
  // Any eq.-3 compatible seed; the search overwrites it.
  model.SetPeriod(t.add, 10);
  model.SetPeriod(t.mult, 10);
  if (Status s = model.Validate(); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    std::exit(1);
  }
  return model;
}

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

bool SameSchedule(const SystemSchedule& a, const SystemSchedule& b) {
  if (a.blocks.size() != b.blocks.size()) return false;
  for (std::size_t i = 0; i < a.blocks.size(); ++i) {
    if (a.blocks[i].size() != b.blocks[i].size()) return false;
    for (std::size_t op = 0; op < a.blocks[i].size(); ++op)
      if (a.blocks[i].start(OpId(op)) != b.blocks[i].start(OpId(op)))
        return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_file = TakeJsonFlag(argc, argv);
  BenchJson json("E1", "engine");
  std::printf("== E1: concurrent scheduling engine (A8-scale workload) ==\n\n");
  std::printf("hardware concurrency: %u core(s) — fan-out speedup is bounded "
              "by this\n\n",
              std::thread::hardware_concurrency());

  // --- 1. parallel period-search fan-out -------------------------------
  PeriodSearchResult serial;
  TextTable table;
  table.SetHeader({"jobs", "wall [ms]", "speedup", "identical"});
  table.AlignRight(1);
  table.AlignRight(2);
  double serial_ms = 0;
  for (int jobs : {1, 2, 4}) {
    SystemModel model = BuildSystem();
    PeriodSearchOptions options;
    options.jobs = jobs;
    const auto t0 = std::chrono::steady_clock::now();
    auto search = SearchPeriods(model, CoupledParams{}, options);
    const double ms = MsSince(t0);
    if (!search.ok()) {
      std::fprintf(stderr, "%s\n", search.status().ToString().c_str());
      return 1;
    }
    bool identical = true;
    if (jobs == 1) {
      serial = std::move(search).value();
      serial_ms = ms;
    } else {
      const PeriodSearchResult& r = search.value();
      identical = r.periods == serial.periods && r.area == serial.area &&
                  r.evaluated == serial.evaluated &&
                  r.best.iterations == serial.best.iterations &&
                  SameSchedule(r.best.schedule, serial.best.schedule);
    }
    table.AddRow({std::to_string(jobs), FormatDouble(ms, 0),
                  FormatDouble(serial_ms / ms, 2),
                  jobs == 1 ? "(reference)" : identical ? "yes" : "NO (bug!)"});
    json.AddRow()
        .S("variant", "period_search")
        .I("jobs", jobs)
        .D("wall_ms", ms)
        .D("speedup", serial_ms / ms)
        .B("identical", identical);
    if (!identical) {
      std::fprintf(stderr, "parallel result diverged from serial!\n");
      return 1;
    }
  }
  std::printf("period search, %ld candidates scheduled, best area %d, "
              "periods (add=%d mult=%d):\n%s\n",
              serial.evaluated, serial.area, serial.periods[0],
              serial.periods[1], table.Render().c_str());

  // --- 2. result cache over a repeated sweep ---------------------------
  ScheduleCache cache;
  for (int round = 0; round < 2; ++round) {
    SystemModel model = BuildSystem();
    PeriodSearchOptions options;
    options.jobs = 4;
    options.cache = &cache;
    const auto t0 = std::chrono::steady_clock::now();
    auto search = SearchPeriods(model, CoupledParams{}, options);
    const double ms = MsSince(t0);
    if (!search.ok()) {
      std::fprintf(stderr, "%s\n", search.status().ToString().c_str());
      return 1;
    }
    std::printf("sweep round %d: %ld scheduled, %ld cache hit(s), %.0f ms\n",
                round + 1, search.value().evaluated,
                search.value().cache_hits, ms);
    json.AddRow()
        .S("variant", "cache_sweep")
        .I("round", round + 1)
        .I("evaluated", search.value().evaluated)
        .I("cache_hits", search.value().cache_hits)
        .D("wall_ms", ms);
  }
  const CacheStats stats = cache.stats();
  std::printf("cache: %ld hits / %ld lookups (%.0f%% hit rate), "
              "%ld entries\n\n",
              stats.hits, stats.hits + stats.misses, 100 * stats.HitRate(),
              stats.insertions - stats.evictions);

  // --- 3. batch throughput through the job service ---------------------
  // Each kernel as a standalone single-process design, round-tripped
  // through the DSL like a --batch directory would be.
  std::vector<SchedulingJob> jobs;
  for (const Kernel& k : kKernels) {
    SystemModel single;
    const PaperTypes t = AddPaperTypes(single.library());
    const ProcessId p = single.AddProcess(k.name, k.deadline);
    single.AddBlock(p, std::string(k.name) + "_main", k.build(t), k.deadline);
    if (Status s = single.Validate(); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    SchedulingJob job;
    job.name = k.name;
    job.source = EmitSystemText(single);
    jobs.push_back(std::move(job));
  }
  for (int workers : {1, 4}) {
    JobServiceOptions options;
    options.workers = workers;
    JobService service(options);
    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<JobResult> results = service.RunBatch(jobs);
    const double ms = MsSince(t0);
    int failed = 0;
    for (const JobResult& r : results)
      if (!r.status.ok()) ++failed;
    std::printf("batch of %zu designs, %d worker(s): %.0f ms, %d failure(s)\n",
                jobs.size(), workers, ms, failed);
    json.AddRow()
        .S("variant", "batch")
        .I("designs", static_cast<long long>(jobs.size()))
        .I("workers", workers)
        .D("wall_ms", ms)
        .I("failed", failed);
    if (failed > 0) return 1;
  }
  if (!json_file.empty() && !json.WriteFile(json_file)) return 1;
  return 0;
}
