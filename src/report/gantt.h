// ASCII Gantt rendering of block schedules — one row per bound functional
// unit instance (or per resource type when no binding is given), one
// column per control step. Used by the CLI driver and examples to make
// schedules reviewable at a glance.
#pragma once

#include <string>

#include "bind/binding.h"
#include "model/system_model.h"
#include "sched/schedule.h"

namespace mshls {

/// Rows are instances used by the block; cells show the op name (clipped)
/// over its occupancy interval, '.' when idle. For pipelined units an
/// issue occupies one cell even though the result arrives later.
[[nodiscard]] std::string RenderGantt(const SystemModel& model, BlockId block,
                                      const SystemSchedule& schedule,
                                      const SystemBinding& binding);

/// Binding-free variant: one row per resource type with the occupancy
/// count per step.
[[nodiscard]] std::string RenderOccupancy(const SystemModel& model,
                                          BlockId block,
                                          const SystemSchedule& schedule);

}  // namespace mshls
