#include "model/system_model.h"

#include <algorithm>
#include <cassert>

#include "common/math_util.h"

namespace mshls {

ProcessId SystemModel::AddProcess(std::string_view name, int deadline) {
  const ProcessId id{static_cast<ProcessId::value_type>(processes_.size())};
  processes_.push_back(Process{id, std::string(name), {}, deadline});
  return id;
}

BlockId SystemModel::AddBlock(ProcessId process, std::string_view name,
                              DataFlowGraph graph, int time_range, int phase) {
  assert(process.valid() && process.index() < processes_.size());
  const BlockId id{static_cast<BlockId::value_type>(blocks_.size())};
  blocks_.push_back(
      Block{id, process, std::string(name), std::move(graph), time_range,
            phase});
  processes_[process.index()].blocks.push_back(id);
  return id;
}

void SystemModel::EnsureAssignmentSize() {
  if (assignments_.size() < library_.size())
    assignments_.resize(library_.size());
}

void SystemModel::MakeGlobal(ResourceTypeId type,
                             std::vector<ProcessId> group) {
  EnsureAssignmentSize();
  std::sort(group.begin(), group.end());
  group.erase(std::unique(group.begin(), group.end()), group.end());
  auto& a = assignments_[type.index()];
  a.scope = AssignmentScope::kGlobal;
  a.group = std::move(group);
  if (a.period <= 0) a.period = 1;
}

void SystemModel::MakeLocal(ResourceTypeId type) {
  EnsureAssignmentSize();
  assignments_[type.index()] = TypeAssignment{};
}

void SystemModel::SetPeriod(ResourceTypeId type, int period) {
  EnsureAssignmentSize();
  assignments_[type.index()].period = period;
}

const TypeAssignment& SystemModel::assignment(ResourceTypeId type) const {
  static const TypeAssignment kLocalDefault{};
  if (type.index() >= assignments_.size()) return kLocalDefault;
  return assignments_[type.index()];
}

std::vector<ResourceTypeId> SystemModel::GlobalTypes() const {
  std::vector<ResourceTypeId> out;
  for (std::size_t i = 0; i < assignments_.size(); ++i)
    if (assignments_[i].scope == AssignmentScope::kGlobal)
      out.push_back(ResourceTypeId{static_cast<int>(i)});
  return out;
}

bool SystemModel::InGroup(ResourceTypeId type, ProcessId process) const {
  const TypeAssignment& a = assignment(type);
  if (a.scope != AssignmentScope::kGlobal) return false;
  return std::binary_search(a.group.begin(), a.group.end(), process);
}

bool SystemModel::ProcessUsesType(ProcessId process,
                                  ResourceTypeId type) const {
  for (BlockId bid : processes_[process.index()].blocks) {
    for (const Operation& op : blocks_[bid.index()].graph.ops())
      if (op.type == type) return true;
  }
  return false;
}

std::vector<ProcessId> SystemModel::GlobalUsers(ResourceTypeId type) const {
  std::vector<ProcessId> out;
  const TypeAssignment& a = assignment(type);
  if (a.scope != AssignmentScope::kGlobal) return out;
  for (ProcessId p : a.group)
    if (ProcessUsesType(p, type)) out.push_back(p);
  return out;
}

std::vector<ResourceTypeId> SystemModel::GlobalTypesOf(
    ProcessId process) const {
  std::vector<ResourceTypeId> out;
  for (ResourceTypeId g : GlobalTypes())
    if (InGroup(g, process) && ProcessUsesType(process, g)) out.push_back(g);
  return out;
}

std::int64_t SystemModel::GridSpacing(ProcessId process) const {
  std::vector<std::int64_t> periods;
  for (ResourceTypeId g : GlobalTypesOf(process))
    periods.push_back(assignment(g).period);
  if (periods.empty()) return 1;
  return LcmOf(periods);
}

Status SystemModel::Validate() {
  if (Status s = library_.Validate(); !s.ok()) return s;
  EnsureAssignmentSize();

  for (Block& b : blocks_) {
    if (!b.graph.validated()) {
      if (Status s = b.graph.Validate(); !s.ok())
        return {s.code(), "block '" + b.name + "': " + s.message()};
    }
    if (b.graph.op_count() == 0)
      return {StatusCode::kInvalidArgument,
              "block '" + b.name + "' has no operations"};
    for (const Operation& op : b.graph.ops()) {
      if (op.type.index() >= library_.size())
        return {StatusCode::kInvalidArgument,
                "block '" + b.name + "' references unknown resource type " +
                    std::to_string(op.type.value())};
    }
    if (b.time_range < 1)
      return {StatusCode::kInvalidArgument,
              "block '" + b.name + "' has non-positive time range"};
    const int cp = b.graph.CriticalPathLength(DelayOf(b.id));
    if (cp > b.time_range)
      return {StatusCode::kInfeasible,
              "block '" + b.name + "': critical path " + std::to_string(cp) +
                  " exceeds time range " + std::to_string(b.time_range)};
    if (b.phase < 0)
      return {StatusCode::kInvalidArgument,
              "block '" + b.name + "' has negative phase"};
  }

  for (std::size_t i = 0; i < assignments_.size(); ++i) {
    const TypeAssignment& a = assignments_[i];
    if (a.scope != AssignmentScope::kGlobal) continue;
    const std::string& tn = library_.type(ResourceTypeId{static_cast<int>(i)})
                                .name;
    if (a.group.empty())
      return {StatusCode::kInvalidArgument,
              "global type '" + tn + "' has an empty process group"};
    for (ProcessId p : a.group) {
      if (!p.valid() || p.index() >= processes_.size())
        return {StatusCode::kInvalidArgument,
                "global type '" + tn + "' group references unknown process"};
    }
    if (a.period < 1)
      return {StatusCode::kInvalidArgument,
              "global type '" + tn + "' has no period (run step S2)"};
  }

  // Phases must lie inside the process grid so that the residue of a block
  // start is well defined. Periods are user input at this point, so the
  // grid lcm is computed overflow-checked (GridSpacing itself is the
  // assert-only fast path for post-validation callers).
  for (const Block& b : blocks_) {
    std::vector<std::int64_t> periods;
    for (ResourceTypeId g : GlobalTypesOf(b.process))
      periods.push_back(assignment(g).period);
    const StatusOr<std::int64_t> grid_or =
        CheckedLcmOf(std::span<const std::int64_t>(periods));
    if (!grid_or.ok())
      return {StatusCode::kInfeasible,
              "process '" + processes_[b.process.index()].name +
                  "': " + grid_or.status().message()};
    const std::int64_t grid = grid_or.value();
    if (b.phase >= grid && grid > 1)
      return {StatusCode::kInvalidArgument,
              "block '" + b.name + "': phase " + std::to_string(b.phase) +
                  " outside grid spacing " + std::to_string(grid)};
  }
  return Status::Ok();
}

DelayFn SystemModel::DelayOf(BlockId block) const {
  const Block* b = &blocks_[block.index()];
  const ResourceLibrary* lib = &library_;
  return [b, lib](OpId op) { return lib->type(b->graph.op(op).type).delay; };
}

}  // namespace mshls
