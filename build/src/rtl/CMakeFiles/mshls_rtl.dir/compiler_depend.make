# Empty compiler generated dependencies file for mshls_rtl.
# This may be replaced when dependencies are built.
