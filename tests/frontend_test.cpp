#include <gtest/gtest.h>

#include <set>

#include "frontend/emitter.h"
#include "frontend/lexer.h"
#include "frontend/lowering.h"
#include "frontend/parser.h"
#include "workloads/benchmarks.h"
#include "workloads/paper_system.h"

namespace mshls {
namespace {

// ---- lexer ----

TEST(LexerTest, TokenizesAllKinds) {
  auto tokens = Tokenize("foo 42 { } ( ) , ; = + - * / <");
  ASSERT_TRUE(tokens.ok());
  const auto& t = tokens.value();
  ASSERT_EQ(t.size(), 15u);  // 14 tokens + EOF
  EXPECT_EQ(t[0].kind, TokenKind::kIdent);
  EXPECT_EQ(t[0].text, "foo");
  EXPECT_EQ(t[1].kind, TokenKind::kInt);
  EXPECT_EQ(t[1].value, 42);
  EXPECT_EQ(t[2].kind, TokenKind::kLBrace);
  EXPECT_EQ(t[13].kind, TokenKind::kLess);
  EXPECT_EQ(t.back().kind, TokenKind::kEof);
}

TEST(LexerTest, TracksLineNumbers) {
  auto tokens = Tokenize("a\nb\n  c");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens.value()[0].line, 1);
  EXPECT_EQ(tokens.value()[1].line, 2);
  EXPECT_EQ(tokens.value()[2].line, 3);
  EXPECT_EQ(tokens.value()[2].column, 3);
}

TEST(LexerTest, SkipsComments) {
  auto tokens = Tokenize("a # comment\nb // another\nc");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens.value().size(), 4u);
  EXPECT_EQ(tokens.value()[1].text, "b");
}

TEST(LexerTest, RejectsUnknownCharacter) {
  auto tokens = Tokenize("a @ b");
  ASSERT_FALSE(tokens.ok());
  EXPECT_EQ(tokens.status().code(), StatusCode::kParseError);
  EXPECT_NE(tokens.status().message().find("'@'"), std::string::npos);
}

TEST(LexerTest, IdentifiersWithUnderscoresAndDigits) {
  auto tokens = Tokenize("_x y_2 z3z");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens.value()[0].text, "_x");
  EXPECT_EQ(tokens.value()[1].text, "y_2");
  EXPECT_EQ(tokens.value()[2].text, "z3z");
}

// ---- parser ----

constexpr const char* kGoodSource = R"(
resource add delay 1 area 1;
resource mult delay 2 dii 1 area 4;

process deq deadline 12 {
  block main time 12 {
    t1 = a * b;
    t2 = t1 + c;
    t3 = mac(t1, t2, d) using mult;
  }
}
process other {
  block only time 4 phase 1 {
    u = x + y;
  }
}
share mult among deq, other period 4;
)";

TEST(ParserTest, ParsesFullSystem) {
  auto ast = ParseSystemText(kGoodSource);
  ASSERT_TRUE(ast.ok()) << ast.status().ToString();
  const AstSystem& sys = ast.value();
  ASSERT_EQ(sys.resources.size(), 2u);
  EXPECT_EQ(sys.resources[1].name, "mult");
  EXPECT_EQ(sys.resources[1].delay, 2);
  EXPECT_EQ(sys.resources[1].dii, 1);
  EXPECT_EQ(sys.resources[1].area, 4);
  ASSERT_EQ(sys.processes.size(), 2u);
  EXPECT_EQ(sys.processes[0].deadline, 12);
  ASSERT_EQ(sys.processes[0].blocks.size(), 1u);
  const AstBlock& main = sys.processes[0].blocks[0];
  EXPECT_EQ(main.time_range, 12);
  ASSERT_EQ(main.statements.size(), 3u);
  EXPECT_EQ(main.statements[0].resource, "mult");  // '*'
  EXPECT_EQ(main.statements[1].resource, "add");   // '+'
  EXPECT_EQ(main.statements[2].resource, "mult");  // using
  EXPECT_EQ(main.statements[2].operands,
            (std::vector<std::string>{"t1", "t2", "d"}));
  EXPECT_EQ(sys.processes[1].blocks[0].phase, 1);
  ASSERT_EQ(sys.shares.size(), 1u);
  EXPECT_EQ(sys.shares[0].resource, "mult");
  EXPECT_EQ(sys.shares[0].period, 4);
  EXPECT_EQ(sys.shares[0].processes,
            (std::vector<std::string>{"deq", "other"}));
}

TEST(ParserTest, OperatorMapping) {
  auto ast = ParseSystemText(R"(
process p { block b time 9 {
  s = a - b;
  d = a / b;
  c = a < b;
}})");
  ASSERT_TRUE(ast.ok());
  const auto& stmts = ast.value().processes[0].blocks[0].statements;
  EXPECT_EQ(stmts[0].resource, "sub");
  EXPECT_EQ(stmts[1].resource, "div");
  EXPECT_EQ(stmts[2].resource, "cmp");
}

TEST(ParserTest, ErrorsCarryLineNumbers) {
  auto ast = ParseSystemText("resource add delay 1\narea 1;");
  ASSERT_TRUE(ast.ok());  // newline is whitespace; this actually parses
  auto bad = ParseSystemText("resource add delay;\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("line 1"), std::string::npos);
}

TEST(ParserTest, RejectsProcessWithoutBlocks) {
  auto ast = ParseSystemText("process p { }");
  ASSERT_FALSE(ast.ok());
  EXPECT_NE(ast.status().message().find("no blocks"), std::string::npos);
}

TEST(ParserTest, RejectsMissingSemicolon) {
  auto ast = ParseSystemText("process p { block b time 4 { x = a + b } }");
  EXPECT_FALSE(ast.ok());
}

TEST(ParserTest, RejectsGarbageTopLevel) {
  auto ast = ParseSystemText("banana");
  ASSERT_FALSE(ast.ok());
  EXPECT_NE(ast.status().message().find("expected"), std::string::npos);
}

TEST(ParserTest, DefaultPeriodIsOne) {
  auto ast = ParseSystemText(R"(
process p { block b time 4 { x = a + b; } }
share add among p;
)");
  ASSERT_TRUE(ast.ok());
  EXPECT_EQ(ast.value().shares[0].period, 1);
}

// ---- lowering ----

TEST(LoweringTest, BuildsValidatedModel) {
  auto model = CompileSystem(kGoodSource);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  const SystemModel& m = model.value();
  EXPECT_EQ(m.process_count(), 2u);
  EXPECT_EQ(m.block_count(), 2u);
  const ResourceTypeId mult = m.library().FindByName("mult");
  ASSERT_TRUE(mult.valid());
  EXPECT_TRUE(m.is_global(mult));
  EXPECT_EQ(m.assignment(mult).period, 4);
  EXPECT_EQ(m.assignment(mult).group.size(), 2u);
}

TEST(LoweringTest, DataflowEdgesFollowDefUse) {
  auto model = CompileSystem(R"(
resource add delay 1 area 1;
process p { block b time 6 {
  t1 = a + b;
  t2 = t1 + c;
  t3 = t1 + t2;
}})");
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  const DataFlowGraph& g = model.value().block(BlockId{0}).graph;
  EXPECT_EQ(g.op_count(), 3u);
  EXPECT_EQ(g.edge_count(), 3u);  // t1->t2, t1->t3, t2->t3
  EXPECT_EQ(g.preds(OpId{2}).size(), 2u);
}

TEST(LoweringTest, UndefinedOperandsAreBlockInputs) {
  auto model = CompileSystem(R"(
resource add delay 1 area 1;
process p { block b time 4 { t = x + y; } })");
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model.value().block(BlockId{0}).graph.edge_count(), 0u);
}

TEST(LoweringTest, RejectsDoubleAssignment) {
  auto model = CompileSystem(R"(
resource add delay 1 area 1;
process p { block b time 8 {
  t = a + b;
  t = c + d;
}})");
  ASSERT_FALSE(model.ok());
  EXPECT_NE(model.status().message().find("assigned more than once"),
            std::string::npos);
}

TEST(LoweringTest, RejectsSelfReference) {
  auto model = CompileSystem(R"(
resource add delay 1 area 1;
process p { block b time 4 { t = t + a; } })");
  ASSERT_FALSE(model.ok());
  EXPECT_NE(model.status().message().find("own definition"),
            std::string::npos);
}

TEST(LoweringTest, RejectsUnknownResource) {
  auto model = CompileSystem(R"(
process p { block b time 4 { t = a + b; } })");
  ASSERT_FALSE(model.ok());
  EXPECT_NE(model.status().message().find("unknown resource 'add'"),
            std::string::npos);
}

TEST(LoweringTest, RejectsUnknownProcessInShare) {
  auto model = CompileSystem(R"(
resource add delay 1 area 1;
process p { block b time 4 { t = a + b; } }
share add among p, ghost;
)");
  ASSERT_FALSE(model.ok());
  EXPECT_NE(model.status().message().find("unknown process 'ghost'"),
            std::string::npos);
}

TEST(LoweringTest, RejectsDuplicateProcessNames) {
  auto model = CompileSystem(R"(
resource add delay 1 area 1;
process p { block b time 4 { t = a + b; } }
process p { block b time 4 { t = a + b; } }
)");
  ASSERT_FALSE(model.ok());
}

TEST(LoweringTest, RejectsInfeasibleTimeRangeThroughModelValidate) {
  auto model = CompileSystem(R"(
resource add delay 1 area 1;
process p { block b time 1 {
  t1 = a + b;
  t2 = t1 + c;
}})");
  ASSERT_FALSE(model.ok());
  EXPECT_EQ(model.status().code(), StatusCode::kInfeasible);
}

// ---- emitter round-trips ----

namespace emitter_detail {

/// Structural equivalence of two models. The emitter writes statements in
/// topological order (def before use, as the language requires), so the
/// re-parsed graph's op `i` corresponds to the original's i-th topological
/// op; types and edges are compared under that mapping.
void ExpectEquivalent(const SystemModel& a, const SystemModel& b) {
  ASSERT_EQ(a.library().size(), b.library().size());
  for (std::size_t i = 0; i < a.library().size(); ++i) {
    const ResourceType& ta = a.library().types()[i];
    const ResourceType& tb = b.library().types()[i];
    EXPECT_EQ(ta.name, tb.name);
    EXPECT_EQ(ta.delay, tb.delay);
    EXPECT_EQ(ta.dii, tb.dii);
    EXPECT_EQ(ta.area, tb.area);
  }
  ASSERT_EQ(a.process_count(), b.process_count());
  ASSERT_EQ(a.block_count(), b.block_count());
  for (const Block& ba : a.blocks()) {
    const Block& bb = b.block(ba.id);
    EXPECT_EQ(ba.name, bb.name);
    EXPECT_EQ(ba.time_range, bb.time_range);
    EXPECT_EQ(ba.phase, bb.phase);
    ASSERT_EQ(ba.graph.op_count(), bb.graph.op_count());
    ASSERT_EQ(ba.graph.edge_count(), bb.graph.edge_count());
    // map[a-op] -> b-op via topological position.
    const auto topo = ba.graph.topological_order();
    std::vector<OpId> map(ba.graph.op_count());
    for (std::size_t i = 0; i < topo.size(); ++i)
      map[topo[i].index()] = OpId{static_cast<int>(i)};
    for (const Operation& op : ba.graph.ops())
      EXPECT_EQ(op.type, bb.graph.op(map[op.id.index()]).type);
    std::set<std::pair<int, int>> ea;
    std::set<std::pair<int, int>> eb;
    for (const Edge& e : ba.graph.edges())
      ea.insert({map[e.from.index()].value(), map[e.to.index()].value()});
    for (const Edge& e : bb.graph.edges())
      eb.insert({e.from.value(), e.to.value()});
    EXPECT_EQ(ea, eb);
  }
  for (const ResourceType& t : a.library().types()) {
    EXPECT_EQ(a.is_global(t.id), b.is_global(t.id));
    if (a.is_global(t.id)) {
      EXPECT_EQ(a.assignment(t.id).group, b.assignment(t.id).group);
      EXPECT_EQ(a.assignment(t.id).period, b.assignment(t.id).period);
    }
  }
}

}  // namespace emitter_detail

TEST(EmitterTest, RoundTripsTheGoodSource) {
  auto model = CompileSystem(kGoodSource);
  ASSERT_TRUE(model.ok());
  const std::string text = EmitSystemText(model.value());
  auto again = CompileSystem(text);
  ASSERT_TRUE(again.ok()) << again.status().ToString() << "\n" << text;
  emitter_detail::ExpectEquivalent(model.value(), again.value());
}

TEST(EmitterTest, RoundTripsTheProgrammaticPaperSystem) {
  PaperSystem sys = BuildPaperSystem();
  const std::string text = EmitSystemText(sys.model);
  auto again = CompileSystem(text);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  emitter_detail::ExpectEquivalent(sys.model, again.value());
}

TEST(EmitterTest, EmitsCallFormForNonOperatorResources) {
  SystemModel model;
  model.library().AddType("mac", 2, 1, 5);
  DataFlowGraph g;
  g.AddOp(model.library().FindByName("mac"), "x");
  ASSERT_TRUE(g.Validate().ok());
  const ProcessId p = model.AddProcess("p");
  model.AddBlock(p, "b", std::move(g), 4);
  ASSERT_TRUE(model.Validate().ok());
  const std::string text = EmitSystemText(model);
  EXPECT_NE(text.find(") using mac;"), std::string::npos);
  auto again = CompileSystem(text);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
}

TEST(EmitterTest, SanitizesAwkwardOpNames) {
  SystemModel model;
  const PaperTypes t = AddPaperTypes(model.library());
  DataFlowGraph g;
  const OpId a = g.AddOp(t.add, "3x");   // starts with a digit
  const OpId b = g.AddOp(t.add, "3x");   // duplicate name
  const OpId c = g.AddOp(t.add, "u-m");  // illegal char
  g.AddEdge(a, c);
  g.AddEdge(b, c);
  ASSERT_TRUE(g.Validate().ok());
  const ProcessId p = model.AddProcess("p");
  model.AddBlock(p, "b", std::move(g), 6);
  ASSERT_TRUE(model.Validate().ok());
  auto again = CompileSystem(EmitSystemText(model));
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again.value().block(BlockId{0}).graph.op_count(), 3u);
  EXPECT_EQ(again.value().block(BlockId{0}).graph.edge_count(), 2u);
}

TEST(LoweringTest, EquivalentToHandBuiltModel) {
  // The DSL route and the C++ route must produce the same graph shape.
  auto compiled = CompileSystem(R"(
resource add delay 1 area 1;
resource mult delay 2 dii 1 area 4;
process p deadline 8 { block main time 8 {
  m = a * b;
  s = m + c;
}})");
  ASSERT_TRUE(compiled.ok());
  const DataFlowGraph& g = compiled.value().block(BlockId{0}).graph;
  ASSERT_EQ(g.op_count(), 2u);
  EXPECT_EQ(compiled.value()
                .library()
                .type(g.op(OpId{0}).type)
                .name,
            "mult");
  EXPECT_EQ(g.succs(OpId{0}).size(), 1u);
  EXPECT_EQ(g.succs(OpId{0})[0], OpId{1});
}

}  // namespace
}  // namespace mshls
