// Experiment A4 — the paper's conclusion names as current work "to find
// the optimal periods of the global resource types without a complete
// enumeration" and §7 notes the permutation "is bound by [the candidate
// product], but typically most sets are filtered out by equation 3 before
// scheduling".
//
// This bench runs the implemented step-(S2) search on systems of growing
// coupling and reports: raw combination count, how many the eq.-3 grid
// filter removed before any scheduling, how many were scheduled, and the
// winning assignment.
#include <chrono>
#include <cstdio>

#include "common/text_table.h"
#include "modulo/period_search.h"
#include "report/bench_json.h"
#include "workloads/benchmarks.h"
#include "workloads/paper_system.h"

using namespace mshls;

namespace {

void Report(const char* name, SystemModel& model, BenchJson& json) {
  const auto t0 = std::chrono::steady_clock::now();
  auto result = SearchPeriods(model, CoupledParams{});
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  if (!result.ok()) {
    std::printf("%-22s search failed: %s\n", name,
                result.status().ToString().c_str());
    return;
  }
  std::string periods;
  const auto globals = model.GlobalTypes();
  for (std::size_t i = 0; i < globals.size(); ++i) {
    if (i) periods += ",";
    periods += model.library().type(globals[i]).name + "=" +
               std::to_string(result.value().periods[i]);
  }
  std::printf("%-22s combos=%-4ld filtered=%-4ld scheduled=%-4ld "
              "best area=%-3d periods={%s} (%.0f ms)\n",
              name, result.value().combinations, result.value().filtered_out,
              result.value().evaluated, result.value().area, periods.c_str(),
              ms);
  json.AddRow()
      .S("system", name)
      .I("combinations", result.value().combinations)
      .I("filtered_out", result.value().filtered_out)
      .I("evaluated", result.value().evaluated)
      .I("area", result.value().area)
      .S("periods", periods)
      .D("wall_ms", ms);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_file = TakeJsonFlag(argc, argv);
  BenchJson json("A4", "periods");
  std::printf("== A4: automatic period selection (step S2 search) ==\n\n");

  {
    // Two processes sharing one adder; deadlines 12/12.
    SystemModel model;
    const PaperTypes t = AddPaperTypes(model.library());
    std::vector<ProcessId> procs;
    for (int i = 0; i < 2; ++i) {
      DataFlowGraph g;
      for (int k = 0; k < 3; ++k)
        g.AddOp(t.add, "a" + std::to_string(k));
      if (!g.Validate().ok()) return 1;
      const ProcessId p = model.AddProcess("p" + std::to_string(i), 12);
      model.AddBlock(p, "b", std::move(g), 12);
      procs.push_back(p);
    }
    model.MakeGlobal(t.add, procs);
    if (!model.Validate().ok()) return 1;
    Report("2 procs / 1 type", model, json);
  }

  {
    // Three processes, two coupled types, mixed deadlines 12/18/24: the
    // lcm filter prunes combinations whose grids do not divide every
    // member's deadline.
    SystemModel model;
    const PaperTypes t = AddPaperTypes(model.library());
    std::vector<ProcessId> procs;
    const int deadlines[] = {12, 18, 24};
    Rng rng(5);
    for (int i = 0; i < 3; ++i) {
      RandomDfgOptions options;
      options.ops = 8;
      options.layers = 3;
      DataFlowGraph g = BuildRandomDfg(t, rng, options);
      const ProcessId p = model.AddProcess("p" + std::to_string(i),
                                           deadlines[i]);
      model.AddBlock(p, "b", std::move(g), deadlines[i]);
      procs.push_back(p);
    }
    model.MakeGlobal(t.add, procs);
    model.MakeGlobal(t.mult, procs);
    if (!model.Validate().ok()) return 1;
    Report("3 procs / 2 types", model, json);
  }

  {
    PaperSystem sys = BuildPaperSystem();
    Report("paper system", sys.model, json);
    std::printf("\n(the paper fixed all periods to 5 by hand; the search "
                "confirms or beats that choice within the eq.-3 candidate "
                "space)\n");
  }
  if (!json_file.empty() && !json.WriteFile(json_file)) return 1;
  return 0;
}
