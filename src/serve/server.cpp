#include "serve/server.h"

#include <csignal>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "engine/degradation.h"
#include "obs/trace.h"
#include "serve/wire.h"

namespace mshls::serve {
namespace {

/// Poll slice for idle connections: short enough that a drain request
/// interrupts them quickly, long enough to stay off the CPU.
constexpr long kReadSliceMs = 200;

Status Errno(const std::string& what) {
  return Status{StatusCode::kInternal, what + ": " + std::strerror(errno)};
}

void CloseFd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

ServeResponse Reject(ServeStatus status, std::string message) {
  ServeResponse response;
  response.status = status;
  response.payload = std::move(message);
  return response;
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      admission_(options_.queue_limit < 0
                     ? 0
                     : options_.workers + options_.queue_limit) {
  JobServiceOptions service_options;
  service_options.workers = options_.workers;
  service_options.cache_capacity = options_.cache_capacity;
  service_options.store = options_.store;
  service_ = std::make_unique<JobService>(service_options);
}

Server::~Server() {
  RequestStop();
  Wait();
}

Status Server::Start() {
  // A client vanishing mid-response must surface as EPIPE on write, not
  // kill the process.
  std::signal(SIGPIPE, SIG_IGN);

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.empty() ||
      options_.socket_path.size() >= sizeof(addr.sun_path))
    return Status{StatusCode::kInvalidArgument,
                  "socket path empty or longer than sun_path allows: " +
                      options_.socket_path};
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size() + 1);

  if (::pipe(wake_pipe_) != 0) return Errno("pipe");
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Errno("socket");
  // A leftover socket file from a previous (crashed) daemon would make
  // bind fail; connect-probing it would race, so the daemon owns the path.
  ::unlink(options_.socket_path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    Status s = Errno("bind " + options_.socket_path);
    CloseFd(listen_fd_);
    return s;
  }
  if (::listen(listen_fd_, 64) != 0) {
    Status s = Errno("listen");
    CloseFd(listen_fd_);
    return s;
  }
  started_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void Server::RequestStop() {
  if (draining_.exchange(true, std::memory_order_acq_rel)) return;
  if (wake_pipe_[1] >= 0) {
    const char byte = 1;
    // Best effort: the accept loop also times out of poll on its own.
    (void)!::write(wake_pipe_[1], &byte, 1);
  }
}

void Server::Wait() {
  if (!started_) return;
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    // Connections run detached; the counter + condvar is the join.
    std::unique_lock<std::mutex> lock(threads_mutex_);
    idle_cv_.wait(lock, [this] { return active_connections_ == 0; });
  }
  CloseFd(listen_fd_);
  CloseFd(wake_pipe_[0]);
  CloseFd(wake_pipe_[1]);
  ::unlink(options_.socket_path.c_str());
  started_ = false;
}

void Server::AcceptLoop() {
  obs::Tracer* tracer = obs::GlobalTracer();
  obs::ScopedSpan loop_span(
      tracer ? &tracer->GetTrack("serve", /*wall_only=*/true) : nullptr,
      "accept_loop");
  while (!draining()) {
    pollfd fds[2];
    fds[0].fd = listen_fd_;
    fds[0].events = POLLIN;
    fds[1].fd = wake_pipe_[0];
    fds[1].events = POLLIN;
    const int ready = ::poll(fds, 2, static_cast<int>(kReadSliceMs));
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (draining()) break;
    if (ready == 0 || (fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;
    }
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.connections;
    }
    {
      std::lock_guard<std::mutex> lock(threads_mutex_);
      ++active_connections_;
    }
    // Detached: completion is tracked by the counter, so finished
    // connections cost nothing while the daemon keeps running.
    std::thread([this, fd] {
      ServeConnection(fd);
      std::lock_guard<std::mutex> lock(threads_mutex_);
      if (--active_connections_ == 0) idle_cv_.notify_all();
    }).detach();
  }
  // Stop accepting immediately so a drain can't race new connections in.
  CloseFd(listen_fd_);
}

void Server::ServeConnection(int fd) {
  obs::Tracer* tracer = obs::GlobalTracer();
  obs::TraceTrack* track =
      tracer ? &tracer->NewTrack("serve.conn", /*wall_only=*/true) : nullptr;
  obs::ScopedSpan conn_span(track, "connection");
  long idle_ms = 0;
  while (true) {
    // Short poll slices so a drain request interrupts an idle connection
    // within ~200ms without any cross-thread signalling.
    const FrameRead frame = ReadFrame(fd, options_.max_request_bytes,
                                      kReadSliceMs);
    if (frame.outcome == FrameRead::Outcome::kTimeout) {
      if (draining()) break;
      idle_ms += kReadSliceMs;
      if (options_.idle_timeout_ms > 0 && idle_ms >= options_.idle_timeout_ms)
        break;
      continue;
    }
    idle_ms = 0;
    if (frame.outcome == FrameRead::Outcome::kEof ||
        frame.outcome == FrameRead::Outcome::kIoError)
      break;

    ServeResponse response;
    if (frame.outcome == FrameRead::Outcome::kTooLarge) {
      response = Reject(ServeStatus::kTooLarge,
                        "frame of " + std::to_string(frame.declared) +
                            " bytes exceeds the server cap of " +
                            std::to_string(options_.max_request_bytes));
    } else if (frame.outcome == FrameRead::Outcome::kMalformed) {
      response = Reject(ServeStatus::kMalformedFrame, frame.error);
    } else if (draining()) {
      response = Reject(ServeStatus::kShuttingDown, "server is draining");
    } else {
      auto request_or = DecodeRequest(frame.payload);
      if (!request_or.ok()) {
        response =
            Reject(ServeStatus::kMalformedFrame, request_or.status().message());
      } else {
        {
          std::lock_guard<std::mutex> lock(stats_mutex_);
          ++stats_.requests;
        }
        obs::ScopedSpan request_span(track, "request");
        response = HandleRequest(request_or.value());
      }
    }
    CountResponse(response.status);
    if (!WriteFrame(fd, EncodeResponse(response)).ok()) break;
    // After kTooLarge the oversized payload is still in flight on the
    // socket and the stream cannot be resynchronized; a structurally bad
    // frame is the same. Drop the connection — the rejection already told
    // the client why. A merely unparseable *protocol* payload keeps the
    // connection (frame boundaries are intact).
    if (frame.outcome != FrameRead::Outcome::kFrame || draining()) break;
  }
  ::close(fd);
}

ServeResponse Server::HandleRequest(const ServeRequest& request) {
  if (!admission_.TryAcquire())
    return Reject(ServeStatus::kOverloaded,
                  "admission queue full (" +
                      std::to_string(admission_.in_flight()) +
                      " jobs in flight) — retry later");

  SchedulingJob job;
  job.name = "serve";
  job.source = request.source;
  job.mode = request.mode;
  job.keep_model = true;
  job.cluster_cap = options_.cluster_cap;
  job.certify = (request.flags & kFlagSkipCertify) == 0;
  if ((request.flags & kFlagLocalBaselineLadderOff) != 0)
    job.ladder = {DegradationRung::kAsRequested};
  job.timeout_ms = request.timeout_ms != 0
                       ? static_cast<long>(request.timeout_ms)
                       : options_.default_timeout_ms;
  const bool is_repair = !request.delta.empty();
  if (is_repair) {
    RepairRequest repair;
    repair.delta_source = request.delta;
    // The daemon never solves a base from scratch under a repair label: an
    // unknown/evicted base is a typed rejection and the client resubmits a
    // full solve (otherwise a "repair" could silently cost a cold solve).
    repair.solve_base_if_missing = false;
    job.name = "serve-repair";
    job.repair = std::move(repair);
  }

  JobResult result = service_->SubmitJob(std::move(job)).get();
  admission_.Release();

  ServeResponse response;
  response.evaluated = static_cast<std::uint32_t>(result.evaluated);
  response.cache_hits = static_cast<std::uint32_t>(result.cache_hits);
  response.store_hits = static_cast<std::uint32_t>(result.store_hits);
  if (!result.status.ok()) {
    if (is_repair && result.status.code() == StatusCode::kNotFound) {
      response.status = ServeStatus::kUnknownBase;
      response.payload = result.status.message();
      return response;
    }
    response.status = ServeStatus::kJobFailed;
    response.payload = result.status.message();
    return response;
  }
  response.status = ServeStatus::kOk;
  response.rung = result.repaired ? static_cast<std::uint8_t>(result.repair_rung)
                                  : static_cast<std::uint8_t>(result.rung);
  if (result.repaired) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.repaired;
  }
  response.payload = RenderJobPayload(result);
  return response;
}

void Server::CountResponse(ServeStatus status) {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  switch (status) {
    case ServeStatus::kOk: ++stats_.ok; break;
    case ServeStatus::kJobFailed: ++stats_.job_failed; break;
    case ServeStatus::kOverloaded: ++stats_.rejected_overloaded; break;
    case ServeStatus::kTooLarge: ++stats_.rejected_too_large; break;
    case ServeStatus::kMalformedFrame: ++stats_.rejected_malformed; break;
    case ServeStatus::kShuttingDown: ++stats_.rejected_shutting_down; break;
    case ServeStatus::kUnknownBase: ++stats_.rejected_unknown_base; break;
  }
}

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

void Server::PublishMetrics() {
  admission_.PublishMetrics();
  service_->PublishCacheMetrics();
}

}  // namespace mshls::serve
