
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/datapath_simulator.cpp" "src/sim/CMakeFiles/mshls_sim.dir/datapath_simulator.cpp.o" "gcc" "src/sim/CMakeFiles/mshls_sim.dir/datapath_simulator.cpp.o.d"
  "/root/repo/src/sim/op_semantics.cpp" "src/sim/CMakeFiles/mshls_sim.dir/op_semantics.cpp.o" "gcc" "src/sim/CMakeFiles/mshls_sim.dir/op_semantics.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/sim/CMakeFiles/mshls_sim.dir/simulator.cpp.o" "gcc" "src/sim/CMakeFiles/mshls_sim.dir/simulator.cpp.o.d"
  "/root/repo/src/sim/value_executor.cpp" "src/sim/CMakeFiles/mshls_sim.dir/value_executor.cpp.o" "gcc" "src/sim/CMakeFiles/mshls_sim.dir/value_executor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mshls_common.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/mshls_model.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/mshls_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/modulo/CMakeFiles/mshls_modulo.dir/DependInfo.cmake"
  "/root/repo/build/src/bind/CMakeFiles/mshls_bind.dir/DependInfo.cmake"
  "/root/repo/build/src/fds/CMakeFiles/mshls_fds.dir/DependInfo.cmake"
  "/root/repo/build/src/dfg/CMakeFiles/mshls_dfg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
