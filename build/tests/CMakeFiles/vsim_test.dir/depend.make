# Empty dependencies file for vsim_test.
# This may be replaced when dependencies are built.
