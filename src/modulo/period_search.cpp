#include "modulo/period_search.h"

#include <algorithm>
#include <cassert>
#include <optional>

#include "common/math_util.h"
#include "engine/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mshls {

std::vector<int> CandidatePeriods(const SystemModel& model,
                                  ResourceTypeId type) {
  const TypeAssignment& a = model.assignment(type);
  assert(a.scope == AssignmentScope::kGlobal);
  // Union of the divisors of every member's block time ranges: a period
  // that tiles *some* member's activation window is a candidate. This is
  // deliberately generous — the paper generates period sets "by a
  // permutation" and lets equation 3 discard the incompatible ones before
  // scheduling (§7); the eq.-3 filter in PeriodsCompatible() is what prunes
  // candidates that do not tile every member.
  std::vector<int> out;
  for (ProcessId pid : a.group) {
    for (BlockId bid : model.process(pid).blocks) {
      for (std::int64_t d :
           DivisorsOf(static_cast<std::int64_t>(
               model.block(bid).time_range)))
        out.push_back(static_cast<int>(d));
    }
  }
  if (out.empty()) return {1};
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

bool PeriodsCompatible(const SystemModel& model) {
  for (const Process& p : model.processes()) {
    // Candidate periods are untrusted here: many large coprime periods can
    // push the lcm past int64, which is UB through std::lcm. An
    // unrepresentable grid admits no back-to-back activation, so such a
    // combination is simply incompatible.
    std::vector<std::int64_t> periods;
    for (ResourceTypeId g : model.GlobalTypesOf(p.id))
      periods.push_back(model.assignment(g).period);
    const StatusOr<std::int64_t> grid_or =
        CheckedLcmOf(std::span<const std::int64_t>(periods));
    if (!grid_or.ok()) return false;
    const std::int64_t grid = grid_or.value();
    if (grid == 1) continue;
    for (BlockId bid : p.blocks) {
      if (model.block(bid).time_range % grid != 0) return false;
    }
  }
  return true;
}

StatusOr<PeriodSearchResult> SearchPeriods(SystemModel& model,
                                           const CoupledParams& params,
                                           const PeriodSearchOptions& options) {
  const std::vector<ResourceTypeId> globals = model.GlobalTypes();
  if (globals.empty())
    return Status{StatusCode::kFailedPrecondition,
                  "no global resource types to assign periods to (run S1)"};

  // kHarmonic restricts each type to the divisors of the gcd of its users'
  // block ranges — exactly the values that can appear in an eq.-3 survivor
  // (see modulo/period_config.h), so the product below IS the survivor set
  // and the filter loop shrinks from the full divisor-union product to it.
  const bool harmonic =
      options.configurator == PeriodConfigurator::kHarmonic;
  std::vector<std::vector<int>> candidates;
  candidates.reserve(globals.size());
  for (ResourceTypeId g : globals)
    candidates.push_back(harmonic ? HarmonicCandidatePeriods(model, g)
                                  : CandidatePeriods(model, g));

  PeriodSearchResult result;
  result.combinations = 1;
  for (const auto& c : candidates) result.combinations *= static_cast<long>(
      c.size());

  // Pass 1 — enumerate in canonical mixed-radix order and filter by eq. 3.
  // The filter only touches the period fields, so it runs on the caller's
  // model; survivors are the fixed work list for the (possibly parallel)
  // scheduling pass. The max_evaluations cap applies to survivors in
  // enumeration order, exactly as the original interleaved loop did.
  std::vector<std::vector<int>> survivors;
  std::vector<std::size_t> cursor(globals.size(), 0);
  for (;;) {
    for (std::size_t i = 0; i < globals.size(); ++i)
      model.SetPeriod(globals[i], candidates[i][cursor[i]]);

    if (!PeriodsCompatible(model)) {
      ++result.filtered_out;
    } else if (options.max_evaluations > 0 &&
               static_cast<long>(survivors.size()) >=
                   options.max_evaluations) {
      // Counted as a combination but not scheduled.
    } else {
      std::vector<int> periods(globals.size());
      for (std::size_t i = 0; i < globals.size(); ++i)
        periods[i] = candidates[i][cursor[i]];
      survivors.push_back(std::move(periods));
    }

    // Advance the mixed-radix cursor.
    std::size_t i = 0;
    for (; i < cursor.size(); ++i) {
      if (++cursor[i] < candidates[i].size()) break;
      cursor[i] = 0;
    }
    if (i == cursor.size()) break;
  }

  if (survivors.empty())
    return Status{StatusCode::kInfeasible,
                  "no period combination passed the eq.-3 grid filter"};

  // Pass 2 — schedule every survivor on its own model copy. Serial and
  // parallel runs share this code path; each slot is written only by its
  // own task, so the reduction below is order-independent by construction.
  // Worker runs never trace (their interleaving depends on the job count);
  // the search logs each candidate canonically from the reduction loop.
  CoupledParams worker_params = params;
  if (options.jobs > 1) worker_params.observer = nullptr;
  worker_params.trace = false;
  obs::TraceTrack* track = nullptr;
  if (obs::Tracer* tracer = obs::GlobalTracer())
    track = &tracer->NewTrack("period_search");
  obs::ScopedSpan search_span(
      track, "period_search",
      obs::TraceArgs()
          .I("globals", static_cast<long long>(globals.size()))
          .I("combinations", result.combinations)
          .I("filtered_out", result.filtered_out)
          .I("survivors", static_cast<long long>(survivors.size()))
          .Json());
  std::vector<std::optional<CoupledResult>> runs(survivors.size());
  std::vector<int> areas(survivors.size(), 0);
  std::vector<char> hits(survivors.size(), 0);
  std::vector<char> store_hits(survivors.size(), 0);
  std::vector<char> skipped(survivors.size(), 0);

  const auto evaluate = [&](std::size_t i) -> Status {
    SystemModel worker = model;
    for (std::size_t g = 0; g < globals.size(); ++g)
      worker.SetPeriod(globals[g], survivors[i][g]);
    bool hit = false;
    bool store_hit = false;
    auto run_or = ScheduleWithCache(worker, worker_params, options.cache,
                                    &hit, options.store, &store_hit);
    if (!run_or.ok()) return run_or.status();
    runs[i] = std::move(run_or).value();
    areas[i] = runs[i]->allocation.TotalArea(model.library());
    hits[i] = hit ? 1 : 0;
    store_hits[i] = store_hit ? 1 : 0;
    return Status::Ok();
  };

  // Utilization-bound prune (kHarmonic): schedule the probe — the LAST
  // survivor, the lexicographically largest period vector and therefore
  // the tie-break favorite — first. If its area already meets the
  // certified floor, no other combination can produce a smaller area, and
  // any tie resolves to the probe: skip the rest. Exact, and bit-identical
  // at any --jobs (the probe runs before the fan-out either way).
  std::vector<std::size_t> todo;
  todo.reserve(survivors.size());
  if (harmonic && survivors.size() > 1) {
    const std::size_t probe = survivors.size() - 1;
    if (Status s = evaluate(probe); !s.ok()) return s;
    if (areas[probe] <= AreaLowerBound(model)) {
      for (std::size_t i = 0; i < probe; ++i) skipped[i] = 1;
      result.pruned = static_cast<long>(probe);
    } else {
      for (std::size_t i = 0; i < probe; ++i) todo.push_back(i);
    }
  } else {
    for (std::size_t i = 0; i < survivors.size(); ++i) todo.push_back(i);
  }

  std::optional<ThreadPool> pool;
  if (options.jobs > 1 && !todo.empty()) pool.emplace(options.jobs);
  Status fan_out = ParallelFor(
      pool ? &*pool : nullptr, todo.size(),
      [&](std::size_t j) -> Status { return evaluate(todo[j]); });
  if (!fan_out.ok()) return fan_out;

  // Reduction in enumeration order: minimum area wins, ties go to the
  // lexicographically larger period vector (larger periods let more
  // processes share one instance, paper §3.2). Pruned survivors cannot
  // win or tie (their area strictly exceeds the probe's) and are skipped.
  std::size_t best_index = survivors.size() - 1;
  bool have_best = false;
  for (std::size_t i = 0; i < survivors.size(); ++i) {
    if (skipped[i]) continue;
    ++result.evaluated;
    if (hits[i]) ++result.cache_hits;
    if (store_hits[i]) ++result.store_hits;
    const bool better = !have_best || areas[i] < areas[best_index] ||
                        (areas[i] == areas[best_index] &&
                         survivors[i] > survivors[best_index]);
    have_best = true;
    if (better) best_index = i;
    if (track != nullptr) {
      std::string periods;
      for (std::size_t g = 0; g < survivors[i].size(); ++g) {
        if (g != 0) periods += ',';
        periods += std::to_string(survivors[i][g]);
      }
      track->Instant("candidate", obs::TraceArgs()
                                      .S("periods", periods)
                                      .I("area", areas[i])
                                      .I("cache_hit", hits[i] ? 1 : 0)
                                      .I("best", better ? 1 : 0)
                                      .Json());
    }
  }

  if (obs::Enabled()) {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    const obs::MetricKind kS = obs::MetricKind::kStable;
    reg.GetCounter("period_search.combinations", kS)
        .Add(result.combinations);
    reg.GetCounter("period_search.filtered_out", kS)
        .Add(result.filtered_out);
    reg.GetCounter("period_search.evaluated", kS).Add(result.evaluated);
    reg.GetCounter("period_search.cache_hits", kS).Add(result.cache_hits);
    reg.GetCounter("period_search.pruned", kS).Add(result.pruned);
  }

  result.area = areas[best_index];
  result.best = *std::move(runs[best_index]);
  result.periods = survivors[best_index];
  for (std::size_t i = 0; i < globals.size(); ++i)
    model.SetPeriod(globals[i], result.periods[i]);
  if (Status s = model.Validate(); !s.ok()) return s;
  return result;
}

}  // namespace mshls
