
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/exact_scheduler.cpp" "src/sched/CMakeFiles/mshls_sched.dir/exact_scheduler.cpp.o" "gcc" "src/sched/CMakeFiles/mshls_sched.dir/exact_scheduler.cpp.o.d"
  "/root/repo/src/sched/list_scheduler.cpp" "src/sched/CMakeFiles/mshls_sched.dir/list_scheduler.cpp.o" "gcc" "src/sched/CMakeFiles/mshls_sched.dir/list_scheduler.cpp.o.d"
  "/root/repo/src/sched/schedule.cpp" "src/sched/CMakeFiles/mshls_sched.dir/schedule.cpp.o" "gcc" "src/sched/CMakeFiles/mshls_sched.dir/schedule.cpp.o.d"
  "/root/repo/src/sched/time_frames.cpp" "src/sched/CMakeFiles/mshls_sched.dir/time_frames.cpp.o" "gcc" "src/sched/CMakeFiles/mshls_sched.dir/time_frames.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mshls_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dfg/CMakeFiles/mshls_dfg.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/mshls_model.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
