#include "report/bench_json.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "common/build_info.h"
#include "report/json_export.h"

namespace mshls {

BenchFields& BenchFields::I(const std::string& key, long long v) {
  fields_.emplace_back(key, std::to_string(v));
  return *this;
}

BenchFields& BenchFields::D(const std::string& key, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  fields_.emplace_back(key, buf);
  return *this;
}

BenchFields& BenchFields::S(const std::string& key, const std::string& v) {
  // Built with reserve/append: GCC 12's -Wrestrict trips on the
  // temporary-heavy operator+ chain at -O3.
  const std::string escaped = JsonEscape(v);
  std::string quoted;
  quoted.reserve(escaped.size() + 2);
  quoted += '"';
  quoted += escaped;
  quoted += '"';
  fields_.emplace_back(key, std::move(quoted));
  return *this;
}

BenchFields& BenchFields::B(const std::string& key, bool v) {
  fields_.emplace_back(key, v ? "true" : "false");
  return *this;
}

std::string BenchFields::Render() const {
  std::string out = "{";
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (i != 0) out += ", ";
    out += '"';
    out += JsonEscape(fields_[i].first);
    out += "\": ";
    out += fields_[i].second;
  }
  out += "}";
  return out;
}

BenchJson::BenchJson(std::string experiment, std::string name)
    : experiment_(std::move(experiment)), name_(std::move(name)) {}

BenchFields& BenchJson::AddRow() {
  rows_.emplace_back();
  return rows_.back();
}

std::string BenchJson::Render() const {
  std::string out = "{\n";
  out += "  \"schema\": \"mshls-bench-v1\",\n";
  out += "  \"experiment\": \"" + JsonEscape(experiment_) + "\",\n";
  out += "  \"name\": \"" + JsonEscape(name_) + "\",\n";
  out += "  \"build\": " + BuildInfoJson() + ",\n";
  out += "  \"params\": " + params_.Render() + ",\n";
  out += "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    out += "    " + rows_[i].Render();
    if (i + 1 < rows_.size()) out += ",";
    out += "\n";
  }
  out += "  ]\n}\n";
  return out;
}

bool BenchJson::WriteFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << Render();
  std::printf("wrote %s\n", path.c_str());
  return true;
}

std::string TakeJsonFlag(int& argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") != 0) continue;
    if (i + 1 >= argc) {
      std::fprintf(stderr, "--json requires a file argument\n");
      std::exit(2);
    }
    std::string file = argv[i + 1];
    for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
    argc -= 2;
    return file;
  }
  return {};
}

}  // namespace mshls
