#include "sim/op_semantics.h"

#include "common/rng.h"

namespace mshls {

std::int64_t ApplyOpSemantics(const std::string& op_name, std::int64_t a,
                              std::int64_t b) {
  if (op_name == "add") return a + b;
  if (op_name == "sub") return a - b;
  if (op_name == "mult" || op_name == "mul") return a * b;
  if (op_name == "div") return b == 0 ? 0 : a / b;
  if (op_name == "cmp") return a < b ? 1 : 0;
  return a + b;
}

std::int64_t SynthesizedInput(std::uint64_t seed, OpId op, std::size_t k) {
  Rng rng(seed ^ (static_cast<std::uint64_t>(op.value()) * 0x9E37u + k));
  // Small values keep products within int64 for graphs of modest depth.
  return rng.NextInt(1, 9);
}

std::int64_t EvaluateOpValue(const Block& block, const ResourceLibrary& lib,
                             std::span<const std::int64_t> operand_values,
                             OpId op, std::uint64_t seed) {
  const std::string& name = lib.type(block.graph.op(op).type).name;
  const auto preds = block.graph.preds(op);
  std::int64_t acc;
  if (preds.empty()) {
    acc = SynthesizedInput(seed, op, 0);
    acc = ApplyOpSemantics(name, acc, SynthesizedInput(seed, op, 1));
    return acc;
  }
  acc = operand_values[0];
  for (std::size_t k = 1; k < operand_values.size(); ++k)
    acc = ApplyOpSemantics(name, acc, operand_values[k]);
  if (preds.size() == 1)  // second operand is a block input
    acc = ApplyOpSemantics(name, acc, SynthesizedInput(seed, op, 1));
  return acc;
}

}  // namespace mshls
