// Single-block time-constrained schedulers:
//  * ScheduleBlockFds  — classic Force-Directed Scheduling (Paulin/Knight
//    1989, paper §4): every iteration evaluates all (op, step) placements
//    and commits the minimum-force one.
//  * ScheduleBlockIfds — Improved FDS (Verhaegh et al. 1995, paper §4):
//    gradual time-frame reduction; every iteration evaluates placements at
//    the two frame ends of every unfixed op and removes one step from the
//    worst end of the op with the largest force difference.
//
// Both treat every resource type locally; the multi-process modulo
// extension lives in modulo/coupled_scheduler.h and shares the same force
// primitives.
#pragma once

#include <functional>
#include <vector>

#include "common/status.h"
#include "fds/force.h"
#include "sched/schedule.h"
#include "sched/time_frames.h"

namespace mshls {

struct FdsResult {
  BlockSchedule schedule;
  /// Instances per resource type id needed by the schedule.
  std::vector<int> usage;
  int iterations = 0;
};

/// One end-point evaluation of the IFDS selection rule, exposed so that
/// benches/tests can trace the algorithm (paper Figure 2).
struct CandidateEval {
  OpId op;
  TimeFrame frame;
  double force_begin = 0;  // tentative placement at frame.asap
  double force_end = 0;    // tentative placement at frame.alap
  double diff = 0;         // |begin-end|, damped for wide frames
};

struct IterationTrace {
  int iteration = 0;
  std::vector<CandidateEval> candidates;
  OpId chosen;
  /// True if the chosen frame lost its begin step (begin force was worse).
  bool shrank_begin = false;
};

using IterationObserver = std::function<void(const IterationTrace&)>;

[[nodiscard]] StatusOr<FdsResult> ScheduleBlockFds(const Block& block,
                                                   const ResourceLibrary& lib,
                                                   const FdsParams& params);

[[nodiscard]] StatusOr<FdsResult> ScheduleBlockIfds(
    const Block& block, const ResourceLibrary& lib, const FdsParams& params,
    const IterationObserver& observer = {});

/// Reusable buffers for EvaluateLocalNarrowForce: the tentative frame set
/// and the per-type displacement profiles are assigned in place instead of
/// being reallocated per candidate. One instance per worker thread.
struct FdsScratch {
  TimeFrameSet next;
  std::vector<Profile> dq;       // per type id
  std::vector<char> touched;     // per type id
  std::vector<int> touched_list;
};

/// Force of tentatively narrowing `op` to `target`, measured on block-local
/// distributions `profiles` (indexed by type id). Includes all implied
/// predecessor/successor displacements via transitive frame propagation.
/// Shared by both schedulers and by the modulo engine's local-type path.
[[nodiscard]] double EvaluateLocalNarrowForce(
    const Block& block, const ResourceLibrary& lib, const TimeFrameSet& frames,
    const std::vector<Profile>& profiles, OpId op, TimeFrame target,
    const FdsParams& params);

/// Allocation-free variant used by the scheduler inner loops; bit-identical
/// to the plain overload.
[[nodiscard]] double EvaluateLocalNarrowForce(
    const Block& block, const ResourceLibrary& lib, const TimeFrameSet& frames,
    const std::vector<Profile>& profiles, OpId op, TimeFrame target,
    const FdsParams& params, FdsScratch& scratch);

/// Rebuilds exactly the per-type entries of `profiles` whose operations'
/// frames differ between `before` and `after` (the scoped equivalent of
/// BuildAllProfiles after one narrow; bit-identical to a full rebuild).
void RefreshChangedTypeProfiles(const Block& block, const ResourceLibrary& lib,
                                const TimeFrameSet& before,
                                const TimeFrameSet& after,
                                std::vector<Profile>& profiles);

/// Usage (max occupancy) per type id of a complete block schedule.
[[nodiscard]] std::vector<int> UsageOf(const Block& block,
                                       const ResourceLibrary& lib,
                                       const BlockSchedule& schedule);

}  // namespace mshls
