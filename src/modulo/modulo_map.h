// Modulo time mapping (paper eq. 1) and the modulo-maximum transform
// (paper eq. 7) — the first part of the two-part IFDS modification.
//
// Absolute time steps of the entire system map onto the period of a global
// resource type by tau = t mod lambda. An access authorization granted for
// residue tau is valid for every absolute step that maps to tau, which is
// what makes a block's schedule invariant under moves by multiples of
// lambda (paper eq. 2).
#pragma once

#include <span>
#include <vector>

#include "fds/distribution.h"

namespace mshls {

/// Residue of a block-relative step `t` for a block starting at a phase
/// `phase` (mod lambda): tau = (phase + t) mod lambda.
[[nodiscard]] constexpr int ResidueOf(int t, int phase, int lambda) {
  return (phase + t) % lambda;
}

/// Modulo-maximum transform (paper eq. 7):
///   D(tau) = max{ d(t) : ResidueOf(t) == tau }, 0 if the class is empty.
/// The transform "hides" all distribution mass below the per-residue
/// maximum; force evaluation on D is what produces the periodic alignment
/// of operations (paper §5.1).
[[nodiscard]] Profile ModuloMaxTransform(std::span<const double> d, int phase,
                                         int lambda);

/// In-place variant for allocation-free hot loops: `out` is resized to
/// `lambda` and overwritten. Bit-identical to ModuloMaxTransform.
void ModuloMaxTransformInto(std::span<const double> d, int phase, int lambda,
                            Profile& out);

/// Integer variant for final occupancy profiles.
[[nodiscard]] std::vector<int> ModuloMaxTransform(std::span<const int> d,
                                                  int phase, int lambda);

/// Element-wise maximum of equal-length profiles, used for combining the
/// non-overlapping blocks of one process (paper eq. 9, inner max).
[[nodiscard]] Profile ElementwiseMax(std::span<const double> a,
                                     std::span<const double> b);
[[nodiscard]] std::vector<int> ElementwiseMax(std::span<const int> a,
                                              std::span<const int> b);

}  // namespace mshls
