#include <gtest/gtest.h>

#include "bind/binding.h"
#include "modulo/coupled_scheduler.h"
#include "report/experiment_report.h"
#include "report/gantt.h"
#include "workloads/benchmarks.h"

namespace mshls {
namespace {

class ReportTest : public ::testing::Test {
 protected:
  SystemModel model_;
  PaperTypes types_ = AddPaperTypes(model_.library());
  BlockId block_;

  void SetUp() override {
    DataFlowGraph g;
    const OpId a = g.AddOp(types_.add, "acc");
    const OpId m = g.AddOp(types_.mult, "scale");
    g.AddEdge(a, m);
    ASSERT_TRUE(g.Validate().ok());
    const ProcessId p = model_.AddProcess("dsp", 6);
    block_ = model_.AddBlock(p, "main", std::move(g), 6);
    ASSERT_TRUE(model_.Validate().ok());
  }

  CoupledResult Run() {
    CoupledScheduler scheduler(model_, CoupledParams{});
    auto result = scheduler.Run();
    EXPECT_TRUE(result.ok());
    return std::move(result).value();
  }
};

TEST_F(ReportTest, SummarizeAllocationListsNonZeroTypes) {
  const CoupledResult result = Run();
  const std::string s = SummarizeAllocation(model_, result.allocation);
  EXPECT_NE(s.find("add=1"), std::string::npos);
  EXPECT_NE(s.find("mult=1"), std::string::npos);
  EXPECT_EQ(s.find("sub="), std::string::npos);  // unused type omitted
  EXPECT_NE(s.find("area=5"), std::string::npos);
}

TEST_F(ReportTest, CsvHasHeaderAndAreaRow) {
  const CoupledResult result = Run();
  const std::string csv = AllocationCsv(model_, result.allocation);
  EXPECT_EQ(csv.find("type,process,scope,instances\n"), 0u);
  EXPECT_NE(csv.find("add,dsp,local,1"), std::string::npos);
  EXPECT_NE(csv.find("area,,,5"), std::string::npos);
}

TEST_F(ReportTest, GanttShowsInstanceRowsAndLabels) {
  const CoupledResult result = Run();
  auto binding = BindSystem(model_, result.schedule, result.allocation);
  ASSERT_TRUE(binding.ok());
  const std::string gantt =
      RenderGantt(model_, block_, result.schedule, binding.value());
  EXPECT_NE(gantt.find("block 'main'"), std::string::npos);
  EXPECT_NE(gantt.find("acc"), std::string::npos);
  EXPECT_NE(gantt.find("scal"), std::string::npos);  // clipped to 4 chars
  EXPECT_NE(gantt.find("dsp_add0"), std::string::npos);
}

TEST_F(ReportTest, OccupancyRendersBusyTypesOnly) {
  const CoupledResult result = Run();
  const std::string occ = RenderOccupancy(model_, block_, result.schedule);
  EXPECT_NE(occ.find("add"), std::string::npos);
  EXPECT_NE(occ.find("mult"), std::string::npos);
  EXPECT_EQ(occ.find("sub"), std::string::npos);
}

TEST_F(ReportTest, GanttMarksMulticycleOccupancy) {
  // A non-pipelined 2-cycle unit shows the continuation marker '~'.
  SystemModel m;
  const ResourceTypeId slow = m.library().AddSimple("slow", 2, 2);
  DataFlowGraph g;
  g.AddOp(slow, "crunch");
  ASSERT_TRUE(g.Validate().ok());
  const ProcessId p = m.AddProcess("p", 4);
  const BlockId b = m.AddBlock(p, "b", std::move(g), 4);
  ASSERT_TRUE(m.Validate().ok());
  CoupledScheduler scheduler(m, CoupledParams{});
  auto result = scheduler.Run();
  ASSERT_TRUE(result.ok());
  auto binding =
      BindSystem(m, result.value().schedule, result.value().allocation);
  ASSERT_TRUE(binding.ok());
  const std::string gantt =
      RenderGantt(m, b, result.value().schedule, binding.value());
  EXPECT_NE(gantt.find("crun"), std::string::npos);
  EXPECT_NE(gantt.find("~"), std::string::npos);
}

TEST_F(ReportTest, AreaBreakdownRenders) {
  AreaBreakdown area;
  area.fu_area = 17;
  area.register_count = 3;
  area.register_area = 0.75;
  area.mux2_count = 8;
  area.mux_area = 1.0;
  area.total_area = 18.75;
  const std::string s = RenderAreaBreakdown(area);
  EXPECT_NE(s.find("17"), std::string::npos);
  EXPECT_NE(s.find("0.75"), std::string::npos);
  EXPECT_NE(s.find("18.75"), std::string::npos);
}

}  // namespace
}  // namespace mshls
