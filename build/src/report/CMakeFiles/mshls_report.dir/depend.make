# Empty dependencies file for mshls_report.
# This may be replaced when dependencies are built.
