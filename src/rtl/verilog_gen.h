// Verilog RTL generation from a scheduled, bound system.
//
// Emits one module per process (FSM controller + registers + local
// functional units + operand multiplexers) and a top-level module that
// instantiates the globally shared functional-unit pools. The top level
// contains, per global type, a free-running modulo-lambda residue counter;
// the counter plus the static authorization partition drive the input
// multiplexers of every pool instance. This is the paper's access model in
// hardware: purely static, periodic access control — no arbiter, no
// request/grant handshake (paper §3.2/§8). Correctness requires processes
// to be started grid-aligned (the `start_*` inputs must be asserted at
// absolute times ≡ block phase mod grid), which is the same condition the
// simulator substrate enforces.
//
// Functional-unit semantics by resource name: add -> a+b, sub/cmp -> a-b /
// a<b, mult -> a*b with delay-1 internal pipeline stages, div -> a/b;
// unknown names fall back to a+b with a comment. The generator's goal is a
// structurally faithful, synthesizable netlist skeleton, not a verified
// datapath; structural properties are covered by tests.
#pragma once

#include <string>

#include "bind/binding.h"
#include "bind/registers.h"
#include "common/status.h"

namespace mshls {

struct RtlOptions {
  int data_width = 16;
  std::string top_name = "mshls_system";
};

struct RtlDesign {
  /// Complete self-contained Verilog source (FU library + process modules
  /// + top level).
  std::string source;
  /// Module names in emission order, top last.
  std::vector<std::string> module_names;
};

[[nodiscard]] StatusOr<RtlDesign> GenerateRtl(const SystemModel& model,
                                              const SystemSchedule& schedule,
                                              const Allocation& allocation,
                                              const SystemBinding& binding,
                                              const RtlOptions& options = {});

}  // namespace mshls
