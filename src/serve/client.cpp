#include "serve/client.h"

#include <csignal>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "serve/wire.h"

namespace mshls::serve {

Status Client::Connect(const std::string& socket_path) {
  std::signal(SIGPIPE, SIG_IGN);
  Close();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path))
    return Status{StatusCode::kInvalidArgument,
                  "socket path empty or longer than sun_path allows: " +
                      socket_path};
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0)
    return Status{StatusCode::kInternal,
                  std::string("socket: ") + std::strerror(errno)};
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status s{StatusCode::kFailedPrecondition,
             "connect " + socket_path + ": " + std::strerror(errno)};
    Close();
    return s;
  }
  return Status::Ok();
}

StatusOr<ServeResponse> Client::Submit(const ServeRequest& request,
                                       long timeout_ms) {
  if (fd_ < 0)
    return Status{StatusCode::kInvalidArgument, "client is not connected"};
  if (Status s = WriteFrame(fd_, EncodeRequest(request)); !s.ok()) return s;
  const FrameRead frame = ReadFrame(fd_, kAbsoluteMaxFrameBytes, timeout_ms);
  switch (frame.outcome) {
    case FrameRead::Outcome::kFrame:
      return DecodeResponse(frame.payload);
    case FrameRead::Outcome::kEof:
    case FrameRead::Outcome::kMalformed:
      return Status{StatusCode::kFailedPrecondition,
                    "server closed the connection before responding"};
    case FrameRead::Outcome::kTooLarge:
      return Status{StatusCode::kInternal,
                    "response frame exceeds the absolute cap (" +
                        std::to_string(frame.declared) + " bytes)"};
    case FrameRead::Outcome::kTimeout:
      return Status{StatusCode::kDeadlineExceeded,
                    "timed out waiting for the server's response"};
    case FrameRead::Outcome::kIoError:
      return Status{StatusCode::kInternal, "read: " + frame.error};
  }
  return Status{StatusCode::kInternal, "unreachable"};
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace mshls::serve
