file(REMOVE_RECURSE
  "CMakeFiles/dsl_to_rtl.dir/dsl_to_rtl.cpp.o"
  "CMakeFiles/dsl_to_rtl.dir/dsl_to_rtl.cpp.o.d"
  "dsl_to_rtl"
  "dsl_to_rtl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsl_to_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
