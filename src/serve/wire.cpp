#include "serve/wire.h"

#include <cerrno>
#include <cstring>
#include <poll.h>
#include <unistd.h>

#include <algorithm>

namespace mshls::serve {
namespace {

/// Waits for `fd` to become readable; 1 = readable, 0 = timeout, -1 = error.
int WaitReadable(int fd, long timeout_ms) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = POLLIN;
  pfd.revents = 0;
  for (;;) {
    const int rc = ::poll(&pfd, 1, timeout_ms < 0
                                       ? -1
                                       : static_cast<int>(std::min<long>(
                                             timeout_ms, 1 << 30)));
    if (rc >= 0) return rc > 0 ? 1 : 0;
    if (errno == EINTR) continue;
    return -1;
  }
}

/// Reads exactly `n` bytes into `out`; partial data before EOF or an error
/// is reported through the outcome.
FrameRead::Outcome ReadExact(int fd, std::size_t n, long timeout_ms,
                             std::string* out, std::string* error) {
  out->resize(n);
  std::size_t have = 0;
  while (have < n) {
    const int ready = WaitReadable(fd, timeout_ms);
    if (ready < 0) {
      *error = std::strerror(errno);
      return FrameRead::Outcome::kIoError;
    }
    if (ready == 0) return FrameRead::Outcome::kTimeout;
    const ssize_t rc = ::read(fd, out->data() + have, n - have);
    if (rc > 0) {
      have += static_cast<std::size_t>(rc);
      continue;
    }
    if (rc == 0)  // peer closed mid-frame
      return have == 0 ? FrameRead::Outcome::kEof
                       : FrameRead::Outcome::kMalformed;
    if (errno == EINTR) continue;
    *error = std::strerror(errno);
    return FrameRead::Outcome::kIoError;
  }
  return FrameRead::Outcome::kFrame;
}

}  // namespace

const char* FrameOutcomeName(FrameRead::Outcome outcome) {
  switch (outcome) {
    case FrameRead::Outcome::kFrame: return "frame";
    case FrameRead::Outcome::kEof: return "eof";
    case FrameRead::Outcome::kMalformed: return "malformed";
    case FrameRead::Outcome::kTooLarge: return "too-large";
    case FrameRead::Outcome::kTimeout: return "timeout";
    case FrameRead::Outcome::kIoError: return "io-error";
  }
  return "unknown";
}

FrameRead ReadFrame(int fd, std::size_t max_bytes, long timeout_ms) {
  FrameRead result;
  std::string prefix;
  result.outcome = ReadExact(fd, 4, timeout_ms, &prefix, &result.error);
  if (result.outcome == FrameRead::Outcome::kFrame) {
    std::uint32_t declared = 0;
    std::size_t cursor = 0;
    (void)GetU32(prefix, cursor, &declared);  // 4 bytes are present
    result.declared = declared;
    const std::size_t cap =
        std::min<std::size_t>(max_bytes, kAbsoluteMaxFrameBytes);
    if (declared == 0) {
      // A zero-length request can carry no job; treat it as malformed so
      // the server answers with a typed rejection instead of looping.
      result.outcome = FrameRead::Outcome::kMalformed;
    } else if (declared > cap) {
      result.outcome = FrameRead::Outcome::kTooLarge;
    } else {
      result.outcome =
          ReadExact(fd, declared, timeout_ms, &result.payload, &result.error);
      // EOF after a full prefix is a mid-frame disconnect, not a clean end.
      if (result.outcome == FrameRead::Outcome::kEof)
        result.outcome = FrameRead::Outcome::kMalformed;
    }
  }
  if (result.outcome != FrameRead::Outcome::kFrame) result.payload.clear();
  return result;
}

Status WriteFrame(int fd, std::string_view payload) {
  if (payload.empty() || payload.size() > kAbsoluteMaxFrameBytes)
    return Status{StatusCode::kInvalidArgument,
                  "frame payload must be 1.." +
                      std::to_string(kAbsoluteMaxFrameBytes) + " bytes"};
  std::string wire;
  wire.reserve(4 + payload.size());
  PutU32(wire, static_cast<std::uint32_t>(payload.size()));
  wire.append(payload);
  std::size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t rc = ::write(fd, wire.data() + sent, wire.size() - sent);
    if (rc > 0) {
      sent += static_cast<std::size_t>(rc);
      continue;
    }
    if (rc < 0 && errno == EINTR) continue;
    return Status{StatusCode::kInternal,
                  std::string("write failed: ") + std::strerror(errno)};
  }
  return Status::Ok();
}

void PutU32(std::string& out, std::uint32_t value) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>((value >> (8 * i)) & 0xff));
}

void PutU64(std::string& out, std::uint64_t value) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>((value >> (8 * i)) & 0xff));
}

void PutI64(std::string& out, std::int64_t value) {
  PutU64(out, static_cast<std::uint64_t>(value));
}

bool GetU32(std::string_view in, std::size_t& cursor, std::uint32_t* value) {
  if (cursor + 4 > in.size()) return false;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(in[cursor + i]))
         << (8 * i);
  cursor += 4;
  *value = v;
  return true;
}

bool GetU64(std::string_view in, std::size_t& cursor, std::uint64_t* value) {
  if (cursor + 8 > in.size()) return false;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(in[cursor + i]))
         << (8 * i);
  cursor += 8;
  *value = v;
  return true;
}

bool GetI64(std::string_view in, std::size_t& cursor, std::int64_t* value) {
  std::uint64_t v = 0;
  if (!GetU64(in, cursor, &v)) return false;
  *value = static_cast<std::int64_t>(v);
  return true;
}

}  // namespace mshls::serve
