# Empty compiler generated dependencies file for bus_insertion_test.
# This may be replaced when dependencies are built.
