// Tests of the resource-constrained companion formulation (paper ref [8]).
#include <gtest/gtest.h>

#include "modulo/resource_constrained.h"
#include "workloads/benchmarks.h"
#include "workloads/paper_system.h"

namespace mshls {
namespace {

class RcModuloTest : public ::testing::Test {
 protected:
  SystemModel model_;
  PaperTypes types_ = AddPaperTypes(model_.library());

  ProcessId AddMultProcess(const std::string& name, int n, int range) {
    DataFlowGraph g;
    for (int i = 0; i < n; ++i)
      g.AddOp(types_.mult, name + "_m" + std::to_string(i));
    EXPECT_TRUE(g.Validate().ok());
    const ProcessId p = model_.AddProcess(name, range);
    model_.AddBlock(p, name + "_main", std::move(g), range);
    return p;
  }

  RcModuloOptions PoolOf(ResourceTypeId type, int n) {
    RcModuloOptions options;
    options.pool_limits.assign(model_.library().size(), 0);
    options.pool_limits[type.index()] = n;
    return options;
  }

  void CheckPrecedence(const RcModuloResult& result) {
    for (const Block& b : model_.blocks()) {
      const DelayFn delay = model_.DelayOf(b.id);
      for (const Edge& e : b.graph.edges()) {
        EXPECT_GE(result.schedule.of(b.id).start(e.to),
                  result.schedule.of(b.id).start(e.from) + delay(e.from));
      }
      for (const Operation& op : b.graph.ops())
        EXPECT_GE(result.schedule.of(b.id).start(op.id), 0);
    }
  }
};

TEST_F(RcModuloTest, SinglePoolSharedByTwoProcesses) {
  const ProcessId p1 = AddMultProcess("p1", 2, 8);
  const ProcessId p2 = AddMultProcess("p2", 2, 8);
  model_.MakeGlobal(types_.mult, {p1, p2});
  model_.SetPeriod(types_.mult, 4);
  ASSERT_TRUE(model_.Validate().ok());
  auto result = ScheduleResourceConstrainedModulo(model_,
                                                  PoolOf(types_.mult, 1));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  CheckPrecedence(result.value());
  // The single instance is honored: group profile never exceeds 1.
  const GlobalTypeAllocation& ga = result.value().allocation.global[0];
  EXPECT_EQ(ga.instances, 1);
  for (int v : ga.profile) EXPECT_LE(v, 1);
  // Both processes fit; lengths stay finite and reasonable (each has 2
  // pipelined issues, so length <= period bound).
  for (int len : result.value().lengths) {
    EXPECT_GT(len, 0);
    EXPECT_LE(len, 12);
  }
}

TEST_F(RcModuloTest, BiggerPoolShortensSchedules) {
  const ProcessId p1 = AddMultProcess("p1", 6, 32);
  const ProcessId p2 = AddMultProcess("p2", 6, 32);
  model_.MakeGlobal(types_.mult, {p1, p2});
  model_.SetPeriod(types_.mult, 4);
  ASSERT_TRUE(model_.Validate().ok());
  auto small = ScheduleResourceConstrainedModulo(model_,
                                                 PoolOf(types_.mult, 1));
  auto large = ScheduleResourceConstrainedModulo(model_,
                                                 PoolOf(types_.mult, 3));
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  int small_total = 0;
  int large_total = 0;
  for (int len : small.value().lengths) small_total += len;
  for (int len : large.value().lengths) large_total += len;
  EXPECT_LT(large_total, small_total);
}

TEST_F(RcModuloTest, AuthorizationsOfDistinctProcessesStayDisjoint) {
  const ProcessId p1 = AddMultProcess("p1", 4, 16);
  const ProcessId p2 = AddMultProcess("p2", 4, 16);
  const ProcessId p3 = AddMultProcess("p3", 4, 16);
  model_.MakeGlobal(types_.mult, {p1, p2, p3});
  model_.SetPeriod(types_.mult, 4);
  ASSERT_TRUE(model_.Validate().ok());
  auto result = ScheduleResourceConstrainedModulo(model_,
                                                  PoolOf(types_.mult, 2));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const GlobalTypeAllocation& ga = result.value().allocation.global[0];
  for (std::size_t tau = 0; tau < ga.profile.size(); ++tau) {
    int sum = 0;
    for (const auto& row : ga.authorization) sum += row[tau];
    EXPECT_EQ(sum, ga.profile[tau]);
    EXPECT_LE(sum, 2);
  }
}

TEST_F(RcModuloTest, LocalTypesUseLocalLimits) {
  DataFlowGraph g;
  for (int i = 0; i < 4; ++i) g.AddOp(types_.add, "a" + std::to_string(i));
  ASSERT_TRUE(g.Validate().ok());
  const ProcessId p = model_.AddProcess("p", 8);
  model_.AddBlock(p, "b", std::move(g), 8);
  ASSERT_TRUE(model_.Validate().ok());
  RcModuloOptions options;
  options.local_limits.assign(model_.library().size(), 0);
  options.local_limits[types_.add.index()] = 2;
  auto result = ScheduleResourceConstrainedModulo(model_, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().lengths[0], 2);  // 4 adds on 2 adders
  EXPECT_EQ(result.value().allocation.local[p.index()][types_.add.index()],
            2);
}

TEST_F(RcModuloTest, PaperSystemFitsThePaperPools) {
  // Give the RC formulation exactly the pools the TC run produced
  // (4 add, 1 sub, 3 mult, period 5): every block must fit, and the
  // schedule lengths must not exceed the paper deadlines by much.
  PaperSystem sys = BuildPaperSystem();
  RcModuloOptions options;
  options.pool_limits.assign(sys.model.library().size(), 0);
  options.pool_limits[sys.types.add.index()] = 4;
  options.pool_limits[sys.types.sub.index()] = 1;
  options.pool_limits[sys.types.mult.index()] = 3;
  auto result = ScheduleResourceConstrainedModulo(sys.model, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (const Block& b : sys.model.blocks()) {
    const int len = result.value().lengths[b.id.index()];
    EXPECT_GT(len, 0);
    EXPECT_LE(len, 2 * b.time_range) << b.name;
  }
}

TEST_F(RcModuloTest, TinyPoolForcesSerializationAcrossResidues) {
  // 4 mult issues, period 2, pool 1: the process alone can use both
  // residues, so its own block still fits; but a second identical process
  // must then squeeze into leftover capacity. Both must still succeed
  // (lengths just grow), since the period admits waiting.
  const ProcessId p1 = AddMultProcess("p1", 4, 32);
  const ProcessId p2 = AddMultProcess("p2", 4, 32);
  model_.MakeGlobal(types_.mult, {p1, p2});
  model_.SetPeriod(types_.mult, 2);
  ASSERT_TRUE(model_.Validate().ok());
  auto result = ScheduleResourceConstrainedModulo(model_,
                                                  PoolOf(types_.mult, 1));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const GlobalTypeAllocation& ga = result.value().allocation.global[0];
  EXPECT_LE(ga.instances, 1);
}

TEST_F(RcModuloTest, ImpossiblePoolReported) {
  // An op needs 1 instance; pool of 1 shared with an already-committed
  // full user at every residue... simulate by a very small max_length so
  // the fallback horizon cannot absorb the contention.
  const ProcessId p1 = AddMultProcess("p1", 8, 32);
  const ProcessId p2 = AddMultProcess("p2", 8, 32);
  model_.MakeGlobal(types_.mult, {p1, p2});
  model_.SetPeriod(types_.mult, 1);  // one residue class: hard contention
  ASSERT_TRUE(model_.Validate().ok());
  RcModuloOptions options = PoolOf(types_.mult, 1);
  options.max_length = 4;  // 8 issues cannot fit 4 steps on 1 residue
  auto result = ScheduleResourceConstrainedModulo(model_, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInfeasible);
}

TEST_F(RcModuloTest, PeriodOneMeansExclusiveOwnership) {
  // With lambda = 1 there is a single residue: authorizations of the two
  // processes sum at it, so a pool of 1 gives exactly one process access
  // at a time slot level; with 2 both proceed at full speed.
  const ProcessId p1 = AddMultProcess("p1", 3, 32);
  const ProcessId p2 = AddMultProcess("p2", 3, 32);
  model_.MakeGlobal(types_.mult, {p1, p2});
  model_.SetPeriod(types_.mult, 1);
  ASSERT_TRUE(model_.Validate().ok());
  auto pool2 = ScheduleResourceConstrainedModulo(model_,
                                                 PoolOf(types_.mult, 2));
  ASSERT_TRUE(pool2.ok());
  for (int len : pool2.value().lengths) EXPECT_LE(len, 5);
}

}  // namespace
}  // namespace mshls
