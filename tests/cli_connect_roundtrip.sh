#!/usr/bin/env bash
# Daemon round trip through the real binaries: start mshlsd with a
# persistent cache, solve a design cold, solve it warm, SIGTERM the
# daemon, restart it on the same cache directory and require a
# persistent-tier hit with a byte-identical --json export.
#
# Usage: cli_connect_roundtrip.sh <mshlsd> <mshlsc> <design.hls> <workdir>
set -u

MSHLSD=$1
MSHLSC=$2
DESIGN=$3
WORK=$4

rm -rf "$WORK"
mkdir -p "$WORK"
SOCK="$WORK/d.sock"
CACHE="$WORK/cache"
DAEMON_PID=""

fail() {
  echo "FAIL: $*" >&2
  [ -n "$DAEMON_PID" ] && kill -9 "$DAEMON_PID" 2>/dev/null
  exit 1
}

start_daemon() {
  "$MSHLSD" --socket "$SOCK" --jobs 2 --cache-dir "$CACHE" \
    >"$WORK/daemon.log" 2>&1 &
  DAEMON_PID=$!
  for _ in $(seq 1 100); do
    [ -S "$SOCK" ] && return 0
    kill -0 "$DAEMON_PID" 2>/dev/null || fail "daemon exited at startup"
    sleep 0.1
  done
  fail "daemon never created $SOCK"
}

stop_daemon() {
  kill -TERM "$DAEMON_PID" 2>/dev/null || fail "daemon already gone"
  for _ in $(seq 1 100); do
    kill -0 "$DAEMON_PID" 2>/dev/null || { DAEMON_PID=""; return 0; }
    sleep 0.1
  done
  fail "daemon did not drain after SIGTERM"
}

start_daemon
"$MSHLSC" "$DESIGN" --connect "$SOCK" --json "$WORK/cold.json" \
  >"$WORK/cold.out" 2>&1 || fail "cold submit failed: $(cat "$WORK/cold.out")"
grep -q "cache=miss" "$WORK/cold.out" || fail "first submit was not a miss"
"$MSHLSC" "$DESIGN" --connect "$SOCK" --json "$WORK/warm.json" \
  >"$WORK/warm.out" 2>&1 || fail "warm submit failed"
grep -q "cache=hit" "$WORK/warm.out" || fail "second submit was not a hit"
cmp -s "$WORK/cold.json" "$WORK/warm.json" || fail "warm payload differs"
stop_daemon

ls "$CACHE"/*.msc >/dev/null 2>&1 || fail "no persistent cache entry on disk"

start_daemon
"$MSHLSC" "$DESIGN" --connect "$SOCK" --json "$WORK/restart.json" \
  >"$WORK/restart.out" 2>&1 || fail "post-restart submit failed"
grep -q "cache=hit (persistent)" "$WORK/restart.out" \
  || fail "restarted daemon did not hit the persistent tier"
cmp -s "$WORK/cold.json" "$WORK/restart.json" \
  || fail "post-restart payload differs from the cold run"
stop_daemon

echo "PASS: cold -> warm -> restart-warm, payloads byte-identical"
