# Empty dependencies file for bench_period_sweep.
# This may be replaced when dependencies are built.
