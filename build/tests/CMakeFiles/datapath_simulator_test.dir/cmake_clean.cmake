file(REMOVE_RECURSE
  "CMakeFiles/datapath_simulator_test.dir/datapath_simulator_test.cpp.o"
  "CMakeFiles/datapath_simulator_test.dir/datapath_simulator_test.cpp.o.d"
  "datapath_simulator_test"
  "datapath_simulator_test.pdb"
  "datapath_simulator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datapath_simulator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
