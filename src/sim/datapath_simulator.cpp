#include "sim/datapath_simulator.h"

#include <algorithm>
#include <cassert>
#include <map>

#include "common/math_util.h"
#include "sim/op_semantics.h"
#include "sim/value_executor.h"

namespace mshls {
namespace {

/// Owner process (user index) of pool instance `index` at residue `tau`
/// under the authorization prefix partition; -1 if the instance is idle.
int PoolOwnerAt(const GlobalTypeAllocation& pool, int tau, int index) {
  int prefix = 0;
  for (std::size_t u = 0; u < pool.users.size(); ++u) {
    const int count = pool.authorization[u][static_cast<std::size_t>(tau)];
    if (index >= prefix && index < prefix + count) return static_cast<int>(u);
    prefix += count;
  }
  return -1;
}

}  // namespace

DatapathSimulator::DatapathSimulator(const SystemModel& model,
                                     const SystemSchedule& schedule,
                                     const Allocation& allocation,
                                     const SystemBinding& binding)
    : model_(model),
      schedule_(schedule),
      allocation_(allocation),
      binding_(binding) {}

DatapathReport DatapathSimulator::Run(
    const std::vector<DatapathActivation>& trace,
    const DatapathOptions& options) const {
  const ResourceLibrary& lib = model_.library();
  DatapathReport report;

  // Per-block register allocations (cache by block id).
  std::vector<BlockRegisterAllocation> regalloc(model_.block_count());
  std::vector<int> proc_regs(model_.process_count(), 0);
  for (const Block& b : model_.blocks()) {
    regalloc[b.id.index()] = AllocateRegisters(
        ComputeLifetimes(b, lib, schedule_.of(b.id)));
    proc_regs[b.process.index()] =
        std::max(proc_regs[b.process.index()],
                 regalloc[b.id.index()].register_count);
  }

  // Reference values per activation (inputs vary with the activation
  // index so cross-activation leakage cannot cancel out).
  struct ActState {
    std::uint64_t seed = 0;
    std::vector<std::int64_t> reference;
    std::vector<std::int64_t> captured;
  };
  std::vector<ActState> acts(trace.size());
  std::int64_t horizon = 0;
  for (std::size_t a = 0; a < trace.size(); ++a) {
    const Block& b = model_.block(trace[a].block);
    assert(trace[a].start >= 0);
    acts[a].seed = options.input_seed * 1000003ULL + a;
    ValueExecOptions exec;
    exec.input_seed = acts[a].seed;
    acts[a].reference = EvaluateGraph(b, lib, exec);
    acts[a].captured.assign(b.graph.op_count(), 0);
    horizon = std::max(horizon, trace[a].start + b.time_range);
  }
  report.cycles = horizon;

  // Register files per process: value + (activation, producer) tag.
  struct RegState {
    std::int64_t value = 0;
    long act = -1;
    OpId owner = OpId::invalid();
  };
  std::vector<std::vector<RegState>> regfile(model_.process_count());
  for (std::size_t p = 0; p < regfile.size(); ++p)
    regfile[p].assign(static_cast<std::size_t>(proc_regs[p]), RegState{});

  // Instance occupancy for hardware-conflict detection.
  std::vector<std::int64_t> busy_until(binding_.instances.size(), 0);

  auto fail = [&](std::string message) {
    report.ok = false;
    report.mismatch = std::move(message);
    return report;
  };

  // Event-driven over activations sorted by start would be nicer; the
  // horizon loop keeps the mux/conflict logic literal and is fast enough.
  for (std::int64_t t = 0; t < horizon; ++t) {
    // Issues this cycle.
    for (std::size_t a = 0; a < trace.size(); ++a) {
      const Block& b = model_.block(trace[a].block);
      const std::int64_t rel64 = t - trace[a].start;
      if (rel64 < 0 || rel64 >= b.time_range) continue;
      const int rel = static_cast<int>(rel64);
      const BlockSchedule& sched = schedule_.of(trace[a].block);
      for (const Operation& op : b.graph.ops()) {
        if (sched.start(op.id) != rel) continue;
        const InstanceId inst = binding_.of(trace[a].block, op.id);
        const InstanceInfo& info = binding_.info(inst);
        const ResourceType& rt = lib.type(op.type);

        // Hardware conflict: the unit must be free.
        if (busy_until[inst.index()] > t)
          return fail("instance '" + info.name +
                      "' driven twice at t=" + std::to_string(t));
        busy_until[inst.index()] = t + rt.dii;

        // Mux ownership for pool instances, over the whole occupancy.
        if (info.global) {
          const GlobalTypeAllocation* pool = allocation_.FindGlobal(op.type);
          assert(pool != nullptr);
          for (int k = 0; k < rt.dii; ++k) {
            const int tau =
                static_cast<int>(FlooredMod(t + k, pool->period));
            const int owner = PoolOwnerAt(*pool, tau, info.local_index);
            if (owner < 0 || pool->users[static_cast<std::size_t>(owner)] !=
                                 b.process)
              return fail("process '" + model_.process(b.process).name +
                          "' drives pool instance '" + info.name +
                          "' at residue " + std::to_string(tau) +
                          " owned by " +
                          (owner < 0 ? "nobody"
                                     : "'" + model_.process(
                                           pool->users[static_cast<
                                               std::size_t>(owner)]).name +
                                           "'") +
                          " (mux conflict at t=" + std::to_string(t) + ")");
          }
          ++report.shared_issues;
        }

        // Operand reads from the process register file.
        std::vector<std::int64_t> operands;
        for (OpId pred : b.graph.preds(op.id)) {
          const RegisterId r =
              regalloc[trace[a].block.index()].reg_of[pred.index()];
          const RegState& state = regfile[b.process.index()][r.index()];
          if (state.act != static_cast<long>(a) || state.owner != pred)
            return fail("activation " + std::to_string(a) + " op " +
                        std::to_string(op.id.value()) +
                        " reads a stale register at t=" + std::to_string(t));
          operands.push_back(state.value);
        }
        acts[a].captured[op.id.index()] =
            EvaluateOpValue(b, lib, operands, op.id, acts[a].seed);
      }
    }

    // End-of-cycle write-backs (result latched delay-1 cycles after
    // issue, matching the RTL pipeline).
    for (std::size_t a = 0; a < trace.size(); ++a) {
      const Block& b = model_.block(trace[a].block);
      const std::int64_t rel64 = t - trace[a].start;
      if (rel64 < 0 || rel64 >= b.time_range) continue;
      const int rel = static_cast<int>(rel64);
      const BlockSchedule& sched = schedule_.of(trace[a].block);
      for (const Operation& op : b.graph.ops()) {
        if (sched.start(op.id) + lib.type(op.type).delay - 1 != rel)
          continue;
        const RegisterId r =
            regalloc[trace[a].block.index()].reg_of[op.id.index()];
        regfile[b.process.index()][r.index()] =
            RegState{acts[a].captured[op.id.index()],
                     static_cast<long>(a), op.id};
      }
    }

    // Completed activations: compare against the reference.
    for (std::size_t a = 0; a < trace.size(); ++a) {
      const Block& b = model_.block(trace[a].block);
      if (trace[a].start + b.time_range - 1 != t) continue;
      for (const Operation& op : b.graph.ops()) {
        if (acts[a].captured[op.id.index()] !=
            acts[a].reference[op.id.index()])
          return fail("activation " + std::to_string(a) + " ('" + b.name +
                      "'): op " + std::to_string(op.id.value()) +
                      " produced " +
                      std::to_string(acts[a].captured[op.id.index()]) +
                      ", reference " +
                      std::to_string(acts[a].reference[op.id.index()]));
      }
      ++report.activations_checked;
    }
  }

  report.ok = true;
  return report;
}

}  // namespace mshls
