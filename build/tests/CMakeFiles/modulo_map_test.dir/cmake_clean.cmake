file(REMOVE_RECURSE
  "CMakeFiles/modulo_map_test.dir/modulo_map_test.cpp.o"
  "CMakeFiles/modulo_map_test.dir/modulo_map_test.cpp.o.d"
  "modulo_map_test"
  "modulo_map_test.pdb"
  "modulo_map_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/modulo_map_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
