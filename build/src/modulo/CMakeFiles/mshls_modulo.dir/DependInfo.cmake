
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/modulo/allocation.cpp" "src/modulo/CMakeFiles/mshls_modulo.dir/allocation.cpp.o" "gcc" "src/modulo/CMakeFiles/mshls_modulo.dir/allocation.cpp.o.d"
  "/root/repo/src/modulo/assignment_search.cpp" "src/modulo/CMakeFiles/mshls_modulo.dir/assignment_search.cpp.o" "gcc" "src/modulo/CMakeFiles/mshls_modulo.dir/assignment_search.cpp.o.d"
  "/root/repo/src/modulo/baseline.cpp" "src/modulo/CMakeFiles/mshls_modulo.dir/baseline.cpp.o" "gcc" "src/modulo/CMakeFiles/mshls_modulo.dir/baseline.cpp.o.d"
  "/root/repo/src/modulo/coupled_scheduler.cpp" "src/modulo/CMakeFiles/mshls_modulo.dir/coupled_scheduler.cpp.o" "gcc" "src/modulo/CMakeFiles/mshls_modulo.dir/coupled_scheduler.cpp.o.d"
  "/root/repo/src/modulo/modulo_map.cpp" "src/modulo/CMakeFiles/mshls_modulo.dir/modulo_map.cpp.o" "gcc" "src/modulo/CMakeFiles/mshls_modulo.dir/modulo_map.cpp.o.d"
  "/root/repo/src/modulo/period_search.cpp" "src/modulo/CMakeFiles/mshls_modulo.dir/period_search.cpp.o" "gcc" "src/modulo/CMakeFiles/mshls_modulo.dir/period_search.cpp.o.d"
  "/root/repo/src/modulo/refinement.cpp" "src/modulo/CMakeFiles/mshls_modulo.dir/refinement.cpp.o" "gcc" "src/modulo/CMakeFiles/mshls_modulo.dir/refinement.cpp.o.d"
  "/root/repo/src/modulo/resource_constrained.cpp" "src/modulo/CMakeFiles/mshls_modulo.dir/resource_constrained.cpp.o" "gcc" "src/modulo/CMakeFiles/mshls_modulo.dir/resource_constrained.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mshls_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dfg/CMakeFiles/mshls_dfg.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/mshls_model.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/mshls_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/fds/CMakeFiles/mshls_fds.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
