// Replays the committed scaling corpus (tests/data/scaling_corpus/*.hls)
// as part of tier-1: four large generated systems (30–60 processes, dense
// global sharing) that each must schedule flat AND hierarchically, certify
// on both paths, and agree on feasibility. This pins the size class the
// hierarchy tier exists for into every plain `ctest` run — a regression in
// the partitioner, the sub-model builder or the stitch shows up without
// running a fuzz campaign. Files carry their generator seed in the header
// and are regenerated from it if the generator stream ever changes.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "frontend/lowering.h"
#include "modulo/coupled_scheduler.h"
#include "modulo/hierarchy.h"
#include "verify/certifier.h"

namespace mshls {
namespace {

std::vector<std::filesystem::path> CorpusFiles() {
  const std::filesystem::path dir =
      std::filesystem::path(MSHLS_SOURCE_DIR) / "tests" / "data" /
      "scaling_corpus";
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir))
    if (entry.path().extension() == ".hls") files.push_back(entry.path());
  std::sort(files.begin(), files.end());
  return files;
}

TEST(ScalingCorpus, EveryCaseSchedulesFlatAndClusteredAndCertifies) {
  const std::vector<std::filesystem::path> files = CorpusFiles();
  ASSERT_GE(files.size(), 4u) << "corpus missing";
  for (const std::filesystem::path& file : files) {
    std::ifstream in(file);
    ASSERT_TRUE(in.good()) << file;
    std::ostringstream buf;
    buf << in.rdbuf();
    auto model_or = CompileSystem(buf.str());
    ASSERT_TRUE(model_or.ok()) << file << ": "
                               << model_or.status().ToString();
    SystemModel& model = model_or.value();
    ASSERT_GE(model.process_count(), 30u) << file.filename();
    ASSERT_FALSE(model.GlobalTypes().empty()) << file.filename();

    CoupledScheduler flat(model, CoupledParams{});
    auto flat_run = flat.Run();
    ASSERT_TRUE(flat_run.ok())
        << file.filename() << ": " << flat_run.status().ToString();
    const CertificateReport flat_cert = CertifySchedule(
        model, flat_run.value().schedule, flat_run.value().allocation);
    EXPECT_TRUE(flat_cert.ok()) << file.filename() << ": "
                                << flat_cert.Summary();

    HierarchyOptions options;
    options.max_cluster_processes = 8;
    auto clustered = ScheduleHierarchical(model, CoupledParams{}, options);
    ASSERT_TRUE(clustered.ok())
        << file.filename() << ": " << clustered.status().ToString();
    EXPECT_GE(clustered.value().stats.clusters, 2) << file.filename();
    const CertificateReport cert =
        CertifySchedule(model, clustered.value().schedule,
                        clustered.value().allocation);
    EXPECT_TRUE(cert.ok()) << file.filename() << ": " << cert.Summary();
  }
}

}  // namespace
}  // namespace mshls
