// Experiment S2 — breaking the instance-size ceiling: hierarchical coupled
// scheduling (modulo/hierarchy.h) on 50/100/200-process systems.
//
// For each scale the bench builds one dense-sharing random system (global
// add + mult pools spanning every process) and schedules it clustered
// (cluster cap 16, the partitioner fan-out on --jobs threads). The flat
// coupled run rides along up to --flat-limit processes (default 100) as
// the price-of-clustering reference; past that the flat sweep is the
// ceiling this experiment exists to break and is skipped.
//
// Every schedule — flat and clustered — must pass the independent
// certifier; the acceptance gate is the headline row: 200 processes and
// >= 5000 operations, clustered, certified, in under 60 s. The bench exits
// nonzero when either fails, so wiring it into scripts/bench_baseline.sh
// turns the scaling claim into a regression check.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/text_table.h"
#include "modulo/coupled_scheduler.h"
#include "modulo/hierarchy.h"
#include "report/bench_json.h"
#include "verify/certifier.h"
#include "workloads/benchmarks.h"

using namespace mshls;

namespace {

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// n processes of `ops` random ops each, global mult + add pools with
/// period 4 spanning every process, deadline 16 — the C1/R1 recipe scaled
/// up, so S2 timings compare against the other experiments' workloads.
SystemModel MakeSystem(int n_processes, int ops) {
  SystemModel model;
  const PaperTypes t = AddPaperTypes(model.library());
  Rng rng(42);
  std::vector<ProcessId> procs;
  for (int i = 0; i < n_processes; ++i) {
    RandomDfgOptions options;
    options.ops = ops;
    options.layers = 3;
    options.mult_probability = 0.3;
    DataFlowGraph g = BuildRandomDfg(t, rng, options);
    const ProcessId p = model.AddProcess("p" + std::to_string(i), 16);
    model.AddBlock(p, "b", std::move(g), 16);
    procs.push_back(p);
  }
  model.MakeGlobal(t.mult, procs);
  model.SetPeriod(t.mult, 4);
  model.MakeGlobal(t.add, procs);
  model.SetPeriod(t.add, 4);
  if (!model.Validate().ok()) std::abort();
  return model;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_file = TakeJsonFlag(argc, argv);
  int ops = 26;
  int jobs = 4;
  int flat_limit = 100;
  std::vector<int> scales = {50, 100, 200};
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--ops" && i + 1 < argc) ops = std::atoi(argv[++i]);
    else if (flag == "--jobs" && i + 1 < argc) jobs = std::atoi(argv[++i]);
    else if (flag == "--flat-limit" && i + 1 < argc)
      flat_limit = std::atoi(argv[++i]);
    else if (flag == "--smoke")
      scales = {20};
    else {
      std::fprintf(stderr,
                   "usage: %s [--ops n] [--jobs n] [--flat-limit n] "
                   "[--smoke] [--json file]\n",
                   argv[0]);
      return 1;
    }
  }

  std::printf("== S2: hierarchical scheduling past the flat ceiling ==\n\n");
  std::printf("%d op(s)/process, cluster cap 16, --jobs %d, flat reference "
              "up to %d process(es)\n\n",
              ops, jobs, flat_limit);

  BenchJson json("S2", "scaling");
  json.params().I("ops_per_process", ops).I("jobs", jobs).I("flat_limit",
                                                            flat_limit);

  TextTable table;
  table.SetHeader({"processes", "ops", "mode", "time [ms]", "area",
                   "clusters", "cut pools", "adopted", "certified"});
  for (std::size_t c = 3; c < 8; ++c) table.AlignRight(c);

  bool all_certified = true;
  bool headline_met = false;
  for (const int n : scales) {
    SystemModel model = MakeSystem(n, ops);
    long total_ops = 0;
    for (std::size_t b = 0; b < model.block_count(); ++b)
      total_ops += static_cast<long>(model.block(BlockId(static_cast<int>(b)))
                                         .graph.op_count());

    if (n <= flat_limit) {
      const auto t0 = std::chrono::steady_clock::now();
      CoupledScheduler flat(model, CoupledParams{});
      auto run = flat.Run();
      const double ms = MsSince(t0);
      if (!run.ok()) {
        std::fprintf(stderr, "%d processes: flat run failed: %s\n", n,
                     run.status().ToString().c_str());
        return 1;
      }
      const bool certified =
          CertifySchedule(model, run.value().schedule,
                          run.value().allocation)
              .ok();
      all_certified = all_certified && certified;
      const int area =
          run.value().allocation.TotalArea(model.library());
      table.AddRow({std::to_string(n), std::to_string(total_ops), "flat",
                    FormatDouble(ms, 0), std::to_string(area), "-", "-", "-",
                    certified ? "yes" : "NO"});
      json.AddRow()
          .I("processes", n)
          .I("ops", total_ops)
          .S("mode", "flat")
          .D("ms", ms)
          .I("area", area)
          .B("certified", certified);
    }

    const auto t0 = std::chrono::steady_clock::now();
    HierarchyOptions options;
    options.max_cluster_processes = 16;
    options.jobs = jobs;
    auto clustered = ScheduleHierarchical(model, CoupledParams{}, options);
    const double ms = MsSince(t0);
    if (!clustered.ok()) {
      std::fprintf(stderr, "%d processes: clustered run failed: %s\n", n,
                   clustered.status().ToString().c_str());
      return 1;
    }
    const HierarchicalResult& h = clustered.value();
    const bool certified =
        CertifySchedule(model, h.schedule, h.allocation).ok();
    all_certified = all_certified && certified;
    if (n >= 200 && total_ops >= 5000 && certified && ms < 60000)
      headline_met = true;
    table.AddRow({std::to_string(n), std::to_string(total_ops), "clustered",
                  FormatDouble(ms, 0), std::to_string(h.area),
                  std::to_string(h.stats.clusters),
                  std::to_string(h.stats.cut_types),
                  std::to_string(h.stats.reconcile_adopted),
                  certified ? "yes" : "NO"});
    json.AddRow()
        .I("processes", n)
        .I("ops", total_ops)
        .S("mode", "clustered")
        .D("ms", ms)
        .I("area", h.area)
        .I("clusters", h.stats.clusters)
        .I("cut_types", h.stats.cut_types)
        .I("reconcile_adopted", h.stats.reconcile_adopted)
        .B("certified", certified);
  }

  const bool smoke = scales.size() == 1 && scales[0] == 20;
  json.params().B("all_certified", all_certified);
  json.params().B("headline_200p_5000ops_under_60s", headline_met);

  std::printf("%s\n", table.Render().c_str());
  if (!all_certified) {
    std::fprintf(stderr, "FAIL: a schedule did not certify\n");
    return 1;
  }
  if (!smoke && !headline_met) {
    std::fprintf(stderr,
                 "FAIL: no certified clustered row with >= 200 processes "
                 "and >= 5000 ops finished under 60 s\n");
    return 1;
  }
  std::printf(smoke ? "smoke row certified\n"
                    : "headline met: 200 processes / >= 5000 ops clustered, "
                      "certified, under 60 s\n");
  if (!json_file.empty() && !json.WriteFile(json_file)) return 1;
  return 0;
}
