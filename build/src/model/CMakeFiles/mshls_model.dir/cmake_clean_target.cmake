file(REMOVE_RECURSE
  "libmshls_model.a"
)
