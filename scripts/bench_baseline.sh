#!/usr/bin/env bash
# Regenerates the committed C1 baseline (BENCH_coupled.json at the repo
# root): builds bench_coupled in the default RelWithDebInfo tree and runs
# the full A-series scaling ladder in the three engine configurations
# (serial-naive, incremental, incremental + jobs). The bench itself
# cross-checks that all three produce bit-identical schedules and exits
# non-zero on any divergence, so a regenerated baseline is also a
# consistency run. Numbers are machine-dependent — re-record EXPERIMENTS.md
# §C1 alongside when refreshing the file.
#
# Usage: scripts/bench_baseline.sh [build-dir]     (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
build="${1:-build}"

cmake -B "${build}" -S . > /dev/null
cmake --build "${build}" --target bench_coupled -j "$(nproc)" > /dev/null
"${build}/bench/bench_coupled" --json BENCH_coupled.json
