#include "model/model_spec.h"

#include <utility>

namespace mshls {

int ModelSpec::TotalOps() const {
  int n = 0;
  for (const SpecProcess& p : processes)
    for (const SpecBlock& b : p.blocks) n += static_cast<int>(b.ops.size());
  return n;
}

int ModelSpec::TotalEdges() const {
  int n = 0;
  for (const SpecProcess& p : processes)
    for (const SpecBlock& b : p.blocks) n += static_cast<int>(b.edges.size());
  return n;
}

ModelSpec ExtractSpec(const SystemModel& model) {
  ModelSpec spec;
  for (const ResourceType& t : model.library().types())
    spec.types.push_back(SpecType{t.name, t.delay, t.dii, t.area});
  for (const Process& p : model.processes()) {
    SpecProcess sp;
    sp.name = p.name;
    sp.deadline = p.deadline;
    for (BlockId bid : p.blocks) {
      const Block& b = model.block(bid);
      SpecBlock sb;
      sb.name = b.name;
      sb.time_range = b.time_range;
      sb.phase = b.phase;
      for (const Operation& op : b.graph.ops())
        sb.ops.push_back(SpecOp{op.type.value(), op.name});
      for (const Edge& e : b.graph.edges())
        sb.edges.push_back(
            SpecEdge{static_cast<int>(e.from.index()),
                     static_cast<int>(e.to.index())});
      sp.blocks.push_back(std::move(sb));
    }
    spec.processes.push_back(std::move(sp));
  }
  for (ResourceTypeId g : model.GlobalTypes()) {
    const TypeAssignment& a = model.assignment(g);
    SpecShare share;
    share.type = g.value();
    for (ProcessId p : a.group)
      share.processes.push_back(static_cast<int>(p.index()));
    share.period = a.period;
    spec.shares.push_back(std::move(share));
  }
  return spec;
}

StatusOr<SystemModel> BuildModel(const ModelSpec& spec) {
  SystemModel model;
  std::vector<ResourceTypeId> types;
  for (const SpecType& t : spec.types)
    types.push_back(model.library().AddType(t.name, t.delay, t.dii, t.area));

  std::vector<ProcessId> processes;
  for (const SpecProcess& p : spec.processes) {
    const ProcessId pid = model.AddProcess(p.name, p.deadline);
    processes.push_back(pid);
    for (const SpecBlock& b : p.blocks) {
      DataFlowGraph g;
      std::vector<OpId> ops;
      for (const SpecOp& o : b.ops) {
        if (o.type < 0 || o.type >= static_cast<int>(types.size()))
          return Status{StatusCode::kInvalidArgument,
                        "spec block '" + b.name +
                            "' references unknown type index " +
                            std::to_string(o.type)};
        ops.push_back(g.AddOp(types[static_cast<std::size_t>(o.type)], o.name));
      }
      for (const SpecEdge& e : b.edges) {
        if (e.from < 0 || e.to < 0 ||
            e.from >= static_cast<int>(ops.size()) ||
            e.to >= static_cast<int>(ops.size()))
          return Status{StatusCode::kInvalidArgument,
                        "spec block '" + b.name + "' has a dangling edge"};
        g.AddEdge(ops[static_cast<std::size_t>(e.from)],
                  ops[static_cast<std::size_t>(e.to)]);
      }
      model.AddBlock(pid, b.name, std::move(g), b.time_range, b.phase);
    }
  }

  for (const SpecShare& s : spec.shares) {
    if (s.type < 0 || s.type >= static_cast<int>(types.size()))
      return Status{StatusCode::kInvalidArgument,
                    "spec share references unknown type index " +
                        std::to_string(s.type)};
    std::vector<ProcessId> group;
    for (int idx : s.processes) {
      if (idx < 0 || idx >= static_cast<int>(processes.size()))
        return Status{StatusCode::kInvalidArgument,
                      "spec share references unknown process index " +
                          std::to_string(idx)};
      group.push_back(processes[static_cast<std::size_t>(idx)]);
    }
    model.MakeGlobal(types[static_cast<std::size_t>(s.type)], std::move(group));
    model.SetPeriod(types[static_cast<std::size_t>(s.type)], s.period);
  }

  if (Status st = model.Validate(); !st.ok()) return st;
  return model;
}

}  // namespace mshls
