#include "sim/simulator.h"

#include <algorithm>
#include <cassert>

#include "common/math_util.h"
#include "modulo/modulo_map.h"

namespace mshls {
namespace {

std::string TimedDetail(const std::string& what, std::int64_t t) {
  return what + " at t=" + std::to_string(t);
}

}  // namespace

SystemSimulator::SystemSimulator(const SystemModel& model,
                                 const SystemSchedule& schedule,
                                 const Allocation& allocation)
    : model_(model), schedule_(schedule), allocation_(allocation) {}

SimReport SystemSimulator::Run(const std::vector<Activation>& trace,
                               int max_violations) const {
  const ResourceLibrary& lib = model_.library();
  SimReport report;
  auto add_violation = [&](SimViolationKind kind, std::int64_t t,
                           std::string detail) {
    if (max_violations > 0 &&
        static_cast<int>(report.violations.size()) >= max_violations)
      return;
    report.violations.push_back(SimViolation{kind, t, std::move(detail)});
  };

  // Horizon.
  std::int64_t horizon = 0;
  for (const Activation& a : trace) {
    assert(a.start >= 0 && "activations must not start before t=0");
    horizon = std::max(horizon,
                       a.start + model_.block(a.block).time_range);
  }
  report.horizon = horizon;

  // Trace legality: grid alignment and per-process overlap.
  for (const Activation& a : trace) {
    const Block& b = model_.block(a.block);
    const std::int64_t grid = model_.GridSpacing(b.process);
    if (grid > 1 && FlooredMod(a.start, grid) != b.phase % grid) {
      add_violation(SimViolationKind::kGridMisaligned, a.start,
                    TimedDetail("block '" + b.name + "' starts off-grid " +
                                    "(grid " + std::to_string(grid) + ")",
                                a.start));
    }
  }
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const Block& bi = model_.block(trace[i].block);
    for (std::size_t j = i + 1; j < trace.size(); ++j) {
      const Block& bj = model_.block(trace[j].block);
      if (bi.process != bj.process) continue;
      const std::int64_t ei = trace[i].start + bi.time_range;
      const std::int64_t ej = trace[j].start + bj.time_range;
      if (trace[i].start < ej && trace[j].start < ei) {
        add_violation(
            SimViolationKind::kProcessOverlap,
            std::max(trace[i].start, trace[j].start),
            "blocks '" + bi.name + "' and '" + bj.name +
                "' of one process overlap (condition C2 violated)");
      }
    }
  }

  // Demand accumulation: demand[process][type][t].
  const std::size_t nproc = model_.process_count();
  const std::size_t ntype = lib.size();
  std::vector<std::vector<std::vector<int>>> demand(
      nproc, std::vector<std::vector<int>>(
                 ntype, std::vector<int>(static_cast<std::size_t>(horizon),
                                         0)));
  for (const Activation& a : trace) {
    const Block& b = model_.block(a.block);
    const BlockSchedule& sched = schedule_.of(a.block);
    for (const Operation& op : b.graph.ops()) {
      const int s = sched.start(op.id);
      const int dii = lib.type(op.type).dii;
      for (int k = 0; k < dii; ++k) {
        const std::int64_t t = a.start + s + k;
        assert(t < horizon);
        ++demand[b.process.index()][op.type.index()]
                [static_cast<std::size_t>(t)];
      }
    }
  }

  // Resource checks, cycle by cycle.
  report.stats.resize(ntype);
  for (const ResourceType& rt : lib.types()) {
    SimTypeStats& st = report.stats[rt.id.index()];
    st.type = rt.id;
    const GlobalTypeAllocation* pool = nullptr;
    if (model_.is_global(rt.id)) pool = allocation_.FindGlobal(rt.id);

    int total_instances = pool ? pool->instances : 0;
    for (std::size_t p = 0; p < nproc; ++p)
      total_instances += allocation_.local[p][rt.id.index()];
    st.instances = total_instances;

    for (std::int64_t t = 0; t < horizon; ++t) {
      int group_demand = 0;
      for (std::size_t p = 0; p < nproc; ++p) {
        const int d = demand[p][rt.id.index()][static_cast<std::size_t>(t)];
        if (d == 0) continue;
        st.busy_instance_cycles += d;
        const ProcessId pid{static_cast<int>(p)};
        const bool via_pool = pool != nullptr && model_.InGroup(rt.id, pid);
        if (via_pool) {
          group_demand += d;
          const int tau =
              static_cast<int>(FlooredMod(t, pool->period));
          // Find the authorization row of this process.
          int allowed = 0;
          for (std::size_t u = 0; u < pool->users.size(); ++u)
            if (pool->users[u] == pid)
              allowed = pool->authorization[u][static_cast<std::size_t>(tau)];
          if (d > allowed) {
            add_violation(
                SimViolationKind::kAuthorizationExceeded, t,
                "process '" + model_.process(pid).name + "' claims " +
                    std::to_string(d) + " x '" + rt.name +
                    "' but is authorized " + std::to_string(allowed) +
                    " at residue " + std::to_string(tau));
          }
        } else {
          if (d > allocation_.local[p][rt.id.index()]) {
            add_violation(SimViolationKind::kLocalExceeded, t,
                          "process '" + model_.process(pid).name +
                              "' exceeds its local '" + rt.name +
                              "' allocation");
          }
        }
      }
      if (pool != nullptr && group_demand > pool->instances) {
        add_violation(SimViolationKind::kPoolOversubscribed, t,
                      "global pool '" + rt.name + "' demand " +
                          std::to_string(group_demand) + " exceeds " +
                          std::to_string(pool->instances) + " instances");
      }
    }
    st.utilization =
        (horizon > 0 && st.instances > 0)
            ? static_cast<double>(st.busy_instance_cycles) /
                  (static_cast<double>(st.instances) *
                   static_cast<double>(horizon))
            : 0.0;
  }

  report.ok = report.violations.empty();
  return report;
}

std::vector<Activation> RandomActivationTrace(const SystemModel& model,
                                              const TraceOptions& options) {
  Rng rng(options.seed);
  std::vector<Activation> trace;
  for (const Process& p : model.processes()) {
    const std::int64_t grid = model.GridSpacing(p.id);
    std::int64_t next_free = 0;
    for (int i = 0; i < options.activations_per_process; ++i) {
      for (BlockId bid : p.blocks) {
        const Block& b = model.block(bid);
        // First grid-aligned start with the block's phase at or after
        // next_free, plus a random whole-grid gap.
        const std::int64_t gap =
            grid * rng.NextInt(0, options.max_gap_units);
        std::int64_t start = next_free + gap;
        const std::int64_t mis = FlooredMod(start - b.phase, grid);
        if (mis != 0) start += grid - mis;
        trace.push_back(Activation{bid, start});
        next_free = start + b.time_range;
      }
    }
  }
  return trace;
}

}  // namespace mshls
