file(REMOVE_RECURSE
  "libmshls_sim.a"
)
