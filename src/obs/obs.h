// Observability switchboard (DESIGN.md row 27).
//
// Two gates stack so the instrumentation threaded through the hot layers
// (thread pool, job service, caches, searches, coupled scheduler) is free
// when nobody is looking:
//
//  * compile time — the CMake option MSHLS_TRACE=OFF defines
//    MSHLS_OBS_DISABLED and every probe constant-folds to nothing
//    (Enabled() is `constexpr false`); scripts/obs_overhead.sh measures
//    the ON-but-disabled build against this tree to bound the residual
//    cost of the runtime gate;
//  * run time — with the probes compiled in, nothing is recorded until
//    obs::SetEnabled(true). The check is one relaxed atomic load; hot
//    loops (the coupled sweep) keep plain local counters and publish them
//    through the gate once per run instead of per candidate.
//
// Recording APIs live in obs/metrics.h (counters, gauges, histograms) and
// obs/trace.h (span tracer + Chrome trace_event export).
#pragma once

#include <atomic>

namespace mshls::obs {

#if defined(MSHLS_OBS_DISABLED)

inline constexpr bool kCompiledIn = false;
constexpr bool Enabled() { return false; }
inline void SetEnabled(bool) {}

#else

inline constexpr bool kCompiledIn = true;

namespace internal {
extern std::atomic<bool> g_enabled;
}  // namespace internal

/// True when recording is on; every probe checks this first.
inline bool Enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}

/// Turns recording on or off process-wide. Flipping mid-run is safe
/// (probes are individually atomic) but partial data results; callers
/// normally enable once before the pipeline starts.
void SetEnabled(bool on);

#endif

}  // namespace mshls::obs
