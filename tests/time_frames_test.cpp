#include <gtest/gtest.h>

#include "sched/time_frames.h"
#include "workloads/benchmarks.h"

namespace mshls {
namespace {

class TimeFramesTest : public ::testing::Test {
 protected:
  ResourceLibrary lib_;
  PaperTypes types_ = AddPaperTypes(lib_);

  DelayFn DelayOf(const DataFlowGraph& g) {
    return [this, &g](OpId op) { return lib_.type(g.op(op).type).delay; };
  }

  /// a(add) -> m(mult) -> b(add), critical path 4.
  DataFlowGraph Chain() {
    DataFlowGraph g;
    const OpId a = g.AddOp(types_.add, "a");
    const OpId m = g.AddOp(types_.mult, "m");
    const OpId b = g.AddOp(types_.add, "b");
    g.AddEdge(a, m);
    g.AddEdge(m, b);
    EXPECT_TRUE(g.Validate().ok());
    return g;
  }
};

TEST_F(TimeFramesTest, ChainFramesExact) {
  const DataFlowGraph g = Chain();
  auto frames_or = TimeFrameSet::Compute(g, DelayOf(g), 6);
  ASSERT_TRUE(frames_or.ok());
  const TimeFrameSet& f = frames_or.value();
  // Slack of 2: every frame has width 3.
  EXPECT_EQ(f.frame(OpId{0}), (TimeFrame{0, 2}));
  EXPECT_EQ(f.frame(OpId{1}), (TimeFrame{1, 3}));
  EXPECT_EQ(f.frame(OpId{2}), (TimeFrame{3, 5}));
  EXPECT_EQ(f.TotalSlack(), 6);
  EXPECT_FALSE(f.AllFixed());
}

TEST_F(TimeFramesTest, TightDeadlineFixesEverything) {
  const DataFlowGraph g = Chain();
  auto frames_or = TimeFrameSet::Compute(g, DelayOf(g), 4);
  ASSERT_TRUE(frames_or.ok());
  EXPECT_TRUE(frames_or.value().AllFixed());
  EXPECT_EQ(frames_or.value().frame(OpId{1}), (TimeFrame{1, 1}));
}

TEST_F(TimeFramesTest, InfeasibleDeadlineReported) {
  const DataFlowGraph g = Chain();
  auto frames_or = TimeFrameSet::Compute(g, DelayOf(g), 3);
  ASSERT_FALSE(frames_or.ok());
  EXPECT_EQ(frames_or.status().code(), StatusCode::kInfeasible);
}

TEST_F(TimeFramesTest, IndependentOpsGetFullRange) {
  DataFlowGraph g;
  g.AddOp(types_.add, "a");
  g.AddOp(types_.mult, "m");
  ASSERT_TRUE(g.Validate().ok());
  auto frames_or = TimeFrameSet::Compute(g, DelayOf(g), 5);
  ASSERT_TRUE(frames_or.ok());
  EXPECT_EQ(frames_or.value().frame(OpId{0}), (TimeFrame{0, 4}));
  // Multiplier must finish by 5: latest start is 3.
  EXPECT_EQ(frames_or.value().frame(OpId{1}), (TimeFrame{0, 3}));
}

TEST_F(TimeFramesTest, NarrowPropagatesForward) {
  const DataFlowGraph g = Chain();
  auto frames_or = TimeFrameSet::Compute(g, DelayOf(g), 6);
  ASSERT_TRUE(frames_or.ok());
  TimeFrameSet f = std::move(frames_or).value();
  // Fix a to 2: m must start at 3, b at 5.
  ASSERT_TRUE(f.Narrow(g, DelayOf(g), OpId{0}, TimeFrame{2, 2}).ok());
  EXPECT_EQ(f.frame(OpId{1}), (TimeFrame{3, 3}));
  EXPECT_EQ(f.frame(OpId{2}), (TimeFrame{5, 5}));
  EXPECT_TRUE(f.AllFixed());
}

TEST_F(TimeFramesTest, NarrowPropagatesBackward) {
  const DataFlowGraph g = Chain();
  auto frames_or = TimeFrameSet::Compute(g, DelayOf(g), 6);
  ASSERT_TRUE(frames_or.ok());
  TimeFrameSet f = std::move(frames_or).value();
  // Fix b to 3: m must start at 1, a at 0.
  ASSERT_TRUE(f.Narrow(g, DelayOf(g), OpId{2}, TimeFrame{3, 3}).ok());
  EXPECT_EQ(f.frame(OpId{1}), (TimeFrame{1, 1}));
  EXPECT_EQ(f.frame(OpId{0}), (TimeFrame{0, 0}));
}

TEST_F(TimeFramesTest, PartialNarrowKeepsWidth) {
  const DataFlowGraph g = Chain();
  auto frames_or = TimeFrameSet::Compute(g, DelayOf(g), 6);
  ASSERT_TRUE(frames_or.ok());
  TimeFrameSet f = std::move(frames_or).value();
  ASSERT_TRUE(f.Narrow(g, DelayOf(g), OpId{0}, TimeFrame{1, 2}).ok());
  EXPECT_EQ(f.frame(OpId{0}), (TimeFrame{1, 2}));
  EXPECT_EQ(f.frame(OpId{1}), (TimeFrame{2, 3}));
}

TEST_F(TimeFramesTest, FramesMatchBruteForceOnEwf) {
  // Cross-check ASAP/ALAP against longest-path recurrences evaluated
  // independently (forward/backward DP over the topological order).
  const DataFlowGraph g = BuildEwf(types_);
  const DelayFn delay = DelayOf(g);
  const int range = 25;
  auto frames_or = TimeFrameSet::Compute(g, delay, range);
  ASSERT_TRUE(frames_or.ok());
  const TimeFrameSet& f = frames_or.value();

  std::vector<int> asap(g.op_count(), 0);
  for (OpId id : g.topological_order())
    for (OpId p : g.preds(id))
      asap[id.index()] =
          std::max(asap[id.index()], asap[p.index()] + delay(p));
  std::vector<int> alap(g.op_count(), 0);
  const auto topo = g.topological_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    int latest = range - delay(*it);
    for (OpId s : g.succs(*it))
      latest = std::min(latest, alap[s.index()] - delay(*it));
    alap[it->index()] = latest;
  }
  for (const Operation& op : g.ops()) {
    EXPECT_EQ(f.frame(op.id).asap, asap[op.id.index()]) << op.name;
    EXPECT_EQ(f.frame(op.id).alap, alap[op.id.index()]) << op.name;
  }
}

TEST_F(TimeFramesTest, WidthAndContains) {
  const TimeFrame f{2, 5};
  EXPECT_EQ(f.width(), 4);
  EXPECT_FALSE(f.fixed());
  EXPECT_TRUE(f.contains(2));
  EXPECT_TRUE(f.contains(5));
  EXPECT_FALSE(f.contains(6));
}

}  // namespace
}  // namespace mshls
