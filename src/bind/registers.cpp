#include "bind/registers.h"

#include <algorithm>
#include <cassert>

namespace mshls {

std::vector<ValueLifetime> ComputeLifetimes(const Block& block,
                                            const ResourceLibrary& lib,
                                            const BlockSchedule& schedule) {
  std::vector<ValueLifetime> out;
  out.reserve(block.graph.op_count());
  for (const Operation& op : block.graph.ops()) {
    ValueLifetime v;
    v.producer = op.id;
    v.birth = schedule.start(op.id) + lib.type(op.type).delay;
    const auto succs = block.graph.succs(op.id);
    if (succs.empty()) {
      // Block output: must remain observable after the last step, so it
      // lives strictly beyond the time range (a sink finishing in the
      // final step must not reuse the register of another sink).
      v.death = block.time_range + 1;
    } else {
      int last_read = v.birth;
      for (OpId s : succs)
        last_read = std::max(last_read, schedule.start(s) + 1);
      v.death = last_read;
    }
    // A value read in the same step it is born still occupies a register
    // boundary; normalise to a non-empty interval.
    v.death = std::max(v.death, v.birth + 1);
    out.push_back(v);
  }
  return out;
}

BlockRegisterAllocation AllocateRegisters(
    const std::vector<ValueLifetime>& lifetimes) {
  BlockRegisterAllocation alloc;
  if (lifetimes.empty()) return alloc;
  std::size_t max_op = 0;
  for (const ValueLifetime& v : lifetimes)
    max_op = std::max(max_op, v.producer.index());
  alloc.reg_of.assign(max_op + 1, RegisterId::invalid());

  std::vector<std::size_t> order(lifetimes.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (lifetimes[a].birth != lifetimes[b].birth)
      return lifetimes[a].birth < lifetimes[b].birth;
    return lifetimes[a].producer < lifetimes[b].producer;
  });

  std::vector<int> free_at;  // per register: step it becomes free
  for (std::size_t idx : order) {
    const ValueLifetime& v = lifetimes[idx];
    int chosen = -1;
    for (std::size_t r = 0; r < free_at.size(); ++r) {
      if (free_at[r] <= v.birth) {
        chosen = static_cast<int>(r);
        break;
      }
    }
    if (chosen < 0) {
      chosen = static_cast<int>(free_at.size());
      free_at.push_back(0);
    }
    free_at[static_cast<std::size_t>(chosen)] = v.death;
    alloc.reg_of[v.producer.index()] = RegisterId{chosen};
  }
  alloc.register_count = static_cast<int>(free_at.size());
  return alloc;
}

std::vector<ProcessRegisterReport> AllocateSystemRegisters(
    const SystemModel& model, const SystemSchedule& schedule) {
  std::vector<ProcessRegisterReport> out;
  for (const Process& p : model.processes()) {
    ProcessRegisterReport report;
    report.process = p.id;
    for (BlockId bid : p.blocks) {
      const Block& b = model.block(bid);
      const auto lifetimes =
          ComputeLifetimes(b, model.library(), schedule.of(bid));
      report.register_count = std::max(
          report.register_count, AllocateRegisters(lifetimes).register_count);
    }
    out.push_back(report);
  }
  return out;
}

}  // namespace mshls
