#include <gtest/gtest.h>

#include <unordered_set>

#include "common/ids.h"
#include "common/math_util.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/text_table.h"

namespace mshls {
namespace {

TEST(StrongIdTest, DefaultIsInvalid) {
  OpId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, OpId::invalid());
}

TEST(StrongIdTest, ValueRoundTrip) {
  OpId id{7};
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value(), 7);
  EXPECT_EQ(id.index(), 7u);
}

TEST(StrongIdTest, Ordering) {
  EXPECT_LT(OpId{1}, OpId{2});
  EXPECT_EQ(OpId{3}, OpId{3});
  EXPECT_NE(OpId{3}, OpId{4});
}

TEST(StrongIdTest, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<OpId, BlockId>);
  static_assert(!std::is_same_v<ProcessId, ResourceTypeId>);
}

TEST(StrongIdTest, Hashable) {
  std::unordered_set<OpId> set;
  set.insert(OpId{1});
  set.insert(OpId{1});
  set.insert(OpId{2});
  EXPECT_EQ(set.size(), 2u);
}

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s{StatusCode::kInfeasible, "deadline too tight"};
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInfeasible);
  EXPECT_EQ(s.ToString(), "INFEASIBLE: deadline too tight");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument,
        StatusCode::kFailedPrecondition, StatusCode::kInfeasible,
        StatusCode::kNotFound, StatusCode::kParseError,
        StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeName(code), "UNKNOWN");
  }
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status{StatusCode::kNotFound, "nope"};
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v = std::string("hello");
  std::string out = std::move(v).value();
  EXPECT_EQ(out, "hello");
}

TEST(MathTest, GcdOfRange) {
  const std::int64_t xs[] = {30, 25, 15};
  EXPECT_EQ(GcdOf(xs), 5);
  const std::int64_t ys[] = {7};
  EXPECT_EQ(GcdOf(ys), 7);
  EXPECT_EQ(GcdOf(std::span<const std::int64_t>{}), 0);
}

TEST(MathTest, LcmOfRange) {
  const std::int64_t xs[] = {4, 6};
  EXPECT_EQ(LcmOf(xs), 12);
  EXPECT_EQ(LcmOf(std::span<const std::int64_t>{}), 1);
}

TEST(MathTest, Divisors) {
  EXPECT_EQ(DivisorsOf(1), (std::vector<std::int64_t>{1}));
  EXPECT_EQ(DivisorsOf(12), (std::vector<std::int64_t>{1, 2, 3, 4, 6, 12}));
  EXPECT_EQ(DivisorsOf(15), (std::vector<std::int64_t>{1, 3, 5, 15}));
  EXPECT_EQ(DivisorsOf(16), (std::vector<std::int64_t>{1, 2, 4, 8, 16}));
  // Perfect square: the root appears once.
  EXPECT_EQ(DivisorsOf(36),
            (std::vector<std::int64_t>{1, 2, 3, 4, 6, 9, 12, 18, 36}));
}

TEST(MathTest, FlooredMod) {
  EXPECT_EQ(FlooredMod(7, 5), 2);
  EXPECT_EQ(FlooredMod(-1, 5), 4);
  EXPECT_EQ(FlooredMod(-5, 5), 0);
  EXPECT_EQ(FlooredMod(0, 3), 0);
}

TEST(MathTest, CeilDiv) {
  EXPECT_EQ(CeilDiv(0, 4), 0);
  EXPECT_EQ(CeilDiv(1, 4), 1);
  EXPECT_EQ(CeilDiv(4, 4), 1);
  EXPECT_EQ(CeilDiv(5, 4), 2);
}

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, IntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.NextInt(-3, 9);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, BoolRoughlyFair) {
  Rng rng(11);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.NextBool(0.5) ? 1 : 0;
  EXPECT_GT(heads, 4500);
  EXPECT_LT(heads, 5500);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(21);
  EXPECT_EQ(rng.NextBounded(1), 0u);
  for (std::uint64_t span : {2ull, 3ull, 7ull, 1000ull, (1ull << 33) + 5}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.NextBounded(span), span);
  }
}

TEST(RngTest, BoundedIsUniformAcrossNonPowerOfTwoSpan) {
  // Distribution sanity for the Lemire rejection sampler: a span that does
  // not divide 2^64 must still fill every bucket evenly. The draw count is
  // fixed and the stream is seeded, so the expected counts are exact for
  // this test; the tolerance (5 %) is ~10 standard deviations for a true
  // uniform source.
  constexpr std::uint64_t kSpan = 7;
  constexpr int kDraws = 70000;
  Rng rng(31);
  int counts[kSpan] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.NextBounded(kSpan)];
  const double expected = static_cast<double>(kDraws) / kSpan;
  for (std::uint64_t v = 0; v < kSpan; ++v) {
    EXPECT_GT(counts[v], expected * 0.95) << "bucket " << v;
    EXPECT_LT(counts[v], expected * 1.05) << "bucket " << v;
  }
}

TEST(RngTest, IntCoversFullInclusiveRange) {
  Rng rng(41);
  bool seen[5] = {};
  for (int i = 0; i < 200; ++i) seen[rng.NextInt(-2, 2) + 2] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(TextTableTest, RendersAlignedColumns) {
  TextTable t;
  t.SetHeader({"name", "count"});
  t.AlignRight(1);
  t.AddRow({"adder", "4"});
  t.AddRow({"multiplier", "17"});
  const std::string out = t.Render();
  EXPECT_NE(out.find("| name       | count |"), std::string::npos);
  EXPECT_NE(out.find("| adder      |     4 |"), std::string::npos);
  EXPECT_NE(out.find("| multiplier |    17 |"), std::string::npos);
}

TEST(TextTableTest, RuleSeparatesSections) {
  TextTable t;
  t.SetHeader({"a"});
  t.AddRow({"1"});
  t.AddRule();
  t.AddRow({"2"});
  const std::string out = t.Render();
  // Header rule + top + bottom + the explicit one = 4 horizontal rules.
  int rules = 0;
  for (std::size_t pos = 0; (pos = out.find("+---", pos)) != std::string::npos;
       ++pos)
    ++rules;
  EXPECT_EQ(rules, 4);
}

TEST(TextTableTest, ShortRowsPadded) {
  TextTable t;
  t.SetHeader({"x", "y"});
  t.AddRow({"only"});
  EXPECT_NE(t.Render().find("| only |"), std::string::npos);
}

TEST(FormatDoubleTest, FixedDigits) {
  EXPECT_EQ(FormatDouble(1.0, 2), "1.00");
  EXPECT_EQ(FormatDouble(0.125, 3), "0.125");
  EXPECT_EQ(FormatDouble(-2.5, 1), "-2.5");
}

TEST(MathUtilTest, CheckedLcmMatchesLcmOnRepresentableInput) {
  EXPECT_EQ(CheckedLcm(4, 6), 12);
  EXPECT_EQ(CheckedLcm(1, 1), 1);
  EXPECT_EQ(CheckedLcm(7, 13), 91);
}

TEST(MathUtilTest, CheckedLcmReportsOverflow) {
  const std::int64_t big = (std::int64_t{1} << 62) + 1;  // odd, huge
  EXPECT_FALSE(CheckedLcm(big, big - 2).has_value());
}

TEST(MathUtilTest, CheckedLcmOfMatchesLcmOfOnPeriods) {
  const std::vector<std::int64_t> periods{5, 30, 25, 15};
  auto checked = CheckedLcmOf(periods);
  ASSERT_TRUE(checked.ok());
  EXPECT_EQ(checked.value(), LcmOf(periods));
  EXPECT_EQ(checked.value(), 150);

  const std::vector<std::int64_t> empty;
  auto identity = CheckedLcmOf(empty);
  ASSERT_TRUE(identity.ok());
  EXPECT_EQ(identity.value(), 1);
}

TEST(MathUtilTest, CheckedLcmOfRejectsNonPositiveAndOverflow) {
  const std::vector<std::int64_t> with_zero{3, 0, 5};
  EXPECT_EQ(CheckedLcmOf(with_zero).status().code(),
            StatusCode::kInvalidArgument);

  // Pairwise-coprime large primes: the true lcm is far beyond int64.
  const std::vector<std::int64_t> primes{1000000007, 1000000009, 1000000021,
                                         1000000033};
  EXPECT_EQ(CheckedLcmOf(primes).status().code(), StatusCode::kInfeasible);
}

}  // namespace
}  // namespace mshls
