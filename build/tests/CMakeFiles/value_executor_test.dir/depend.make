# Empty dependencies file for value_executor_test.
# This may be replaced when dependencies are built.
