// Replays the committed repair corpus (tests/data/repair_corpus/
// case_N.hls + case_N.delta) end to end as part of tier-1: compile the
// base, solve + certify it, parse the sidecar delta, walk the repair
// ladder, then re-certify the repaired schedule INDEPENDENTLY — the test
// never trusts repair's own gate. The corpus pins one delta per kind
// (deadline, retime, remove, add, period, group resize) plus a
// grid-hostile period that must fall through to the relax-periods rung.
// A bounded perturb-then-repair campaign rides along so generator or
// oracle drift shows up in tier-1, not only in overnight fuzz runs.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "frontend/lowering.h"
#include "fuzz/fuzzer.h"
#include "fuzz/perturb.h"
#include "modulo/repair.h"
#include "modulo/schedule_cache.h"
#include "verify/certifier.h"

namespace mshls {
namespace {

namespace fs = std::filesystem;

std::vector<fs::path> CorpusBases() {
  const fs::path dir =
      fs::path(MSHLS_SOURCE_DIR) / "tests" / "data" / "repair_corpus";
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir))
    if (entry.path().extension() == ".hls") files.push_back(entry.path());
  std::sort(files.begin(), files.end());
  return files;
}

std::string Slurp(const fs::path& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(RepairCorpus, EveryCaseRepairsAndIndependentlyRecertifies) {
  const std::vector<fs::path> bases = CorpusBases();
  ASSERT_GE(bases.size(), 6u) << "repair corpus missing";
  bool saw_relax = false;
  for (const fs::path& base_path : bases) {
    SCOPED_TRACE(base_path.filename().string());
    fs::path delta_path = base_path;
    delta_path.replace_extension(".delta");
    ASSERT_TRUE(fs::exists(delta_path)) << delta_path;

    auto model_or = CompileSystem(Slurp(base_path));
    ASSERT_TRUE(model_or.ok()) << model_or.status().ToString();
    SystemModel base = std::move(model_or).value();
    auto old_or = ScheduleWithCache(base, CoupledParams{}, nullptr, nullptr,
                                    nullptr, nullptr);
    ASSERT_TRUE(old_or.ok()) << old_or.status().ToString();
    const CoupledResult old = std::move(old_or).value();
    ASSERT_TRUE(CertifyResult(base, old).ok()) << "base not certified";

    auto delta_or = ParseDelta(Slurp(delta_path), base);
    ASSERT_TRUE(delta_or.ok()) << delta_or.status().ToString();

    auto repaired_or = RepairSchedule(base, old, delta_or.value());
    ASSERT_TRUE(repaired_or.ok()) << repaired_or.status().ToString();
    const RepairResult& repaired = repaired_or.value();
    EXPECT_TRUE(repaired.certificate.ok()) << repaired.certificate.Summary();
    // The independent gate: re-derive the certificate from scratch.
    const CertificateReport again =
        CertifyResult(*repaired.model, repaired.result);
    EXPECT_TRUE(again.ok()) << again.Summary();
    saw_relax |= repaired.rung == RepairRung::kRelaxPeriods;
  }
  // case_6 (grid-hostile period) must have exercised the fall-through.
  EXPECT_TRUE(saw_relax);
}

TEST(RepairCorpus, BoundedPerturbCampaignHasZeroDivergences) {
  FuzzOptions options;
  options.cases = 25;
  options.seed = 7;
  options.jobs = 2;
  auto report_or = RunPerturbFuzz(options);
  ASSERT_TRUE(report_or.ok()) << report_or.status().ToString();
  const PerturbReport& report = report_or.value();
  EXPECT_EQ(report.divergences, 0) << report.Summary();
  EXPECT_TRUE(report.ok());
  EXPECT_GT(report.repaired, 0) << report.Summary();
}

TEST(RepairCorpus, PerturbReportIsBitIdenticalAcrossJobCounts) {
  PerturbReport reports[3];
  const int jobs[3] = {1, 2, 8};
  for (int i = 0; i < 3; ++i) {
    FuzzOptions options;
    options.cases = 15;
    options.seed = 11;
    options.jobs = jobs[i];
    auto report_or = RunPerturbFuzz(options);
    ASSERT_TRUE(report_or.ok()) << report_or.status().ToString();
    reports[i] = std::move(report_or).value();
  }
  EXPECT_EQ(reports[0].log, reports[1].log);
  EXPECT_EQ(reports[0].log, reports[2].log);
  EXPECT_EQ(reports[0].Summary(), reports[1].Summary());
  EXPECT_EQ(reports[0].Summary(), reports[2].Summary());
}

}  // namespace
}  // namespace mshls
