#include "fuzz/shrinker.h"

#include <algorithm>
#include <cstddef>
#include <utility>

namespace mshls {
namespace {

ModelSpec RemoveProcess(ModelSpec s, std::size_t pi) {
  s.processes.erase(s.processes.begin() + static_cast<std::ptrdiff_t>(pi));
  for (auto it = s.shares.begin(); it != s.shares.end();) {
    std::vector<int>& procs = it->processes;
    procs.erase(std::remove(procs.begin(), procs.end(), static_cast<int>(pi)),
                procs.end());
    for (int& idx : procs)
      if (idx > static_cast<int>(pi)) --idx;
    it = procs.empty() ? s.shares.erase(it) : std::next(it);
  }
  return s;
}

ModelSpec RemoveBlock(ModelSpec s, std::size_t pi, std::size_t bi) {
  std::vector<SpecBlock>& blocks = s.processes[pi].blocks;
  blocks.erase(blocks.begin() + static_cast<std::ptrdiff_t>(bi));
  return s;
}

ModelSpec RemoveShare(ModelSpec s, std::size_t si) {
  s.shares.erase(s.shares.begin() + static_cast<std::ptrdiff_t>(si));
  return s;
}

ModelSpec RemoveOp(ModelSpec s, std::size_t pi, std::size_t bi,
                   std::size_t oi) {
  SpecBlock& b = s.processes[pi].blocks[bi];
  b.ops.erase(b.ops.begin() + static_cast<std::ptrdiff_t>(oi));
  std::vector<SpecEdge> kept;
  for (const SpecEdge& e : b.edges) {
    if (e.from == static_cast<int>(oi) || e.to == static_cast<int>(oi))
      continue;
    SpecEdge r = e;
    if (r.from > static_cast<int>(oi)) --r.from;
    if (r.to > static_cast<int>(oi)) --r.to;
    kept.push_back(r);
  }
  b.edges = std::move(kept);
  return s;
}

ModelSpec RemoveEdge(ModelSpec s, std::size_t pi, std::size_t bi,
                     std::size_t ei) {
  std::vector<SpecEdge>& edges = s.processes[pi].blocks[bi].edges;
  edges.erase(edges.begin() + static_cast<std::ptrdiff_t>(ei));
  return s;
}

}  // namespace

ShrinkResult ShrinkSpec(ModelSpec spec, const SpecPredicate& keep,
                        const ShrinkOptions& options) {
  ShrinkResult out;
  bool progress = true;
  // `consider` evaluates one deletion candidate; acceptance replaces the
  // current spec, and the caller's loop stays at the same index (the next
  // element has shifted into place).
  const auto consider = [&](ModelSpec cand) -> bool {
    if (out.attempts >= options.max_attempts) return false;
    if (!BuildModel(cand).ok()) return false;  // structurally dead end
    ++out.attempts;
    if (!keep(cand)) return false;
    spec = std::move(cand);
    ++out.removed;
    progress = true;
    return true;
  };

  while (progress && out.attempts < options.max_attempts) {
    progress = false;
    // Largest deletions first: each accepted process/block removal saves
    // many op-level attempts later.
    for (std::size_t pi = 0; pi < spec.processes.size();) {
      if (spec.processes.size() > 1 && consider(RemoveProcess(spec, pi)))
        continue;
      ++pi;
    }
    for (std::size_t pi = 0; pi < spec.processes.size(); ++pi)
      for (std::size_t bi = 0; bi < spec.processes[pi].blocks.size();) {
        if (spec.processes[pi].blocks.size() > 1 &&
            consider(RemoveBlock(spec, pi, bi)))
          continue;
        ++bi;
      }
    for (std::size_t si = 0; si < spec.shares.size();) {
      if (consider(RemoveShare(spec, si))) continue;
      ++si;
    }
    for (std::size_t pi = 0; pi < spec.processes.size(); ++pi)
      for (std::size_t bi = 0; bi < spec.processes[pi].blocks.size(); ++bi)
        for (std::size_t oi = 0; oi < spec.processes[pi].blocks[bi].ops.size();) {
          if (spec.processes[pi].blocks[bi].ops.size() > 1 &&
              consider(RemoveOp(spec, pi, bi, oi)))
            continue;
          ++oi;
        }
    for (std::size_t pi = 0; pi < spec.processes.size(); ++pi)
      for (std::size_t bi = 0; bi < spec.processes[pi].blocks.size(); ++bi)
        for (std::size_t ei = 0;
             ei < spec.processes[pi].blocks[bi].edges.size();) {
          if (consider(RemoveEdge(spec, pi, bi, ei))) continue;
          ++ei;
        }
  }
  out.spec = std::move(spec);
  return out;
}

}  // namespace mshls
