// Experiment T1 — reproduces Table 1 of the paper (§7):
// "Scheduling results of the multi-process example".
//
// System: P1-P3 = elliptic wave filters, P4-P5 = diffeq solver loops;
// adder + multiplier global to all five processes, subtracter global to
// P4+P5, common period for all global types. Compares the modified
// (coupled modulo) scheduling against the traditional pure-local
// assignment, reporting per-type access-authorization profiles, instance
// counts, total area, iteration counts and runtimes.
//
// Paper reference values: global 4 add + 1 sub + 3 mult = area 17;
// local 6 add + 2 sub + 5 mult = area 28; saving ~40 %. Our substrate is
// a reimplementation, so the *shape* (global clearly below local, fewer
// multipliers than processes) is the reproduction target.
#include <chrono>
#include <cstdio>

#include "bind/area_report.h"
#include "bind/binding.h"
#include "common/text_table.h"
#include "modulo/baseline.h"
#include "modulo/coupled_scheduler.h"
#include "report/bench_json.h"
#include "report/experiment_report.h"
#include "workloads/paper_system.h"

using namespace mshls;

namespace {

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_file = TakeJsonFlag(argc, argv);
  std::printf("== T1: Table 1 — multi-process example "
              "(3x EWF + 2x diffeq) ==\n");
  std::printf("deadlines: EWF 30/30/25, diffeq 15/15; period 5; "
              "add/sub delay 1 area 1; mult pipelined delay 2 area 4\n\n");

  PaperSystem sys = BuildPaperSystem();

  const auto t0 = std::chrono::steady_clock::now();
  CoupledScheduler scheduler(sys.model, CoupledParams{});
  auto global_or = scheduler.Run();
  const double global_ms = MsSince(t0);
  if (!global_or.ok()) {
    std::fprintf(stderr, "global run failed: %s\n",
                 global_or.status().ToString().c_str());
    return 1;
  }
  const CoupledResult& global = global_or.value();

  const auto t1 = std::chrono::steady_clock::now();
  auto local_or = ScheduleLocalBaseline(sys.model, CoupledParams{});
  const double local_ms = MsSince(t1);
  if (!local_or.ok()) {
    std::fprintf(stderr, "local run failed: %s\n",
                 local_or.status().ToString().c_str());
    return 1;
  }
  const CoupledResult& local = local_or.value();

  std::printf("--- modified scheduling (global assignment) ---\n%s\n",
              RenderTable1(sys.model, global).c_str());
  std::printf("--- traditional scheduling (pure local assignment) ---\n%s\n",
              RenderTable1(sys.model, local).c_str());

  const int ga = global.allocation.TotalArea(sys.model.library());
  const int la = local.allocation.TotalArea(sys.model.library());

  TextTable summary;
  summary.SetHeader({"metric", "global (modified)", "local (traditional)",
                     "paper global", "paper local"});
  summary.AlignRight(1);
  summary.AlignRight(2);
  summary.AlignRight(3);
  summary.AlignRight(4);
  auto total = [&](const Allocation& a, ResourceTypeId t) {
    return std::to_string(a.TotalInstances(t));
  };
  summary.AddRow({"adders", total(global.allocation, sys.types.add),
                  total(local.allocation, sys.types.add), "4", "6"});
  summary.AddRow({"subtracters", total(global.allocation, sys.types.sub),
                  total(local.allocation, sys.types.sub), "1", "2"});
  summary.AddRow({"multipliers", total(global.allocation, sys.types.mult),
                  total(local.allocation, sys.types.mult), "3", "5"});
  summary.AddRow({"FU area", std::to_string(ga), std::to_string(la), "17",
                  "28"});
  summary.AddRow({"iterations", std::to_string(global.iterations),
                  std::to_string(local.iterations), "172*", "78*"});
  summary.AddRow({"runtime [ms]", FormatDouble(global_ms, 1),
                  FormatDouble(local_ms, 1), "-", "-"});
  std::printf("%s", summary.Render().c_str());
  std::printf("(*) iteration digits in the scanned paper are damaged; "
              "shape comparison only.\n\n");

  std::printf("area ratio local/global: %.2f (paper: 28/17 = 1.65)\n",
              static_cast<double>(la) / ga);
  std::printf("area saving by global sharing: %.0f%% (paper: ~40%%)\n\n",
              100.0 * (1.0 - static_cast<double>(ga) / la));

  if (!json_file.empty()) {
    BenchJson json("T1", "table1");
    json.params().S("system", "3x EWF + 2x diffeq").I("period", 5);
    json.AddRow()
        .S("mode", "global")
        .I("adders", global.allocation.TotalInstances(sys.types.add))
        .I("subtracters", global.allocation.TotalInstances(sys.types.sub))
        .I("multipliers", global.allocation.TotalInstances(sys.types.mult))
        .I("area", ga)
        .I("iterations", global.iterations)
        .D("wall_ms", global_ms);
    json.AddRow()
        .S("mode", "local")
        .I("adders", local.allocation.TotalInstances(sys.types.add))
        .I("subtracters", local.allocation.TotalInstances(sys.types.sub))
        .I("multipliers", local.allocation.TotalInstances(sys.types.mult))
        .I("area", la)
        .I("iterations", local.iterations)
        .D("wall_ms", local_ms);
    if (!json.WriteFile(json_file)) return 1;
  }

  // Beyond the paper: does mux/register overhead eat the saving? (§7
  // leaves this open.)
  auto gb = BindSystem(sys.model, global.schedule, global.allocation);
  auto lb = BindSystem(sys.model, local.schedule, local.allocation);
  if (gb.ok() && lb.ok()) {
    const AreaBreakdown g_area = ComputeAreaBreakdown(
        sys.model, global.schedule, global.allocation, gb.value());
    const AreaBreakdown l_area = ComputeAreaBreakdown(
        sys.model, local.schedule, local.allocation, lb.value());
    std::printf("--- extension: full area including registers & muxes ---\n");
    std::printf("global:\n%s", RenderAreaBreakdown(g_area).c_str());
    std::printf("local:\n%s", RenderAreaBreakdown(l_area).c_str());
    std::printf("full-area ratio local/global: %.2f -> the mux overhead "
                "%s the paper's FU-only saving\n",
                l_area.total_area / g_area.total_area,
                l_area.total_area / g_area.total_area > 1.0
                    ? "does not cancel"
                    : "cancels");
  }
  return 0;
}
