// Experiment V1 — certifier overhead and fault-detection round trip.
//
// Measures what the independent certificate costs on top of scheduling the
// paper system (the answer motivates keeping `SchedulingJob::certify` on by
// default), then runs the full injection matrix once and reports per-class
// detection, as a smoke-level mirror of tests/verify_test.cpp that can be
// eyeballed in a log.
#include <chrono>
#include <cstdio>

#include "bind/binding.h"
#include "common/text_table.h"
#include "modulo/coupled_scheduler.h"
#include "report/bench_json.h"
#include "verify/certifier.h"
#include "verify/fault_injection.h"
#include "workloads/paper_system.h"

using namespace mshls;

namespace {

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_file = TakeJsonFlag(argc, argv);
  BenchJson json("V1", "verify");
  PaperSystem sys = BuildPaperSystem();

  auto t0 = std::chrono::steady_clock::now();
  CoupledScheduler scheduler(sys.model, CoupledParams{});
  auto run_or = scheduler.Run();
  if (!run_or.ok()) {
    std::fprintf(stderr, "scheduling failed: %s\n",
                 run_or.status().ToString().c_str());
    return 1;
  }
  CoupledResult result = std::move(run_or).value();
  const double schedule_ms = MsSince(t0);

  t0 = std::chrono::steady_clock::now();
  auto binding_or = BindSystem(sys.model, result.schedule, result.allocation);
  if (!binding_or.ok()) {
    std::fprintf(stderr, "binding failed: %s\n",
                 binding_or.status().ToString().c_str());
    return 1;
  }
  const double bind_ms = MsSince(t0);

  constexpr int kRounds = 100;
  t0 = std::chrono::steady_clock::now();
  long checks = 0;
  for (int i = 0; i < kRounds; ++i) {
    const CertificateReport report =
        CertifySchedule(sys.model, result.schedule, result.allocation,
                        &binding_or.value());
    if (!report.ok()) {
      std::fprintf(stderr, "clean schedule failed to certify:\n%s",
                   report.ToString(sys.model).c_str());
      return 1;
    }
    checks = report.stats.Total();
  }
  const double certify_ms = MsSince(t0) / kRounds;

  std::printf("paper system: schedule %.2f ms, bind %.2f ms, certify "
              "%.3f ms (%ld checks, x%d rounds)\n",
              schedule_ms, bind_ms, certify_ms, checks, kRounds);
  json.params().I("certify_rounds", kRounds);
  json.AddRow()
      .S("variant", "overhead")
      .D("schedule_ms", schedule_ms)
      .D("bind_ms", bind_ms)
      .D("certify_ms", certify_ms)
      .I("checks", checks);

  TextTable table;
  table.SetHeader({"fault", "injected site", "detected as"});
  bool all_detected = true;
  for (FaultKind kind : AllFaultKinds()) {
    SystemSchedule schedule = result.schedule;
    Allocation allocation = result.allocation;
    SystemBinding binding = binding_or.value();
    auto fault_or = InjectFault(FaultPlan{kind, 1}, sys.model, schedule,
                                allocation, &binding);
    if (!fault_or.ok()) {
      table.AddRow({FaultKindName(kind), fault_or.status().message(), "n/a"});
      continue;
    }
    const CertificateReport report =
        CertifySchedule(sys.model, schedule, allocation, &binding);
    const bool hit = report.Has(fault_or.value().expected);
    all_detected = all_detected && hit;
    table.AddRow({FaultKindName(kind), fault_or.value().description,
                  hit ? ViolationKindName(fault_or.value().expected)
                      : "MISSED"});
    json.AddRow()
        .S("variant", "fault")
        .S("fault", FaultKindName(kind))
        .B("detected", hit);
  }
  std::printf("%s", table.Render().c_str());
  if (!json_file.empty() && !json.WriteFile(json_file)) return 1;
  return all_detected ? 0 : 1;
}
