#include "modulo/modulo_map.h"

#include <algorithm>
#include <cassert>

namespace mshls {

Profile ModuloMaxTransform(std::span<const double> d, int phase, int lambda) {
  Profile out;
  ModuloMaxTransformInto(d, phase, lambda, out);
  return out;
}

void ModuloMaxTransformInto(std::span<const double> d, int phase, int lambda,
                            Profile& out) {
  assert(lambda >= 1 && phase >= 0);
  out.assign(static_cast<std::size_t>(lambda), 0.0);
  for (std::size_t t = 0; t < d.size(); ++t) {
    const int tau = ResidueOf(static_cast<int>(t), phase, lambda);
    out[static_cast<std::size_t>(tau)] =
        std::max(out[static_cast<std::size_t>(tau)], d[t]);
  }
}

std::vector<int> ModuloMaxTransform(std::span<const int> d, int phase,
                                    int lambda) {
  assert(lambda >= 1 && phase >= 0);
  std::vector<int> out(static_cast<std::size_t>(lambda), 0);
  for (std::size_t t = 0; t < d.size(); ++t) {
    const int tau = ResidueOf(static_cast<int>(t), phase, lambda);
    out[static_cast<std::size_t>(tau)] =
        std::max(out[static_cast<std::size_t>(tau)], d[t]);
  }
  return out;
}

Profile ElementwiseMax(std::span<const double> a, std::span<const double> b) {
  assert(a.size() == b.size());
  Profile out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = std::max(a[i], b[i]);
  return out;
}

std::vector<int> ElementwiseMax(std::span<const int> a,
                                std::span<const int> b) {
  assert(a.size() == b.size());
  std::vector<int> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = std::max(a[i], b[i]);
  return out;
}

}  // namespace mshls
