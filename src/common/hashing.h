// Stable (process- and platform-independent) hashing for cache keys and
// fingerprints. std::hash gives no cross-run guarantee, so everything that
// is persisted, compared across runs or used as a dedup key goes through
// this 64-bit FNV-1a variant with a splitmix64 finalizer instead.
#pragma once

#include <cstdint>
#include <string_view>

namespace mshls {

/// Incremental 64-bit hasher. Feed fields in a fixed canonical order; the
/// digest only depends on the byte sequence fed, never on addresses or
/// container layout.
class StableHasher {
 public:
  StableHasher& Mix(std::uint64_t value);
  StableHasher& Mix(std::int64_t value) {
    return Mix(static_cast<std::uint64_t>(value));
  }
  StableHasher& Mix(int value) {
    return Mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(value)));
  }
  StableHasher& Mix(bool value) {
    return Mix(static_cast<std::uint64_t>(value ? 1 : 0));
  }
  /// Doubles are hashed by bit pattern (canonicalizing -0.0 to 0.0).
  StableHasher& Mix(double value);
  /// Length-prefixed so {"ab","c"} and {"a","bc"} differ.
  StableHasher& Mix(std::string_view value);

  [[nodiscard]] std::uint64_t Digest() const;

 private:
  std::uint64_t state_ = 0xcbf29ce484222325ull;  // FNV offset basis
};

/// One-shot combine of two 64-bit hashes.
[[nodiscard]] std::uint64_t HashCombine(std::uint64_t seed, std::uint64_t v);

}  // namespace mshls
