file(REMOVE_RECURSE
  "libmshls_sched.a"
)
