// Parallel fan-out determinism: period search, assignment search and the
// fuzz campaign driver must produce bit-identical results at --jobs
// 1 / 2 / 8, with and without the result cache, including a warm-cache
// rerun. This is the contract that lets every later scaling layer
// (batching, sharding, fuzzing) trust the engine.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fuzz/fuzzer.h"
#include "modulo/assignment_search.h"
#include "modulo/coupled_scheduler.h"
#include "modulo/period_search.h"
#include "modulo/schedule_cache.h"
#include "workloads/benchmarks.h"

namespace mshls {
namespace {

/// Two diffeq processes sharing add + mult: small enough to search fast,
/// rich enough that the searches schedule many candidates.
SystemModel BuildSmallSharedSystem() {
  SystemModel model;
  const PaperTypes t = AddPaperTypes(model.library());
  const ProcessId p1 = model.AddProcess("deq_a", 10);
  model.AddBlock(p1, "deq_a_main", BuildDiffeq(t), 10);
  const ProcessId p2 = model.AddProcess("deq_b", 10);
  model.AddBlock(p2, "deq_b_main", BuildDiffeq(t), 10);
  model.MakeGlobal(t.add, {p1, p2});
  model.MakeGlobal(t.mult, {p1, p2});
  model.SetPeriod(t.add, 5);
  model.SetPeriod(t.mult, 5);
  EXPECT_TRUE(model.Validate().ok());
  return model;
}

void ExpectSameSchedule(const SystemSchedule& a, const SystemSchedule& b) {
  ASSERT_EQ(a.blocks.size(), b.blocks.size());
  for (std::size_t i = 0; i < a.blocks.size(); ++i) {
    ASSERT_EQ(a.blocks[i].size(), b.blocks[i].size());
    for (std::size_t op = 0; op < a.blocks[i].size(); ++op)
      EXPECT_EQ(a.blocks[i].start(OpId(op)), b.blocks[i].start(OpId(op)))
          << "block " << i << " op " << op;
  }
}

TEST(PeriodSearchDeterminism, JobsOneTwoEightBitIdentical) {
  PeriodSearchResult reference;
  for (int jobs : {1, 2, 8}) {
    SystemModel model = BuildSmallSharedSystem();
    PeriodSearchOptions options;
    options.jobs = jobs;
    auto search = SearchPeriods(model, CoupledParams{}, options);
    ASSERT_TRUE(search.ok()) << search.status().ToString();
    if (jobs == 1) {
      reference = std::move(search).value();
      continue;
    }
    const PeriodSearchResult& r = search.value();
    EXPECT_EQ(r.periods, reference.periods) << "jobs=" << jobs;
    EXPECT_EQ(r.area, reference.area) << "jobs=" << jobs;
    EXPECT_EQ(r.combinations, reference.combinations);
    EXPECT_EQ(r.filtered_out, reference.filtered_out);
    EXPECT_EQ(r.evaluated, reference.evaluated);
    EXPECT_EQ(r.best.iterations, reference.best.iterations);
    ExpectSameSchedule(r.best.schedule, reference.best.schedule);
  }
}

TEST(PeriodSearchDeterminism, CappedSearchStaysDeterministic) {
  PeriodSearchResult reference;
  for (int jobs : {1, 8}) {
    SystemModel model = BuildSmallSharedSystem();
    PeriodSearchOptions options;
    options.configurator = PeriodConfigurator::kExhaustive;
    options.jobs = jobs;
    options.max_evaluations = 3;  // prefix of the canonical enumeration
    auto search = SearchPeriods(model, CoupledParams{}, options);
    ASSERT_TRUE(search.ok()) << search.status().ToString();
    if (jobs == 1) {
      reference = std::move(search).value();
      continue;
    }
    EXPECT_EQ(search.value().evaluated, 3);
    EXPECT_EQ(search.value().periods, reference.periods);
    EXPECT_EQ(search.value().area, reference.area);
    ExpectSameSchedule(search.value().best.schedule,
                       reference.best.schedule);
  }
}

TEST(PeriodSearchDeterminism, CacheDoesNotChangeResults) {
  SystemModel plain_model = BuildSmallSharedSystem();
  auto plain = SearchPeriods(plain_model, CoupledParams{}, {});
  ASSERT_TRUE(plain.ok());

  ScheduleCache cache;
  for (int round = 0; round < 2; ++round) {
    SystemModel model = BuildSmallSharedSystem();
    PeriodSearchOptions options;
    options.jobs = 2;
    options.cache = &cache;
    auto cached = SearchPeriods(model, CoupledParams{}, options);
    ASSERT_TRUE(cached.ok()) << cached.status().ToString();
    EXPECT_EQ(cached.value().periods, plain.value().periods);
    EXPECT_EQ(cached.value().area, plain.value().area);
    ExpectSameSchedule(cached.value().best.schedule,
                       plain.value().best.schedule);
    if (round == 0) {
      EXPECT_EQ(cached.value().cache_hits, 0);
    } else {
      // Warm rerun: every candidate is served from the cache.
      EXPECT_EQ(cached.value().cache_hits, cached.value().evaluated);
    }
  }
  EXPECT_GT(cache.stats().hits, 0);
}

TEST(AssignmentSearchDeterminism, JobsOneTwoEightBitIdentical) {
  AssignmentSearchResult reference;
  for (int jobs : {1, 2, 8}) {
    SystemModel model = BuildSmallSharedSystem();
    AssignmentSearchOptions options;
    options.jobs = jobs;
    auto search = SearchAssignments(model, CoupledParams{}, options);
    ASSERT_TRUE(search.ok()) << search.status().ToString();
    if (jobs == 1) {
      reference = std::move(search).value();
      continue;
    }
    const AssignmentSearchResult& r = search.value();
    ASSERT_EQ(r.choices.size(), reference.choices.size());
    for (std::size_t i = 0; i < r.choices.size(); ++i) {
      EXPECT_EQ(r.choices[i].type, reference.choices[i].type);
      EXPECT_EQ(r.choices[i].global, reference.choices[i].global);
      EXPECT_EQ(r.choices[i].period, reference.choices[i].period);
    }
    EXPECT_EQ(r.area, reference.area);
    EXPECT_EQ(r.combinations, reference.combinations);
    EXPECT_EQ(r.evaluated, reference.evaluated);
    EXPECT_EQ(r.best.iterations, reference.best.iterations);
    ExpectSameSchedule(r.best.schedule, reference.best.schedule);
  }
}

TEST(AssignmentSearchDeterminism, CacheDoesNotChangeResults) {
  SystemModel plain_model = BuildSmallSharedSystem();
  auto plain = SearchAssignments(plain_model, CoupledParams{}, {});
  ASSERT_TRUE(plain.ok());

  ScheduleCache cache;
  for (int round = 0; round < 2; ++round) {
    SystemModel model = BuildSmallSharedSystem();
    AssignmentSearchOptions options;
    options.jobs = 8;
    options.cache = &cache;
    auto cached = SearchAssignments(model, CoupledParams{}, options);
    ASSERT_TRUE(cached.ok()) << cached.status().ToString();
    EXPECT_EQ(cached.value().area, plain.value().area);
    ExpectSameSchedule(cached.value().best.schedule,
                       plain.value().best.schedule);
    if (round == 1)
      EXPECT_EQ(cached.value().cache_hits, cached.value().evaluated);
  }
}

FuzzReport RunSmallCampaign(int jobs) {
  FuzzOptions options;
  options.cases = 25;
  options.seed = 9;
  options.jobs = jobs;
  options.repro_dir.clear();  // log determinism is what is under test
  auto report = RunFuzz(options);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return report.ok() ? report.value() : FuzzReport{};
}

TEST(FuzzDeterminism, RepeatedRunsProduceIdenticalLogs) {
  const FuzzReport a = RunSmallCampaign(1);
  const FuzzReport b = RunSmallCampaign(1);
  EXPECT_EQ(a.log, b.log);
  EXPECT_EQ(a.Summary(), b.Summary());
}

TEST(FuzzDeterminism, JobsOneAndEightProduceIdenticalLogs) {
  // The per-case fan-out writes into pre-assigned slots and the reduction
  // (log, counters, repro selection) runs serially in index order, so the
  // whole campaign report is independent of the worker count.
  const FuzzReport serial = RunSmallCampaign(1);
  for (int jobs : {2, 8}) {
    const FuzzReport parallel = RunSmallCampaign(jobs);
    EXPECT_EQ(parallel.log, serial.log) << "jobs=" << jobs;
    EXPECT_EQ(parallel.failures, serial.failures);
    EXPECT_EQ(parallel.Summary(), serial.Summary()) << "jobs=" << jobs;
  }
}

struct CoupledRun {
  CoupledResult result;
  std::vector<CoupledIterationTrace> traces;
};

CoupledRun RunCoupledWithJobs(int jobs) {
  SystemModel model = BuildSmallSharedSystem();
  CoupledRun run;
  CoupledParams params;
  params.jobs = jobs;
  params.observer = [&](const CoupledIterationTrace& t) {
    run.traces.push_back(t);
  };
  CoupledScheduler scheduler(model, params);
  auto result = scheduler.Run();
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  if (result.ok()) run.result = std::move(result).value();
  return run;
}

TEST(CoupledSweepDeterminism, JobsOneTwoEightBitIdentical) {
  // The per-iteration candidate sweep of the single-model coupled
  // scheduler fans out over the thread pool: every worker refreshes only
  // its own blocks' pre-assigned cache slots and the reduction runs
  // serially in canonical (block, op) order, so any worker count must
  // reproduce the serial run bit for bit — every candidate force of every
  // iteration, not just the final schedule.
  const CoupledRun reference = RunCoupledWithJobs(1);
  EXPECT_GT(reference.traces.size(), 0u);
  for (int jobs : {2, 8}) {
    const CoupledRun run = RunCoupledWithJobs(jobs);
    EXPECT_EQ(run.result.iterations, reference.result.iterations)
        << "jobs=" << jobs;
    ExpectSameSchedule(run.result.schedule, reference.result.schedule);
    ASSERT_EQ(run.traces.size(), reference.traces.size()) << "jobs=" << jobs;
    for (std::size_t i = 0; i < run.traces.size(); ++i) {
      const CoupledIterationTrace& a = reference.traces[i];
      const CoupledIterationTrace& b = run.traces[i];
      EXPECT_EQ(a.chosen_block, b.chosen_block) << "iteration " << i;
      EXPECT_EQ(a.chosen_op, b.chosen_op) << "iteration " << i;
      EXPECT_EQ(a.shrank_begin, b.shrank_begin) << "iteration " << i;
      ASSERT_EQ(a.candidates.size(), b.candidates.size());
      for (std::size_t c = 0; c < a.candidates.size(); ++c) {
        EXPECT_EQ(a.candidates[c].force_begin, b.candidates[c].force_begin)
            << "jobs=" << jobs << " iteration " << i << " candidate " << c;
        EXPECT_EQ(a.candidates[c].force_end, b.candidates[c].force_end)
            << "jobs=" << jobs << " iteration " << i << " candidate " << c;
      }
    }
  }
}

TEST(CoupledSweepDeterminism, RepeatedRunsAreStable) {
  for (int jobs : {1, 4}) {
    const CoupledRun a = RunCoupledWithJobs(jobs);
    const CoupledRun b = RunCoupledWithJobs(jobs);
    EXPECT_EQ(a.result.iterations, b.result.iterations);
    ExpectSameSchedule(a.result.schedule, b.result.schedule);
  }
}

TEST(SearchDeterminism, RepeatedRunsAreStable) {
  // Same search twice at the same width: byte-for-byte equal chosen state.
  for (int jobs : {1, 4}) {
    SystemModel a = BuildSmallSharedSystem();
    SystemModel b = BuildSmallSharedSystem();
    PeriodSearchOptions options;
    options.jobs = jobs;
    auto ra = SearchPeriods(a, CoupledParams{}, options);
    auto rb = SearchPeriods(b, CoupledParams{}, options);
    ASSERT_TRUE(ra.ok());
    ASSERT_TRUE(rb.ok());
    EXPECT_EQ(ra.value().periods, rb.value().periods);
    ExpectSameSchedule(ra.value().best.schedule, rb.value().best.schedule);
  }
}

}  // namespace
}  // namespace mshls
