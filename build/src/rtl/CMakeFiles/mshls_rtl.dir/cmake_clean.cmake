file(REMOVE_RECURSE
  "CMakeFiles/mshls_rtl.dir/verilog_gen.cpp.o"
  "CMakeFiles/mshls_rtl.dir/verilog_gen.cpp.o.d"
  "libmshls_rtl.a"
  "libmshls_rtl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mshls_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
