// JobService — batch front of the scheduling engine: runs many
// SchedulingJobs concurrently on one bounded thread pool, shares one
// result cache across them, and returns results in submission order
// (parallel batch output is position-identical to a serial run of the
// same jobs).
#pragma once

#include <array>
#include <vector>

#include "engine/job.h"
#include "engine/result_cache.h"
#include "engine/thread_pool.h"
#include "modulo/schedule_cache.h"

namespace mshls {

/// Number of DegradationRung values (for per-rung accounting arrays).
inline constexpr std::size_t kDegradationRungCount = 4;

/// Aggregate view of one finished batch: success/failure split, per-rung
/// degradation counts, search-candidate totals and the shared schedule
/// cache's hit ratio. All fields are order-independent sums, so a summary
/// of a parallel batch equals the serial one.
struct BatchSummary {
  std::size_t total = 0;
  std::size_t succeeded = 0;
  std::size_t failed = 0;
  /// Successful jobs that finished on each rung, indexed by
  /// static_cast<std::size_t>(DegradationRung).
  std::array<std::size_t, kDegradationRungCount> rung_counts{};
  /// Rung attempts actually run across all jobs (>= total: fallback jobs
  /// try several).
  std::size_t attempts = 0;
  long evaluated = 0;    // search candidates scheduled across the batch
  long cache_hits = 0;   // of those, served from the schedule cache
  CacheStats cache;      // the shared cache's own counters
  double wall_ms_sum = 0;

  [[nodiscard]] double HitRate() const {
    return evaluated == 0 ? 0.0
                          : static_cast<double>(cache_hits) /
                                static_cast<double>(evaluated);
  }
};

/// Folds per-job results and the shared cache's stats into a BatchSummary.
[[nodiscard]] BatchSummary SummarizeBatch(const std::vector<JobResult>& results,
                                          const CacheStats& cache_stats);

struct JobServiceOptions {
  /// Concurrent jobs; <= 1 runs the batch serially on the calling thread.
  int workers = 1;
  /// Schedule-cache capacity (entries); 0 = unbounded.
  std::size_t cache_capacity = 0;
};

class JobService {
 public:
  explicit JobService(const JobServiceOptions& options = {});

  /// Runs all jobs, blocking until every one finished (or failed);
  /// results[i] always corresponds to jobs[i]. A job whose `cache` is
  /// unset is wired to the service-wide cache. Per-job failures are
  /// reported in the result's status, never thrown.
  [[nodiscard]] std::vector<JobResult> RunBatch(std::vector<SchedulingJob> jobs);

  [[nodiscard]] ScheduleCache& cache() { return cache_; }
  [[nodiscard]] CacheStats cache_stats() const { return cache_.stats(); }
  [[nodiscard]] int workers() const { return workers_; }

 private:
  int workers_;
  ScheduleCache cache_;
  /// Cache counters already mirrored into the metrics registry, so
  /// consecutive RunBatch calls publish deltas, not lifetime totals twice.
  CacheStats published_;
};

}  // namespace mshls
