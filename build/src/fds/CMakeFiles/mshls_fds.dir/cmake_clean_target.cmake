file(REMOVE_RECURSE
  "libmshls_fds.a"
)
