// Shared report formatting for benches and examples: paper-style result
// tables (Table 1 layout), allocation summaries and CSV emission.
#pragma once

#include <string>

#include "bind/area_report.h"
#include "modulo/coupled_scheduler.h"

namespace mshls {

/// Paper Table-1 style: one section per resource type; per process the
/// access-authorization profile over the period (global types) or the
/// local instance count, then the per-type totals.
[[nodiscard]] std::string RenderTable1(const SystemModel& model,
                                       const CoupledResult& result);

/// One-line allocation summary, e.g. "add=4 sub=1 mult=3 area=17".
[[nodiscard]] std::string SummarizeAllocation(const SystemModel& model,
                                              const Allocation& allocation);

/// CSV with one row per (resource type, process) and the totals; suitable
/// for plotting the sweep benches.
[[nodiscard]] std::string AllocationCsv(const SystemModel& model,
                                        const Allocation& allocation);

/// Renders an area breakdown (functional units, registers, muxes).
[[nodiscard]] std::string RenderAreaBreakdown(const AreaBreakdown& area);

}  // namespace mshls
