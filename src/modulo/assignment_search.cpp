#include "modulo/assignment_search.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace mshls {
namespace {

/// Largest period that tiles every user's block time ranges: their gcd.
int CompatiblePeriod(const SystemModel& model,
                     const std::vector<ProcessId>& users) {
  std::int64_t g = 0;
  for (ProcessId pid : users)
    for (BlockId bid : model.process(pid).blocks)
      g = std::gcd(g, static_cast<std::int64_t>(
                          model.block(bid).time_range));
  return g == 0 ? 1 : static_cast<int>(g);
}

}  // namespace

StatusOr<AssignmentSearchResult> SearchAssignments(
    SystemModel& model, const CoupledParams& params,
    const AssignmentSearchOptions& options) {
  // Shareable types: used by >= 2 processes.
  struct Shareable {
    ResourceTypeId type;
    std::vector<ProcessId> users;
    int period;
  };
  std::vector<Shareable> shareable;
  for (const ResourceType& t : model.library().types()) {
    std::vector<ProcessId> users;
    for (const Process& p : model.processes())
      if (model.ProcessUsesType(p.id, t.id)) users.push_back(p.id);
    if (users.size() >= 2) {
      const int period = CompatiblePeriod(model, users);
      shareable.push_back({t.id, std::move(users), period});
    }
  }
  if (shareable.empty())
    return Status{StatusCode::kFailedPrecondition,
                  "no resource type is used by more than one process"};
  if (shareable.size() > 20)
    return Status{StatusCode::kInvalidArgument,
                  "too many shareable types for exhaustive scope search"};

  AssignmentSearchResult result;
  result.combinations = 1L << shareable.size();

  bool have_best = false;
  std::vector<bool> best_mask;
  for (long mask = 0; mask < result.combinations; ++mask) {
    if (options.max_evaluations > 0 &&
        result.evaluated >= options.max_evaluations)
      break;
    for (std::size_t i = 0; i < shareable.size(); ++i) {
      if (mask & (1L << i)) {
        model.MakeGlobal(shareable[i].type, shareable[i].users);
        model.SetPeriod(shareable[i].type, shareable[i].period);
      } else {
        model.MakeLocal(shareable[i].type);
      }
    }
    if (Status s = model.Validate(); !s.ok()) return s;
    CoupledScheduler scheduler(model, params);
    auto run_or = scheduler.Run();
    if (!run_or.ok()) return run_or.status();
    CoupledResult run = std::move(run_or).value();
    const int area = run.allocation.TotalArea(model.library());
    ++result.evaluated;
    // Ties: prefer MORE sharing (larger mask popcount) — fewer physical
    // units to verify and place even at equal area.
    auto popcount = [](long m) {
      int c = 0;
      while (m) {
        c += static_cast<int>(m & 1);
        m >>= 1;
      }
      return c;
    };
    const bool better =
        !have_best || area < result.area ||
        (area == result.area &&
         popcount(mask) > popcount([&] {
           long bm = 0;
           for (std::size_t i = 0; i < best_mask.size(); ++i)
             if (best_mask[i]) bm |= 1L << i;
           return bm;
         }()));
    if (better) {
      have_best = true;
      result.area = area;
      result.best = std::move(run);
      best_mask.assign(shareable.size(), false);
      for (std::size_t i = 0; i < shareable.size(); ++i)
        best_mask[i] = (mask & (1L << i)) != 0;
    }
  }
  assert(have_best);

  // Re-apply and report the winner.
  result.choices.clear();
  for (std::size_t i = 0; i < shareable.size(); ++i) {
    AssignmentChoice choice;
    choice.type = shareable[i].type;
    choice.global = best_mask[i];
    if (choice.global) {
      choice.period = shareable[i].period;
      model.MakeGlobal(shareable[i].type, shareable[i].users);
      model.SetPeriod(shareable[i].type, shareable[i].period);
    } else {
      model.MakeLocal(shareable[i].type);
    }
    result.choices.push_back(choice);
  }
  if (Status s = model.Validate(); !s.ok()) return s;
  return result;
}

double TypeUtilization(const SystemModel& model, ProcessId process,
                       ResourceTypeId type) {
  const ResourceLibrary& lib = model.library();
  long work = 0;
  long steps = 0;
  for (BlockId bid : model.process(process).blocks) {
    const Block& b = model.block(bid);
    steps += b.time_range;
    for (const Operation& op : b.graph.ops())
      if (op.type == type) work += lib.type(type).dii;
  }
  if (steps == 0) return 0.0;
  return static_cast<double>(work) / static_cast<double>(steps);
}

StatusOr<std::vector<AssignmentChoice>> SuggestAssignments(
    SystemModel& model, double utilization_threshold) {
  std::vector<AssignmentChoice> choices;
  for (const ResourceType& t : model.library().types()) {
    std::vector<ProcessId> users;
    double group_utilization = 0;
    for (const Process& p : model.processes()) {
      if (!model.ProcessUsesType(p.id, t.id)) continue;
      users.push_back(p.id);
      group_utilization += TypeUtilization(model, p.id, t.id);
    }
    if (users.size() < 2) continue;
    AssignmentChoice choice;
    choice.type = t.id;
    choice.global = group_utilization <= utilization_threshold;
    if (choice.global) {
      choice.period = CompatiblePeriod(model, users);
      model.MakeGlobal(t.id, users);
      model.SetPeriod(t.id, choice.period);
    } else {
      model.MakeLocal(t.id);
    }
    choices.push_back(choice);
  }
  if (choices.empty())
    return Status{StatusCode::kFailedPrecondition,
                  "no resource type is used by more than one process"};
  if (Status s = model.Validate(); !s.ok()) return s;
  return choices;
}

}  // namespace mshls
