// Online schedule repair (modulo/repair.h): delta application, the sidecar
// format, pinned-start scheduling and the repair degradation ladder.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "frontend/lowering.h"
#include "modulo/repair.h"
#include "modulo/schedule_cache.h"
#include "verify/certifier.h"

namespace mshls {
namespace {

// Three reactive processes; alpha and beta share the multiplier pool,
// gamma is adder-only (pure local) — so type-level deltas perturb a strict
// subset of the system.
constexpr const char* kBase = R"(
resource add delay 1 area 1;
resource mult delay 2 area 4;

process alpha deadline 8 {
  block main time 8 {
    m1 = a * b;
    s1 = m1 + c;
    s2 = s1 + d;
  }
}
process beta deadline 8 {
  block main time 8 {
    m1 = e * f;
    s1 = m1 + g;
  }
}
process gamma deadline 8 {
  block main time 8 {
    s1 = h + i;
    s2 = s1 + j;
  }
}
share mult among alpha, beta period 4;
)";

SystemModel Compile(const std::string& source) {
  auto model_or = CompileSystem(source);
  EXPECT_TRUE(model_or.ok()) << model_or.status().ToString();
  return std::move(model_or).value();
}

CoupledResult Solve(SystemModel& model) {
  auto run_or = ScheduleWithCache(model, CoupledParams{}, nullptr, nullptr,
                                  nullptr, nullptr);
  EXPECT_TRUE(run_or.ok()) << run_or.status().ToString();
  return std::move(run_or).value();
}

ProcessId FindProcess(const SystemModel& model, const std::string& name) {
  for (const Process& p : model.processes())
    if (p.name == name) return p.id;
  return ProcessId::invalid();
}

ResourceTypeId FindType(const SystemModel& model, const std::string& name) {
  return model.library().FindByName(name);
}

DeltaOp RetimeOp(const std::string& type, int delay, int dii = -1) {
  DeltaOp op;
  op.kind = DeltaKind::kRetimeType;
  op.type = type;
  op.delay = delay;
  op.dii = dii;
  return op;
}

DeltaOp RemoveOp(const std::string& process) {
  DeltaOp op;
  op.kind = DeltaKind::kRemoveProcess;
  op.process = process;
  return op;
}

DeltaOp DeadlineOp(const std::string& process, int deadline,
                   int time_range = -1) {
  DeltaOp op;
  op.kind = DeltaKind::kSetDeadline;
  op.process = process;
  op.deadline = deadline;
  op.time_range = time_range;
  return op;
}

DeltaOp PeriodOp(const std::string& type, int period) {
  DeltaOp op;
  op.kind = DeltaKind::kSetPeriod;
  op.type = type;
  op.period = period;
  return op;
}

DeltaOp GroupOp(const std::string& type, std::vector<std::string> group) {
  DeltaOp op;
  op.kind = DeltaKind::kResizeGroup;
  op.type = type;
  op.group = std::move(group);
  return op;
}

TEST(ApplyDelta, RetimeChangesLibrary) {
  SystemModel base = Compile(kBase);
  ModelDelta delta;
  delta.ops.push_back(RetimeOp("mult", 3));
  auto post_or = ApplyDelta(base, delta);
  ASSERT_TRUE(post_or.ok()) << post_or.status().ToString();
  const ResourceTypeId mult = FindType(post_or.value(), "mult");
  EXPECT_EQ(post_or.value().library().type(mult).delay, 3);
}

TEST(ApplyDelta, RemoveProcessShedsShareMembership) {
  SystemModel base = Compile(kBase);
  ModelDelta delta;
  delta.ops.push_back(RemoveOp("beta"));
  auto post_or = ApplyDelta(base, delta);
  ASSERT_TRUE(post_or.ok()) << post_or.status().ToString();
  const SystemModel& post = post_or.value();
  EXPECT_EQ(post.process_count(), 2u);
  const ResourceTypeId mult = FindType(post, "mult");
  ASSERT_TRUE(post.is_global(mult));
  ASSERT_EQ(post.assignment(mult).group.size(), 1u);
  EXPECT_EQ(post.process(post.assignment(mult).group[0]).name, "alpha");
}

TEST(ApplyDelta, RemovingEveryGroupMemberDemotesTypeToLocal) {
  SystemModel base = Compile(kBase);
  ModelDelta delta;
  delta.ops.push_back(RemoveOp("alpha"));
  delta.ops.push_back(RemoveOp("beta"));
  auto post_or = ApplyDelta(base, delta);
  ASSERT_TRUE(post_or.ok()) << post_or.status().ToString();
  const SystemModel& post = post_or.value();
  EXPECT_EQ(post.process_count(), 1u);
  EXPECT_FALSE(post.is_global(FindType(post, "mult")));
}

TEST(ApplyDelta, EmptyGroupDemotesTypeToLocal) {
  SystemModel base = Compile(kBase);
  ModelDelta delta;
  delta.ops.push_back(GroupOp("mult", {}));
  auto post_or = ApplyDelta(base, delta);
  ASSERT_TRUE(post_or.ok()) << post_or.status().ToString();
  EXPECT_FALSE(post_or.value().is_global(FindType(post_or.value(), "mult")));
  EXPECT_EQ(post_or.value().process_count(), 3u);
}

TEST(ApplyDelta, UnknownNamesComeBackTyped) {
  SystemModel base = Compile(kBase);
  ModelDelta delta;
  delta.ops.push_back(RemoveOp("nonesuch"));
  auto post_or = ApplyDelta(base, delta);
  ASSERT_FALSE(post_or.ok());
  EXPECT_EQ(post_or.status().code(), StatusCode::kNotFound);
}

TEST(ApplyDelta, PeriodOnLocalTypeFailsPrecondition) {
  SystemModel base = Compile(kBase);
  ModelDelta delta;
  delta.ops.push_back(PeriodOp("add", 4));
  auto post_or = ApplyDelta(base, delta);
  ASSERT_FALSE(post_or.ok());
  EXPECT_EQ(post_or.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ApplyDelta, InfeasibleTimeRangeSurfacesFromValidation) {
  SystemModel base = Compile(kBase);
  ModelDelta delta;
  // mult delay 2 + two chained adds cannot fit a 2-step range.
  delta.ops.push_back(DeadlineOp("alpha", 2, /*time_range=*/2));
  auto post_or = ApplyDelta(base, delta);
  ASSERT_FALSE(post_or.ok());
  EXPECT_EQ(post_or.status().code(), StatusCode::kInfeasible);
}

TEST(PerturbedProcesses, PerKindSlices) {
  SystemModel base = Compile(kBase);
  {
    ModelDelta delta;
    delta.ops.push_back(RetimeOp("mult", 3));
    EXPECT_EQ(PerturbedProcesses(base, delta),
              (std::vector<std::string>{"alpha", "beta"}));
  }
  {
    ModelDelta delta;
    delta.ops.push_back(PeriodOp("mult", 2));
    EXPECT_EQ(PerturbedProcesses(base, delta),
              (std::vector<std::string>{"alpha", "beta"}));
  }
  {
    ModelDelta delta;
    delta.ops.push_back(DeadlineOp("gamma", 6));
    EXPECT_EQ(PerturbedProcesses(base, delta),
              (std::vector<std::string>{"gamma"}));
  }
  {
    // A removal perturbs nobody that remains.
    ModelDelta delta;
    delta.ops.push_back(RemoveOp("beta"));
    EXPECT_TRUE(PerturbedProcesses(base, delta).empty());
  }
  {
    // Resize touches old and new members; removal filters the gone name.
    ModelDelta delta;
    delta.ops.push_back(GroupOp("mult", {"alpha", "gamma"}));
    EXPECT_EQ(PerturbedProcesses(base, delta),
              (std::vector<std::string>{"alpha", "beta", "gamma"}));
  }
}

TEST(DeltaFingerprint, StableAndDiscriminating) {
  ModelDelta a;
  a.ops.push_back(RetimeOp("mult", 3));
  ModelDelta b;
  b.ops.push_back(RetimeOp("mult", 4));
  EXPECT_EQ(DeltaFingerprint(a), DeltaFingerprint(a));
  EXPECT_NE(DeltaFingerprint(a), DeltaFingerprint(b));
  EXPECT_NE(DeltaFingerprint(a), DeltaFingerprint(ModelDelta{}));
}

TEST(ParseDelta, ParsesEveryDirective) {
  SystemModel base = Compile(kBase);
  const std::string text = R"(
# live perturbation
retime mult delay 3 dii 2;
period mult 2;
deadline gamma 6 time 6;
group mult alpha, beta, gamma;
remove process beta;
)";
  auto delta_or = ParseDelta(text, base);
  ASSERT_TRUE(delta_or.ok()) << delta_or.status().ToString();
  const ModelDelta& delta = delta_or.value();
  ASSERT_EQ(delta.ops.size(), 5u);
  EXPECT_EQ(delta.ops[0].kind, DeltaKind::kRetimeType);
  EXPECT_EQ(delta.ops[0].delay, 3);
  EXPECT_EQ(delta.ops[0].dii, 2);
  EXPECT_EQ(delta.ops[1].period, 2);
  EXPECT_EQ(delta.ops[2].deadline, 6);
  EXPECT_EQ(delta.ops[2].time_range, 6);
  EXPECT_EQ(delta.ops[3].group,
            (std::vector<std::string>{"alpha", "beta", "gamma"}));
  EXPECT_EQ(delta.ops[4].process, "beta");
}

TEST(ParseDelta, AddProcessCompilesAgainstBaseLibrary) {
  SystemModel base = Compile(kBase);
  const std::string text = R"(
add process fresh deadline 8 {
  block main time 8 {
    m1 = a * b;
    s1 = m1 + c;
  }
}
)";
  auto delta_or = ParseDelta(text, base);
  ASSERT_TRUE(delta_or.ok()) << delta_or.status().ToString();
  ASSERT_EQ(delta_or.value().ops.size(), 1u);
  const DeltaOp& op = delta_or.value().ops[0];
  EXPECT_EQ(op.kind, DeltaKind::kAddProcess);
  EXPECT_EQ(op.added.name, "fresh");
  ASSERT_EQ(op.added.blocks.size(), 1u);
  EXPECT_EQ(op.added.blocks[0].ops.size(), 2u);

  auto post_or = ApplyDelta(base, delta_or.value());
  ASSERT_TRUE(post_or.ok()) << post_or.status().ToString();
  EXPECT_EQ(post_or.value().process_count(), 4u);
  EXPECT_TRUE(FindProcess(post_or.value(), "fresh").valid());
}

TEST(ParseDelta, RejectsUnknownNamesAndGarbage) {
  SystemModel base = Compile(kBase);
  EXPECT_EQ(ParseDelta("remove process nope;", base).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(ParseDelta("retime nope delay 3;", base).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(ParseDelta("launch missiles;", base).status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(ParseDelta("", base).status().code(), StatusCode::kParseError);
  EXPECT_EQ(ParseDelta("retime mult;", base).status().code(),
            StatusCode::kParseError);
}

TEST(ParseDelta, RenderRoundTripsAndFingerprintAgrees) {
  SystemModel base = Compile(kBase);
  const std::string text = R"(
retime mult delay 3;
deadline gamma 6;
group mult alpha;
add process fresh deadline 8 {
  block main time 8 {
    m1 = a * b;
  }
}
)";
  auto delta_or = ParseDelta(text, base);
  ASSERT_TRUE(delta_or.ok()) << delta_or.status().ToString();
  const std::string rendered = RenderDelta(delta_or.value(), base);
  auto again_or = ParseDelta(rendered, base);
  ASSERT_TRUE(again_or.ok())
      << again_or.status().ToString() << "\nrendered:\n" << rendered;
  EXPECT_EQ(DeltaFingerprint(delta_or.value()),
            DeltaFingerprint(again_or.value()));
}

TEST(PinnedStarts, FullPinReproducesTheSchedule) {
  SystemModel model = Compile(kBase);
  const CoupledResult fresh = Solve(model);

  CoupledParams params;
  params.pinned_starts.resize(model.block_count());
  for (std::size_t b = 0; b < model.block_count(); ++b) {
    const std::size_t ops = model.blocks()[b].graph.op_count();
    params.pinned_starts[b].resize(ops, -1);
    for (std::size_t o = 0; o < ops; ++o)
      params.pinned_starts[b][o] = fresh.schedule.blocks[b].start(
          OpId(static_cast<std::int32_t>(o)));
  }
  SystemModel pinned_model = Compile(kBase);
  auto pinned_or = ScheduleWithCache(pinned_model, params, nullptr, nullptr,
                                     nullptr, nullptr);
  ASSERT_TRUE(pinned_or.ok()) << pinned_or.status().ToString();
  for (std::size_t b = 0; b < model.block_count(); ++b)
    for (std::size_t o = 0; o < model.blocks()[b].graph.op_count(); ++o) {
      const OpId op(static_cast<std::int32_t>(o));
      EXPECT_EQ(pinned_or.value().schedule.blocks[b].start(op),
                fresh.schedule.blocks[b].start(op));
    }
}

TEST(PinnedStarts, InfeasiblePinIsTyped) {
  SystemModel model = Compile(kBase);
  CoupledParams params;
  params.pinned_starts.resize(1);
  params.pinned_starts[0] = {1000};  // far outside every frame
  auto run_or =
      ScheduleWithCache(model, params, nullptr, nullptr, nullptr, nullptr);
  ASSERT_FALSE(run_or.ok());
  EXPECT_EQ(run_or.status().code(), StatusCode::kInfeasible);
}

TEST(PinnedStarts, ParticipateInTheCacheKey) {
  SystemModel model = Compile(kBase);
  CoupledParams plain;
  CoupledParams pinned;
  pinned.pinned_starts = {{0}};
  EXPECT_NE(ScheduleCacheKey(model, plain), ScheduleCacheKey(model, pinned));
  CoupledParams pinned2;
  pinned2.pinned_starts = {{1}};
  EXPECT_NE(ScheduleCacheKey(model, pinned), ScheduleCacheKey(model, pinned2));
}

TEST(RepairSchedule, DeadlineDeltaRepairsInPlaceAndKeepsOtherStarts) {
  SystemModel base = Compile(kBase);
  const CoupledResult old = Solve(base);

  ModelDelta delta;
  delta.ops.push_back(DeadlineOp("gamma", 6, /*time_range=*/6));
  auto repaired_or = RepairSchedule(base, old, delta);
  ASSERT_TRUE(repaired_or.ok()) << repaired_or.status().ToString();
  const RepairResult& repaired = repaired_or.value();
  EXPECT_EQ(repaired.rung, RepairRung::kInPlace);
  EXPECT_TRUE(repaired.certificate.ok()) << repaired.certificate.Summary();
  EXPECT_GT(repaired.pinned_ops, 0);
  ASSERT_EQ(repaired.attempts.size(), 1u);

  // alpha and beta were untouched: every start step survives verbatim.
  for (const std::string& name : {"alpha", "beta"}) {
    const Process& bp = base.process(FindProcess(base, name));
    const Process& rp =
        repaired.model->process(FindProcess(*repaired.model, name));
    ASSERT_EQ(bp.blocks.size(), rp.blocks.size());
    for (std::size_t i = 0; i < bp.blocks.size(); ++i) {
      const std::size_t ops =
          base.block(bp.blocks[i]).graph.op_count();
      for (std::size_t o = 0; o < ops; ++o) {
        const OpId op(static_cast<std::int32_t>(o));
        EXPECT_EQ(repaired.result.schedule.of(rp.blocks[i]).start(op),
                  old.schedule.of(bp.blocks[i]).start(op));
      }
    }
  }
}

TEST(RepairSchedule, RemoveProcessPinsEverythingRemaining) {
  SystemModel base = Compile(kBase);
  const CoupledResult old = Solve(base);

  ModelDelta delta;
  delta.ops.push_back(RemoveOp("beta"));
  auto repaired_or = RepairSchedule(base, old, delta);
  ASSERT_TRUE(repaired_or.ok()) << repaired_or.status().ToString();
  EXPECT_EQ(repaired_or.value().rung, RepairRung::kInPlace);
  EXPECT_EQ(repaired_or.value().freed_ops, 0);
  EXPECT_TRUE(repaired_or.value().certificate.ok());
  EXPECT_EQ(repaired_or.value().model->process_count(), 2u);
}

TEST(RepairSchedule, AddedProcessSchedulesAroundPinnedSystem) {
  SystemModel base = Compile(kBase);
  const CoupledResult old = Solve(base);

  auto delta_or = ParseDelta(R"(
add process fresh deadline 8 {
  block main time 8 {
    m1 = a * b;
    s1 = m1 + c;
  }
}
)",
                             base);
  ASSERT_TRUE(delta_or.ok()) << delta_or.status().ToString();
  auto repaired_or = RepairSchedule(base, old, delta_or.value());
  ASSERT_TRUE(repaired_or.ok()) << repaired_or.status().ToString();
  const RepairResult& repaired = repaired_or.value();
  EXPECT_EQ(repaired.rung, RepairRung::kInPlace);
  EXPECT_TRUE(repaired.certificate.ok()) << repaired.certificate.Summary();
  EXPECT_EQ(repaired.model->process_count(), 4u);
  // Only the new process was free.
  EXPECT_EQ(repaired.freed_ops, 2);
}

TEST(RepairSchedule, IncompatiblePeriodFallsToRelaxPeriodsViaCertificate) {
  SystemModel base = Compile(kBase);
  const CoupledResult old = Solve(base);

  // Period 3 does not tile the 8-step ranges (eq. 3): the pinned solve may
  // still produce a schedule, but the certifier's grid check rejects it, so
  // the ladder must fall through to the period-search rung, which replaces
  // the bad period outright.
  ModelDelta delta;
  delta.ops.push_back(PeriodOp("mult", 3));
  auto repaired_or = RepairSchedule(base, old, delta);
  ASSERT_TRUE(repaired_or.ok()) << repaired_or.status().ToString();
  const RepairResult& repaired = repaired_or.value();
  EXPECT_EQ(repaired.rung, RepairRung::kRelaxPeriods);
  EXPECT_TRUE(repaired.certificate.ok()) << repaired.certificate.Summary();
  EXPECT_GT(repaired.attempts.size(), 1u);
  const ResourceTypeId mult = FindType(*repaired.model, "mult");
  EXPECT_NE(repaired.model->assignment(mult).period, 3);
}

TEST(RepairSchedule, LadderDisabledSurfacesTheRungFailure) {
  SystemModel base = Compile(kBase);
  const CoupledResult old = Solve(base);

  ModelDelta delta;
  delta.ops.push_back(PeriodOp("mult", 3));
  RepairOptions options;
  options.ladder = {RepairRung::kInPlace};
  auto repaired_or = RepairSchedule(base, old, delta, options);
  ASSERT_FALSE(repaired_or.ok());
  EXPECT_EQ(repaired_or.status().code(), StatusCode::kInternal);
  EXPECT_NE(repaired_or.status().message().find("certificate"),
            std::string::npos);
}

TEST(RepairSchedule, EmptyDeltaIsInvalid) {
  SystemModel base = Compile(kBase);
  const CoupledResult old = Solve(base);
  auto repaired_or = RepairSchedule(base, old, ModelDelta{});
  ASSERT_FALSE(repaired_or.ok());
  EXPECT_EQ(repaired_or.status().code(), StatusCode::kInvalidArgument);
}

TEST(RepairSchedule, GroupEmptiedByDeltaStillRepairs) {
  SystemModel base = Compile(kBase);
  const CoupledResult old = Solve(base);
  ModelDelta delta;
  delta.ops.push_back(GroupOp("mult", {}));
  auto repaired_or = RepairSchedule(base, old, delta);
  ASSERT_TRUE(repaired_or.ok()) << repaired_or.status().ToString();
  EXPECT_TRUE(repaired_or.value().certificate.ok());
  EXPECT_FALSE(repaired_or.value().model->is_global(
      FindType(*repaired_or.value().model, "mult")));
}

TEST(RepairSchedule, SurvivesIncrementalReferee) {
  SystemModel base = Compile(kBase);
  const CoupledResult old = Solve(base);
  ModelDelta delta;
  delta.ops.push_back(DeadlineOp("gamma", 6, /*time_range=*/6));
  RepairOptions options;
  options.params.check_incremental = true;
  auto repaired_or = RepairSchedule(base, old, delta, options);
  ASSERT_TRUE(repaired_or.ok()) << repaired_or.status().ToString();
  EXPECT_TRUE(repaired_or.value().certificate.ok());
}

TEST(RepairSchedule, RepairedScheduleIsBitIdenticalAcrossWorkerCounts) {
  SystemModel base = Compile(kBase);
  const CoupledResult old = Solve(base);
  ModelDelta delta;
  delta.ops.push_back(RetimeOp("mult", 3));

  std::vector<SystemSchedule> schedules;
  for (const int jobs : {1, 2, 8}) {
    RepairOptions options;
    options.params.jobs = jobs;
    options.jobs = jobs;
    auto repaired_or = RepairSchedule(base, old, delta, options);
    ASSERT_TRUE(repaired_or.ok()) << repaired_or.status().ToString();
    schedules.push_back(repaired_or.value().result.schedule);
  }
  for (std::size_t s = 1; s < schedules.size(); ++s) {
    ASSERT_EQ(schedules[s].blocks.size(), schedules[0].blocks.size());
    for (std::size_t b = 0; b < schedules[0].blocks.size(); ++b)
      for (std::size_t o = 0; o < schedules[0].blocks[b].size(); ++o) {
        const OpId op(static_cast<std::int32_t>(o));
        EXPECT_EQ(schedules[s].blocks[b].start(op),
                  schedules[0].blocks[b].start(op));
      }
  }
}

TEST(RepairSchedule, WarmStartsFromTheScheduleCache) {
  SystemModel base = Compile(kBase);
  const CoupledResult old = Solve(base);
  ModelDelta delta;
  delta.ops.push_back(DeadlineOp("gamma", 6, /*time_range=*/6));

  ScheduleCache cache(16);
  RepairOptions options;
  options.cache = &cache;
  auto first_or = RepairSchedule(base, old, delta, options);
  ASSERT_TRUE(first_or.ok()) << first_or.status().ToString();
  EXPECT_EQ(first_or.value().cache_hits, 0);
  auto second_or = RepairSchedule(base, old, delta, options);
  ASSERT_TRUE(second_or.ok()) << second_or.status().ToString();
  EXPECT_GT(second_or.value().cache_hits, 0);
}

}  // namespace
}  // namespace mshls
