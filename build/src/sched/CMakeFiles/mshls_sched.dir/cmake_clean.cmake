file(REMOVE_RECURSE
  "CMakeFiles/mshls_sched.dir/exact_scheduler.cpp.o"
  "CMakeFiles/mshls_sched.dir/exact_scheduler.cpp.o.d"
  "CMakeFiles/mshls_sched.dir/list_scheduler.cpp.o"
  "CMakeFiles/mshls_sched.dir/list_scheduler.cpp.o.d"
  "CMakeFiles/mshls_sched.dir/schedule.cpp.o"
  "CMakeFiles/mshls_sched.dir/schedule.cpp.o.d"
  "CMakeFiles/mshls_sched.dir/time_frames.cpp.o"
  "CMakeFiles/mshls_sched.dir/time_frames.cpp.o.d"
  "libmshls_sched.a"
  "libmshls_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mshls_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
