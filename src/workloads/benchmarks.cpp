#include "workloads/benchmarks.h"

#include <cassert>
#include <string>
#include <vector>

namespace mshls {
namespace {

/// Validates and returns; all builders produce well-formed graphs.
DataFlowGraph Finish(DataFlowGraph g) {
  const Status s = g.Validate();
  assert(s.ok());
  (void)s;
  return g;
}

}  // namespace

PaperTypes AddPaperTypes(ResourceLibrary& lib) {
  PaperTypes t;
  t.add = lib.AddType("add", /*delay=*/1, /*dii=*/1, /*area=*/1);
  t.sub = lib.AddType("sub", /*delay=*/1, /*dii=*/1, /*area=*/1);
  t.mult = lib.AddPipelined("mult", /*delay=*/2, /*area=*/4);
  return t;
}

DataFlowGraph BuildEwf(const PaperTypes& t) {
  DataFlowGraph g;
  // Main adaptor chain: 11 additions and 3 multiplications. ASAP start
  // times with add=1 / mult=2 are annotated; the chain fixes the critical
  // path at 17.
  const OpId c1 = g.AddOp(t.add, "c1");     // @0
  const OpId c2 = g.AddOp(t.add, "c2");     // @1
  const OpId m1 = g.AddOp(t.mult, "m1");    // @2
  const OpId c3 = g.AddOp(t.add, "c3");     // @4
  const OpId c4 = g.AddOp(t.add, "c4");     // @5
  const OpId c5 = g.AddOp(t.add, "c5");     // @6
  const OpId m2 = g.AddOp(t.mult, "m2");    // @7
  const OpId c6 = g.AddOp(t.add, "c6");     // @9
  const OpId c7 = g.AddOp(t.add, "c7");     // @10
  const OpId c8 = g.AddOp(t.add, "c8");     // @11
  const OpId m3 = g.AddOp(t.mult, "m3");    // @12
  const OpId c9 = g.AddOp(t.add, "c9");     // @14
  const OpId c10 = g.AddOp(t.add, "c10");   // @15
  const OpId c11 = g.AddOp(t.add, "c11");   // @16, ends @17
  g.AddEdge(c1, c2);
  g.AddEdge(c2, m1);
  g.AddEdge(m1, c3);
  g.AddEdge(c3, c4);
  g.AddEdge(c4, c5);
  g.AddEdge(c5, m2);
  g.AddEdge(m2, c6);
  g.AddEdge(c6, c7);
  g.AddEdge(c7, c8);
  g.AddEdge(c8, m3);
  g.AddEdge(m3, c9);
  g.AddEdge(c9, c10);
  g.AddEdge(c10, c11);

  // Five multiplier side arms (add -> mult -> add) joining the chain; each
  // arm stays inside the 17-step envelope.
  struct Arm {
    const char* base;
    OpId source;  // invalid = state-variable input (graph source)
    OpId target;
  };
  const Arm arms[] = {
      {"a1", OpId::invalid(), c4}, {"a2", OpId::invalid(), c5},
      {"a3", c2, c6},              {"a4", c4, c9},
      {"a5", c6, c10},
  };
  std::vector<OpId> arm_tail;
  for (const Arm& arm : arms) {
    const std::string base = arm.base;
    const OpId s = g.AddOp(t.add, base + "_s");
    const OpId m = g.AddOp(t.mult, base + "_m");
    const OpId e = g.AddOp(t.add, base + "_e");
    if (arm.source.valid()) g.AddEdge(arm.source, s);
    g.AddEdge(s, m);
    g.AddEdge(m, e);
    g.AddEdge(e, arm.target);
    arm_tail.push_back(e);
  }

  // Five state-variable write-back additions (graph sinks).
  const OpId u1 = g.AddOp(t.add, "u1");
  g.AddEdge(c5, u1);
  g.AddEdge(arm_tail[0], u1);
  const OpId u2 = g.AddOp(t.add, "u2");
  g.AddEdge(c8, u2);
  const OpId u3 = g.AddOp(t.add, "u3");
  g.AddEdge(m2, u3);
  const OpId u4 = g.AddOp(t.add, "u4");
  g.AddEdge(c7, u4);
  g.AddEdge(arm_tail[2], u4);
  const OpId u5 = g.AddOp(t.add, "u5");
  g.AddEdge(m3, u5);
  g.AddEdge(c8, u5);

  return Finish(std::move(g));
}

DataFlowGraph BuildDiffeq(const PaperTypes& t) {
  // HAL loop body: x1 = x+dx; u1 = u - 3*x*u*dx - 3*y*dx; y1 = y + u*dx;
  // c = x1 < a, with the comparator substituted by a subtraction (paper §7).
  DataFlowGraph g;
  const OpId t1 = g.AddOp(t.mult, "3x");      // 3*x
  const OpId t2 = g.AddOp(t.mult, "3xu");     // (3x)*u
  const OpId t3 = g.AddOp(t.mult, "3xudx");   // (3xu)*dx
  const OpId t4 = g.AddOp(t.mult, "3y");      // 3*y
  const OpId t5 = g.AddOp(t.mult, "3ydx");    // (3y)*dx
  const OpId t6 = g.AddOp(t.sub, "u_m1");     // u - t3
  const OpId t7 = g.AddOp(t.sub, "u1");       // t6 - t5
  const OpId t8 = g.AddOp(t.mult, "udx");     // u*dx
  const OpId t9 = g.AddOp(t.add, "y1");       // y + t8
  const OpId t10 = g.AddOp(t.add, "x1");      // x + dx
  const OpId t11 = g.AddOp(t.sub, "c");       // x1 - a (was x1 < a)
  g.AddEdge(t1, t2);
  g.AddEdge(t2, t3);
  g.AddEdge(t3, t6);
  g.AddEdge(t4, t5);
  g.AddEdge(t5, t7);
  g.AddEdge(t6, t7);
  g.AddEdge(t8, t9);
  g.AddEdge(t10, t11);
  return Finish(std::move(g));
}

DataFlowGraph BuildFir16(const PaperTypes& t) {
  DataFlowGraph g;
  std::vector<OpId> level;
  for (int i = 0; i < 16; ++i)
    level.push_back(g.AddOp(t.mult, "m" + std::to_string(i)));
  int add_index = 0;
  while (level.size() > 1) {
    std::vector<OpId> next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      const OpId a = g.AddOp(t.add, "a" + std::to_string(add_index++));
      g.AddEdge(level[i], a);
      g.AddEdge(level[i + 1], a);
      next.push_back(a);
    }
    if (level.size() % 2 == 1) next.push_back(level.back());
    level = std::move(next);
  }
  return Finish(std::move(g));
}

DataFlowGraph BuildArLattice(const PaperTypes& t) {
  DataFlowGraph g;
  OpId f = OpId::invalid();
  OpId gg = OpId::invalid();
  for (int stage = 0; stage < 4; ++stage) {
    const std::string s = "s" + std::to_string(stage);
    const OpId m1 = g.AddOp(t.mult, s + "_m1");
    const OpId m2 = g.AddOp(t.mult, s + "_m2");
    const OpId m3 = g.AddOp(t.mult, s + "_m3");
    const OpId m4 = g.AddOp(t.mult, s + "_m4");
    if (f.valid()) {
      g.AddEdge(f, m1);
      g.AddEdge(f, m3);
    }
    if (gg.valid()) {
      g.AddEdge(gg, m2);
      g.AddEdge(gg, m4);
    }
    const OpId a1 = g.AddOp(t.add, s + "_a1");
    g.AddEdge(m1, a1);
    g.AddEdge(m4, a1);
    const OpId a2 = g.AddOp(t.add, s + "_a2");
    g.AddEdge(m2, a2);
    g.AddEdge(m3, a2);
    const OpId a3 = g.AddOp(t.add, s + "_a3");
    g.AddEdge(a1, a3);
    g.AddEdge(a2, a3);
    f = a3;
    gg = a2;
  }
  return Finish(std::move(g));
}

DataFlowGraph BuildRandomDfg(const PaperTypes& t, Rng& rng,
                             const RandomDfgOptions& options) {
  assert(options.ops >= 1 && options.layers >= 1);
  DataFlowGraph g;
  std::vector<std::vector<OpId>> layers(
      static_cast<std::size_t>(options.layers));
  double mix_total = 0;
  for (const auto& [type, weight] : options.type_mix) mix_total += weight;
  for (int i = 0; i < options.ops; ++i) {
    ResourceTypeId type;
    if (!options.type_mix.empty() && mix_total > 0) {
      double draw = rng.NextDouble() * mix_total;
      type = options.type_mix.back().first;
      for (const auto& [candidate, weight] : options.type_mix) {
        draw -= weight;
        if (draw < 0) {
          type = candidate;
          break;
        }
      }
    } else if (rng.NextBool(options.mult_probability)) {
      type = t.mult;
    } else {
      type = rng.NextBool(0.5) ? t.add : t.sub;
    }
    const OpId id = g.AddOp(type, "r" + std::to_string(i));
    layers[static_cast<std::size_t>(
        rng.NextInt(0, options.layers - 1))].push_back(id);
  }
  // All benchmark operations are binary (two operand ports), so fan-in is
  // capped at 2; fan-out is unrestricted.
  std::vector<int> fan_in(static_cast<std::size_t>(options.ops), 0);
  for (std::size_t l = 0; l + 1 < layers.size(); ++l) {
    for (OpId from : layers[l]) {
      bool connected = false;
      for (OpId to : layers[l + 1]) {
        if (fan_in[to.index()] >= 2) continue;
        if (rng.NextBool(options.edge_probability)) {
          g.AddEdge(from, to);
          ++fan_in[to.index()];
          connected = true;
        }
      }
      if (connected) continue;
      // Guarantee at least one edge forward so layers stay meaningful.
      for (OpId to : layers[l + 1]) {
        if (fan_in[to.index()] >= 2) continue;
        g.AddEdge(from, to);
        ++fan_in[to.index()];
        break;
      }
    }
  }
  return Finish(std::move(g));
}

}  // namespace mshls
