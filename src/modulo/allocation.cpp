#include "modulo/allocation.h"

#include <algorithm>
#include <cassert>

#include "modulo/modulo_map.h"

namespace mshls {

const GlobalTypeAllocation* Allocation::FindGlobal(ResourceTypeId type) const {
  for (const GlobalTypeAllocation& g : global)
    if (g.type == type) return &g;
  return nullptr;
}

int Allocation::TotalArea(const ResourceLibrary& lib) const {
  int area = 0;
  for (const auto& per_process : local)
    for (std::size_t t = 0; t < per_process.size(); ++t)
      area += per_process[t] * lib.type(ResourceTypeId{static_cast<int>(t)})
                                   .area;
  for (const GlobalTypeAllocation& g : global)
    area += g.instances * lib.type(g.type).area;
  return area;
}

int Allocation::TotalInstances(ResourceTypeId type) const {
  int n = 0;
  for (const auto& per_process : local)
    if (type.index() < per_process.size()) n += per_process[type.index()];
  if (const GlobalTypeAllocation* g = FindGlobal(type)) n += g->instances;
  return n;
}

Status ValidateSystemSchedule(const SystemModel& model,
                              const SystemSchedule& schedule) {
  if (schedule.blocks.size() != model.block_count())
    return {StatusCode::kInvalidArgument,
            "system schedule block count mismatch"};
  for (const Block& b : model.blocks()) {
    if (Status s = ValidateBlockSchedule(b, model.DelayOf(b.id),
                                         schedule.of(b.id));
        !s.ok())
      return s;
  }
  return Status::Ok();
}

Allocation ComputeAllocation(const SystemModel& model,
                             const SystemSchedule& schedule) {
  const ResourceLibrary& lib = model.library();
  Allocation alloc;
  alloc.local.assign(model.process_count(),
                     std::vector<int>(lib.size(), 0));

  // Local counts: per process and type, max occupancy over its blocks.
  // Types routed through a global pool for this process are skipped.
  for (const Process& p : model.processes()) {
    for (const ResourceType& t : lib.types()) {
      if (model.is_global(t.id) && model.InGroup(t.id, p.id)) continue;
      int count = 0;
      for (BlockId bid : p.blocks) {
        const std::vector<int> occ =
            OccupancyProfile(model.block(bid), lib, schedule.of(bid), t.id);
        for (int v : occ) count = std::max(count, v);
      }
      alloc.local[p.id.index()][t.id.index()] = count;
    }
  }

  // Global pools.
  for (ResourceTypeId g : model.GlobalTypes()) {
    const TypeAssignment& a = model.assignment(g);
    GlobalTypeAllocation ga;
    ga.type = g;
    ga.period = a.period;
    ga.users = model.GlobalUsers(g);
    ga.profile.assign(static_cast<std::size_t>(a.period), 0);
    for (ProcessId pid : ga.users) {
      // A_p(tau): max over the process' blocks of the block occupancy
      // folded into the period (blocks of one process never overlap).
      std::vector<int> auth(static_cast<std::size_t>(a.period), 0);
      for (BlockId bid : model.process(pid).blocks) {
        const Block& b = model.block(bid);
        const std::vector<int> occ =
            OccupancyProfile(b, lib, schedule.of(bid), g);
        const std::vector<int> folded =
            ModuloMaxTransform(std::span<const int>(occ), b.phase, a.period);
        auth = ElementwiseMax(std::span<const int>(auth),
                              std::span<const int>(folded));
      }
      for (std::size_t tau = 0; tau < auth.size(); ++tau)
        ga.profile[tau] += auth[tau];
      ga.authorization.push_back(std::move(auth));
    }
    ga.instances = 0;
    for (int v : ga.profile) ga.instances = std::max(ga.instances, v);
    alloc.global.push_back(std::move(ga));
  }
  return alloc;
}

Status CheckAllocationCovers(const SystemModel& model,
                             const SystemSchedule& schedule,
                             const Allocation& allocation) {
  const ResourceLibrary& lib = model.library();

  // Local coverage.
  for (const Process& p : model.processes()) {
    for (const ResourceType& t : lib.types()) {
      if (model.is_global(t.id) && model.InGroup(t.id, p.id)) continue;
      for (BlockId bid : p.blocks) {
        const std::vector<int> occ =
            OccupancyProfile(model.block(bid), lib, schedule.of(bid), t.id);
        for (int v : occ) {
          if (v > allocation.local[p.id.index()][t.id.index()])
            return {StatusCode::kInternal,
                    "local allocation of '" + t.name + "' underestimates "
                        "process '" + p.name + "'"};
        }
      }
    }
  }

  // Global coverage: block occupancy fits the process authorization, and
  // authorization sums fit the pool.
  for (const GlobalTypeAllocation& ga : allocation.global) {
    for (std::size_t u = 0; u < ga.users.size(); ++u) {
      const Process& p = model.process(ga.users[u]);
      for (BlockId bid : p.blocks) {
        const Block& b = model.block(bid);
        const std::vector<int> occ =
            OccupancyProfile(b, lib, schedule.of(bid), ga.type);
        for (std::size_t t = 0; t < occ.size(); ++t) {
          const int tau = ResidueOf(static_cast<int>(t), b.phase, ga.period);
          if (occ[t] > ga.authorization[u][static_cast<std::size_t>(tau)])
            return {StatusCode::kInternal,
                    "authorization of '" + lib.type(ga.type).name +
                        "' underestimates process '" + p.name + "'"};
        }
      }
    }
    for (std::size_t tau = 0; tau < ga.profile.size(); ++tau) {
      int sum = 0;
      for (const auto& auth : ga.authorization) sum += auth[tau];
      if (sum != ga.profile[tau])
        return {StatusCode::kInternal, "global profile is not the sum of "
                                       "authorizations"};
      if (sum > ga.instances)
        return {StatusCode::kInternal,
                "global pool of '" + lib.type(ga.type).name +
                    "' oversubscribed at residue " + std::to_string(tau)};
    }
  }
  return Status::Ok();
}

}  // namespace mshls
