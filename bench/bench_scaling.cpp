// Experiment A2 — complexity/scaling check for the paper's §6 claim:
// "the complexity of the IFDS algorithm is not increased by the additional
// computation of the modulo-maximum transformation [...] the additional
// effort is bound by a constant multiple."
//
// google-benchmark timings of (a) unmodified coupled IFDS vs the fully
// modified algorithm on identical systems (the ratio must stay roughly
// constant as the system grows) and (b) runtime growth over process count.
#include <benchmark/benchmark.h>

#include <string>

#include "modulo/coupled_scheduler.h"
#include "report/bench_json.h"
#include "workloads/benchmarks.h"

using namespace mshls;

namespace {

/// n processes of `ops` independent-ish random ops each, one global mult
/// pool and one global add pool with period 4, deadlines 16.
SystemModel MakeSystem(int n_processes, int ops) {
  SystemModel model;
  const PaperTypes t = AddPaperTypes(model.library());
  Rng rng(42);
  std::vector<ProcessId> procs;
  for (int i = 0; i < n_processes; ++i) {
    RandomDfgOptions options;
    options.ops = ops;
    options.layers = 3;
    options.mult_probability = 0.3;
    DataFlowGraph g = BuildRandomDfg(t, rng, options);
    const ProcessId p = model.AddProcess("p" + std::to_string(i), 16);
    model.AddBlock(p, "b", std::move(g), 16);
    procs.push_back(p);
  }
  model.MakeGlobal(t.mult, procs);
  model.SetPeriod(t.mult, 4);
  model.MakeGlobal(t.add, procs);
  model.SetPeriod(t.add, 4);
  const Status s = model.Validate();
  if (!s.ok()) std::abort();
  return model;
}

void BM_CoupledModified(benchmark::State& state) {
  SystemModel model = MakeSystem(static_cast<int>(state.range(0)), 12);
  for (auto _ : state) {
    CoupledScheduler scheduler(model, CoupledParams{});
    auto result = scheduler.Run();
    benchmark::DoNotOptimize(result);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CoupledModified)->DenseRange(1, 6)->Complexity();

void BM_CoupledUnmodified(benchmark::State& state) {
  SystemModel model = MakeSystem(static_cast<int>(state.range(0)), 12);
  CoupledParams params;
  params.mode = GlobalForceMode::kIgnoreGlobal;
  for (auto _ : state) {
    CoupledScheduler scheduler(model, params);
    auto result = scheduler.Run();
    benchmark::DoNotOptimize(result);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CoupledUnmodified)->DenseRange(1, 6)->Complexity();

void BM_OpsScaling(benchmark::State& state) {
  SystemModel model = MakeSystem(3, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    CoupledScheduler scheduler(model, CoupledParams{});
    auto result = scheduler.Run();
    benchmark::DoNotOptimize(result);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_OpsScaling)->RangeMultiplier(2)->Range(4, 32)->Complexity();

void BM_ModuloMaxOverheadPerForceEval(benchmark::State& state) {
  // Isolated cost of one full-mode force evaluation relative to system
  // size: dominated by frame propagation + profile deltas, with the
  // modulo-max folding adding only O(T + lambda).
  SystemModel model = MakeSystem(static_cast<int>(state.range(0)), 12);
  for (auto _ : state) {
    CoupledScheduler scheduler(model, CoupledParams{});
    benchmark::DoNotOptimize(&scheduler);
  }
}
BENCHMARK(BM_ModuloMaxOverheadPerForceEval)->DenseRange(1, 4);

/// Forwards to the normal console output while mirroring every measured
/// run into mshls-bench-v1 rows (big-O/RMS aggregate pseudo-runs are
/// skipped: they carry fit coefficients, not timings).
class JsonRowReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonRowReporter(BenchJson* json) : json_(json) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    if (json_ == nullptr) return;
    for (const Run& run : runs) {
      if (run.report_big_o || run.report_rms) continue;
      json_->AddRow()
          .S("benchmark", run.benchmark_name())
          .I("iterations", run.iterations)
          .D("real_time_ns", run.GetAdjustedRealTime())
          .D("cpu_time_ns", run.GetAdjustedCPUTime());
    }
  }

 private:
  BenchJson* json_;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string json_file = TakeJsonFlag(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  BenchJson json("A2", "scaling");
  JsonRowReporter reporter(json_file.empty() ? nullptr : &json);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!json_file.empty() && !json.WriteFile(json_file)) return 1;
  return 0;
}
