// Shared result cache for coupled-scheduler runs, used by both search
// drivers (period search, assignment search) and the batch job service.
//
// The key covers everything a CoupledScheduler::Run() depends on: the
// model fingerprint (library, blocks, full S1/S2 state — see
// engine/fingerprint.h) combined with the force parameters. An observer
// installed in CoupledParams does not affect the schedule and is excluded.
//
// Two tiers: the in-memory ScheduleCache (engine/result_cache.h) in front
// of an optional ScheduleStore — a durable second tier (the persistent
// on-disk fingerprint cache in src/serve) that survives process restarts.
// Lookup order is memory -> store -> solve; a store hit is promoted into
// the memory tier, and every solved result is written through to both.
#pragma once

#include <cstdint>
#include <optional>

#include "engine/result_cache.h"
#include "modulo/coupled_scheduler.h"

namespace mshls {

using ScheduleCache = ResultCache<CoupledResult>;

/// Durable second cache tier behind the in-memory ScheduleCache.
/// Implementations must be thread-safe (the search fan-outs call Load and
/// Store from many workers) and must never throw across this boundary: a
/// broken backing store degrades to a miss, not a failed run.
class ScheduleStore {
 public:
  virtual ~ScheduleStore() = default;

  /// Returns the stored result for `key` when present and valid for
  /// `model` (the model re-validates a deserialized schedule and re-derives
  /// its allocation); any decode/validation problem is a miss.
  [[nodiscard]] virtual std::optional<CoupledResult> Load(
      std::uint64_t key, const SystemModel& model) = 0;

  /// Persists `result` under `key`. Best-effort: failures are recorded in
  /// the store's own counters, never reported to the scheduling path.
  virtual void Store(std::uint64_t key, const SystemModel& model,
                     const CoupledResult& result) = 0;
};

/// Cache key for scheduling `model` with `params`.
[[nodiscard]] std::uint64_t ScheduleCacheKey(const SystemModel& model,
                                             const CoupledParams& params);

/// Schedules through the cache tiers: memory hit -> stored result; store
/// hit -> promoted into `cache` and returned; miss -> validates + runs the
/// coupled scheduler and writes the result through both tiers. `cache` and
/// `store` may each be null. `cache_hit` (optional) reports whether the
/// result was served from either tier; `store_hit` (optional) reports a
/// second-tier (persistent) hit specifically.
[[nodiscard]] StatusOr<CoupledResult> ScheduleWithCache(
    SystemModel& model, const CoupledParams& params, ScheduleCache* cache,
    bool* cache_hit = nullptr, ScheduleStore* store = nullptr,
    bool* store_hit = nullptr);

}  // namespace mshls
