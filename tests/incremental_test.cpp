// Differential test of the incremental force engine (DESIGN.md §2 row 26):
// the dirty-candidate cache, the scoped profile updates and the term
// re-pricing tier must be *bit-identical* to the naive path that rebuilds
// every profile and re-evaluates every candidate each iteration — same
// per-iteration candidate forces, same selections, same final schedules.
// Randomized system models come from the fuzz generator; a subset also runs
// with the per-iteration MSHLS_CHECK_INCREMENTAL self-check enabled.
#include <vector>

#include <gtest/gtest.h>

#include "fuzz/generator.h"
#include "modulo/coupled_scheduler.h"
#include "workloads/benchmarks.h"

namespace mshls {
namespace {

SystemModel BuildSharedSystem() {
  SystemModel model;
  const PaperTypes t = AddPaperTypes(model.library());
  const ProcessId p1 = model.AddProcess("deq_a", 10);
  model.AddBlock(p1, "deq_a_main", BuildDiffeq(t), 10);
  const ProcessId p2 = model.AddProcess("deq_b", 10);
  model.AddBlock(p2, "deq_b_main", BuildDiffeq(t), 10);
  model.MakeGlobal(t.add, {p1, p2});
  model.MakeGlobal(t.mult, {p1, p2});
  model.SetPeriod(t.add, 5);
  model.SetPeriod(t.mult, 5);
  EXPECT_TRUE(model.Validate().ok());
  return model;
}

struct SchedulerRun {
  CoupledResult result;
  std::vector<CoupledIterationTrace> traces;
};

SchedulerRun RunScheduler(const SystemModel& model, bool incremental, bool check,
                 GlobalForceMode mode = GlobalForceMode::kFull) {
  SchedulerRun run;
  CoupledParams params;
  params.incremental = incremental;
  params.check_incremental = check;
  params.mode = mode;
  params.observer = [&](const CoupledIterationTrace& t) {
    run.traces.push_back(t);
  };
  CoupledScheduler scheduler(model, params);
  auto result = scheduler.Run();
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  if (result.ok()) run.result = std::move(result).value();
  return run;
}

/// Bitwise comparison of two iteration traces: every candidate's cached
/// end-point forces must match the naive evaluation exactly, not just the
/// chosen op.
void ExpectSameTraces(const SchedulerRun& naive, const SchedulerRun& inc) {
  ASSERT_EQ(naive.traces.size(), inc.traces.size());
  for (std::size_t i = 0; i < naive.traces.size(); ++i) {
    const CoupledIterationTrace& a = naive.traces[i];
    const CoupledIterationTrace& b = inc.traces[i];
    EXPECT_EQ(a.chosen_block, b.chosen_block) << "iteration " << i;
    EXPECT_EQ(a.chosen_op, b.chosen_op) << "iteration " << i;
    EXPECT_EQ(a.shrank_begin, b.shrank_begin) << "iteration " << i;
    ASSERT_EQ(a.candidates.size(), b.candidates.size()) << "iteration " << i;
    for (std::size_t c = 0; c < a.candidates.size(); ++c) {
      const CoupledCandidate& ca = a.candidates[c];
      const CoupledCandidate& cb = b.candidates[c];
      EXPECT_EQ(ca.block, cb.block);
      EXPECT_EQ(ca.op, cb.op);
      EXPECT_EQ(ca.frame, cb.frame);
      // Exact equality on purpose: the incremental engine claims bit
      // identity, not tolerance-level agreement.
      EXPECT_EQ(ca.force_begin, cb.force_begin)
          << "iteration " << i << " candidate " << c;
      EXPECT_EQ(ca.force_end, cb.force_end)
          << "iteration " << i << " candidate " << c;
      EXPECT_EQ(ca.diff, cb.diff) << "iteration " << i << " candidate " << c;
    }
  }
}

void ExpectSameSchedule(const SystemSchedule& a, const SystemSchedule& b) {
  ASSERT_EQ(a.blocks.size(), b.blocks.size());
  for (std::size_t i = 0; i < a.blocks.size(); ++i) {
    ASSERT_EQ(a.blocks[i].size(), b.blocks[i].size());
    for (std::size_t op = 0; op < a.blocks[i].size(); ++op)
      EXPECT_EQ(a.blocks[i].start(OpId(op)), b.blocks[i].start(OpId(op)))
          << "block " << i << " op " << op;
  }
}

TEST(IncrementalEngine, SharedSystemMatchesNaiveBitForBit) {
  const SystemModel model = BuildSharedSystem();
  const SchedulerRun naive = RunScheduler(model, /*incremental=*/false,
                                 /*check=*/false);
  const SchedulerRun inc = RunScheduler(model, /*incremental=*/true, /*check=*/true);
  EXPECT_EQ(naive.result.iterations, inc.result.iterations);
  ExpectSameTraces(naive, inc);
  ExpectSameSchedule(naive.result.schedule, inc.result.schedule);
}

TEST(IncrementalEngine, AllForceModesMatchNaive) {
  const SystemModel model = BuildSharedSystem();
  for (GlobalForceMode mode :
       {GlobalForceMode::kFull, GlobalForceMode::kBlockModuloOnly,
        GlobalForceMode::kIgnoreGlobal}) {
    const SchedulerRun naive =
        RunScheduler(model, /*incremental=*/false, /*check=*/false, mode);
    const SchedulerRun inc =
        RunScheduler(model, /*incremental=*/true, /*check=*/true, mode);
    EXPECT_EQ(naive.result.iterations, inc.result.iterations);
    ExpectSameTraces(naive, inc);
    ExpectSameSchedule(naive.result.schedule, inc.result.schedule);
  }
}

TEST(IncrementalEngine, FuzzedModelsMatchNaive) {
  // Randomized structure sweep: multi-block processes, random sharing
  // groups, phases, non-pipelined types. Infeasible draws are skipped (the
  // scheduler requires a validated model); every schedulable one must agree
  // with the naive path on the full iteration trace.
  int compared = 0;
  for (std::uint64_t seed = 1; seed <= 40 && compared < 20; ++seed) {
    GeneratedCase c = GenerateSystem(seed);
    if (!c.model.Validate().ok()) continue;
    SCOPED_TRACE("seed " + std::to_string(seed));
    const SchedulerRun naive = RunScheduler(c.model, /*incremental=*/false,
                                   /*check=*/false);
    // The per-iteration from-scratch self-check is quadratic, so it runs
    // on a subset of the cases; the trace comparison covers all of them.
    const bool check = compared % 5 == 0;
    const SchedulerRun inc = RunScheduler(c.model, /*incremental=*/true, check);
    EXPECT_EQ(naive.result.iterations, inc.result.iterations);
    ExpectSameTraces(naive, inc);
    ExpectSameSchedule(naive.result.schedule, inc.result.schedule);
    ++compared;
  }
  EXPECT_GE(compared, 10) << "generator produced too few schedulable cases";
}

TEST(IncrementalEngine, ParallelSweepMatchesNaiveOnFuzzedModels) {
  // incremental + jobs vs naive serial: the two optimizations compose
  // without changing a bit.
  int compared = 0;
  for (std::uint64_t seed = 50; seed <= 70 && compared < 8; ++seed) {
    GeneratedCase c = GenerateSystem(seed);
    if (!c.model.Validate().ok()) continue;
    SCOPED_TRACE("seed " + std::to_string(seed));
    const SchedulerRun naive = RunScheduler(c.model, /*incremental=*/false,
                                   /*check=*/false);
    SchedulerRun par;
    CoupledParams params;
    params.jobs = 4;
    params.observer = [&](const CoupledIterationTrace& t) {
      par.traces.push_back(t);
    };
    CoupledScheduler scheduler(c.model, params);
    auto result = scheduler.Run();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    par.result = std::move(result).value();
    EXPECT_EQ(naive.result.iterations, par.result.iterations);
    ExpectSameTraces(naive, par);
    ExpectSameSchedule(naive.result.schedule, par.result.schedule);
    ++compared;
  }
  EXPECT_GE(compared, 5);
}

}  // namespace
}  // namespace mshls
