#!/usr/bin/env bash
# Regenerates the committed C1 baseline (BENCH_coupled.json at the repo
# root): builds bench_coupled in the default RelWithDebInfo tree and runs
# the full A-series scaling ladder in the three engine configurations
# (serial-naive, incremental, incremental + jobs). The bench itself
# cross-checks that all three produce bit-identical schedules and exits
# non-zero on any divergence, so a regenerated baseline is also a
# consistency run. Numbers are machine-dependent — re-record EXPERIMENTS.md
# §C1 alongside when refreshing the file. The emitted file is validated
# against the shared mshls-bench-v1 schema (every bench binary emits the
# same envelope via --json; see src/report/bench_json.h) before it is
# accepted as the new baseline.
#
# Usage: scripts/bench_baseline.sh [build-dir]     (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
build="${1:-build}"

cmake -B "${build}" -S . > /dev/null
cmake --build "${build}" --target bench_coupled -j "$(nproc)" > /dev/null
"${build}/bench/bench_coupled" --json BENCH_coupled.json

python3 - BENCH_coupled.json <<'EOF'
import json, sys

path = sys.argv[1]
with open(path) as f:
    doc = json.load(f)

def fail(msg):
    sys.exit(f"{path}: schema violation: {msg}")

if doc.get("schema") != "mshls-bench-v1":
    fail(f"schema is {doc.get('schema')!r}, want 'mshls-bench-v1'")
for key in ("experiment", "name", "build", "params", "rows"):
    if key not in doc:
        fail(f"missing top-level key {key!r}")
build = doc["build"]
for key in ("git_hash", "compiler", "build_type", "trace_compiled_in"):
    if key not in build:
        fail(f"missing build key {key!r}")
if not isinstance(doc["rows"], list) or not doc["rows"]:
    fail("rows must be a non-empty list")
for i, row in enumerate(doc["rows"]):
    for key in ("processes", "ops", "naive_ms", "incremental_ms",
                "trace_overhead_pct", "candidates_evaluated"):
        if key not in row:
            fail(f"row {i} missing {key!r}")
print(f"{path}: mshls-bench-v1 OK "
      f"({doc['experiment']}/{doc['name']}, {len(doc['rows'])} row(s))")
EOF
