// Admission control for the scheduling daemon: a bounded count of jobs
// allowed past the socket layer at once (executing on the pool or waiting
// in its queue). The engine's ThreadPool applies *blocking* backpressure
// on Submit — correct for batch runs, wrong for a server, where a full
// queue must turn into an immediate typed `overloaded` rejection the
// client can act on instead of an unbounded pile of blocked connections.
#pragma once

#include <cstdint>
#include <mutex>

namespace mshls::serve {

struct AdmissionStats {
  long long admitted = 0;
  long long rejected = 0;  // TryAcquire refusals (=> kOverloaded)
  /// High-water mark of concurrently admitted jobs.
  long long peak_in_flight = 0;
};

class AdmissionController {
 public:
  /// `limit` = workers + queue slots; <= 0 admits everything.
  explicit AdmissionController(int limit) : limit_(limit) {}

  /// True iff the job may proceed; pair every success with Release().
  [[nodiscard]] bool TryAcquire();
  void Release();

  [[nodiscard]] int in_flight() const;
  [[nodiscard]] AdmissionStats stats() const;

  /// Mirrors counters + the current depth into the obs metrics registry
  /// (`serve.admitted`, `serve.rejected_overloaded`, `serve.queue_depth`).
  void PublishMetrics();

 private:
  const int limit_;
  mutable std::mutex mutex_;
  int in_flight_ = 0;
  AdmissionStats stats_;
  AdmissionStats published_;
};

}  // namespace mshls::serve
