// Experiment R1 — online schedule repair vs resolving from scratch.
//
// The acceptance workload is the 10-process x 24-op coupled system (the
// same generator recipe as C1 and the obs acceptance bound). For each
// perturbation class the bench answers the delta twice:
//
//   fresh:  ApplyDelta, then the full cold pipeline on the post-delta
//           model (schedule + bind + certify);
//   repair: RepairSchedule off the certified base — untouched processes
//           keep their start steps pinned, then the same certifier gate.
//
// Both sides end in a clean certificate, so the comparison is price for
// the same artifact. The headline metric is the MEDIAN speedup across
// the single-process perturbations (deadline / remove / add) — the
// pool-level classes (retime / period / group) legally perturb every
// member process, so repair approaches a full resolve there and they are
// reported as context, not counted in the acceptance median.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bind/binding.h"
#include "common/text_table.h"
#include "modulo/coupled_scheduler.h"
#include "modulo/repair.h"
#include "report/bench_json.h"
#include "verify/certifier.h"
#include "workloads/benchmarks.h"

using namespace mshls;

namespace {

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// The C1/obs-scale generator: n processes of `ops` random ops each,
/// global mult + add pools with period 4, deadline 16.
SystemModel MakeCoupledSystem(int n_processes, int ops) {
  SystemModel model;
  const PaperTypes t = AddPaperTypes(model.library());
  Rng rng(42);
  std::vector<ProcessId> procs;
  for (int i = 0; i < n_processes; ++i) {
    RandomDfgOptions options;
    options.ops = ops;
    options.layers = 3;
    options.mult_probability = 0.3;
    DataFlowGraph g = BuildRandomDfg(t, rng, options);
    const ProcessId p = model.AddProcess("p" + std::to_string(i), 16);
    model.AddBlock(p, "b", std::move(g), 16);
    procs.push_back(p);
  }
  model.MakeGlobal(t.mult, procs);
  model.SetPeriod(t.mult, 4);
  model.MakeGlobal(t.add, procs);
  model.SetPeriod(t.add, 4);
  return model;
}

struct DeltaCase {
  const char* name;
  const char* scope;  // "process" (counts toward the median) or "pool"
  const char* text;   // sidecar delta source
};

constexpr DeltaCase kCases[] = {
    {"deadline-tighten-p1", "process", "deadline p1 12 time 12;"},
    {"deadline-tighten-p4", "process", "deadline p4 12 time 12;"},
    {"deadline-loosen-p7", "process", "deadline p7 20;"},
    {"remove-p2", "process", "remove process p2;"},
    {"remove-p8", "process", "remove process p8;"},
    {"add-process", "process",
     "add process live deadline 16 {\n"
     "  block b time 16 {\n"
     "    m1 = a * b;\n"
     "    m2 = m1 * c;\n"
     "    s1 = m2 + d;\n"
     "    s2 = s1 + e;\n"
     "    m3 = s2 * f;\n"
     "    s3 = m3 + g;\n"
     "    s4 = s3 + h;\n"
     "    s5 = s4 + i;\n"
     "  }\n"
     "}\n"},
    {"retime-mult", "pool", "retime mult delay 3;"},
    {"period-mult-2", "pool", "period mult 2;"},
    {"group-shrink-mult", "pool",
     "group mult p0, p1, p2, p3, p4, p5, p6, p7, p8;"},
};

struct Timed {
  double ms = 0;
  bool certified = false;
};

/// Median of the per-repeat times (both sides repeat the same work).
double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v.empty() ? 0 : v[v.size() / 2];
}

/// The fresh side: the full cold pipeline on the post-delta model.
Timed RunFresh(const SystemModel& base, const ModelDelta& delta) {
  Timed timed;
  const auto t0 = std::chrono::steady_clock::now();
  auto post_or = ApplyDelta(base, delta);
  if (!post_or.ok()) return timed;
  SystemModel post = std::move(post_or).value();
  CoupledScheduler scheduler(post, CoupledParams{});
  auto result_or = scheduler.Run();
  if (!result_or.ok()) return timed;
  CoupledResult result = std::move(result_or).value();
  auto binding_or = BindSystem(post, result.schedule, result.allocation);
  timed.certified =
      binding_or.ok() &&
      CertifyResult(post, result, &binding_or.value()).ok();
  timed.ms = MsSince(t0);
  return timed;
}

Timed RunRepair(const SystemModel& base, const CoupledResult& old,
                const ModelDelta& delta, RepairRung* rung, int* pinned) {
  Timed timed;
  const auto t0 = std::chrono::steady_clock::now();
  auto repaired_or = RepairSchedule(base, old, delta);
  if (!repaired_or.ok()) return timed;
  const RepairResult& repaired = repaired_or.value();
  // The independent gate: never trust repair's internal certificate.
  timed.certified = repaired.certificate.ok() &&
                    CertifyResult(*repaired.model, repaired.result).ok();
  timed.ms = MsSince(t0);
  *rung = repaired.rung;
  *pinned = repaired.pinned_ops;
  return timed;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_file = TakeJsonFlag(argc, argv);
  int processes = 10;
  int ops = 24;
  int repeats = 5;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--processes" && i + 1 < argc)
      processes = std::atoi(argv[++i]);
    else if (flag == "--ops" && i + 1 < argc) ops = std::atoi(argv[++i]);
    else if (flag == "--repeats" && i + 1 < argc)
      repeats = std::atoi(argv[++i]);
    else {
      std::fprintf(stderr,
                   "usage: %s [--processes n] [--ops n] [--repeats n] "
                   "[--json file]\n",
                   argv[0]);
      return 1;
    }
  }

  std::printf("== R1: online repair vs fresh resolve ==\n\n");
  std::printf("%d process(es) x %d op(s), %d repeat(s) per side\n\n",
              processes, ops, repeats);

  SystemModel base = MakeCoupledSystem(processes, ops);
  if (!base.Validate().ok()) {
    std::fprintf(stderr, "base workload failed validation\n");
    return 1;
  }
  CoupledScheduler scheduler(base, CoupledParams{});
  auto old_or = scheduler.Run();
  if (!old_or.ok()) {
    std::fprintf(stderr, "base solve failed: %s\n",
                 old_or.status().ToString().c_str());
    return 1;
  }
  const CoupledResult old = std::move(old_or).value();
  if (!CertifyResult(base, old).ok()) {
    std::fprintf(stderr, "base schedule failed certification\n");
    return 1;
  }

  BenchJson json("R1", "repair");
  json.params().I("processes", processes).I("ops", ops).I("repeats", repeats);

  TextTable table;
  table.SetHeader({"case", "scope", "fresh [ms]", "repair [ms]", "speedup",
                   "rung", "pinned"});
  for (std::size_t c = 2; c < 7; ++c) table.AlignRight(c);

  std::vector<double> single_speedups;
  bool all_certified = true;
  for (const DeltaCase& dcase : kCases) {
    auto delta_or = ParseDelta(dcase.text, base);
    if (!delta_or.ok()) {
      std::fprintf(stderr, "%s: bad delta: %s\n", dcase.name,
                   delta_or.status().ToString().c_str());
      return 1;
    }
    const ModelDelta& delta = delta_or.value();
    std::vector<double> fresh_ms, repair_ms;
    bool certified = true;
    RepairRung rung = RepairRung::kInPlace;
    int pinned = 0;
    for (int r = 0; r < repeats; ++r) {
      const Timed fresh = RunFresh(base, delta);
      const Timed repair = RunRepair(base, old, delta, &rung, &pinned);
      certified = certified && fresh.certified && repair.certified;
      fresh_ms.push_back(fresh.ms);
      repair_ms.push_back(repair.ms);
    }
    all_certified = all_certified && certified;
    const double fresh = Median(fresh_ms);
    const double repair = Median(repair_ms);
    const double speedup = repair <= 0 ? 0 : fresh / repair;
    if (std::string(dcase.scope) == "process")
      single_speedups.push_back(speedup);
    table.AddRow({dcase.name, dcase.scope, FormatDouble(fresh, 2),
                  FormatDouble(repair, 2), FormatDouble(speedup, 1),
                  RepairRungName(rung), std::to_string(pinned)});
    json.AddRow()
        .S("case", dcase.name)
        .S("scope", dcase.scope)
        .D("fresh_ms", fresh)
        .D("repair_ms", repair)
        .D("speedup", speedup)
        .S("rung", RepairRungName(rung))
        .I("pinned_ops", pinned)
        .B("certified", certified);
  }

  const double median_speedup = Median(single_speedups);
  json.params().D("median_speedup_single_process", median_speedup);
  json.params().B("all_certified", all_certified);

  std::printf("%s\n", table.Render().c_str());
  std::printf("median single-process speedup: %.1fx (acceptance floor 5x)\n",
              median_speedup);
  if (!all_certified) {
    std::fprintf(stderr, "FAIL: a repaired or fresh schedule did not "
                         "certify\n");
    return 1;
  }
  if (median_speedup < 5.0) {
    std::fprintf(stderr, "FAIL: median single-process speedup %.2fx is "
                         "below the 5x acceptance floor\n",
                 median_speedup);
    return 1;
  }
  if (!json_file.empty() && !json.WriteFile(json_file)) return 1;
  return 0;
}
