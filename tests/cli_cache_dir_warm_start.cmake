# One-shot persistent cache through the CLI: the first run populates
# --cache-dir, the second must warm-start from it and export a
# byte-identical --json payload.
#
# cmake -DMSHLSC=... -DDESIGN=... -DWORK=... -P cli_cache_dir_warm_start.cmake
file(REMOVE_RECURSE "${WORK}")
file(MAKE_DIRECTORY "${WORK}")

execute_process(
  COMMAND "${MSHLSC}" "${DESIGN}" --cache-dir "${WORK}/cache"
          --json "${WORK}/cold.json"
  OUTPUT_VARIABLE cold_out ERROR_VARIABLE cold_out RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "cold run failed (${rc}):\n${cold_out}")
endif()
if(cold_out MATCHES "warm-started")
  message(FATAL_ERROR "cold run claims a warm start:\n${cold_out}")
endif()

file(GLOB entries "${WORK}/cache/*.msc")
if(entries STREQUAL "")
  message(FATAL_ERROR "cold run left no persistent cache entry")
endif()

execute_process(
  COMMAND "${MSHLSC}" "${DESIGN}" --cache-dir "${WORK}/cache"
          --json "${WORK}/warm.json"
  OUTPUT_VARIABLE warm_out ERROR_VARIABLE warm_out RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "warm run failed (${rc}):\n${warm_out}")
endif()
if(NOT warm_out MATCHES "warm-started from the persistent cache")
  message(FATAL_ERROR "second run did not warm-start:\n${warm_out}")
endif()

execute_process(
  COMMAND "${CMAKE_COMMAND}" -E compare_files
          "${WORK}/cold.json" "${WORK}/warm.json"
  RESULT_VARIABLE same)
if(NOT same EQUAL 0)
  message(FATAL_ERROR "warm-start payload differs from the cold run")
endif()
message(STATUS "PASS: cold populate -> warm start, payloads byte-identical")
