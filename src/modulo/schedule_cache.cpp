#include "modulo/schedule_cache.h"

#include "common/hashing.h"
#include "engine/fingerprint.h"
#include "obs/metrics.h"

namespace mshls {
namespace {

void Count(const char* name) {
  if (!obs::Enabled()) return;
  obs::MetricsRegistry::Global()
      .GetCounter(name, obs::MetricKind::kStable)
      .Add();
}

}  // namespace

std::uint64_t ScheduleCacheKey(const SystemModel& model,
                               const CoupledParams& params) {
  StableHasher h;
  h.Mix(ModelFingerprint(model));
  h.Mix(params.fds.lookahead);
  h.Mix(params.fds.global_spring_constant);
  h.Mix(params.fds.area_weighting);
  h.Mix(params.fds.mid_estimate);
  h.Mix(static_cast<int>(params.mode));
  // Repair pins constrain the result, so pinned and unpinned runs of one
  // model must never share an entry. The tag keeps "no pinning" distinct
  // from "all rows empty".
  if (!params.pinned_starts.empty()) {
    h.Mix(std::uint64_t{0x70696e6e65640aull});
    h.Mix(params.pinned_starts.size());
    for (const std::vector<int>& row : params.pinned_starts) {
      h.Mix(row.size());
      for (int step : row) h.Mix(step);
    }
  }
  // External boundary demand (hierarchy reconciliation) biases the force
  // model, so seeded and unseeded runs of one model must never share an
  // entry. Same tag discipline as the pins above.
  if (!params.external_demand.empty()) {
    h.Mix(std::uint64_t{0x65787464656d0aull});
    h.Mix(params.external_demand.size());
    for (const Profile& row : params.external_demand) {
      h.Mix(row.size());
      for (double v : row) h.Mix(v);
    }
  }
  return h.Digest();
}

StatusOr<CoupledResult> ScheduleWithCache(SystemModel& model,
                                          const CoupledParams& params,
                                          ScheduleCache* cache,
                                          bool* cache_hit,
                                          ScheduleStore* store,
                                          bool* store_hit) {
  if (cache_hit != nullptr) *cache_hit = false;
  if (store_hit != nullptr) *store_hit = false;
  std::uint64_t key = 0;
  if (cache != nullptr || store != nullptr)
    key = ScheduleCacheKey(model, params);
  if (cache != nullptr) {
    if (std::optional<CoupledResult> found = cache->Lookup(key)) {
      if (cache_hit != nullptr) *cache_hit = true;
      Count("schedule_cache.hits");
      return *std::move(found);
    }
    Count("schedule_cache.misses");
  }
  if (store != nullptr) {
    if (std::optional<CoupledResult> found = store->Load(key, model)) {
      if (cache_hit != nullptr) *cache_hit = true;
      if (store_hit != nullptr) *store_hit = true;
      Count("schedule_cache.store_hits");
      // Promote into the memory tier so repeats stay off the disk path.
      if (cache != nullptr) cache->Insert(key, *found);
      return *std::move(found);
    }
  }
  if (Status s = model.Validate(); !s.ok()) return s;
  CoupledScheduler scheduler(model, params);
  auto run_or = scheduler.Run();
  if (!run_or.ok()) return run_or.status();
  if (cache != nullptr) cache->Insert(key, run_or.value());
  if (store != nullptr) store->Store(key, model, run_or.value());
  return std::move(run_or).value();
}

}  // namespace mshls
