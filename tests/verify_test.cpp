// Tests for the independent schedule certifier and the fault-injection
// layer: a clean schedule from any seed workload certifies with zero
// violations, and every applicable fault class is detected with the
// expected violation kind.
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "bind/binding.h"
#include "common/rng.h"
#include "frontend/lowering.h"
#include "modulo/coupled_scheduler.h"
#include "verify/certifier.h"
#include "verify/fault_injection.h"
#include "workloads/benchmarks.h"
#include "workloads/paper_system.h"

namespace mshls {
namespace {

constexpr const char* kTinyDesign = R"(
resource add  delay 1 area 1;
resource mult delay 2 dii 1 area 4;

process alpha deadline 10 {
  block main time 10 {
    m1 = a * b;
    m2 = c * d;
    s1 = m1 + m2;
    y  = s1 + e;
  }
}
process beta deadline 10 {
  block main time 10 {
    m1 = p * q;
    y  = m1 + r;
  }
}
share add  among alpha, beta period 5;
share mult among alpha, beta period 5;
)";

constexpr const char* kFusionDesign = R"(
resource add  delay 1 area 1;
resource sub  delay 1 area 1;
resource mult delay 2 dii 1 area 4;

process sensor deadline 12 {
  block main time 12 {
    g  = a * b;
    h  = c * d;
    s  = g + h;
    t  = s - e;
  }
}
process filter deadline 12 {
  block main time 12 {
    m  = x * y;
    n  = m + z;
    o  = n - w;
  }
}
share mult among sensor, filter period 4;
)";

struct Workload {
  std::string name;
  SystemModel model;
};

SystemModel Compile(const char* source) {
  auto model_or = CompileSystem(source);
  EXPECT_TRUE(model_or.ok()) << model_or.status().ToString();
  return std::move(model_or).value();
}

/// Two-process builder over the paper's types with one shared type.
SystemModel SharedPair(DataFlowGraph (*build_a)(const PaperTypes&),
                       int range_a, DataFlowGraph (*build_b)(const PaperTypes&),
                       int range_b, int period, bool share_add) {
  SystemModel model;
  const PaperTypes t = AddPaperTypes(model.library());
  const ProcessId pa = model.AddProcess("pa", range_a);
  const ProcessId pb = model.AddProcess("pb", range_b);
  model.AddBlock(pa, "main_a", build_a(t), range_a);
  model.AddBlock(pb, "main_b", build_b(t), range_b);
  model.MakeGlobal(t.mult, {pa, pb});
  model.SetPeriod(t.mult, period);
  if (share_add) {
    model.MakeGlobal(t.add, {pa, pb});
    model.SetPeriod(t.add, period);
  }
  EXPECT_TRUE(model.Validate().ok());
  return model;
}

/// The A1-A10 style seed suite: every flavour the pipeline produces —
/// paper system, DSL designs, benchmark pairs, local-only and random DAGs.
std::vector<Workload> SeedWorkloads() {
  std::vector<Workload> out;
  out.push_back({"paper-system", BuildPaperSystem().model});

  PaperSystemOptions local;
  local.make_global = false;
  out.push_back({"paper-local", BuildPaperSystem(local).model});

  out.push_back({"tiny-dsl", Compile(kTinyDesign)});
  out.push_back({"fusion-dsl", Compile(kFusionDesign)});

  out.push_back({"ewf-diffeq",
                 SharedPair(BuildEwf, 30, BuildDiffeq, 25, 5, false)});
  out.push_back({"fir-diffeq",
                 SharedPair(BuildFir16, 9, BuildDiffeq, 12, 3, true)});

  {
    SystemModel model;  // single process, everything local
    const PaperTypes t = AddPaperTypes(model.library());
    const ProcessId p = model.AddProcess("lattice", 20);
    model.AddBlock(p, "main", BuildArLattice(t), 20);
    EXPECT_TRUE(model.Validate().ok());
    out.push_back({"ar-lattice-local", std::move(model)});
  }
  {
    Rng rng(7);
    SystemModel model;  // random DAGs sharing the multiplier
    const PaperTypes t = AddPaperTypes(model.library());
    const ProcessId pa = model.AddProcess("rnd_a", 24);
    const ProcessId pb = model.AddProcess("rnd_b", 24);
    model.AddBlock(pa, "main_a", BuildRandomDfg(t, rng, {}), 24);
    model.AddBlock(pb, "main_b", BuildRandomDfg(t, rng, {}), 24);
    model.MakeGlobal(t.mult, {pa, pb});
    model.SetPeriod(t.mult, 2);
    EXPECT_TRUE(model.Validate().ok());
    out.push_back({"random-shared", std::move(model)});
  }
  {
    SystemModel model;  // period 1: residue mapping degenerates, grid = 1
    const PaperTypes t = AddPaperTypes(model.library());
    const ProcessId pa = model.AddProcess("dq_a", 15);
    const ProcessId pb = model.AddProcess("dq_b", 15);
    model.AddBlock(pa, "main_a", BuildDiffeq(t), 15);
    model.AddBlock(pb, "main_b", BuildDiffeq(t), 15);
    model.MakeGlobal(t.sub, {pa, pb});
    model.SetPeriod(t.sub, 1);
    EXPECT_TRUE(model.Validate().ok());
    out.push_back({"diffeq-period1", std::move(model)});
  }
  {
    SystemModel model;  // single-member sharing group
    const PaperTypes t = AddPaperTypes(model.library());
    const ProcessId p = model.AddProcess("ewf", 18);
    model.AddBlock(p, "main", BuildEwf(t), 18);
    model.MakeGlobal(t.mult, {p});
    model.SetPeriod(t.mult, 2);
    EXPECT_TRUE(model.Validate().ok());
    out.push_back({"ewf-solo-global", std::move(model)});
  }
  return out;
}

struct Artifacts {
  CoupledResult result;
  SystemBinding binding;
};

Artifacts ScheduleAndBind(SystemModel& model) {
  CoupledScheduler scheduler(model, CoupledParams{});
  auto run_or = scheduler.Run();
  EXPECT_TRUE(run_or.ok()) << run_or.status().ToString();
  Artifacts out;
  out.result = std::move(run_or).value();
  auto binding_or =
      BindSystem(model, out.result.schedule, out.result.allocation);
  EXPECT_TRUE(binding_or.ok()) << binding_or.status().ToString();
  out.binding = std::move(binding_or).value();
  return out;
}

// ----------------------------------------------------- clean workloads --

TEST(Certifier, CleanSeedWorkloadsCertifyWithZeroViolations) {
  for (Workload& w : SeedWorkloads()) {
    SCOPED_TRACE(w.name);
    const Artifacts a = ScheduleAndBind(w.model);
    const CertificateReport report = CertifySchedule(
        w.model, a.result.schedule, a.result.allocation, &a.binding);
    EXPECT_TRUE(report.ok()) << report.ToString(w.model);
    EXPECT_GT(report.stats.ops_checked, 0);
    EXPECT_GT(report.stats.edges_checked, 0);
    EXPECT_GT(report.stats.cycles_checked, 0);
    EXPECT_GT(report.stats.bindings_checked, 0);
  }
}

TEST(Certifier, StatsCoverEveryCheckFamilyOnTheSharedSystem) {
  PaperSystem sys = BuildPaperSystem();
  const Artifacts a = ScheduleAndBind(sys.model);
  const CertificateReport report = CertifySchedule(
      sys.model, a.result.schedule, a.result.allocation, &a.binding);
  ASSERT_TRUE(report.ok()) << report.ToString(sys.model);
  EXPECT_GT(report.stats.residues_checked, 0);  // eq.-1 pool probes
  EXPECT_GT(report.stats.shifts_checked, 0);    // eq.-2/3 re-foldings
  EXPECT_EQ(report.Summary(),
            "clean (" + std::to_string(report.stats.Total()) + " checks)");
}

TEST(Certifier, CertifyResultWrapperMatchesCertifySchedule) {
  SystemModel model = Compile(kTinyDesign);
  const Artifacts a = ScheduleAndBind(model);
  const CertificateReport direct =
      CertifySchedule(model, a.result.schedule, a.result.allocation);
  const CertificateReport wrapped = CertifyResult(model, a.result);
  EXPECT_TRUE(direct.ok());
  EXPECT_TRUE(wrapped.ok());
  EXPECT_EQ(direct.stats.Total(), wrapped.stats.Total());
}

// -------------------------------------------------------- fault matrix --

TEST(FaultInjection, EveryApplicableFaultClassIsDetected) {
  std::vector<Workload> workloads = SeedWorkloads();
  std::vector<int> applicable(AllFaultKinds().size(), 0);
  for (Workload& w : workloads) {
    SystemModel& model = w.model;
    const Artifacts clean = ScheduleAndBind(model);
    for (FaultKind kind : AllFaultKinds()) {
      for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        SCOPED_TRACE(w.name + " / " + FaultKindName(kind) + ":" +
                     std::to_string(seed));
        SystemSchedule schedule = clean.result.schedule;
        Allocation allocation = clean.result.allocation;
        SystemBinding binding = clean.binding;
        auto fault_or = InjectFault(FaultPlan{kind, seed}, model, schedule,
                                    allocation, &binding);
        if (!fault_or.ok()) {
          EXPECT_EQ(fault_or.status().code(), StatusCode::kFailedPrecondition)
              << fault_or.status().ToString();
          continue;
        }
        ++applicable[static_cast<std::size_t>(kind)];
        const CertificateReport report =
            CertifySchedule(model, schedule, allocation, &binding);
        EXPECT_FALSE(report.ok())
            << "undetected: " << fault_or.value().description;
        EXPECT_TRUE(report.Has(fault_or.value().expected))
            << fault_or.value().description << "\n"
            << report.ToString(model);
      }
    }
  }
  // The suite exercises every fault class somewhere — a kind that is never
  // applicable would make the matrix silently vacuous.
  for (FaultKind kind : AllFaultKinds())
    EXPECT_GT(applicable[static_cast<std::size_t>(kind)], 0)
        << FaultKindName(kind) << " never applicable in the seed suite";
}

TEST(FaultInjection, SameSeedCorruptsTheSameSite) {
  PaperSystem sys = BuildPaperSystem();
  const Artifacts clean = ScheduleAndBind(sys.model);
  for (FaultKind kind : AllFaultKinds()) {
    std::string first;
    for (int round = 0; round < 2; ++round) {
      SystemSchedule schedule = clean.result.schedule;
      Allocation allocation = clean.result.allocation;
      SystemBinding binding = clean.binding;
      auto fault_or = InjectFault(FaultPlan{kind, 42}, sys.model, schedule,
                                  allocation, &binding);
      if (!fault_or.ok()) {
        // Inapplicable here (e.g. corrupt-local on a fully shared system);
        // the matrix test guarantees coverage elsewhere.
        EXPECT_EQ(fault_or.status().code(), StatusCode::kFailedPrecondition);
        break;
      }
      if (round == 0)
        first = fault_or.value().description;
      else
        EXPECT_EQ(first, fault_or.value().description);
    }
  }
}

TEST(FaultInjection, SwapBindingNeedsABindingArtifact) {
  SystemModel model = Compile(kTinyDesign);
  Artifacts a = ScheduleAndBind(model);
  auto fault_or =
      InjectFault(FaultPlan{FaultKind::kSwapBinding, 1}, model,
                  a.result.schedule, a.result.allocation, nullptr);
  ASSERT_FALSE(fault_or.ok());
  EXPECT_EQ(fault_or.status().code(), StatusCode::kInvalidArgument);
}

TEST(FaultInjection, PoolFaultsInapplicableOnLocalOnlyWorkloads) {
  PaperSystemOptions local;
  local.make_global = false;
  PaperSystem sys = BuildPaperSystem(local);
  Artifacts a = ScheduleAndBind(sys.model);
  for (FaultKind kind :
       {FaultKind::kPerturbPeriod, FaultKind::kOversubscribeResidue}) {
    auto fault_or = InjectFault(FaultPlan{kind, 1}, sys.model,
                                a.result.schedule, a.result.allocation,
                                &a.binding);
    ASSERT_FALSE(fault_or.ok()) << FaultKindName(kind);
    EXPECT_EQ(fault_or.status().code(), StatusCode::kFailedPrecondition);
  }
}

// ----------------------------------------------------- fault spec parse --

TEST(FaultInjection, ParseFaultSpecAcceptsKindAndSeed) {
  auto plan_or = ParseFaultSpec("perturb-period:99");
  ASSERT_TRUE(plan_or.ok());
  EXPECT_EQ(plan_or.value().kind, FaultKind::kPerturbPeriod);
  EXPECT_EQ(plan_or.value().seed, 99u);

  plan_or = ParseFaultSpec("shift-op");
  ASSERT_TRUE(plan_or.ok());
  EXPECT_EQ(plan_or.value().kind, FaultKind::kShiftOp);
  EXPECT_EQ(plan_or.value().seed, 1u);
}

TEST(FaultInjection, ParseFaultSpecRejectsGarbage) {
  EXPECT_EQ(ParseFaultSpec("melt-cpu").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(ParseFaultSpec("shift-op:notanumber").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(ParseFaultSpec("shift-op:12x").status().code(),
            StatusCode::kParseError);
}

// ------------------------------------------------- structural certifier --

TEST(Certifier, TruncatedSystemScheduleIsIncomplete) {
  SystemModel model = Compile(kTinyDesign);
  Artifacts a = ScheduleAndBind(model);
  SystemSchedule truncated = a.result.schedule;
  truncated.blocks.pop_back();
  const CertificateReport report =
      CertifySchedule(model, truncated, a.result.allocation);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.Has(ViolationKind::kIncompleteSchedule));
}

TEST(Certifier, UnscheduledOpIsIncomplete) {
  SystemModel model = Compile(kTinyDesign);
  Artifacts a = ScheduleAndBind(model);
  a.result.schedule.blocks[0].set_start(OpId{0}, -1);
  const CertificateReport report =
      CertifySchedule(model, a.result.schedule, a.result.allocation);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.Has(ViolationKind::kIncompleteSchedule));
}

TEST(Certifier, MisshapenLocalTableIsMalformed) {
  SystemModel model = Compile(kTinyDesign);
  Artifacts a = ScheduleAndBind(model);
  a.result.allocation.local.pop_back();
  const CertificateReport report =
      CertifySchedule(model, a.result.schedule, a.result.allocation);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.Has(ViolationKind::kMalformedArtifact));
}

TEST(Certifier, DeadlineViolationIsReported) {
  SystemModel model;
  const PaperTypes t = AddPaperTypes(model.library());
  const ProcessId p = model.AddProcess("tight", /*deadline=*/8);
  DataFlowGraph g;
  const OpId a = g.AddOp(t.add);
  const OpId b = g.AddOp(t.add);
  g.AddEdge(a, b);
  ASSERT_TRUE(g.Validate().ok());
  const BlockId bid = model.AddBlock(p, "main", std::move(g), 10);
  ASSERT_TRUE(model.Validate().ok());
  Artifacts art = ScheduleAndBind(model);
  // Finishing inside the time range but past the declared deadline.
  art.result.schedule.of(bid).set_start(b, 9);
  const CertificateReport report =
      CertifySchedule(model, art.result.schedule, art.result.allocation);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.Has(ViolationKind::kDeadlineViolation));
  EXPECT_FALSE(report.Has(ViolationKind::kRangeViolation));
}

TEST(Certifier, PhaseOutsideGridIsMisaligned) {
  SystemModel model = Compile(kTinyDesign);  // grid spacing 5
  Artifacts a = ScheduleAndBind(model);
  model.mutable_block(BlockId{0}).phase = 7;
  const CertificateReport report =
      CertifySchedule(model, a.result.schedule, a.result.allocation);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.Has(ViolationKind::kGridMisalignment));
}

TEST(Certifier, MaxViolationsCapsTheReport) {
  SystemModel model = Compile(kTinyDesign);
  Artifacts a = ScheduleAndBind(model);
  for (BlockSchedule& s : a.result.schedule.blocks)
    for (std::size_t op = 0; op < s.size(); ++op)
      s.set_start(OpId{static_cast<int>(op)}, -1);
  CertifierOptions options;
  options.max_violations = 3;
  const CertificateReport report = CertifySchedule(
      model, a.result.schedule, a.result.allocation, nullptr, options);
  EXPECT_EQ(report.violations.size(), 3u);
}

TEST(Certifier, ViolationToStringNamesTheCoordinates) {
  SystemModel model = Compile(kTinyDesign);
  Artifacts a = ScheduleAndBind(model);
  SystemSchedule bad = a.result.schedule;
  Allocation alloc = a.result.allocation;
  auto fault_or = InjectFault(FaultPlan{FaultKind::kShiftOp, 1}, model, bad,
                              alloc, nullptr);
  ASSERT_TRUE(fault_or.ok());
  const CertificateReport report = CertifySchedule(model, bad, alloc);
  ASSERT_FALSE(report.ok());
  const std::string line = report.violations.front().ToString(model);
  EXPECT_NE(line.find("range-violation"), std::string::npos) << line;
  EXPECT_NE(line.find("block"), std::string::npos) << line;
}

}  // namespace
}  // namespace mshls
