#include "bind/binding.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "modulo/modulo_map.h"

namespace mshls {
namespace {

/// Pool entitlement of user index u at residue tau: first index and count.
struct Entitlement {
  int first = 0;
  int count = 0;
};

Entitlement EntitlementOf(const GlobalTypeAllocation& ga, std::size_t user,
                          int tau) {
  Entitlement e;
  for (std::size_t v = 0; v < user; ++v)
    e.first += ga.authorization[v][static_cast<std::size_t>(tau)];
  e.count = ga.authorization[user][static_cast<std::size_t>(tau)];
  return e;
}

int UserIndexOf(const GlobalTypeAllocation& ga, ProcessId p) {
  for (std::size_t u = 0; u < ga.users.size(); ++u)
    if (ga.users[u] == p) return static_cast<int>(u);
  return -1;
}

}  // namespace

StatusOr<SystemBinding> BindSystem(const SystemModel& model,
                                   const SystemSchedule& schedule,
                                   const Allocation& allocation) {
  const ResourceLibrary& lib = model.library();
  SystemBinding binding;

  // Instance tables. pool_base[type] = id of pool instance 0;
  // local_base[process][type] = id of local instance 0.
  std::vector<int> pool_base(lib.size(), -1);
  std::vector<std::vector<int>> local_base(
      model.process_count(), std::vector<int>(lib.size(), -1));
  auto new_instance = [&](ResourceTypeId type, bool global, ProcessId owner,
                          int local_index, std::string name) {
    const InstanceId id{static_cast<int>(binding.instances.size())};
    binding.instances.push_back(
        InstanceInfo{id, type, global, owner, local_index, std::move(name)});
    return id;
  };
  for (const GlobalTypeAllocation& ga : allocation.global) {
    pool_base[ga.type.index()] = static_cast<int>(binding.instances.size());
    for (int i = 0; i < ga.instances; ++i)
      new_instance(ga.type, true, ProcessId::invalid(), i,
                   lib.type(ga.type).name + "_g" + std::to_string(i));
  }
  for (const Process& p : model.processes()) {
    for (const ResourceType& t : lib.types()) {
      const int n = allocation.local[p.id.index()][t.id.index()];
      if (n == 0) continue;
      local_base[p.id.index()][t.id.index()] =
          static_cast<int>(binding.instances.size());
      for (int i = 0; i < n; ++i)
        new_instance(t.id, false, p.id, i,
                     p.name + "_" + t.name + std::to_string(i));
    }
  }

  binding.op_instance.resize(model.block_count());
  for (const Block& b : model.blocks()) {
    auto& per_op = binding.op_instance[b.id.index()];
    per_op.assign(b.graph.op_count(), InstanceId::invalid());
    const BlockSchedule& sched = schedule.of(b.id);

    for (const ResourceType& t : lib.types()) {
      // Ops of this type, earliest start first (stable by id).
      std::vector<OpId> ops;
      for (const Operation& op : b.graph.ops())
        if (op.type == t.id) ops.push_back(op.id);
      if (ops.empty()) continue;
      std::sort(ops.begin(), ops.end(), [&](OpId a, OpId c) {
        if (sched.start(a) != sched.start(c))
          return sched.start(a) < sched.start(c);
        return a < c;
      });
      const int dii = t.dii;

      const GlobalTypeAllocation* pool =
          (model.is_global(t.id) && model.InGroup(t.id, b.process))
              ? allocation.FindGlobal(t.id)
              : nullptr;

      if (pool == nullptr) {
        // Local interval assignment: lowest free instance.
        const int base = local_base[b.process.index()][t.id.index()];
        const int count = allocation.local[b.process.index()][t.id.index()];
        std::vector<int> busy_until(static_cast<std::size_t>(count), 0);
        for (OpId op : ops) {
          const int s = sched.start(op);
          int chosen = -1;
          for (int i = 0; i < count; ++i) {
            if (busy_until[static_cast<std::size_t>(i)] <= s) {
              chosen = i;
              break;
            }
          }
          if (chosen < 0)
            return Status{StatusCode::kInternal,
                          "local allocation of '" + t.name +
                              "' too small for block '" + b.name + "'"};
          busy_until[static_cast<std::size_t>(chosen)] = s + dii;
          per_op[op.index()] = InstanceId{base + chosen};
        }
        continue;
      }

      // Global pool: per-residue prefix partition.
      const int user = UserIndexOf(*pool, b.process);
      assert(user >= 0 && "scheduled op of a non-user process");
      const int base = pool_base[t.id.index()];
      // busy_until per pool instance within this block.
      std::vector<int> busy_until(
          static_cast<std::size_t>(pool->instances), 0);
      for (OpId op : ops) {
        const int s = sched.start(op);
        int chosen = -1;
        for (int i = 0; i < pool->instances && chosen < 0; ++i) {
          if (busy_until[static_cast<std::size_t>(i)] > s) continue;
          // Entitled at every residue the issue spans?
          bool entitled = true;
          for (int k = 0; k < dii; ++k) {
            const int tau = ResidueOf(s + k, b.phase, pool->period);
            const Entitlement e = EntitlementOf(*pool,
                                                static_cast<std::size_t>(user),
                                                tau);
            if (i < e.first || i >= e.first + e.count) {
              entitled = false;
              break;
            }
          }
          if (entitled) chosen = i;
        }
        if (chosen < 0)
          return Status{
              StatusCode::kInfeasible,
              "no pool instance of '" + t.name +
                  "' is entitled across all residues spanned by op " +
                  std::to_string(op.value()) + " in block '" + b.name +
                  "' (multicycle global sharing limitation)"};
        busy_until[static_cast<std::size_t>(chosen)] = s + dii;
        per_op[op.index()] = InstanceId{base + chosen};
      }
    }
  }
  return binding;
}

Status ValidateBinding(const SystemModel& model,
                       const SystemSchedule& schedule,
                       const Allocation& allocation,
                       const SystemBinding& binding) {
  const ResourceLibrary& lib = model.library();
  for (const Block& b : model.blocks()) {
    const BlockSchedule& sched = schedule.of(b.id);
    // Intra-block: no instance claimed twice at one step.
    std::vector<std::vector<bool>> busy(
        binding.instances.size(),
        std::vector<bool>(static_cast<std::size_t>(b.time_range), false));
    for (const Operation& op : b.graph.ops()) {
      const InstanceId inst = binding.of(b.id, op.id);
      if (!inst.valid())
        return {StatusCode::kInternal,
                "op " + std::to_string(op.id.value()) + " in block '" +
                    b.name + "' is unbound"};
      const InstanceInfo& info = binding.info(inst);
      if (info.type != op.type)
        return {StatusCode::kInternal, "type mismatch in binding"};
      if (!info.global && info.owner != b.process)
        return {StatusCode::kInternal,
                "local instance used by a foreign process"};
      const int dii = lib.type(op.type).dii;
      const int s = sched.start(op.id);
      for (int k = 0; k < dii; ++k) {
        auto cell = busy[inst.index()].begin() + s + k;
        if (*cell)
          return {StatusCode::kInternal,
                  "instance '" + info.name + "' double-booked in block '" +
                      b.name + "'"};
        *cell = true;
      }
      if (info.global) {
        const GlobalTypeAllocation* pool = allocation.FindGlobal(op.type);
        assert(pool != nullptr);
        const int user = UserIndexOf(*pool, b.process);
        if (user < 0)
          return {StatusCode::kInternal,
                  "pool instance used by a process outside the group"};
        for (int k = 0; k < dii; ++k) {
          const int tau = ResidueOf(s + k, b.phase, pool->period);
          const Entitlement e = EntitlementOf(
              *pool, static_cast<std::size_t>(user), tau);
          if (info.local_index < e.first ||
              info.local_index >= e.first + e.count)
            return {StatusCode::kInternal,
                    "pool instance '" + info.name +
                        "' used outside its entitled residue range"};
        }
      }
    }
  }
  return Status::Ok();
}

}  // namespace mshls
