#include "modulo/refinement.h"

#include <algorithm>

namespace mshls {
namespace {

/// Lexicographic objective: FU area first, then the summed squares of the
/// global demand profiles (a smoothness pressure that rewards moves which
/// flatten a pool even when the peak has not dropped yet).
struct Objective {
  int area = 0;
  long pressure = 0;

  bool operator<(const Objective& other) const {
    if (area != other.area) return area < other.area;
    return pressure < other.pressure;
  }
};

Objective Evaluate(const SystemModel& model, const SystemSchedule& schedule) {
  const Allocation alloc = ComputeAllocation(model, schedule);
  Objective obj;
  obj.area = alloc.TotalArea(model.library());
  for (const GlobalTypeAllocation& ga : alloc.global)
    for (int v : ga.profile)
      obj.pressure += static_cast<long>(v) * v * model.library()
                                                    .type(ga.type)
                                                    .area;
  return obj;
}

}  // namespace

StatusOr<RefineResult> RefineSchedule(const SystemModel& model,
                                      const SystemSchedule& schedule,
                                      const RefineOptions& options) {
  if (Status s = ValidateSystemSchedule(model, schedule); !s.ok()) return s;

  RefineResult result;
  result.schedule = schedule;
  result.area_before =
      ComputeAllocation(model, schedule).TotalArea(model.library());

  Objective current = Evaluate(model, result.schedule);
  for (int round = 0; round < options.max_rounds; ++round) {
    ++result.rounds;
    bool improved = false;
    for (const Block& b : model.blocks()) {
      const DelayFn delay = model.DelayOf(b.id);
      BlockSchedule& sched = result.schedule.of(b.id);
      for (const Operation& op : b.graph.ops()) {
        // Precedence-feasible window of this op with everything else
        // fixed.
        int lb = 0;
        for (OpId p : b.graph.preds(op.id))
          lb = std::max(lb, sched.start(p) + delay(p));
        int ub = b.time_range - delay(op.id);
        for (OpId s : b.graph.succs(op.id))
          ub = std::min(ub, sched.start(s) - delay(op.id));
        const int original = sched.start(op.id);
        int best_step = original;
        Objective best = current;
        for (int step = lb; step <= ub; ++step) {
          if (step == original) continue;
          sched.set_start(op.id, step);
          const Objective candidate = Evaluate(model, result.schedule);
          if (candidate < best) {
            best = candidate;
            best_step = step;
          }
        }
        sched.set_start(op.id, best_step);
        if (best_step != original) {
          current = best;
          ++result.moves_accepted;
          improved = true;
        }
      }
    }
    if (!improved) break;
  }

  if (Status s = ValidateSystemSchedule(model, result.schedule); !s.ok())
    return s;
  result.allocation = ComputeAllocation(model, result.schedule);
  result.area_after = result.allocation.TotalArea(model.library());
  return result;
}

}  // namespace mshls
