#include "common/math_util.h"

#include <algorithm>

namespace mshls {

std::vector<std::int64_t> DivisorsOf(std::int64_t n) {
  assert(n > 0);
  std::vector<std::int64_t> low;
  std::vector<std::int64_t> high;
  for (std::int64_t d = 1; d * d <= n; ++d) {
    if (n % d != 0) continue;
    low.push_back(d);
    if (d != n / d) high.push_back(n / d);
  }
  low.insert(low.end(), high.rbegin(), high.rend());
  return low;
}

StatusOr<std::int64_t> CheckedLcmOf(std::span<const std::int64_t> xs) {
  std::int64_t l = 1;
  for (std::int64_t x : xs) {
    if (x <= 0)
      return Status{StatusCode::kInvalidArgument,
                    "lcm over non-positive value " + std::to_string(x)};
    const std::optional<std::int64_t> next = CheckedLcm(l, x);
    if (!next.has_value())
      return Status{StatusCode::kInfeasible,
                    "grid spacing (lcm of periods) overflows int64"};
    l = *next;
  }
  return l;
}

}  // namespace mshls
