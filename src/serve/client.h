// Client side of the mshlsd protocol: connect to the daemon's unix
// socket, submit jobs, get typed responses. Used by `mshlsc --connect`,
// the service benchmark and the serve tests.
#pragma once

#include <string>

#include "common/status.h"
#include "serve/protocol.h"

namespace mshls::serve {

class Client {
 public:
  Client() = default;
  ~Client() { Close(); }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

  /// Connects to the daemon at `socket_path`.
  [[nodiscard]] Status Connect(const std::string& socket_path);

  /// Sends one request and blocks for its response. `timeout_ms` bounds
  /// each wait on the socket (< 0: forever) — jobs can take a while, so
  /// it should comfortably exceed the job's own budget. The connection
  /// stays open for further submissions, except after transport-level
  /// rejections (too-large / malformed), where the server drops it.
  [[nodiscard]] StatusOr<ServeResponse> Submit(const ServeRequest& request,
                                               long timeout_ms = -1);

  [[nodiscard]] bool connected() const { return fd_ >= 0; }
  void Close();

 private:
  int fd_ = -1;
};

}  // namespace mshls::serve
