// SystemModel -> input-language text. Round-trips with frontend/parser.h:
// CompileSystem(EmitSystemText(model)) reproduces the model (up to
// identifier naming of block inputs, which the language leaves implicit).
// Useful for persisting generated/programmatic systems and for golden
// tests of the whole frontend.
#pragma once

#include <string>
#include <vector>

#include "model/system_model.h"

namespace mshls {

/// Operation names are sanitized into identifiers; operations with more
/// than two predecessors use the call form with their resource name.
/// Operands that are block inputs are named in<op>_<slot>.
[[nodiscard]] std::string EmitSystemText(const SystemModel& model);

/// Same, prefixed with one '#' comment line per entry of `header` — used by
/// the fuzz harness to stamp repro files with their seed and failing oracle
/// so a minimized case stays reproducible from its text alone.
[[nodiscard]] std::string EmitSystemText(const SystemModel& model,
                                         const std::vector<std::string>& header);

}  // namespace mshls
