// Process merging — the *traditional* route to cross-process sharing that
// the paper discusses and rejects for reactive systems (§1.1): "merging
// processes is not applicable in case of unpredictable block starting
// times".
//
// This transformation implements that alternative so the benches can
// compare it against modulo sharing: the blocks of the merged processes
// are combined into ONE block of ONE process (disjoint graph union, time
// range = the maximum of the sources). A conventional scheduler can then
// share resources freely inside the merged block — but the original
// processes lose their independence: they now share a single activation
// and a single rhythm, so a spontaneous event for one of them must wait
// for the combined schedule (the latency penalty bench A9 quantifies).
//
// Restriction (inherent to the transformation, not this implementation):
// each source process must consist of a single block.
#pragma once

#include <span>
#include <string_view>

#include "common/status.h"
#include "model/system_model.h"

namespace mshls {

/// Returns a NEW model in which `sources` are replaced by one process
/// with one merged block; all other processes are copied unchanged. The
/// S1/S2 assignment state is reset to all-local (merging exists precisely
/// to avoid global assignments). Op names are prefixed with the source
/// process name.
[[nodiscard]] StatusOr<SystemModel> MergeProcesses(
    const SystemModel& model, std::span<const ProcessId> sources,
    std::string_view merged_name);

}  // namespace mshls
