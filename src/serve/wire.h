// Length-prefixed binary framing over POSIX stream sockets — the transport
// under the mshlsd protocol (serve/protocol.h).
//
// A frame is a 4-byte little-endian payload length followed by that many
// payload bytes. The reader is defensive by construction: a declared
// length of zero or above the caller's cap, a disconnect in the middle of
// a frame, or any socket error comes back as a *typed outcome*, never an
// exception or a crash — the server turns these into typed protocol
// rejections and the client into Status errors.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace mshls::serve {

/// Hard ceiling on any frame this build will ever read, independent of the
/// caller's cap (guards against a hostile 4 GiB length prefix).
inline constexpr std::uint32_t kAbsoluteMaxFrameBytes = 64u << 20;  // 64 MiB

struct FrameRead {
  enum class Outcome {
    kFrame,      // `payload` holds a complete frame
    kEof,        // clean disconnect on a frame boundary
    kMalformed,  // zero-length frame, or disconnect mid-frame
    kTooLarge,   // declared length exceeds the cap; nothing consumed after
                 // the prefix, `declared` holds the claimed size
    kTimeout,    // poll deadline expired before a full frame arrived
    kIoError,    // read(2)/poll(2) failed; `error` holds strerror text
  };
  Outcome outcome = Outcome::kIoError;
  std::string payload;
  std::uint64_t declared = 0;
  std::string error;
};

[[nodiscard]] const char* FrameOutcomeName(FrameRead::Outcome outcome);

/// Reads one frame from `fd`. `max_bytes` caps the accepted payload size
/// (clamped to kAbsoluteMaxFrameBytes); `timeout_ms` < 0 blocks forever,
/// otherwise it bounds the wait for *each* readable chunk.
[[nodiscard]] FrameRead ReadFrame(int fd, std::size_t max_bytes,
                                  long timeout_ms = -1);

/// Writes one frame (length prefix + payload), retrying on short writes
/// and EINTR. SIGPIPE must be blocked/ignored by the process (the server
/// and client both install SIG_IGN); a closed peer surfaces as EPIPE.
[[nodiscard]] Status WriteFrame(int fd, std::string_view payload);

/// Appends `value` little-endian. Helpers shared by protocol + codec so
/// every on-wire/on-disk integer has one byte order.
void PutU32(std::string& out, std::uint32_t value);
void PutU64(std::string& out, std::uint64_t value);
void PutI64(std::string& out, std::int64_t value);

/// Cursor-based readers: return false (leaving outputs untouched) when
/// fewer than the needed bytes remain.
[[nodiscard]] bool GetU32(std::string_view in, std::size_t& cursor,
                          std::uint32_t* value);
[[nodiscard]] bool GetU64(std::string_view in, std::size_t& cursor,
                          std::uint64_t* value);
[[nodiscard]] bool GetI64(std::string_view in, std::size_t& cursor,
                          std::int64_t* value);

}  // namespace mshls::serve
