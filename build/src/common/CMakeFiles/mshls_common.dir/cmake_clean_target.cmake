file(REMOVE_RECURSE
  "libmshls_common.a"
)
