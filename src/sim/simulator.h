// Cycle-accurate multi-process simulator.
//
// The paper's whole point is that a set of *independent* processes with
// unknown activation times can share resources with purely static access
// control: each process obeys its per-residue authorization table and no
// conflict can ever occur, without a runtime executive (paper §3, §8).
//
// This substrate checks that claim empirically. Given a system model, a
// schedule and an allocation, it simulates arbitrary activation traces
// cycle by cycle and verifies, at every absolute time step t:
//   * every activation starts on the process grid (start ≡ block phase mod
//     grid spacing, paper eq. 2/3) and blocks of one process do not overlap
//     (condition C2);
//   * per process and global type g: concurrent demand <= A_p(t mod lambda);
//   * per global type: total demand across processes <= pool instances;
//   * per process and local type: concurrent demand <= local instances.
// Grid/overlap problems are reported, and the resource checks then show
// whether a rule-breaking trace actually provokes a conflict — that is what
// the negative property tests exercise.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "modulo/allocation.h"

namespace mshls {

struct Activation {
  BlockId block;
  std::int64_t start = 0;  // absolute control step
};

enum class SimViolationKind {
  kGridMisaligned,
  kProcessOverlap,
  kAuthorizationExceeded,
  kPoolOversubscribed,
  kLocalExceeded,
};

struct SimViolation {
  SimViolationKind kind;
  std::int64_t time = 0;
  std::string detail;
};

struct SimTypeStats {
  ResourceTypeId type;
  std::int64_t busy_instance_cycles = 0;
  int instances = 0;  // pool size (global) or system-wide local sum
  double utilization = 0;  // busy / (instances * horizon)
};

struct SimReport {
  bool ok = false;
  std::vector<SimViolation> violations;
  std::int64_t horizon = 0;
  std::vector<SimTypeStats> stats;  // one per resource type
};

class SystemSimulator {
 public:
  /// Schedule must be complete and allocation derived from it (or wider).
  SystemSimulator(const SystemModel& model, const SystemSchedule& schedule,
                  const Allocation& allocation);

  /// Simulates the trace. `max_violations` truncates the report (0 = all).
  [[nodiscard]] SimReport Run(const std::vector<Activation>& trace,
                              int max_violations = 16) const;

 private:
  const SystemModel& model_;
  const SystemSchedule& schedule_;
  const Allocation& allocation_;
};

struct TraceOptions {
  int activations_per_process = 8;
  /// Maximum idle gap (in grid units) inserted between activations.
  int max_gap_units = 3;
  std::uint64_t seed = 1;
};

/// Generates a legal trace: per process, back-to-back-or-gapped activations
/// on the grid, never overlapping. Deterministic in the seed.
[[nodiscard]] std::vector<Activation> RandomActivationTrace(
    const SystemModel& model, const TraceOptions& options);

}  // namespace mshls
