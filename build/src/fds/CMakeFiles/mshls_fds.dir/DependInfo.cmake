
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fds/distribution.cpp" "src/fds/CMakeFiles/mshls_fds.dir/distribution.cpp.o" "gcc" "src/fds/CMakeFiles/mshls_fds.dir/distribution.cpp.o.d"
  "/root/repo/src/fds/fds_scheduler.cpp" "src/fds/CMakeFiles/mshls_fds.dir/fds_scheduler.cpp.o" "gcc" "src/fds/CMakeFiles/mshls_fds.dir/fds_scheduler.cpp.o.d"
  "/root/repo/src/fds/force.cpp" "src/fds/CMakeFiles/mshls_fds.dir/force.cpp.o" "gcc" "src/fds/CMakeFiles/mshls_fds.dir/force.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mshls_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dfg/CMakeFiles/mshls_dfg.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/mshls_model.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/mshls_sched.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
