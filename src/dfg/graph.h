// Data-flow graph: the operation/precedence representation every scheduler
// in this library works on.
//
// An operation is typed by a ResourceTypeId into the resource library owned
// by the surrounding model; the graph itself is delay-agnostic — latency
// queries take a delay lookup so the same graph can be scheduled against
// different libraries.
#pragma once

#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/ids.h"
#include "common/status.h"

namespace mshls {

/// Returns the precedence latency of an operation: the number of control
/// steps between issuing the op and its result being available.
using DelayFn = std::function<int(OpId)>;

struct Operation {
  OpId id;
  ResourceTypeId type;
  std::string name;  // optional, for diagnostics / DOT / RTL signal names
};

struct Edge {
  EdgeId id;
  OpId from;
  OpId to;
};

class DataFlowGraph {
 public:
  /// Adds an operation of the given resource type; name may be empty.
  OpId AddOp(ResourceTypeId type, std::string_view name = {});

  /// Adds a precedence edge. Duplicate edges are permitted on input and
  /// collapsed by Validate(); self-loops are rejected there.
  EdgeId AddEdge(OpId from, OpId to);

  [[nodiscard]] std::size_t op_count() const { return ops_.size(); }
  [[nodiscard]] std::size_t edge_count() const { return edges_.size(); }

  [[nodiscard]] const Operation& op(OpId id) const { return ops_[id.index()]; }
  [[nodiscard]] std::span<const Operation> ops() const { return ops_; }
  [[nodiscard]] std::span<const Edge> edges() const { return edges_; }

  /// Direct predecessors / successors. Valid only after Validate().
  [[nodiscard]] std::span<const OpId> preds(OpId id) const {
    return preds_[id.index()];
  }
  [[nodiscard]] std::span<const OpId> succs(OpId id) const {
    return succs_[id.index()];
  }

  /// Checks structural sanity (ids in range, no self loop, acyclic),
  /// deduplicates parallel edges and builds adjacency. Must be called once
  /// after construction and before any traversal query.
  [[nodiscard]] Status Validate();
  [[nodiscard]] bool validated() const { return validated_; }

  /// Topological order of all operations (stable: ties broken by op id).
  /// Requires a successful Validate().
  [[nodiscard]] std::span<const OpId> topological_order() const {
    return topo_;
  }

  /// Length of the longest delay-weighted path: the minimal schedule length
  /// (sum of delays along the heaviest chain). Requires Validate().
  [[nodiscard]] int CriticalPathLength(const DelayFn& delay) const;

  /// Ops with no predecessors / successors. Requires Validate().
  [[nodiscard]] std::vector<OpId> SourceOps() const;
  [[nodiscard]] std::vector<OpId> SinkOps() const;

 private:
  std::vector<Operation> ops_;
  std::vector<Edge> edges_;
  std::vector<std::vector<OpId>> preds_;
  std::vector<std::vector<OpId>> succs_;
  std::vector<OpId> topo_;
  bool validated_ = false;
};

/// Counts ops per resource type; index = type id, sized to max type + 1.
[[nodiscard]] std::vector<int> CountOpsPerType(const DataFlowGraph& graph);

}  // namespace mshls
