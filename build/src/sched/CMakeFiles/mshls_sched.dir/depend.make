# Empty dependencies file for mshls_sched.
# This may be replaced when dependencies are built.
