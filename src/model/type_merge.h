// Multi-function unit modelling via type merging.
//
// Classic allocation trick: operations of several cheap types (add, sub,
// compare) can share one ALU-style unit. In this library a multi-function
// unit is simply a merged resource type: the transformation registers a
// new type and retargets every operation of the source types onto it.
// Scheduling, sharing (S1/S2/S3), binding and RTL then treat the ALU like
// any other resource — including globally, so a process group can share
// one ALU pool for all its add/sub traffic.
//
// Constraints: the merged types must agree on delay and dii (a unit has
// one timing); the merged area is given by the caller (an ALU is usually
// slightly bigger than an adder, much smaller than adder + subtracter).
#pragma once

#include <span>
#include <string_view>

#include "common/status.h"
#include "model/system_model.h"

namespace mshls {

/// Retargets all ops of `sources` in every block of `model` onto a new
/// type named `merged_name` with the given area. Existing S1/S2 state of
/// the source types is dropped (they no longer have any ops); the new type
/// starts local. Returns the new type id.
[[nodiscard]] StatusOr<ResourceTypeId> MergeTypes(
    SystemModel& model, std::span<const ResourceTypeId> sources,
    std::string_view merged_name, int merged_area);

}  // namespace mshls
