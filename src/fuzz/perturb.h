// Perturb-then-repair oracle (O4): the fuzz-side acceptance check for
// online schedule repair (modulo/repair.h).
//
// Each case: generate a system, solve + certify it (the "running" base),
// draw a random workload delta against it (GenerateDelta), then answer the
// same perturbation twice — once with a fresh solve of the post-delta
// model and once with RepairSchedule warm off the base schedule. The two
// answers must agree on survivability:
//   * a DIVERGENCE is a fresh solve that succeeds (schedules + certifies)
//     while the repair ladder fails, or a repair whose result does not
//     independently re-certify — repair must never be weaker than
//     resolving from scratch;
//   * repair succeeding where the fresh solve fails is ALLOWED: the
//     kRelaxPeriods rung may legally trade the declared periods away,
//     which a fresh as-declared solve cannot.
// Divergent cases are shrunk (the delta is held fixed; base deletions that
// break the delta's name references are rejected by the predicate) and
// persisted as a replayable .hls + sidecar-delta pair.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "fuzz/fuzzer.h"
#include "model/system_model.h"
#include "modulo/repair.h"

namespace mshls {

/// Draws one random, base-compatible workload delta. Deterministic per
/// (model, seed); the kind mix covers every DeltaKind the model's
/// structure admits (period/group edits need a share, removal needs a
/// second process). The delta is *syntactically* valid against the base —
/// ApplyDelta may still reject it semantically (e.g. an infeasible
/// deadline), which the campaign counts as a rejected draw, not a failure.
[[nodiscard]] ModelDelta GenerateDelta(const SystemModel& base,
                                       std::uint64_t seed);

/// Outcome of one perturb-then-repair case.
struct PerturbOutcome {
  std::uint64_t seed = 0;
  /// Base never scheduled/certified — nothing to repair; case skipped.
  bool base_ready = false;
  /// No generated delta survived ApplyDelta; case skipped.
  bool delta_applied = false;
  std::string delta_summary;
  bool fresh_ok = false;   // post-delta fresh solve scheduled + certified
  bool repair_ok = false;  // repair ladder produced a certified schedule
  RepairRung rung = RepairRung::kInPlace;  // winning rung when repair_ok
  std::string detail;  // failure detail (divergences), empty otherwise
  bool diverged = false;

  [[nodiscard]] std::string LogLine(int index) const;
};

/// Runs one case end to end (base pipeline, delta draw, fresh-vs-repair).
[[nodiscard]] PerturbOutcome RunPerturbCase(const SystemModel& base_in,
                                            std::uint64_t seed);

struct PerturbReport {
  int cases = 0;
  int base_skipped = 0;    // base infeasible or uncertified
  int delta_rejected = 0;  // every delta draw failed ApplyDelta
  int repaired = 0;        // repair produced a certified schedule
  int both_failed = 0;     // fresh and repair agree the delta is fatal
  int divergences = 0;
  /// Winning-rung histogram over the repaired cases (RepairRung order).
  int rung_counts[4] = {0, 0, 0, 0};
  std::vector<std::string> log;
  std::vector<std::string> repro_paths;

  [[nodiscard]] bool ok() const { return divergences == 0; }
  [[nodiscard]] std::string Summary() const;
};

/// Runs the perturb-then-repair campaign: `options.cases` cases derived
/// from `options.seed` exactly like RunFuzz (FuzzCaseSeed), fanned out
/// over `options.jobs` with a bit-identical report for any width. The
/// generator's adversarial classes are disabled — this campaign needs
/// schedulable bases. Only returns non-OK on environment errors (repro
/// directory unwritable); divergences live in the report.
[[nodiscard]] StatusOr<PerturbReport> RunPerturbFuzz(
    const FuzzOptions& options);

}  // namespace mshls
