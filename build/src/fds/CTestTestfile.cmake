# CMake generated Testfile for 
# Source directory: /root/repo/src/fds
# Build directory: /root/repo/build/src/fds
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
