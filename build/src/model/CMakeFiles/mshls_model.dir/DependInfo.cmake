
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/process_merge.cpp" "src/model/CMakeFiles/mshls_model.dir/process_merge.cpp.o" "gcc" "src/model/CMakeFiles/mshls_model.dir/process_merge.cpp.o.d"
  "/root/repo/src/model/resource.cpp" "src/model/CMakeFiles/mshls_model.dir/resource.cpp.o" "gcc" "src/model/CMakeFiles/mshls_model.dir/resource.cpp.o.d"
  "/root/repo/src/model/system_model.cpp" "src/model/CMakeFiles/mshls_model.dir/system_model.cpp.o" "gcc" "src/model/CMakeFiles/mshls_model.dir/system_model.cpp.o.d"
  "/root/repo/src/model/type_merge.cpp" "src/model/CMakeFiles/mshls_model.dir/type_merge.cpp.o" "gcc" "src/model/CMakeFiles/mshls_model.dir/type_merge.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mshls_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dfg/CMakeFiles/mshls_dfg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
