// mshlsc — command-line driver for the whole flow.
//
//   mshlsc <design.hls> [options]
//
// The design path and the flags may come in any order: the first non-flag
// token is the input (`mshlsc --verify d.hls` == `mshlsc d.hls --verify`).
//
//   --search-periods       run step S2 automatically (default: use the
//                          periods written in the source)
//   --search-assignments   run step S1+S2 automatically (overrides any
//                          share declarations in the source)
//   --local                schedule with the traditional pure-local
//                          assignment instead (comparison baseline)
//   --table                print the Table-1 style allocation report
//   --gantt                print per-block instance Gantt charts
//   --dot <dir>            write one Graphviz file per block into <dir>
//   --rtl <file>           write the Verilog netlist
//   --json <file>          write schedule + allocation as JSON
//   --simulate <n>         run n random grid-aligned activations per
//                          process through the conflict simulator
//   --seed <s>             seed for --simulate (default 1)
//   --jobs <n>             worker threads: fans the S1/S2 searches, the
//                          single-model coupled candidate sweep and batch
//                          processing out over n threads (results are
//                          bit-identical to -j 1)
//   --batch <dir>          schedule every *.hls file under <dir>
//                          concurrently through the job service (combines
//                          with the mode flags above; per-file reports).
//                          Unreadable or oversized files become warning
//                          rows instead of aborting the batch
//   --verify               run the independent certifier (verify/) on the
//                          result and print its report; violations exit 1
//   --inject-fault <spec>  self-test: corrupt the scheduled artifacts with
//                          <kind>[:<seed>] (shift-op, drop-edge,
//                          swap-binding, perturb-period,
//                          oversubscribe-residue, corrupt-local), then
//                          certify; exit 0 iff the fault is detected
//   --fuzz <n>[:<seed>]    differential fuzzing: generate n random system
//                          models and run the metamorphic/differential
//                          oracle battery on each; failures are shrunk to
//                          minimal .hls repros. Combines with --jobs (the
//                          report is bit-identical for any width) and with
//                          --inject-fault (every clean case's artifacts are
//                          corrupted and the certifier must catch it;
//                          caught faults are shrunk, misses exit 1)
//   --fuzz-dir <dir>       where --fuzz writes repros (default fuzz-repros)
//   --fuzz-large <n>[:<seed>]
//                          scaling campaign: n fuzz-generated LARGE systems
//                          (30-80 processes with clustered sharing groups)
//                          through the certificate + replay oracles (the
//                          exact and metamorphic families are skipped —
//                          they are sized for small instances)
//   --clusters <n>         hierarchical coupled scheduling: partition the
//                          process sharing graph into clusters of at most
//                          n processes, schedule them concurrently (--jobs)
//                          and stitch + reconcile the results. Coupled mode
//                          only; every cluster and the stitched system pass
//                          the certifier
//   --configurator <c>     candidate-set configurator for the S1/S2
//                          searches: 'harmonic' (default; divisor-closed
//                          candidate sets + utilization-bound pruning,
//                          winner-identical) or 'exhaustive' (the referee
//                          enumeration)
//   --repair <delta-file>  online schedule repair: treat <design.hls> as a
//                          RUNNING system and apply the sidecar delta
//                          (modulo/repair.h format: add/remove process,
//                          retime, period, deadline, group). In-process the
//                          base is solved (or warm-started from
//                          --cache-dir) and then repaired; with --connect
//                          the delta rides in the request and the daemon
//                          must still hold the base schedule (an evicted or
//                          never-solved base is a typed `unknown-base`
//                          rejection). All outputs (--table, --json, ...)
//                          describe the repaired post-delta system
//   --fuzz-repair <n>[:<seed>]
//                          perturb-then-repair campaign: n random systems,
//                          each solved, perturbed by a random delta and
//                          repaired; a repair that fails where a fresh
//                          solve succeeds (or certifies dirty) is a
//                          divergence, shrunk to a .hls + .delta repro pair
//   --connect <sock>       submit the design (or the whole --batch
//                          directory) to a running mshlsd daemon instead
//                          of scheduling in-process; the response payload
//                          is the daemon's deterministic JSON report
//                          (printed, or written with --json <file>)
//   --timeout-ms <n>       per-job wall-clock budget sent with --connect
//                          submissions (0 = server default)
//   --cache-dir <dir>      persistent schedule cache: one-shot runs and
//                          batches warm-start from results of earlier
//                          processes that used the same directory
//   --cache-budget-mb <n>  size budget for --cache-dir (default 256)
//   --trace <file>         write a Chrome trace_event JSON of the run
//                          (open in Perfetto / chrome://tracing). Uses the
//                          logical clock: the file is bit-identical for any
//                          --jobs value
//   --trace-wall <file>    the same trace on the wall clock (real
//                          timestamps; NOT deterministic across runs)
//   --metrics <file>       write the stable metric counters as JSON
//                          (deterministic semantic totals only)
//   --stats                print all metrics (including timing ones) and a
//                          per-track trace summary to stdout at exit
//   --version              print the build stamp and exit
//
// Exit code 0 on success (including a conflict-free simulation and a
// detected injected fault), 1 on any error, violation or missed fault.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bind/area_report.h"
#include "bind/binding.h"
#include "common/build_info.h"
#include "common/text_table.h"
#include "dfg/dot_export.h"
#include "engine/job.h"
#include "engine/job_service.h"
#include "frontend/lowering.h"
#include "fuzz/fuzzer.h"
#include "fuzz/perturb.h"
#include "modulo/repair.h"
#include "modulo/assignment_search.h"
#include "modulo/baseline.h"
#include "modulo/coupled_scheduler.h"
#include "modulo/hierarchy.h"
#include "modulo/period_search.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "report/experiment_report.h"
#include "report/gantt.h"
#include "report/json_export.h"
#include "modulo/schedule_cache.h"
#include "rtl/verilog_gen.h"
#include "serve/client.h"
#include "serve/disk_cache.h"
#include "serve/protocol.h"
#include "sim/simulator.h"
#include "verify/certifier.h"
#include "verify/fault_injection.h"

using namespace mshls;

namespace {

struct Args {
  std::string input;
  std::string repair_delta_file;
  std::string fuzz_repair_spec;
  bool search_periods = false;
  bool search_assignments = false;
  bool local = false;
  bool table = false;
  bool gantt = false;
  std::string dot_dir;
  std::string rtl_file;
  std::string json_file;
  int simulate = 0;
  std::uint64_t seed = 1;
  int jobs = 1;
  std::string batch_dir;
  bool verify = false;
  std::string inject_fault;
  std::string fuzz_spec;
  std::string fuzz_large_spec;
  std::string fuzz_dir = "fuzz-repros";
  int clusters = 0;
  PeriodConfigurator configurator = PeriodConfigurator::kHarmonic;
  std::string trace_file;
  std::string trace_wall_file;
  std::string metrics_file;
  bool stats = false;
  std::string connect_sock;
  long timeout_ms = 0;
  std::string cache_dir;
  long cache_budget_mb = 256;
};

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <design.hls> [--search-periods] "
               "[--search-assignments] [--local] [--table] [--gantt] "
               "[--dot <dir>] [--rtl <file>] [--json <file>] [--simulate <n>] [--seed <s>]\n"
               "       [--jobs <n>] [--verify] [--inject-fault <kind>[:<seed>]]\n"
               "       (flags and the design path may come in any order)\n"
               "   or: %s <design.hls> --repair <delta-file> [output flags]\n"
               "   or: %s --batch <dir> [--jobs <n>] [mode flags] [--simulate <n>]\n"
               "   or: %s --fuzz <n>[:<seed>] [--jobs <n>] "
               "[--inject-fault <spec>] [--fuzz-dir <dir>]\n"
               "   or: %s --fuzz-large <n>[:<seed>] [--jobs <n>] "
               "[--clusters <n>] [--fuzz-dir <dir>]\n"
               "   or: %s --fuzz-repair <n>[:<seed>] [--jobs <n>] "
               "[--fuzz-dir <dir>]\n"
               "scaling (coupled mode): [--clusters <n>]; searches: "
               "[--configurator harmonic|exhaustive]\n"
               "   or: %s <design.hls> --connect <sock> [mode flags] "
               "[--repair <delta-file>] [--timeout-ms <n>] [--json <file>]\n"
               "caching (single/batch): [--cache-dir <dir>] "
               "[--cache-budget-mb <n>]\n"
               "observability (any mode): [--trace <file>] "
               "[--trace-wall <file>] [--metrics <file>] [--stats]\n"
               "   or: %s --version\n",
               argv0, argv0, argv0, argv0, argv0, argv0, argv0, argv0);
  return 1;
}

bool ParseArgs(int argc, char** argv, Args* args) {
  if (argc < 2) return false;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    // The first non-flag token anywhere on the line is the design path —
    // flags may precede it (`mshlsc --verify d.hls` works).
    if (flag.rfind("--", 0) != 0) {
      if (!args->input.empty()) {
        std::fprintf(stderr, "two inputs given: '%s' and '%s'\n",
                     args->input.c_str(), flag.c_str());
        return false;
      }
      args->input = flag;
      continue;
    }
    if (flag == "--search-periods") args->search_periods = true;
    else if (flag == "--search-assignments") args->search_assignments = true;
    else if (flag == "--local") args->local = true;
    else if (flag == "--table") args->table = true;
    else if (flag == "--gantt") args->gantt = true;
    else if (flag == "--dot") {
      const char* v = next();
      if (!v) return false;
      args->dot_dir = v;
    } else if (flag == "--rtl") {
      const char* v = next();
      if (!v) return false;
      args->rtl_file = v;
    } else if (flag == "--json") {
      const char* v = next();
      if (!v) return false;
      args->json_file = v;
    } else if (flag == "--simulate") {
      const char* v = next();
      if (!v) return false;
      args->simulate = std::atoi(v);
    } else if (flag == "--seed") {
      const char* v = next();
      if (!v) return false;
      args->seed = std::strtoull(v, nullptr, 10);
    } else if (flag == "--jobs") {
      const char* v = next();
      if (!v) return false;
      args->jobs = std::atoi(v);
      if (args->jobs < 1) return false;
    } else if (flag == "--batch") {
      const char* v = next();
      if (!v) return false;
      args->batch_dir = v;
    } else if (flag == "--verify") {
      args->verify = true;
    } else if (flag == "--inject-fault") {
      const char* v = next();
      if (!v) return false;
      args->inject_fault = v;
    } else if (flag == "--fuzz") {
      const char* v = next();
      if (!v) return false;
      args->fuzz_spec = v;
    } else if (flag == "--fuzz-large") {
      const char* v = next();
      if (!v) return false;
      args->fuzz_large_spec = v;
    } else if (flag == "--fuzz-dir") {
      const char* v = next();
      if (!v) return false;
      args->fuzz_dir = v;
    } else if (flag == "--clusters") {
      const char* v = next();
      if (!v) return false;
      args->clusters = std::atoi(v);
      if (args->clusters < 1) return false;
    } else if (flag == "--configurator") {
      const char* v = next();
      if (!v) return false;
      if (std::strcmp(v, "harmonic") == 0) {
        args->configurator = PeriodConfigurator::kHarmonic;
      } else if (std::strcmp(v, "exhaustive") == 0) {
        args->configurator = PeriodConfigurator::kExhaustive;
      } else {
        std::fprintf(stderr,
                     "--configurator: '%s' is not harmonic|exhaustive\n", v);
        return false;
      }
    } else if (flag == "--repair") {
      const char* v = next();
      if (!v) return false;
      args->repair_delta_file = v;
    } else if (flag == "--fuzz-repair") {
      const char* v = next();
      if (!v) return false;
      args->fuzz_repair_spec = v;
    } else if (flag == "--trace") {
      const char* v = next();
      if (!v) return false;
      args->trace_file = v;
    } else if (flag == "--trace-wall") {
      const char* v = next();
      if (!v) return false;
      args->trace_wall_file = v;
    } else if (flag == "--metrics") {
      const char* v = next();
      if (!v) return false;
      args->metrics_file = v;
    } else if (flag == "--stats") {
      args->stats = true;
    } else if (flag == "--connect") {
      const char* v = next();
      if (!v) return false;
      args->connect_sock = v;
    } else if (flag == "--timeout-ms") {
      const char* v = next();
      if (!v) return false;
      args->timeout_ms = std::atol(v);
      if (args->timeout_ms < 0) return false;
    } else if (flag == "--cache-dir") {
      const char* v = next();
      if (!v) return false;
      args->cache_dir = v;
    } else if (flag == "--cache-budget-mb") {
      const char* v = next();
      if (!v) return false;
      args->cache_budget_mb = std::atol(v);
      if (args->cache_budget_mb < 0) return false;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", flag.c_str());
      return false;
    }
  }
  // Exactly one job source: a design, a batch directory, or a campaign.
  const int sources = (!args->input.empty() ? 1 : 0) +
                      (!args->batch_dir.empty() ? 1 : 0) +
                      (!args->fuzz_spec.empty() ? 1 : 0) +
                      (!args->fuzz_large_spec.empty() ? 1 : 0) +
                      (!args->fuzz_repair_spec.empty() ? 1 : 0);
  if (sources != 1) {
    if (sources > 1)
      std::fprintf(stderr,
                   "give exactly one of: <design.hls>, --batch, --fuzz, "
                   "--fuzz-large, --fuzz-repair\n");
    return false;
  }
  if (args->clusters > 0 &&
      (args->local || args->search_periods || args->search_assignments ||
       !args->repair_delta_file.empty())) {
    std::fprintf(stderr,
                 "--clusters applies to the plain coupled mode; drop "
                 "--local / --search-* / --repair\n");
    return false;
  }
  if (!args->repair_delta_file.empty()) {
    if (args->input.empty()) {
      std::fprintf(stderr, "--repair needs a single <design.hls> input\n");
      return false;
    }
    if (args->local || args->search_periods || args->search_assignments) {
      std::fprintf(stderr,
                   "--repair implies the coupled mode; drop --local / "
                   "--search-* (the repair ladder relaxes periods on its "
                   "own when it must)\n");
      return false;
    }
  }
  return true;
}

JobMode ModeFromArgs(const Args& args) {
  if (args.local) return JobMode::kLocalBaseline;
  if (args.search_assignments) return JobMode::kSearchAssignments;
  if (args.search_periods) return JobMode::kSearchPeriods;
  return JobMode::kCoupled;
}

/// Turns recording on for the whole run when any observability output was
/// requested, and exports/prints everything on destruction — which runs on
/// every exit path of main, so early `return 1`s still leave a usable
/// trace behind.
class ObsSession {
 public:
  explicit ObsSession(const Args& args)
      : trace_file_(args.trace_file),
        trace_wall_file_(args.trace_wall_file),
        metrics_file_(args.metrics_file),
        stats_(args.stats),
        active_(!args.trace_file.empty() || !args.trace_wall_file.empty() ||
                !args.metrics_file.empty() || args.stats) {
    if (!active_) return;
    if (!obs::kCompiledIn)
      std::fprintf(stderr,
                   "warning: probes were compiled out (MSHLS_TRACE=OFF); "
                   "traces and metrics will be empty\n");
    obs::MetricsRegistry::Global().Reset();
    obs::SetEnabled(true);
    obs::InstallGlobalTracer(&tracer_);
  }

  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  ~ObsSession() {
    if (!active_) return;
    obs::UninstallGlobalTracer();
    obs::SetEnabled(false);
    WriteIfSet(trace_file_, tracer_.ToChromeJson(obs::TraceClock::kLogical));
    WriteIfSet(trace_wall_file_,
               tracer_.ToChromeJson(obs::TraceClock::kWall));
    WriteIfSet(metrics_file_,
               obs::MetricsRegistry::Global().ToJson(
                   /*include_timing=*/false));
    if (stats_) {
      std::printf("\n--- metrics ---\n%s",
                  obs::MetricsRegistry::Global().RenderText().c_str());
      std::printf("\n--- trace summary (%lld events) ---\n%s",
                  tracer_.TotalEvents(), tracer_.SummaryText().c_str());
    }
  }

 private:
  static void WriteIfSet(const std::string& path, std::string&& content) {
    if (path.empty()) return;
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return;
    }
    out << content;
    std::printf("wrote %s\n", path.c_str());
  }

  std::string trace_file_;
  std::string trace_wall_file_;
  std::string metrics_file_;
  bool stats_;
  bool active_;
  obs::Tracer tracer_;
};

/// Input files larger than this are presumed not to be hand-written DSL
/// sources and are skipped with a warning row (keeps a stray binary or log
/// file in the batch directory from ballooning the parser).
constexpr std::uintmax_t kMaxBatchFileBytes = 4u << 20;  // 4 MiB

/// --connect: submit to a running mshlsd instead of scheduling in-process.
/// One design (payload printed / --json'd) or a whole --batch directory
/// (sequential submissions over one connection, compact per-file lines).
int RunConnect(const Args& args) {
  namespace fs = std::filesystem;
  if (!args.cache_dir.empty())
    std::fprintf(stderr,
                 "note: --cache-dir is ignored with --connect (the daemon "
                 "owns the persistent cache)\n");
  std::vector<fs::path> inputs;
  if (!args.batch_dir.empty()) {
    std::error_code ec;
    fs::directory_iterator it(args.batch_dir, ec);
    if (ec) {
      std::fprintf(stderr, "cannot read directory %s: %s\n",
                   args.batch_dir.c_str(), ec.message().c_str());
      return 1;
    }
    for (const fs::directory_entry& entry : it) {
      std::error_code entry_ec;
      if (!entry.is_regular_file(entry_ec) || entry_ec) continue;
      if (entry.path().extension() == ".hls") inputs.push_back(entry.path());
    }
    std::sort(inputs.begin(), inputs.end());
    if (inputs.empty()) {
      std::fprintf(stderr, "no .hls files under %s\n", args.batch_dir.c_str());
      return 1;
    }
  } else if (!args.input.empty()) {
    inputs.emplace_back(args.input);
  } else {
    std::fprintf(stderr, "--connect needs <design.hls> or --batch <dir>\n");
    return 1;
  }
  const bool single = args.batch_dir.empty();

  std::string delta_text;
  if (!args.repair_delta_file.empty()) {
    if (!single) {
      std::fprintf(stderr, "--repair does not combine with --batch\n");
      return 1;
    }
    std::ifstream delta_in(args.repair_delta_file);
    std::ostringstream delta_buf;
    delta_buf << delta_in.rdbuf();
    if (!delta_in) {
      std::fprintf(stderr, "cannot open %s\n",
                   args.repair_delta_file.c_str());
      return 1;
    }
    delta_text = delta_buf.str();
    if (delta_text.empty()) {
      std::fprintf(stderr, "%s: empty delta\n",
                   args.repair_delta_file.c_str());
      return 1;
    }
  }

  serve::Client client;
  if (Status s = client.Connect(args.connect_sock); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.message().c_str());
    return 1;
  }

  int failures = 0;
  for (const fs::path& path : inputs) {
    const std::string name = path.filename().string();
    std::ifstream in(path);
    std::ostringstream buf;
    buf << in.rdbuf();
    if (!in) {
      std::fprintf(stderr, "%s: unreadable\n", name.c_str());
      ++failures;
      continue;
    }
    serve::ServeRequest request;
    request.mode = ModeFromArgs(args);
    request.timeout_ms = static_cast<std::uint32_t>(args.timeout_ms);
    request.source = buf.str();
    request.delta = delta_text;
    auto response_or = client.Submit(request);
    if (!response_or.ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(),
                   response_or.status().message().c_str());
      ++failures;
      // Transport-level rejections close the connection server-side;
      // without one there is nothing to resynchronize against.
      break;
    }
    const serve::ServeResponse& response = response_or.value();
    if (response.status != serve::ServeStatus::kOk) {
      std::fprintf(stderr, "%s: %s: %s\n", name.c_str(),
                   serve::ServeStatusName(response.status),
                   response.payload.c_str());
      ++failures;
      continue;
    }
    std::printf("%s: ok evaluated=%u cache=%s%s\n", name.c_str(),
                response.evaluated,
                response.cache_hit() ? "hit" : "miss",
                response.store_hit() ? " (persistent)" : "");
    if (single) {
      if (!args.json_file.empty()) {
        std::ofstream out(args.json_file);
        if (!out) {
          std::fprintf(stderr, "cannot write %s\n", args.json_file.c_str());
          return 1;
        }
        out << response.payload;
        std::printf("wrote %s\n", args.json_file.c_str());
      } else {
        std::printf("%s\n", response.payload.c_str());
      }
    }
  }
  if (!single)
    std::printf("submitted %zu design(s): %zu ok, %d failed\n", inputs.size(),
                inputs.size() - static_cast<std::size_t>(failures), failures);
  return failures == 0 ? 0 : 1;
}

/// Opens the --cache-dir persistent store; null when the flag is unset.
/// `*ok` turns false (with a message) when the directory cannot be used.
std::unique_ptr<serve::DiskCache> OpenDiskCache(const Args& args, bool* ok) {
  *ok = true;
  if (args.cache_dir.empty()) return nullptr;
  serve::DiskCacheOptions options;
  options.dir = args.cache_dir;
  options.max_bytes = static_cast<std::uint64_t>(args.cache_budget_mb) << 20;
  auto disk = std::make_unique<serve::DiskCache>(options);
  if (Status s = disk->Open(); !s.ok()) {
    std::fprintf(stderr, "cannot open cache dir: %s\n", s.message().c_str());
    *ok = false;
    return nullptr;
  }
  return disk;
}

void PrintDiskCacheStats(const serve::DiskCache& disk) {
  const serve::DiskCacheStats ds = disk.stats();
  std::printf("persistent cache: %lld hit(s) / %lld lookup(s), "
              "%lld insertion(s), %lld eviction(s), %lld skipped\n",
              ds.hits, ds.hits + ds.misses, ds.insertions, ds.evictions,
              ds.skipped_corrupt + ds.skipped_version);
}

/// --batch: every *.hls under the directory becomes one SchedulingJob; the
/// batch fans out over --jobs workers sharing one schedule cache. The scan
/// is defensive: entries that vanish, cannot be read or exceed the size cap
/// become per-file warning rows instead of aborting the whole batch.
int RunBatch(const Args& args, serve::DiskCache* disk) {
  namespace fs = std::filesystem;
  std::vector<fs::path> inputs;
  std::error_code ec;
  fs::directory_iterator it(args.batch_dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot read directory %s: %s\n",
                 args.batch_dir.c_str(), ec.message().c_str());
    return 1;
  }
  for (const fs::directory_entry& entry : it) {
    std::error_code entry_ec;
    if (!entry.is_regular_file(entry_ec) || entry_ec) continue;
    if (entry.path().extension() == ".hls") inputs.push_back(entry.path());
  }
  if (inputs.empty()) {
    std::fprintf(stderr, "no .hls files under %s\n", args.batch_dir.c_str());
    return 1;
  }
  std::sort(inputs.begin(), inputs.end());

  // Rows rejected by the scan keep their position in the (sorted) report
  // but never reach the job service.
  std::vector<JobResult> skipped;
  std::vector<SchedulingJob> jobs;
  for (const fs::path& path : inputs) {
    const std::string name = path.filename().string();
    std::error_code size_ec;
    const std::uintmax_t bytes = fs::file_size(path, size_ec);
    if (!size_ec && bytes > kMaxBatchFileBytes) {
      JobResult r;
      r.name = name;
      r.status = Status{StatusCode::kInvalidArgument,
                        "skipped: " + std::to_string(bytes) +
                            " bytes exceeds the " +
                            std::to_string(kMaxBatchFileBytes) +
                            "-byte batch cap"};
      skipped.push_back(std::move(r));
      continue;
    }
    std::ifstream in(path);
    std::ostringstream buf;
    buf << in.rdbuf();
    if (!in) {
      JobResult r;
      r.name = name;
      r.status = Status{StatusCode::kInvalidArgument,
                        "skipped: file is unreadable"};
      skipped.push_back(std::move(r));
      continue;
    }
    SchedulingJob job;
    job.name = name;
    job.source = buf.str();
    job.mode = ModeFromArgs(args);
    job.simulate_activations = args.simulate;
    jobs.push_back(std::move(job));
  }
  for (const JobResult& r : skipped)
    std::fprintf(stderr, "warning: %s: %s\n", r.name.c_str(),
                 r.status.message().c_str());

  std::vector<JobResult> results;
  CacheStats cache_stats;
  if (!jobs.empty()) {
    JobServiceOptions service_options;
    service_options.workers = args.jobs;
    service_options.store = disk;
    JobService service(service_options);
    std::printf("batch: %zu design(s), %d worker(s), mode %s\n", jobs.size(),
                service.workers(), JobModeName(jobs.front().mode));
    results = service.RunBatch(std::move(jobs));
    cache_stats = service.cache_stats();
  }
  // Merge the warning rows back in name order (inputs were sorted, and the
  // service returns results in submission order).
  results.insert(results.end(), std::make_move_iterator(skipped.begin()),
                 std::make_move_iterator(skipped.end()));
  std::sort(results.begin(), results.end(),
            [](const JobResult& a, const JobResult& b) {
              return a.name < b.name;
            });

  TextTable table;
  table.SetHeader({"design", "code", "rung", "detail", "FU area", "full area",
                   "evals", "hit %", "ms"});
  for (std::size_t c = 4; c < 9; ++c) table.AlignRight(c);
  int failures = 0;
  for (const JobResult& r : results) {
    if (!r.status.ok()) ++failures;
    const double hit_pct =
        r.evaluated == 0
            ? 0.0
            : 100.0 * static_cast<double>(r.cache_hits) /
                  static_cast<double>(r.evaluated);
    table.AddRow({r.name,
                  r.status.ok() ? "ok" : StatusCodeName(r.status.code()),
                  r.status.ok() ? DegradationRungName(r.rung) : "-",
                  r.status.ok() ? "" : r.status.message(),
                  r.status.ok() ? std::to_string(r.area) : "-",
                  r.status.ok() ? FormatDouble(r.full_area, 1) : "-",
                  r.status.ok() ? std::to_string(r.evaluated) : "-",
                  r.status.ok() && r.evaluated > 0 ? FormatDouble(hit_pct, 0)
                                                   : "-",
                  FormatDouble(r.wall_ms, 0)});
  }
  std::printf("%s", table.Render().c_str());

  const BatchSummary summary = SummarizeBatch(results, cache_stats);
  std::printf("summary: %zu ok / %zu failed of %zu; rungs:", summary.succeeded,
              summary.failed, summary.total);
  for (std::size_t i = 0; i < kDegradationRungCount; ++i)
    std::printf(" %s=%zu",
                DegradationRungName(static_cast<DegradationRung>(i)),
                summary.rung_counts[i]);
  std::printf(" (%zu attempt(s))\n", summary.attempts);
  std::printf("search candidates: %ld scheduled, %ld cache hit(s) "
              "(%.0f%% hit rate)\n",
              summary.evaluated, summary.cache_hits, 100 * summary.HitRate());
  std::printf("schedule cache: %ld hit(s) / %ld lookup(s), %ld insertion(s), "
              "%ld eviction(s)\n",
              summary.cache.hits, summary.cache.hits + summary.cache.misses,
              summary.cache.insertions, summary.cache.evictions);
  if (disk != nullptr) PrintDiskCacheStats(*disk);
  if (failures > 0)
    std::fprintf(stderr, "%d of %zu design(s) failed\n", failures,
                 results.size());
  return failures == 0 ? 0 : 1;
}

/// --fuzz: the generative differential campaign (src/fuzz). Every case line
/// and the summary are deterministic per (spec, flags) — timings stay out of
/// the log on purpose so two runs diff clean.
int RunFuzzMode(const Args& args) {
  FuzzOptions options;
  options.jobs = args.jobs;
  options.repro_dir = args.fuzz_dir;
  if (Status st = ParseFuzzSpec(args.fuzz_spec, &options.cases, &options.seed);
      !st.ok()) {
    std::fprintf(stderr, "--fuzz: %s\n", st.ToString().c_str());
    return 1;
  }
  if (!args.inject_fault.empty()) {
    auto plan_or = ParseFaultSpec(args.inject_fault);
    if (!plan_or.ok()) {
      std::fprintf(stderr, "--inject-fault: %s\n",
                   plan_or.status().ToString().c_str());
      return 1;
    }
    options.inject = plan_or.value();
  }
  std::printf("fuzz: %d case(s), seed %llu, %d job(s)%s%s\n", options.cases,
              static_cast<unsigned long long>(options.seed), options.jobs,
              options.inject.has_value() ? ", injecting " : "",
              options.inject.has_value() ? args.inject_fault.c_str() : "");
  auto report_or = RunFuzz(options);
  if (!report_or.ok()) {
    std::fprintf(stderr, "fuzz failed: %s\n",
                 report_or.status().ToString().c_str());
    return 1;
  }
  const FuzzReport& report = report_or.value();
  for (const std::string& line : report.log)
    std::printf("%s\n", line.c_str());
  std::printf("%s\n", report.Summary().c_str());
  if (!report.ok()) {
    std::fprintf(stderr, "FUZZ FAILURES: %d case(s)%s\n", report.failures,
                 report.inject_mode && report.inject_caught == 0
                     ? " (and no injected fault was ever caught)"
                     : "");
    return 1;
  }
  return 0;
}

/// --fuzz-large: the scaling campaign. Same driver as --fuzz but the
/// generator is tuned for hierarchical cluster territory (30-80 processes,
/// dense sharing groups) and only the oracles that scale run: certificate
/// (every feasible schedule certifies; negatives flag cleanly) and
/// cache/parallel replay. The exact branch-and-bound and metamorphic
/// re-schedules are sized for small instances and are skipped.
int RunFuzzLargeMode(const Args& args) {
  FuzzOptions options;
  options.jobs = args.jobs;
  options.repro_dir = args.fuzz_dir;
  if (Status st =
          ParseFuzzSpec(args.fuzz_large_spec, &options.cases, &options.seed);
      !st.ok()) {
    std::fprintf(stderr, "--fuzz-large: %s\n", st.ToString().c_str());
    return 1;
  }
  options.gen.min_processes = 30;
  options.gen.max_processes = 80;
  options.gen.max_blocks_per_process = 1;
  options.gen.max_ops_per_block = 8;
  options.gen.share_probability = 0.9;  // clustered sharing is the point
  options.oracles.run_exact = false;
  options.oracles.run_metamorphic = false;
  // Large shrinks are slow and the repro value is low (the seed replays).
  options.shrink = false;
  std::printf("fuzz-large: %d case(s), seed %llu, %d job(s)\n", options.cases,
              static_cast<unsigned long long>(options.seed), options.jobs);
  auto report_or = RunFuzz(options);
  if (!report_or.ok()) {
    std::fprintf(stderr, "fuzz-large failed: %s\n",
                 report_or.status().ToString().c_str());
    return 1;
  }
  const FuzzReport& report = report_or.value();
  for (const std::string& line : report.log)
    std::printf("%s\n", line.c_str());
  std::printf("%s\n", report.Summary().c_str());
  if (!report.ok()) {
    std::fprintf(stderr, "FUZZ-LARGE FAILURES: %d case(s)\n", report.failures);
    return 1;
  }
  return 0;
}

/// --fuzz-repair: the perturb-then-repair campaign (src/fuzz/perturb.h).
/// Same determinism contract as --fuzz: the log and summary are
/// byte-identical per (spec, --jobs) across runs and widths.
int RunPerturbFuzzMode(const Args& args) {
  FuzzOptions options;
  options.jobs = args.jobs;
  options.repro_dir = args.fuzz_dir;
  if (Status st =
          ParseFuzzSpec(args.fuzz_repair_spec, &options.cases, &options.seed);
      !st.ok()) {
    std::fprintf(stderr, "--fuzz-repair: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("fuzz-repair: %d case(s), seed %llu, %d job(s)\n",
              options.cases, static_cast<unsigned long long>(options.seed),
              options.jobs);
  auto report_or = RunPerturbFuzz(options);
  if (!report_or.ok()) {
    std::fprintf(stderr, "fuzz-repair failed: %s\n",
                 report_or.status().ToString().c_str());
    return 1;
  }
  const PerturbReport& report = report_or.value();
  for (const std::string& line : report.log)
    std::printf("%s\n", line.c_str());
  std::printf("%s\n", report.Summary().c_str());
  if (!report.ok()) {
    std::fprintf(stderr, "REPAIR DIVERGENCES: %d case(s)\n",
                 report.divergences);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--version") == 0) {
      std::printf("%s\n", BuildInfoString().c_str());
      return 0;
    }

  Args args;
  if (!ParseArgs(argc, argv, &args)) return Usage(argv[0]);

  ObsSession obs_session(args);
  if (!args.connect_sock.empty()) return RunConnect(args);
  if (!args.fuzz_spec.empty()) return RunFuzzMode(args);
  if (!args.fuzz_large_spec.empty()) return RunFuzzLargeMode(args);
  if (!args.fuzz_repair_spec.empty()) return RunPerturbFuzzMode(args);
  bool disk_ok = true;
  std::unique_ptr<serve::DiskCache> disk = OpenDiskCache(args, &disk_ok);
  if (!disk_ok) return 1;
  if (!args.batch_dir.empty()) return RunBatch(args, disk.get());

  std::ifstream in(args.input);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", args.input.c_str());
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();

  auto model_or = CompileSystem(buf.str());
  if (!model_or.ok()) {
    std::fprintf(stderr, "%s: %s\n", args.input.c_str(),
                 model_or.status().ToString().c_str());
    return 1;
  }
  SystemModel model = std::move(model_or).value();
  std::printf("compiled %s: %zu process(es), %zu block(s), %zu resource "
              "type(s)\n",
              args.input.c_str(), model.process_count(), model.block_count(),
              model.library().size());

  // Schedule per the requested mode.
  CoupledResult result;
  if (!args.repair_delta_file.empty()) {
    // Online repair: the input is the RUNNING base system. The engine job
    // solves (or warm-starts) the base, applies the sidecar delta and
    // walks the certificate-gated repair ladder; everything below (table,
    // gantt, rtl, json, simulate) then describes the repaired post-delta
    // system.
    std::ifstream delta_in(args.repair_delta_file);
    std::ostringstream delta_buf;
    delta_buf << delta_in.rdbuf();
    if (!delta_in) {
      std::fprintf(stderr, "cannot open %s\n",
                   args.repair_delta_file.c_str());
      return 1;
    }
    SchedulingJob job;
    job.name = args.input;
    job.model = model;
    job.mode = JobMode::kCoupled;
    job.jobs = args.jobs;
    job.keep_model = true;
    job.store = disk.get();
    RepairRequest repair;
    repair.delta_source = delta_buf.str();
    repair.solve_base_if_missing = true;  // the CLI owns no daemon cache
    job.repair = std::move(repair);
    JobResult jr = RunSchedulingJob(job);
    if (!jr.status.ok()) {
      std::fprintf(stderr, "repair failed: %s\n",
                   jr.status.ToString().c_str());
      return 1;
    }
    std::printf("repair: rung %s after %zu attempt(s)%s\n",
                RepairRungName(jr.repair_rung), jr.repair_attempts.size(),
                jr.store_hits > 0 ? " (warm-started from the persistent "
                                    "cache)"
                                  : "");
    model = *jr.model;  // the post-delta (possibly period-relaxed) system
    result = std::move(jr.result);
  } else if (args.local) {
    if (disk != nullptr)
      std::fprintf(stderr,
                   "note: --cache-dir is ignored in --local mode (the "
                   "baseline is not cached)\n");
    auto run = ScheduleLocalBaseline(model, CoupledParams{});
    if (!run.ok()) {
      std::fprintf(stderr, "scheduling failed: %s\n",
                   run.status().ToString().c_str());
      return 1;
    }
    result = std::move(run).value();
    std::printf("mode: traditional pure-local scheduling\n");
  } else if (args.search_assignments) {
    AssignmentSearchOptions search_options;
    search_options.configurator = args.configurator;
    search_options.jobs = args.jobs;
    search_options.store = disk.get();
    auto search = SearchAssignments(model, CoupledParams{}, search_options);
    if (!search.ok()) {
      std::fprintf(stderr, "assignment search failed: %s\n",
                   search.status().ToString().c_str());
      return 1;
    }
    std::printf("assignment search: %ld combinations, best area %d\n",
                search.value().combinations, search.value().area);
    for (const AssignmentChoice& c : search.value().choices)
      std::printf("  %-8s -> %s%s\n",
                  model.library().type(c.type).name.c_str(),
                  c.global ? "global, period " : "local",
                  c.global ? std::to_string(c.period).c_str() : "");
    result = std::move(search.value().best);
  } else if (args.search_periods) {
    PeriodSearchOptions search_options;
    search_options.configurator = args.configurator;
    search_options.jobs = args.jobs;
    search_options.store = disk.get();
    auto search = SearchPeriods(model, CoupledParams{}, search_options);
    if (!search.ok()) {
      std::fprintf(stderr, "period search failed: %s\n",
                   search.status().ToString().c_str());
      return 1;
    }
    std::printf("period search: %ld combinations, %ld filtered (eq. 3), "
                "%ld scheduled\n",
                search.value().combinations, search.value().filtered_out,
                search.value().evaluated);
    result = std::move(search.value().best);
  } else if (args.clusters > 0) {
    HierarchyOptions hierarchy;
    hierarchy.max_cluster_processes = args.clusters;
    hierarchy.jobs = args.jobs;
    hierarchy.store = disk.get();
    auto run = ScheduleHierarchical(model, CoupledParams{}, hierarchy);
    if (!run.ok()) {
      std::fprintf(stderr, "hierarchical scheduling failed: %s\n",
                   run.status().ToString().c_str());
      return 1;
    }
    HierarchicalResult h = std::move(run).value();
    std::printf("hierarchical: %lld cluster(s), %lld cut pool(s), "
                "%lld reconcile adoption(s), %lld certificate(s)\n",
                h.stats.clusters, h.stats.cut_types, h.stats.reconcile_adopted,
                h.stats.certified);
    result.schedule = std::move(h.schedule);
    result.allocation = std::move(h.allocation);
    result.iterations = h.iterations;
  } else if (disk != nullptr) {
    // The persistent store sits behind a throwaway memory tier: a repeat
    // of a design scheduled by any earlier process (or daemon) sharing
    // the cache directory is decoded + re-validated instead of re-solved.
    CoupledParams coupled_params;
    coupled_params.jobs = args.jobs;
    ScheduleCache cache;
    bool store_hit = false;
    auto run = ScheduleWithCache(model, coupled_params, &cache,
                                 /*cache_hit=*/nullptr, disk.get(), &store_hit);
    if (!run.ok()) {
      std::fprintf(stderr, "scheduling failed: %s\n",
                   run.status().ToString().c_str());
      return 1;
    }
    result = std::move(run).value();
    if (store_hit)
      std::printf("schedule warm-started from the persistent cache\n");
  } else {
    CoupledParams coupled_params;
    coupled_params.jobs = args.jobs;
    CoupledScheduler scheduler(model, coupled_params);
    auto run = scheduler.Run();
    if (!run.ok()) {
      std::fprintf(stderr, "scheduling failed: %s\n",
                   run.status().ToString().c_str());
      return 1;
    }
    result = std::move(run).value();
  }
  std::printf("allocation: %s  (%d iterations)\n",
              SummarizeAllocation(model, result.allocation).c_str(),
              result.iterations);
  if (disk != nullptr) PrintDiskCacheStats(*disk);

  if (args.table)
    std::printf("\n%s", RenderTable1(model, result).c_str());

  // Binding (needed by gantt/rtl).
  auto binding = BindSystem(model, result.schedule, result.allocation);
  if (!binding.ok()) {
    std::fprintf(stderr, "binding failed: %s\n",
                 binding.status().ToString().c_str());
    return 1;
  }
  const AreaBreakdown area = ComputeAreaBreakdown(
      model, result.schedule, result.allocation, binding.value());
  std::printf("full area (FUs + registers + muxes): %.2f\n", area.total_area);

  if (args.verify) {
    const CertificateReport report = CertifySchedule(
        model, result.schedule, result.allocation, &binding.value());
    std::printf("%s", report.ToString(model).c_str());
    if (!report.ok()) return 1;
  }

  if (!args.inject_fault.empty()) {
    auto plan_or = ParseFaultSpec(args.inject_fault);
    if (!plan_or.ok()) {
      std::fprintf(stderr, "--inject-fault: %s\n",
                   plan_or.status().ToString().c_str());
      return 1;
    }
    SystemSchedule bad_schedule = result.schedule;
    Allocation bad_allocation = result.allocation;
    SystemBinding bad_binding = binding.value();
    auto fault_or = InjectFault(plan_or.value(), model, bad_schedule,
                                bad_allocation, &bad_binding);
    if (!fault_or.ok()) {
      std::fprintf(stderr, "fault injection failed: %s\n",
                   fault_or.status().ToString().c_str());
      return 1;
    }
    std::printf("injected: %s\n", fault_or.value().description.c_str());
    const CertificateReport report =
        CertifySchedule(model, bad_schedule, bad_allocation, &bad_binding);
    std::printf("%s", report.ToString(model).c_str());
    if (!report.Has(fault_or.value().expected)) {
      std::fprintf(stderr, "FAULT MISSED: expected a %s violation\n",
                   ViolationKindName(fault_or.value().expected));
      return 1;
    }
    std::printf("fault detected (%s)\n",
                ViolationKindName(fault_or.value().expected));
  }

  if (args.gantt) {
    for (const Block& b : model.blocks())
      std::printf("\n%s",
                  RenderGantt(model, b.id, result.schedule, binding.value())
                      .c_str());
  }

  if (!args.dot_dir.empty()) {
    for (const Block& b : model.blocks()) {
      DotOptions options;
      options.type_label = [&](ResourceTypeId t) {
        return model.library().type(t).name;
      };
      const BlockSchedule* sched = &result.schedule.of(b.id);
      options.start_step = [sched](OpId op) { return sched->start(op); };
      const std::string path = args.dot_dir + "/" + b.name + ".dot";
      std::ofstream out(path);
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return 1;
      }
      out << ToDot(b.graph, b.name, options);
      std::printf("wrote %s\n", path.c_str());
    }
  }

  if (!args.rtl_file.empty()) {
    auto design = GenerateRtl(model, result.schedule, result.allocation,
                              binding.value());
    if (!design.ok()) {
      std::fprintf(stderr, "rtl failed: %s\n",
                   design.status().ToString().c_str());
      return 1;
    }
    std::ofstream out(args.rtl_file);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", args.rtl_file.c_str());
      return 1;
    }
    out << design.value().source;
    std::printf("wrote %s (%zu modules)\n", args.rtl_file.c_str(),
                design.value().module_names.size());
  }

  if (!args.json_file.empty()) {
    std::ofstream out(args.json_file);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", args.json_file.c_str());
      return 1;
    }
    out << ResultToJson(model, result);
    std::printf("wrote %s\n", args.json_file.c_str());
  }

  if (args.simulate > 0) {
    SystemSimulator sim(model, result.schedule, result.allocation);
    TraceOptions options;
    options.seed = args.seed;
    options.activations_per_process = args.simulate;
    const auto trace = RandomActivationTrace(model, options);
    const SimReport report = sim.Run(trace);
    std::printf("simulated %zu activations over %lld cycles: %s\n",
                trace.size(), static_cast<long long>(report.horizon),
                report.ok ? "conflict-free" : "CONFLICTS");
    if (!report.ok) {
      for (const SimViolation& v : report.violations)
        std::fprintf(stderr, "  t=%lld: %s\n",
                     static_cast<long long>(v.time), v.detail.c_str());
      return 1;
    }
  }
  return 0;
}
