// Strong identifier types used across the library.
//
// All entities (operations, resource types, processes, blocks, ...) are
// referred to by small dense integer ids. Wrapping them in distinct types
// prevents accidentally indexing one table with another table's id — a bug
// class that is otherwise very easy to hit in scheduler code where half a
// dozen id spaces are live at once.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>

namespace mshls {

/// CRTP-free strong id template. `Tag` only disambiguates the type.
template <typename Tag>
class StrongId {
 public:
  using value_type = std::int32_t;

  constexpr StrongId() = default;
  constexpr explicit StrongId(value_type v) : value_(v) {}

  /// Dense index value; asserts nothing — invalid() yields a negative value.
  [[nodiscard]] constexpr value_type value() const { return value_; }
  [[nodiscard]] constexpr std::size_t index() const {
    return static_cast<std::size_t>(value_);
  }
  [[nodiscard]] constexpr bool valid() const { return value_ >= 0; }

  [[nodiscard]] static constexpr StrongId invalid() { return StrongId{-1}; }

  friend constexpr auto operator<=>(StrongId, StrongId) = default;

 private:
  value_type value_ = -1;
};

struct OpIdTag {};
struct EdgeIdTag {};
struct ResourceTypeIdTag {};
struct ProcessIdTag {};
struct BlockIdTag {};
struct InstanceIdTag {};
struct RegisterIdTag {};
struct ValueIdTag {};

/// One operation node of a data-flow graph.
using OpId = StrongId<OpIdTag>;
/// One precedence edge of a data-flow graph.
using EdgeId = StrongId<EdgeIdTag>;
/// One resource (functional-unit) type of the resource library.
using ResourceTypeId = StrongId<ResourceTypeIdTag>;
/// One process of the system model.
using ProcessId = StrongId<ProcessIdTag>;
/// One block (statically scheduled region) of a process.
using BlockId = StrongId<BlockIdTag>;
/// One bound functional-unit instance.
using InstanceId = StrongId<InstanceIdTag>;
/// One allocated storage register.
using RegisterId = StrongId<RegisterIdTag>;
/// One data value (operation result) tracked by lifetime analysis.
using ValueId = StrongId<ValueIdTag>;

}  // namespace mshls

namespace std {
template <typename Tag>
struct hash<mshls::StrongId<Tag>> {
  size_t operator()(mshls::StrongId<Tag> id) const noexcept {
    return std::hash<typename mshls::StrongId<Tag>::value_type>{}(id.value());
  }
};
}  // namespace std
