# Empty compiler generated dependencies file for mshls_modulo.
# This may be replaced when dependencies are built.
