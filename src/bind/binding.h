// Operation -> functional-unit-instance binding.
//
// Completes the synthesis story below the scheduler: every operation is
// mapped onto a concrete unit instance such that no instance is ever
// claimed twice at the same absolute time, for any legal (grid-aligned,
// non-overlapping) activation of the processes.
//
//  * Local types: each process owns its instances; blocks of one process
//    never overlap (C2), so instances are assigned per block with a
//    classic earliest-start interval rule.
//  * Global types: the pool instances are partitioned per residue tau by
//    the authorization prefix sums — process u owns the index range
//    [sum_{v<u} A_v(tau), sum_{v<=u} A_v(tau)) whenever the absolute time
//    maps to tau. A physical instance thus serves different processes at
//    different residues, which is exactly the paper's sharing model; the
//    residue counter drives the input multiplexers (see rtl/).
//
// Limitation (documented): a *global* type whose dii > 1 spans several
// residues per issue and needs one instance entitled across all of them;
// the greedy binder reports kInfeasible if the prefix partition admits no
// such instance. The paper's experiments only share fully pipelined or
// unit-delay units (dii = 1), where the partition argument is exact.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "modulo/allocation.h"

namespace mshls {

struct InstanceInfo {
  InstanceId id;
  ResourceTypeId type;
  bool global = false;
  /// Owning process for local instances; invalid for pool instances.
  ProcessId owner;
  /// Index within its pool / process-local group.
  int local_index = 0;
  std::string name;
};

struct SystemBinding {
  std::vector<InstanceInfo> instances;
  /// op_instance[block][op] -> InstanceId.
  std::vector<std::vector<InstanceId>> op_instance;

  [[nodiscard]] InstanceId of(BlockId b, OpId op) const {
    return op_instance[b.index()][op.index()];
  }
  [[nodiscard]] const InstanceInfo& info(InstanceId id) const {
    return instances[id.index()];
  }
};

/// Binds every operation. `allocation` must come from ComputeAllocation on
/// the same schedule (or dominate it).
[[nodiscard]] StatusOr<SystemBinding> BindSystem(const SystemModel& model,
                                                 const SystemSchedule& schedule,
                                                 const Allocation& allocation);

/// Independent re-check of a binding: type compatibility, ownership
/// (local instances only used by their process; pool instances only within
/// entitled residue ranges) and intra-block overlap freedom.
[[nodiscard]] Status ValidateBinding(const SystemModel& model,
                                     const SystemSchedule& schedule,
                                     const Allocation& allocation,
                                     const SystemBinding& binding);

}  // namespace mshls
