#!/usr/bin/env bash
# Measures the disabled-path cost of the observability probes (DESIGN.md
# row 27): the acceptance bound is that a tree built with MSHLS_TRACE=ON
# but with recording left off (the shipping default) runs the C1 coupled
# ladder within 2% of a tree where the probes are compiled out entirely
# (-DMSHLS_TRACE=OFF). Every probe on the disabled path is one relaxed
# atomic load, so the two builds should be indistinguishable; this script
# proves it on real hardware rather than by inspection.
#
# Configures and builds two trees, then runs bench_coupled --json in both
# `rounds` times, strictly alternating (ON, OFF, ON, OFF, ...) so a slow
# phase of the machine hits both builds, and takes the per-workload
# MINIMUM of incremental_ms across rounds — the standard noise-robust
# wall-clock estimator (the minimum is the run least disturbed by
# scheduling/frequency noise; on shared containers single-shot runs of
# the *same binary* can differ by 20-40%, far above the bound being
# asserted). The joined minima land in BENCH_obs_overhead.json
# (mshls-bench-v1 envelope, experiment O1) and the aggregate overhead
# over the whole ladder is asserted under the bound.
#
# Usage: scripts/obs_overhead.sh [bound-pct] [jobs] [rounds]
#                                (default: 2 / nproc / 5)
set -euo pipefail

cd "$(dirname "$0")/.."
bound="${1:-2}"
jobs="${2:-$(nproc)}"
rounds="${3:-5}"

on_build="build-obs-on"
off_build="build-obs-off"

echo "==> MSHLS_TRACE=ON, recording off (${on_build})"
cmake -B "${on_build}" -S . -DMSHLS_TRACE=ON \
      -DCMAKE_BUILD_TYPE=Release > /dev/null
cmake --build "${on_build}" --target bench_coupled -j "${jobs}" > /dev/null

echo "==> MSHLS_TRACE=OFF, probes compiled out (${off_build})"
cmake -B "${off_build}" -S . -DMSHLS_TRACE=OFF \
      -DCMAKE_BUILD_TYPE=Release > /dev/null
cmake --build "${off_build}" --target bench_coupled -j "${jobs}" > /dev/null

on_files=()
off_files=()
for round in $(seq 1 "${rounds}"); do
  echo "==> measurement round ${round}/${rounds}"
  "${on_build}/bench/bench_coupled" \
      --json "${on_build}/coupled.${round}.json" > /dev/null
  "${off_build}/bench/bench_coupled" \
      --json "${off_build}/coupled.${round}.json" > /dev/null
  on_files+=("${on_build}/coupled.${round}.json")
  off_files+=("${off_build}/coupled.${round}.json")
done

python3 - BENCH_obs_overhead.json "${bound}" "${rounds}" \
          "${on_files[@]}" "${off_files[@]}" <<'EOF'
import json, sys

out_path, bound, rounds = sys.argv[1], float(sys.argv[2]), int(sys.argv[3])
paths = sys.argv[4:]
on_docs, off_docs = [], []
for i, path in enumerate(paths):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "mshls-bench-v1":
        sys.exit(f"{path}: not an mshls-bench-v1 file")
    compiled_in = doc["build"]["trace_compiled_in"]
    want_on = i < rounds
    if compiled_in != want_on:
        sys.exit(f"{path}: trace_compiled_in={compiled_in}, expected "
                 f"{'a probes-on' if want_on else 'a probes-off'} tree")
    (on_docs if want_on else off_docs).append(doc)

def per_row_min(docs):
    mins = {}
    for doc in docs:
        for row in doc["rows"]:
            key = (row["processes"], row["ops"])
            prev = mins.get(key)
            if prev is None or row["incremental_ms"] < prev["incremental_ms"]:
                mins[key] = row
    return mins

on_min, off_min = per_row_min(on_docs), per_row_min(off_docs)
if sorted(on_min) != sorted(off_min):
    sys.exit("workload ladders diverge between the two builds")

rows = []
on_total = off_total = 0.0
for key in sorted(on_min):
    r_on, r_off = on_min[key], off_min[key]
    on_total += r_on["incremental_ms"]
    off_total += r_off["incremental_ms"]
    rows.append({
        "processes": key[0],
        "ops": key[1],
        "iterations": r_on["iterations"],
        "probes_on_ms": round(r_on["incremental_ms"], 3),
        "probes_off_ms": round(r_off["incremental_ms"], 3),
        "overhead_pct": round(
            (r_on["incremental_ms"] / r_off["incremental_ms"] - 1) * 100, 2),
    })

aggregate_pct = (on_total / off_total - 1) * 100
doc = {
    "schema": "mshls-bench-v1",
    "experiment": "O1",
    "name": "obs_overhead",
    "build": on_docs[0]["build"],
    "params": {
        "bound_pct": bound,
        "rounds": rounds,
        "estimator": "per-row min over alternating rounds",
        "probes_on_total_ms": round(on_total, 3),
        "probes_off_total_ms": round(off_total, 3),
        "aggregate_overhead_pct": round(aggregate_pct, 2),
    },
    "rows": rows,
}
with open(out_path, "w") as f:
    json.dump(doc, f, indent=1)
    f.write("\n")

for row in rows:
    print(f"  {row['processes']}p x {row['ops']}ops: "
          f"on {row['probes_on_ms']:.2f} ms, off {row['probes_off_ms']:.2f} ms "
          f"({row['overhead_pct']:+.2f}%)")
print(f"aggregate disabled-path overhead: {aggregate_pct:+.2f}% "
      f"(bound {bound:.1f}%)")
if aggregate_pct > bound:
    sys.exit(f"disabled-path overhead {aggregate_pct:.2f}% exceeds "
             f"the {bound:.1f}% bound")
print(f"wrote {out_path}")
EOF
