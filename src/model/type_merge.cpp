#include "model/type_merge.h"

#include <algorithm>

namespace mshls {

StatusOr<ResourceTypeId> MergeTypes(SystemModel& model,
                                    std::span<const ResourceTypeId> sources,
                                    std::string_view merged_name,
                                    int merged_area) {
  if (sources.size() < 2)
    return Status{StatusCode::kInvalidArgument,
                  "type merge needs at least two source types"};
  ResourceLibrary& lib = model.library();
  const ResourceType& first = lib.type(sources[0]);
  for (ResourceTypeId s : sources) {
    const ResourceType& t = lib.type(s);
    if (t.delay != first.delay || t.dii != first.dii)
      return Status{StatusCode::kInvalidArgument,
                    "cannot merge '" + t.name + "' into '" +
                        std::string(merged_name) +
                        "': delay/dii differ from '" + first.name + "'"};
  }
  if (lib.FindByName(merged_name).valid())
    return Status{StatusCode::kInvalidArgument,
                  "resource type '" + std::string(merged_name) +
                      "' already exists"};

  const ResourceTypeId merged =
      lib.AddType(merged_name, first.delay, first.dii, merged_area);
  for (const Block& b : model.blocks()) {
    DataFlowGraph& g = model.mutable_block(b.id).graph;
    // Operations are value types inside the graph; rebuild via a copy
    // with retargeted types (ids and edges preserved).
    DataFlowGraph next;
    for (const Operation& op : g.ops()) {
      const bool hit = std::find(sources.begin(), sources.end(), op.type) !=
                       sources.end();
      next.AddOp(hit ? merged : op.type, op.name);
    }
    for (const Edge& e : g.edges()) next.AddEdge(e.from, e.to);
    if (Status s = next.Validate(); !s.ok()) return s;
    g = std::move(next);
  }
  for (ResourceTypeId s : sources) model.MakeLocal(s);
  if (Status s = model.Validate(); !s.ok()) return s;
  return merged;
}

}  // namespace mshls
