#!/usr/bin/env bash
# Sanitizer sweep for the robustness-critical subsystems: builds the tree
# with -DMSHLS_SANITIZE=address and =undefined and runs the `verify`,
# `engine`, `fuzz`, `perf` and `obs` ctest labels (certifier, fault
# injection, degradation ladder, thread pool / job service, generative
# fuzzer, incremental-force-engine consistency, tracer/metrics and the
# trace determinism contract) under each, plus a bounded differential fuzz
# campaign through the CLI and a bounded C1 bench smoke (which
# cross-checks naive / incremental / parallel / traced schedules for bit
# identity and bounds the enabled-tracing overhead). The certifier's whole
# contract is "never crash on corrupted artifacts", so it is exercised
# under the sanitizers that would catch the silent out-of-bounds read
# behind a wrong verdict; the fuzz campaign feeds both it and the frontend
# hundreds of generated and mutated inputs while those sanitizers watch.
# The tracer runs under the same labels because its merge path is the one
# place where every worker thread writes into shared state.
#
# Usage: scripts/check.sh [jobs]     (default: nproc)
set -euo pipefail

cd "$(dirname "$0")/.."
jobs="${1:-$(nproc)}"

for san in address undefined; do
  build="build-${san:0:1}san"
  echo "==> MSHLS_SANITIZE=${san} (${build})"
  cmake -B "${build}" -S . -DMSHLS_SANITIZE="${san}" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
  cmake --build "${build}" -j "${jobs}" > /dev/null
  ctest --test-dir "${build}" -L 'verify|engine|fuzz|perf|obs' \
        --output-on-failure -j "${jobs}"
  "${build}/src/tools/mshlsc" --fuzz 50:1 --jobs 2 \
        --fuzz-dir "${build}/fuzz-check"
  # Trace-overhead smoke: the bound is deliberately generous (sanitized
  # builds on a tiny workload, where the enabled tracer's fixed cost is a
  # large fraction of a very short run) — it catches an accidental
  # hot-path regression (e.g. a probe doing work while disabled), not the
  # <2% disabled-path acceptance bound, which scripts/obs_overhead.sh
  # measures on optimized builds.
  MSHLS_CHECK_INCREMENTAL=1 "${build}/bench/bench_coupled" --smoke \
        --assert-trace-overhead 150
done
echo "==> all sanitizer runs passed"
