#include "engine/job_service.h"

#include <algorithm>
#include <optional>

namespace mshls {

JobService::JobService(const JobServiceOptions& options)
    : workers_(std::max(1, options.workers)),
      cache_(options.cache_capacity) {}

std::vector<JobResult> JobService::RunBatch(std::vector<SchedulingJob> jobs) {
  for (SchedulingJob& job : jobs)
    if (job.cache == nullptr) job.cache = &cache_;

  std::vector<JobResult> results(jobs.size());
  std::optional<ThreadPool> pool;
  if (workers_ > 1) pool.emplace(workers_);
  // RunSchedulingJob never throws and each slot has a single writer, so
  // the fan-out status is always OK; results are complete on return.
  (void)ParallelFor(pool ? &*pool : nullptr, jobs.size(),
                    [&](std::size_t i) -> Status {
                      results[i] = RunSchedulingJob(jobs[i]);
                      return Status::Ok();
                    });
  return results;
}

}  // namespace mshls
