// Post-scheduling refinement — deterministic hill climbing on a complete
// coupled schedule.
//
// Force-directed scheduling is constructive: once a frame collapses it
// never reopens, so the final schedule can sit one move away from a
// cheaper allocation. This pass repeatedly tries to move a single
// operation to another precedence-feasible step of its block, keeps the
// move if it lowers (area, then summed pool-profile peaks as a
// tie-breaker pressure), and stops at a local optimum. Every accepted
// intermediate state is a valid system schedule, so the pass can be
// bounded by `max_rounds` and still return a usable result.
#pragma once

#include "common/status.h"
#include "modulo/coupled_scheduler.h"

namespace mshls {

struct RefineOptions {
  /// Full sweeps over all operations; a sweep with no accepted move ends
  /// the pass early.
  int max_rounds = 10;
};

struct RefineResult {
  SystemSchedule schedule;
  Allocation allocation;
  int area_before = 0;
  int area_after = 0;
  int moves_accepted = 0;
  int rounds = 0;
};

/// Refines `schedule` (must be complete and valid for `model`).
[[nodiscard]] StatusOr<RefineResult> RefineSchedule(
    const SystemModel& model, const SystemSchedule& schedule,
    const RefineOptions& options = {});

}  // namespace mshls
