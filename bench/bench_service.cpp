// Experiment S1 — the scheduling service end to end over its unix
// socket: an in-process mshlsd core (serve/server.h) fed by concurrent
// clients speaking the real wire protocol.
//
//   1. cold: distinct fuzz-generated designs, nothing cached — baseline
//      jobs/sec and p50/p99 latency;
//   2. warm (memory): the same designs against the same server — served
//      from the in-memory schedule cache;
//   3. warm (disk): the server is torn down and a fresh one opens the
//      same cache directory — a restarted daemon warm-starts from the
//      persistent fingerprint store (and every payload must be
//      byte-identical to the cold response);
//   4. overload: admission limit 1 under 16 concurrent clients — the
//      bounded queue must answer with typed `overloaded` rejections,
//      never block or crash, and drain cleanly.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/text_table.h"
#include "frontend/emitter.h"
#include "fuzz/generator.h"
#include "report/bench_json.h"
#include "serve/client.h"
#include "serve/disk_cache.h"
#include "serve/server.h"

using namespace mshls;

namespace {

constexpr const char* kSocketPath = "bench_service.sock";
constexpr const char* kCacheDir = "bench_service_cache";

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// kClean designs only: the service phases compare like against like
/// (a rejected-infeasible case would skew the latency mix).
std::vector<std::string> GenerateDesigns(int count) {
  FuzzGenOptions options;
  options.infeasible_probability = 0;
  options.grid_hostile_probability = 0;
  std::vector<std::string> sources;
  sources.reserve(static_cast<std::size_t>(count));
  std::uint64_t seed = 1;
  while (static_cast<int>(sources.size()) < count) {
    GeneratedCase generated = GenerateSystem(seed++, options);
    if (!generated.model.Validate().ok()) continue;  // belt and braces
    sources.push_back(EmitSystemText(generated.model));
  }
  return sources;
}

struct PhaseResult {
  long long ok = 0;
  long long failed = 0;
  long long rejected = 0;  // typed admission rejections
  long long cache_hits = 0;
  long long store_hits = 0;
  double wall_ms = 0;
  std::vector<double> latencies_ms;
  /// source index -> response payload (for the bit-identity check).
  std::map<int, std::string> payloads;

  [[nodiscard]] double Percentile(double p) const {
    if (latencies_ms.empty()) return 0;
    std::vector<double> sorted = latencies_ms;
    std::sort(sorted.begin(), sorted.end());
    const std::size_t idx = std::min(
        sorted.size() - 1,
        static_cast<std::size_t>(p * static_cast<double>(sorted.size())));
    return sorted[idx];
  }
  [[nodiscard]] double JobsPerSec() const {
    return wall_ms <= 0 ? 0 : 1000.0 * static_cast<double>(ok) / wall_ms;
  }
  [[nodiscard]] double HitRatio() const {
    return ok == 0 ? 0 : static_cast<double>(cache_hits) / static_cast<double>(ok);
  }
};

/// Submits every design once, `clients` concurrent connections pulling
/// from one shared index. `keep_payloads` records responses for the
/// cold-vs-warm identity check.
PhaseResult RunPhase(const std::vector<std::string>& sources, int clients,
                     bool keep_payloads) {
  PhaseResult result;
  std::atomic<int> next{0};
  std::mutex merge_mutex;
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    workers.emplace_back([&] {
      serve::Client client;
      if (!client.Connect(kSocketPath).ok()) return;
      PhaseResult local;
      for (int i = next.fetch_add(1); i < static_cast<int>(sources.size());
           i = next.fetch_add(1)) {
        serve::ServeRequest request;
        request.source = sources[static_cast<std::size_t>(i)];
        const auto r0 = std::chrono::steady_clock::now();
        auto response_or = client.Submit(request);
        const double ms = MsSince(r0);
        if (!response_or.ok()) {
          ++local.failed;
          continue;
        }
        const serve::ServeResponse& response = response_or.value();
        if (response.status == serve::ServeStatus::kOk) {
          ++local.ok;
          local.latencies_ms.push_back(ms);
          if (response.cache_hit()) ++local.cache_hits;
          if (response.store_hit()) ++local.store_hits;
          if (keep_payloads) local.payloads.emplace(i, response.payload);
        } else if (serve::IsRejection(response.status)) {
          ++local.rejected;
        } else {
          ++local.failed;
        }
      }
      std::lock_guard<std::mutex> lock(merge_mutex);
      result.ok += local.ok;
      result.failed += local.failed;
      result.rejected += local.rejected;
      result.cache_hits += local.cache_hits;
      result.store_hits += local.store_hits;
      result.latencies_ms.insert(result.latencies_ms.end(),
                                 local.latencies_ms.begin(),
                                 local.latencies_ms.end());
      for (auto& [idx, payload] : local.payloads)
        result.payloads.emplace(idx, std::move(payload));
    });
  }
  for (std::thread& t : workers) t.join();
  result.wall_ms = MsSince(t0);
  return result;
}

/// Overload: every client hammers the service as fast as responses come
/// back; with admission limit 1 most submissions must bounce with a typed
/// `overloaded` — and zero may hang, crash or come back malformed.
PhaseResult RunOverload(const std::vector<std::string>& sources, int clients,
                        int rounds) {
  PhaseResult result;
  std::mutex merge_mutex;
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      serve::Client client;
      if (!client.Connect(kSocketPath).ok()) return;
      PhaseResult local;
      for (int r = 0; r < rounds; ++r) {
        const std::size_t idx =
            static_cast<std::size_t>(c * rounds + r) % sources.size();
        serve::ServeRequest request;
        request.source = sources[idx];
        auto response_or = client.Submit(request);
        if (!response_or.ok()) {
          ++local.failed;
          continue;
        }
        switch (response_or.value().status) {
          case serve::ServeStatus::kOk: ++local.ok; break;
          case serve::ServeStatus::kOverloaded: ++local.rejected; break;
          default: ++local.failed; break;
        }
      }
      std::lock_guard<std::mutex> lock(merge_mutex);
      result.ok += local.ok;
      result.failed += local.failed;
      result.rejected += local.rejected;
    });
  }
  for (std::thread& t : workers) t.join();
  result.wall_ms = MsSince(t0);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_file = TakeJsonFlag(argc, argv);
  int designs = 24;
  int clients = 4;
  int workers = 4;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--designs" && i + 1 < argc) designs = std::atoi(argv[++i]);
    else if (flag == "--clients" && i + 1 < argc) clients = std::atoi(argv[++i]);
    else if (flag == "--workers" && i + 1 < argc) workers = std::atoi(argv[++i]);
    else {
      std::fprintf(stderr, "usage: %s [--designs n] [--clients n] "
                   "[--workers n] [--json file]\n", argv[0]);
      return 1;
    }
  }

  BenchJson json("S1", "service");
  json.params().I("designs", designs).I("clients", clients).I("workers",
                                                              workers);
  std::printf("== S1: scheduling service (daemon core over unix socket) ==\n\n");
  std::printf("%d design(s), %d client(s), %d worker(s)\n\n", designs, clients,
              workers);

  std::filesystem::remove_all(kCacheDir);
  const std::vector<std::string> sources = GenerateDesigns(designs);

  TextTable table;
  table.SetHeader({"phase", "ok", "rej", "fail", "jobs/s", "p50 [ms]",
                   "p99 [ms]", "hit %", "disk %"});
  for (std::size_t c = 1; c < 9; ++c) table.AlignRight(c);
  auto add_result = [&](const char* phase, const PhaseResult& r) {
    table.AddRow({phase, std::to_string(r.ok), std::to_string(r.rejected),
                  std::to_string(r.failed), FormatDouble(r.JobsPerSec(), 1),
                  FormatDouble(r.Percentile(0.50), 2),
                  FormatDouble(r.Percentile(0.99), 2),
                  FormatDouble(100 * r.HitRatio(), 0),
                  r.ok == 0 ? "0" : FormatDouble(100 *
                      static_cast<double>(r.store_hits) /
                      static_cast<double>(r.ok), 0)});
    json.AddRow()
        .S("phase", phase)
        .I("ok", r.ok)
        .I("rejected", r.rejected)
        .I("failed", r.failed)
        .D("jobs_per_sec", r.JobsPerSec())
        .D("p50_ms", r.Percentile(0.50))
        .D("p99_ms", r.Percentile(0.99))
        .D("hit_ratio", r.HitRatio())
        .D("store_hit_ratio",
           r.ok == 0 ? 0 : static_cast<double>(r.store_hits) /
                               static_cast<double>(r.ok));
  };

  PhaseResult cold, warm, disk_warm;
  {
    serve::DiskCacheOptions disk_options;
    disk_options.dir = kCacheDir;
    serve::DiskCache disk(disk_options);
    if (Status s = disk.Open(); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.message().c_str());
      return 1;
    }
    serve::ServerOptions options;
    options.socket_path = kSocketPath;
    options.workers = workers;
    options.queue_limit = 2 * clients;
    options.store = &disk;
    serve::Server server(options);
    if (Status s = server.Start(); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.message().c_str());
      return 1;
    }
    cold = RunPhase(sources, clients, /*keep_payloads=*/true);
    add_result("cold", cold);
    warm = RunPhase(sources, clients, /*keep_payloads=*/false);
    add_result("warm-mem", warm);
    server.RequestStop();
    server.Wait();
  }
  {
    // Fresh server + fresh DiskCache over the same directory: everything
    // the warm phase can hit now comes from disk.
    serve::DiskCacheOptions disk_options;
    disk_options.dir = kCacheDir;
    serve::DiskCache disk(disk_options);
    if (Status s = disk.Open(); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.message().c_str());
      return 1;
    }
    serve::ServerOptions options;
    options.socket_path = kSocketPath;
    options.workers = workers;
    options.queue_limit = 2 * clients;
    options.store = &disk;
    serve::Server server(options);
    if (Status s = server.Start(); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.message().c_str());
      return 1;
    }
    disk_warm = RunPhase(sources, clients, /*keep_payloads=*/true);
    add_result("warm-disk", disk_warm);
    server.RequestStop();
    server.Wait();
  }

  bool identical = cold.payloads.size() == disk_warm.payloads.size();
  if (identical)
    for (const auto& [idx, payload] : cold.payloads) {
      auto it = disk_warm.payloads.find(idx);
      if (it == disk_warm.payloads.end() || it->second != payload) {
        identical = false;
        break;
      }
    }
  std::printf("\ncold vs warm-disk payloads: %s\n",
              identical ? "byte-identical" : "DIFFER");

  PhaseResult overload;
  {
    serve::ServerOptions options;
    options.socket_path = kSocketPath;
    options.workers = 1;
    options.queue_limit = 0;  // admission limit 1 — rejections guaranteed
    serve::Server server(options);
    if (Status s = server.Start(); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.message().c_str());
      return 1;
    }
    overload = RunOverload(sources, /*clients=*/16, /*rounds=*/8);
    add_result("overload", overload);
    server.RequestStop();
    server.Wait();
  }

  std::printf("\n%s\n", table.Render().c_str());
  json.AddRow()
      .S("phase", "identity")
      .B("cold_equals_warm_disk", identical);

  const bool ok = identical && cold.failed == 0 && warm.failed == 0 &&
                  disk_warm.failed == 0 && overload.failed == 0 &&
                  warm.cache_hits == warm.ok &&
                  disk_warm.store_hits == disk_warm.ok &&
                  overload.rejected > 0;
  std::printf("warm hit ratio: %.0f%% (memory), %.0f%% (disk after restart); "
              "overload: %lld ok / %lld rejected — %s\n",
              100 * warm.HitRatio(), 100 * disk_warm.HitRatio(),
              overload.ok, overload.rejected, ok ? "PASS" : "FAIL");
  if (!json_file.empty()) json.WriteFile(json_file);
  std::filesystem::remove_all(kCacheDir);
  return ok ? 0 : 1;
}
