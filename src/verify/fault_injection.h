// Deterministic fault injection for the certifier's own test harness.
//
// Each FaultKind corrupts one invariant family of a (schedule, allocation,
// binding) artifact in a way that is *guaranteed* to be illegal against the
// pristine model — the construction never relies on luck (e.g. a shifted op
// is moved past the end of its time range, not to a random step that might
// happen to be legal). Injection is seeded and reproducible: the same
// FaultPlan against the same artifact always corrupts the same site.
//
// The contract tested by tests/verify_test.cpp: for every fault kind that is
// applicable to a workload, CertifySchedule must report at least one
// violation of the expected kind — and zero violations when nothing was
// injected. A fault kind can be inapplicable (e.g. perturb-period on a
// design without global pools); InjectFault then returns
// kFailedPrecondition so callers can skip rather than mis-count.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "bind/binding.h"
#include "common/status.h"
#include "model/system_model.h"
#include "modulo/allocation.h"
#include "sched/schedule.h"
#include "verify/certifier.h"

namespace mshls {

enum class FaultKind {
  kShiftOp,               // move one op past its block time range
  kDropEdge,              // reschedule a consumer before its producer
  kSwapBinding,           // rebind an op onto a conflicting instance
  kPerturbPeriod,         // change one pool's period away from lambda_g
  kOversubscribeResidue,  // shrink a pool below its authorization sum
  kCorruptLocalCount,     // shrink a local count below peak occupancy
};

[[nodiscard]] const char* FaultKindName(FaultKind kind);
[[nodiscard]] std::vector<FaultKind> AllFaultKinds();

/// One deterministic corruption: which family, and a seed selecting the
/// site among all eligible ones.
struct FaultPlan {
  FaultKind kind = FaultKind::kShiftOp;
  std::uint64_t seed = 1;
};

/// Parses "<kind>[:<seed>]" where <kind> is a FaultKindName (e.g.
/// "shift-op:7", "perturb-period"). Unknown kinds yield kParseError.
[[nodiscard]] StatusOr<FaultPlan> ParseFaultSpec(std::string_view spec);

/// What was corrupted, for reporting and for asserting detection.
struct InjectedFault {
  FaultKind kind;
  std::string description;
  /// The violation kind the certifier is expected to raise for it.
  ViolationKind expected;
};

/// Applies `plan` to the artifacts in place. The model stays const — it is
/// the ground truth the certifier judges against. Returns
/// kFailedPrecondition when the fault class has no eligible site in this
/// artifact (no pool, no multi-op type, ...); kInvalidArgument when a
/// required artifact is missing (kSwapBinding with binding == nullptr).
[[nodiscard]] StatusOr<InjectedFault> InjectFault(const FaultPlan& plan,
                                                  const SystemModel& model,
                                                  SystemSchedule& schedule,
                                                  Allocation& allocation,
                                                  SystemBinding* binding);

}  // namespace mshls
