file(REMOVE_RECURSE
  "CMakeFiles/mshls_dfg.dir/bus_insertion.cpp.o"
  "CMakeFiles/mshls_dfg.dir/bus_insertion.cpp.o.d"
  "CMakeFiles/mshls_dfg.dir/dot_export.cpp.o"
  "CMakeFiles/mshls_dfg.dir/dot_export.cpp.o.d"
  "CMakeFiles/mshls_dfg.dir/graph.cpp.o"
  "CMakeFiles/mshls_dfg.dir/graph.cpp.o.d"
  "libmshls_dfg.a"
  "libmshls_dfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mshls_dfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
