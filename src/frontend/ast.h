// Abstract syntax tree of the behavioral input language.
#pragma once

#include <string>
#include <vector>

namespace mshls {

struct AstResource {
  std::string name;
  int delay = 1;
  int dii = 1;
  int area = 1;
  int line = 0;
};

/// One single-assignment statement:
///   t = a + b;                  (binary operator form)
///   t = mac(a, b, c) using mult;  (call form, explicit resource)
struct AstStatement {
  std::string target;
  /// Resource name ("add", "mult", ...) — operators are resolved to names
  /// by the parser (+ -> add, - -> sub, * -> mult, / -> div, < -> cmp).
  std::string resource;
  std::vector<std::string> operands;
  int line = 0;
};

struct AstBlock {
  std::string name;
  int time_range = 0;
  int phase = 0;
  std::vector<AstStatement> statements;
  int line = 0;
};

struct AstProcess {
  std::string name;
  int deadline = 0;
  std::vector<AstBlock> blocks;
  int line = 0;
};

struct AstShare {
  std::string resource;
  std::vector<std::string> processes;
  int period = 1;
  int line = 0;
};

struct AstSystem {
  std::vector<AstResource> resources;
  std::vector<AstProcess> processes;
  std::vector<AstShare> shares;
};

}  // namespace mshls
