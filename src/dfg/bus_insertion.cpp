#include "dfg/bus_insertion.h"

#include <cassert>
#include <string>

namespace mshls {

DataFlowGraph InsertBusTransfers(const DataFlowGraph& graph,
                                 const BusInsertionOptions& options) {
  assert(graph.validated());
  assert(options.bus_type.valid());
  DataFlowGraph out;
  // Clone ops in id order so original ids stay stable.
  for (const Operation& op : graph.ops()) {
    const OpId id = out.AddOp(op.type, op.name);
    assert(id == op.id);
    (void)id;
  }
  if (options.broadcast) {
    // One transfer per producer with at least one consumer.
    for (const Operation& op : graph.ops()) {
      if (graph.succs(op.id).empty()) continue;
      if (options.skip_sources && graph.preds(op.id).empty()) continue;
      const OpId transfer = out.AddOp(
          options.bus_type,
          "bus_" + (op.name.empty() ? std::to_string(op.id.value())
                                    : op.name));
      out.AddEdge(op.id, transfer);
      for (OpId consumer : graph.succs(op.id))
        out.AddEdge(transfer, consumer);
    }
  } else {
    for (const Edge& e : graph.edges()) {
      if (options.skip_sources && graph.preds(e.from).empty()) {
        out.AddEdge(e.from, e.to);
        continue;
      }
      const OpId transfer = out.AddOp(
          options.bus_type,
          "bus_" + std::to_string(e.from.value()) + "_" +
              std::to_string(e.to.value()));
      out.AddEdge(e.from, transfer);
      out.AddEdge(transfer, e.to);
    }
  }
  const Status s = out.Validate();
  assert(s.ok());
  (void)s;
  return out;
}

}  // namespace mshls
