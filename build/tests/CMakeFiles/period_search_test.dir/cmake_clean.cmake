file(REMOVE_RECURSE
  "CMakeFiles/period_search_test.dir/period_search_test.cpp.o"
  "CMakeFiles/period_search_test.dir/period_search_test.cpp.o.d"
  "period_search_test"
  "period_search_test.pdb"
  "period_search_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/period_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
