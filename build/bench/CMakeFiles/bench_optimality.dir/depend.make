# Empty dependencies file for bench_optimality.
# This may be replaced when dependencies are built.
