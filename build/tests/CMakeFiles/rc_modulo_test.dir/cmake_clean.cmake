file(REMOVE_RECURSE
  "CMakeFiles/rc_modulo_test.dir/rc_modulo_test.cpp.o"
  "CMakeFiles/rc_modulo_test.dir/rc_modulo_test.cpp.o.d"
  "rc_modulo_test"
  "rc_modulo_test.pdb"
  "rc_modulo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rc_modulo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
