file(REMOVE_RECURSE
  "CMakeFiles/mshls_fds.dir/distribution.cpp.o"
  "CMakeFiles/mshls_fds.dir/distribution.cpp.o.d"
  "CMakeFiles/mshls_fds.dir/fds_scheduler.cpp.o"
  "CMakeFiles/mshls_fds.dir/fds_scheduler.cpp.o.d"
  "CMakeFiles/mshls_fds.dir/force.cpp.o"
  "CMakeFiles/mshls_fds.dir/force.cpp.o.d"
  "libmshls_fds.a"
  "libmshls_fds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mshls_fds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
