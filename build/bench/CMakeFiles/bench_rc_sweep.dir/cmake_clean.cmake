file(REMOVE_RECURSE
  "CMakeFiles/bench_rc_sweep.dir/bench_rc_sweep.cpp.o"
  "CMakeFiles/bench_rc_sweep.dir/bench_rc_sweep.cpp.o.d"
  "bench_rc_sweep"
  "bench_rc_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rc_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
