// JobService — batch front of the scheduling engine: runs many
// SchedulingJobs concurrently on one bounded thread pool, shares one
// result cache across them, and returns results in submission order
// (parallel batch output is position-identical to a serial run of the
// same jobs).
#pragma once

#include <vector>

#include "engine/job.h"
#include "engine/result_cache.h"
#include "engine/thread_pool.h"
#include "modulo/schedule_cache.h"

namespace mshls {

struct JobServiceOptions {
  /// Concurrent jobs; <= 1 runs the batch serially on the calling thread.
  int workers = 1;
  /// Schedule-cache capacity (entries); 0 = unbounded.
  std::size_t cache_capacity = 0;
};

class JobService {
 public:
  explicit JobService(const JobServiceOptions& options = {});

  /// Runs all jobs, blocking until every one finished (or failed);
  /// results[i] always corresponds to jobs[i]. A job whose `cache` is
  /// unset is wired to the service-wide cache. Per-job failures are
  /// reported in the result's status, never thrown.
  [[nodiscard]] std::vector<JobResult> RunBatch(std::vector<SchedulingJob> jobs);

  [[nodiscard]] ScheduleCache& cache() { return cache_; }
  [[nodiscard]] CacheStats cache_stats() const { return cache_.stats(); }
  [[nodiscard]] int workers() const { return workers_; }

 private:
  int workers_;
  ScheduleCache cache_;
};

}  // namespace mshls
