file(REMOVE_RECURSE
  "libmshls_vsim.a"
)
