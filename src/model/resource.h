// Resource (functional-unit) library.
//
// A resource type models one kind of functional unit: its precedence delay
// (result latency in control steps), its data-introduction interval (how many
// consecutive steps an issue occupies the unit — 1 for a fully pipelined
// unit, equal to the delay for a non-pipelined multicycle unit) and its
// relative area cost. The paper's experiment uses add/sub with delay 1 and a
// pipelined multiplier with delay 2, DII 1, areas 1/1/4.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/ids.h"
#include "common/status.h"

namespace mshls {

struct ResourceType {
  ResourceTypeId id;
  std::string name;
  int delay = 1;  // precedence latency in control steps, >= 1
  int dii = 1;    // data introduction interval (occupancy), 1 <= dii <= delay
  int area = 1;   // relative area cost, >= 0
};

class ResourceLibrary {
 public:
  /// Registers a type; names must be unique (checked by Validate).
  ResourceTypeId AddType(std::string_view name, int delay, int dii, int area);

  /// Convenience for fully pipelined units (dii = 1).
  ResourceTypeId AddPipelined(std::string_view name, int delay, int area) {
    return AddType(name, delay, /*dii=*/1, area);
  }
  /// Convenience for non-pipelined units (dii = delay).
  ResourceTypeId AddSimple(std::string_view name, int delay, int area) {
    return AddType(name, delay, /*dii=*/delay, area);
  }

  [[nodiscard]] std::size_t size() const { return types_.size(); }
  [[nodiscard]] const ResourceType& type(ResourceTypeId id) const {
    return types_[id.index()];
  }
  [[nodiscard]] const std::vector<ResourceType>& types() const {
    return types_;
  }

  /// Name lookup; invalid id if not present.
  [[nodiscard]] ResourceTypeId FindByName(std::string_view name) const;

  [[nodiscard]] Status Validate() const;

 private:
  std::vector<ResourceType> types_;
};

}  // namespace mshls
