// Benchmark data-flow graphs.
//
// The paper evaluates on the "HLS workshop benchmarks '92": the fifth-order
// elliptic wave filter (EWF) and the main loop of the differential-equation
// solver (HAL diffeq) with the comparator substituted by a subtraction
// (paper §7). The diffeq graph below is the exact HAL graph; the EWF graph
// is a structural reconstruction of the benchmark (the original SIF file is
// not reproduced in the paper): it has the canonical operation mix of
// 26 additions + 8 multiplications = 34 operations and the canonical
// critical path of 17 steps under the paper's delays (add/sub = 1,
// pipelined multiply = 2), with the same chain-plus-side-arm shape.
// FIR16 and an AR-lattice-like filter are provided for the wider baseline
// benches, plus a deterministic random-graph generator for property tests.
#pragma once

#include <utility>
#include <vector>

#include "common/rng.h"
#include "dfg/graph.h"
#include "model/resource.h"

namespace mshls {

/// The paper's resource types: add/sub with delay 1 and area 1, pipelined
/// multiplier with delay 2 (DII 1) and area 4.
struct PaperTypes {
  ResourceTypeId add;
  ResourceTypeId sub;
  ResourceTypeId mult;
};

/// Registers the paper's three types into `lib` and returns their ids.
PaperTypes AddPaperTypes(ResourceLibrary& lib);

/// Fifth-order elliptic wave filter: 34 ops (26 add, 8 mult),
/// critical path 17 with the paper's delays. Returned validated.
[[nodiscard]] DataFlowGraph BuildEwf(const PaperTypes& t);

/// HAL differential-equation solver main loop, comparator replaced by a
/// subtraction: 11 ops (6 mult, 2 add, 3 sub), critical path 8.
[[nodiscard]] DataFlowGraph BuildDiffeq(const PaperTypes& t);

/// 16-tap FIR filter: 16 mult + 15-add balanced reduction tree,
/// critical path 6.
[[nodiscard]] DataFlowGraph BuildFir16(const PaperTypes& t);

/// Four-stage AR-lattice-like filter: 28 ops (16 mult, 12 add),
/// critical path 16.
[[nodiscard]] DataFlowGraph BuildArLattice(const PaperTypes& t);

struct RandomDfgOptions {
  int ops = 20;
  int layers = 5;
  /// Probability of an edge between ops in adjacent layers.
  double edge_probability = 0.4;
  /// Probability that an op is a multiplication (else add/sub evenly).
  double mult_probability = 0.3;
  /// Optional weighted type mix: when non-empty it replaces the
  /// mult_probability draw and each op's type is sampled from these
  /// (type, weight) pairs — lets generators (e.g. the fuzz harness) mix
  /// arbitrary libraries, including non-pipelined types, into one graph.
  std::vector<std::pair<ResourceTypeId, double>> type_mix;
};

/// Deterministic layered random DAG over the paper's types.
[[nodiscard]] DataFlowGraph BuildRandomDfg(const PaperTypes& t, Rng& rng,
                                           const RandomDfgOptions& options);

}  // namespace mshls
