// Independent schedule certifier.
//
// Re-derives every safety invariant of an emitted schedule from first
// principles, sharing no checking logic with the schedulers in fds/, sched/
// or modulo/ (it consumes their *data structures* only). The point is
// redundancy: the producer validates what it built; the certifier is a
// second, structurally different implementation whose disagreement with the
// producer is itself a bug report. Checks performed, each tied to the paper:
//
//  * completeness / time range     — every op scheduled inside [0, T_b]
//                                    (condition C1, time-constrained input);
//  * dependence edges              — start(to) >= start(from) + delay(from);
//  * process deadlines             — every block finishes by the process
//                                    deadline when one is declared;
//  * local resource limits         — per (process, type, cycle) occupancy
//                                    never exceeds the local instance count;
//  * eq. 1 residue safety          — per global pool and residue
//                                    tau = t mod lambda_g, each user's
//                                    occupancy fits its authorization and
//                                    the authorization sum fits the pool;
//  * eq. 2/3 grid-shift invariance — re-folding every block shifted by
//                                    k * lcm{lambda_g : g in G_p} yields the
//                                    identical residue profile, and the grid
//                                    spacing tiles every block time range;
//  * binding consistency           — type match, ownership, per-residue pool
//                                    entitlement and intra-block overlap
//                                    freedom, re-derived from the
//                                    authorization prefix sums.
//
// The certifier never asserts on malformed artifacts — corruption is the
// expected input (see verify/fault_injection.h) and comes back as typed
// violations with operation/resource/cycle coordinates.
#pragma once

#include <string>
#include <vector>

#include "common/ids.h"
#include "modulo/allocation.h"
#include "modulo/coupled_scheduler.h"
#include "bind/binding.h"
#include "model/system_model.h"
#include "sched/schedule.h"

namespace mshls {

enum class ViolationKind {
  kIncompleteSchedule,      // op unscheduled or schedule table malformed
  kRangeViolation,          // op outside [0, time_range]
  kDependenceViolation,     // precedence edge not honoured
  kDeadlineViolation,       // block finishes after the process deadline
  kLocalOverSubscription,   // local occupancy exceeds the allocated count
  kAuthorizationShortfall,  // eq. 1: residue demand exceeds A_p(tau)
  kResidueOverSubscription, // eq. 1: sum of A_p(tau) exceeds the pool
  kPeriodMismatch,          // pool period disagrees with the model's S2 state
  kGridMisalignment,        // eq. 3: grid spacing does not tile a time range
                            // (or a phase lies outside the grid)
  kGridShiftVariance,       // eq. 2/3: residue profile changes under a shift
                            // by a multiple of the grid spacing
  kBindingIncomplete,       // op unbound or binding table malformed
  kBindingTypeMismatch,     // op bound to an instance of another type
  kBindingOwnership,        // foreign local instance / out-of-range index
  kBindingEntitlement,      // pool instance used outside its residue range
  kBindingDoubleBooking,    // instance claimed twice at one step
  kMalformedArtifact,       // allocation tables structurally inconsistent
};

[[nodiscard]] const char* ViolationKindName(ViolationKind kind);

/// One certified invariant breach with full coordinates. Fields that do not
/// apply to the kind stay invalid / negative.
struct Violation {
  ViolationKind kind;
  BlockId block;
  OpId op;
  ProcessId process;
  ResourceTypeId type;
  InstanceId instance;
  int cycle = -1;    // block-relative step
  int residue = -1;  // tau, for eq.-1/eq.-2 kinds
  std::string detail;

  [[nodiscard]] std::string ToString(const SystemModel& model) const;
};

/// Number of independent checks evaluated, by family — evidence that a
/// clean certificate actually exercised the invariants (a certifier that
/// silently skips everything also reports zero violations).
struct CertificateStats {
  long ops_checked = 0;
  long edges_checked = 0;
  long cycles_checked = 0;    // (process, type, cycle) occupancy probes
  long residues_checked = 0;  // (pool, residue) eq.-1 probes
  long shifts_checked = 0;    // eq.-2/3 shifted re-foldings
  long bindings_checked = 0;

  [[nodiscard]] long Total() const {
    return ops_checked + edges_checked + cycles_checked + residues_checked +
           shifts_checked + bindings_checked;
  }
};

struct CertificateReport {
  std::vector<Violation> violations;
  CertificateStats stats;

  [[nodiscard]] bool ok() const { return violations.empty(); }
  [[nodiscard]] bool Has(ViolationKind kind) const;
  /// "clean (N checks)" or "K violation(s): <first>; ..." — for statuses.
  [[nodiscard]] std::string Summary() const;
  /// Full multi-line report with one line per violation.
  [[nodiscard]] std::string ToString(const SystemModel& model) const;
};

struct CertifierOptions {
  /// Stop after this many violations; 0 = collect all.
  int max_violations = 0;
  /// Grid-shift multiples k = 1..shift_multiples re-folded per block for
  /// the eq.-2/3 invariance check.
  int shift_multiples = 2;
};

/// Certifies a schedule + allocation (+ optional binding) against `model`.
/// The model is the ground truth; every other artifact is untrusted. An
/// allocation that routes a type through local instances even though the
/// model declares it global (e.g. the pure-local baseline) is accepted as
/// long as the local counts cover the demand — over-provisioning is safe,
/// under-provisioning is a violation.
[[nodiscard]] CertificateReport CertifySchedule(
    const SystemModel& model, const SystemSchedule& schedule,
    const Allocation& allocation, const SystemBinding* binding = nullptr,
    const CertifierOptions& options = {});

/// Convenience wrapper for the scheduler's result bundle.
[[nodiscard]] CertificateReport CertifyResult(
    const SystemModel& model, const CoupledResult& result,
    const SystemBinding* binding = nullptr, const CertifierOptions& options = {});

}  // namespace mshls
