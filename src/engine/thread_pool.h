// Deterministic-by-construction thread pool for the scheduling engine.
//
// Design constraints (see DESIGN.md §2 row 23):
//  * no work stealing, no per-thread queues: one FIFO queue, tasks are
//    started in submission order, so task side effects that are confined
//    to pre-assigned slots make any fan-out reproducible;
//  * the queue is bounded — Submit() blocks when `queue_capacity` tasks
//    are already waiting, providing natural backpressure for batch jobs;
//  * worker exceptions never escape: ParallelFor converts them into
//    Status (kInternal) per index, and plain Submit() tasks are expected
//    to be noexcept at the boundary (enforced with a terminate-on-throw
//    wrapper would hide bugs; instead Submit stores the first exception
//    and rethrows it from Wait()).
//
// Determinism contract used by the parallel searches: every task writes
// only to its own pre-allocated result slot; the *reduction* over slots is
// then performed by the caller in canonical index order, making parallel
// output bit-identical to a serial run of the same slots.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace mshls {

class ThreadPool {
 public:
  /// `threads` < 1 is clamped to 1. The pool starts immediately.
  explicit ThreadPool(int threads, std::size_t queue_capacity = 1024);
  /// Drains the queue, joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int thread_count() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task; blocks while the queue is at capacity. Tasks are
  /// dequeued in FIFO order. A task that throws poisons the pool: the
  /// first exception is rethrown from Wait().
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished; rethrows the first
  /// exception a Submit()ed task leaked, if any.
  void Wait();

 private:
  /// Queue entry; `enqueue_ns` is only populated while observability
  /// recording is on (it feeds the pool.queue_wait_us timing histogram).
  struct QueuedTask {
    std::function<void()> fn;
    long long enqueue_ns = 0;
  };

  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable task_ready_;    // workers wait here
  std::condition_variable space_ready_;   // Submit waits here
  std::condition_variable idle_;          // Wait waits here
  std::deque<QueuedTask> queue_;
  std::size_t capacity_;
  std::size_t in_flight_ = 0;  // dequeued but not finished
  bool stopping_ = false;
  std::exception_ptr first_error_;
  std::vector<std::thread> workers_;
};

/// Runs fn(i) for every i in [0, n), fanning out over `pool` (or inline
/// when `pool` is null or single-threaded — the serial and parallel paths
/// share this entry so they cannot diverge). Exceptions thrown by fn are
/// captured as kInternal. Returns the first non-OK status in *index*
/// order (not completion order), so error reporting is deterministic too.
[[nodiscard]] Status ParallelFor(ThreadPool* pool, std::size_t n,
                                 const std::function<Status(std::size_t)>& fn);

}  // namespace mshls
