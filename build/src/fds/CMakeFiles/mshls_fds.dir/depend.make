# Empty dependencies file for mshls_fds.
# This may be replaced when dependencies are built.
