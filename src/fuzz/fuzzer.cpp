#include "fuzz/fuzzer.h"

#include <algorithm>
#include <charconv>
#include <filesystem>
#include <fstream>
#include <utility>

#include "engine/thread_pool.h"
#include "frontend/emitter.h"
#include "model/model_spec.h"

namespace mshls {
namespace {

bool ParseU64(std::string_view text, std::uint64_t* out) {
  if (text.empty()) return false;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), *out);
  return ec == std::errc{} && ptr == text.data() + text.size();
}

/// Narrows the oracle battery to one failure family — the shrink predicate
/// re-runs only the family being minimized (a full battery per candidate
/// would dominate the shrink budget).
OracleOptions NarrowTo(OracleOptions options, OracleKind kind) {
  options.run_certify = kind == OracleKind::kCertify;
  options.run_exact = kind == OracleKind::kExactBound;
  options.run_metamorphic = kind == OracleKind::kMetamorphic;
  options.run_replay = kind == OracleKind::kCacheReplay;
  return options;
}

bool FailsWith(const CaseOutcome& outcome, OracleKind kind) {
  for (const OracleFailure& f : outcome.failures)
    if (f.kind == kind) return true;
  return false;
}

struct Slot {
  GeneratedCase gen;
  CaseOutcome outcome;
};

/// Minimizes one finding and writes it as a replayable .hls design.
/// Returns the path, or an error when the directory/file is unwritable.
StatusOr<std::string> PersistFinding(const Slot& slot, int index,
                                     const FuzzOptions& options,
                                     int* shrink_attempts, int* final_ops) {
  const std::uint64_t cs = slot.outcome.seed;
  const CaseClass cls = slot.gen.cls;
  const FaultPlan* plan =
      options.inject.has_value() ? &*options.inject : nullptr;

  SpecPredicate keep;
  if (plan != nullptr) {
    const OracleOptions narrowed =
        NarrowTo(options.oracles, OracleKind::kCertify);
    keep = [&, narrowed](const ModelSpec& s) {
      StatusOr<SystemModel> m = BuildModel(s);
      if (!m.ok()) return false;
      const CaseOutcome co =
          RunCaseOracles(m.value(), cs, cls, narrowed, plan);
      return co.inject_applicable && co.inject_caught;
    };
  } else {
    const OracleKind kind = slot.outcome.failures.front().kind;
    const OracleOptions narrowed = NarrowTo(options.oracles, kind);
    keep = [&, narrowed, kind](const ModelSpec& s) {
      StatusOr<SystemModel> m = BuildModel(s);
      if (!m.ok()) return false;
      return FailsWith(RunCaseOracles(m.value(), cs, cls, narrowed, nullptr),
                       kind);
    };
  }

  // Shrink when the original spec is buildable and reproduces; otherwise
  // (e.g. an infeasible-class model, which BuildModel rejects by design)
  // the un-shrunk original is persisted.
  const ModelSpec original = ExtractSpec(slot.gen.model);
  const SystemModel* to_emit = &slot.gen.model;
  SystemModel shrunk_model;
  *shrink_attempts = 0;
  if (options.shrink && BuildModel(original).ok() && keep(original)) {
    ShrinkResult shrunk =
        ShrinkSpec(original, keep, options.shrink_options);
    *shrink_attempts = shrunk.attempts;
    StatusOr<SystemModel> m = BuildModel(shrunk.spec);
    if (m.ok()) {
      shrunk_model = std::move(m).value();
      to_emit = &shrunk_model;
    }
  }
  int ops = 0;
  for (const Block& b : to_emit->blocks())
    ops += static_cast<int>(b.graph.op_count());
  *final_ops = ops;

  std::vector<std::string> header;
  header.push_back("fuzz repro (replayable with: mshlsc <this file>)");
  header.push_back("run seed " + std::to_string(options.seed) + ", case " +
                   std::to_string(index) + ", case seed " +
                   std::to_string(cs) + ", class " +
                   std::string(CaseClassName(cls)));
  if (plan != nullptr) {
    header.push_back(
        std::string("injected fault ") + FaultKindName(plan->kind) + ":" +
        std::to_string(plan->seed) + " — certifier caught it; minimized " +
        "while still caught");
  }
  for (const OracleFailure& f : slot.outcome.failures)
    header.push_back(std::string("FAIL ") + OracleKindName(f.kind) + ": " +
                     f.detail);

  std::error_code ec;
  std::filesystem::create_directories(options.repro_dir, ec);
  if (ec)
    return Status{StatusCode::kInternal,
                  "cannot create repro directory '" + options.repro_dir +
                      "': " + ec.message()};
  const std::string path =
      (std::filesystem::path(options.repro_dir) /
       ("fuzz-" + std::to_string(options.seed) + "-case" +
        std::to_string(index) + ".hls"))
          .string();
  std::ofstream out(path, std::ios::trunc);
  out << EmitSystemText(*to_emit, header);
  if (!out.good())
    return Status{StatusCode::kInternal, "cannot write '" + path + "'"};
  return path;
}

}  // namespace

std::uint64_t FuzzCaseSeed(std::uint64_t run_seed, int index) {
  // One splitmix step over a run-seed-keyed counter: neighbouring indices
  // map to unrelated generator streams.
  Rng rng(run_seed + 0x9E3779B97F4A7C15ULL *
                         static_cast<std::uint64_t>(index + 1));
  return rng.NextU64();
}

Status ParseFuzzSpec(const std::string& spec, int* cases,
                     std::uint64_t* seed) {
  const std::size_t colon = spec.find(':');
  const std::string head = spec.substr(0, colon);
  std::uint64_t n = 0;
  if (!ParseU64(head, &n) || n < 1 || n > 1'000'000'000)
    return Status{StatusCode::kParseError,
                  "bad fuzz case count '" + head + "' (want n >= 1)"};
  *cases = static_cast<int>(n);
  *seed = 1;
  if (colon != std::string::npos &&
      !ParseU64(spec.substr(colon + 1), seed))
    return Status{StatusCode::kParseError,
                  "bad fuzz seed in '" + spec + "' (want <n>[:<seed>])"};
  return Status::Ok();
}

std::string FuzzReport::Summary() const {
  std::string out = "fuzz: " + std::to_string(cases) + " cases (" +
                    std::to_string(clean) + " clean, " +
                    std::to_string(infeasible) + " infeasible, " +
                    std::to_string(grid_hostile) + " grid-hostile), " +
                    std::to_string(feasible) + " feasible, " +
                    std::to_string(exact_checked) + " exact-checked, " +
                    std::to_string(replay_checked) + " replay-checked";
  if (inject_mode)
    out += ", inject " + std::to_string(inject_caught) + "/" +
           std::to_string(inject_applicable) + " caught";
  out += ", " + std::to_string(failures) + " oracle failure(s)";
  if (!repro_paths.empty())
    out += ", " + std::to_string(repro_paths.size()) + " repro(s) written";
  return out;
}

StatusOr<FuzzReport> RunFuzz(const FuzzOptions& options) {
  FuzzReport report;
  report.inject_mode = options.inject.has_value();
  const int n = std::max(0, options.cases);
  report.cases = n;

  // Phase 1: each case runs independently into its own slot; with jobs > 1
  // the engine pool fans out, and because nothing below depends on
  // completion order the report stays bit-identical to the serial run.
  std::vector<Slot> slots(static_cast<std::size_t>(n));
  const FaultPlan* plan =
      options.inject.has_value() ? &*options.inject : nullptr;
  const auto run_case = [&](std::size_t i) -> Status {
    const std::uint64_t cs =
        FuzzCaseSeed(options.seed, static_cast<int>(i));
    slots[i].gen = GenerateSystem(cs, options.gen);
    slots[i].outcome = RunCaseOracles(slots[i].gen.model, cs,
                                      slots[i].gen.cls, options.oracles, plan);
    return Status::Ok();
  };
  if (options.jobs > 1) {
    ThreadPool pool(options.jobs);
    if (Status st = ParallelFor(&pool, slots.size(), run_case); !st.ok())
      return st;
  } else {
    if (Status st = ParallelFor(nullptr, slots.size(), run_case); !st.ok())
      return st;
  }

  // Phase 2: serial reduction in index order — log, counters, shrinking.
  int persisted = 0;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    const CaseOutcome& o = slots[i].outcome;
    report.log.push_back(o.LogLine(static_cast<int>(i)));
    switch (slots[i].gen.cls) {
      case CaseClass::kClean: ++report.clean; break;
      case CaseClass::kInfeasible: ++report.infeasible; break;
      case CaseClass::kGridHostile: ++report.grid_hostile; break;
    }
    if (o.feasible) ++report.feasible;
    if (o.exact_checked) ++report.exact_checked;
    if (o.replay_checked) ++report.replay_checked;
    if (o.inject_applicable) ++report.inject_applicable;
    if (o.inject_caught) ++report.inject_caught;
    if (!o.ok()) ++report.failures;

    // Differential mode persists failures; the injection drill persists
    // caught faults (the miss IS the failure there).
    const bool target = report.inject_mode
                            ? (o.inject_applicable && o.inject_caught)
                            : !o.ok();
    if (target && persisted < options.max_repros &&
        !options.repro_dir.empty()) {
      ++persisted;
      int attempts = 0;
      int ops = 0;
      StatusOr<std::string> path = PersistFinding(
          slots[i], static_cast<int>(i), options, &attempts, &ops);
      if (!path.ok()) return path.status();
      report.repro_paths.push_back(path.value());
      report.log.push_back("repro " + path.value() + " ops=" +
                           std::to_string(ops) + " shrink-attempts=" +
                           std::to_string(attempts));
    }
  }
  return report;
}

}  // namespace mshls
