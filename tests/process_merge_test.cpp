#include <gtest/gtest.h>

#include "model/process_merge.h"
#include "modulo/baseline.h"
#include "modulo/coupled_scheduler.h"
#include "workloads/benchmarks.h"

namespace mshls {
namespace {

class ProcessMergeTest : public ::testing::Test {
 protected:
  SystemModel model_;
  PaperTypes types_ = AddPaperTypes(model_.library());

  ProcessId AddKernel(const std::string& name,
                      DataFlowGraph (*build)(const PaperTypes&), int range) {
    const ProcessId p = model_.AddProcess(name, range);
    model_.AddBlock(p, name + "_main", build(types_), range);
    return p;
  }
};

TEST_F(ProcessMergeTest, MergesGraphsDisjointly) {
  const ProcessId p1 = AddKernel("deq1", &BuildDiffeq, 12);
  const ProcessId p2 = AddKernel("deq2", &BuildDiffeq, 15);
  ASSERT_TRUE(model_.Validate().ok());
  const ProcessId sources[] = {p1, p2};
  auto merged = MergeProcesses(model_, sources, "combined");
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  const SystemModel& m = merged.value();
  EXPECT_EQ(m.process_count(), 1u);
  const Block& b = m.block(BlockId{0});
  EXPECT_EQ(b.graph.op_count(), 22u);  // 11 + 11
  EXPECT_EQ(b.graph.edge_count(), 16u);  // 8 + 8
  EXPECT_EQ(b.time_range, 15);  // max of the sources
  EXPECT_EQ(m.process(ProcessId{0}).deadline, 15);
  // Names prefixed with the source process.
  EXPECT_EQ(b.graph.op(OpId{0}).name, "deq1_3x");
  EXPECT_EQ(b.graph.op(OpId{11}).name, "deq2_3x");
}

TEST_F(ProcessMergeTest, CopiesUnmergedProcesses) {
  const ProcessId p1 = AddKernel("a", &BuildDiffeq, 12);
  const ProcessId p2 = AddKernel("b", &BuildDiffeq, 12);
  AddKernel("c", &BuildFir16, 10);
  ASSERT_TRUE(model_.Validate().ok());
  const ProcessId sources[] = {p1, p2};
  auto merged = MergeProcesses(model_, sources, "ab");
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged.value().process_count(), 2u);
  EXPECT_EQ(merged.value().processes()[1].name, "c");
  EXPECT_EQ(merged.value().block(BlockId{1}).graph.op_count(), 31u);
}

TEST_F(ProcessMergeTest, DropsGlobalAssignments) {
  const ProcessId p1 = AddKernel("a", &BuildDiffeq, 10);
  const ProcessId p2 = AddKernel("b", &BuildDiffeq, 10);
  model_.MakeGlobal(types_.mult, {p1, p2});
  model_.SetPeriod(types_.mult, 5);
  ASSERT_TRUE(model_.Validate().ok());
  const ProcessId sources[] = {p1, p2};
  auto merged = MergeProcesses(model_, sources, "ab");
  ASSERT_TRUE(merged.ok());
  EXPECT_TRUE(merged.value().GlobalTypes().empty());
}

TEST_F(ProcessMergeTest, RejectsSingleSource) {
  const ProcessId p1 = AddKernel("a", &BuildDiffeq, 10);
  const ProcessId sources[] = {p1};
  EXPECT_FALSE(MergeProcesses(model_, sources, "x").ok());
}

TEST_F(ProcessMergeTest, RejectsMultiBlockProcess) {
  const ProcessId p1 = AddKernel("a", &BuildDiffeq, 10);
  const ProcessId p2 = AddKernel("b", &BuildDiffeq, 10);
  model_.AddBlock(p2, "b_extra", BuildDiffeq(types_), 10);
  ASSERT_TRUE(model_.Validate().ok());
  const ProcessId sources[] = {p1, p2};
  auto merged = MergeProcesses(model_, sources, "x");
  ASSERT_FALSE(merged.ok());
  EXPECT_NE(merged.status().message().find("single-block"),
            std::string::npos);
}

TEST_F(ProcessMergeTest, MergedSystemSharesLikeTheModuloMethod) {
  // The paper's §1.1 point: merging achieves comparable sharing... when
  // it is applicable. Two diffeq processes, merged and traditionally
  // scheduled, should need about the same hardware as the modulo-shared
  // independent pair.
  const ProcessId p1 = AddKernel("a", &BuildDiffeq, 16);
  const ProcessId p2 = AddKernel("b", &BuildDiffeq, 16);
  model_.MakeGlobal(types_.mult, {p1, p2});
  model_.SetPeriod(types_.mult, 4);
  ASSERT_TRUE(model_.Validate().ok());

  CoupledScheduler shared(model_, CoupledParams{});
  auto shared_run = shared.Run();
  ASSERT_TRUE(shared_run.ok());
  const int shared_area =
      shared_run.value().allocation.TotalArea(model_.library());

  const ProcessId sources[] = {p1, p2};
  auto merged = MergeProcesses(model_, sources, "ab");
  ASSERT_TRUE(merged.ok());
  CoupledScheduler merged_sched(merged.value(), CoupledParams{});
  auto merged_run = merged_sched.Run();
  ASSERT_TRUE(merged_run.ok());
  const int merged_area =
      merged_run.value().allocation.TotalArea(merged.value().library());

  EXPECT_LE(std::abs(shared_area - merged_area), 4)
      << "shared " << shared_area << " vs merged " << merged_area;
}

}  // namespace
}  // namespace mshls
