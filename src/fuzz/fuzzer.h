// Differential fuzz driver: generate -> oracle -> shrink -> persist.
//
// RunFuzz derives every case seed purely from (run seed, case index), runs
// the oracle battery over the cases — fanning out over the engine's
// deterministic thread pool when jobs > 1 — and serially post-processes the
// per-index outcome slots in canonical order: the log, the failure counts
// and the shrunken repro files are therefore byte-identical for any --jobs
// width and across repeated runs (the determinism tests pin this down).
//
// A finding is minimized with the greedy delta-debugging shrinker under
// "the same oracle family still fails" and written to `repro_dir` as a
// self-contained .hls design (the frontend round-trips it), headed by the
// run seed, case seed and failure description needed to replay it.
//
// With an injection plan the roles flip: every feasible clean case's
// artifacts are corrupted post-schedule (a simulated scheduler defect) and
// the certifier must catch the expected violation kind. A *miss* is the
// failure; a catch is shrunk to a minimal still-caught repro — the
// acceptance drill for "an intentionally reintroduced bug is found and
// minimized".
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "fuzz/generator.h"
#include "fuzz/oracles.h"
#include "fuzz/shrinker.h"
#include "verify/fault_injection.h"

namespace mshls {

struct FuzzOptions {
  int cases = 100;
  std::uint64_t seed = 1;
  /// Worker threads for the case fan-out; <= 1 runs serially. The report
  /// is bit-identical for any width.
  int jobs = 1;
  FuzzGenOptions gen;
  OracleOptions oracles;
  /// Injection drill (see above); nullopt = differential mode.
  std::optional<FaultPlan> inject;
  /// Where shrunk repros are written; empty disables persistence.
  std::string repro_dir = "fuzz-repros";
  /// Cap on shrunk/persisted findings per run (shrinking is the expensive
  /// part; later findings are still logged and counted).
  int max_repros = 4;
  bool shrink = true;
  ShrinkOptions shrink_options;
};

struct FuzzReport {
  int cases = 0;
  int clean = 0;
  int infeasible = 0;
  int grid_hostile = 0;
  int feasible = 0;
  int exact_checked = 0;
  int replay_checked = 0;
  int inject_applicable = 0;
  int inject_caught = 0;
  int failures = 0;  // cases with at least one oracle failure
  bool inject_mode = false;
  /// One deterministic line per case, in index order.
  std::vector<std::string> log;
  /// Repro files written (in case-index order).
  std::vector<std::string> repro_paths;

  /// Differential mode: no failures. Injection mode: additionally at least
  /// one applicable fault must have been caught (a drill where the fault
  /// never applied proves nothing).
  [[nodiscard]] bool ok() const {
    return failures == 0 && (!inject_mode || inject_caught > 0);
  }
  [[nodiscard]] std::string Summary() const;
};

/// Case seed for (run seed, index) — splitmix-derived so neighbouring
/// indices land in unrelated regions of the generator's space.
[[nodiscard]] std::uint64_t FuzzCaseSeed(std::uint64_t run_seed, int index);

/// Parses "<n>[:<seed>]" (e.g. "500", "500:7"). n >= 1.
[[nodiscard]] Status ParseFuzzSpec(const std::string& spec, int* cases,
                                   std::uint64_t* seed);

/// Runs the fuzz campaign. Only returns non-OK on environment errors
/// (repro directory not writable); oracle failures are reported in the
/// FuzzReport, not as a Status.
[[nodiscard]] StatusOr<FuzzReport> RunFuzz(const FuzzOptions& options);

}  // namespace mshls
