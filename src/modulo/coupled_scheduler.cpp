#include "modulo/coupled_scheduler.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <optional>
#include <string>

#include "engine/thread_pool.h"
#include "fds/distribution.h"
#include "fds/force.h"
#include "modulo/modulo_map.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mshls {

namespace {

/// Process-wide opt-in for the differential self-check: the CMake option
/// bakes it in, the environment variable turns it on for any binary.
bool CheckIncrementalGloballyEnabled() {
#ifdef MSHLS_CHECK_INCREMENTAL
  return true;
#else
  static const bool enabled = [] {
    const char* v = std::getenv("MSHLS_CHECK_INCREMENTAL");
    return v != nullptr && *v != '\0' && *v != '0';
  }();
  return enabled;
#endif
}

}  // namespace

void CoupledScheduler::EvalScratch::Prepare(std::size_t types) {
  dq.resize(types);
  touched.assign(types, 0);
  touched_list.clear();
  touched_list.reserve(types);
}

CoupledScheduler::CoupledScheduler(const SystemModel& model,
                                   CoupledParams params)
    : model_(model), params_(std::move(params)) {
  const ResourceLibrary& lib = model_.library();
  blocks_.reserve(model_.block_count());
  delays_.reserve(model_.block_count());
  for (const Block& b : model_.blocks()) {
    delays_.push_back(model_.DelayOf(b.id));
    auto frames_or =
        TimeFrameSet::Compute(b.graph, delays_.back(), b.time_range);
    // Model validation guarantees feasibility of each block.
    assert(frames_or.ok());
    BlockState state;
    state.frames = std::move(frames_or).value();
    state.local.resize(lib.size());
    state.modulo.resize(lib.size());
    state.cache.assign(b.graph.op_count(), CandidateCache{});
    for (const ResourceType& t : lib.types())
      if (GlobalForBlock(t.id, b.id))
        state.global_type_mask |= TypeBit(t.id.index());
    blocks_.push_back(std::move(state));
  }
  for (const Block& b : model_.blocks()) RebuildBlockState(b.id);
  mp_.assign(model_.process_count(),
             std::vector<Profile>(lib.size()));
  group_.assign(lib.size(), {});
  RebuildProcessAndGroupProfiles();
}

CoupledScheduler::~CoupledScheduler() = default;

bool CoupledScheduler::GlobalForBlock(ResourceTypeId type,
                                      BlockId block) const {
  if (params_.mode == GlobalForceMode::kIgnoreGlobal) return false;
  if (!model_.is_global(type)) return false;
  return model_.InGroup(type, model_.block(block).process);
}

void CoupledScheduler::RebuildBlockState(BlockId bid) {
  const Block& b = model_.block(bid);
  const ResourceLibrary& lib = model_.library();
  BlockState& state = blocks_[bid.index()];
  for (const ResourceType& t : lib.types()) {
    state.local[t.id.index()] =
        BuildTypeProfile(b, lib, state.frames, t.id);
    if (GlobalForBlock(t.id, bid)) {
      const int lambda = model_.assignment(t.id).period;
      state.modulo[t.id.index()] = ModuloMaxTransform(
          std::span<const double>(state.local[t.id.index()]), b.phase,
          lambda);
    } else {
      state.modulo[t.id.index()].clear();
    }
  }
}

void CoupledScheduler::RebuildProcessAndGroupProfiles() {
  const ResourceLibrary& lib = model_.library();
  for (const ResourceType& t : lib.types()) {
    const std::size_t k = t.id.index();
    if (!model_.is_global(t.id) ||
        params_.mode == GlobalForceMode::kIgnoreGlobal) {
      group_[k].clear();
      for (auto& per_process : mp_) per_process[k].clear();
      continue;
    }
    const int lambda = model_.assignment(t.id).period;
    group_[k].assign(static_cast<std::size_t>(lambda), 0.0);
    SeedExternalDemand(k, group_[k]);
    for (const Process& p : model_.processes()) {
      Profile& m = mp_[p.id.index()][k];
      if (!model_.InGroup(t.id, p.id)) {
        m.clear();
        continue;
      }
      m.assign(static_cast<std::size_t>(lambda), 0.0);
      for (BlockId bid : p.blocks) {
        const Profile& d = blocks_[bid.index()].modulo[k];
        if (d.empty()) continue;
        for (std::size_t tau = 0; tau < m.size(); ++tau)
          m[tau] = std::max(m[tau], d[tau]);
      }
      for (std::size_t tau = 0; tau < m.size(); ++tau)
        group_[k][tau] += m[tau];
    }
  }
}

const Profile& CoupledScheduler::GroupProfile(ResourceTypeId type) const {
  return group_[type.index()];
}

void CoupledScheduler::SeedExternalDemand(std::size_t type_index,
                                          Profile& g) const {
  if (type_index >= params_.external_demand.size()) return;
  const Profile& ext = params_.external_demand[type_index];
  const std::size_t n = std::min(ext.size(), g.size());
  for (std::size_t tau = 0; tau < n; ++tau) g[tau] = ext[tau];
}

Status CoupledScheduler::ValidateExternalDemand() const {
  if (params_.external_demand.empty()) return Status::Ok();
  const ResourceLibrary& lib = model_.library();
  if (params_.external_demand.size() > lib.size())
    return Status{StatusCode::kInvalidArgument,
                  "external_demand has " +
                      std::to_string(params_.external_demand.size()) +
                      " rows but the library has " +
                      std::to_string(lib.size()) + " types"};
  for (std::size_t k = 0; k < params_.external_demand.size(); ++k) {
    const Profile& ext = params_.external_demand[k];
    if (ext.empty()) continue;
    const ResourceTypeId id{static_cast<int>(k)};
    if (!model_.is_global(id))
      return Status{StatusCode::kInvalidArgument,
                    "external_demand for locally assigned type '" +
                        lib.type(id).name + "'"};
    const int lambda = model_.assignment(id).period;
    if (ext.size() != static_cast<std::size_t>(lambda))
      return Status{StatusCode::kInvalidArgument,
                    "external_demand for type '" + lib.type(id).name +
                        "' has " + std::to_string(ext.size()) +
                        " residues but lambda is " + std::to_string(lambda)};
    for (double v : ext)
      if (!std::isfinite(v) || v < 0)
        return Status{StatusCode::kInvalidArgument,
                      "external_demand for type '" + lib.type(id).name +
                          "' contains a negative or non-finite value"};
  }
  return Status::Ok();
}

double CoupledScheduler::EvaluateForce(BlockId bid, OpId op, TimeFrame target,
                                       EvalScratch& sc,
                                       std::uint64_t* touched_mask,
                                       std::vector<ForceTerm>* terms) const {
  const Block& b = model_.block(bid);
  const ResourceLibrary& lib = model_.library();
  const BlockState& state = blocks_[bid.index()];

  sc.next = state.frames;
  {
    const Status s =
        sc.next.Narrow(b.graph, delays_[bid.index()], op, target);
    assert(s.ok() && "narrowing inside a propagated frame must be feasible");
    (void)s;
  }

  // Per-type displacement of the block-local distribution; dq buffers are
  // reused across evaluations (cleared lazily via the touched list).
  for (int k : sc.touched_list) {
    sc.dq[static_cast<std::size_t>(k)].clear();
    sc.touched[static_cast<std::size_t>(k)] = 0;
  }
  sc.touched_list.clear();
  for (const Operation& o : b.graph.ops()) {
    const TimeFrame& before = state.frames.frame(o.id);
    const TimeFrame& after = sc.next.frame(o.id);
    if (before == after) continue;
    const std::size_t k = o.type.index();
    auto& d = sc.dq[k];
    if (d.empty()) d.assign(static_cast<std::size_t>(b.time_range), 0.0);
    const int dii = lib.type(o.type).dii;
    AddOccupancyProbability(d, before, dii, -1.0);
    AddOccupancyProbability(d, after, dii, +1.0);
    if (!sc.touched[k]) {
      sc.touched[k] = 1;
      sc.touched_list.push_back(static_cast<int>(k));
    }
  }

  // Reuse term slots in place so the cached Profile buffers keep their
  // capacity across re-evaluations.
  std::size_t term_count = 0;
  const auto record = [&](ResourceTypeId type, bool global,
                          double contribution,
                          const Profile* modulo_next) -> void {
    if (terms == nullptr) return;
    if (term_count == terms->size()) terms->emplace_back();
    ForceTerm& term = (*terms)[term_count++];
    term.type = type;
    term.global = global;
    term.contribution = contribution;
    if (global)
      term.modulo_next = *modulo_next;
    else
      term.modulo_next.clear();
  };

  double force = 0;
  for (const ResourceType& t : lib.types()) {
    const std::size_t k = t.id.index();
    if (!sc.touched[k]) continue;
    if (touched_mask != nullptr) *touched_mask |= TypeBit(k);
    const double w = TypeWeight(lib, t.id, params_.fds);

    if (!GlobalForBlock(t.id, bid)) {
      const double c = SpringForce(state.local[k], sc.dq[k], params_.fds, w);
      record(t.id, false, c, nullptr);
      force += c;
      continue;
    }

    // Displaced block distribution and its modulo-max transform (eq. 7/8).
    const int lambda = model_.assignment(t.id).period;
    sc.d_next = state.local[k];
    for (std::size_t i = 0; i < sc.d_next.size(); ++i)
      sc.d_next[i] += sc.dq[k][i];
    ModuloMaxTransformInto(std::span<const double>(sc.d_next), b.phase,
                           lambda, sc.modulo_next);
    const Profile& modulo_cur = state.modulo[k];

    if (params_.mode == GlobalForceMode::kBlockModuloOnly) {
      sc.delta.resize(sc.modulo_next.size());
      for (std::size_t tau = 0; tau < sc.delta.size(); ++tau)
        sc.delta[tau] = sc.modulo_next[tau] - modulo_cur[tau];
      const double c = SpringForce(modulo_cur, sc.delta, params_.fds, w);
      // Not re-priceable (no cross-block invalidation in this mode), so the
      // term is recorded as a plain contribution.
      record(t.id, false, c, nullptr);
      force += c;
      continue;
    }

    // Full chain (eq. 9): new process max, displacement of the group sum.
    const ProcessId pid = b.process;
    const Profile& m_cur = mp_[pid.index()][k];
    sc.m_next = sc.modulo_next;
    for (BlockId other : model_.process(pid).blocks) {
      if (other == bid) continue;
      const Profile& od = blocks_[other.index()].modulo[k];
      if (od.empty()) continue;
      for (std::size_t tau = 0; tau < sc.m_next.size(); ++tau)
        sc.m_next[tau] = std::max(sc.m_next[tau], od[tau]);
    }
    sc.delta.resize(sc.m_next.size());
    for (std::size_t tau = 0; tau < sc.delta.size(); ++tau)
      sc.delta[tau] = sc.m_next[tau] - m_cur[tau];
    const double c = SpringForce(group_[k], sc.delta, params_.fds, w);
    record(t.id, true, c, &sc.modulo_next);
    force += c;
  }
  if (terms != nullptr) terms->resize(term_count);
  return force;
}

double CoupledScheduler::RepriceGlobalTerms(BlockId bid,
                                            std::vector<ForceTerm>& terms,
                                            EvalScratch& sc) const {
  const ResourceLibrary& lib = model_.library();
  const ProcessId pid = model_.block(bid).process;
  double force = 0;
  for (ForceTerm& term : terms) {
    if (!term.global) {
      // Block-level inputs of this term are unchanged by construction
      // (otherwise the candidate would be kInvalid, not kGlobalStale).
      force += term.contribution;
      continue;
    }
    // Same eq. 9 chain as EvaluateForce, restarted from the cached
    // displaced modulo-max profile: identical loops over identical
    // operands, so the bits match a full re-evaluation.
    const std::size_t k = term.type.index();
    const double w = TypeWeight(lib, term.type, params_.fds);
    const Profile& m_cur = mp_[pid.index()][k];
    sc.m_next = term.modulo_next;
    for (BlockId other : model_.process(pid).blocks) {
      if (other == bid) continue;
      const Profile& od = blocks_[other.index()].modulo[k];
      if (od.empty()) continue;
      for (std::size_t tau = 0; tau < sc.m_next.size(); ++tau)
        sc.m_next[tau] = std::max(sc.m_next[tau], od[tau]);
    }
    sc.delta.resize(sc.m_next.size());
    for (std::size_t tau = 0; tau < sc.delta.size(); ++tau)
      sc.delta[tau] = sc.m_next[tau] - m_cur[tau];
    term.contribution = SpringForce(group_[k], sc.delta, params_.fds, w);
    force += term.contribution;
  }
  return force;
}

void CoupledScheduler::RefreshBlock(BlockId bid, EvalScratch& sc) {
  const Block& b = model_.block(bid);
  BlockState& state = blocks_[bid.index()];
  for (const Operation& op : b.graph.ops()) {
    const TimeFrame& f = state.frames.frame(op.id);
    if (f.fixed()) continue;
    CandidateCache& c = state.cache[op.id.index()];
    if (c.state == CandidateCache::State::kValid) {
      ++sc.reused;
      continue;
    }
    if (c.state == CandidateCache::State::kGlobalStale) {
      ++sc.repriced;
      c.force_begin = RepriceGlobalTerms(bid, c.begin_terms, sc);
      c.force_end = RepriceGlobalTerms(bid, c.end_terms, sc);
    } else {
      ++sc.evaluated;
      c.touched_types = 0;
      c.force_begin = EvaluateForce(bid, op.id, TimeFrame{f.asap, f.asap},
                                    sc, &c.touched_types, &c.begin_terms);
      c.force_end = EvaluateForce(bid, op.id, TimeFrame{f.alap, f.alap}, sc,
                                  &c.touched_types, &c.end_terms);
    }
    c.state = CandidateCache::State::kValid;
  }
}

void CoupledScheduler::InvalidateAllCandidates() {
  for (BlockState& state : blocks_)
    for (CandidateCache& c : state.cache)
      c.state = CandidateCache::State::kInvalid;
}

void CoupledScheduler::ApplyNarrowUpdate(BlockId chosen,
                                         std::span<const TimeFrame> before) {
  const Block& b = model_.block(chosen);
  const ResourceLibrary& lib = model_.library();
  BlockState& state = blocks_[chosen.index()];

  // S = ops whose frames the committed narrow moved; T_S = their types.
  std::vector<char> type_moved(lib.size(), 0);
  std::uint64_t moved_mask = 0;
  for (const Operation& o : b.graph.ops()) {
    if (before[o.id.index()] == state.frames.frame(o.id)) continue;
    type_moved[o.type.index()] = 1;
    moved_mask |= TypeBit(o.type.index());
  }

  // Rebuild only the moved types' profiles, with the exact loops the full
  // rebuild uses, so the incremental state is bit-identical to naive. The
  // modulo-max / process-max / group cascades run only for types whose
  // profile actually changed at this level (eq. 9 coupling scope).
  std::uint64_t modulo_changed = 0;  // D_b(chosen) changed
  std::uint64_t group_changed = 0;   // G changed (via M_p(chosen process))
  const ProcessId pc = b.process;
  for (const ResourceType& t : lib.types()) {
    const std::size_t k = t.id.index();
    if (!type_moved[k]) continue;
    state.local[k] = BuildTypeProfile(b, lib, state.frames, t.id);
    if (!GlobalForBlock(t.id, chosen)) continue;
    const int lambda = model_.assignment(t.id).period;
    Profile fresh = ModuloMaxTransform(
        std::span<const double>(state.local[k]), b.phase, lambda);
    if (fresh == state.modulo[k]) continue;
    state.modulo[k] = std::move(fresh);
    modulo_changed |= TypeBit(k);

    // Process max of the chosen process (eq. 9 inner max, same loop as the
    // full rebuild).
    Profile m(static_cast<std::size_t>(lambda), 0.0);
    for (BlockId bid : model_.process(pc).blocks) {
      const Profile& d = blocks_[bid.index()].modulo[k];
      if (d.empty()) continue;
      for (std::size_t tau = 0; tau < m.size(); ++tau)
        m[tau] = std::max(m[tau], d[tau]);
    }
    if (m == mp_[pc.index()][k]) continue;
    mp_[pc.index()][k] = std::move(m);

    // Group sum (eq. 9 outer sum) re-accumulated in process order — the
    // same association order as the full rebuild (external baseline first,
    // then members), so the bits match. An incremental
    // `group += m_next - m_cur` would round differently.
    Profile g(static_cast<std::size_t>(lambda), 0.0);
    SeedExternalDemand(k, g);
    for (const Process& p : model_.processes()) {
      if (!model_.InGroup(t.id, p.id)) continue;
      const Profile& pm = mp_[p.id.index()][k];
      for (std::size_t tau = 0; tau < g.size(); ++tau) g[tau] += pm[tau];
    }
    if (g == group_[k]) continue;
    group_[k] = std::move(g);
    group_changed |= TypeBit(k);
  }

  // Invalidation. A cached candidate is stale iff one of its recorded
  // input types changed at the level its force evaluation read it from:
  //  * chosen block — local frames/profiles of any moved type (the moved
  //    set of a tentative narrow can only change through ops of T_S);
  //  * other blocks of the chosen process — the chosen block's modulo-max
  //    profile feeds their eq. 9 process max directly;
  //  * blocks of other group processes — only through the group sum.
  for (std::size_t bi = 0; bi < blocks_.size(); ++bi) {
    BlockState& bs = blocks_[bi];
    std::uint64_t stale_mask;
    const bool block_level = BlockId{static_cast<int>(bi)} == chosen;
    if (block_level) {
      stale_mask = moved_mask;
    } else if (params_.mode != GlobalForceMode::kFull) {
      continue;  // no cross-block force coupling in the ablated modes
    } else if (model_.block(BlockId{static_cast<int>(bi)}).process == pc) {
      stale_mask = modulo_changed & bs.global_type_mask;
    } else {
      stale_mask = group_changed & bs.global_type_mask;
    }
    if (stale_mask == 0) continue;
    for (CandidateCache& c : bs.cache) {
      if ((c.touched_types & stale_mask) == 0) continue;
      // Cross-block staleness only moves a kValid entry down to the cheap
      // re-price tier; a kInvalid entry stays fully invalid.
      if (block_level) {
        if (c.state != CandidateCache::State::kInvalid)
          ++stats_.tier1_invalidations;
        c.state = CandidateCache::State::kInvalid;
      } else if (c.state == CandidateCache::State::kValid) {
        ++stats_.tier2_invalidations;
        c.state = CandidateCache::State::kGlobalStale;
      }
    }
  }
}

Status CoupledScheduler::VerifyIncrementalState() {
  const ResourceLibrary& lib = model_.library();
  const auto fail = [](const std::string& what) {
    return Status{StatusCode::kInternal,
                  "MSHLS_CHECK_INCREMENTAL divergence: " + what};
  };

  // 1. Profiles: from-scratch block / process / group state must equal the
  // incrementally maintained state bit for bit.
  for (const Block& b : model_.blocks()) {
    const BlockState& state = blocks_[b.id.index()];
    for (const ResourceType& t : lib.types()) {
      const std::size_t k = t.id.index();
      const Profile local = BuildTypeProfile(b, lib, state.frames, t.id);
      if (local != state.local[k])
        return fail("local profile of type " + t.name + " in block " +
                    b.name);
      Profile modulo;
      if (GlobalForBlock(t.id, b.id))
        modulo = ModuloMaxTransform(std::span<const double>(local), b.phase,
                                    model_.assignment(t.id).period);
      if (modulo != state.modulo[k])
        return fail("modulo profile of type " + t.name + " in block " +
                    b.name);
    }
  }
  for (const ResourceType& t : lib.types()) {
    const std::size_t k = t.id.index();
    if (!model_.is_global(t.id) ||
        params_.mode == GlobalForceMode::kIgnoreGlobal) {
      if (!group_[k].empty()) return fail("group profile of local type");
      continue;
    }
    const int lambda = model_.assignment(t.id).period;
    Profile g(static_cast<std::size_t>(lambda), 0.0);
    SeedExternalDemand(k, g);
    for (const Process& p : model_.processes()) {
      if (!model_.InGroup(t.id, p.id)) {
        if (!mp_[p.id.index()][k].empty())
          return fail("process profile of non-member process " + p.name);
        continue;
      }
      Profile m(static_cast<std::size_t>(lambda), 0.0);
      for (BlockId bid : p.blocks) {
        const Profile& d = blocks_[bid.index()].modulo[k];
        if (d.empty()) continue;
        for (std::size_t tau = 0; tau < m.size(); ++tau)
          m[tau] = std::max(m[tau], d[tau]);
      }
      if (m != mp_[p.id.index()][k])
        return fail("process profile of type " + t.name + " in process " +
                    p.name);
      for (std::size_t tau = 0; tau < g.size(); ++tau) g[tau] += m[tau];
    }
    if (g != group_[k]) return fail("group profile of type " + t.name);
  }

  // 2. Forces: every cached candidate must equal a fresh evaluation.
  EvalScratch sc;
  sc.Prepare(lib.size());
  for (const Block& b : model_.blocks()) {
    const BlockState& state = blocks_[b.id.index()];
    for (const Operation& op : b.graph.ops()) {
      const TimeFrame& f = state.frames.frame(op.id);
      if (f.fixed()) continue;
      const CandidateCache& c = state.cache[op.id.index()];
      if (c.state != CandidateCache::State::kValid)
        return fail("unrefreshed candidate op " +
                    std::to_string(op.id.value()) + " in block " + b.name);
      const double begin = EvaluateForce(b.id, op.id,
                                         TimeFrame{f.asap, f.asap}, sc,
                                         nullptr, nullptr);
      const double end = EvaluateForce(b.id, op.id, TimeFrame{f.alap, f.alap},
                                       sc, nullptr, nullptr);
      if (begin != c.force_begin || end != c.force_end)
        return fail("stale force for op " + std::to_string(op.id.value()) +
                    " in block " + b.name + " (cached " +
                    std::to_string(c.force_begin) + "/" +
                    std::to_string(c.force_end) + ", fresh " +
                    std::to_string(begin) + "/" + std::to_string(end) + ")");
    }
  }
  return Status::Ok();
}

Status CoupledScheduler::ApplyPinnedStarts() {
  if (params_.pinned_starts.empty()) return Status::Ok();
  if (params_.pinned_starts.size() > model_.block_count())
    return Status{StatusCode::kInvalidArgument,
                  "pinned_starts has " +
                      std::to_string(params_.pinned_starts.size()) +
                      " rows but the model has " +
                      std::to_string(model_.block_count()) + " blocks"};
  bool any = false;
  for (std::size_t bi = 0; bi < params_.pinned_starts.size(); ++bi) {
    const std::vector<int>& pins = params_.pinned_starts[bi];
    const Block& b = model_.blocks()[bi];
    if (pins.size() > b.graph.op_count())
      return Status{StatusCode::kInvalidArgument,
                    "pinned_starts row for block '" + b.name + "' has " +
                        std::to_string(pins.size()) + " entries but the block has " +
                        std::to_string(b.graph.op_count()) + " ops"};
    BlockState& state = blocks_[bi];
    for (std::size_t oi = 0; oi < pins.size(); ++oi) {
      const int step = pins[oi];
      if (step < 0) continue;
      const OpId op(static_cast<std::int32_t>(oi));
      const TimeFrame f = state.frames.frame(op);
      if (!f.contains(step))
        return Status{StatusCode::kInfeasible,
                      "pinned start " + std::to_string(step) + " of op " +
                          std::to_string(oi) + " in block '" + b.name +
                          "' lies outside its feasible frame [" +
                          std::to_string(f.asap) + ", " +
                          std::to_string(f.alap) + "]"};
      if (f.fixed()) continue;
      if (Status s = state.frames.Narrow(b.graph, delays_[bi], op,
                                         TimeFrame{step, step});
          !s.ok())
        return Status{StatusCode::kInfeasible,
                      "pinned starts conflict in block '" + b.name +
                          "': " + s.message()};
      any = true;
    }
  }
  if (!any) return Status::Ok();
  // Pins moved frames after construction: every profile derived from them
  // (block-local, modulo-max, process/group) is stale, as is the whole
  // candidate cache.
  for (const Block& b : model_.blocks()) RebuildBlockState(b.id);
  RebuildProcessAndGroupProfiles();
  InvalidateAllCandidates();
  return Status::Ok();
}

StatusOr<CoupledResult> CoupledScheduler::Run() {
  if (Status s = ValidateExternalDemand(); !s.ok()) return s;
  if (Status s = ApplyPinnedStarts(); !s.ok()) return s;
  const ResourceLibrary& lib = model_.library();
  const bool check =
      params_.check_incremental || CheckIncrementalGloballyEnabled();
  const int jobs =
      params_.incremental
          ? std::min(params_.jobs, static_cast<int>(model_.block_count()))
          : 1;
  scratch_.resize(static_cast<std::size_t>(std::max(jobs, 1)));
  for (EvalScratch& sc : scratch_) sc.Prepare(lib.size());
  std::optional<ThreadPool> pool;
  if (jobs > 1) pool.emplace(jobs);

  stats_ = CoupledStats{};
  track_ = nullptr;
  if (obs::Tracer* tracer = obs::GlobalTracer();
      tracer != nullptr && params_.trace)
    track_ = &tracer->NewTrack("coupled");
  obs::ScopedSpan run_span(
      track_, "coupled.run",
      obs::TraceArgs()
          .I("blocks", static_cast<long long>(model_.block_count()))
          .I("processes", static_cast<long long>(model_.process_count()))
          .S("mode", params_.mode == GlobalForceMode::kFull
                         ? "full"
                         : params_.mode == GlobalForceMode::kBlockModuloOnly
                               ? "block_modulo"
                               : "ignore_global")
          .I("incremental", params_.incremental ? 1 : 0)
          .Json());

  std::vector<TimeFrame> before;  // chosen block's frames pre-narrow
  int iterations = 0;
  for (;;) {
    std::size_t unfixed = 0;
    for (const BlockState& s : blocks_)
      for (const TimeFrame& f : s.frames.frames())
        if (!f.fixed()) ++unfixed;
    if (unfixed == 0) break;

    // 1. Sweep: recompute every stale candidate, fanned out over per-shard
    // block sets. Each worker writes only its own blocks' cache slots, so
    // any shard count yields the same bits.
    if (!params_.incremental) InvalidateAllCandidates();
    if (pool) {
      const Status sweep = ParallelFor(
          &*pool, scratch_.size(), [&](std::size_t shard) -> Status {
            for (std::size_t bi = shard; bi < blocks_.size();
                 bi += scratch_.size())
              RefreshBlock(BlockId{static_cast<int>(bi)}, scratch_[shard]);
            return Status::Ok();
          });
      if (!sweep.ok()) return sweep;
    } else {
      for (std::size_t bi = 0; bi < blocks_.size(); ++bi)
        RefreshBlock(BlockId{static_cast<int>(bi)}, scratch_[0]);
    }

    // Fold per-worker sweep counters into the run totals at the serial
    // point, in shard index order; integer sums over the same candidate
    // multiset, so any shard count produces the same totals.
    long long swept_evaluated = 0;
    long long swept_repriced = 0;
    long long swept_reused = 0;
    for (EvalScratch& sc : scratch_) {
      swept_evaluated += sc.evaluated;
      swept_repriced += sc.repriced;
      swept_reused += sc.reused;
      sc.evaluated = sc.repriced = sc.reused = 0;
    }
    stats_.candidates_evaluated += swept_evaluated;
    stats_.candidates_repriced += swept_repriced;
    stats_.candidates_reused += swept_reused;

    if (check) {
      if (Status s = VerifyIncrementalState(); !s.ok()) return s;
    }

    // 2. Reduction in canonical (block, op) order over the cache.
    CoupledIterationTrace trace;
    trace.iteration = iterations;
    if (params_.observer) trace.candidates.reserve(unfixed);
    double best_diff = -1.0;
    for (const Block& b : model_.blocks()) {
      const BlockState& state = blocks_[b.id.index()];
      for (const Operation& op : b.graph.ops()) {
        const TimeFrame& f = state.frames.frame(op.id);
        if (f.fixed()) continue;
        const CandidateCache& c = state.cache[op.id.index()];
        double diff = std::abs(c.force_begin - c.force_end);
        if (f.width() > 2) diff *= params_.fds.mid_estimate;
        if (params_.observer) {
          CoupledCandidate& out = trace.candidates.emplace_back();
          out.block = b.id;
          out.op = op.id;
          out.frame = f;
          out.force_begin = c.force_begin;
          out.force_end = c.force_end;
          out.diff = diff;
        }
        if (diff > best_diff) {
          best_diff = diff;
          trace.chosen_block = b.id;
          trace.chosen_op = op.id;
          trace.shrank_begin = c.force_begin > c.force_end;
        }
      }
    }
    assert(trace.chosen_op.valid());

    // 3. Commit the gradual reduction and update scoped state.
    BlockState& chosen = blocks_[trace.chosen_block.index()];
    const TimeFrame f = chosen.frames.frame(trace.chosen_op);
    const TimeFrame next = trace.shrank_begin
                               ? TimeFrame{f.asap + 1, f.alap}
                               : TimeFrame{f.asap, f.alap - 1};
    if (params_.observer) params_.observer(trace);
    before.assign(chosen.frames.frames().begin(),
                  chosen.frames.frames().end());
    if (Status s = chosen.frames.Narrow(
            model_.block(trace.chosen_block).graph,
            delays_[trace.chosen_block.index()], trace.chosen_op, next);
        !s.ok())
      return s;
    const long long tier1_before = stats_.tier1_invalidations;
    const long long tier2_before = stats_.tier2_invalidations;
    if (params_.incremental) {
      ApplyNarrowUpdate(trace.chosen_block, before);
    } else {
      RebuildBlockState(trace.chosen_block);
      RebuildProcessAndGroupProfiles();
    }
    if (track_ != nullptr) {
      // Decision log: one instant per iteration, emitted at the serial
      // point so the event sequence is identical at any sweep worker
      // count. `best` is the winning |force_begin - force_end| spread;
      // the counters are this iteration's sweep outcomes and the
      // invalidation fan-out of the committed narrow.
      track_->Instant(
          "narrow",
          obs::TraceArgs()
              .I("iter", iterations)
              .I("block", trace.chosen_block.value())
              .I("op", trace.chosen_op.value())
              .I("begin", trace.shrank_begin ? 1 : 0)
              .D("best", best_diff)
              .I("evaluated", swept_evaluated)
              .I("repriced", swept_repriced)
              .I("reused", swept_reused)
              .I("tier1", stats_.tier1_invalidations - tier1_before)
              .I("tier2", stats_.tier2_invalidations - tier2_before)
              .Json());
    }
    ++iterations;
  }

  stats_.iterations = iterations;

  // Mirror the run's totals into the global registry once (the hot loops
  // above only touch plain locals / members).
  if (obs::Enabled()) {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    const obs::MetricKind kS = obs::MetricKind::kStable;
    reg.GetCounter("coupled.iterations", kS).Add(stats_.iterations);
    reg.GetCounter("coupled.candidates.evaluated", kS)
        .Add(stats_.candidates_evaluated);
    reg.GetCounter("coupled.candidates.repriced", kS)
        .Add(stats_.candidates_repriced);
    reg.GetCounter("coupled.candidates.reused", kS)
        .Add(stats_.candidates_reused);
    reg.GetCounter("coupled.invalidations.tier1", kS)
        .Add(stats_.tier1_invalidations);
    reg.GetCounter("coupled.invalidations.tier2", kS)
        .Add(stats_.tier2_invalidations);
  }

  CoupledResult result;
  result.iterations = iterations;
  result.stats = stats_;
  result.schedule.blocks.resize(model_.block_count());
  for (const Block& b : model_.blocks()) {
    BlockSchedule sched(b.graph.op_count());
    const BlockState& state = blocks_[b.id.index()];
    for (const Operation& op : b.graph.ops())
      sched.set_start(op.id, state.frames.frame(op.id).asap);
    result.schedule.of(b.id) = std::move(sched);
  }
  if (Status s = ValidateSystemSchedule(model_, result.schedule); !s.ok())
    return s;
  result.allocation = ComputeAllocation(model_, result.schedule);
  return result;
}

}  // namespace mshls
