file(REMOVE_RECURSE
  "CMakeFiles/process_merge_test.dir/process_merge_test.cpp.o"
  "CMakeFiles/process_merge_test.dir/process_merge_test.cpp.o.d"
  "process_merge_test"
  "process_merge_test.pdb"
  "process_merge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/process_merge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
