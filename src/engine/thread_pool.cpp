#include "engine/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>

#include "obs/metrics.h"

namespace mshls {

namespace {

long long NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Pool metrics are kTiming: queue depth and wait times depend on the
// machine and the interleaving, and even the task counts depend on how a
// run was fanned out. They surface through `mshlsc --stats`, never through
// the deterministic exports.
obs::Counter& TasksCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "pool.tasks", obs::MetricKind::kTiming);
  return c;
}

obs::Gauge& QueueDepthGauge() {
  static obs::Gauge& g = obs::MetricsRegistry::Global().GetGauge(
      "pool.queue_depth.max", obs::MetricKind::kTiming);
  return g;
}

obs::Histogram& QueueWaitHistogram() {
  static obs::Histogram& h = obs::MetricsRegistry::Global().GetHistogram(
      "pool.queue_wait_us", obs::MetricKind::kTiming);
  return h;
}

}  // namespace

ThreadPool::ThreadPool(int threads, std::size_t queue_capacity)
    : capacity_(std::max<std::size_t>(1, queue_capacity)) {
  const int n = std::max(1, threads);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    workers_.emplace_back([this] { WorkerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  const bool observed = obs::Enabled();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    space_ready_.wait(lock, [this] { return queue_.size() < capacity_; });
    queue_.push_back(QueuedTask{std::move(task), observed ? NowNs() : 0});
    if (observed) {
      TasksCounter().Add();
      QueueDepthGauge().UpdateMax(static_cast<long long>(queue_.size()));
    }
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr e = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(e);
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    QueuedTask task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    space_ready_.notify_one();
    if (task.enqueue_ns != 0 && obs::Enabled())
      QueueWaitHistogram().Observe((NowNs() - task.enqueue_ns) / 1000);
    try {
      task.fn();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
    }
  }
}

Status ParallelFor(ThreadPool* pool, std::size_t n,
                   const std::function<Status(std::size_t)>& fn) {
  std::vector<Status> statuses(n);
  auto run_one = [&](std::size_t i) {
    try {
      statuses[i] = fn(i);
    } catch (const std::exception& e) {
      statuses[i] = Status{StatusCode::kInternal,
                           std::string("uncaught exception in parallel task: ") +
                               e.what()};
    } catch (...) {
      statuses[i] = Status{StatusCode::kInternal,
                           "uncaught non-std exception in parallel task"};
    }
  };

  if (pool == nullptr || pool->thread_count() <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) run_one(i);
  } else {
    // Claim indices through a shared counter: at most thread_count tasks
    // are submitted, each draining indices until none remain. Results land
    // in per-index slots, so claiming order never affects the outcome.
    auto next = std::make_shared<std::atomic<std::size_t>>(0);
    const std::size_t lanes =
        std::min(n, static_cast<std::size_t>(pool->thread_count()));
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      pool->Submit([&, next] {
        for (;;) {
          const std::size_t i = next->fetch_add(1);
          if (i >= n) return;
          run_one(i);
        }
      });
    }
    pool->Wait();
  }

  for (const Status& s : statuses)
    if (!s.ok()) return s;
  return Status::Ok();
}

}  // namespace mshls
