# Empty dependencies file for mshls_vsim.
# This may be replaced when dependencies are built.
