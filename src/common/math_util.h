// Small integer math helpers used by period arithmetic (paper eq. 2/3).
#pragma once

#include <cassert>
#include <cstdint>
#include <numeric>
#include <optional>
#include <span>
#include <vector>

#include "common/status.h"

namespace mshls {

/// gcd of a non-empty range; gcd({}) is defined as 0 (identity element).
[[nodiscard]] inline std::int64_t GcdOf(std::span<const std::int64_t> xs) {
  std::int64_t g = 0;
  for (std::int64_t x : xs) g = std::gcd(g, x);
  return g;
}

/// lcm of a range; lcm({}) is defined as 1 (identity element).
/// Assert-only fast path for trusted inner loops (validated periods with a
/// proven-representable grid); period arithmetic on unvalidated input must
/// go through CheckedLcmOf instead — std::lcm overflow is UB.
[[nodiscard]] inline std::int64_t LcmOf(std::span<const std::int64_t> xs) {
  std::int64_t l = 1;
  for (std::int64_t x : xs) {
    assert(x > 0 && "lcm over non-positive value");
    l = std::lcm(l, x);
  }
  return l;
}

/// Overflow-checked lcm of two positive values; nullopt when the result
/// does not fit int64.
[[nodiscard]] inline std::optional<std::int64_t> CheckedLcm(std::int64_t a,
                                                            std::int64_t b) {
  assert(a > 0 && b > 0);
  std::int64_t out = 0;
  if (__builtin_mul_overflow(a / std::gcd(a, b), b, &out)) return std::nullopt;
  return out;
}

/// Checked lcm of a range (lcm({}) = 1). Unlike LcmOf this accepts untrusted
/// input: non-positive values yield kInvalidArgument and an unrepresentable
/// lcm yields kInfeasible (a grid spacing beyond int64 admits no schedule).
[[nodiscard]] StatusOr<std::int64_t> CheckedLcmOf(
    std::span<const std::int64_t> xs);

/// All positive divisors of n (n > 0), ascending.
[[nodiscard]] std::vector<std::int64_t> DivisorsOf(std::int64_t n);

/// Floored modulo: result in [0, m) for m > 0, even for negative t.
/// This is the mapping of paper eq. 1 extended to negative absolute times
/// (a block may conceptually start before the observation origin).
[[nodiscard]] constexpr std::int64_t FlooredMod(std::int64_t t,
                                                std::int64_t m) {
  assert(m > 0);
  std::int64_t r = t % m;
  return r < 0 ? r + m : r;
}

/// Ceiling division for non-negative numerator, positive denominator.
[[nodiscard]] constexpr std::int64_t CeilDiv(std::int64_t a, std::int64_t b) {
  assert(a >= 0 && b > 0);
  return (a + b - 1) / b;
}

}  // namespace mshls
