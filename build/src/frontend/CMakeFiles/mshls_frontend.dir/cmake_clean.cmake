file(REMOVE_RECURSE
  "CMakeFiles/mshls_frontend.dir/emitter.cpp.o"
  "CMakeFiles/mshls_frontend.dir/emitter.cpp.o.d"
  "CMakeFiles/mshls_frontend.dir/lexer.cpp.o"
  "CMakeFiles/mshls_frontend.dir/lexer.cpp.o.d"
  "CMakeFiles/mshls_frontend.dir/lowering.cpp.o"
  "CMakeFiles/mshls_frontend.dir/lowering.cpp.o.d"
  "CMakeFiles/mshls_frontend.dir/parser.cpp.o"
  "CMakeFiles/mshls_frontend.dir/parser.cpp.o.d"
  "libmshls_frontend.a"
  "libmshls_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mshls_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
