// Binary (de)serialization of a CoupledResult for the persistent
// fingerprint cache (serve/disk_cache.h).
//
// Only the schedule's start steps and the run's stable stats are stored;
// the allocation is *re-derived* from (model, schedule) on load via
// ComputeAllocation — that is exactly how CoupledScheduler::Run produced
// it, so a decoded result is bit-identical to the original, and the
// format stays a few bytes per operation instead of persisting the whole
// authorization machinery.
//
// Decoding trusts nothing: the byte stream is validated structurally
// (length-checked reads), against the model (block/op counts must match),
// semantically (ValidateSystemSchedule) and — since v2 — against the
// independent certifier (verify/certifier.h): the stats of the
// certificate taken at encode time are stored with the entry, and
// DecodeResult re-certifies the rebuilt result and requires a clean
// certificate with the *same* stats. A tampered entry (edited starts that
// still happen to validate, truncated/bit-flipped stats) therefore
// downgrades to a miss instead of being served. Any mismatch is a typed
// error — the disk cache turns it into a skipped entry, never a crash.
#pragma once

#include <string>
#include <string_view>

#include "common/status.h"
#include "modulo/coupled_scheduler.h"

namespace mshls::serve {

/// Bumped whenever the byte layout changes; entries written by another
/// format version are skipped on load.
/// v1: starts + stable stats. v2: + certificate stats, re-verified on load.
inline constexpr std::uint32_t kResultFormatVersion = 2;

/// `model` must be the model the result was scheduled on: the entry
/// embeds the stats of its certificate (CertifyResult) for the load-time
/// re-verification.
[[nodiscard]] std::string EncodeResult(const SystemModel& model,
                                       const CoupledResult& result);

/// Rebuilds the result against `model` (the model the fingerprint key was
/// derived from). Fails with kInvalidArgument on any structural or
/// semantic mismatch (including a certificate that is dirty or disagrees
/// with the stored one) and with kFailedPrecondition when the entry was
/// written by another format version — the disk cache counts the two
/// apart (skipped_corrupt vs skipped_version).
[[nodiscard]] StatusOr<CoupledResult> DecodeResult(std::string_view bytes,
                                                   const SystemModel& model);

}  // namespace mshls::serve
