#include "modulo/period_search.h"

#include <algorithm>
#include <cassert>

#include "common/math_util.h"

namespace mshls {

std::vector<int> CandidatePeriods(const SystemModel& model,
                                  ResourceTypeId type) {
  const TypeAssignment& a = model.assignment(type);
  assert(a.scope == AssignmentScope::kGlobal);
  // Union of the divisors of every member's block time ranges: a period
  // that tiles *some* member's activation window is a candidate. This is
  // deliberately generous — the paper generates period sets "by a
  // permutation" and lets equation 3 discard the incompatible ones before
  // scheduling (§7); the eq.-3 filter in PeriodsCompatible() is what prunes
  // candidates that do not tile every member.
  std::vector<int> out;
  for (ProcessId pid : a.group) {
    for (BlockId bid : model.process(pid).blocks) {
      for (std::int64_t d :
           DivisorsOf(static_cast<std::int64_t>(
               model.block(bid).time_range)))
        out.push_back(static_cast<int>(d));
    }
  }
  if (out.empty()) return {1};
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

bool PeriodsCompatible(const SystemModel& model) {
  for (const Process& p : model.processes()) {
    const std::int64_t grid = model.GridSpacing(p.id);
    if (grid == 1) continue;
    for (BlockId bid : p.blocks) {
      if (model.block(bid).time_range % grid != 0) return false;
    }
  }
  return true;
}

StatusOr<PeriodSearchResult> SearchPeriods(SystemModel& model,
                                           const CoupledParams& params,
                                           const PeriodSearchOptions& options) {
  const std::vector<ResourceTypeId> globals = model.GlobalTypes();
  if (globals.empty())
    return Status{StatusCode::kFailedPrecondition,
                  "no global resource types to assign periods to (run S1)"};

  std::vector<std::vector<int>> candidates;
  candidates.reserve(globals.size());
  for (ResourceTypeId g : globals)
    candidates.push_back(CandidatePeriods(model, g));

  PeriodSearchResult result;
  result.combinations = 1;
  for (const auto& c : candidates) result.combinations *= static_cast<long>(
      c.size());

  std::vector<std::size_t> cursor(globals.size(), 0);
  bool have_best = false;
  std::vector<int> best_periods;

  for (;;) {
    for (std::size_t i = 0; i < globals.size(); ++i)
      model.SetPeriod(globals[i], candidates[i][cursor[i]]);

    if (!PeriodsCompatible(model)) {
      ++result.filtered_out;
    } else if (options.max_evaluations > 0 &&
               result.evaluated >= options.max_evaluations) {
      // Counted as a combination but not scheduled.
    } else {
      if (Status s = model.Validate(); !s.ok()) return s;
      CoupledScheduler scheduler(model, params);
      auto run_or = scheduler.Run();
      if (!run_or.ok()) return run_or.status();
      CoupledResult run = std::move(run_or).value();
      const int area = run.allocation.TotalArea(model.library());
      ++result.evaluated;

      std::vector<int> periods(globals.size());
      for (std::size_t i = 0; i < globals.size(); ++i)
        periods[i] = candidates[i][cursor[i]];
      const bool better =
          !have_best || area < result.area ||
          (area == result.area && periods > best_periods);
      if (better) {
        have_best = true;
        result.area = area;
        result.best = std::move(run);
        best_periods = periods;
      }
    }

    // Advance the mixed-radix cursor.
    std::size_t i = 0;
    for (; i < cursor.size(); ++i) {
      if (++cursor[i] < candidates[i].size()) break;
      cursor[i] = 0;
    }
    if (i == cursor.size()) break;
  }

  if (!have_best)
    return Status{StatusCode::kInfeasible,
                  "no period combination passed the eq.-3 grid filter"};
  result.periods = best_periods;
  for (std::size_t i = 0; i < globals.size(); ++i)
    model.SetPeriod(globals[i], best_periods[i]);
  return result;
}

}  // namespace mshls
