// Greedy delta-debugging shrinker for fuzz findings.
//
// Given a ModelSpec that exhibits a property (an oracle failure, or "the
// injected fault is still caught"), the shrinker repeatedly tries the
// smallest structural deletions — drop a process, a block, a share, an op
// (with its incident edges), an edge — keeping a candidate only when the
// property still holds, until a full pass makes no progress or the attempt
// budget runs out. One-at-a-time passes instead of ddmin's chunked splits:
// system models are small (tens of ops) and every candidate costs a full
// schedule + certify cycle, so the simple greedy loop is both fast enough
// and easier to reason about for reproducibility — the pass order is fixed,
// so the same finding always shrinks to the same repro.
#pragma once

#include <functional>

#include "model/model_spec.h"

namespace mshls {

/// Returns true when `spec` still exhibits the property being minimized.
/// Candidates that fail BuildModel are skipped by the shrinker itself and
/// never reach the predicate.
using SpecPredicate = std::function<bool(const ModelSpec&)>;

struct ShrinkOptions {
  /// Cap on predicate evaluations (a full scheduling pipeline each).
  int max_attempts = 400;
};

struct ShrinkResult {
  ModelSpec spec;
  int attempts = 0;   // predicate evaluations spent
  int removed = 0;    // accepted deletions
};

/// Minimizes `spec` under `keep`. `spec` itself must satisfy the predicate;
/// the result always does.
[[nodiscard]] ShrinkResult ShrinkSpec(ModelSpec spec, const SpecPredicate& keep,
                                      const ShrinkOptions& options = {});

}  // namespace mshls
