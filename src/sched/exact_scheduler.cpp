#include "sched/exact_scheduler.h"

#include <algorithm>
#include <cassert>

#include "common/math_util.h"
#include "sched/time_frames.h"

namespace mshls {
namespace {

class BranchAndBound {
 public:
  BranchAndBound(const Block& block, const ResourceLibrary& lib,
                 const ExactOptions& options)
      : block_(block), lib_(lib), options_(options) {}

  StatusOr<ExactResult> Run() {
    const DataFlowGraph& g = block_.graph;
    const DelayFn delay = [this](OpId op) {
      return lib_.type(block_.graph.op(op).type).delay;
    };
    auto frames_or = TimeFrameSet::Compute(g, delay, block_.time_range);
    if (!frames_or.ok()) return frames_or.status();
    frames_ = std::move(frames_or).value();

    order_.assign(g.topological_order().begin(),
                  g.topological_order().end());
    start_.assign(g.op_count(), -1);
    busy_.assign(lib_.size(),
                 std::vector<int>(static_cast<std::size_t>(
                                      block_.time_range),
                                  0));
    peak_.assign(lib_.size(), 0);

    // Per-type work lower bound: peaks can never drop below
    // ceil(total occupancy work / time range).
    floor_.assign(lib_.size(), 0);
    for (const ResourceType& t : lib_.types()) {
      std::int64_t work = 0;
      for (const Operation& op : g.ops())
        if (op.type == t.id) work += t.dii;
      floor_[t.id.index()] = static_cast<int>(
          CeilDiv(work, block_.time_range));
    }
    int floor_area = 0;
    for (const ResourceType& t : lib_.types())
      floor_area += floor_[t.id.index()] * t.area;

    // Incumbent: worst case, everything maximally concurrent.
    best_area_ = 1 << 28;

    Dfs(0);

    ExactResult result;
    if (best_start_.empty())
      return Status{StatusCode::kInternal, "exact search found no schedule"};
    result.schedule = BlockSchedule(g.op_count());
    for (const Operation& op : g.ops())
      result.schedule.set_start(op.id, best_start_[op.id.index()]);
    result.usage = UsageOfSchedule(result.schedule);
    result.area = best_area_;
    result.nodes = nodes_;
    result.proven_optimal =
        !aborted_ || best_area_ <= floor_area;  // floor hit = optimal anyway
    return result;
  }

 private:
  [[nodiscard]] std::vector<int> UsageOfSchedule(
      const BlockSchedule& schedule) const {
    std::vector<int> usage(lib_.size(), 0);
    for (const ResourceType& t : lib_.types()) {
      const auto prof = OccupancyProfile(block_, lib_, schedule, t.id);
      for (int v : prof) usage[t.id.index()] = std::max(usage[t.id.index()],
                                                        v);
    }
    return usage;
  }

  [[nodiscard]] int PartialArea() const {
    int area = 0;
    for (const ResourceType& t : lib_.types())
      area += std::max(peak_[t.id.index()], floor_[t.id.index()]) * t.area;
    return area;
  }

  void Dfs(std::size_t depth) {
    if (aborted_) return;
    if (options_.max_nodes > 0 && nodes_ >= options_.max_nodes) {
      aborted_ = true;
      return;
    }
    ++nodes_;
    if (PartialArea() >= best_area_) return;  // bound
    if (depth == order_.size()) {
      best_area_ = PartialArea();
      best_start_.assign(start_.begin(), start_.end());
      return;
    }

    const OpId op = order_[depth];
    const Operation& o = block_.graph.op(op);
    const ResourceType& rt = lib_.type(o.type);
    // Earliest start from already-fixed predecessors (topological order
    // guarantees they are all fixed).
    int earliest = frames_.frame(op).asap;
    for (OpId p : block_.graph.preds(op)) {
      assert(start_[p.index()] >= 0);
      earliest = std::max(earliest,
                          start_[p.index()] + lib_.type(
                              block_.graph.op(p).type).delay);
    }
    const int latest = frames_.frame(op).alap;
    for (int s = earliest; s <= latest; ++s) {
      // Apply occupancy, track peak delta.
      const int saved_peak = peak_[o.type.index()];
      start_[op.index()] = s;
      for (int k = 0; k < rt.dii; ++k) {
        const int v = ++busy_[o.type.index()][static_cast<std::size_t>(
            s + k)];
        peak_[o.type.index()] = std::max(peak_[o.type.index()], v);
      }
      Dfs(depth + 1);
      for (int k = 0; k < rt.dii; ++k)
        --busy_[o.type.index()][static_cast<std::size_t>(s + k)];
      peak_[o.type.index()] = saved_peak;
      start_[op.index()] = -1;
      if (aborted_) return;
    }
  }

  const Block& block_;
  const ResourceLibrary& lib_;
  const ExactOptions& options_;
  TimeFrameSet frames_;
  std::vector<OpId> order_;
  std::vector<int> start_;
  std::vector<std::vector<int>> busy_;  // [type][t]
  std::vector<int> peak_;               // current peaks
  std::vector<int> floor_;              // work lower bounds
  std::vector<int> best_start_;
  int best_area_ = 0;
  std::int64_t nodes_ = 0;
  bool aborted_ = false;
};

}  // namespace

StatusOr<ExactResult> ScheduleBlockExact(const Block& block,
                                         const ResourceLibrary& lib,
                                         const ExactOptions& options) {
  assert(block.graph.validated());
  BranchAndBound search(block, lib, options);
  return search.Run();
}

}  // namespace mshls
