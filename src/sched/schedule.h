// Schedule containers and block-level validation.
#pragma once

#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "model/system_model.h"

namespace mshls {

/// Start step per operation of one block; -1 = unscheduled.
class BlockSchedule {
 public:
  BlockSchedule() = default;
  explicit BlockSchedule(std::size_t op_count) : start_(op_count, -1) {}

  [[nodiscard]] int start(OpId op) const { return start_[op.index()]; }
  void set_start(OpId op, int step) { start_[op.index()] = step; }
  [[nodiscard]] std::size_t size() const { return start_.size(); }
  [[nodiscard]] bool Complete() const;

  /// Schedule length: max over ops of start + delay.
  [[nodiscard]] int Length(const DataFlowGraph& graph,
                           const DelayFn& delay) const;

 private:
  std::vector<int> start_;
};

/// Per-block schedules for a whole system, indexed by BlockId.
struct SystemSchedule {
  std::vector<BlockSchedule> blocks;

  [[nodiscard]] const BlockSchedule& of(BlockId b) const {
    return blocks[b.index()];
  }
  [[nodiscard]] BlockSchedule& of(BlockId b) { return blocks[b.index()]; }
};

/// Checks that a block schedule is complete, within [0, time_range) and
/// respects every precedence edge. Resource legality is checked separately
/// (it depends on the allocation and, for global types, on the modulo
/// authorization model — see modulo/allocation.h).
[[nodiscard]] Status ValidateBlockSchedule(const Block& block,
                                           const DelayFn& delay,
                                           const BlockSchedule& schedule);

/// Number of ops of `type` in `block` occupying their resource at relative
/// step t (start <= t < start + dii) under `schedule`.
[[nodiscard]] int OccupancyAt(const Block& block, const ResourceLibrary& lib,
                              const BlockSchedule& schedule,
                              ResourceTypeId type, int t);

/// Occupancy profile over the whole time range of the block.
[[nodiscard]] std::vector<int> OccupancyProfile(const Block& block,
                                                const ResourceLibrary& lib,
                                                const BlockSchedule& schedule,
                                                ResourceTypeId type);

}  // namespace mshls
