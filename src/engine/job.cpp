#include "engine/job.h"

#include <chrono>
#include <utility>

#include "bind/area_report.h"
#include "bind/binding.h"
#include "frontend/lowering.h"
#include "modulo/allocation.h"
#include "modulo/baseline.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/simulator.h"
#include "verify/certifier.h"

namespace mshls {
namespace {

/// Wraps the user observer (if any) with a cancellation probe so a cancel
/// or timeout aborts the coupled scheduler at the next iteration.
CoupledParams InstrumentParams(const SchedulingJob& job) {
  CoupledParams params = job.params;
  if (!job.cancel) return params;
  CoupledObserver user = params.observer;
  std::shared_ptr<CancelToken> token = job.cancel;
  params.observer = [token, user](const CoupledIterationTrace& trace) {
    token->Check();
    if (user) user(trace);
  };
  return params;
}

/// A rung is skipped (not recorded) when it cannot change the outcome.
bool RungApplicable(DegradationRung rung, const SchedulingJob& job,
                    const SystemModel& model) {
  const bool has_globals = !model.GlobalTypes().empty();
  switch (rung) {
    case DegradationRung::kAsRequested:
      return true;
    case DegradationRung::kRelaxPeriods:
      // Pointless when the request already searches periods (or the wider
      // S1+S2 space), or when there is no period to relax.
      return has_globals && job.mode != JobMode::kSearchPeriods &&
             job.mode != JobMode::kSearchAssignments;
    case DegradationRung::kDemoteGlobals:
      return has_globals;
    case DegradationRung::kLocalBaseline:
      return job.mode != JobMode::kLocalBaseline;
  }
  return false;
}

/// Runs schedule -> bind -> validate for one rung on a fresh model copy,
/// writing the artifacts into `out` (meaningful only on Ok). `track` is
/// the job's single-owner trace track (or null); attempts run serially
/// within a job, so appending here is race-free.
Status RunAttempt(const SchedulingJob& job, DegradationRung rung,
                  const SystemModel& base_model, JobResult& out,
                  obs::TraceTrack* track) {
  const auto poll = [&]() -> Status {
    return job.cancel ? job.cancel->Poll() : Status::Ok();
  };

  SystemModel model = base_model;
  JobMode mode = job.mode;
  switch (rung) {
    case DegradationRung::kAsRequested:
      break;
    case DegradationRung::kRelaxPeriods:
      mode = JobMode::kSearchPeriods;
      break;
    case DegradationRung::kDemoteGlobals:
      for (ResourceTypeId g : model.GlobalTypes()) model.MakeLocal(g);
      mode = JobMode::kCoupled;
      break;
    case DegradationRung::kLocalBaseline:
      mode = JobMode::kLocalBaseline;
      break;
  }

  // Stage 2 — schedule (with optional S1/S2 search).
  if (Status s = poll(); !s.ok()) return s;
  const CoupledParams params = InstrumentParams(job);
  {
    obs::ScopedSpan schedule_span(
        track, "schedule",
        obs::TraceArgs().S("mode", JobModeName(mode)).Json());
  switch (mode) {
    case JobMode::kCoupled: {
      if (job.cluster_cap > 0 && rung != DegradationRung::kDemoteGlobals) {
        HierarchyOptions hierarchy;
        hierarchy.max_cluster_processes = job.cluster_cap;
        hierarchy.jobs = job.jobs;
        hierarchy.cache = job.cache;
        hierarchy.store = job.store;
        auto run_or = ScheduleHierarchical(model, params, hierarchy);
        if (!run_or.ok()) return run_or.status();
        out.result.schedule = std::move(run_or.value().schedule);
        out.result.allocation = std::move(run_or.value().allocation);
        out.result.iterations = run_or.value().iterations;
        out.clusters = static_cast<long>(run_or.value().clusters.size());
        out.evaluated += 1;
        break;
      }
      bool hit = false;
      bool store_hit = false;
      auto run_or = ScheduleWithCache(model, params, job.cache, &hit,
                                      job.store, &store_hit);
      if (!run_or.ok()) return run_or.status();
      out.result = std::move(run_or).value();
      out.evaluated += 1;
      out.cache_hits += hit ? 1 : 0;
      out.store_hits += store_hit ? 1 : 0;
      break;
    }
    case JobMode::kSearchPeriods: {
      PeriodSearchOptions options;
      options.configurator = job.configurator;
      options.jobs = job.jobs;
      options.cache = job.cache;
      options.store = job.store;
      auto search = SearchPeriods(model, params, options);
      if (!search.ok()) return search.status();
      out.evaluated += search.value().evaluated;
      out.cache_hits += search.value().cache_hits;
      out.store_hits += search.value().store_hits;
      out.result = std::move(search).value().best;
      break;
    }
    case JobMode::kSearchAssignments: {
      AssignmentSearchOptions options;
      options.configurator = job.configurator;
      options.jobs = job.jobs;
      options.cache = job.cache;
      options.store = job.store;
      auto search = SearchAssignments(model, params, options);
      if (!search.ok()) return search.status();
      out.evaluated += search.value().evaluated;
      out.cache_hits += search.value().cache_hits;
      out.store_hits += search.value().store_hits;
      out.result = std::move(search).value().best;
      break;
    }
    case JobMode::kLocalBaseline: {
      auto run = ScheduleLocalBaseline(model, params);
      if (!run.ok()) return run.status();
      out.result = std::move(run).value();
      out.evaluated += 1;
      break;
    }
  }
  }  // schedule span
  out.area = out.result.allocation.TotalArea(model.library());

  // Stage 3 — bind.
  if (Status s = poll(); !s.ok()) return s;
  obs::ScopedSpan bind_span(track, "bind");
  auto binding = BindSystem(model, out.result.schedule, out.result.allocation);
  if (!binding.ok()) return binding.status();
  out.full_area = ComputeAreaBreakdown(model, out.result.schedule,
                                       out.result.allocation, binding.value())
                      .total_area;
  bind_span.Close();

  // Stage 4 — validate: the producer-side checks, then the independent
  // certifier (a structurally different implementation; see verify/).
  if (Status s = poll(); !s.ok()) return s;
  obs::ScopedSpan validate_span(track, "validate");
  if (Status s = ValidateSystemSchedule(model, out.result.schedule); !s.ok())
    return s;
  if (Status s = CheckAllocationCovers(model, out.result.schedule,
                                       out.result.allocation);
      !s.ok())
    return s;
  if (job.certify) {
    const CertificateReport report =
        CertifySchedule(model, out.result.schedule, out.result.allocation,
                        &binding.value());
    if (!report.ok())
      return Status{StatusCode::kInternal,
                    "certificate: " + report.Summary()};
  }
  if (job.simulate_activations > 0) {
    SystemSimulator sim(model, out.result.schedule, out.result.allocation);
    TraceOptions trace_options;
    trace_options.activations_per_process = job.simulate_activations;
    const SimReport report =
        sim.Run(RandomActivationTrace(model, trace_options));
    if (!report.ok)
      return Status{StatusCode::kInternal,
                    "simulated activation trace hit a resource conflict"};
  }
  if (job.keep_model)
    out.model = std::make_shared<const SystemModel>(std::move(model));
  return Status::Ok();
}

/// The repair pipeline (job.repair present): parse delta -> look the base
/// schedule up in the cache tiers -> walk the repair ladder -> bind the
/// winner for area accounting. Certification happens per rung inside
/// RepairSchedule and cannot be switched off.
Status RunRepair(const SchedulingJob& job, const SystemModel& base,
                 JobResult& out, obs::TraceTrack* track) {
  if (job.mode != JobMode::kCoupled)
    return Status{StatusCode::kInvalidArgument,
                  std::string("repair requires coupled mode, got ") +
                      JobModeName(job.mode)};
  const RepairRequest& request = *job.repair;

  ModelDelta delta;
  if (request.delta.has_value()) {
    delta = *request.delta;
  } else {
    obs::ScopedSpan parse_span(track, "parse-delta");
    auto delta_or = ParseDelta(request.delta_source, base);
    if (!delta_or.ok()) return delta_or.status();
    delta = std::move(delta_or).value();
  }

  const auto poll = [&]() -> Status {
    return job.cancel ? job.cancel->Poll() : Status::Ok();
  };
  const CoupledParams params = InstrumentParams(job);

  // The base schedule: served from a cache tier, or (CLI mode) solved on
  // the spot. A daemon sets solve_base_if_missing=false so an evicted base
  // comes back as a typed kNotFound rejection instead of a silent full
  // solve under a repair label.
  CoupledResult old;
  bool have_old = false;
  const std::uint64_t base_key = ScheduleCacheKey(base, params);
  if (job.cache != nullptr) {
    if (std::optional<CoupledResult> found = job.cache->Lookup(base_key)) {
      old = *std::move(found);
      have_old = true;
    }
  }
  if (!have_old && job.store != nullptr) {
    SystemModel base_copy = base;
    if (std::optional<CoupledResult> found =
            job.store->Load(base_key, base_copy)) {
      old = *std::move(found);
      have_old = true;
      if (job.cache != nullptr) job.cache->Insert(base_key, old);
    }
  }
  if (!have_old) {
    if (!request.solve_base_if_missing)
      return Status{StatusCode::kNotFound,
                    "base schedule unknown (not in any cache tier): solve "
                    "the base first or resubmit without --repair"};
    if (Status s = poll(); !s.ok()) return s;
    obs::ScopedSpan base_span(track, "solve-base");
    SystemModel base_copy = base;
    bool hit = false;
    bool store_hit = false;
    auto run_or = ScheduleWithCache(base_copy, params, job.cache, &hit,
                                    job.store, &store_hit);
    if (!run_or.ok())
      return Status{run_or.status().code(),
                    "base solve: " + run_or.status().message()};
    old = std::move(run_or).value();
    out.evaluated += 1;
    out.cache_hits += hit ? 1 : 0;
    out.store_hits += store_hit ? 1 : 0;
  }

  if (Status s = poll(); !s.ok()) return s;
  RepairOptions options;
  options.params = params;
  options.cache = job.cache;
  options.store = job.store;
  options.jobs = job.jobs;
  auto repaired_or = RepairSchedule(base, old, delta, options);
  if (!repaired_or.ok()) return repaired_or.status();
  RepairResult repaired = std::move(repaired_or).value();
  out.evaluated += repaired.evaluated;
  out.cache_hits += repaired.cache_hits;
  out.store_hits += repaired.store_hits;
  out.repaired = true;
  out.repair_rung = repaired.rung;
  out.repair_attempts = std::move(repaired.attempts);
  out.result = std::move(repaired.result);

  const SystemModel& model = *repaired.model;
  out.area = out.result.allocation.TotalArea(model.library());

  if (Status s = poll(); !s.ok()) return s;
  obs::ScopedSpan bind_span(track, "bind");
  auto binding = BindSystem(model, out.result.schedule, out.result.allocation);
  if (!binding.ok()) return binding.status();
  out.full_area = ComputeAreaBreakdown(model, out.result.schedule,
                                       out.result.allocation, binding.value())
                      .total_area;
  bind_span.Close();

  if (job.simulate_activations > 0) {
    SystemSimulator sim(model, out.result.schedule, out.result.allocation);
    TraceOptions trace_options;
    trace_options.activations_per_process = job.simulate_activations;
    const SimReport report =
        sim.Run(RandomActivationTrace(model, trace_options));
    if (!report.ok)
      return Status{StatusCode::kInternal,
                    "simulated activation trace hit a resource conflict"};
  }
  if (job.keep_model) out.model = repaired.model;
  return Status::Ok();
}

}  // namespace

const char* JobModeName(JobMode mode) {
  switch (mode) {
    case JobMode::kCoupled: return "coupled";
    case JobMode::kSearchPeriods: return "search-periods";
    case JobMode::kSearchAssignments: return "search-assignments";
    case JobMode::kLocalBaseline: return "local-baseline";
  }
  return "unknown";
}

JobResult RunSchedulingJob(const SchedulingJob& job) {
  JobResult out;
  out.name = job.name;
  const auto t0 = std::chrono::steady_clock::now();

  // One single-owner track per job run: the "#N" suffix keeps concurrent
  // batch jobs (or repeated runs of one name) off each other's tracks.
  obs::TraceTrack* track = nullptr;
  if (obs::Tracer* tracer = obs::GlobalTracer())
    track = &tracer->NewTrack("job:" + job.name);
  obs::ScopedSpan job_span(track, "job",
                           obs::TraceArgs().S("mode", JobModeName(job.mode)).Json());

  const auto finish = [&](Status status) -> JobResult {
    out.status = std::move(status);
    out.wall_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    if (track != nullptr)
      track->Instant("done",
                     obs::TraceArgs()
                         .S("status", StatusCodeName(out.status.code()))
                         .S("rung", DegradationRungName(out.rung))
                         .I("area", out.area)
                         .I("evaluated", out.evaluated)
                         .I("cache_hits", out.cache_hits)
                         .Json());
    if (obs::Enabled()) {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
      const obs::MetricKind kS = obs::MetricKind::kStable;
      reg.GetCounter(out.status.ok() ? "job.completed" : "job.failed", kS)
          .Add();
      reg.GetCounter("job.attempts", kS)
          .Add(static_cast<long long>(out.attempts.size()));
      if (out.status.ok())
        reg.GetCounter(std::string("job.rung.") + DegradationRungName(out.rung),
                       kS)
            .Add();
      reg.GetHistogram("job.wall_us", obs::MetricKind::kTiming)
          .Observe(static_cast<long long>(out.wall_ms * 1000.0));
    }
    return out;
  };

  try {
    // Stage 1 — compile. Failures here are input problems; no weaker
    // formulation exists, so the ladder never starts.
    if (job.cancel) job.cancel->SetTimeout(job.timeout_ms);
    if (Status s = job.cancel ? job.cancel->Poll() : Status::Ok(); !s.ok())
      return finish(std::move(s));
    SystemModel model;
    if (job.model.has_value()) {
      model = *job.model;
    } else {
      obs::ScopedSpan compile_span(track, "compile");
      auto model_or = CompileSystem(job.source);
      if (!model_or.ok()) return finish(model_or.status());
      model = std::move(model_or).value();
    }

    // Repair jobs bypass the degradation ladder: the repair pipeline walks
    // its own certificate-gated ladder (modulo/repair.h).
    if (job.repair.has_value()) {
      Status attempt;
      try {
        attempt = RunRepair(job, model, out, track);
      } catch (const CancelledError& e) {
        attempt = Status{e.code(), e.what()};
      }
      return finish(std::move(attempt));
    }

    // Stages 2-4 under the degradation ladder: each rung gets a fresh model
    // copy and a fresh timeout budget; the first clean attempt wins.
    std::vector<DegradationRung> ladder = job.ladder;
    if (ladder.empty()) ladder.push_back(DegradationRung::kAsRequested);
    Status last = Status::Ok();
    for (DegradationRung rung : ladder) {
      if (rung != DegradationRung::kAsRequested &&
          !RungApplicable(rung, job, model))
        continue;
      if (job.cancel) job.cancel->SetTimeout(job.timeout_ms);
      Status attempt;
      try {
        obs::ScopedSpan attempt_span(
            track, "attempt",
            obs::TraceArgs().S("rung", DegradationRungName(rung)).Json());
        attempt = RunAttempt(job, rung, model, out, track);
      } catch (const CancelledError& e) {
        attempt = Status{e.code(), e.what()};
      }
      out.attempts.push_back(RungAttempt{rung, attempt});
      if (attempt.ok()) {
        out.rung = rung;
        return finish(Status::Ok());
      }
      last = std::move(attempt);
      // Cancellation and input errors are not recoverable by weakening.
      if (!IsDegradable(last.code())) break;
    }
    return finish(std::move(last));
  } catch (const CancelledError& e) {
    return finish(Status{e.code(), e.what()});
  } catch (const std::exception& e) {
    return finish(Status{StatusCode::kInternal,
                         std::string("uncaught exception in job: ") + e.what()});
  }
}

}  // namespace mshls
