// Deterministic pseudo-random source for workload generators and property
// tests. A fixed, documented algorithm (splitmix64 + xoshiro-style mixing)
// keeps generated graphs identical across platforms and standard libraries,
// which std::mt19937 + distribution objects do not guarantee.
//
// Bounded draws use Lemire's multiply-shift rejection sampling (Lemire,
// "Fast Random Integer Generation in an Interval", 2019) instead of the
// classic `% span`, which is biased toward the low end of the range for
// spans that do not divide 2^64. The bias is tiny at 64 bits, but the fuzz
// generator leans on NextInt for every structural choice, so the draws are
// exact. Changing the sampling changes every derived stream; all generated
// corpora (workloads, fuzz cases, activation traces) regenerate from their
// seeds, so no stored artifact depends on the old stream.
#pragma once

#include <cassert>
#include <cstdint>

namespace mshls {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value (splitmix64).
  std::uint64_t NextU64() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, span), unbiased; requires span >= 1.
  std::uint64_t NextBounded(std::uint64_t span) {
    assert(span >= 1);
#if defined(__SIZEOF_INT128__)
    // Lemire multiply-shift: map x to x*span >> 64 and reject the draws
    // whose low word falls under 2^64 mod span (the over-represented slice).
    std::uint64_t x = NextU64();
    unsigned __int128 m = static_cast<unsigned __int128>(x) * span;
    std::uint64_t low = static_cast<std::uint64_t>(m);
    if (low < span) {
      const std::uint64_t threshold = (0 - span) % span;  // 2^64 mod span
      while (low < threshold) {
        x = NextU64();
        m = static_cast<unsigned __int128>(x) * span;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
#else
    // Portable fallback: power-of-two mask rejection (also unbiased).
    std::uint64_t mask = span - 1;
    mask |= mask >> 1;
    mask |= mask >> 2;
    mask |= mask >> 4;
    mask |= mask >> 8;
    mask |= mask >> 16;
    mask |= mask >> 32;
    for (;;) {
      const std::uint64_t v = NextU64() & mask;
      if (v < span) return v;
    }
#endif
  }

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  int NextInt(int lo, int hi) {
    assert(lo <= hi);
    const std::uint64_t span =
        static_cast<std::uint64_t>(static_cast<std::int64_t>(hi) - lo) + 1;
    return lo + static_cast<int>(NextBounded(span));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability p.
  bool NextBool(double p) { return NextDouble() < p; }

 private:
  std::uint64_t state_;
};

}  // namespace mshls
