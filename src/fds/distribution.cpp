#include "fds/distribution.h"

#include <algorithm>
#include <cassert>

namespace mshls {

void AddOccupancyProbability(Profile& p, const TimeFrame& f, int dii,
                             double scale) {
  assert(dii >= 1);
  const double per_start = scale / f.width();
  // Occupancy of start s covers [s, s+dii); summed over all starts this is
  // a trapezoid over [asap, alap+dii) whose height at t is the number of
  // covering starts. One fused write per step with the closed-form count
  // replaces the former O(width*dii) nested accumulation.
  for (int t = f.asap; t < f.alap + dii; ++t) {
    const int covering = std::min(t, f.alap) - std::max(t - dii + 1, f.asap)
                         + 1;
    assert(covering >= 1 && static_cast<std::size_t>(t) < p.size());
    p[static_cast<std::size_t>(t)] += covering * per_start;
  }
}

Profile BuildTypeProfile(const Block& block, const ResourceLibrary& lib,
                         const TimeFrameSet& frames, ResourceTypeId type) {
  Profile p(static_cast<std::size_t>(block.time_range), 0.0);
  const int dii = lib.type(type).dii;
  for (const Operation& op : block.graph.ops()) {
    if (op.type != type) continue;
    AddOccupancyProbability(p, frames.frame(op.id), dii, 1.0);
  }
  return p;
}

std::vector<Profile> BuildAllProfiles(const Block& block,
                                      const ResourceLibrary& lib,
                                      const TimeFrameSet& frames) {
  std::vector<Profile> out(lib.size());
  for (const ResourceType& t : lib.types())
    out[t.id.index()] = BuildTypeProfile(block, lib, frames, t.id);
  return out;
}

double ProfileMass(const Profile& p) {
  double m = 0;
  for (double v : p) m += v;
  return m;
}

double ProfileMax(const Profile& p) {
  double m = 0;
  for (double v : p) m = std::max(m, v);
  return m;
}

}  // namespace mshls
