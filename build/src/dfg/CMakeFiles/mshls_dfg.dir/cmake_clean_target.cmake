file(REMOVE_RECURSE
  "libmshls_dfg.a"
)
