// Tokenizer for the behavioral input language (see frontend/parser.h for
// the grammar). Supports '#' and '//' line comments.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace mshls {

enum class TokenKind {
  kIdent,
  kInt,
  kLBrace,    // {
  kRBrace,    // }
  kLParen,    // (
  kRParen,    // )
  kComma,     // ,
  kSemicolon, // ;
  kAssign,    // =
  kPlus,      // +
  kMinus,     // -
  kStar,      // *
  kSlash,     // /
  kLess,      // <
  kEof,
};

[[nodiscard]] const char* TokenKindName(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;
  int line = 0;
  int column = 0;
  long value = 0;  // for kInt
};

/// Tokenizes `source`; the result always ends with a kEof token.
[[nodiscard]] StatusOr<std::vector<Token>> Tokenize(std::string_view source);

}  // namespace mshls
