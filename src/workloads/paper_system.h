// The multi-process example of the paper's experimental section (§7):
// five independently running processes — three elliptic wave filters
// (P1–P3) and two differential-equation solver loops (P4, P5) — with the
// adder and multiplier shared globally by all five processes and the
// subtracter shared by P4 + P5, one common period for all global types.
//
// The paper's scan lost most digits; the reconstruction used here
// (documented in DESIGN.md) is:
//   deadlines: P1 = P2 = 30, P3 = 25, P4 = P5 = 15;  common period 5.
// All knobs are parameters so benches can sweep them.
#pragma once

#include "model/system_model.h"
#include "workloads/benchmarks.h"

namespace mshls {

struct PaperSystemOptions {
  int ewf_deadline_a = 30;  // P1, P2
  int ewf_deadline_b = 25;  // P3
  int diffeq_deadline = 15; // P4, P5
  int period = 5;           // lambda for every global type
  /// Apply the paper's S1 choice (adder+multiplier global to all five,
  /// subtracter global to P4+P5). When false all types stay local.
  bool make_global = true;
};

struct PaperSystem {
  SystemModel model;
  PaperTypes types;
  ProcessId ewf[3];
  ProcessId diffeq[2];
};

/// Builds and validates the system; asserts on internal inconsistency
/// (the options are compile-time style knobs, not user input).
[[nodiscard]] PaperSystem BuildPaperSystem(
    const PaperSystemOptions& options = {});

}  // namespace mshls
