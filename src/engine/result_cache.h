// In-memory result cache for scheduling runs.
//
// Keys are canonical 64-bit fingerprints (see engine/fingerprint.h): two
// models that hash equal are assumed identical, which is sound here
// because every run is deterministic — a (vanishingly unlikely) collision
// would still return a *valid* schedule for the colliding key, and the
// determinism tests compare cached against recomputed results.
//
// The cache is shared by all workers of a fan-out, so Lookup/Insert are
// guarded by a mutex; values are returned by copy so no reference escapes
// the lock. Bounded capacity uses FIFO eviction — sweep workloads revisit
// recent candidates, not ancient ones, and FIFO keeps eviction
// deterministic under any insertion order interleaving of equal keys.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <unordered_map>

namespace mshls {

struct CacheStats {
  long hits = 0;
  long misses = 0;
  long insertions = 0;
  long evictions = 0;

  [[nodiscard]] double HitRate() const {
    const long total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

template <typename V>
class ResultCache {
 public:
  /// capacity 0 = unbounded.
  explicit ResultCache(std::size_t capacity = 0) : capacity_(capacity) {}

  [[nodiscard]] std::optional<V> Lookup(std::uint64_t key) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = map_.find(key);
    if (it == map_.end()) {
      ++stats_.misses;
      return std::nullopt;
    }
    ++stats_.hits;
    return it->second;
  }

  void Insert(std::uint64_t key, V value) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto [it, inserted] = map_.try_emplace(key, std::move(value));
    if (!inserted) return;  // first result wins; runs are deterministic
    ++stats_.insertions;
    order_.push_back(key);
    if (capacity_ > 0 && map_.size() > capacity_) {
      map_.erase(order_.front());
      order_.pop_front();
      ++stats_.evictions;
    }
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return map_.size();
  }

  [[nodiscard]] CacheStats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    map_.clear();
    order_.clear();
  }

 private:
  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::unordered_map<std::uint64_t, V> map_;
  std::deque<std::uint64_t> order_;
  CacheStats stats_;
};

}  // namespace mshls
