#include "modulo/resource_constrained.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "modulo/modulo_map.h"
#include "sched/time_frames.h"

namespace mshls {
namespace {

int LimitOf(const std::vector<int>& limits, ResourceTypeId type) {
  if (type.index() >= limits.size()) return 1;
  return limits[type.index()] <= 0 ? 1 : limits[type.index()];
}

}  // namespace

StatusOr<RcModuloResult> ScheduleResourceConstrainedModulo(
    const SystemModel& model, const RcModuloOptions& options) {
  const ResourceLibrary& lib = model.library();

  // Committed authorization per (process, global type): folded occupancy
  // of the process' already-scheduled blocks.
  std::vector<std::vector<std::vector<int>>> committed(
      model.process_count(), std::vector<std::vector<int>>(lib.size()));
  for (const Process& p : model.processes())
    for (ResourceTypeId g : model.GlobalTypes())
      if (model.InGroup(g, p.id))
        committed[p.id.index()][g.index()].assign(
            static_cast<std::size_t>(model.assignment(g).period), 0);

  // Blocks in descending weighted-work order: the hungriest first so the
  // cheap ones fill the leftover residues.
  std::vector<BlockId> order;
  for (const Block& b : model.blocks()) order.push_back(b.id);
  auto work_of = [&](BlockId bid) {
    long w = 0;
    for (const Operation& op : model.block(bid).graph.ops())
      w += static_cast<long>(lib.type(op.type).dii) * lib.type(op.type).area;
    return w;
  };
  std::sort(order.begin(), order.end(), [&](BlockId a, BlockId b) {
    const long wa = work_of(a);
    const long wb = work_of(b);
    if (wa != wb) return wa > wb;
    return a < b;
  });

  RcModuloResult result;
  result.schedule.blocks.resize(model.block_count());
  result.lengths.assign(model.block_count(), 0);
  // Observed local peaks per (process, type).
  std::vector<std::vector<int>> local_peak(
      model.process_count(), std::vector<int>(lib.size(), 0));

  for (BlockId bid : order) {
    const Block& b = model.block(bid);
    const DataFlowGraph& g = b.graph;
    const ProcessId pid = b.process;
    const DelayFn delay = model.DelayOf(bid);

    int max_length = options.max_length;
    if (max_length <= 0) {
      int total_dii = 0;
      int max_period = 1;
      for (const Operation& op : g.ops()) total_dii += lib.type(op.type).dii;
      for (ResourceTypeId gt : model.GlobalTypes())
        max_period = std::max(max_period, model.assignment(gt).period);
      max_length = total_dii * max_period +
                   g.CriticalPathLength(delay) + 1;
    }

    // Slack priorities from an unconstrained ALAP over the cap.
    auto frames_or = TimeFrameSet::Compute(g, delay, max_length);
    if (!frames_or.ok()) return frames_or.status();
    const TimeFrameSet& frames = frames_or.value();

    BlockSchedule schedule(g.op_count());
    // Block-local occupancy per type over the horizon.
    std::vector<std::vector<int>> busy(
        lib.size(), std::vector<int>(static_cast<std::size_t>(max_length),
                                     0));

    // Current effective claim of this process at residue tau of a pooled
    // type: committed authorizations of earlier blocks combined with the
    // fold of what this block has issued so far.
    auto effective_claim = [&](const Operation& op, int tau) {
      const int lambda = model.assignment(op.type).period;
      int claim = committed[pid.index()][op.type.index()]
                           [static_cast<std::size_t>(tau)];
      for (int u = tau >= b.phase ? tau - b.phase : tau - b.phase + lambda;
           u < max_length; u += lambda) {
        claim = std::max(
            claim, busy[op.type.index()][static_cast<std::size_t>(u)]);
      }
      return claim;
    };

    enum class Issue { kNo, kFree, kNewClaim };
    // Classifies an issue of `op` at step s: kFree = fits the existing
    // claims/limits, kNewClaim = fits the pool but raises this process'
    // authorization at some residue, kNo = violates a limit.
    auto classify = [&](const Operation& op, int s) {
      const ResourceType& rt = lib.type(op.type);
      if (s + rt.delay > max_length) return Issue::kNo;
      const bool pooled =
          model.is_global(op.type) && model.InGroup(op.type, pid);
      bool new_claim = false;
      for (int k = 0; k < rt.dii; ++k) {
        const int t = s + k;
        const int with_op = busy[op.type.index()][static_cast<std::size_t>(
                                t)] +
                            1;
        if (!pooled) {
          if (with_op > LimitOf(options.local_limits, op.type))
            return Issue::kNo;
          continue;
        }
        const int lambda = model.assignment(op.type).period;
        const int tau = ResidueOf(t, b.phase, lambda);
        const int claim = effective_claim(op, tau);
        if (with_op > claim) {
          new_claim = true;
          int others = 0;
          for (const Process& q : model.processes()) {
            if (q.id == pid) continue;
            const auto& row = committed[q.id.index()][op.type.index()];
            if (!row.empty()) others += row[static_cast<std::size_t>(tau)];
          }
          if (with_op + others > LimitOf(options.pool_limits, op.type))
            return Issue::kNo;
        }
      }
      return new_claim ? Issue::kNewClaim : Issue::kFree;
    };

    // Fair-share claim budget per pooled type: the pool offers
    // pool * lambda claim slots (instances x residues); each user process
    // is entitled to its work-proportional share up front. Within the
    // budget a process claims freely (keeping its latency near the
    // unconstrained value); beyond it, claim raises are deferred whenever
    // a claim-free slot exists within the next period — the op simply
    // rides an already-claimed residue, leaving room for the processes
    // scheduled later. An op with no free slot in reach claims anyway
    // (bounded waiting), subject to the pool check in classify().
    std::vector<long> claim_budget(lib.size(), 0);
    for (ResourceTypeId gt : model.GlobalTypes()) {
      if (!model.InGroup(gt, pid)) continue;
      const int lambda = model.assignment(gt).period;
      const long slots =
          static_cast<long>(LimitOf(options.pool_limits, gt)) * lambda;
      long own_work = 0;
      long total_work = 0;
      long users = 0;
      for (ProcessId q : model.GlobalUsers(gt)) {
        long w = 0;
        for (BlockId qb : model.process(q).blocks)
          for (const Operation& op : model.block(qb).graph.ops())
            if (op.type == gt) w += lib.type(gt).dii;
        total_work += w;
        ++users;
        if (q == pid) own_work = w;
      }
      // Base share of one slot per user (so no process is ever starved by
      // the budgets of the hungrier ones), remaining slots distributed
      // proportionally to work.
      const long extra = std::max<long>(0, slots - users);
      claim_budget[gt.index()] =
          total_work == 0 ? slots
                          : 1 + extra * own_work / total_work;
    }

    auto total_claim = [&](const Operation& op) {
      const int lambda = model.assignment(op.type).period;
      long total = 0;
      for (int tau = 0; tau < lambda; ++tau)
        total += effective_claim(op, tau);
      return total;
    };
    // New claim-units an issue at s would add.
    auto claim_delta = [&](const Operation& op, int s) {
      const ResourceType& rt = lib.type(op.type);
      const int lambda = model.assignment(op.type).period;
      long delta = 0;
      for (int k = 0; k < rt.dii; ++k) {
        const int t = s + k;
        const int tau = ResidueOf(t, b.phase, lambda);
        const int with_op =
            busy[op.type.index()][static_cast<std::size_t>(t)] + 1;
        const int claim = effective_claim(op, tau);
        if (with_op > claim) delta += with_op - claim;
      }
      return delta;
    };

    auto can_issue = [&](const Operation& op, int s, int /*data_ready*/) {
      const Issue kind = classify(op, s);
      if (kind == Issue::kNo) return false;
      if (kind == Issue::kFree) return true;
      // Within the fair share: claim freely.
      if (total_claim(op) + claim_delta(op, s) <=
          claim_budget[op.type.index()])
        return true;
      const int lambda = model.assignment(op.type).period;
      for (int c = s + 1; c <= s + lambda && c < max_length; ++c)
        if (classify(op, c) == Issue::kFree) return false;  // defer
      return true;
    };

    // Least-slack-first list scheduling over the capped horizon.
    std::vector<int> unscheduled_preds(g.op_count(), 0);
    std::vector<int> earliest(g.op_count(), 0);
    for (const Operation& op : g.ops())
      unscheduled_preds[op.id.index()] =
          static_cast<int>(g.preds(op.id).size());
    std::vector<OpId> ready;
    for (const Operation& op : g.ops())
      if (unscheduled_preds[op.id.index()] == 0) ready.push_back(op.id);

    int scheduled = 0;
    int length = 0;
    for (int cycle = 0; scheduled < static_cast<int>(g.op_count());
         ++cycle) {
      if (cycle >= max_length)
        return Status{StatusCode::kInfeasible,
                      "block '" + b.name +
                          "' does not fit the given pools within " +
                          std::to_string(max_length) + " steps"};
      std::vector<OpId> candidates;
      for (OpId id : ready)
        if (earliest[id.index()] <= cycle) candidates.push_back(id);
      std::sort(candidates.begin(), candidates.end(),
                [&](OpId x, OpId y) {
                  if (frames.frame(x).alap != frames.frame(y).alap)
                    return frames.frame(x).alap < frames.frame(y).alap;
                  return x < y;
                });
      for (OpId id : candidates) {
        const Operation& op = g.op(id);
        if (!can_issue(op, cycle, earliest[id.index()])) continue;
        const ResourceType& rt = lib.type(op.type);
        for (int k = 0; k < rt.dii; ++k)
          ++busy[op.type.index()][static_cast<std::size_t>(cycle + k)];
        schedule.set_start(id, cycle);
        length = std::max(length, cycle + rt.delay);
        ++scheduled;
        ready.erase(std::find(ready.begin(), ready.end(), id));
        for (OpId s : g.succs(id)) {
          earliest[s.index()] =
              std::max(earliest[s.index()], cycle + rt.delay);
          if (--unscheduled_preds[s.index()] == 0) ready.push_back(s);
        }
      }
    }

    // Commit this block: fold its occupancy into the process tables.
    for (const ResourceType& t : lib.types()) {
      const bool pooled = model.is_global(t.id) && model.InGroup(t.id, pid);
      int peak = 0;
      for (int v : busy[t.id.index()]) peak = std::max(peak, v);
      if (!pooled) {
        local_peak[pid.index()][t.id.index()] =
            std::max(local_peak[pid.index()][t.id.index()], peak);
        continue;
      }
      const int lambda = model.assignment(t.id).period;
      auto& row = committed[pid.index()][t.id.index()];
      const std::vector<int> folded = ModuloMaxTransform(
          std::span<const int>(busy[t.id.index()]), b.phase, lambda);
      for (int tau = 0; tau < lambda; ++tau)
        row[static_cast<std::size_t>(tau)] =
            std::max(row[static_cast<std::size_t>(tau)],
                     folded[static_cast<std::size_t>(tau)]);
    }

    result.schedule.of(bid) = std::move(schedule);
    result.lengths[bid.index()] = length;
  }

  // Assemble the Allocation from the committed tables.
  result.allocation.local = std::move(local_peak);
  for (ResourceTypeId gt : model.GlobalTypes()) {
    GlobalTypeAllocation ga;
    ga.type = gt;
    ga.period = model.assignment(gt).period;
    ga.users = model.GlobalUsers(gt);
    ga.profile.assign(static_cast<std::size_t>(ga.period), 0);
    for (ProcessId pid : ga.users) {
      auto row = committed[pid.index()][gt.index()];
      for (std::size_t tau = 0; tau < row.size(); ++tau)
        ga.profile[tau] += row[tau];
      ga.authorization.push_back(std::move(row));
    }
    ga.instances = 0;
    for (int v : ga.profile) ga.instances = std::max(ga.instances, v);
    result.allocation.global.push_back(std::move(ga));
  }
  return result;
}

}  // namespace mshls
