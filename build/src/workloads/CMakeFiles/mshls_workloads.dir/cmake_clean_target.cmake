file(REMOVE_RECURSE
  "libmshls_workloads.a"
)
