file(REMOVE_RECURSE
  "libmshls_frontend.a"
)
