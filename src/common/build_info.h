// Build provenance — which binary produced an artifact. The fields are
// captured by CMake at configure time (src/common/build_info_gen.h.in) and
// stamped into trace headers (obs/trace), `mshlsc --version` and every
// bench JSON block, so a perf-trajectory row or a committed trace is
// attributable to an exact commit, compiler and flag set.
//
// Deliberately no timestamp: build info must not break the bit-identity
// contract of deterministic trace/metrics exports (same binary, same
// workload => same bytes).
#pragma once

#include <string>

namespace mshls {

struct BuildInfo {
  const char* version;    // project version (CMake PROJECT_VERSION)
  const char* git_hash;   // short hash, "-dirty" suffixed, or "unknown"
  const char* compiler;   // "<id> <version>"
  const char* cxx_flags;  // base + build-type flags
  const char* build_type; // CMAKE_BUILD_TYPE
  const char* sanitizer;  // MSHLS_SANITIZE or "none"
  bool trace_compiled_in; // MSHLS_TRACE option state (src/obs probes)
};

/// The build this binary came from; all pointers are static storage.
[[nodiscard]] const BuildInfo& GetBuildInfo();

/// Multi-line human rendering (for --version).
[[nodiscard]] std::string BuildInfoString();

/// One JSON object, keys sorted:
/// {"build_type":..,"compiler":..,"cxx_flags":..,"git_hash":..,
///  "sanitizer":..,"trace_compiled_in":..,"version":..}
[[nodiscard]] std::string BuildInfoJson();

}  // namespace mshls
