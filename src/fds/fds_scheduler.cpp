#include "fds/fds_scheduler.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace mshls {
namespace {

/// Applies `target` to a copy of `frames` and returns the copy. Narrowing
/// to any sub-frame of a propagated frame set is always feasible, so a
/// failure here indicates a bug, not an input problem.
TimeFrameSet NarrowedCopy(const Block& block, const DelayFn& delay,
                          const TimeFrameSet& frames, OpId op,
                          TimeFrame target) {
  TimeFrameSet next = frames;
  const Status s = next.Narrow(block.graph, delay, op, target);
  assert(s.ok() && "narrowing inside a propagated frame must stay feasible");
  (void)s;
  return next;
}

BlockSchedule ExtractSchedule(const TimeFrameSet& frames) {
  BlockSchedule schedule(frames.size());
  for (std::size_t i = 0; i < frames.size(); ++i) {
    const TimeFrame& f = frames.frames()[i];
    assert(f.fixed());
    schedule.set_start(OpId{static_cast<int>(i)}, f.asap);
  }
  return schedule;
}

}  // namespace

double EvaluateLocalNarrowForce(const Block& block, const ResourceLibrary& lib,
                                const TimeFrameSet& frames,
                                const std::vector<Profile>& profiles, OpId op,
                                TimeFrame target, const FdsParams& params) {
  const DelayFn delay = [&](OpId o) {
    return lib.type(block.graph.op(o).type).delay;
  };
  const TimeFrameSet next = NarrowedCopy(block, delay, frames, op, target);

  // Collect per-type displacement from every op whose frame changed
  // (the op itself plus transitively constrained predecessors/successors).
  std::vector<Profile> dq(lib.size());
  std::vector<bool> touched(lib.size(), false);
  for (const Operation& o : block.graph.ops()) {
    const TimeFrame& before = frames.frame(o.id);
    const TimeFrame& after = next.frame(o.id);
    if (before == after) continue;
    auto& d = dq[o.type.index()];
    if (d.empty()) d.assign(static_cast<std::size_t>(block.time_range), 0.0);
    const int dii = lib.type(o.type).dii;
    AddOccupancyProbability(d, before, dii, -1.0);
    AddOccupancyProbability(d, after, dii, +1.0);
    touched[o.type.index()] = true;
  }

  double force = 0;
  for (const ResourceType& t : lib.types()) {
    if (!touched[t.id.index()]) continue;
    force += SpringForce(profiles[t.id.index()], dq[t.id.index()], params,
                         TypeWeight(lib, t.id, params));
  }
  return force;
}

std::vector<int> UsageOf(const Block& block, const ResourceLibrary& lib,
                         const BlockSchedule& schedule) {
  std::vector<int> usage(lib.size(), 0);
  for (const ResourceType& t : lib.types()) {
    const std::vector<int> profile =
        OccupancyProfile(block, lib, schedule, t.id);
    for (int v : profile)
      usage[t.id.index()] = std::max(usage[t.id.index()], v);
  }
  return usage;
}

StatusOr<FdsResult> ScheduleBlockFds(const Block& block,
                                     const ResourceLibrary& lib,
                                     const FdsParams& params) {
  const DelayFn delay = [&](OpId o) {
    return lib.type(block.graph.op(o).type).delay;
  };
  auto frames_or = TimeFrameSet::Compute(block.graph, delay, block.time_range);
  if (!frames_or.ok()) return frames_or.status();
  TimeFrameSet frames = std::move(frames_or).value();

  int iterations = 0;
  while (!frames.AllFixed()) {
    const std::vector<Profile> profiles = BuildAllProfiles(block, lib, frames);
    double best_force = std::numeric_limits<double>::infinity();
    OpId best_op = OpId::invalid();
    int best_step = -1;
    for (const Operation& op : block.graph.ops()) {
      const TimeFrame& f = frames.frame(op.id);
      if (f.fixed()) continue;
      for (int t = f.asap; t <= f.alap; ++t) {
        const double force = EvaluateLocalNarrowForce(
            block, lib, frames, profiles, op.id, TimeFrame{t, t}, params);
        if (force < best_force) {
          best_force = force;
          best_op = op.id;
          best_step = t;
        }
      }
    }
    assert(best_op.valid());
    if (Status s = frames.Narrow(block.graph, delay, best_op,
                                 TimeFrame{best_step, best_step});
        !s.ok())
      return s;
    ++iterations;
  }

  FdsResult result;
  result.schedule = ExtractSchedule(frames);
  result.usage = UsageOf(block, lib, result.schedule);
  result.iterations = iterations;
  return result;
}

StatusOr<FdsResult> ScheduleBlockIfds(const Block& block,
                                      const ResourceLibrary& lib,
                                      const FdsParams& params,
                                      const IterationObserver& observer) {
  const DelayFn delay = [&](OpId o) {
    return lib.type(block.graph.op(o).type).delay;
  };
  auto frames_or = TimeFrameSet::Compute(block.graph, delay, block.time_range);
  if (!frames_or.ok()) return frames_or.status();
  TimeFrameSet frames = std::move(frames_or).value();

  int iterations = 0;
  while (!frames.AllFixed()) {
    const std::vector<Profile> profiles = BuildAllProfiles(block, lib, frames);
    IterationTrace trace;
    trace.iteration = iterations;
    double best_diff = -1.0;
    for (const Operation& op : block.graph.ops()) {
      const TimeFrame& f = frames.frame(op.id);
      if (f.fixed()) continue;
      CandidateEval eval;
      eval.op = op.id;
      eval.frame = f;
      eval.force_begin = EvaluateLocalNarrowForce(
          block, lib, frames, profiles, op.id, TimeFrame{f.asap, f.asap},
          params);
      eval.force_end = EvaluateLocalNarrowForce(
          block, lib, frames, profiles, op.id, TimeFrame{f.alap, f.alap},
          params);
      eval.diff = std::abs(eval.force_begin - eval.force_end);
      if (f.width() > 2) eval.diff *= params.mid_estimate;
      trace.candidates.push_back(eval);
      if (eval.diff > best_diff) {
        best_diff = eval.diff;
        trace.chosen = op.id;
        trace.shrank_begin = eval.force_begin > eval.force_end;
      }
    }
    assert(trace.chosen.valid());
    const TimeFrame f = frames.frame(trace.chosen);
    const TimeFrame next = trace.shrank_begin
                               ? TimeFrame{f.asap + 1, f.alap}
                               : TimeFrame{f.asap, f.alap - 1};
    if (observer) observer(trace);
    if (Status s = frames.Narrow(block.graph, delay, trace.chosen, next);
        !s.ok())
      return s;
    ++iterations;
  }

  FdsResult result;
  result.schedule = ExtractSchedule(frames);
  result.usage = UsageOf(block, lib, result.schedule);
  result.iterations = iterations;
  return result;
}

}  // namespace mshls
