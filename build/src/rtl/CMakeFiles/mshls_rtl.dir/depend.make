# Empty dependencies file for mshls_rtl.
# This may be replaced when dependencies are built.
