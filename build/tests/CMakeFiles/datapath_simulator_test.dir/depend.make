# Empty dependencies file for datapath_simulator_test.
# This may be replaced when dependencies are built.
