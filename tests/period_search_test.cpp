#include <gtest/gtest.h>

#include <algorithm>

#include "modulo/period_search.h"
#include "workloads/benchmarks.h"
#include "workloads/paper_system.h"

namespace mshls {
namespace {

/// The exhaustive referee configuration: tests asserting raw enumeration
/// statistics (combinations / filtered_out / evaluated) pin it explicitly;
/// the harmonic default is covered by the configurator property tests
/// below, which prove it winner-identical to this path.
PeriodSearchOptions Exhaustive() {
  PeriodSearchOptions options;
  options.configurator = PeriodConfigurator::kExhaustive;
  return options;
}

class PeriodSearchTest : public ::testing::Test {
 protected:
  SystemModel model_;
  PaperTypes types_ = AddPaperTypes(model_.library());

  ProcessId AddAddsProcess(const std::string& name, int n, int range) {
    DataFlowGraph g;
    for (int i = 0; i < n; ++i)
      g.AddOp(types_.add, name + "_a" + std::to_string(i));
    EXPECT_TRUE(g.Validate().ok());
    const ProcessId p = model_.AddProcess(name, range);
    model_.AddBlock(p, name + "_main", std::move(g), range);
    return p;
  }
};

TEST_F(PeriodSearchTest, CandidatesAreUnionOfMemberDivisors) {
  const ProcessId p1 = AddAddsProcess("p1", 2, 30);
  const ProcessId p2 = AddAddsProcess("p2", 2, 25);
  const ProcessId p3 = AddAddsProcess("p3", 2, 15);
  model_.MakeGlobal(types_.add, {p1, p2, p3});
  model_.SetPeriod(types_.add, 1);
  // divisors(30) u divisors(25) u divisors(15); eq. 3 later discards the
  // values that do not tile every member (only 1 and 5 survive).
  EXPECT_EQ(CandidatePeriods(model_, types_.add),
            (std::vector<int>{1, 2, 3, 5, 6, 10, 15, 25, 30}));
}

TEST_F(PeriodSearchTest, CandidatesForEqualDeadlines) {
  const ProcessId p1 = AddAddsProcess("p1", 2, 12);
  const ProcessId p2 = AddAddsProcess("p2", 2, 12);
  model_.MakeGlobal(types_.add, {p1, p2});
  EXPECT_EQ(CandidatePeriods(model_, types_.add),
            (std::vector<int>{1, 2, 3, 4, 6, 12}));
}

TEST_F(PeriodSearchTest, SearchRunsOnlySurvivingCombinations) {
  const ProcessId p1 = AddAddsProcess("p1", 2, 6);
  const ProcessId p2 = AddAddsProcess("p2", 2, 4);
  model_.MakeGlobal(types_.add, {p1, p2});
  ASSERT_TRUE(model_.Validate().ok());
  auto result = SearchPeriods(model_, CoupledParams{}, Exhaustive());
  ASSERT_TRUE(result.ok());
  // Candidates div(6) u div(4) = {1,2,3,4,6}; only {1,2} tile both.
  EXPECT_EQ(result.value().combinations, 5);
  EXPECT_EQ(result.value().filtered_out, 3);
  EXPECT_EQ(result.value().evaluated, 2);
}

TEST_F(PeriodSearchTest, CompatibilityAcceptsDividingGrid) {
  const ProcessId p1 = AddAddsProcess("p1", 2, 12);
  model_.MakeGlobal(types_.add, {p1});
  model_.SetPeriod(types_.add, 4);
  EXPECT_TRUE(PeriodsCompatible(model_));
  model_.SetPeriod(types_.add, 5);  // 5 does not divide 12
  EXPECT_FALSE(PeriodsCompatible(model_));
}

TEST_F(PeriodSearchTest, CompatibilityUsesLcmAcrossTypes) {
  // One process sharing two types: grid = lcm of the two periods must
  // divide the time range (paper eq. 3).
  SystemModel m;
  const PaperTypes t = AddPaperTypes(m.library());
  DataFlowGraph g;
  g.AddOp(t.add, "a");
  g.AddOp(t.mult, "m");
  ASSERT_TRUE(g.Validate().ok());
  const ProcessId p = m.AddProcess("p", 12);
  m.AddBlock(p, "b", std::move(g), 12);
  m.MakeGlobal(t.add, {p});
  m.MakeGlobal(t.mult, {p});
  m.SetPeriod(t.add, 4);
  m.SetPeriod(t.mult, 6);  // lcm(4,6) = 12 divides 12
  EXPECT_TRUE(PeriodsCompatible(m));
  m.SetPeriod(t.mult, 3);  // lcm(4,3) = 12, still fine
  EXPECT_TRUE(PeriodsCompatible(m));
  m.SetPeriod(t.add, 8);   // 8 does not divide 12 -> lcm 24 infeasible
  EXPECT_FALSE(PeriodsCompatible(m));
}

TEST_F(PeriodSearchTest, SearchFindsCompatibleMinimumAreaAssignment) {
  const ProcessId p1 = AddAddsProcess("p1", 2, 4);
  const ProcessId p2 = AddAddsProcess("p2", 2, 4);
  model_.MakeGlobal(types_.add, {p1, p2});
  ASSERT_TRUE(model_.Validate().ok());
  auto result = SearchPeriods(model_, CoupledParams{}, Exhaustive());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Candidates {1,2,4}; period >= 2 lets one adder serve both processes.
  EXPECT_EQ(result.value().best.allocation.TotalInstances(types_.add), 1);
  EXPECT_GE(result.value().periods[0], 2);
  // Model left configured with the winner.
  EXPECT_EQ(model_.assignment(types_.add).period, result.value().periods[0]);
  EXPECT_EQ(result.value().combinations, 3);
  EXPECT_EQ(result.value().filtered_out, 0);
  EXPECT_EQ(result.value().evaluated, 3);
}

TEST_F(PeriodSearchTest, FilterPrunesBeforeScheduling) {
  const ProcessId p1 = AddAddsProcess("p1", 1, 6);
  const ProcessId p2 = AddAddsProcess("p2", 1, 9);
  // A disjoint multiplier group with different time ranges.
  DataFlowGraph g;
  g.AddOp(types_.mult, "m");
  ASSERT_TRUE(g.Validate().ok());
  const ProcessId p3 = model_.AddProcess("p3", 4);
  model_.AddBlock(p3, "b", std::move(g), 4);
  DataFlowGraph g1;
  g1.AddOp(types_.mult, "m1");
  ASSERT_TRUE(g1.Validate().ok());
  const ProcessId p4 = model_.AddProcess("p4", 6);
  model_.AddBlock(p4, "b", std::move(g1), 6);

  // add candidates: div(6) u div(9) = {1,2,3,6,9} (5 values);
  // mult candidates: div(4) u div(6) = {1,2,3,4,6} (5 values).
  model_.MakeGlobal(types_.add, {p1, p2});
  model_.MakeGlobal(types_.mult, {p3, p4});
  ASSERT_TRUE(model_.Validate().ok());
  auto result = SearchPeriods(model_, CoupledParams{}, Exhaustive());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().combinations, 25);
  // Survivors: add must tile both 6 and 9 -> {1,3}; mult must tile both 4
  // and 6 -> {1,2}: 4 combinations scheduled, 21 filtered by eq. 3 —
  // "typically most sets are filtered out before scheduling" (paper §7).
  EXPECT_EQ(result.value().filtered_out, 21);
  EXPECT_EQ(result.value().evaluated, 4);
  EXPECT_EQ(result.value().periods, (std::vector<int>{3, 2}));
}

TEST_F(PeriodSearchTest, FilterHandlesSharedMemberAcrossGroups) {
  // q1 shares add AND mult: the lcm of the chosen periods must tile q1's
  // range even when each period alone would.
  SystemModel m;
  const PaperTypes t = AddPaperTypes(m.library());
  auto add_proc = [&](const std::string& name, int range, bool mult) {
    DataFlowGraph g;
    g.AddOp(t.add, name + "_a");
    if (mult) g.AddOp(t.mult, name + "_m");
    EXPECT_TRUE(g.Validate().ok());
    const ProcessId p = m.AddProcess(name, range);
    m.AddBlock(p, name + "_b", std::move(g), range);
    return p;
  };
  const ProcessId q1 = add_proc("q1", 6, true);
  const ProcessId q2 = add_proc("q2", 4, false);
  m.MakeGlobal(t.add, {q1, q2});  // candidates div(6) u div(4) = {1,2,3,4,6}
  m.MakeGlobal(t.mult, {q1});     // candidates div(6) = {1,2,3,6}
  ASSERT_TRUE(m.Validate().ok());
  auto result = SearchPeriods(m, CoupledParams{}, Exhaustive());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().combinations, 20);
  // add must tile 4 and 6 -> {1,2}; mult anything tiling 6 -> 4 values;
  // lcm(add, mult) | 6 always holds for those: 8 scheduled, 12 filtered.
  EXPECT_EQ(result.value().filtered_out, 12);
  EXPECT_EQ(result.value().evaluated, 8);
}

TEST_F(PeriodSearchTest, MaxEvaluationsCapsWork) {
  const ProcessId p1 = AddAddsProcess("p1", 2, 12);
  const ProcessId p2 = AddAddsProcess("p2", 2, 12);
  model_.MakeGlobal(types_.add, {p1, p2});
  ASSERT_TRUE(model_.Validate().ok());
  PeriodSearchOptions options = Exhaustive();
  options.max_evaluations = 2;
  auto result = SearchPeriods(model_, CoupledParams{}, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().evaluated, 2);
}

TEST_F(PeriodSearchTest, FailsWithoutGlobalTypes) {
  AddAddsProcess("p1", 2, 4);
  ASSERT_TRUE(model_.Validate().ok());
  auto result = SearchPeriods(model_, CoupledParams{});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(PeriodSearchTest, PaperSystemCandidateSets) {
  // Candidates on the paper system: add/mult groups span all five
  // processes, gcd(30, 30, 25, 15, 15) = 5 -> {1, 5}; the subtracter group
  // is the two diffeq processes, gcd(15, 15) = 15 -> {1, 3, 5, 15}.
  PaperSystem sys = BuildPaperSystem();
  const std::vector<int> ewf_union{1, 2, 3, 5, 6, 10, 15, 25, 30};
  EXPECT_EQ(CandidatePeriods(sys.model, sys.types.add), ewf_union);
  EXPECT_EQ(CandidatePeriods(sys.model, sys.types.mult), ewf_union);
  EXPECT_EQ(CandidatePeriods(sys.model, sys.types.sub),
            (std::vector<int>{1, 3, 5, 15}));
  // The paper's choice (all periods 5) passes the eq.-3 filter; a period
  // of 2 for the adder would not (2 does not tile 25 or 15).
  EXPECT_TRUE(PeriodsCompatible(sys.model));
  sys.model.SetPeriod(sys.types.add, 2);
  EXPECT_FALSE(PeriodsCompatible(sys.model));
  sys.model.SetPeriod(sys.types.add, 5);
}

// ---------------------------------------------------------------------------
// Harmonic configurator properties (modulo/period_config.h).

class PeriodConfigTest : public PeriodSearchTest {};

TEST_F(PeriodConfigTest, HarmonicCandidatesAreDivisorClosed) {
  const ProcessId p1 = AddAddsProcess("p1", 2, 30);
  const ProcessId p2 = AddAddsProcess("p2", 2, 12);
  model_.MakeGlobal(types_.add, {p1, p2});
  const std::vector<int> cands =
      HarmonicCandidatePeriods(model_, types_.add);
  // gcd(30, 12) = 6 -> {1, 2, 3, 6}; each element's divisors are present.
  EXPECT_EQ(cands, (std::vector<int>{1, 2, 3, 6}));
  for (int c : cands) {
    for (int d = 1; d <= c; ++d) {
      if (c % d != 0) continue;
      EXPECT_TRUE(std::find(cands.begin(), cands.end(), d) != cands.end())
          << "divisor " << d << " of " << c << " missing";
    }
  }
}

TEST_F(PeriodConfigTest, HarmonicCandidatesAreEq3FeasibleSubset) {
  // Every harmonic candidate must be a CandidatePeriods member AND tile
  // every user range (eq. 3 per-type restriction); every eq.-3-feasible
  // exhaustive candidate must survive into the harmonic set — the
  // configurator never excludes a period the exhaustive filter would keep.
  const ProcessId p1 = AddAddsProcess("p1", 1, 30);
  const ProcessId p2 = AddAddsProcess("p2", 1, 25);
  const ProcessId p3 = AddAddsProcess("p3", 1, 15);
  model_.MakeGlobal(types_.add, {p1, p2, p3});
  const std::vector<int> harmonic =
      HarmonicCandidatePeriods(model_, types_.add);
  const std::vector<int> exhaustive = CandidatePeriods(model_, types_.add);
  EXPECT_EQ(harmonic, (std::vector<int>{1, 5}));  // divisors of gcd = 5
  for (int c : exhaustive) {
    const bool tiles_all = 30 % c == 0 && 25 % c == 0 && 15 % c == 0;
    const bool in_harmonic =
        std::find(harmonic.begin(), harmonic.end(), c) != harmonic.end();
    EXPECT_EQ(in_harmonic, tiles_all) << "candidate " << c;
  }
}

TEST_F(PeriodConfigTest, HarmonicFallsBackWithoutUsers) {
  // A global type nobody uses has no ranges to gcd; the configurator must
  // fall back to the exhaustive candidate set so enumeration order (and
  // winner identity) is preserved.
  const ProcessId p1 = AddAddsProcess("p1", 2, 12);
  model_.MakeGlobal(types_.mult, {p1});  // p1 has no mult ops
  EXPECT_EQ(HarmonicCandidatePeriods(model_, types_.mult),
            CandidatePeriods(model_, types_.mult));
}

TEST_F(PeriodConfigTest, UtilizationBoundsAreSound) {
  // Two processes, each needing >1/2 of an adder per step at period-free
  // utilization: the pool can never drop below the summed work ratio.
  const ProcessId p1 = AddAddsProcess("p1", 3, 4);  // 3 adds in 4 steps
  const ProcessId p2 = AddAddsProcess("p2", 3, 4);
  model_.MakeGlobal(types_.add, {p1, p2});
  ASSERT_TRUE(model_.Validate().ok());
  const int pool_lb = PoolInstanceLowerBound(model_, types_.add);
  EXPECT_EQ(pool_lb, 2);  // ceil(3/4 + 3/4)
  auto result = SearchPeriods(model_, CoupledParams{}, Exhaustive());
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result.value().best.allocation.TotalInstances(types_.add),
            pool_lb);
  EXPECT_GE(result.value().area, AreaLowerBound(model_));
}

TEST_F(PeriodConfigTest, HarmonicSearchMatchesExhaustiveWinner) {
  // Differential referee: the harmonic configurator (with its probe prune)
  // must land on the identical winner — periods, area, allocation shape.
  const ProcessId p1 = AddAddsProcess("p1", 2, 6);
  const ProcessId p2 = AddAddsProcess("p2", 2, 4);
  model_.MakeGlobal(types_.add, {p1, p2});
  ASSERT_TRUE(model_.Validate().ok());
  SystemModel harmonic_model = model_;
  auto exhaustive = SearchPeriods(model_, CoupledParams{}, Exhaustive());
  ASSERT_TRUE(exhaustive.ok());
  auto harmonic = SearchPeriods(harmonic_model, CoupledParams{});
  ASSERT_TRUE(harmonic.ok());
  EXPECT_EQ(harmonic.value().periods, exhaustive.value().periods);
  EXPECT_EQ(harmonic.value().area, exhaustive.value().area);
  EXPECT_EQ(harmonic.value().best.allocation.TotalInstances(types_.add),
            exhaustive.value().best.allocation.TotalInstances(types_.add));
  // Pruned + evaluated must still cover every eq.-3 survivor.
  EXPECT_EQ(harmonic.value().evaluated + harmonic.value().pruned,
            exhaustive.value().evaluated);
  EXPECT_LE(harmonic.value().evaluated, exhaustive.value().evaluated);
}

TEST_F(PeriodConfigTest, PaperSystemWinnerIdenticalUnderHarmonic) {
  PaperSystem flat = BuildPaperSystem();
  PaperSystem harm = BuildPaperSystem();
  auto exhaustive = SearchPeriods(flat.model, CoupledParams{}, Exhaustive());
  ASSERT_TRUE(exhaustive.ok());
  auto harmonic = SearchPeriods(harm.model, CoupledParams{});
  ASSERT_TRUE(harmonic.ok());
  EXPECT_EQ(harmonic.value().periods, exhaustive.value().periods);
  EXPECT_EQ(harmonic.value().area, exhaustive.value().area);
  // Harmonic product enumerates exactly the eq.-3 survivors, so nothing is
  // filtered post-hoc and the filter statistic collapses to zero.
  EXPECT_EQ(harmonic.value().filtered_out, 0);
  EXPECT_EQ(harmonic.value().evaluated + harmonic.value().pruned,
            exhaustive.value().evaluated);
}

}  // namespace
}  // namespace mshls
