file(REMOVE_RECURSE
  "CMakeFiles/mshls_bind.dir/area_report.cpp.o"
  "CMakeFiles/mshls_bind.dir/area_report.cpp.o.d"
  "CMakeFiles/mshls_bind.dir/binding.cpp.o"
  "CMakeFiles/mshls_bind.dir/binding.cpp.o.d"
  "CMakeFiles/mshls_bind.dir/registers.cpp.o"
  "CMakeFiles/mshls_bind.dir/registers.cpp.o.d"
  "libmshls_bind.a"
  "libmshls_bind.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mshls_bind.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
