#include "serve/result_codec.h"

#include "modulo/allocation.h"
#include "serve/wire.h"
#include "verify/certifier.h"

namespace mshls::serve {
namespace {

Status Corrupt(const std::string& what) {
  return Status{StatusCode::kInvalidArgument, "result decode: " + what};
}

}  // namespace

std::string EncodeResult(const SystemModel& model,
                         const CoupledResult& result) {
  std::string out;
  PutU32(out, kResultFormatVersion);
  PutU32(out, static_cast<std::uint32_t>(result.schedule.blocks.size()));
  for (const BlockSchedule& block : result.schedule.blocks) {
    PutU32(out, static_cast<std::uint32_t>(block.size()));
    for (std::size_t op = 0; op < block.size(); ++op)
      PutI64(out, block.start(OpId(static_cast<std::int32_t>(op))));
  }
  PutI64(out, result.iterations);
  PutI64(out, result.stats.iterations);
  PutI64(out, result.stats.candidates_evaluated);
  PutI64(out, result.stats.candidates_repriced);
  PutI64(out, result.stats.candidates_reused);
  PutI64(out, result.stats.tier1_invalidations);
  PutI64(out, result.stats.tier2_invalidations);
  // v2: the certificate's check counts, pinned so the load side can prove
  // it re-ran the same verification the store side did.
  const CertificateStats cert = CertifyResult(model, result).stats;
  PutI64(out, cert.ops_checked);
  PutI64(out, cert.edges_checked);
  PutI64(out, cert.cycles_checked);
  PutI64(out, cert.residues_checked);
  PutI64(out, cert.shifts_checked);
  PutI64(out, cert.bindings_checked);
  return out;
}

StatusOr<CoupledResult> DecodeResult(std::string_view bytes,
                                     const SystemModel& model) {
  std::size_t cursor = 0;
  std::uint32_t version = 0;
  if (!GetU32(bytes, cursor, &version)) return Corrupt("truncated header");
  if (version != kResultFormatVersion)
    return Status{StatusCode::kFailedPrecondition,
                  "result decode: format version " + std::to_string(version) +
                      " != " + std::to_string(kResultFormatVersion)};
  std::uint32_t block_count = 0;
  if (!GetU32(bytes, cursor, &block_count)) return Corrupt("truncated header");
  if (block_count != model.block_count())
    return Corrupt("block count " + std::to_string(block_count) +
                   " does not match the model's " +
                   std::to_string(model.block_count()));

  CoupledResult result;
  result.schedule.blocks.reserve(block_count);
  for (std::uint32_t b = 0; b < block_count; ++b) {
    const Block& block = model.blocks()[b];
    std::uint32_t op_count = 0;
    if (!GetU32(bytes, cursor, &op_count)) return Corrupt("truncated block");
    if (op_count != block.graph.op_count())
      return Corrupt("block " + std::to_string(b) + " op count " +
                     std::to_string(op_count) + " does not match the model's " +
                     std::to_string(block.graph.op_count()));
    BlockSchedule schedule(op_count);
    for (std::uint32_t op = 0; op < op_count; ++op) {
      std::int64_t start = 0;
      if (!GetI64(bytes, cursor, &start)) return Corrupt("truncated starts");
      if (start < 0 || start > (std::int64_t{1} << 24))
        return Corrupt("start step " + std::to_string(start) +
                       " out of range");
      schedule.set_start(OpId(static_cast<std::int32_t>(op)),
                         static_cast<int>(start));
    }
    result.schedule.blocks.push_back(std::move(schedule));
  }

  std::int64_t raw[7] = {};
  for (std::int64_t& value : raw)
    if (!GetI64(bytes, cursor, &value)) return Corrupt("truncated stats");
  std::int64_t cert_raw[6] = {};
  for (std::int64_t& value : cert_raw)
    if (!GetI64(bytes, cursor, &value))
      return Corrupt("truncated certificate stats");
  if (cursor != bytes.size()) return Corrupt("trailing bytes");
  result.iterations = static_cast<int>(raw[0]);
  result.stats.iterations = raw[1];
  result.stats.candidates_evaluated = raw[2];
  result.stats.candidates_repriced = raw[3];
  result.stats.candidates_reused = raw[4];
  result.stats.tier1_invalidations = raw[5];
  result.stats.tier2_invalidations = raw[6];

  // Semantic gate: the starts must form a valid schedule for this model
  // before the allocation (and everything downstream) is derived from it.
  if (Status s = ValidateSystemSchedule(model, result.schedule); !s.ok())
    return Corrupt("stored schedule invalid for model: " + s.message());
  result.allocation = ComputeAllocation(model, result.schedule);

  // Certificate gate: re-run the independent certifier and demand both a
  // clean report and the exact check counts taken at encode time. Starts
  // that merely validate but were never certified (a tampered entry) stop
  // here instead of reaching a consumer.
  const CertificateReport report = CertifyResult(model, result);
  if (!report.ok())
    return Corrupt("stored schedule fails certification: " +
                   report.Summary());
  const CertificateStats& cs = report.stats;
  const std::int64_t now[6] = {cs.ops_checked,      cs.edges_checked,
                               cs.cycles_checked,   cs.residues_checked,
                               cs.shifts_checked,   cs.bindings_checked};
  for (int i = 0; i < 6; ++i)
    if (now[i] != cert_raw[i])
      return Corrupt("certificate stats mismatch (stored " +
                     std::to_string(cert_raw[i]) + ", re-derived " +
                     std::to_string(now[i]) + " at slot " +
                     std::to_string(i) + ")");
  return result;
}

}  // namespace mshls::serve
