file(REMOVE_RECURSE
  "CMakeFiles/mshls_vsim.dir/vsim.cpp.o"
  "CMakeFiles/mshls_vsim.dir/vsim.cpp.o.d"
  "libmshls_vsim.a"
  "libmshls_vsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mshls_vsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
