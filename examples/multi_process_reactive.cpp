// The paper's motivating scenario end-to-end: five independent reactive
// processes (three elliptic wave filters, two differential-equation
// solvers) triggered by spontaneous events, sharing adders, subtracters
// and multipliers through static periodic access authorizations.
//
// Schedules the system, prints the Table-1 style report, then fires a
// randomized activation storm through the cycle-accurate simulator to
// demonstrate that no resource conflict can occur as long as activations
// respect the start grid — and that a deliberately off-grid activation is
// caught.
//
//   $ ./examples/multi_process_reactive [trace-seed]
#include <cstdio>
#include <cstdlib>

#include "modulo/coupled_scheduler.h"
#include "report/experiment_report.h"
#include "sim/simulator.h"
#include "workloads/paper_system.h"

using namespace mshls;

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                      : 2026;

  PaperSystem sys = BuildPaperSystem();
  std::printf("system: %zu processes, grid spacings:", sys.model.process_count());
  for (const Process& p : sys.model.processes())
    std::printf(" %s=%lld", p.name.c_str(),
                static_cast<long long>(sys.model.GridSpacing(p.id)));
  std::printf("\n\n");

  CoupledScheduler scheduler(sys.model, CoupledParams{});
  auto result_or = scheduler.Run();
  if (!result_or.ok()) {
    std::fprintf(stderr, "scheduling failed: %s\n",
                 result_or.status().ToString().c_str());
    return 1;
  }
  const CoupledResult result = std::move(result_or).value();
  std::printf("%s\n", RenderTable1(sys.model, result).c_str());
  std::printf("allocation: %s\n\n",
              SummarizeAllocation(sys.model, result.allocation).c_str());

  // Reactive storm: every process is re-triggered at random grid-aligned
  // times, heavily overlapping across processes.
  SystemSimulator sim(sys.model, result.schedule, result.allocation);
  TraceOptions options;
  options.seed = seed;
  options.activations_per_process = 16;
  options.max_gap_units = 2;
  const auto trace = RandomActivationTrace(sys.model, options);
  const SimReport report = sim.Run(trace);
  std::printf("reactive storm: %zu activations over %lld cycles -> %s\n",
              trace.size(), static_cast<long long>(report.horizon),
              report.ok ? "no conflicts" : "CONFLICTS (bug!)");
  for (const SimTypeStats& st : report.stats) {
    std::printf("  %-5s %d instance(s), utilization %.1f%%\n",
                sys.model.library().type(st.type).name.c_str(), st.instances,
                100.0 * st.utilization);
  }

  // Negative control: start one EWF off the 5-step grid.
  std::vector<Activation> bad = {{BlockId{0}, 0}, {BlockId{1}, 3}};
  const SimReport bad_report = sim.Run(bad);
  std::printf("\noff-grid control (ewf2 started at t=3, grid=5): %zu "
              "violation(s), first: %s\n",
              bad_report.violations.size(),
              bad_report.violations.empty()
                  ? "-"
                  : bad_report.violations[0].detail.c_str());
  return report.ok && !bad_report.ok ? 0 : 1;
}
