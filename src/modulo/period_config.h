// Scalable period configuration (DESIGN.md row 30): harmonic candidate
// sets and utilization lower bounds for the S1/S2 searches.
//
// The exhaustive searches enumerate the full divisor-union candidate
// product and let the eq.-3 grid filter discard incompatible sets — exact
// but exponential in practice. Following the harmonic-period playbook
// (Minaeva et al., "Scalable and Efficient Configuration of Time-Division
// Multiplexed Resources"; Hanen/Hanzalek, "Periodic Scheduling and Packing
// Problems"), this module restricts candidates per global type g to the
// divisors of gcd{T_b : b in blocks of GlobalUsers(g)} — *exactly* the
// per-type values that can appear in any eq.-3 survivor:
//
//  * soundness: lambda_g | gcd of every user's block ranges implies the
//    grid s_p = lcm{lambda_g : g in G_p} divides every T_b of every user
//    (the lcm of divisors of N divides N), so every harmonic combination
//    passes the eq.-3 filter;
//  * completeness: in a surviving combination, lambda_g divides s_p which
//    divides every block range of every user p of g, hence lambda_g
//    divides the gcd — so the harmonic product *is* the survivor set, and
//    enumerating it in the same mixed-radix order yields the survivors in
//    the same sequence (caps prefix identically, winners are identical).
//
// The utilization bounds give a certified floor under any schedule: the
// paper's allocation takes max-over-residues of summed modulo-max
// authorizations, and a max over an integer profile is at least its mean,
// so pool and local instance counts — and therefore total area — are
// bounded below by per-block work over time-range ratios. The searches use
// the floor to prune candidates that provably cannot beat an already
// evaluated probe (exact: a pruned candidate's area exceeds the probe's
// strictly, so it can never win or tie under either search's tie-break).
#pragma once

#include <vector>

#include "model/system_model.h"

namespace mshls {

/// Candidate-set generation policy for SearchPeriods/SearchAssignments.
enum class PeriodConfigurator {
  /// Harmonic divisor-of-gcd candidate sets + utilization-bound pruning.
  /// Winner-identical to kExhaustive (see above), exponentially cheaper.
  kHarmonic,
  /// The original exhaustive enumeration — kept as the referee path the
  /// configurator is differentially tested against.
  kExhaustive,
};

/// Harmonic candidate periods of global `type`: the divisors of the gcd of
/// all block time ranges of GlobalUsers(type), ascending. Falls back to the
/// exhaustive CandidatePeriods() when the type has no user with a block
/// (such a type constrains no process, so every candidate survives eq. 3
/// and the fallback keeps the enumeration identical to the referee).
[[nodiscard]] std::vector<int> HarmonicCandidatePeriods(
    const SystemModel& model, ResourceTypeId type);

/// Certified lower bound on the pool instance count N_g of global `type`
/// under ANY complete schedule of `model`:
///   N_g >= ceil( sum over users p of max_b W_{b,g} / T_b )
/// where W_{b,g} is the occupancy work (sum of dii) of type-g ops in block
/// b. Holds because N_g = max_tau G(tau) >= mean_tau G(tau) and each
/// process' modulo-max profile sums to at least lambda * W_b / T_b.
[[nodiscard]] int PoolInstanceLowerBound(const SystemModel& model,
                                         ResourceTypeId type);

/// Certified lower bound on Allocation::TotalArea of ANY complete schedule
/// under the model's current S1 assignment (periods do not affect the
/// bound): global pools via PoolInstanceLowerBound, plus the local floor
/// ceil(max_b W_{b,t}/T_b) for every (process, type) pair served locally —
/// including group non-members that use a global type.
[[nodiscard]] int AreaLowerBound(const SystemModel& model);

}  // namespace mshls
