# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("dfg")
subdirs("model")
subdirs("sched")
subdirs("fds")
subdirs("modulo")
subdirs("bind")
subdirs("sim")
subdirs("workloads")
subdirs("frontend")
subdirs("rtl")
subdirs("report")
subdirs("vsim")
subdirs("tools")
