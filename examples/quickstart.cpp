// Quickstart: share one multiplier pool between two independent processes.
//
// Builds a two-process system, marks the multiplier as globally shared with
// period 4, runs the coupled modulo scheduler, and prints the schedule, the
// per-process access-authorization tables and the area versus the
// traditional (local) scheduling.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "common/text_table.h"
#include "modulo/baseline.h"
#include "modulo/coupled_scheduler.h"
#include "workloads/benchmarks.h"
#include "workloads/paper_system.h"

using namespace mshls;

int main() {
  // 1. Describe the hardware library: the paper's add/sub/mult types.
  SystemModel model;
  const PaperTypes types = AddPaperTypes(model.library());

  // 2. Two independent reactive processes, each a single statically
  //    scheduled block: a differential-equation step and a 16-tap FIR.
  const ProcessId p1 = model.AddProcess("deq", /*deadline=*/12);
  model.AddBlock(p1, "deq_main", BuildDiffeq(types), /*time_range=*/12);
  const ProcessId p2 = model.AddProcess("fir", /*deadline=*/12);
  model.AddBlock(p2, "fir_main", BuildFir16(types), /*time_range=*/12);

  // 3. Step S1: the multiplier is expensive (area 4) — share it globally.
  //    Step S2: give it a period of 4 (divides both deadlines).
  model.MakeGlobal(types.mult, {p1, p2});
  model.SetPeriod(types.mult, 4);

  if (Status s = model.Validate(); !s.ok()) {
    std::fprintf(stderr, "model invalid: %s\n", s.ToString().c_str());
    return 1;
  }

  // 4. Step S3: coupled force-directed modulo scheduling of both blocks.
  CoupledScheduler scheduler(model, CoupledParams{});
  auto result_or = scheduler.Run();
  if (!result_or.ok()) {
    std::fprintf(stderr, "scheduling failed: %s\n",
                 result_or.status().ToString().c_str());
    return 1;
  }
  const CoupledResult result = std::move(result_or).value();

  std::printf("== schedules ==\n");
  for (const Block& b : model.blocks()) {
    std::printf("%s:", b.name.c_str());
    for (const Operation& op : b.graph.ops())
      std::printf(" %s@%d", op.name.c_str(),
                  result.schedule.of(b.id).start(op.id));
    std::printf("\n");
  }

  std::printf("\n== global multiplier pool ==\n");
  const GlobalTypeAllocation* pool = result.allocation.FindGlobal(types.mult);
  std::printf("instances: %d, period: %d\n", pool->instances, pool->period);
  TextTable table;
  table.SetHeader({"process", "authorization per residue tau"});
  for (std::size_t u = 0; u < pool->users.size(); ++u) {
    std::string auth;
    for (int v : pool->authorization[u]) auth += std::to_string(v) + " ";
    table.AddRow({model.process(pool->users[u]).name, auth});
  }
  std::printf("%s", table.Render().c_str());

  // 5. Compare against the traditional pure-local scheduling.
  auto baseline_or = ScheduleLocalBaseline(model, CoupledParams{});
  if (!baseline_or.ok()) {
    std::fprintf(stderr, "baseline failed: %s\n",
                 baseline_or.status().ToString().c_str());
    return 1;
  }
  const int shared_area = result.allocation.TotalArea(model.library());
  const int local_area =
      baseline_or.value().allocation.TotalArea(model.library());
  std::printf("\narea with global sharing: %d\n", shared_area);
  std::printf("area with local (traditional) scheduling: %d\n", local_area);
  std::printf("multipliers: shared pool %d vs local total %d\n",
              result.allocation.TotalInstances(types.mult),
              baseline_or.value().allocation.TotalInstances(types.mult));
  return 0;
}
