#!/usr/bin/env bash
# Sanitizer sweep for the robustness-critical subsystems: builds the tree
# with -DMSHLS_SANITIZE=address and =undefined and runs the `verify`,
# `engine`, `fuzz`, `perf`, `obs`, `serve`, `repair` and `scaling` ctest
# labels (certifier, fault
# injection, degradation ladder, thread pool / job service, generative
# fuzzer, incremental-force-engine consistency, tracer/metrics, the
# trace determinism contract and hierarchical clustered scheduling) under
# each, plus a bounded differential fuzz
# campaign through the CLI — both the default generator mix and a bounded
# --fuzz-large leg (30–80-process clustered instances through the certify
# and replay oracles) — and a bounded C1 bench smoke (which
# cross-checks naive / incremental / parallel / traced schedules for bit
# identity and bounds the enabled-tracing overhead). The certifier's whole
# contract is "never crash on corrupted artifacts", so it is exercised
# under the sanitizers that would catch the silent out-of-bounds read
# behind a wrong verdict; the fuzz campaign feeds both it and the frontend
# hundreds of generated and mutated inputs while those sanitizers watch.
# The tracer runs under the same labels because its merge path is the one
# place where every worker thread writes into shared state. The serve
# label plus a bounded daemon smoke (cold batch -> SIGTERM -> restart ->
# all-persistent-hits batch) put the wire framing, the admission path and
# the on-disk cache codec — the three places that parse untrusted or
# crash-torn bytes — under the same sanitizers.
#
# Usage: scripts/check.sh [jobs]     (default: nproc)
set -euo pipefail

cd "$(dirname "$0")/.."
jobs="${1:-$(nproc)}"

for san in address undefined; do
  build="build-${san:0:1}san"
  echo "==> MSHLS_SANITIZE=${san} (${build})"
  cmake -B "${build}" -S . -DMSHLS_SANITIZE="${san}" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
  cmake --build "${build}" -j "${jobs}" > /dev/null
  ctest --test-dir "${build}" \
        -L 'verify|engine|fuzz|perf|obs|serve|repair|scaling' \
        --output-on-failure -j "${jobs}"
  "${build}/src/tools/mshlsc" --fuzz 50:1 --jobs 2 \
        --fuzz-dir "${build}/fuzz-check"
  "${build}/src/tools/mshlsc" --fuzz-large 6:1 --jobs 2 \
        --fuzz-dir "${build}/fuzz-large-check"
  # Trace-overhead smoke: the bound is deliberately generous (sanitized
  # builds on a tiny workload, where the enabled tracer's fixed cost is a
  # large fraction of a very short run) — it catches an accidental
  # hot-path regression (e.g. a probe doing work while disabled), not the
  # <2% disabled-path acceptance bound, which scripts/obs_overhead.sh
  # measures on optimized builds.
  MSHLS_CHECK_INCREMENTAL=1 "${build}/bench/bench_coupled" --smoke \
        --assert-trace-overhead 150
  # Bounded daemon smoke: serve the committed fuzz corpus cold, drain on
  # SIGTERM, restart over the same cache directory and require every job
  # to come back from the persistent tier.
  work="${build}/serve-check"
  rm -rf "${work}"
  mkdir -p "${work}"
  "${build}/src/tools/mshlsd" --socket "${work}/d.sock" --jobs 2 \
        --cache-dir "${work}/cache" 2> "${work}/daemon1.log" &
  daemon=$!
  for _ in $(seq 1 100); do
    [ -S "${work}/d.sock" ] && break
    sleep 0.1
  done
  "${build}/src/tools/mshlsc" --batch tests/data/fuzz_corpus \
        --connect "${work}/d.sock" > "${work}/cold.out"
  kill -TERM "${daemon}"
  wait "${daemon}"
  "${build}/src/tools/mshlsd" --socket "${work}/d.sock" --jobs 2 \
        --cache-dir "${work}/cache" 2> "${work}/daemon2.log" &
  daemon=$!
  for _ in $(seq 1 100); do
    [ -S "${work}/d.sock" ] && break
    sleep 0.1
  done
  "${build}/src/tools/mshlsc" --batch tests/data/fuzz_corpus \
        --connect "${work}/d.sock" > "${work}/warm.out"
  kill -TERM "${daemon}"
  wait "${daemon}"
  total=$(grep -c 'cache=' "${work}/warm.out" || true)
  hits=$(grep -c 'cache=hit (persistent)' "${work}/warm.out" || true)
  echo "serve smoke: ${hits}/${total} persistent hit(s) after restart"
  if [ "${hits}" -ne "${total}" ] || [ "${total}" -eq 0 ]; then
    echo "serve smoke FAILED: restarted daemon missed its persistent cache"
    exit 1
  fi
done

# TSan leg: the repair ladder reuses the coupled scheduler's parallel
# candidate sweep under pinned starts, and the perturb campaign fans cases
# out across a worker pool — the `repair` label pins bit-identity at
# workers 1/2/8, so a data race would show up either as a TSan report or
# as a divergence. The `perf` label rides along: it holds the
# incremental-vs-recompute referee tests, the other place where worker
# threads share scheduler state. The `scaling` label adds the hierarchy
# fan-out (independent per-cluster coupled runs on the shared thread
# pool), and the clustered CLI run below drives the same path end to end.
build="build-tsan"
echo "==> MSHLS_SANITIZE=thread (${build})"
cmake -B "${build}" -S . -DMSHLS_SANITIZE=thread \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
cmake --build "${build}" -j "${jobs}" > /dev/null
ctest --test-dir "${build}" -L 'perf|repair|scaling' \
      --output-on-failure -j "${jobs}"
"${build}/src/tools/mshlsc" --fuzz-repair 25:1 --jobs 4 \
      --fuzz-dir "${build}/fuzz-repair-check"
"${build}/src/tools/mshlsc" tests/data/scaling_corpus/case_2.hls \
      --clusters 8 --jobs 4 --verify
echo "==> all sanitizer runs passed"
