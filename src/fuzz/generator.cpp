#include "fuzz/generator.h"

#include <algorithm>
#include <cassert>
#include <string>
#include <utility>
#include <vector>

#include "common/math_util.h"
#include "workloads/benchmarks.h"

namespace mshls {
namespace {

/// Blocks are generated before their process exists (the deadline depends
/// on the block ranges and SystemModel has no process mutator), so they
/// are staged here first.
struct StagedBlock {
  DataFlowGraph graph;
  int time_range = 0;
};

int CriticalPath(const DataFlowGraph& g, const ResourceLibrary& lib) {
  return g.CriticalPathLength(
      [&](OpId op) { return lib.type(g.op(op).type).delay; });
}

}  // namespace

const char* CaseClassName(CaseClass cls) {
  switch (cls) {
    case CaseClass::kClean: return "clean";
    case CaseClass::kInfeasible: return "infeasible";
    case CaseClass::kGridHostile: return "grid-hostile";
  }
  return "?";
}

GeneratedCase GenerateSystem(std::uint64_t seed,
                             const FuzzGenOptions& options) {
  Rng rng(seed);
  GeneratedCase out;
  out.seed = seed;
  SystemModel& model = out.model;

  // Library: the paper's add/sub/mult plus optional non-pipelined units so
  // dii > 1 occupancy paths are swept too.
  const PaperTypes t = AddPaperTypes(model.library());
  std::vector<std::pair<ResourceTypeId, double>> mix = {
      {t.add, 0.35}, {t.sub, 0.2}, {t.mult, options.mult_probability}};
  if (rng.NextBool(options.div_probability))
    mix.emplace_back(model.library().AddSimple("div", 3, 8), 0.12);
  if (rng.NextBool(options.acc_probability))
    mix.emplace_back(model.library().AddSimple("acc", 2, 6), 0.1);

  // One system unit divides every block time range, so divisors of the
  // unit are always eq.-3 compatible periods (lcm of divisors of u
  // divides u, and u divides every range).
  const int unit = rng.NextInt(2, 6);
  const int min_proc = std::max(1, options.min_processes);
  const int nproc = rng.NextInt(min_proc, std::max(min_proc, options.max_processes));
  for (int p = 0; p < nproc; ++p) {
    const int nblocks =
        rng.NextInt(1, std::max(1, options.max_blocks_per_process));
    std::vector<StagedBlock> staged;
    int max_range = 0;
    for (int b = 0; b < nblocks; ++b) {
      RandomDfgOptions ro;
      ro.ops = rng.NextInt(options.min_ops_per_block,
                           std::max(options.min_ops_per_block,
                                    options.max_ops_per_block));
      ro.layers = rng.NextInt(2, std::max(2, std::min(5, ro.ops)));
      ro.edge_probability = options.edge_probability;
      ro.type_mix = mix;
      DataFlowGraph g = BuildRandomDfg(t, rng, ro);
      const Status vs = g.Validate();
      assert(vs.ok() && "layered random DAG must validate");
      (void)vs;
      const int cp = CriticalPath(g, model.library());
      const int range = static_cast<int>(
          CeilDiv(cp + rng.NextInt(0, std::max(0, options.max_stretch)),
                  unit) *
          unit);
      staged.push_back(StagedBlock{std::move(g), std::max(range, unit)});
      max_range = std::max(max_range, staged.back().time_range);
    }
    const int deadline = rng.NextBool(options.deadline_probability)
                             ? max_range + unit * rng.NextInt(0, 2)
                             : 0;
    const ProcessId pid =
        model.AddProcess("p" + std::to_string(p), deadline);
    for (std::size_t b = 0; b < staged.size(); ++b)
      model.AddBlock(pid, "p" + std::to_string(p) + "b" + std::to_string(b),
                     std::move(staged[b].graph), staged[b].time_range);
  }

  // S1/S2: global assignment over a random subset of each type's users,
  // periods drawn from the divisors of the unit (eq.-3 compatible).
  const std::vector<std::int64_t> divisors = DivisorsOf(unit);
  for (const ResourceType& type : model.library().types()) {
    std::vector<ProcessId> users;
    for (const Process& p : model.processes())
      if (model.ProcessUsesType(p.id, type.id)) users.push_back(p.id);
    if (users.size() < 2 || !rng.NextBool(options.share_probability))
      continue;
    if (users.size() > 2 && rng.NextBool(0.3))
      users.erase(users.begin() + rng.NextInt(0, static_cast<int>(users.size()) - 1));
    model.MakeGlobal(type.id, users);
    model.SetPeriod(
        type.id,
        static_cast<int>(
            divisors[rng.NextBounded(divisors.size())]));
  }

  // Phases on the resulting grid.
  for (const Block& b : model.blocks()) {
    const std::int64_t grid = model.GridSpacing(b.process);
    if (grid > 1 && rng.NextBool(options.phase_probability))
      model.mutable_block(b.id).phase =
          rng.NextInt(0, static_cast<int>(grid) - 1);
  }

  // Adversarial class mutation.
  const double class_draw = rng.NextDouble();
  if (class_draw < options.infeasible_probability) {
    // Squeeze one block below its critical path — must be rejected with a
    // typed kInfeasible, never scheduled and never crashed on.
    std::vector<BlockId> eligible;
    for (const Block& b : model.blocks())
      if (CriticalPath(b.graph, model.library()) >= 2)
        eligible.push_back(b.id);
    if (!eligible.empty()) {
      const BlockId victim = eligible[rng.NextBounded(eligible.size())];
      model.mutable_block(victim).time_range =
          CriticalPath(model.block(victim).graph, model.library()) - 1;
      out.cls = CaseClass::kInfeasible;
      return out;
    }
  } else if (class_draw <
             options.infeasible_probability + options.grid_hostile_probability) {
    // Misdeclare one pool's period so the grid cannot tile the smallest
    // user time range: the model validates and schedules, but eq. 2/3 is
    // unsatisfiable and the certifier must say so (kGridMisalignment).
    const std::vector<ResourceTypeId> globals = model.GlobalTypes();
    if (!globals.empty()) {
      const ResourceTypeId g = globals[rng.NextBounded(globals.size())];
      int min_range = 0;
      for (ProcessId p : model.GlobalUsers(g))
        for (BlockId bid : model.process(p).blocks)
          min_range = min_range == 0
                          ? model.block(bid).time_range
                          : std::min(min_range, model.block(bid).time_range);
      if (min_range >= 1) {
        model.SetPeriod(g, min_range + 1);
        // The grid of affected processes changed; re-clamp phases so the
        // model still validates (hostility lives in eq. 2/3, not in the
        // phase range check).
        for (const Block& b : model.blocks()) {
          const std::int64_t grid = model.GridSpacing(b.process);
          if (grid > 1)
            model.mutable_block(b.id).phase =
                static_cast<int>(model.block(b.id).phase % grid);
          else
            model.mutable_block(b.id).phase = 0;
        }
        out.cls = CaseClass::kGridHostile;
        return out;
      }
    }
  }
  out.cls = CaseClass::kClean;
  return out;
}

std::string MutateText(std::string text, Rng& rng) {
  if (text.empty()) return text;
  const int mutations = 1 + rng.NextInt(0, 2);
  for (int m = 0; m < mutations; ++m) {
    if (text.empty()) break;
    const std::size_t n = text.size();
    switch (rng.NextInt(0, 5)) {
      case 0:  // truncate
        text.resize(rng.NextBounded(n));
        break;
      case 1: {  // delete a chunk
        const std::size_t at = rng.NextBounded(n);
        text.erase(at, 1 + rng.NextBounded(std::min<std::size_t>(n - at, 24)));
        break;
      }
      case 2: {  // duplicate a chunk
        const std::size_t at = rng.NextBounded(n);
        const std::size_t len =
            1 + rng.NextBounded(std::min<std::size_t>(n - at, 24));
        text.insert(at, text.substr(at, len));
        break;
      }
      case 3: {  // arbitrary byte flips, including NUL and non-ASCII
        const int flips = 1 + rng.NextInt(0, 7);
        for (int i = 0; i < flips; ++i)
          text[rng.NextBounded(text.size())] =
              static_cast<char>(rng.NextBounded(256));
        break;
      }
      case 4: {  // token soup: syntactically plausible fragments misplaced
        static constexpr const char* kTokens[] = {
            "{", "}", ";", "(", ")", ",", "=", "process ", "block ",
            "share ", "resource ", "using ", "period ", "time ",
            "99999999999999999999", "-", "*"};
        text.insert(rng.NextBounded(n + 1),
                    kTokens[rng.NextBounded(std::size(kTokens))]);
        break;
      }
      case 5: {  // swap two bytes
        const std::size_t a = rng.NextBounded(n);
        const std::size_t b = rng.NextBounded(n);
        std::swap(text[a], text[b]);
        break;
      }
    }
  }
  return text;
}

}  // namespace mshls
