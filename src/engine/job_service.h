// JobService — batch front of the scheduling engine: runs many
// SchedulingJobs concurrently on one bounded thread pool, shares one
// result cache across them, and returns results in submission order
// (parallel batch output is position-identical to a serial run of the
// same jobs).
#pragma once

#include <array>
#include <future>
#include <memory>
#include <optional>
#include <vector>

#include "engine/job.h"
#include "engine/result_cache.h"
#include "engine/thread_pool.h"
#include "modulo/schedule_cache.h"

namespace mshls {

/// Number of DegradationRung values (for per-rung accounting arrays).
inline constexpr std::size_t kDegradationRungCount = 4;

/// Aggregate view of one finished batch: success/failure split, per-rung
/// degradation counts, search-candidate totals and the shared schedule
/// cache's hit ratio. All fields are order-independent sums, so a summary
/// of a parallel batch equals the serial one.
struct BatchSummary {
  std::size_t total = 0;
  std::size_t succeeded = 0;
  std::size_t failed = 0;
  /// Successful jobs that finished on each rung, indexed by
  /// static_cast<std::size_t>(DegradationRung).
  std::array<std::size_t, kDegradationRungCount> rung_counts{};
  /// Rung attempts actually run across all jobs (>= total: fallback jobs
  /// try several).
  std::size_t attempts = 0;
  long evaluated = 0;    // search candidates scheduled across the batch
  long cache_hits = 0;   // of those, served from the schedule cache
  CacheStats cache;      // the shared cache's own counters
  double wall_ms_sum = 0;

  [[nodiscard]] double HitRate() const {
    return evaluated == 0 ? 0.0
                          : static_cast<double>(cache_hits) /
                                static_cast<double>(evaluated);
  }
};

/// Folds per-job results and the shared cache's stats into a BatchSummary.
[[nodiscard]] BatchSummary SummarizeBatch(const std::vector<JobResult>& results,
                                          const CacheStats& cache_stats);

struct JobServiceOptions {
  /// Concurrent jobs; <= 1 runs the batch serially on the calling thread.
  int workers = 1;
  /// Schedule-cache capacity (entries); 0 = unbounded.
  std::size_t cache_capacity = 0;
  /// Optional persistent second cache tier (not owned; must outlive the
  /// service). Jobs whose `store` is unset are wired to it, exactly like
  /// the in-memory cache.
  ScheduleStore* store = nullptr;
};

class JobService {
 public:
  explicit JobService(const JobServiceOptions& options = {});

  /// Runs all jobs, blocking until every one finished (or failed);
  /// results[i] always corresponds to jobs[i]. A job whose `cache` is
  /// unset is wired to the service-wide cache. Per-job failures are
  /// reported in the result's status, never thrown.
  [[nodiscard]] std::vector<JobResult> RunBatch(std::vector<SchedulingJob> jobs);

  /// Streaming entry for the scheduling daemon: runs `job` asynchronously
  /// on a persistent pool of `workers` threads (started lazily on first
  /// use) and returns a future for its result. Unlike RunBatch the pool
  /// outlives the call, so a long-running server pays thread start-up once.
  /// The future never carries an exception (RunSchedulingJob converts
  /// failures into the result's status). Safe to call from many threads.
  [[nodiscard]] std::future<JobResult> SubmitJob(SchedulingJob job);

  /// Mirrors the shared cache's counter deltas into the metrics registry
  /// (RunBatch does this automatically; streaming callers invoke it at
  /// reporting points). Thread-safe.
  void PublishCacheMetrics();

  [[nodiscard]] ScheduleCache& cache() { return cache_; }
  [[nodiscard]] CacheStats cache_stats() const { return cache_.stats(); }
  [[nodiscard]] int workers() const { return workers_; }

 private:
  int workers_;
  ScheduleCache cache_;
  ScheduleStore* store_;
  /// Pool backing SubmitJob; RunBatch keeps its per-call pool so batch
  /// determinism properties are unchanged.
  std::mutex pool_mutex_;
  std::optional<ThreadPool> streaming_pool_;
  /// Cache counters already mirrored into the metrics registry, so
  /// consecutive RunBatch calls publish deltas, not lifetime totals twice.
  std::mutex publish_mutex_;
  CacheStats published_;
};

}  // namespace mshls
