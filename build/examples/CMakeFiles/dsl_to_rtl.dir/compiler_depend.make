# Empty compiler generated dependencies file for dsl_to_rtl.
# This may be replaced when dependencies are built.
