// Lightweight status / status-or types for fallible construction and
// validation APIs. Algorithmic inner loops assert instead; only operations
// whose failure is a *user input* problem (malformed graph, infeasible
// constraint, parse error) report through Status.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace mshls {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // malformed input (bad graph, negative delay, ...)
  kFailedPrecondition,// model not in the required state (unvalidated, ...)
  kInfeasible,        // constraints admit no solution (deadline < critical path)
  kNotFound,          // lookup by name/id failed
  kParseError,        // frontend syntax/semantic error
  kInternal,          // invariant violation that escaped an assert build
  kCancelled,         // job aborted through a CancelToken
  kDeadlineExceeded,  // job exceeded its wall-clock timeout
};

[[nodiscard]] const char* StatusCodeName(StatusCode code);

/// Error-or-success result; cheap to copy on the success path.
class Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    assert(code != StatusCode::kOk && "use Status() for OK");
  }

  [[nodiscard]] static Status Ok() { return Status{}; }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>" — for logs and test failure output.
  [[nodiscard]] std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Value-or-status. Kept deliberately minimal (no monadic API): call sites
/// check ok() and either consume value() or propagate status().
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT implicit
    assert(!status_.ok() && "StatusOr(Status) requires an error status");
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT implicit

  [[nodiscard]] bool ok() const { return status_.ok(); }
  [[nodiscard]] const Status& status() const { return status_; }

  [[nodiscard]] const T& value() const& {
    assert(ok());
    return *value_;
  }
  [[nodiscard]] T& value() & {
    assert(ok());
    return *value_;
  }
  [[nodiscard]] T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace mshls
