// Tests of the paper's core contribution: the coupled multi-process modulo
// scheduler (S3) with its two-part IFDS modification.
#include <gtest/gtest.h>

#include "modulo/baseline.h"
#include "modulo/coupled_scheduler.h"
#include "workloads/benchmarks.h"
#include "workloads/paper_system.h"

namespace mshls {
namespace {

class CoupledTest : public ::testing::Test {
 protected:
  SystemModel model_;
  PaperTypes types_ = AddPaperTypes(model_.library());

  /// Process with `n` independent add operations in `range` steps.
  ProcessId AddIndependentAdds(const std::string& name, int n, int range) {
    DataFlowGraph g;
    for (int i = 0; i < n; ++i)
      g.AddOp(types_.add, name + "_a" + std::to_string(i));
    EXPECT_TRUE(g.Validate().ok());
    const ProcessId p = model_.AddProcess(name, range);
    model_.AddBlock(p, name + "_main", std::move(g), range);
    return p;
  }

  CoupledResult RunOn(SystemModel& model,
                      GlobalForceMode mode = GlobalForceMode::kFull) {
    EXPECT_TRUE(model.Validate().ok());
    CoupledParams params;
    params.mode = mode;
    CoupledScheduler scheduler(model, std::move(params));
    auto result = scheduler.Run();
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(result).value();
  }
};

// ---- paper Figure 2: periodic alignment by the modulo-max transform ----

TEST_F(CoupledTest, Figure2AlignmentOfTwoOperations) {
  // One block, two independent operations of one global type, time range 4,
  // period 2. The modified algorithm must align both ops on the same
  // residue class so that the other residue stays free for other processes
  // (paper §5.1, Figure 2).
  const ProcessId p = AddIndependentAdds("p", 2, 4);
  model_.MakeGlobal(types_.add, {p});
  model_.SetPeriod(types_.add, 2);
  const CoupledResult result = RunOn(model_);

  const BlockSchedule& s = result.schedule.of(BlockId{0});
  EXPECT_EQ(s.start(OpId{0}) % 2, s.start(OpId{1}) % 2)
      << "ops at " << s.start(OpId{0}) << " and " << s.start(OpId{1});
  // They must not collide outright.
  EXPECT_NE(s.start(OpId{0}), s.start(OpId{1}));
  // One residue is completely free.
  const GlobalTypeAllocation* pool = result.allocation.FindGlobal(types_.add);
  ASSERT_NE(pool, nullptr);
  EXPECT_EQ(pool->instances, 1);
  const int used = pool->profile[0] > 0 ? 0 : 1;
  EXPECT_EQ(pool->profile[1 - used], 0);
}

TEST_F(CoupledTest, UnmodifiedSchedulerDoesNotAlign) {
  // Contrast to the above: with global forces ignored (classic IFDS), the
  // smoothing objective places the two ops on *different* residues (flat
  // block-local distribution), demonstrating why the modification matters.
  const ProcessId p = AddIndependentAdds("p", 2, 4);
  model_.MakeGlobal(types_.add, {p});
  model_.SetPeriod(types_.add, 2);
  const CoupledResult result = RunOn(model_, GlobalForceMode::kIgnoreGlobal);
  const BlockSchedule& s = result.schedule.of(BlockId{0});
  EXPECT_NE(s.start(OpId{0}) % 2, s.start(OpId{1}) % 2);
}

TEST_F(CoupledTest, TwoProcessesShareOneAdderOnOppositeResidues) {
  // Global balancing (part 2) must push two identical processes onto
  // different residue classes so a single instance serves both.
  const ProcessId p1 = AddIndependentAdds("p1", 2, 4);
  const ProcessId p2 = AddIndependentAdds("p2", 2, 4);
  model_.MakeGlobal(types_.add, {p1, p2});
  model_.SetPeriod(types_.add, 2);
  const CoupledResult result = RunOn(model_);
  const GlobalTypeAllocation* pool = result.allocation.FindGlobal(types_.add);
  ASSERT_NE(pool, nullptr);
  EXPECT_EQ(pool->instances, 1)
      << "profile: " << pool->profile[0] << "," << pool->profile[1];
  // The local baseline needs one adder per process.
  auto baseline = ScheduleLocalBaseline(model_, CoupledParams{});
  ASSERT_TRUE(baseline.ok());
  EXPECT_EQ(baseline.value().allocation.TotalInstances(types_.add), 2);
}

// ---- structural invariants ----

TEST_F(CoupledTest, ScheduleIsValidAndAllocationCovers) {
  PaperSystem sys = BuildPaperSystem();
  const CoupledResult result = RunOn(sys.model);
  EXPECT_TRUE(ValidateSystemSchedule(sys.model, result.schedule).ok());
  EXPECT_TRUE(
      CheckAllocationCovers(sys.model, result.schedule, result.allocation)
          .ok());
}

TEST_F(CoupledTest, Deterministic) {
  PaperSystem sys1 = BuildPaperSystem();
  PaperSystem sys2 = BuildPaperSystem();
  const CoupledResult r1 = RunOn(sys1.model);
  const CoupledResult r2 = RunOn(sys2.model);
  EXPECT_EQ(r1.iterations, r2.iterations);
  for (const Block& b : sys1.model.blocks())
    for (const Operation& op : b.graph.ops())
      EXPECT_EQ(r1.schedule.of(b.id).start(op.id),
                r2.schedule.of(b.id).start(op.id));
}

TEST_F(CoupledTest, GlobalPoolSatisfiesResidueInequality) {
  // N_g = max_tau sum_p A_p(tau) by construction; re-verify by hand.
  PaperSystem sys = BuildPaperSystem();
  const CoupledResult result = RunOn(sys.model);
  for (const GlobalTypeAllocation& ga : result.allocation.global) {
    for (std::size_t tau = 0; tau < ga.profile.size(); ++tau) {
      int sum = 0;
      for (const auto& auth : ga.authorization) sum += auth[tau];
      EXPECT_EQ(sum, ga.profile[tau]);
      EXPECT_LE(sum, ga.instances);
    }
  }
}

TEST_F(CoupledTest, ObserverTracesEveryIteration) {
  const ProcessId p1 = AddIndependentAdds("p1", 3, 5);
  (void)p1;
  ASSERT_TRUE(model_.Validate().ok());
  int calls = 0;
  CoupledParams params;
  params.observer = [&](const CoupledIterationTrace& trace) {
    EXPECT_EQ(trace.iteration, calls);
    EXPECT_FALSE(trace.candidates.empty());
    EXPECT_TRUE(trace.chosen_op.valid());
    ++calls;
  };
  CoupledScheduler scheduler(model_, std::move(params));
  auto result = scheduler.Run();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(calls, result.value().iterations);
}

// ---- the headline claim: less than one resource per type and process ----

TEST_F(CoupledTest, PaperSystemBeatsLocalBaselineOnArea) {
  PaperSystem sys = BuildPaperSystem();
  const CoupledResult global = RunOn(sys.model);
  auto baseline = ScheduleLocalBaseline(sys.model, CoupledParams{});
  ASSERT_TRUE(baseline.ok());
  const int global_area = global.allocation.TotalArea(sys.model.library());
  const int local_area =
      baseline.value().allocation.TotalArea(sys.model.library());
  // Paper: 17 vs 28 (39% saving). Exact counts are heuristic-dependent;
  // the shape that must hold: a clear area win.
  EXPECT_LT(global_area, local_area);
  EXPECT_LE(static_cast<double>(global_area) / local_area, 0.85)
      << "global " << global_area << " vs local " << local_area;
}

TEST_F(CoupledTest, PaperSystemSharesBelowOnePerProcess) {
  // The impossible-for-traditional-scheduling property: fewer multiplier
  // instances than processes using multipliers (5), and fewer subtracters
  // than subtracter-using processes (2).
  PaperSystem sys = BuildPaperSystem();
  const CoupledResult global = RunOn(sys.model);
  const GlobalTypeAllocation* mult =
      global.allocation.FindGlobal(sys.types.mult);
  ASSERT_NE(mult, nullptr);
  EXPECT_LT(mult->instances, 5);
  const GlobalTypeAllocation* sub =
      global.allocation.FindGlobal(sys.types.sub);
  ASSERT_NE(sub, nullptr);
  EXPECT_LT(sub->instances, 2);
  EXPECT_EQ(sub->users.size(), 2u);
}

TEST_F(CoupledTest, BlockModuloOnlyModeStillAligns) {
  // Part-1-only ablation: alignment happens, but no cross-process
  // balancing; the result must still be a valid covered schedule.
  PaperSystem sys = BuildPaperSystem();
  const CoupledResult result =
      RunOn(sys.model, GlobalForceMode::kBlockModuloOnly);
  EXPECT_TRUE(
      CheckAllocationCovers(sys.model, result.schedule, result.allocation)
          .ok());
}

TEST_F(CoupledTest, FullModeNotWorseThanIgnoreGlobalOnPool) {
  PaperSystem sys = BuildPaperSystem();
  const CoupledResult full = RunOn(sys.model, GlobalForceMode::kFull);
  const CoupledResult naive = RunOn(sys.model, GlobalForceMode::kIgnoreGlobal);
  // Scheduling blind to the modulo profiles cannot beat the modified
  // algorithm on pooled area (same allocation rule applied after the fact).
  EXPECT_LE(full.allocation.TotalArea(sys.model.library()),
            naive.allocation.TotalArea(sys.model.library()));
}

// ---- grid-move invariance (paper eq. 2) ----

TEST_F(CoupledTest, PhaseShiftByPeriodKeepsInstanceCount) {
  // Shifting a block's phase by a full period must not change anything;
  // shifting by a partial period changes residues but the allocation must
  // still cover the schedule.
  const ProcessId p1 = AddIndependentAdds("p1", 2, 4);
  const ProcessId p2 = AddIndependentAdds("p2", 2, 4);
  model_.MakeGlobal(types_.add, {p1, p2});
  model_.SetPeriod(types_.add, 2);
  const CoupledResult base = RunOn(model_);

  model_.mutable_block(BlockId{1}).phase = 0;  // unchanged reference
  const CoupledResult same = RunOn(model_);
  EXPECT_EQ(base.allocation.FindGlobal(types_.add)->instances,
            same.allocation.FindGlobal(types_.add)->instances);

  model_.mutable_block(BlockId{1}).phase = 1;  // half-period offset
  const CoupledResult shifted = RunOn(model_);
  EXPECT_TRUE(CheckAllocationCovers(model_, shifted.schedule,
                                    shifted.allocation)
                  .ok());
  // The scheduler exploits the offset as well: still one adder.
  EXPECT_EQ(shifted.allocation.FindGlobal(types_.add)->instances, 1);
}

TEST_F(CoupledTest, SingleBlockNoGlobalsDegeneratesToIfds) {
  // With one block and no global types the coupled engine must equal the
  // plain single-block IFDS result exactly.
  SystemModel m;
  const PaperTypes t = AddPaperTypes(m.library());
  const ProcessId p = m.AddProcess("p", 12);
  const BlockId b = m.AddBlock(p, "main", BuildDiffeq(t), 12);
  ASSERT_TRUE(m.Validate().ok());

  CoupledScheduler scheduler(m, CoupledParams{});
  auto coupled = scheduler.Run();
  ASSERT_TRUE(coupled.ok());
  auto single = ScheduleBlockIfds(m.block(b), m.library(), {});
  ASSERT_TRUE(single.ok());
  for (const Operation& op : m.block(b).graph.ops())
    EXPECT_EQ(coupled.value().schedule.of(b).start(op.id),
              single.value().schedule.start(op.id));
  EXPECT_EQ(coupled.value().iterations, single.value().iterations);
}

TEST_F(CoupledTest, MultiBlockProcessUsesMaxNotSum) {
  // Two blocks of ONE process never overlap (C2): the process max rule
  // (paper eq. 9) must not add their demands.
  const ProcessId p = model_.AddProcess("p", 8);
  for (int blk = 0; blk < 2; ++blk) {
    DataFlowGraph g;
    for (int i = 0; i < 2; ++i)
      g.AddOp(types_.add, "b" + std::to_string(blk) + "_a" +
                              std::to_string(i));
    ASSERT_TRUE(g.Validate().ok());
    model_.AddBlock(p, "blk" + std::to_string(blk), std::move(g), 4);
  }
  model_.MakeGlobal(types_.add, {p});
  model_.SetPeriod(types_.add, 2);
  const CoupledResult result = RunOn(model_);
  const GlobalTypeAllocation* pool = result.allocation.FindGlobal(types_.add);
  ASSERT_NE(pool, nullptr);
  // Each block fits in one adder per residue; with max-combining the pool
  // must stay at 1 even though the summed demand would be 2.
  EXPECT_EQ(pool->instances, 1);
}

TEST_F(CoupledTest, GroupProfileMatchesAllocationAfterRun) {
  PaperSystem sys = BuildPaperSystem();
  ASSERT_TRUE(sys.model.Validate().ok());
  CoupledScheduler scheduler(sys.model, CoupledParams{});
  auto result = scheduler.Run();
  ASSERT_TRUE(result.ok());
  // Once every frame is fixed, the engine's G profile equals the integer
  // occupancy profile of the allocation.
  for (const GlobalTypeAllocation& ga : result.value().allocation.global) {
    const Profile& g = scheduler.GroupProfile(ga.type);
    ASSERT_EQ(g.size(), ga.profile.size());
    for (std::size_t tau = 0; tau < g.size(); ++tau)
      EXPECT_NEAR(g[tau], ga.profile[tau], 1e-9);
  }
}

}  // namespace
}  // namespace mshls
