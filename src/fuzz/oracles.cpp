#include "fuzz/oracles.h"

#include <algorithm>
#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "bind/binding.h"
#include "common/math_util.h"
#include "common/rng.h"
#include "model/model_spec.h"
#include "modulo/allocation.h"
#include "modulo/coupled_scheduler.h"
#include "modulo/period_search.h"
#include "modulo/schedule_cache.h"
#include "sched/exact_scheduler.h"
#include "verify/certifier.h"

namespace mshls {
namespace {

int TotalOps(const SystemModel& model) {
  int n = 0;
  for (const Block& b : model.blocks())
    n += static_cast<int>(b.graph.op_count());
  return n;
}

/// Bit-identical start times over structurally identical models.
bool SchedulesEqual(const SystemModel& model, const SystemSchedule& a,
                    const SystemSchedule& b) {
  if (a.blocks.size() != b.blocks.size()) return false;
  for (const Block& blk : model.blocks()) {
    const BlockSchedule& sa = a.of(blk.id);
    const BlockSchedule& sb = b.of(blk.id);
    if (sa.size() != sb.size()) return false;
    for (const Operation& op : blk.graph.ops())
      if (sa.start(op.id) != sb.start(op.id)) return false;
  }
  return true;
}

void Fail(CaseOutcome& out, OracleKind kind, std::string detail) {
  out.failures.push_back(OracleFailure{kind, std::move(detail)});
}

/// Full pipeline on a model copy: validate + schedule. Used by the
/// metamorphic variants, which only need the verdict/result.
struct PipelineRun {
  bool valid = false;
  bool feasible = false;
  StatusCode code = StatusCode::kOk;
  CoupledResult result;
};

PipelineRun RunPipeline(SystemModel model) {
  PipelineRun run;
  if (Status st = model.Validate(); !st.ok()) {
    run.code = st.code();
    return run;
  }
  run.valid = true;
  StatusOr<CoupledResult> res = CoupledScheduler(model, CoupledParams{}).Run();
  if (!res.ok()) {
    run.code = res.status().code();
    return run;
  }
  run.feasible = true;
  run.result = std::move(res).value();
  return run;
}

// ---- oracle (b): exact lower bound on small local-only systems ----------

void CheckExactBound(const SystemModel& model, const CoupledResult& result,
                     const OracleOptions& options, CaseOutcome& out) {
  if (!model.GlobalTypes().empty()) return;
  if (TotalOps(model) > options.exact_max_ops) return;
  for (const Process& p : model.processes())
    if (p.blocks.size() != 1) return;  // sum-of-blocks bound needs C2-free sums
  int bound = 0;
  for (const Block& b : model.blocks()) {
    StatusOr<ExactResult> exact = ScheduleBlockExact(
        b, model.library(), ExactOptions{options.exact_max_nodes});
    if (!exact.ok() || !exact.value().proven_optimal) return;  // no verdict
    bound += exact.value().area;
  }
  out.exact_checked = true;
  const int area = result.allocation.TotalArea(model.library());
  if (area < bound)
    Fail(out, OracleKind::kExactBound,
         "heuristic area " + std::to_string(area) +
             " beats proven optimum " + std::to_string(bound));
}

// ---- oracle (c): metamorphic transforms over ModelSpec ------------------

void CheckMetamorphic(const SystemModel& model, const CoupledResult& result,
                      std::uint64_t seed, CaseOutcome& out) {
  const ModelSpec spec = ExtractSpec(model);
  const int base_area = result.allocation.TotalArea(model.library());

  // c1: op renaming — names are diagnostics, the schedule must not move.
  {
    ModelSpec renamed = spec;
    int counter = 0;
    for (SpecProcess& p : renamed.processes)
      for (SpecBlock& b : p.blocks)
        for (SpecOp& o : b.ops) o.name = "r" + std::to_string(counter++);
    StatusOr<SystemModel> m = BuildModel(renamed);
    if (!m.ok()) {
      Fail(out, OracleKind::kMetamorphic,
           "c1 rename: rebuild failed: " + m.status().message());
    } else {
      PipelineRun run = RunPipeline(std::move(m).value());
      if (!run.feasible)
        Fail(out, OracleKind::kMetamorphic,
             "c1 rename: feasibility flipped (" +
                 std::string(StatusCodeName(run.code)) + ")");
      else if (!SchedulesEqual(model, result.schedule, run.result.schedule))
        Fail(out, OracleKind::kMetamorphic, "c1 rename: schedule moved");
      else if (run.result.allocation.TotalArea(model.library()) != base_area)
        Fail(out, OracleKind::kMetamorphic, "c1 rename: area changed");
    }
  }

  // c2: process reversal — enumeration order feeds IFDS tie-breaking, so
  // only the verdict is compared: still feasible, still certifies clean.
  {
    ModelSpec reversed = spec;
    std::reverse(reversed.processes.begin(), reversed.processes.end());
    const int n = static_cast<int>(reversed.processes.size());
    for (SpecShare& s : reversed.shares)
      for (int& idx : s.processes) idx = n - 1 - idx;
    StatusOr<SystemModel> m = BuildModel(reversed);
    if (!m.ok()) {
      Fail(out, OracleKind::kMetamorphic,
           "c2 reverse: rebuild failed: " + m.status().message());
    } else {
      SystemModel reordered = std::move(m).value();
      PipelineRun run = RunPipeline(reordered);
      if (!run.feasible) {
        Fail(out, OracleKind::kMetamorphic,
             "c2 reverse: feasibility flipped (" +
                 std::string(StatusCodeName(run.code)) + ")");
      } else {
        (void)reordered.Validate();
        const CertificateReport report = CertifyResult(reordered, run.result);
        if (!report.ok())
          Fail(out, OracleKind::kMetamorphic,
               "c2 reverse: certificate dirty: " + report.Summary());
      }
    }
  }

  // c3: uniform time-origin rotation. Shifting every activation by a shared
  // offset rotates all phases on their grids and every eq.-1 residue profile
  // rotates with them, so the rotated problem is isomorphic to the original
  // — but neither the schedule nor the heuristic area is invariant: IFDS
  // tie-breaking keys on absolute residue indices, so equal-force
  // candidates resolve differently and the greedy outcome can land on a
  // different (better or worse) area — both observed on real cases. What
  // must survive is the *verdict*: the rotated model still schedules and
  // the result still certifies clean. This is the non-vacuous form of the
  // "shift by lcm{lambda_g}" invariance: a shift by exactly the lcm is the
  // identity on phases, a shift by delta < lcm is not.
  {
    std::vector<std::int64_t> grids;
    for (const Process& p : model.processes())
      grids.push_back(model.GridSpacing(p.id));
    const std::int64_t lcm = LcmOf(grids);
    if (lcm > 1) {
      Rng rot(seed ^ 0xC3C3C3C3C3C3C3C3ULL);
      const std::int64_t delta = 1 + static_cast<std::int64_t>(rot.NextBounded(
                                         static_cast<std::uint64_t>(lcm - 1)));
      ModelSpec rotated = spec;
      for (std::size_t pi = 0; pi < rotated.processes.size(); ++pi) {
        const std::int64_t grid = grids[pi];
        if (grid <= 1) continue;
        for (SpecBlock& b : rotated.processes[pi].blocks)
          b.phase = static_cast<int>((b.phase + delta) % grid);
      }
      StatusOr<SystemModel> m = BuildModel(rotated);
      if (!m.ok()) {
        Fail(out, OracleKind::kMetamorphic,
             "c3 rotate: rebuild failed: " + m.status().message());
      } else {
        SystemModel rotated_model = std::move(m).value();
        PipelineRun run = RunPipeline(rotated_model);
        if (!run.feasible) {
          Fail(out, OracleKind::kMetamorphic,
               "c3 rotate(+" + std::to_string(delta) +
                   "): feasibility flipped (" +
                   std::string(StatusCodeName(run.code)) + ")");
        } else {
          (void)rotated_model.Validate();
          const CertificateReport report =
              CertifyResult(rotated_model, run.result);
          if (!report.ok())
            Fail(out, OracleKind::kMetamorphic,
                 "c3 rotate(+" + std::to_string(delta) +
                     "): certificate dirty: " + report.Summary());
        }
      }
    }
  }
}

// ---- oracle (d): warm cache and parallel search replay ------------------

void CheckCacheReplay(const SystemModel& model, const CoupledResult& result,
                      const OracleOptions& options, CaseOutcome& out) {
  const CoupledParams params{};
  // Cold vs. warm single-model replay.
  {
    ScheduleCache cache;
    SystemModel cold_model = model;
    bool hit = false;
    StatusOr<CoupledResult> cold =
        ScheduleWithCache(cold_model, params, &cache, &hit);
    if (!cold.ok() || hit) {
      Fail(out, OracleKind::kCacheReplay, "cold run failed or spuriously hit");
      return;
    }
    SystemModel warm_model = model;
    StatusOr<CoupledResult> warm =
        ScheduleWithCache(warm_model, params, &cache, &hit);
    if (!warm.ok() || !hit) {
      Fail(out, OracleKind::kCacheReplay, "warm run failed or missed");
      return;
    }
    if (!SchedulesEqual(model, cold.value().schedule, warm.value().schedule) ||
        !SchedulesEqual(model, result.schedule, warm.value().schedule)) {
      Fail(out, OracleKind::kCacheReplay, "warm replay is not bit-identical");
      return;
    }
    out.replay_checked = true;
  }
  // Parallel period search across --jobs widths, cold and warm per width.
  // Phases are cleared first: the search sweeps period combinations whose
  // grid can be smaller than a phase drawn against the declared grid, and
  // such combinations are rightly rejected at validation — the search
  // replay oracle probes determinism and caching, not phase feasibility.
  if (model.GlobalTypes().empty() || options.replay_jobs.empty()) return;
  SystemModel search_base = model;
  for (const Block& b : search_base.blocks())
    search_base.mutable_block(b.id).phase = 0;
  bool have_reference = false;
  std::vector<int> ref_periods;
  int ref_area = 0;
  SystemSchedule ref_schedule;
  for (int jobs : options.replay_jobs) {
    ScheduleCache cache;
    PeriodSearchOptions so;
    so.max_evaluations = options.search_max_evaluations;
    so.jobs = jobs;
    so.cache = &cache;
    SystemModel cold_model = search_base;
    StatusOr<PeriodSearchResult> cold = SearchPeriods(cold_model, params, so);
    if (!cold.ok()) {
      Fail(out, OracleKind::kCacheReplay,
           "period search failed at jobs=" + std::to_string(jobs) + ": " +
               cold.status().message());
      return;
    }
    SystemModel warm_model = search_base;
    StatusOr<PeriodSearchResult> warm = SearchPeriods(warm_model, params, so);
    if (!warm.ok() ||
        warm.value().periods != cold.value().periods ||
        warm.value().area != cold.value().area ||
        !SchedulesEqual(model, cold.value().best.schedule,
                        warm.value().best.schedule)) {
      Fail(out, OracleKind::kCacheReplay,
           "warm period search diverged at jobs=" + std::to_string(jobs));
      return;
    }
    if (warm.value().cache_hits != warm.value().evaluated) {
      Fail(out, OracleKind::kCacheReplay,
           "warm period search missed the cache at jobs=" +
               std::to_string(jobs));
      return;
    }
    if (!have_reference) {
      have_reference = true;
      ref_periods = cold.value().periods;
      ref_area = cold.value().area;
      ref_schedule = cold.value().best.schedule;
    } else if (cold.value().periods != ref_periods ||
               cold.value().area != ref_area ||
               !SchedulesEqual(model, cold.value().best.schedule,
                               ref_schedule)) {
      Fail(out, OracleKind::kCacheReplay,
           "jobs=" + std::to_string(jobs) +
               " search disagrees with jobs=" +
               std::to_string(options.replay_jobs.front()));
      return;
    }
  }
}

}  // namespace

const char* OracleKindName(OracleKind kind) {
  switch (kind) {
    case OracleKind::kPipeline: return "pipeline";
    case OracleKind::kCertify: return "certify";
    case OracleKind::kExactBound: return "exact-bound";
    case OracleKind::kMetamorphic: return "metamorphic";
    case OracleKind::kCacheReplay: return "cache-replay";
  }
  return "?";
}

std::string CaseOutcome::LogLine(int index) const {
  std::string line = "[" + std::to_string(index) + "] seed=" +
                     std::to_string(seed) + " " + CaseClassName(cls) +
                     " ops=" + std::to_string(ops);
  if (!valid || !feasible) {
    line += " reject=" + std::string(StatusCodeName(reject_code));
  } else {
    line += " area=" + std::to_string(area);
    if (exact_checked) line += " exact";
    if (replay_checked) line += " replay";
    if (inject_applicable)
      line += inject_caught ? " inject=caught" : " inject=MISSED";
  }
  if (ok()) {
    line += " ok";
  } else {
    for (const OracleFailure& f : failures)
      line += std::string(" FAIL ") + OracleKindName(f.kind) + ": " + f.detail;
  }
  return line;
}

CaseOutcome RunCaseOracles(const SystemModel& model_in, std::uint64_t seed,
                           CaseClass cls, const OracleOptions& options,
                           const FaultPlan* inject) {
  CaseOutcome out;
  out.seed = seed;
  out.cls = cls;
  out.ops = TotalOps(model_in);

  SystemModel model = model_in;
  if (Status st = model.Validate(); !st.ok()) {
    out.reject_code = st.code();
    if (cls == CaseClass::kInfeasible) {
      if (st.code() != StatusCode::kInfeasible)
        Fail(out, OracleKind::kPipeline,
             "expected typed kInfeasible, got " +
                 std::string(StatusCodeName(st.code())) + ": " + st.message());
    } else {
      Fail(out, OracleKind::kPipeline,
           std::string(CaseClassName(cls)) +
               " case rejected: " + st.message());
    }
    return out;
  }
  out.valid = true;
  if (cls == CaseClass::kInfeasible) {
    Fail(out, OracleKind::kPipeline,
         "infeasible case passed validation");
    return out;
  }

  StatusOr<CoupledResult> res = CoupledScheduler(model, CoupledParams{}).Run();
  if (!res.ok()) {
    out.reject_code = res.status().code();
    // A grid-hostile model may be rejected up front instead of certified
    // dirty; any typed rejection counts as a correct verdict for it.
    if (cls != CaseClass::kGridHostile)
      Fail(out, OracleKind::kPipeline,
           "scheduling failed: " + res.status().message());
    return out;
  }
  out.feasible = true;
  const CoupledResult result = std::move(res).value();
  out.area = result.allocation.TotalArea(model.library());

  // Binding: a global non-pipelined type can be unbindable by the greedy
  // prefix partition (documented limitation in bind/binding.h) — certify
  // without the binding in that case.
  SystemBinding binding;
  const SystemBinding* binding_ptr = nullptr;
  {
    StatusOr<SystemBinding> bound =
        BindSystem(model, result.schedule, result.allocation);
    if (bound.ok()) {
      binding = std::move(bound).value();
      binding_ptr = &binding;
    } else if (bound.status().code() != StatusCode::kInfeasible) {
      Fail(out, OracleKind::kPipeline,
           "binding failed: " + bound.status().message());
      return out;
    }
  }

  // Oracle (a): certification (positive for clean, negative for hostile).
  if (options.run_certify) {
    const CertificateReport report = CertifySchedule(
        model, result.schedule, result.allocation, binding_ptr);
    if (cls == CaseClass::kGridHostile) {
      if (!report.Has(ViolationKind::kGridMisalignment))
        Fail(out, OracleKind::kCertify,
             "grid-hostile case not flagged kGridMisalignment: " +
                 report.Summary());
    } else if (!report.ok()) {
      Fail(out, OracleKind::kCertify, report.Summary());
    }
  }

  // Injection drill: corrupt copies of the certified artifacts and demand
  // detection. Only meaningful on clean cases (hostile certificates are
  // dirty by design).
  if (inject != nullptr) {
    if (cls == CaseClass::kClean) {
      SystemSchedule schedule = result.schedule;
      Allocation allocation = result.allocation;
      SystemBinding fb = binding;
      StatusOr<InjectedFault> injected =
          InjectFault(*inject, model, schedule, allocation,
                      binding_ptr != nullptr ? &fb : nullptr);
      if (injected.ok()) {
        out.inject_applicable = true;
        const CertificateReport report = CertifySchedule(
            model, schedule, allocation,
            binding_ptr != nullptr ? &fb : nullptr);
        out.inject_caught = report.Has(injected.value().expected);
        if (!out.inject_caught)
          Fail(out, OracleKind::kCertify,
               "injected fault missed (" + injected.value().description +
                   "; expected " +
                   ViolationKindName(injected.value().expected) + ")");
      } else if (injected.status().code() != StatusCode::kFailedPrecondition &&
                 injected.status().code() != StatusCode::kInvalidArgument) {
        Fail(out, OracleKind::kPipeline,
             "fault injection errored: " + injected.status().message());
      }
    }
    return out;  // injection runs narrow the oracle set on purpose
  }

  if (cls != CaseClass::kClean) return out;

  if (options.run_exact) CheckExactBound(model, result, options, out);
  if (options.run_metamorphic) CheckMetamorphic(model, result, seed, out);
  if (options.run_replay) CheckCacheReplay(model, result, options, out);
  return out;
}

}  // namespace mshls
