#include "sim/value_executor.h"

#include <algorithm>
#include <cassert>

#include "sim/op_semantics.h"

namespace mshls {
namespace {
}  // namespace

std::vector<std::int64_t> EvaluateGraph(const Block& block,
                                        const ResourceLibrary& lib,
                                        const ValueExecOptions& options) {
  assert(block.graph.validated());
  std::vector<std::int64_t> value(block.graph.op_count(), 0);
  for (OpId op : block.graph.topological_order()) {
    std::vector<std::int64_t> operands;
    for (OpId p : block.graph.preds(op)) operands.push_back(value[p.index()]);
    value[op.index()] =
        EvaluateOpValue(block, lib, operands, op, options.input_seed);
  }
  return value;
}

ValueExecReport ExecuteBlockWithRegisters(
    const Block& block, const ResourceLibrary& lib,
    const BlockSchedule& schedule, const BlockRegisterAllocation& registers,
    const ValueExecOptions& options) {
  ValueExecReport report;
  report.reference = EvaluateGraph(block, lib, options);
  report.executed.assign(block.graph.op_count(), 0);

  struct RegState {
    std::int64_t value = 0;
    OpId owner = OpId::invalid();  // producer whose value is held
  };
  std::vector<RegState> regs(
      static_cast<std::size_t>(registers.register_count));

  // Events per cycle.
  const DataFlowGraph& g = block.graph;
  std::vector<std::vector<OpId>> issue(static_cast<std::size_t>(
      block.time_range));
  // A unit finishing after `delay` cycles latches its destination register
  // at the END of cycle start+delay-1 (matching the RTL write-back and the
  // lifetime convention birth = start+delay).
  std::vector<std::vector<OpId>> writeback(static_cast<std::size_t>(
      block.time_range));
  for (const Operation& op : g.ops()) {
    const int s = schedule.start(op.id);
    assert(s >= 0);
    issue[static_cast<std::size_t>(s)].push_back(op.id);
    writeback[static_cast<std::size_t>(s + lib.type(op.type).delay - 1)]
        .push_back(op.id);
  }
  // In-flight operand captures: the unit latches operands at issue.
  std::vector<std::int64_t> captured(g.op_count(), 0);

  for (int cycle = 0; cycle < block.time_range; ++cycle) {
    // Reads happen during the cycle, before end-of-cycle register writes
    // (no transparent producer->consumer forwarding within one cycle —
    // the schedule guarantees consumer.start >= producer start+delay, so
    // the producer's write lands at the end of cycle start+delay-1 and is
    // visible from cycle start+delay onward).
    for (OpId op : issue[static_cast<std::size_t>(cycle)]) {
      std::vector<std::int64_t> operands;
      for (OpId p : g.preds(op)) {
        const RegisterId r = registers.reg_of[p.index()];
        const RegState& state = regs[r.index()];
        if (state.owner != p) {
          report.ok = false;
          report.mismatch =
              "op " + std::to_string(op.value()) + " reads register r" +
              std::to_string(r.value()) + " expecting the value of op " +
              std::to_string(p.value()) + " but it holds " +
              (state.owner.valid()
                   ? "op " + std::to_string(state.owner.value())
                   : "nothing") +
              " (live value clobbered)";
          return report;
        }
        operands.push_back(state.value);
      }
      captured[op.index()] =
          EvaluateOpValue(block, lib, operands, op, options.input_seed);
    }
    // End-of-cycle write-back of every op finishing now.
    for (OpId op : writeback[static_cast<std::size_t>(cycle)]) {
      report.executed[op.index()] = captured[op.index()];
      const RegisterId r = registers.reg_of[op.index()];
      regs[r.index()] = RegState{captured[op.index()], op};
    }
  }

  for (const Operation& op : g.ops()) {
    if (report.executed[op.id.index()] != report.reference[op.id.index()]) {
      report.ok = false;
      report.mismatch = "op " + std::to_string(op.id.value()) +
                        " produced " +
                        std::to_string(report.executed[op.id.index()]) +
                        ", reference " +
                        std::to_string(report.reference[op.id.index()]);
      return report;
    }
  }
  // Block outputs must still be observable in their registers at the end
  // of the time range (a later value reusing a sink's register would have
  // clobbered an output the environment reads after completion).
  for (const Operation& op : g.ops()) {
    if (!g.succs(op.id).empty()) continue;
    const RegisterId r = registers.reg_of[op.id.index()];
    const RegState& state = regs[r.index()];
    if (state.owner != op.id) {
      report.ok = false;
      report.mismatch =
          "block output of op " + std::to_string(op.id.value()) +
          " clobbered in register r" + std::to_string(r.value()) +
          " before the end of the block";
      return report;
    }
  }
  report.ok = true;
  return report;
}

}  // namespace mshls
