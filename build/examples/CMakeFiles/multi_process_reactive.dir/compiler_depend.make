# Empty compiler generated dependencies file for multi_process_reactive.
# This may be replaced when dependencies are built.
