#include "modulo/period_config.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/math_util.h"
#include "modulo/period_search.h"

namespace mshls {
namespace {

/// max over blocks of `pid` of W_{b,type} / T_b — the utilization floor one
/// instance pool sees from this process (max over residues of a modulo-max
/// profile is at least the block mean; the process max dominates each
/// block's profile).
double MaxBlockWorkRatio(const SystemModel& model, ProcessId pid,
                         ResourceTypeId type) {
  const ResourceLibrary& lib = model.library();
  double best = 0.0;
  for (BlockId bid : model.process(pid).blocks) {
    const Block& b = model.block(bid);
    if (b.time_range <= 0) continue;
    long work = 0;
    for (const Operation& op : b.graph.ops())
      if (op.type == type) work += lib.type(type).dii;
    best = std::max(best,
                    static_cast<double>(work) /
                        static_cast<double>(b.time_range));
  }
  return best;
}

/// Integer ceiling with an epsilon guard: a ratio that is an integer up to
/// floating-point noise must not round up (the bound would turn unsound the
/// other way — rounding *down* only ever weakens it).
int CeilEps(double x) {
  return static_cast<int>(std::ceil(x - 1e-9));
}

}  // namespace

std::vector<int> HarmonicCandidatePeriods(const SystemModel& model,
                                          ResourceTypeId type) {
  std::int64_t g = 0;
  for (ProcessId pid : model.GlobalUsers(type))
    for (BlockId bid : model.process(pid).blocks)
      g = std::gcd(g, static_cast<std::int64_t>(
                          model.block(bid).time_range));
  if (g == 0) return CandidatePeriods(model, type);
  std::vector<int> out;
  for (std::int64_t d : DivisorsOf(g)) out.push_back(static_cast<int>(d));
  return out;
}

int PoolInstanceLowerBound(const SystemModel& model, ResourceTypeId type) {
  double demand = 0.0;
  for (ProcessId pid : model.GlobalUsers(type))
    demand += MaxBlockWorkRatio(model, pid, type);
  return CeilEps(demand);
}

int AreaLowerBound(const SystemModel& model) {
  const ResourceLibrary& lib = model.library();
  long long total = 0;
  for (const ResourceType& t : lib.types()) {
    const bool global = model.is_global(t.id);
    if (global)
      total += static_cast<long long>(t.area) *
               PoolInstanceLowerBound(model, t.id);
    for (const Process& p : model.processes()) {
      if (!model.ProcessUsesType(p.id, t.id)) continue;
      if (global && model.InGroup(t.id, p.id)) continue;
      total += static_cast<long long>(t.area) *
               CeilEps(MaxBlockWorkRatio(model, p.id, t.id));
    }
  }
  return static_cast<int>(total);
}

}  // namespace mshls
