// Graphviz DOT export for data-flow graphs — debugging and documentation aid.
#pragma once

#include <string>
#include <string_view>

#include "dfg/graph.h"

namespace mshls {

struct DotOptions {
  /// Returns the display label of a resource type (e.g. "+", "*").
  std::function<std::string(ResourceTypeId)> type_label;
  /// Optional schedule annotation: start step per op, -1 for unscheduled.
  std::function<int(OpId)> start_step;
};

/// Renders the graph as a DOT digraph named `name`. Operations are labelled
/// "<name>\n<type>[@step]"; multiplication-like high-area ops get a box.
[[nodiscard]] std::string ToDot(const DataFlowGraph& graph,
                                std::string_view name,
                                const DotOptions& options);

}  // namespace mshls
