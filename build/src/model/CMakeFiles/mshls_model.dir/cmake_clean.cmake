file(REMOVE_RECURSE
  "CMakeFiles/mshls_model.dir/process_merge.cpp.o"
  "CMakeFiles/mshls_model.dir/process_merge.cpp.o.d"
  "CMakeFiles/mshls_model.dir/resource.cpp.o"
  "CMakeFiles/mshls_model.dir/resource.cpp.o.d"
  "CMakeFiles/mshls_model.dir/system_model.cpp.o"
  "CMakeFiles/mshls_model.dir/system_model.cpp.o.d"
  "CMakeFiles/mshls_model.dir/type_merge.cpp.o"
  "CMakeFiles/mshls_model.dir/type_merge.cpp.o.d"
  "libmshls_model.a"
  "libmshls_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mshls_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
