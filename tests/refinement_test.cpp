#include <gtest/gtest.h>

#include "modulo/coupled_scheduler.h"
#include "common/math_util.h"
#include "modulo/refinement.h"
#include "workloads/benchmarks.h"
#include "workloads/paper_system.h"

namespace mshls {
namespace {

class RefinementTest : public ::testing::Test {
 protected:
  SystemModel model_;
  PaperTypes types_ = AddPaperTypes(model_.library());
};

TEST_F(RefinementTest, FixesDeliberatelyBadSchedule) {
  // Two independent adds scheduled on the SAME step need two adders; the
  // refiner must find the one-adder placement.
  DataFlowGraph g;
  g.AddOp(types_.add, "a0");
  g.AddOp(types_.add, "a1");
  ASSERT_TRUE(g.Validate().ok());
  const ProcessId p = model_.AddProcess("p", 4);
  const BlockId b = model_.AddBlock(p, "b", std::move(g), 4);
  ASSERT_TRUE(model_.Validate().ok());
  SystemSchedule bad;
  bad.blocks.resize(1);
  bad.of(b) = BlockSchedule(2);
  bad.of(b).set_start(OpId{0}, 1);
  bad.of(b).set_start(OpId{1}, 1);
  auto refined = RefineSchedule(model_, bad);
  ASSERT_TRUE(refined.ok()) << refined.status().ToString();
  EXPECT_EQ(refined.value().area_before, 2);
  EXPECT_EQ(refined.value().area_after, 1);
  EXPECT_GE(refined.value().moves_accepted, 1);
}

TEST_F(RefinementTest, PreservesPrecedence) {
  const ProcessId p = model_.AddProcess("p", 14);
  const BlockId b = model_.AddBlock(p, "b", BuildDiffeq(types_), 14);
  ASSERT_TRUE(model_.Validate().ok());
  CoupledScheduler scheduler(model_, CoupledParams{});
  auto run = scheduler.Run();
  ASSERT_TRUE(run.ok());
  auto refined = RefineSchedule(model_, run.value().schedule);
  ASSERT_TRUE(refined.ok());
  EXPECT_TRUE(
      ValidateSystemSchedule(model_, refined.value().schedule).ok());
  (void)b;
}

TEST_F(RefinementTest, NeverIncreasesArea) {
  // Over random systems the refined area is <= the heuristic's area.
  Rng rng(4242);
  for (int trial = 0; trial < 5; ++trial) {
    SystemModel model;
    const PaperTypes t = AddPaperTypes(model.library());
    std::vector<ProcessId> procs;
    for (int i = 0; i < 3; ++i) {
      RandomDfgOptions options;
      options.ops = rng.NextInt(5, 12);
      options.layers = 3;
      DataFlowGraph g = BuildRandomDfg(t, rng, options);
      const DelayFn delay = [&](OpId op) {
        return model.library().type(g.op(op).type).delay;
      };
      const int range = static_cast<int>(
          CeilDiv(g.CriticalPathLength(delay) + rng.NextInt(2, 6), 4) * 4);
      const ProcessId p = model.AddProcess("p" + std::to_string(i), range);
      model.AddBlock(p, "b", std::move(g), range);
      procs.push_back(p);
    }
    model.MakeGlobal(t.mult, procs);
    model.SetPeriod(t.mult, 4);
    ASSERT_TRUE(model.Validate().ok());
    CoupledScheduler scheduler(model, CoupledParams{});
    auto run = scheduler.Run();
    ASSERT_TRUE(run.ok());
    auto refined = RefineSchedule(model, run.value().schedule);
    ASSERT_TRUE(refined.ok());
    EXPECT_LE(refined.value().area_after, refined.value().area_before);
    EXPECT_TRUE(CheckAllocationCovers(model, refined.value().schedule,
                                      refined.value().allocation)
                    .ok());
  }
}

TEST_F(RefinementTest, PaperSystemIsAlreadyLocallyOptimal) {
  // The coupled heuristic's 17 equals the paper's result; the hill
  // climber must not find a cheaper neighbour (and must not regress).
  PaperSystem sys = BuildPaperSystem();
  CoupledScheduler scheduler(sys.model, CoupledParams{});
  auto run = scheduler.Run();
  ASSERT_TRUE(run.ok());
  RefineOptions options;
  options.max_rounds = 2;  // keep the test fast
  auto refined = RefineSchedule(sys.model, run.value().schedule, options);
  ASSERT_TRUE(refined.ok());
  EXPECT_LE(refined.value().area_after, 17);
}

TEST_F(RefinementTest, RejectsIncompleteSchedule) {
  DataFlowGraph g;
  g.AddOp(types_.add, "a");
  ASSERT_TRUE(g.Validate().ok());
  const ProcessId p = model_.AddProcess("p", 4);
  const BlockId b = model_.AddBlock(p, "b", std::move(g), 4);
  ASSERT_TRUE(model_.Validate().ok());
  SystemSchedule incomplete;
  incomplete.blocks.resize(1);
  incomplete.of(b) = BlockSchedule(1);  // op unscheduled
  EXPECT_FALSE(RefineSchedule(model_, incomplete).ok());
}

// ---- exact sharing oracle on tiny systems ----

TEST_F(RefinementTest, CoupledHeuristicNearExactSharingOptimum) {
  // Brute force over ALL schedule pairs of two tiny blocks gives the true
  // minimum pool size; the coupled heuristic (plus refinement) must land
  // within one area unit of it.
  Rng rng(99);
  for (int trial = 0; trial < 4; ++trial) {
    SystemModel model;
    const PaperTypes t = AddPaperTypes(model.library());
    std::vector<ProcessId> procs;
    std::vector<BlockId> blocks;
    const int range = 4;
    for (int i = 0; i < 2; ++i) {
      DataFlowGraph g;
      const int n = rng.NextInt(2, 3);
      for (int k = 0; k < n; ++k)
        g.AddOp(t.add, "a" + std::to_string(k));
      ASSERT_TRUE(g.Validate().ok());
      const ProcessId p = model.AddProcess("p" + std::to_string(i), range);
      blocks.push_back(model.AddBlock(p, "b", std::move(g), range));
      procs.push_back(p);
    }
    model.MakeGlobal(t.add, procs);
    model.SetPeriod(t.add, 2);
    ASSERT_TRUE(model.Validate().ok());

    // Enumerate every (independent-op) schedule of both blocks.
    auto enumerate = [&](BlockId bid) {
      const std::size_t ops = model.block(bid).graph.op_count();
      std::vector<BlockSchedule> all;
      std::vector<int> starts(ops, 0);
      for (;;) {
        BlockSchedule s(ops);
        for (std::size_t k = 0; k < ops; ++k)
          s.set_start(OpId{static_cast<int>(k)}, starts[k]);
        all.push_back(s);
        std::size_t k = 0;
        for (; k < ops; ++k) {
          if (++starts[k] < range) break;
          starts[k] = 0;
        }
        if (k == ops) break;
      }
      return all;
    };
    const auto all0 = enumerate(blocks[0]);
    const auto all1 = enumerate(blocks[1]);
    int best = 1 << 20;
    for (const BlockSchedule& s0 : all0) {
      for (const BlockSchedule& s1 : all1) {
        SystemSchedule sys_sched;
        sys_sched.blocks.resize(2);
        sys_sched.of(blocks[0]) = s0;
        sys_sched.of(blocks[1]) = s1;
        best = std::min(
            best,
            ComputeAllocation(model, sys_sched).TotalArea(model.library()));
      }
    }

    CoupledScheduler scheduler(model, CoupledParams{});
    auto run = scheduler.Run();
    ASSERT_TRUE(run.ok());
    auto refined = RefineSchedule(model, run.value().schedule);
    ASSERT_TRUE(refined.ok());
    EXPECT_LE(refined.value().area_after, best + 1)
        << "trial " << trial << ": exact sharing optimum " << best;
  }
}

}  // namespace
}  // namespace mshls
