file(REMOVE_RECURSE
  "CMakeFiles/unbound_loop.dir/unbound_loop.cpp.o"
  "CMakeFiles/unbound_loop.dir/unbound_loop.cpp.o.d"
  "unbound_loop"
  "unbound_loop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unbound_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
