
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/benchmarks.cpp" "src/workloads/CMakeFiles/mshls_workloads.dir/benchmarks.cpp.o" "gcc" "src/workloads/CMakeFiles/mshls_workloads.dir/benchmarks.cpp.o.d"
  "/root/repo/src/workloads/paper_system.cpp" "src/workloads/CMakeFiles/mshls_workloads.dir/paper_system.cpp.o" "gcc" "src/workloads/CMakeFiles/mshls_workloads.dir/paper_system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mshls_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dfg/CMakeFiles/mshls_dfg.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/mshls_model.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
