#include "engine/degradation.h"

namespace mshls {

const char* DegradationRungName(DegradationRung rung) {
  switch (rung) {
    case DegradationRung::kAsRequested: return "as-requested";
    case DegradationRung::kRelaxPeriods: return "relax-periods";
    case DegradationRung::kDemoteGlobals: return "demote-globals";
    case DegradationRung::kLocalBaseline: return "local-baseline";
  }
  return "unknown";
}

std::vector<DegradationRung> DefaultLadder() {
  return {DegradationRung::kAsRequested, DegradationRung::kRelaxPeriods,
          DegradationRung::kDemoteGlobals, DegradationRung::kLocalBaseline};
}

bool IsDegradable(StatusCode code) {
  return code == StatusCode::kInfeasible ||
         code == StatusCode::kDeadlineExceeded ||
         code == StatusCode::kInternal;
}

}  // namespace mshls
