// Deterministic metrics registry: named counters, gauges and fixed
// log-scale-bucket histograms, shared process-wide and exported in sorted
// name order so output is reproducible.
//
// Determinism contract: every metric is registered with a kind.
//  * kStable metrics carry semantic totals (cache hits, candidates
//    pruned, iterations, degradation rungs) that are invariant under the
//    worker count — the parallel fan-outs compute the same multisets and
//    integer sums are associative — so a stable-only export is bitwise
//    identical at --jobs 1/2/8.
//  * kTiming metrics (queue depth, wait/latency histograms) depend on the
//    machine and the interleaving; they are excluded from stable exports
//    and surface through `mshlsc --stats` and wall-clock traces instead.
//
// Recording is thread-safe (relaxed atomics) and gated on obs::Enabled();
// handle lookup takes a mutex, so call sites cache the reference
// (`static obs::Counter& c = ...`). Values are owned by the registry and
// survive Reset() (which zeroes in place), so cached handles never dangle.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "obs/obs.h"

namespace mshls::obs {

enum class MetricKind { kStable, kTiming };

[[nodiscard]] const char* MetricKindName(MetricKind kind);

class Counter {
 public:
  void Add(long long delta = 1) {
    if (Enabled()) value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] long long value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  void Reset() { value_.store(0, std::memory_order_relaxed); }
  std::atomic<long long> value_{0};
};

class Gauge {
 public:
  void Set(long long v) {
    if (Enabled()) value_.store(v, std::memory_order_relaxed);
  }
  /// Monotone high-water mark (e.g. peak queue depth).
  void UpdateMax(long long v) {
    if (!Enabled()) return;
    long long cur = value_.load(std::memory_order_relaxed);
    while (cur < v &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] long long value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  void Reset() { value_.store(0, std::memory_order_relaxed); }
  std::atomic<long long> value_{0};
};

/// Histogram over non-negative integers with fixed log2 buckets: bucket i
/// holds values whose bit width is i (i.e. [2^(i-1), 2^i)); bucket 0 holds
/// v <= 0 and the last bucket saturates. Fixed buckets keep the export
/// layout independent of the data, so two runs always line up row by row.
class Histogram {
 public:
  static constexpr int kBuckets = 40;

  void Observe(long long v);

  [[nodiscard]] long long count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] long long sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] long long bucket(int i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }
  /// Exclusive upper edge of bucket i (2^i; bucket 0 edge is 1).
  [[nodiscard]] static long long BucketUpperEdge(int i);
  [[nodiscard]] static int BucketIndex(long long v);

 private:
  friend class MetricsRegistry;
  void Reset();
  std::atomic<long long> counts_[kBuckets]{};
  std::atomic<long long> count_{0};
  std::atomic<long long> sum_{0};
};

class MetricsRegistry {
 public:
  /// The process-wide registry (never destroyed, so metric handles cached
  /// in static storage stay valid through shutdown).
  [[nodiscard]] static MetricsRegistry& Global();

  /// Gets or creates; the kind of the first registration wins.
  [[nodiscard]] Counter& GetCounter(const std::string& name, MetricKind kind);
  [[nodiscard]] Gauge& GetGauge(const std::string& name, MetricKind kind);
  [[nodiscard]] Histogram& GetHistogram(const std::string& name,
                                        MetricKind kind);

  /// Zeroes every value in place; registrations (and cached handles)
  /// survive.
  void Reset();

  /// Human text, one metric per line, sorted by name.
  [[nodiscard]] std::string RenderText(bool include_timing = true) const;

  /// {"counters":[{"kind":..,"name":..,"value":..}],"gauges":[...],
  ///  "histograms":[{"buckets":[{"count":..,"le":..}],"count":..,...}]}
  /// Sorted by name; include_timing=false keeps only kStable metrics,
  /// which makes the output bitwise identical at any worker count.
  [[nodiscard]] std::string ToJson(bool include_timing = true) const;

 private:
  template <typename M>
  using Map = std::map<std::string, std::pair<MetricKind, std::unique_ptr<M>>>;

  mutable std::mutex mutex_;
  Map<Counter> counters_;
  Map<Gauge> gauges_;
  Map<Histogram> histograms_;
};

}  // namespace mshls::obs
