file(REMOVE_RECURSE
  "libmshls_bind.a"
)
