// Exact (branch-and-bound) time-constrained scheduler for single blocks.
//
// Finds a schedule of provably minimal weighted area (sum over types of
// peak occupancy * area) within the block's time range. Exponential in the
// worst case — intended as an optimality oracle for the heuristic
// schedulers on small/medium graphs (bench A6 measures the FDS/IFDS gap),
// not as a production path. The search assigns operations in topological
// order, earliest step first, and prunes on (a) the weighted area of the
// partial solution's occupancy peaks (a valid lower bound: peaks never
// shrink) and (b) a per-type work bound ceil(total work / time range).
#pragma once

#include <cstdint>

#include "common/status.h"
#include "model/system_model.h"
#include "sched/schedule.h"

namespace mshls {

struct ExactOptions {
  /// Abort after this many search nodes; the best incumbent so far is
  /// returned with proven_optimal = false. 0 = unlimited.
  std::int64_t max_nodes = 2'000'000;
};

struct ExactResult {
  BlockSchedule schedule;
  std::vector<int> usage;  // per type id
  int area = 0;
  std::int64_t nodes = 0;
  bool proven_optimal = false;
};

/// Requires a validated graph and a feasible time range (kInfeasible
/// otherwise, like the heuristics).
[[nodiscard]] StatusOr<ExactResult> ScheduleBlockExact(
    const Block& block, const ResourceLibrary& lib,
    const ExactOptions& options = {});

}  // namespace mshls
