// The mshlsd request/response protocol — what travels inside the wire
// frames (serve/wire.h).
//
// Request payload (all integers little-endian):
//   u32 magic "MSRQ"   u32 version (=kProtocolVersion)
//   u8  mode (JobMode) u8 flags    u16 reserved (0)
//   u32 timeout_ms     u32 source_len    source bytes (.hls text)
//   u32 delta_len      delta bytes       (v2+; absent in v1 frames)
//
// Version history: v1 had no delta field; v1 frames are still accepted
// (DecodeRequest) so old clients keep working against a v2 daemon. A
// non-empty delta turns the job into an online *repair* of the source
// system (engine/job.h RepairRequest); the daemon never solves the base
// from scratch under a repair label — an unknown/evicted base schedule is
// rejected with ServeStatus::kUnknownBase.
//
// Response payload:
//   u32 magic "MSRS"   u32 version
//   u8  status (ServeStatus)  u8 rung  u16 reserved (0)
//   u32 evaluated  u32 cache_hits  u32 store_hits
//   u32 payload_len    payload bytes
//
// For repair results the rung byte carries the RepairRung of the winning
// repair attempt instead of a DegradationRung (the payload's "rung" field
// is authoritative and spells out which ladder it came from).
//
// Cache accounting lives in the *header*, never in the JSON payload: hit
// counts depend on what a given server instance has already seen, while
// the payload must be byte-identical for one job whether it was solved
// cold, served from the memory tier, or warm-started from disk.
//
// The OK payload is the deterministic JSON job report (schedule +
// allocation via report/json_export plus stable stats); it deliberately
// carries no wall-clock fields, so a warm (cache-served) response is
// byte-identical to the cold solve of the same job — the contract the
// serve tests and the warm-restart acceptance check pin. Error payloads
// carry the human-readable message.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "engine/job.h"

namespace mshls::serve {

inline constexpr std::uint32_t kProtocolVersion = 2;
/// Oldest request version DecodeRequest still accepts (v1 = no delta).
inline constexpr std::uint32_t kMinRequestVersion = 1;
inline constexpr std::uint32_t kRequestMagic = 0x5152534du;   // "MSRQ"
inline constexpr std::uint32_t kResponseMagic = 0x5352534du;  // "MSRS"

/// Request flags.
inline constexpr std::uint8_t kFlagSkipCertify = 1u << 0;
inline constexpr std::uint8_t kFlagLocalBaselineLadderOff = 1u << 1;

struct ServeRequest {
  JobMode mode = JobMode::kCoupled;
  std::uint8_t flags = 0;
  /// Per-job wall-clock budget; 0 = server default.
  std::uint32_t timeout_ms = 0;
  std::string source;  // .hls text
  /// Non-empty => repair request: sidecar delta text (modulo/repair.h
  /// ParseDelta) applied to the base system in `source`. Requires
  /// JobMode::kCoupled; the base schedule must still be cached server-side.
  std::string delta;
};

/// Typed outcome of one request. Everything except kOk is an error, but
/// the admission-control kinds (kOverloaded/kTooLarge/kMalformedFrame/
/// kShuttingDown) are *rejections*: the job never entered the engine and
/// retrying later (or smaller) can succeed.
enum class ServeStatus : std::uint8_t {
  kOk = 0,
  kJobFailed = 1,       // engine ran and reported a non-OK status
  kOverloaded = 2,      // bounded accept queue full — retry later
  kTooLarge = 3,        // frame above the server's request cap
  kMalformedFrame = 4,  // unparseable frame or protocol payload
  kShuttingDown = 5,    // server is draining — connection will close
  /// Repair rejection: the base schedule is in no cache tier (never
  /// solved here, or evicted). The engine never ran; resubmitting the
  /// base as a full solve and then repeating the repair will succeed, so
  /// this counts as a rejection like the admission kinds above.
  kUnknownBase = 6,
};

[[nodiscard]] const char* ServeStatusName(ServeStatus status);

/// True for the admission kinds that never reached the engine.
[[nodiscard]] bool IsRejection(ServeStatus status);

struct ServeResponse {
  ServeStatus status = ServeStatus::kMalformedFrame;
  /// DegradationRung of the served result (meaningful when kOk).
  std::uint8_t rung = 0;
  /// Stable work/cache accounting of the job (header-only; see above).
  std::uint32_t evaluated = 0;
  std::uint32_t cache_hits = 0;  // served from either cache tier
  std::uint32_t store_hits = 0;  // of those, from the persistent tier
  /// kOk: deterministic JSON report; otherwise the error message.
  std::string payload;

  [[nodiscard]] bool cache_hit() const { return cache_hits > 0; }
  [[nodiscard]] bool store_hit() const { return store_hits > 0; }
};

[[nodiscard]] std::string EncodeRequest(const ServeRequest& request);
[[nodiscard]] StatusOr<ServeRequest> DecodeRequest(std::string_view frame);

[[nodiscard]] std::string EncodeResponse(const ServeResponse& response);
[[nodiscard]] StatusOr<ServeResponse> DecodeResponse(std::string_view frame);

/// Renders the deterministic OK payload for a finished job: the existing
/// --json schedule/allocation export wrapped with the job's stable stats
/// (rung, area, evaluated/cache_hits/store_hits — never wall time).
/// `result.model` must be set (jobs are run with keep_model).
[[nodiscard]] std::string RenderJobPayload(const JobResult& result);

}  // namespace mshls::serve
