
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_period_sweep.cpp" "bench/CMakeFiles/bench_period_sweep.dir/bench_period_sweep.cpp.o" "gcc" "bench/CMakeFiles/bench_period_sweep.dir/bench_period_sweep.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mshls_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dfg/CMakeFiles/mshls_dfg.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/mshls_model.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/mshls_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/fds/CMakeFiles/mshls_fds.dir/DependInfo.cmake"
  "/root/repo/build/src/modulo/CMakeFiles/mshls_modulo.dir/DependInfo.cmake"
  "/root/repo/build/src/bind/CMakeFiles/mshls_bind.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mshls_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/mshls_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/mshls_report.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
