// Shared result cache for coupled-scheduler runs, used by both search
// drivers (period search, assignment search) and the batch job service.
//
// The key covers everything a CoupledScheduler::Run() depends on: the
// model fingerprint (library, blocks, full S1/S2 state — see
// engine/fingerprint.h) combined with the force parameters. An observer
// installed in CoupledParams does not affect the schedule and is excluded.
#pragma once

#include <cstdint>

#include "engine/result_cache.h"
#include "modulo/coupled_scheduler.h"

namespace mshls {

using ScheduleCache = ResultCache<CoupledResult>;

/// Cache key for scheduling `model` with `params`.
[[nodiscard]] std::uint64_t ScheduleCacheKey(const SystemModel& model,
                                             const CoupledParams& params);

/// Schedules through the cache: on a hit returns the stored result, on a
/// miss validates + runs the coupled scheduler and stores the result.
/// `cache` may be null (always schedules). `cache_hit` (optional) reports
/// whether the result came from the cache.
[[nodiscard]] StatusOr<CoupledResult> ScheduleWithCache(
    SystemModel& model, const CoupledParams& params, ScheduleCache* cache,
    bool* cache_hit = nullptr);

}  // namespace mshls
