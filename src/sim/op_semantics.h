// Integer value semantics of operations, shared by the value executor and
// the datapath simulator: add (+), sub (-), mult/mul (*), div (/ with
// x/0 = 0), cmp (<), anything else falls back to +. Operand lists fold
// left; missing operands (block inputs) are synthesized deterministically
// from a seed so reference and execution always agree on the stimulus.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "model/system_model.h"

namespace mshls {

[[nodiscard]] std::int64_t ApplyOpSemantics(const std::string& op_name,
                                            std::int64_t a, std::int64_t b);

/// Deterministic synthesized input for operand slot `k` of `op`.
[[nodiscard]] std::int64_t SynthesizedInput(std::uint64_t seed, OpId op,
                                            std::size_t k);

/// Value of `op` given the values of its predecessors (in pred order).
/// Ops with fewer than two predecessors consume synthesized inputs for
/// the missing slots.
[[nodiscard]] std::int64_t EvaluateOpValue(
    const Block& block, const ResourceLibrary& lib,
    std::span<const std::int64_t> operand_values, OpId op,
    std::uint64_t seed);

}  // namespace mshls
