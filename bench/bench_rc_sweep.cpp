// Experiment A5 — the resource-constrained companion formulation (paper
// ref. [8], §3: "the method ... can also be applied to a resource
// constrained algorithm"). Sweeps the shared multiplier pool size on the
// paper system and reports the schedule length of every process: the dual
// curve of the A1 period sweep (area fixed -> latency moves).
#include <cstdio>

#include "common/text_table.h"
#include "modulo/resource_constrained.h"
#include "report/bench_json.h"
#include "workloads/paper_system.h"

using namespace mshls;

int main(int argc, char** argv) {
  const std::string json_file = TakeJsonFlag(argc, argv);
  BenchJson json("A5", "rc_sweep");
  std::printf("== A5: resource-constrained modulo scheduling "
              "(pool size vs latency) ==\n\n");
  PaperSystem sys = BuildPaperSystem();

  TextTable table;
  table.SetHeader({"adders", "subs", "mults", "ewf1", "ewf2", "ewf3",
                   "deq1", "deq2", "sum"});
  for (std::size_t c = 0; c < 9; ++c) table.AlignRight(c);

  struct Pools {
    int add, sub, mult;
  };
  const Pools sweeps[] = {
      {6, 2, 5},  // the paper's local totals as one big pool
      {4, 1, 3},  // the paper's global result
      {3, 1, 2},  // tighter than the paper
      {2, 1, 1},  // severe sharing
      {1, 1, 1},  // minimum hardware
  };
  for (const Pools& pools : sweeps) {
    RcModuloOptions options;
    options.pool_limits.assign(sys.model.library().size(), 0);
    options.pool_limits[sys.types.add.index()] = pools.add;
    options.pool_limits[sys.types.sub.index()] = pools.sub;
    options.pool_limits[sys.types.mult.index()] = pools.mult;
    auto result = ScheduleResourceConstrainedModulo(sys.model, options);
    std::vector<std::string> row = {std::to_string(pools.add),
                                    std::to_string(pools.sub),
                                    std::to_string(pools.mult)};
    auto& jrow = json.AddRow()
                     .I("adders", pools.add)
                     .I("subtracters", pools.sub)
                     .I("multipliers", pools.mult)
                     .B("feasible", result.ok());
    if (!result.ok()) {
      row.push_back("infeasible: " + result.status().message());
      table.AddRow(row);
      continue;
    }
    int sum = 0;
    for (const Block& b : sys.model.blocks()) {
      const int len = result.value().lengths[b.id.index()];
      row.push_back(std::to_string(len));
      sum += len;
    }
    jrow.I("length_sum", sum);
    row.push_back(std::to_string(sum));
    table.AddRow(row);
  }
  std::printf("%s", table.Render().c_str());
  std::printf("\nexpected shape: schedule lengths grow monotonically as the "
              "pools shrink; the paper's global allocation (4/1/3) keeps "
              "every process near its time-constrained deadline "
              "(30/30/25/15/15).\n");
  if (!json_file.empty() && !json.WriteFile(json_file)) return 1;
  return 0;
}
