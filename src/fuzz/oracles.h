// Differential and metamorphic oracles evaluated per fuzz case.
//
// A generated model carries an expected verdict (its CaseClass); the oracle
// runner drives the full pipeline — validate, coupled-schedule, allocate,
// bind — and judges the artifacts with checks that are *independent* of the
// code under test:
//  (a) certification: every feasible result passes CertifySchedule; a
//      grid-hostile model must instead be flagged kGridMisalignment and an
//      infeasible one rejected with a typed kInfeasible (negative oracles);
//  (b) exact bound: on small local-only systems the heuristic area must not
//      beat the branch-and-bound optimum (differential vs. sched/exact);
//  (c) metamorphic invariance: op renaming and a uniform phase rotation by
//      a shared offset must reproduce the schedule bit-identically at equal
//      area; process reordering must preserve feasibility and certify
//      cleanly (IFDS tie-breaking is enumeration-order sensitive, so only
//      the verdict is compared there);
//  (d) cache/parallel replay: a warm schedule_cache replays bit-identically
//      to cold, and SearchPeriods agrees bit-for-bit across --jobs widths.
//
// With an injection plan the runner additionally corrupts the (pristine,
// already certified) artifacts and demands the certifier catch the expected
// violation kind — the end-to-end "reintroduced scheduler bug" drill.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "fuzz/generator.h"
#include "model/system_model.h"
#include "verify/fault_injection.h"

namespace mshls {

enum class OracleKind {
  kPipeline,     // validate/schedule/allocate/bind verdict vs. expectation
  kCertify,      // oracle (a) and injected-fault detection
  kExactBound,   // oracle (b)
  kMetamorphic,  // oracle (c)
  kCacheReplay,  // oracle (d)
};

[[nodiscard]] const char* OracleKindName(OracleKind kind);

struct OracleOptions {
  /// Oracle (b) eligibility: total ops cap and search-node budget.
  int exact_max_ops = 12;
  std::int64_t exact_max_nodes = 300'000;
  /// Oracle (d): evaluation cap per period search and the widths compared.
  int search_max_evaluations = 6;
  std::vector<int> replay_jobs = {1, 2, 8};
  /// Family switches (the shrinker narrows to one family for speed).
  bool run_certify = true;
  bool run_exact = true;
  bool run_metamorphic = true;
  bool run_replay = true;
};

struct OracleFailure {
  OracleKind kind;
  std::string detail;
};

struct CaseOutcome {
  std::uint64_t seed = 0;
  CaseClass cls = CaseClass::kClean;
  int ops = 0;
  bool valid = false;     // Validate() accepted the model
  bool feasible = false;  // coupled scheduler produced a result
  StatusCode reject_code = StatusCode::kOk;  // when !valid or !feasible
  int area = 0;
  bool exact_checked = false;
  bool replay_checked = false;
  bool inject_applicable = false;
  bool inject_caught = false;
  std::vector<OracleFailure> failures;

  [[nodiscard]] bool ok() const { return failures.empty(); }
  /// One deterministic line per case (no timings — the fuzz log is part of
  /// the determinism contract).
  [[nodiscard]] std::string LogLine(int index) const;
};

/// Runs every enabled oracle against one generated case. `model_in` is
/// copied — callers keep a pristine model for shrinking. With `inject`
/// non-null only the pipeline + certification oracles run, followed by the
/// corruption/detection drill (inject_applicable / inject_caught).
[[nodiscard]] CaseOutcome RunCaseOracles(const SystemModel& model_in,
                                         std::uint64_t seed, CaseClass cls,
                                         const OracleOptions& options = {},
                                         const FaultPlan* inject = nullptr);

}  // namespace mshls
