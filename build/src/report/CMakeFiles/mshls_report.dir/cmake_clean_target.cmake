file(REMOVE_RECURSE
  "libmshls_report.a"
)
