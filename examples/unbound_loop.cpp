// The scenario traditional methods cannot handle (paper §1/§2): a loop
// with UNBOUND iteration count running concurrently with another process,
// both sharing expensive hardware.
//
// Process merging needs a fixed temporal relation; Interface Matching needs
// blocking communication pairs. Here the DCT loop body is its own block
// (paper condition C2: a loop body is a separate block) activated
// back-to-back for an iteration count only known at runtime, while a
// control process runs independently. The modulo authorization makes the
// sharing safe for ANY iteration count — we demonstrate with runs of 1,
// 7 and 200 iterations.
//
//   $ ./examples/unbound_loop
#include <cstdio>

#include "modulo/baseline.h"
#include "modulo/coupled_scheduler.h"
#include "report/experiment_report.h"
#include "sim/simulator.h"
#include "workloads/benchmarks.h"

using namespace mshls;

int main() {
  SystemModel model;
  const PaperTypes types = AddPaperTypes(model.library());

  // Loop process: the body is one block of 8 steps; iterations run
  // back-to-back (start times 0, 8, 16, ... all on the period grid).
  DataFlowGraph body;
  {
    const OpId m1 = body.AddOp(types.mult, "m1");
    const OpId m2 = body.AddOp(types.mult, "m2");
    const OpId a1 = body.AddOp(types.add, "a1");
    const OpId a2 = body.AddOp(types.add, "a2");
    body.AddEdge(m1, a1);
    body.AddEdge(m2, a1);
    body.AddEdge(a1, a2);
    if (!body.Validate().ok()) return 1;
  }
  const ProcessId loop_proc = model.AddProcess("dct_loop", 8);
  const BlockId loop_body =
      model.AddBlock(loop_proc, "body", std::move(body), 8);

  // Independent control process with its own deadline.
  DataFlowGraph ctrl;
  {
    const OpId m = ctrl.AddOp(types.mult, "gain");
    const OpId a = ctrl.AddOp(types.add, "bias");
    ctrl.AddEdge(m, a);
    if (!ctrl.Validate().ok()) return 1;
  }
  const ProcessId ctrl_proc = model.AddProcess("control", 8);
  const BlockId ctrl_block = model.AddBlock(ctrl_proc, "law",
                                            std::move(ctrl), 8);

  // One multiplier pool for both, period 4.
  model.MakeGlobal(types.mult, {loop_proc, ctrl_proc});
  model.SetPeriod(types.mult, 4);
  if (Status s = model.Validate(); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  CoupledScheduler scheduler(model, CoupledParams{});
  auto result_or = scheduler.Run();
  if (!result_or.ok()) return 1;
  const CoupledResult result = std::move(result_or).value();
  std::printf("%s\n", RenderTable1(model, result).c_str());
  std::printf("shared multipliers: %d (traditional scheduling would build "
              "one per process)\n\n",
              result.allocation.FindGlobal(types.mult)->instances);

  // The loop runs for an iteration count unknown at synthesis time; the
  // control process fires at arbitrary grid-aligned times in parallel.
  SystemSimulator sim(model, result.schedule, result.allocation);
  for (int iterations : {1, 7, 200}) {
    std::vector<Activation> trace;
    for (int i = 0; i < iterations; ++i)
      trace.push_back({loop_body, static_cast<std::int64_t>(8) * i});
    // Control activations sprinkled across the loop's lifetime.
    for (int i = 0; i < iterations; i += 3)
      trace.push_back({ctrl_block, static_cast<std::int64_t>(8) * i + 4});
    const SimReport report = sim.Run(trace);
    std::printf("loop x%-4d + %zu control activations over %lld cycles: %s\n",
                iterations, trace.size() - static_cast<std::size_t>(iterations),
                static_cast<long long>(report.horizon),
                report.ok ? "conflict-free" : "CONFLICT (bug!)");
    if (!report.ok) return 1;
  }
  std::printf("\nthe access control is static (a free-running modulo-4 "
              "counter) — no arbiter, no handshake, any iteration count.\n");
  return 0;
}
