# Empty compiler generated dependencies file for shared_bus.
# This may be replaced when dependencies are built.
