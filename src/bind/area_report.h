// Area accounting beyond bare functional units.
//
// The paper reports FU area only and explicitly leaves open "whether or not
// the area saving due to the global adders and subtracters is compensated
// by additional multiplexors and wires" (§7). This report answers that
// question for our implementation: it adds register and multiplexer cost
// models on top of the FU area so the trade-off can be quantified
// (bench_table1 prints both).
#pragma once

#include "bind/binding.h"
#include "bind/registers.h"

namespace mshls {

struct AreaCostModel {
  /// Area of one storage register (paper unit: adder = 1).
  double register_area = 0.25;
  /// Area of one 2:1 multiplexer slice; an n-input mux costs (n-1) slices.
  double mux2_area = 0.125;
};

struct AreaBreakdown {
  int fu_area = 0;              // the paper's metric
  int register_count = 0;
  double register_area = 0;
  int mux2_count = 0;           // total 2:1 slices over all instance inputs
  double mux_area = 0;
  double total_area = 0;        // fu + registers + muxes
};

/// Computes the breakdown for a bound system. Mux model: an instance fed by
/// k distinct operations needs a (k)-input mux per operand port (2 ports
/// assumed), i.e. 2*(k-1) mux2 slices.
[[nodiscard]] AreaBreakdown ComputeAreaBreakdown(
    const SystemModel& model, const SystemSchedule& schedule,
    const Allocation& allocation, const SystemBinding& binding,
    const AreaCostModel& cost = {});

}  // namespace mshls
