# Empty compiler generated dependencies file for mshls_sim.
# This may be replaced when dependencies are built.
