// Online schedule repair (ROADMAP O4): survive live workload perturbations
// without resolving from scratch.
//
// A running system holds a *certified* schedule. When the workload changes
// — a process is added or removed, an op latency is retimed, a period or
// deadline moves, a shared resource group is resized — RepairSchedule
// re-schedules only the perturbed slice: every process the delta cannot
// have affected keeps its start steps (and therefore its residues) pinned
// as hard constraints (CoupledParams::pinned_starts), and the coupled IFDS
// schedules the freed processes around them. Because the pinned starts are
// exactly the old certified schedule and pins participate in the schedule
// cache key, a repeated repair of the same (base, delta) pair warm-starts
// from the two-tier schedule cache like any other job.
//
// Repairs walk their own degradation ladder, strictly from least to most
// disruptive:
//   kInPlace      — pin everything the delta did not touch;
//   kWidenScope   — additionally free the transitive global-sharing
//                   neighborhood of the perturbed processes (a pinned
//                   neighbor may be hogging exactly the residues the
//                   perturbed slice now needs);
//   kRelaxPeriods — drop the pins and re-run S2 (period search) on the
//                   post-delta model;
//   kFullResolve  — a plain fresh solve of the post-delta model.
// Every rung is gated by the independent certifier with binding checks —
// a repaired schedule is never weaker-checked than a fresh one.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "model/model_spec.h"
#include "model/system_model.h"
#include "modulo/coupled_scheduler.h"
#include "modulo/schedule_cache.h"
#include "verify/certifier.h"

namespace mshls {

enum class DeltaKind {
  kAddProcess,     // a new process joins the running system
  kRemoveProcess,  // a process leaves (shares shed its membership)
  kRetimeType,     // a resource type's delay/dii changed (re-timed IP core)
  kSetPeriod,      // lambda_g of a shared type changes (S2 perturbation)
  kSetDeadline,    // a process deadline (and optionally time range) moves
  kResizeGroup,    // the sharing group of a global type is re-drawn
};

[[nodiscard]] const char* DeltaKindName(DeltaKind kind);

/// One perturbation. Processes and resource types are referenced by NAME —
/// ids shift when the post-delta model is rebuilt, names are stable.
struct DeltaOp {
  DeltaKind kind = DeltaKind::kRemoveProcess;
  /// Target process (kRemoveProcess / kSetDeadline).
  std::string process;
  /// Target resource type (kRetimeType / kSetPeriod / kResizeGroup).
  std::string type;
  /// kRetimeType: new delay / dii (-1 keeps the current value).
  int delay = -1;
  int dii = -1;
  /// kSetPeriod: new lambda_g (>= 1).
  int period = 0;
  /// kSetDeadline: new deadline; time_range > 0 additionally re-ranges
  /// every block of the process (-1 keeps block ranges untouched).
  int deadline = 0;
  int time_range = -1;
  /// kResizeGroup: the new member list; empty demotes the type to local.
  std::vector<std::string> group;
  /// kAddProcess: the joining process. Op type indices refer to the BASE
  /// model's library order (== ExtractSpec(base).types order).
  SpecProcess added;
};

struct ModelDelta {
  std::vector<DeltaOp> ops;

  [[nodiscard]] bool empty() const { return ops.empty(); }
  /// "retime mult, remove process p3" — for logs and typed rejections.
  [[nodiscard]] std::string Summary() const;
};

/// Stable 64-bit fingerprint of the delta content. Combined with the base
/// model fingerprint it keys repair jobs across cache tiers.
[[nodiscard]] std::uint64_t DeltaFingerprint(const ModelDelta& delta);

/// Applies `delta` to `base` and returns the rebuilt, Validate()d
/// post-delta model. Unknown names, a share emptied of processes by
/// removals, or a post-delta model that fails validation all come back as
/// typed statuses (kNotFound / kInvalidArgument / kInfeasible).
[[nodiscard]] StatusOr<SystemModel> ApplyDelta(const SystemModel& base,
                                               const ModelDelta& delta);

/// Names of the post-delta processes whose base schedule can no longer be
/// trusted under `delta` (sorted, unique): the slice a repair re-schedules.
[[nodiscard]] std::vector<std::string> PerturbedProcesses(
    const SystemModel& base, const ModelDelta& delta);

/// Parses the sidecar delta format (one directive per line, `#` comments,
/// `;` terminators; names resolved against `base`):
///   remove process <name>;
///   add process <name> [deadline N] { block <name> time N { ... } }
///   retime <type> delay <d> [dii <k>];
///   period <type> <lambda>;
///   deadline <process> <d> [time <t>];
///   group <type> [<p1>, <p2>, ...];     # empty list -> local
/// The add-process body is full .hls process syntax, compiled against the
/// base model's resource library.
[[nodiscard]] StatusOr<ModelDelta> ParseDelta(std::string_view text,
                                              const SystemModel& base);

/// Renders `delta` back into the sidecar format (round-trips through
/// ParseDelta against the same base). Used by the fuzz shrinker to persist
/// perturb-then-repair repros as a .hls + delta pair.
[[nodiscard]] std::string RenderDelta(const ModelDelta& delta,
                                      const SystemModel& base);

enum class RepairRung {
  kInPlace = 0,
  kWidenScope,
  kRelaxPeriods,
  kFullResolve,
};

[[nodiscard]] const char* RepairRungName(RepairRung rung);

/// The full repair ladder in documented order.
[[nodiscard]] std::vector<RepairRung> DefaultRepairLadder();

/// One tried repair rung and how it ended.
struct RepairAttempt {
  RepairRung rung = RepairRung::kInPlace;
  Status status;
};

struct RepairOptions {
  /// Scheduling parameters for every rung (pinned_starts is owned by the
  /// repair engine and overwritten per rung).
  CoupledParams params;
  /// Rungs tried in order; {kInPlace} disables fallback entirely.
  std::vector<RepairRung> ladder = DefaultRepairLadder();
  /// Optional shared cache tiers: each rung's solve goes through
  /// ScheduleWithCache, so repeated repairs warm-start.
  ScheduleCache* cache = nullptr;
  ScheduleStore* store = nullptr;
  /// Worker threads for the kRelaxPeriods period-search fan-out.
  int jobs = 1;
  CertifierOptions certifier;
};

struct RepairResult {
  /// The post-delta model the winning attempt scheduled (period choices of
  /// a kRelaxPeriods win are reflected here). Shared: models are heavy and
  /// results are copied around by job machinery.
  std::shared_ptr<const SystemModel> model;
  CoupledResult result;
  /// Certificate of the winning attempt — always clean (a dirty
  /// certificate fails the rung instead).
  CertificateReport certificate;
  RepairRung rung = RepairRung::kInPlace;
  std::vector<RepairAttempt> attempts;
  /// Pin accounting of the winning rung (both 0 for kRelaxPeriods /
  /// kFullResolve, which schedule unpinned).
  int pinned_ops = 0;
  int freed_ops = 0;
  /// Cache accounting across all attempts.
  long evaluated = 0;
  long cache_hits = 0;
  long store_hits = 0;
};

/// Repairs `old_certified` (the base model's certified schedule) under
/// `delta`. Walks the repair ladder; the first rung whose schedule passes
/// binding + certification wins. Statuses: input problems (bad delta,
/// unknown names) surface as-is; an exhausted ladder returns the last
/// rung's failure.
[[nodiscard]] StatusOr<RepairResult> RepairSchedule(
    const SystemModel& base, const CoupledResult& old_certified,
    const ModelDelta& delta, const RepairOptions& options = {});

}  // namespace mshls
