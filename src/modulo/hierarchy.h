// Hierarchical coupled scheduling (DESIGN.md row 30, ROADMAP O2): break
// the instance-size ceiling by sharding the coupled IFDS inner loop across
// clusters of the process sharing graph.
//
// The coupled scheduler's per-iteration sweep is O(candidates x residues)
// over the WHOLE system; past a few dozen processes the quadratic
// cross-block coupling dominates. But the coupling has structure: two
// processes interact only through the group profiles G of the global types
// they share. This module exploits that:
//
//  1. Partition — build the process sharing graph (edge weight = number of
//     global types two processes both use through a pool) and split it
//     into clusters: connected components, then a deterministic greedy
//     min-cut-style bisection of components larger than
//     `max_cluster_processes` (seeded growth maximizing internal minus
//     external edge weight, lowest process id on ties).
//  2. Cluster scheduling — build a sub-model per cluster (same library,
//     same blocks/time ranges/phases, global groups intersected with the
//     cluster; singleton intersections STAY global so every process keeps
//     its eq.-3 grid spacing and per-block schedules transfer exactly) and
//     run the coupled scheduler on each, fanned out over the PR-2 thread
//     pool. Every cluster result is certified against its sub-model.
//  3. Stitch — copy the per-block schedules into a full-system schedule;
//     allocation is re-derived on the FULL model, so cross-cluster pools
//     size to the true summed demand (feasibility composes because pools
//     size to demand — clustering can cost area, never feasibility).
//  4. Boundary reconciliation — for every "cut" type (pool whose users
//     span clusters) the stitched allocation's per-user authorization
//     tables give each cluster the exact residue demand the OTHER clusters
//     put on the pool. A Jacobi round re-schedules each affected cluster
//     with that demand as CoupledParams::external_demand (a fixed baseline
//     in G that steers forces away from residues that are busy elsewhere)
//     and adopts the re-schedule, cluster by cluster in canonical order,
//     iff the stitched full-model area improves. Adopted or not, every
//     candidate passed through the same certifier gate.
//
// The final stitched schedule + allocation are certified against the full
// model before they are returned. Results are bit-identical for any
// `jobs` value: cluster runs are independent and deterministic, and every
// reduction (partition, stitch, adoption) walks clusters in canonical
// order.
#pragma once

#include <vector>

#include "common/status.h"
#include "modulo/coupled_scheduler.h"
#include "modulo/schedule_cache.h"

namespace mshls {

struct HierarchyOptions {
  /// Cluster size cap: sharing-graph components with more processes are
  /// split by the deterministic bisection. <= 0 restores the default.
  int max_cluster_processes = 16;
  /// Worker threads for the cluster fan-out; <= 1 runs serially. Any value
  /// produces bit-identical results (independent per-cluster runs,
  /// canonical-order stitch and adoption).
  int jobs = 1;
  /// Boundary-reconciliation rounds over the cut pools; 0 disables. Each
  /// round stops early when no cluster's re-schedule improves the stitched
  /// area.
  int reconcile_rounds = 1;
  /// Optional shared result cache / persistent store for the per-cluster
  /// coupled runs (see modulo/schedule_cache.h).
  ScheduleCache* cache = nullptr;
  ScheduleStore* store = nullptr;
};

struct ClusterInfo {
  /// Member processes, ascending by original ProcessId.
  std::vector<ProcessId> processes;
  /// Area of the cluster's own sub-model allocation (diagnostic; the
  /// system area comes from the full-model allocation).
  int area = 0;
  /// Coupled iterations the cluster's adopted run took.
  int iterations = 0;
  /// True when a boundary-reconciliation re-schedule was adopted.
  bool reconciled = false;
};

struct HierarchyStats {
  long long clusters = 0;
  /// Global pools whose users span more than one cluster.
  long long cut_types = 0;
  long long reconcile_rounds = 0;
  /// Cluster re-schedules adopted because they improved the stitched area.
  long long reconcile_adopted = 0;
  /// Sum of coupled iterations over all adopted cluster runs.
  long long cluster_iterations = 0;
  /// Certifier gates passed (per-cluster rounds + the stitched system).
  long long certified = 0;
};

struct HierarchicalResult {
  /// Stitched full-system schedule and its full-model allocation.
  SystemSchedule schedule;
  Allocation allocation;
  int area = 0;
  int iterations = 0;  // max over clusters (critical path of the fan-out)
  std::vector<ClusterInfo> clusters;
  HierarchyStats stats;
};

/// Deterministic sharing-graph partition of the model's processes:
/// connected components of the "shares a pool" graph in ascending order of
/// their smallest member, each component split to at most
/// `max_cluster_processes` members. Every process appears exactly once;
/// members are ascending. Exposed for tests.
[[nodiscard]] std::vector<std::vector<ProcessId>> PartitionSharingGraph(
    const SystemModel& model, int max_cluster_processes);

/// Schedules `model` hierarchically as described above. The model must
/// have passed Validate(). Every cluster result and the stitched schedule
/// must pass CertifySchedule — a violation fails the run with kInternal.
[[nodiscard]] StatusOr<HierarchicalResult> ScheduleHierarchical(
    const SystemModel& model, const CoupledParams& params,
    const HierarchyOptions& options = {});

}  // namespace mshls
