#include "engine/fingerprint.h"

#include "common/hashing.h"

namespace mshls {

std::uint64_t GraphFingerprint(const DataFlowGraph& graph) {
  StableHasher h;
  h.Mix(static_cast<std::uint64_t>(graph.op_count()));
  for (const Operation& op : graph.ops()) h.Mix(op.type.index());
  h.Mix(static_cast<std::uint64_t>(graph.edge_count()));
  for (const Edge& e : graph.edges()) {
    h.Mix(e.from.index());
    h.Mix(e.to.index());
  }
  return h.Digest();
}

std::uint64_t ModelFingerprint(const SystemModel& model) {
  StableHasher h;

  const ResourceLibrary& lib = model.library();
  h.Mix(static_cast<std::uint64_t>(lib.size()));
  for (const ResourceType& t : lib.types()) {
    h.Mix(t.name);
    h.Mix(t.delay);
    h.Mix(t.dii);
    h.Mix(t.area);
  }

  h.Mix(static_cast<std::uint64_t>(model.process_count()));
  for (const Process& p : model.processes()) {
    h.Mix(p.deadline);
    h.Mix(static_cast<std::uint64_t>(p.blocks.size()));
    for (BlockId bid : p.blocks) h.Mix(bid.index());
  }

  h.Mix(static_cast<std::uint64_t>(model.block_count()));
  for (const Block& b : model.blocks()) {
    h.Mix(b.process.index());
    h.Mix(b.time_range);
    h.Mix(b.phase);
    h.Mix(GraphFingerprint(b.graph));
  }

  for (const ResourceType& t : lib.types()) {
    const TypeAssignment& a = model.assignment(t.id);
    h.Mix(a.scope == AssignmentScope::kGlobal);
    if (a.scope == AssignmentScope::kGlobal) {
      h.Mix(a.period);
      h.Mix(static_cast<std::uint64_t>(a.group.size()));
      for (ProcessId pid : a.group) h.Mix(pid.index());
    }
  }
  return h.Digest();
}

}  // namespace mshls
