#include "common/text_table.h"

#include <algorithm>
#include <cstdio>

namespace mshls {

void TextTable::SetHeader(std::vector<std::string> cells) {
  header_ = std::move(cells);
  right_aligned_.assign(header_.size(), false);
}

void TextTable::AddRow(std::vector<std::string> cells) {
  rows_.push_back(Row{std::move(cells), pending_rule_});
  pending_rule_ = false;
}

void TextTable::AddRule() { pending_rule_ = true; }

void TextTable::AlignRight(std::size_t column) {
  if (column >= right_aligned_.size()) right_aligned_.resize(column + 1, false);
  right_aligned_[column] = true;
}

std::string TextTable::Render() const {
  std::size_t ncols = header_.size();
  for (const Row& r : rows_) ncols = std::max(ncols, r.cells.size());

  std::vector<std::size_t> width(ncols, 0);
  auto widen = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c)
      width[c] = std::max(width[c], cells[c].size());
  };
  widen(header_);
  for (const Row& r : rows_) widen(r.cells);

  auto rule = [&] {
    std::string out = "+";
    for (std::size_t c = 0; c < ncols; ++c)
      out += std::string(width[c] + 2, '-') + "+";
    out += "\n";
    return out;
  };
  auto line = [&](const std::vector<std::string>& cells) {
    std::string out = "|";
    for (std::size_t c = 0; c < ncols; ++c) {
      const std::string cell = c < cells.size() ? cells[c] : "";
      const std::size_t pad = width[c] - cell.size();
      const bool right = c < right_aligned_.size() && right_aligned_[c];
      out += " ";
      if (right) out += std::string(pad, ' ') + cell;
      else out += cell + std::string(pad, ' ');
      out += " |";
    }
    out += "\n";
    return out;
  };

  std::string out = rule();
  if (!header_.empty()) {
    out += line(header_);
    out += rule();
  }
  for (const Row& r : rows_) {
    if (r.rule_before) out += rule();
    out += line(r.cells);
  }
  out += rule();
  return out;
}

std::string FormatDouble(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

}  // namespace mshls
