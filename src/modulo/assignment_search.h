// Automatic selection of the assignment scope of each resource type —
// the paper's conclusions name this as current work: "to automatically
// select the assignment scope of each resource" (§8; step S1 is done
// manually in their implementation, §7).
//
// For every resource type used by at least two processes, the scope is a
// binary choice: local (classic) or global over all its users. The search
// enumerates the scope combinations (2^T for T shareable types, T is
// small in practice), assigns each chosen global type the largest eq.-3
// compatible period (the gcd of its users' block time ranges — larger
// periods discriminate more residues, paper §3.2), schedules with the
// coupled engine and keeps the minimum-area combination.
#pragma once

#include <vector>

#include "common/status.h"
#include "modulo/coupled_scheduler.h"
#include "modulo/period_config.h"
#include "modulo/schedule_cache.h"

namespace mshls {

struct AssignmentChoice {
  ResourceTypeId type;
  bool global = false;
  int period = 0;  // set when global
};

struct AssignmentSearchResult {
  std::vector<AssignmentChoice> choices;  // one per shareable type
  CoupledResult best;
  int area = 0;
  long combinations = 0;
  long evaluated = 0;
  /// Scope combinations skipped by the utilization-bound prune (kHarmonic
  /// only): their certified area floor already exceeded the evaluated
  /// probe's area, so they can never win or tie.
  long pruned = 0;
  /// Of `evaluated`, how many were served from the result cache.
  long cache_hits = 0;
  /// Of `cache_hits`, how many came from the persistent second tier.
  long store_hits = 0;
};

struct AssignmentSearchOptions {
  /// kHarmonic (default) keeps the exhaustive 2^T scope enumeration but
  /// prunes masks whose certified utilization area floor
  /// (period_config.h) exceeds the area of an evaluated probe — exact and
  /// winner-identical to kExhaustive, which schedules every mask (the
  /// referee path).
  PeriodConfigurator configurator = PeriodConfigurator::kHarmonic;
  /// Cap on scheduled combinations; 0 = unlimited (2^T).
  int max_evaluations = 0;
  /// Worker threads for the scope-combination fan-out; <= 1 runs serially.
  /// Parallel output is bit-identical to serial (per-copy evaluation +
  /// canonical-order reduction). With jobs > 1 any CoupledObserver in the
  /// params is ignored.
  int jobs = 1;
  /// Optional shared result cache (see modulo/schedule_cache.h).
  ScheduleCache* cache = nullptr;
  /// Optional persistent second tier behind `cache` (must be thread-safe).
  ScheduleStore* store = nullptr;
};

/// Overwrites any existing S1/S2 state of `model`; on success the model is
/// left configured with the winning assignment.
[[nodiscard]] StatusOr<AssignmentSearchResult> SearchAssignments(
    SystemModel& model, const CoupledParams& params,
    const AssignmentSearchOptions& options = {});

/// Utilization of `type` by `process`: occupancy work of its ops divided
/// by the process' available steps (sum of block time ranges). The paper's
/// motivation in one number: "even if there is only low utilization of
/// limited or high-cost resources ... one full resource is needed by each
/// operation type and process" (§2).
[[nodiscard]] double TypeUtilization(const SystemModel& model,
                                     ProcessId process, ResourceTypeId type);

/// Fast O(types x processes) heuristic alternative to the exhaustive
/// search: marks a type global (over its users, gcd period) when the sum
/// of its per-process utilizations stays below `utilization_threshold` —
/// i.e. when one time-multiplexed instance pool plausibly covers the whole
/// group. Returns the choices applied to the model.
[[nodiscard]] StatusOr<std::vector<AssignmentChoice>> SuggestAssignments(
    SystemModel& model, double utilization_threshold = 1.0);

}  // namespace mshls
