#include "engine/job_service.h"

#include <algorithm>
#include <optional>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace mshls {

BatchSummary SummarizeBatch(const std::vector<JobResult>& results,
                            const CacheStats& cache_stats) {
  BatchSummary s;
  s.total = results.size();
  s.cache = cache_stats;
  for (const JobResult& r : results) {
    s.attempts += r.attempts.size();
    s.evaluated += r.evaluated;
    s.cache_hits += r.cache_hits;
    s.wall_ms_sum += r.wall_ms;
    if (r.status.ok()) {
      ++s.succeeded;
      ++s.rung_counts[static_cast<std::size_t>(r.rung)];
    } else {
      ++s.failed;
    }
  }
  return s;
}

JobService::JobService(const JobServiceOptions& options)
    : workers_(std::max(1, options.workers)),
      cache_(options.cache_capacity),
      store_(options.store) {}

std::vector<JobResult> JobService::RunBatch(std::vector<SchedulingJob> jobs) {
  for (SchedulingJob& job : jobs) {
    if (job.cache == nullptr) job.cache = &cache_;
    if (job.store == nullptr) job.store = store_;
  }

  std::vector<JobResult> results(jobs.size());
  std::optional<ThreadPool> pool;
  if (workers_ > 1) pool.emplace(workers_);

  obs::TraceTrack* track = nullptr;
  if (obs::Tracer* tracer = obs::GlobalTracer())
    track = &tracer->NewTrack("batch");
  obs::ScopedSpan batch_span(
      track, "batch",
      obs::TraceArgs()
          .I("jobs", static_cast<long long>(jobs.size()))
          .I("workers", workers_)
          .Json());

  // RunSchedulingJob never throws and each slot has a single writer, so
  // the fan-out status is always OK; results are complete on return.
  (void)ParallelFor(pool ? &*pool : nullptr, jobs.size(),
                    [&](std::size_t i) -> Status {
                      results[i] = RunSchedulingJob(jobs[i]);
                      return Status::Ok();
                    });

  // Publish the shared cache's lifetime counters once per batch (the
  // cache itself stays metrics-free; it is a template below the obs
  // layer). Counters only move forward, so the deltas add up correctly
  // across consecutive batches.
  PublishCacheMetrics();
  return results;
}

std::future<JobResult> JobService::SubmitJob(SchedulingJob job) {
  if (job.cache == nullptr) job.cache = &cache_;
  if (job.store == nullptr) job.store = store_;
  {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    // A 1-thread pool still runs the job off the caller's thread: the
    // daemon's connection handlers block on the future while the bounded
    // pool provides the actual execution width.
    if (!streaming_pool_.has_value()) streaming_pool_.emplace(workers_);
  }
  auto task = std::make_shared<std::packaged_task<JobResult()>>(
      [job = std::move(job)]() mutable { return RunSchedulingJob(job); });
  std::future<JobResult> future = task->get_future();
  streaming_pool_->Submit([task]() { (*task)(); });
  return future;
}

void JobService::PublishCacheMetrics() {
  if (!obs::Enabled()) return;
  const CacheStats cs = cache_.stats();
  std::lock_guard<std::mutex> lock(publish_mutex_);
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  const obs::MetricKind kS = obs::MetricKind::kStable;
  reg.GetCounter("result_cache.hits", kS).Add(cs.hits - published_.hits);
  reg.GetCounter("result_cache.misses", kS).Add(cs.misses - published_.misses);
  reg.GetCounter("result_cache.insertions", kS)
      .Add(cs.insertions - published_.insertions);
  reg.GetCounter("result_cache.evictions", kS)
      .Add(cs.evictions - published_.evictions);
  published_ = cs;
}

}  // namespace mshls
