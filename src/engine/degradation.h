// Graceful-degradation ladder for the scheduling pipeline.
//
// When a job fails with a recoverable status (kInfeasible,
// kDeadlineExceeded, or a failed certificate surfacing as kInternal), the
// pipeline retries on progressively weaker — but always well-defined —
// problem formulations instead of surfacing a bare error:
//
//   kAsRequested   — the job exactly as submitted;
//   kRelaxPeriods  — re-run S2 (period search) so an eq.-3-incompatible or
//                    over-constrained period choice can be replaced;
//   kDemoteGlobals — drop sharing: every global type becomes local and the
//                    model is scheduled as declared (more area, no residue
//                    or grid constraints left to violate);
//   kLocalBaseline — the traditional pure-local baseline scheduler, the
//                    weakest formulation that can still emit hardware.
//
// Every attempt is recorded in JobResult::attempts so a batch report can
// show *why* a row ended on a lower rung; the rung that produced the final
// result is JobResult::rung.
#pragma once

#include <vector>

#include "common/status.h"

namespace mshls {

enum class DegradationRung {
  kAsRequested = 0,
  kRelaxPeriods,
  kDemoteGlobals,
  kLocalBaseline,
};

[[nodiscard]] const char* DegradationRungName(DegradationRung rung);

/// The full ladder in documented order. Jobs default to this; tests and
/// callers may submit a shorter one (the first entry should normally be
/// kAsRequested).
[[nodiscard]] std::vector<DegradationRung> DefaultLadder();

/// One tried rung and how it ended. attempts.back().status is the job
/// status when every rung failed.
struct RungAttempt {
  DegradationRung rung = DegradationRung::kAsRequested;
  Status status;
};

/// True for status codes the ladder may recover from by weakening the
/// formulation; anything else (parse errors, cancellation, bad arguments)
/// aborts the ladder immediately.
[[nodiscard]] bool IsDegradable(StatusCode code);

}  // namespace mshls
