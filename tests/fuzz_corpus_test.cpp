// Replays the committed fuzz corpus (tests/data/fuzz_corpus/*.hls) through
// the full oracle battery as part of tier-1. The corpus pins interesting
// generated systems — global pools, nonzero phases, mixed libraries — as
// plain DSL files, so a behaviour change in scheduler, certifier, cache or
// frontend shows up here even without running a fuzz campaign. Files are
// regenerated from their header seeds if the generator stream ever changes.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "frontend/lowering.h"
#include "fuzz/generator.h"
#include "fuzz/oracles.h"

namespace mshls {
namespace {

std::vector<std::filesystem::path> CorpusFiles() {
  const std::filesystem::path dir =
      std::filesystem::path(MSHLS_SOURCE_DIR) / "tests" / "data" /
      "fuzz_corpus";
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir))
    if (entry.path().extension() == ".hls") files.push_back(entry.path());
  std::sort(files.begin(), files.end());
  return files;
}

TEST(FuzzCorpus, EveryCasePassesAllFourOracles) {
  const std::vector<std::filesystem::path> files = CorpusFiles();
  ASSERT_GE(files.size(), 4u) << "corpus missing";
  int with_globals = 0;
  for (std::size_t i = 0; i < files.size(); ++i) {
    std::ifstream in(files[i]);
    ASSERT_TRUE(in.good()) << files[i];
    std::ostringstream buf;
    buf << in.rdbuf();
    auto model = CompileSystem(buf.str());
    ASSERT_TRUE(model.ok())
        << files[i] << ": " << model.status().ToString();
    if (!model.value().GlobalTypes().empty()) ++with_globals;
    const CaseOutcome out = RunCaseOracles(
        model.value(), /*seed=*/static_cast<std::uint64_t>(i) + 1,
        CaseClass::kClean);
    EXPECT_TRUE(out.ok()) << files[i].filename() << ": "
                          << out.LogLine(static_cast<int>(i));
    EXPECT_TRUE(out.feasible) << files[i].filename();
  }
  // The corpus must keep exercising the sharing machinery, not only the
  // classic local path.
  EXPECT_GE(with_globals, 2);
}

}  // namespace
}  // namespace mshls
