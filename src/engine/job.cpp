#include "engine/job.h"

#include <chrono>
#include <utility>

#include "bind/area_report.h"
#include "bind/binding.h"
#include "frontend/lowering.h"
#include "modulo/allocation.h"
#include "modulo/baseline.h"
#include "sim/simulator.h"

namespace mshls {
namespace {

/// Wraps the user observer (if any) with a cancellation probe so a cancel
/// or timeout aborts the coupled scheduler at the next iteration.
CoupledParams InstrumentParams(const SchedulingJob& job) {
  CoupledParams params = job.params;
  if (!job.cancel) return params;
  CoupledObserver user = params.observer;
  std::shared_ptr<CancelToken> token = job.cancel;
  params.observer = [token, user](const CoupledIterationTrace& trace) {
    token->Check();
    if (user) user(trace);
  };
  return params;
}

}  // namespace

const char* JobModeName(JobMode mode) {
  switch (mode) {
    case JobMode::kCoupled: return "coupled";
    case JobMode::kSearchPeriods: return "search-periods";
    case JobMode::kSearchAssignments: return "search-assignments";
    case JobMode::kLocalBaseline: return "local-baseline";
  }
  return "unknown";
}

JobResult RunSchedulingJob(const SchedulingJob& job) {
  JobResult out;
  out.name = job.name;
  const auto t0 = std::chrono::steady_clock::now();
  const auto finish = [&](Status status) -> JobResult {
    out.status = std::move(status);
    out.wall_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    return out;
  };
  const auto poll = [&]() -> Status {
    return job.cancel ? job.cancel->Poll() : Status::Ok();
  };

  if (job.cancel) job.cancel->SetTimeout(job.timeout_ms);

  try {
    // Stage 1 — compile.
    if (Status s = poll(); !s.ok()) return finish(std::move(s));
    SystemModel model;
    if (job.model.has_value()) {
      model = *job.model;
    } else {
      auto model_or = CompileSystem(job.source);
      if (!model_or.ok()) return finish(model_or.status());
      model = std::move(model_or).value();
    }

    // Stage 2 — schedule (with optional S1/S2 search).
    if (Status s = poll(); !s.ok()) return finish(std::move(s));
    const CoupledParams params = InstrumentParams(job);
    switch (job.mode) {
      case JobMode::kCoupled: {
        bool hit = false;
        auto run_or = ScheduleWithCache(model, params, job.cache, &hit);
        if (!run_or.ok()) return finish(run_or.status());
        out.result = std::move(run_or).value();
        out.evaluated = 1;
        out.cache_hits = hit ? 1 : 0;
        break;
      }
      case JobMode::kSearchPeriods: {
        PeriodSearchOptions options;
        options.jobs = job.jobs;
        options.cache = job.cache;
        auto search = SearchPeriods(model, params, options);
        if (!search.ok()) return finish(search.status());
        out.evaluated = search.value().evaluated;
        out.cache_hits = search.value().cache_hits;
        out.result = std::move(search).value().best;
        break;
      }
      case JobMode::kSearchAssignments: {
        AssignmentSearchOptions options;
        options.jobs = job.jobs;
        options.cache = job.cache;
        auto search = SearchAssignments(model, params, options);
        if (!search.ok()) return finish(search.status());
        out.evaluated = search.value().evaluated;
        out.cache_hits = search.value().cache_hits;
        out.result = std::move(search).value().best;
        break;
      }
      case JobMode::kLocalBaseline: {
        auto run = ScheduleLocalBaseline(model, params);
        if (!run.ok()) return finish(run.status());
        out.result = std::move(run).value();
        out.evaluated = 1;
        break;
      }
    }
    out.area = out.result.allocation.TotalArea(model.library());

    // Stage 3 — bind.
    if (Status s = poll(); !s.ok()) return finish(std::move(s));
    auto binding = BindSystem(model, out.result.schedule, out.result.allocation);
    if (!binding.ok()) return finish(binding.status());
    out.full_area = ComputeAreaBreakdown(model, out.result.schedule,
                                         out.result.allocation,
                                         binding.value())
                        .total_area;

    // Stage 4 — validate.
    if (Status s = poll(); !s.ok()) return finish(std::move(s));
    if (Status s = ValidateSystemSchedule(model, out.result.schedule); !s.ok())
      return finish(std::move(s));
    if (Status s = CheckAllocationCovers(model, out.result.schedule,
                                         out.result.allocation);
        !s.ok())
      return finish(std::move(s));
    if (job.simulate_activations > 0) {
      SystemSimulator sim(model, out.result.schedule, out.result.allocation);
      TraceOptions trace_options;
      trace_options.activations_per_process = job.simulate_activations;
      const SimReport report =
          sim.Run(RandomActivationTrace(model, trace_options));
      if (!report.ok)
        return finish(Status{StatusCode::kInternal,
                             "simulated activation trace hit a resource "
                             "conflict"});
    }
    return finish(Status::Ok());
  } catch (const CancelledError& e) {
    return finish(Status{e.code(), e.what()});
  } catch (const std::exception& e) {
    return finish(Status{StatusCode::kInternal,
                         std::string("uncaught exception in job: ") + e.what()});
  }
}

}  // namespace mshls
