// Shared machine-readable bench output — every bench_* binary emits the
// same JSON shape ("mshls-bench-v1") next to its text table, so
// scripts/bench_baseline.sh and the perf-trajectory tooling parse one
// schema instead of scraping 17 different tables:
//
//   {
//     "schema": "mshls-bench-v1",
//     "experiment": "C1",            // DESIGN.md experiment id
//     "name": "coupled",             // short bench name
//     "build": { ... },              // common/build_info (attribution)
//     "params": { ... },             // bench-wide knobs (jobs, repeats, ...)
//     "rows": [ { ... }, ... ]       // one object per measured row
//   }
//
// Row/param values keep insertion order; doubles render with %.6g (these
// are measurements, not determinism-critical data).
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace mshls {

/// One flat JSON object whose keys keep insertion order.
class BenchFields {
 public:
  BenchFields& I(const std::string& key, long long v);
  BenchFields& D(const std::string& key, double v);
  BenchFields& S(const std::string& key, const std::string& v);
  BenchFields& B(const std::string& key, bool v);

  [[nodiscard]] bool empty() const { return fields_.empty(); }
  /// Renders "{...}".
  [[nodiscard]] std::string Render() const;

 private:
  std::vector<std::pair<std::string, std::string>> fields_;  // key, raw json
};

class BenchJson {
 public:
  BenchJson(std::string experiment, std::string name);

  /// Bench-wide parameters ("params" object).
  BenchFields& params() { return params_; }
  /// Appends a row and returns it for filling.
  BenchFields& AddRow();

  [[nodiscard]] std::string Render() const;
  /// Writes Render() to `path`; returns false (with a message on stderr)
  /// when the file cannot be written.
  bool WriteFile(const std::string& path) const;

 private:
  std::string experiment_;
  std::string name_;
  BenchFields params_;
  std::vector<BenchFields> rows_;
};

/// Scans argv for `--json <file>`, removes the pair from argv/argc and
/// returns the file name ("" when absent) — so every bench supports the
/// flag without touching its own argument handling.
[[nodiscard]] std::string TakeJsonFlag(int& argc, char** argv);

}  // namespace mshls
