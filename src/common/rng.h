// Deterministic pseudo-random source for workload generators and property
// tests. A fixed, documented algorithm (splitmix64 + xoshiro-style mixing)
// keeps generated graphs identical across platforms and standard libraries,
// which std::mt19937 + distribution objects do not guarantee.
#pragma once

#include <cstdint>

namespace mshls {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value (splitmix64).
  std::uint64_t NextU64() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  int NextInt(int lo, int hi) {
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<int>(NextU64() % span);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability p.
  bool NextBool(double p) { return NextDouble() < p; }

 private:
  std::uint64_t state_;
};

}  // namespace mshls
