#include "common/status.h"

namespace mshls {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kInfeasible: return "INFEASIBLE";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kParseError: return "PARSE_ERROR";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kCancelled: return "CANCELLED";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace mshls
