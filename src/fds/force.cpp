#include "fds/force.h"

#include <cassert>

namespace mshls {

double SpringForce(std::span<const double> q, std::span<const double> dq,
                   const FdsParams& params, double type_weight) {
  assert(q.size() == dq.size());
  double force = 0;
  for (std::size_t t = 0; t < q.size(); ++t) {
    if (dq[t] == 0.0) continue;
    force += (q[t] + params.global_spring_constant +
              params.lookahead * dq[t]) *
             dq[t];
  }
  return force * type_weight;
}

double TypeWeight(const ResourceLibrary& lib, ResourceTypeId t,
                  const FdsParams& params) {
  return params.area_weighting ? static_cast<double>(lib.type(t).area) : 1.0;
}

}  // namespace mshls
