#include "bind/area_report.h"

namespace mshls {

AreaBreakdown ComputeAreaBreakdown(const SystemModel& model,
                                   const SystemSchedule& schedule,
                                   const Allocation& allocation,
                                   const SystemBinding& binding,
                                   const AreaCostModel& cost) {
  AreaBreakdown out;
  out.fu_area = allocation.TotalArea(model.library());

  for (const ProcessRegisterReport& r :
       AllocateSystemRegisters(model, schedule))
    out.register_count += r.register_count;
  out.register_area = out.register_count * cost.register_area;

  // Ops feeding each instance.
  std::vector<int> fan_in(binding.instances.size(), 0);
  for (const Block& b : model.blocks())
    for (const Operation& op : b.graph.ops())
      ++fan_in[binding.of(b.id, op.id).index()];
  for (int k : fan_in)
    if (k > 1) out.mux2_count += 2 * (k - 1);  // two operand ports
  out.mux_area = out.mux2_count * cost.mux2_area;

  out.total_area = out.fu_area + out.register_area + out.mux_area;
  return out;
}

}  // namespace mshls
