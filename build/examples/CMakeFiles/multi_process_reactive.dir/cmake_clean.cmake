file(REMOVE_RECURSE
  "CMakeFiles/multi_process_reactive.dir/multi_process_reactive.cpp.o"
  "CMakeFiles/multi_process_reactive.dir/multi_process_reactive.cpp.o.d"
  "multi_process_reactive"
  "multi_process_reactive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_process_reactive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
