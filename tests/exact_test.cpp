#include <gtest/gtest.h>

#include "fds/fds_scheduler.h"
#include "sched/exact_scheduler.h"
#include "workloads/benchmarks.h"

namespace mshls {
namespace {

class ExactTest : public ::testing::Test {
 protected:
  SystemModel model_;
  PaperTypes types_ = AddPaperTypes(model_.library());

  const Block& AddBlockOf(DataFlowGraph g, int range) {
    const ProcessId p = model_.AddProcess(
        "p" + std::to_string(model_.process_count()));
    const BlockId b = model_.AddBlock(p, "b", std::move(g), range);
    EXPECT_TRUE(model_.Validate().ok());
    return model_.block(b);
  }

  int AreaOf(const std::vector<int>& usage) {
    int area = 0;
    for (const ResourceType& t : model_.library().types())
      area += usage[t.id.index()] * t.area;
    return area;
  }
};

TEST_F(ExactTest, TrivialChainIsOptimal) {
  DataFlowGraph g;
  const OpId a = g.AddOp(types_.add, "a");
  const OpId m = g.AddOp(types_.mult, "m");
  g.AddEdge(a, m);
  ASSERT_TRUE(g.Validate().ok());
  const Block& b = AddBlockOf(std::move(g), 5);
  auto res = ScheduleBlockExact(b, model_.library());
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res.value().proven_optimal);
  EXPECT_EQ(res.value().area, 1 + 4);
  EXPECT_TRUE(
      ValidateBlockSchedule(b, model_.DelayOf(b.id), res.value().schedule)
          .ok());
}

TEST_F(ExactTest, SerializesIndependentOpsWhenTimeAllows) {
  // 3 independent adds in 3 steps: optimal is one adder.
  DataFlowGraph g;
  for (int i = 0; i < 3; ++i) g.AddOp(types_.add, "a" + std::to_string(i));
  ASSERT_TRUE(g.Validate().ok());
  const Block& b = AddBlockOf(std::move(g), 3);
  auto res = ScheduleBlockExact(b, model_.library());
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.value().usage[types_.add.index()], 1);
  EXPECT_TRUE(res.value().proven_optimal);
}

TEST_F(ExactTest, KnowsWhenTwoUnitsAreForced) {
  // 4 adds in 2 steps: 2 adders are unavoidable.
  DataFlowGraph g;
  for (int i = 0; i < 4; ++i) g.AddOp(types_.add, "a" + std::to_string(i));
  ASSERT_TRUE(g.Validate().ok());
  const Block& b = AddBlockOf(std::move(g), 2);
  auto res = ScheduleBlockExact(b, model_.library());
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.value().usage[types_.add.index()], 2);
}

TEST_F(ExactTest, InfeasibleRangeRejected) {
  DataFlowGraph g;
  const OpId a = g.AddOp(types_.mult, "a");
  const OpId b2 = g.AddOp(types_.mult, "b");
  g.AddEdge(a, b2);
  ASSERT_TRUE(g.Validate().ok());
  Block block{BlockId{0}, ProcessId{0}, "x", std::move(g), 3, 0};
  ASSERT_TRUE(block.graph.validated());
  auto res = ScheduleBlockExact(block, model_.library());
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kInfeasible);
}

TEST_F(ExactTest, DiffeqOptimum) {
  const Block& b = AddBlockOf(BuildDiffeq(types_), 12);
  auto res = ScheduleBlockExact(b, model_.library());
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res.value().proven_optimal);
  // 6 pipelined mults, 2 adds, 3 subs in 12 steps: one of each suffices.
  EXPECT_EQ(res.value().area, 1 + 1 + 4);
}

TEST_F(ExactTest, NodeCapReturnsIncumbent) {
  const Block& b = AddBlockOf(BuildDiffeq(types_), 12);
  ExactOptions options;
  options.max_nodes = 50;
  auto res = ScheduleBlockExact(b, model_.library(), options);
  ASSERT_TRUE(res.ok());
  EXPECT_LE(res.value().nodes, 50 + 1);
  // Incumbent still a valid schedule.
  EXPECT_TRUE(
      ValidateBlockSchedule(b, model_.DelayOf(b.id), res.value().schedule)
          .ok());
}

TEST_F(ExactTest, HeuristicsAreNeverBetterThanOptimal) {
  // The optimality-gap property: on every small graph, FDS/IFDS area >=
  // exact area.
  Rng rng(321);
  for (int trial = 0; trial < 6; ++trial) {
    RandomDfgOptions options;
    options.ops = rng.NextInt(4, 9);
    options.layers = rng.NextInt(2, 3);
    DataFlowGraph g = BuildRandomDfg(types_, rng, options);
    const DelayFn delay = [&](OpId op) {
      return model_.library().type(g.op(op).type).delay;
    };
    const int range = g.CriticalPathLength(delay) + rng.NextInt(1, 4);
    const Block& b = AddBlockOf(std::move(g), range);
    auto exact = ScheduleBlockExact(b, model_.library());
    auto fds = ScheduleBlockFds(b, model_.library(), {});
    auto ifds = ScheduleBlockIfds(b, model_.library(), {});
    ASSERT_TRUE(exact.ok());
    ASSERT_TRUE(fds.ok());
    ASSERT_TRUE(ifds.ok());
    ASSERT_TRUE(exact.value().proven_optimal);
    EXPECT_GE(AreaOf(fds.value().usage), exact.value().area) << trial;
    EXPECT_GE(AreaOf(ifds.value().usage), exact.value().area) << trial;
  }
}

TEST_F(ExactTest, WorkFloorBoundIsRespected) {
  // 5 adds in 3 steps: floor = ceil(5/3) = 2 and the optimum hits it.
  DataFlowGraph g;
  for (int i = 0; i < 5; ++i) g.AddOp(types_.add, "a" + std::to_string(i));
  ASSERT_TRUE(g.Validate().ok());
  const Block& b = AddBlockOf(std::move(g), 3);
  auto res = ScheduleBlockExact(b, model_.library());
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.value().usage[types_.add.index()], 2);
}

}  // namespace
}  // namespace mshls
