// Plain-text table builder used by benches and reports to print paper-style
// result tables (Table 1 of the paper) with aligned columns.
#pragma once

#include <string>
#include <vector>

namespace mshls {

class TextTable {
 public:
  /// Sets the header row; resets alignment to left for all columns.
  void SetHeader(std::vector<std::string> cells);

  /// Appends a data row. Rows may have fewer cells than the header;
  /// missing cells render empty.
  void AddRow(std::vector<std::string> cells);

  /// Inserts a horizontal rule before the next added row.
  void AddRule();

  /// Marks a column (0-based) as right-aligned (numbers).
  void AlignRight(std::size_t column);

  /// Renders with unicode-free ASCII borders.
  [[nodiscard]] std::string Render() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool rule_before = false;
  };
  std::vector<std::string> header_;
  std::vector<Row> rows_;
  std::vector<bool> right_aligned_;
  bool pending_rule_ = false;
};

/// Formats a double with `digits` decimals (no trailing-zero stripping).
[[nodiscard]] std::string FormatDouble(double v, int digits);

}  // namespace mshls
