#include "serve/admission.h"

#include <algorithm>

#include "obs/metrics.h"

namespace mshls::serve {

bool AdmissionController::TryAcquire() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (limit_ > 0 && in_flight_ >= limit_) {
    ++stats_.rejected;
    return false;
  }
  ++in_flight_;
  ++stats_.admitted;
  stats_.peak_in_flight = std::max<long long>(stats_.peak_in_flight, in_flight_);
  return true;
}

void AdmissionController::Release() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (in_flight_ > 0) --in_flight_;
}

int AdmissionController::in_flight() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return in_flight_;
}

AdmissionStats AdmissionController::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void AdmissionController::PublishMetrics() {
  if (!obs::Enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  // Admission counts and depth depend on client timing, so they are
  // kTiming — never part of the stable (bit-identical) export.
  const obs::MetricKind kT = obs::MetricKind::kTiming;
  reg.GetCounter("serve.admitted", kT).Add(stats_.admitted - published_.admitted);
  reg.GetCounter("serve.rejected_overloaded", kT)
      .Add(stats_.rejected - published_.rejected);
  reg.GetGauge("serve.queue_depth", kT).Set(in_flight_);
  published_ = stats_;
}

}  // namespace mshls::serve
