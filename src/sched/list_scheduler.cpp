#include "sched/list_scheduler.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "sched/time_frames.h"

namespace mshls {
namespace {

/// Occupancy tracker: per type, per step, how many instances are busy.
class BusyTable {
 public:
  BusyTable(std::size_t types, std::size_t horizon)
      : horizon_(horizon), busy_(types, std::vector<int>(horizon, 0)) {}

  [[nodiscard]] bool CanIssue(ResourceTypeId type, int start, int dii,
                              int limit) const {
    for (int t = start; t < start + dii; ++t) {
      if (static_cast<std::size_t>(t) >= horizon_) return false;
      if (busy_[type.index()][static_cast<std::size_t>(t)] + 1 > limit)
        return false;
    }
    return true;
  }

  void Issue(ResourceTypeId type, int start, int dii) {
    for (int t = start; t < start + dii; ++t)
      ++busy_[type.index()][static_cast<std::size_t>(t)];
  }

  [[nodiscard]] int MaxBusy(ResourceTypeId type) const {
    int m = 0;
    for (int v : busy_[type.index()]) m = std::max(m, v);
    return m;
  }

 private:
  std::size_t horizon_;
  std::vector<std::vector<int>> busy_;
};

}  // namespace

StatusOr<ListScheduleResult> ListScheduleResourceConstrained(
    const Block& block, const ResourceLibrary& lib,
    const std::vector<int>& limits) {
  const DataFlowGraph& g = block.graph;
  assert(g.validated());
  const DelayFn delay = [&](OpId op) {
    return lib.type(g.op(op).type).delay;
  };

  // Priorities from an unconstrained ALAP against the block range; ops that
  // would miss the range under no contention still get scheduled (length may
  // exceed time_range; the caller decides whether that is acceptable).
  // Horizon: worst case fully serial execution.
  int horizon = 0;
  for (const Operation& op : g.ops()) horizon += lib.type(op.type).delay;
  horizon = std::max(horizon, block.time_range) + 1;

  auto frames_or = TimeFrameSet::Compute(g, delay, horizon);
  if (!frames_or.ok()) return frames_or.status();
  const TimeFrameSet& frames = frames_or.value();

  auto limit_of = [&](ResourceTypeId type) {
    if (type.index() >= limits.size()) return std::numeric_limits<int>::max();
    return limits[type.index()] <= 0 ? std::numeric_limits<int>::max()
                                     : limits[type.index()];
  };

  BlockSchedule schedule(g.op_count());
  BusyTable busy(lib.size(), static_cast<std::size_t>(horizon));
  std::vector<int> unscheduled_preds(g.op_count(), 0);
  for (const Operation& op : g.ops())
    unscheduled_preds[op.id.index()] =
        static_cast<int>(g.preds(op.id).size());
  std::vector<int> earliest(g.op_count(), 0);

  std::vector<OpId> ready;
  for (const Operation& op : g.ops())
    if (unscheduled_preds[op.id.index()] == 0) ready.push_back(op.id);

  int scheduled = 0;
  int length = 0;
  for (int cycle = 0; scheduled < static_cast<int>(g.op_count()); ++cycle) {
    if (cycle >= horizon)
      return Status{StatusCode::kInternal,
                    "list scheduler exceeded its horizon"};
    // Least-slack-first among ops whose data is ready this cycle.
    std::vector<OpId> candidates;
    for (OpId id : ready)
      if (earliest[id.index()] <= cycle) candidates.push_back(id);
    std::sort(candidates.begin(), candidates.end(), [&](OpId a, OpId b) {
      const int sa = frames.frame(a).alap;
      const int sb = frames.frame(b).alap;
      if (sa != sb) return sa < sb;
      return a < b;
    });
    for (OpId id : candidates) {
      const ResourceType& rt = lib.type(g.op(id).type);
      if (!busy.CanIssue(rt.id, cycle, rt.dii, limit_of(rt.id))) continue;
      busy.Issue(rt.id, cycle, rt.dii);
      schedule.set_start(id, cycle);
      length = std::max(length, cycle + rt.delay);
      ++scheduled;
      ready.erase(std::find(ready.begin(), ready.end(), id));
      for (OpId s : g.succs(id)) {
        earliest[s.index()] =
            std::max(earliest[s.index()], cycle + rt.delay);
        if (--unscheduled_preds[s.index()] == 0) ready.push_back(s);
      }
    }
  }

  ListScheduleResult result;
  result.schedule = std::move(schedule);
  result.length = length;
  result.usage.assign(lib.size(), 0);
  for (const ResourceType& t : lib.types())
    result.usage[t.id.index()] = busy.MaxBusy(t.id);
  return result;
}

StatusOr<TimeConstrainedResult> ListScheduleTimeConstrained(
    const Block& block, const ResourceLibrary& lib) {
  const DataFlowGraph& g = block.graph;
  assert(g.validated());

  std::vector<int> used_types(lib.size(), 0);
  for (const Operation& op : g.ops()) used_types[op.type.index()] = 1;

  std::vector<int> alloc(lib.size(), 0);
  for (std::size_t i = 0; i < lib.size(); ++i)
    if (used_types[i]) alloc[i] = 1;

  // Grow one instance per round, each time picking the type whose extra
  // instance shortens the schedule the most (ties: cheaper area, then
  // lower id). Allocation of a type is capped at its op count, so the loop
  // is bounded by the total op count; the all-parallel allocation
  // reproduces unconstrained ASAP = critical path <= range (guaranteed by
  // model validation), so the loop always terminates with a result.
  std::vector<int> ops_of_type(lib.size(), 0);
  for (const Operation& op : g.ops()) ++ops_of_type[op.type.index()];

  for (;;) {
    auto res_or = ListScheduleResourceConstrained(block, lib, alloc);
    if (!res_or.ok()) return res_or.status();
    ListScheduleResult& res = res_or.value();
    if (res.length <= block.time_range) {
      TimeConstrainedResult out;
      out.schedule = std::move(res.schedule);
      out.allocation = std::move(res.usage);  // trim to what was used
      out.length = res.length;
      return out;
    }

    std::size_t best = lib.size();
    int best_length = res.length;
    for (std::size_t i = 0; i < lib.size(); ++i) {
      if (!used_types[i] || alloc[i] >= ops_of_type[i]) continue;
      ++alloc[i];
      auto trial_or = ListScheduleResourceConstrained(block, lib, alloc);
      --alloc[i];
      if (!trial_or.ok()) return trial_or.status();
      const int len = trial_or.value().length;
      const bool better =
          best == lib.size()
              ? len < res.length
              : (len < best_length ||
                 (len == best_length &&
                  lib.types()[i].area < lib.types()[best].area));
      if (better) {
        best = i;
        best_length = len;
      }
    }
    if (best == lib.size()) {
      // No single increment helps; grow the cheapest still-growable type
      // to make progress towards the all-parallel allocation.
      for (std::size_t i = 0; i < lib.size(); ++i) {
        if (!used_types[i] || alloc[i] >= ops_of_type[i]) continue;
        if (best == lib.size() ||
            lib.types()[i].area < lib.types()[best].area)
          best = i;
      }
    }
    if (best == lib.size())
      return Status{StatusCode::kInfeasible,
                    "block '" + block.name +
                        "' cannot meet its time range by adding resources"};
    ++alloc[best];
  }
}

}  // namespace mshls
