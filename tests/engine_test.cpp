// Unit tests for the concurrent scheduling engine: thread pool, parallel
// fan-out helper, cancellation, result cache, model fingerprints and the
// SchedulingJob / JobService pipeline.
#include <atomic>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/cancel.h"
#include "engine/fingerprint.h"
#include "engine/job.h"
#include "engine/job_service.h"
#include "engine/result_cache.h"
#include "engine/thread_pool.h"
#include "workloads/paper_system.h"

namespace mshls {
namespace {

constexpr const char* kTinyDesign = R"(
resource add  delay 1 area 1;
resource mult delay 2 dii 1 area 4;

process alpha deadline 10 {
  block main time 10 {
    m1 = a * b;
    m2 = c * d;
    s1 = m1 + m2;
    y  = s1 + e;
  }
}
process beta deadline 10 {
  block main time 10 {
    m1 = p * q;
    y  = m1 + r;
  }
}
share add  among alpha, beta period 5;
share mult among alpha, beta period 5;
)";

// ---------------------------------------------------------------- pool --

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.Submit([&count] { ++count; });
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, BoundedQueueAcceptsMoreTasksThanCapacity) {
  ThreadPool pool(2, /*queue_capacity=*/4);
  std::atomic<int> count{0};
  for (int i = 0; i < 64; ++i) pool.Submit([&count] { ++count; });
  pool.Wait();
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, WaitRethrowsTaskException) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // The pool survives: a later round still works.
  std::atomic<int> count{0};
  pool.Submit([&count] { ++count; });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
}

TEST(ParallelFor, ResultsLandInIndexOrderRegardlessOfSchedule) {
  ThreadPool pool(8);
  std::vector<int> out(200, -1);
  Status s = ParallelFor(&pool, out.size(), [&](std::size_t i) -> Status {
    out[i] = static_cast<int>(i) * 3;
    return Status::Ok();
  });
  ASSERT_TRUE(s.ok());
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_EQ(out[i], static_cast<int>(i) * 3);
}

TEST(ParallelFor, InlineWhenPoolIsNull) {
  std::vector<int> out(10, 0);
  Status s = ParallelFor(nullptr, out.size(), [&](std::size_t i) -> Status {
    out[i] = 1;
    return Status::Ok();
  });
  ASSERT_TRUE(s.ok());
  for (int v : out) EXPECT_EQ(v, 1);
}

TEST(ParallelFor, CapturesExceptionsAsInternalStatus) {
  ThreadPool pool(4);
  Status s = ParallelFor(&pool, 16, [&](std::size_t i) -> Status {
    if (i == 7) throw std::runtime_error("kaboom");
    return Status::Ok();
  });
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_NE(s.message().find("kaboom"), std::string::npos);
}

TEST(ParallelFor, ReportsFirstErrorInIndexOrder) {
  // Index 2 must win over index 9 no matter which finishes first.
  ThreadPool pool(4);
  Status s = ParallelFor(&pool, 16, [&](std::size_t i) -> Status {
    if (i == 2) return Status{StatusCode::kInfeasible, "index 2"};
    if (i == 9) return Status{StatusCode::kInvalidArgument, "index 9"};
    return Status::Ok();
  });
  EXPECT_EQ(s.code(), StatusCode::kInfeasible);
  EXPECT_EQ(s.message(), "index 2");
}

// -------------------------------------------------------------- cancel --

TEST(CancelToken, PollReflectsCancelAndTimeout) {
  CancelToken token;
  EXPECT_TRUE(token.Poll().ok());
  token.SetTimeout(0);  // disarmed
  EXPECT_TRUE(token.Poll().ok());
  token.Cancel();
  EXPECT_EQ(token.Poll().code(), StatusCode::kCancelled);
}

TEST(CancelToken, CheckThrowsCancelledError) {
  CancelToken token;
  EXPECT_NO_THROW(token.Check());
  token.Cancel();
  EXPECT_THROW(token.Check(), CancelledError);
}

// --------------------------------------------------------------- cache --

TEST(ResultCache, MissThenHit) {
  ResultCache<int> cache;
  EXPECT_FALSE(cache.Lookup(42).has_value());
  cache.Insert(42, 1234);
  auto found = cache.Lookup(42);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, 1234);
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_DOUBLE_EQ(stats.HitRate(), 0.5);
}

TEST(ResultCache, FirstInsertWinsForEqualKeys) {
  ResultCache<int> cache;
  cache.Insert(7, 100);
  cache.Insert(7, 200);  // deterministic runs: same key => same value
  EXPECT_EQ(*cache.Lookup(7), 100);
  EXPECT_EQ(cache.stats().insertions, 1);
}

TEST(ResultCache, FifoEvictionAtCapacity) {
  ResultCache<int> cache(/*capacity=*/2);
  cache.Insert(1, 1);
  cache.Insert(2, 2);
  cache.Insert(3, 3);  // evicts key 1
  EXPECT_FALSE(cache.Lookup(1).has_value());
  EXPECT_TRUE(cache.Lookup(2).has_value());
  EXPECT_TRUE(cache.Lookup(3).has_value());
  EXPECT_EQ(cache.stats().evictions, 1);
  EXPECT_EQ(cache.size(), 2u);
}

// --------------------------------------------------------- fingerprint --

TEST(Fingerprint, IdenticalModelsHashEqual) {
  PaperSystem a = BuildPaperSystem();
  PaperSystem b = BuildPaperSystem();
  EXPECT_EQ(ModelFingerprint(a.model), ModelFingerprint(b.model));
}

TEST(Fingerprint, SensitiveToPeriodScopeAndDeadline) {
  PaperSystem base = BuildPaperSystem();
  const std::uint64_t h0 = ModelFingerprint(base.model);

  PaperSystem changed_period = BuildPaperSystem();
  changed_period.model.SetPeriod(changed_period.types.add, 1);
  EXPECT_NE(ModelFingerprint(changed_period.model), h0);

  PaperSystem changed_scope = BuildPaperSystem();
  changed_scope.model.MakeLocal(changed_scope.types.sub);
  EXPECT_NE(ModelFingerprint(changed_scope.model), h0);

  PaperSystemOptions options;
  options.ewf_deadline_b = 30;  // P3: 25 -> 30
  PaperSystem changed_deadline = BuildPaperSystem(options);
  EXPECT_NE(ModelFingerprint(changed_deadline.model), h0);
}

// ----------------------------------------------------------------- job --

TEST(SchedulingJob, FullPipelineOnDslSource) {
  SchedulingJob job;
  job.name = "tiny";
  job.source = kTinyDesign;
  job.simulate_activations = 2;
  const JobResult result = RunSchedulingJob(job);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_GT(result.area, 0);
  EXPECT_GT(result.full_area, 0.0);
  EXPECT_EQ(result.evaluated, 1);
}

TEST(SchedulingJob, ParseErrorComesBackAsStatus) {
  SchedulingJob job;
  job.source = "process { this is not the language }";
  const JobResult result = RunSchedulingJob(job);
  EXPECT_FALSE(result.status.ok());
  EXPECT_EQ(result.status.code(), StatusCode::kParseError);
}

TEST(SchedulingJob, PreCancelledTokenShortCircuits) {
  SchedulingJob job;
  job.source = kTinyDesign;
  job.cancel = std::make_shared<CancelToken>();
  job.cancel->Cancel();
  const JobResult result = RunSchedulingJob(job);
  EXPECT_EQ(result.status.code(), StatusCode::kCancelled);
}

TEST(SchedulingJob, SearchModesReportEvaluations) {
  SchedulingJob job;
  job.source = kTinyDesign;
  job.mode = JobMode::kSearchAssignments;
  job.configurator = PeriodConfigurator::kExhaustive;  // referee enumeration
  const JobResult result = RunSchedulingJob(job);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.evaluated, 4);  // 2 shareable types -> 2^2 combinations
}

TEST(SchedulingJob, HarmonicConfiguratorMatchesExhaustiveWinner) {
  SchedulingJob exhaustive;
  exhaustive.source = kTinyDesign;
  exhaustive.mode = JobMode::kSearchAssignments;
  exhaustive.configurator = PeriodConfigurator::kExhaustive;
  const JobResult referee = RunSchedulingJob(exhaustive);
  ASSERT_TRUE(referee.status.ok()) << referee.status.ToString();

  SchedulingJob harmonic;
  harmonic.source = kTinyDesign;
  harmonic.mode = JobMode::kSearchAssignments;  // default configurator
  const JobResult result = RunSchedulingJob(harmonic);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.area, referee.area);
  EXPECT_EQ(result.full_area, referee.full_area);
  EXPECT_LE(result.evaluated, referee.evaluated);
}

TEST(SchedulingJob, ClusterCapRoutesThroughHierarchy) {
  SchedulingJob flat;
  flat.source = kTinyDesign;
  const JobResult flat_result = RunSchedulingJob(flat);
  ASSERT_TRUE(flat_result.status.ok()) << flat_result.status.ToString();
  EXPECT_EQ(flat_result.clusters, 0);

  SchedulingJob clustered;
  clustered.source = kTinyDesign;
  clustered.cluster_cap = 1;  // force every process into its own cluster
  clustered.simulate_activations = 2;
  const JobResult result = RunSchedulingJob(clustered);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_GE(result.clusters, 1);
  // The certify stage runs on the stitched schedule (job.certify default);
  // feasibility must match the flat run even if the area differs.
  EXPECT_GT(result.area, 0);
}

TEST(JobService, BatchResultsStayInSubmissionOrder) {
  std::vector<SchedulingJob> jobs;
  for (int i = 0; i < 6; ++i) {
    SchedulingJob job;
    job.name = "job" + std::to_string(i);
    job.source = kTinyDesign;
    jobs.push_back(std::move(job));
  }
  JobServiceOptions options;
  options.workers = 4;
  JobService service(options);
  const std::vector<JobResult> results = service.RunBatch(std::move(jobs));
  ASSERT_EQ(results.size(), 6u);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(results[i].name, "job" + std::to_string(i));
    EXPECT_TRUE(results[i].status.ok()) << results[i].status.ToString();
  }
  // Identical designs share one cache entry. Workers that start before the
  // first result lands each miss once, so with 4 workers anywhere from 2 to
  // 5 of the 6 runs are hits — only the lower bound is deterministic.
  EXPECT_GE(service.cache_stats().hits, 2);
  EXPECT_LE(service.cache_stats().hits, 5);
}

TEST(JobService, ParallelBatchMatchesSerialBatch) {
  const auto make_jobs = [] {
    std::vector<SchedulingJob> jobs;
    for (int deadline : {10, 12, 14}) {
      SchedulingJob job;
      job.name = "d" + std::to_string(deadline);
      PaperSystemOptions options;
      options.diffeq_deadline = deadline;
      options.period = 5;
      job.model = BuildPaperSystem(options).model;
      jobs.push_back(std::move(job));
    }
    return jobs;
  };
  JobServiceOptions serial_options;
  serial_options.workers = 1;
  JobService serial(serial_options);
  JobServiceOptions parallel_options;
  parallel_options.workers = 4;
  JobService parallel(parallel_options);
  const std::vector<JobResult> a = serial.RunBatch(make_jobs());
  const std::vector<JobResult> b = parallel.RunBatch(make_jobs());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_TRUE(a[i].status.ok()) << a[i].status.ToString();
    ASSERT_TRUE(b[i].status.ok()) << b[i].status.ToString();
    EXPECT_EQ(a[i].area, b[i].area);
    EXPECT_DOUBLE_EQ(a[i].full_area, b[i].full_area);
    EXPECT_EQ(a[i].result.iterations, b[i].result.iterations);
  }
}

}  // namespace
}  // namespace mshls
