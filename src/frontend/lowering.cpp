#include "frontend/lowering.h"

#include <map>

#include "frontend/parser.h"

namespace mshls {
namespace {

Status SemanticError(int line, const std::string& message) {
  return {StatusCode::kParseError,
          "line " + std::to_string(line) + ": " + message};
}

}  // namespace

StatusOr<SystemModel> LowerSystem(const AstSystem& ast) {
  SystemModel model;

  for (const AstResource& r : ast.resources) {
    if (model.library().FindByName(r.name).valid())
      return SemanticError(r.line,
                           "duplicate resource '" + r.name + "'");
    model.library().AddType(r.name, r.delay, r.dii, r.area);
  }

  std::map<std::string, ProcessId> process_by_name;
  for (const AstProcess& p : ast.processes) {
    if (process_by_name.contains(p.name))
      return SemanticError(p.line, "duplicate process '" + p.name + "'");
    const ProcessId pid = model.AddProcess(p.name, p.deadline);
    process_by_name.emplace(p.name, pid);

    std::map<std::string, bool> block_names;
    for (const AstBlock& b : p.blocks) {
      if (block_names.contains(b.name))
        return SemanticError(b.line, "duplicate block '" + b.name +
                                         "' in process '" + p.name + "'");
      block_names.emplace(b.name, true);

      DataFlowGraph graph;
      std::map<std::string, OpId> def;  // identifier -> producing op
      for (const AstStatement& stmt : b.statements) {
        const ResourceTypeId type =
            model.library().FindByName(stmt.resource);
        if (!type.valid())
          return SemanticError(stmt.line, "unknown resource '" +
                                              stmt.resource + "'");
        if (def.contains(stmt.target))
          return SemanticError(
              stmt.line, "identifier '" + stmt.target +
                             "' assigned more than once in block '" +
                             b.name + "'");
        const OpId op = graph.AddOp(type, stmt.target);
        for (const std::string& operand : stmt.operands) {
          if (operand == stmt.target)
            return SemanticError(stmt.line,
                                 "identifier '" + operand +
                                     "' used in its own definition");
          const auto it = def.find(operand);
          // Unknown operands are block inputs: no edge.
          if (it != def.end()) graph.AddEdge(it->second, op);
        }
        def.emplace(stmt.target, op);
      }
      if (Status s = graph.Validate(); !s.ok())
        return SemanticError(b.line, "block '" + b.name + "': " +
                                         s.message());
      model.AddBlock(pid, b.name, std::move(graph), b.time_range, b.phase);
    }
  }

  for (const AstShare& share : ast.shares) {
    const ResourceTypeId type = model.library().FindByName(share.resource);
    if (!type.valid())
      return SemanticError(share.line, "unknown resource '" +
                                           share.resource + "' in share");
    std::vector<ProcessId> group;
    for (const std::string& name : share.processes) {
      const auto it = process_by_name.find(name);
      if (it == process_by_name.end())
        return SemanticError(share.line,
                             "unknown process '" + name + "' in share");
      group.push_back(it->second);
    }
    model.MakeGlobal(type, std::move(group));
    model.SetPeriod(type, share.period);
  }

  if (Status s = model.Validate(); !s.ok()) return s;
  return model;
}

StatusOr<SystemModel> CompileSystem(std::string_view source) {
  auto ast = ParseSystemText(source);
  if (!ast.ok()) return ast.status();
  return LowerSystem(ast.value());
}

}  // namespace mshls
