file(REMOVE_RECURSE
  "libmshls_modulo.a"
)
