
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dfg/bus_insertion.cpp" "src/dfg/CMakeFiles/mshls_dfg.dir/bus_insertion.cpp.o" "gcc" "src/dfg/CMakeFiles/mshls_dfg.dir/bus_insertion.cpp.o.d"
  "/root/repo/src/dfg/dot_export.cpp" "src/dfg/CMakeFiles/mshls_dfg.dir/dot_export.cpp.o" "gcc" "src/dfg/CMakeFiles/mshls_dfg.dir/dot_export.cpp.o.d"
  "/root/repo/src/dfg/graph.cpp" "src/dfg/CMakeFiles/mshls_dfg.dir/graph.cpp.o" "gcc" "src/dfg/CMakeFiles/mshls_dfg.dir/graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mshls_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
