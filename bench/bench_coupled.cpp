// Experiment C1 — incremental force engine speedup (DESIGN.md §2 row 26).
//
// Times the coupled scheduler on the A-series scaling workloads (the
// bench_scaling system generator) in three configurations:
//
//   serial-naive   incremental=false: every iteration re-evaluates every
//                  candidate and rebuilds all profiles from scratch (the
//                  pre-row-26 cost shape, kept as the reference path)
//   incremental    dirty-candidate caching + scoped profile updates, one
//                  thread
//   inc+jobs       the same engine with the candidate sweep fanned out
//                  over worker threads
//
// All three must produce bit-identical schedules — the bench aborts with
// exit 1 on any divergence, so it doubles as an end-to-end consistency
// check. `--smoke` runs only the smallest workload (used by check.sh under
// sanitizers); `--json <file>` writes the machine-readable BENCH_coupled
// rows for scripts/bench_baseline.sh.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "modulo/coupled_scheduler.h"
#include "workloads/benchmarks.h"

using namespace mshls;

namespace {

/// Same generator as bench_scaling (A2): n processes of `ops` random ops
/// each, global mult + add pools with period 4, deadlines 16.
SystemModel MakeSystem(int n_processes, int ops) {
  SystemModel model;
  const PaperTypes t = AddPaperTypes(model.library());
  Rng rng(42);
  std::vector<ProcessId> procs;
  for (int i = 0; i < n_processes; ++i) {
    RandomDfgOptions options;
    options.ops = ops;
    options.layers = 3;
    options.mult_probability = 0.3;
    DataFlowGraph g = BuildRandomDfg(t, rng, options);
    const ProcessId p = model.AddProcess("p" + std::to_string(i), 16);
    model.AddBlock(p, "b", std::move(g), 16);
    procs.push_back(p);
  }
  model.MakeGlobal(t.mult, procs);
  model.SetPeriod(t.mult, 4);
  model.MakeGlobal(t.add, procs);
  model.SetPeriod(t.add, 4);
  const Status s = model.Validate();
  if (!s.ok()) std::abort();
  return model;
}

struct ModeResult {
  double wall_ms = 0;
  int iterations = 0;
  SystemSchedule schedule;
};

ModeResult RunMode(const SystemModel& model, bool incremental, int jobs,
                   int repeats) {
  ModeResult out;
  for (int r = 0; r < repeats; ++r) {
    CoupledParams params;
    params.incremental = incremental;
    params.jobs = jobs;
    CoupledScheduler scheduler(model, params);
    const auto t0 = std::chrono::steady_clock::now();
    auto result = scheduler.Run();
    const auto t1 = std::chrono::steady_clock::now();
    if (!result.ok()) {
      std::fprintf(stderr, "scheduling failed: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
    out.wall_ms += std::chrono::duration<double, std::milli>(t1 - t0).count();
    out.iterations = result.value().iterations;
    out.schedule = std::move(result.value().schedule);
  }
  out.wall_ms /= repeats;
  return out;
}

bool SameSchedule(const SystemSchedule& a, const SystemSchedule& b) {
  if (a.blocks.size() != b.blocks.size()) return false;
  for (std::size_t i = 0; i < a.blocks.size(); ++i) {
    if (a.blocks[i].size() != b.blocks[i].size()) return false;
    for (std::size_t o = 0; o < a.blocks[i].size(); ++o) {
      const OpId op{static_cast<int>(o)};
      if (a.blocks[i].start(op) != b.blocks[i].start(op)) return false;
    }
  }
  return true;
}

struct Row {
  int processes;
  int ops;
  int iterations;
  double naive_ms;
  double inc_ms;
  double jobs_ms;
  int jobs;
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_file;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_file = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--json <file>]\n", argv[0]);
      return 1;
    }
  }

  struct Config { int processes; int ops; int repeats; };
  std::vector<Config> configs;
  if (smoke) {
    configs = {{2, 10, 1}};
  } else {
    configs = {{2, 12, 3}, {4, 16, 3}, {6, 20, 2}, {10, 24, 1}};
  }
  const int jobs =
      std::max(2, static_cast<int>(std::thread::hardware_concurrency()));

  std::printf("C1 incremental force engine — coupled scheduler, %d sweep "
              "job(s) in inc+jobs mode\n", jobs);
  std::printf("%-14s %6s %12s %12s %12s %9s %9s\n", "workload", "iters",
              "naive ms", "inc ms", "inc+jobs ms", "inc x", "jobs x");

  std::vector<Row> rows;
  for (const Config& c : configs) {
    const SystemModel model = MakeSystem(c.processes, c.ops);
    const ModeResult naive = RunMode(model, /*incremental=*/false, 1,
                                     c.repeats);
    const ModeResult inc = RunMode(model, /*incremental=*/true, 1, c.repeats);
    const ModeResult par = RunMode(model, /*incremental=*/true, jobs,
                                   c.repeats);
    if (!SameSchedule(naive.schedule, inc.schedule) ||
        !SameSchedule(naive.schedule, par.schedule) ||
        naive.iterations != inc.iterations ||
        naive.iterations != par.iterations) {
      std::fprintf(stderr,
                   "DIVERGENCE on %dx%d: the three modes must be "
                   "bit-identical\n", c.processes, c.ops);
      return 1;
    }
    const std::string name = std::to_string(c.processes) + "p x " +
                             std::to_string(c.ops) + "ops";
    std::printf("%-14s %6d %12.2f %12.2f %12.2f %8.2fx %8.2fx\n",
                name.c_str(), naive.iterations, naive.wall_ms, inc.wall_ms,
                par.wall_ms, naive.wall_ms / inc.wall_ms,
                naive.wall_ms / par.wall_ms);
    rows.push_back({c.processes, c.ops, naive.iterations, naive.wall_ms,
                    inc.wall_ms, par.wall_ms, jobs});
  }

  if (!json_file.empty()) {
    std::ofstream out(json_file);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_file.c_str());
      return 1;
    }
    out << "{\n  \"experiment\": \"C1\",\n  \"jobs\": " << jobs
        << ",\n  \"rows\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      char buf[256];
      std::snprintf(buf, sizeof buf,
                    "    {\"processes\": %d, \"ops\": %d, \"iterations\": %d, "
                    "\"naive_ms\": %.3f, \"incremental_ms\": %.3f, "
                    "\"incremental_jobs_ms\": %.3f, \"speedup_incremental\": "
                    "%.2f, \"speedup_jobs\": %.2f}%s\n",
                    r.processes, r.ops, r.iterations, r.naive_ms, r.inc_ms,
                    r.jobs_ms, r.naive_ms / r.inc_ms, r.naive_ms / r.jobs_ms,
                    i + 1 < rows.size() ? "," : "");
      out << buf;
    }
    out << "  ]\n}\n";
    std::printf("wrote %s\n", json_file.c_str());
  }
  return 0;
}
