#include "common/math_util.h"

#include <algorithm>

namespace mshls {

std::vector<std::int64_t> DivisorsOf(std::int64_t n) {
  assert(n > 0);
  std::vector<std::int64_t> low;
  std::vector<std::int64_t> high;
  for (std::int64_t d = 1; d * d <= n; ++d) {
    if (n % d != 0) continue;
    low.push_back(d);
    if (d != n / d) high.push_back(n / d);
  }
  low.insert(low.end(), high.rbegin(), high.rend());
  return low;
}

}  // namespace mshls
