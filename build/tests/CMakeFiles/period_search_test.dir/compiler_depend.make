# Empty compiler generated dependencies file for period_search_test.
# This may be replaced when dependencies are built.
