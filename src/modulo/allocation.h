// Allocation extraction and system-level schedule validation.
//
// After the coupled scheduler fixes every operation, this module derives:
//  * local instance counts per (process, type): max concurrent occupancy
//    over the process' blocks (blocks never overlap, condition C2);
//  * for every global type g: the per-process *access authorization table*
//    A_p(tau) — the number of instances process p may claim at every
//    absolute step with t mod lambda_g == tau — and the instance count
//    N_g = max_tau sum_p A_p(tau);
//  * the total area cost.
//
// The central static-sharing guarantee (checked by the sim/ substrate):
// if every process obeys its authorization table, no global resource is
// ever oversubscribed, for *any* grid-aligned activation times — no
// runtime executive is needed.
#pragma once

#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "model/system_model.h"
#include "sched/schedule.h"

namespace mshls {

struct GlobalTypeAllocation {
  ResourceTypeId type;
  int period = 0;
  int instances = 0;
  /// Group member processes that actually use the type (paper's uses(g)).
  std::vector<ProcessId> users;
  /// authorization[u][tau] for users[u]: instances claimable at residue tau.
  std::vector<std::vector<int>> authorization;
  /// Group demand profile G(tau) = sum_u authorization[u][tau];
  /// instances == max over tau.
  std::vector<int> profile;
};

struct Allocation {
  /// local[process][type]: locally allocated instances (0 for types served
  /// through a global pool for that process).
  std::vector<std::vector<int>> local;
  std::vector<GlobalTypeAllocation> global;

  [[nodiscard]] const GlobalTypeAllocation* FindGlobal(
      ResourceTypeId type) const;

  /// Sum of area over all local and global instances.
  [[nodiscard]] int TotalArea(const ResourceLibrary& lib) const;

  /// Total number of instances of `type` across the system (global pool
  /// plus all local allocations).
  [[nodiscard]] int TotalInstances(ResourceTypeId type) const;
};

/// Validates precedence/range of every block schedule (resource legality is
/// by construction of ComputeAllocation and re-checked by the simulator).
[[nodiscard]] Status ValidateSystemSchedule(const SystemModel& model,
                                            const SystemSchedule& schedule);

/// Derives the allocation from a complete system schedule.
[[nodiscard]] Allocation ComputeAllocation(const SystemModel& model,
                                           const SystemSchedule& schedule);

/// Cross-checks an allocation against a schedule: every block's occupancy
/// must fit its process' authorization (global) or local count, and the
/// group sums must not exceed the instance counts. Returns the first
/// violation found. Used as a property check in tests.
[[nodiscard]] Status CheckAllocationCovers(const SystemModel& model,
                                           const SystemSchedule& schedule,
                                           const Allocation& allocation);

}  // namespace mshls
