#include "report/gantt.h"

#include <algorithm>
#include <set>

namespace mshls {
namespace {

constexpr int kCellWidth = 5;
constexpr int kLabelWidth = 16;

std::string Cell(const std::string& text) {
  std::string out = text.substr(0, kCellWidth - 1);
  out.resize(static_cast<std::size_t>(kCellWidth), ' ');
  return out;
}

std::string Label(const std::string& text) {
  std::string out = text.substr(0, kLabelWidth - 1);
  out.resize(static_cast<std::size_t>(kLabelWidth), ' ');
  return out;
}

}  // namespace

std::string RenderGantt(const SystemModel& model, BlockId block,
                        const SystemSchedule& schedule,
                        const SystemBinding& binding) {
  const Block& b = model.block(block);
  const ResourceLibrary& lib = model.library();
  const BlockSchedule& sched = schedule.of(block);

  std::set<InstanceId> used;
  for (const Operation& op : b.graph.ops()) used.insert(binding.of(block,
                                                                   op.id));

  std::string out = "block '" + b.name + "' (time range " +
                    std::to_string(b.time_range) + ")\n";
  out += Label("t:");
  for (int t = 0; t < b.time_range; ++t) out += Cell(std::to_string(t));
  out += "\n";

  for (InstanceId inst : used) {
    const InstanceInfo& info = binding.info(inst);
    std::vector<std::string> cells(static_cast<std::size_t>(b.time_range),
                                   ".");
    for (const Operation& op : b.graph.ops()) {
      if (binding.of(block, op.id) != inst) continue;
      const int s = sched.start(op.id);
      const int dii = lib.type(op.type).dii;
      const std::string label =
          op.name.empty() ? "op" + std::to_string(op.id.value()) : op.name;
      for (int k = 0; k < dii && s + k < b.time_range; ++k)
        cells[static_cast<std::size_t>(s + k)] = k == 0 ? label : "~";
    }
    out += Label(info.name + ":");
    for (const std::string& c : cells) out += Cell(c);
    out += "\n";
  }
  return out;
}

std::string RenderOccupancy(const SystemModel& model, BlockId block,
                            const SystemSchedule& schedule) {
  const Block& b = model.block(block);
  const ResourceLibrary& lib = model.library();
  std::string out = "block '" + b.name + "' occupancy\n";
  out += Label("t:");
  for (int t = 0; t < b.time_range; ++t) out += Cell(std::to_string(t));
  out += "\n";
  for (const ResourceType& t : lib.types()) {
    const auto prof = OccupancyProfile(b, lib, schedule.of(block), t.id);
    bool any = false;
    for (int v : prof) any |= v > 0;
    if (!any) continue;
    out += Label(t.name + ":");
    for (int v : prof) out += Cell(v == 0 ? "." : std::to_string(v));
    out += "\n";
  }
  return out;
}

}  // namespace mshls
