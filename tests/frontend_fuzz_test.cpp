// Frontend error-path fuzzing: the compiler must map arbitrary byte-level
// corruption of DSL text to a clean typed Status — never crash, hang or
// accept garbage silently. Run under the ASan/UBSan config (scripts/check.sh)
// these tests double as memory-safety probes of the lexer/parser/lowering
// stack on hostile input.
#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/status.h"
#include "frontend/emitter.h"
#include "frontend/lowering.h"
#include "fuzz/fuzzer.h"
#include "fuzz/generator.h"

namespace mshls {
namespace {

/// Every code a hostile source may legitimately map to. Anything else
/// (or a crash) is a frontend bug.
bool IsTypedFrontendError(StatusCode code) {
  return code == StatusCode::kParseError ||
         code == StatusCode::kInvalidArgument ||
         code == StatusCode::kInfeasible || code == StatusCode::kNotFound;
}

TEST(FrontendFuzz, SurvivesByteLevelCorruption) {
  // Base corpus: emitted generated designs — realistic token streams, so
  // mutations land in interesting parser states rather than failing at the
  // first byte.
  int compiled_ok = 0, rejected = 0;
  for (int base = 0; base < 8; ++base) {
    const std::string text =
        EmitSystemText(GenerateSystem(FuzzCaseSeed(11, base)).model);
    for (int m = 0; m < 50; ++m) {
      Rng rng(FuzzCaseSeed(12, base * 50 + m));
      const std::string mutated = MutateText(text, rng);
      auto model = CompileSystem(mutated);
      if (model.ok()) {
        ++compiled_ok;  // mutation kept the text well-formed — fine
      } else {
        ++rejected;
        EXPECT_TRUE(IsTypedFrontendError(model.status().code()))
            << "base " << base << " mutation " << m << ": "
            << model.status().ToString();
        EXPECT_FALSE(model.status().message().empty());
      }
    }
  }
  // The mutator must actually hit the error paths, not just reformat.
  EXPECT_GT(rejected, 100);
  (void)compiled_ok;
}

TEST(FrontendFuzz, TruncationAtEveryBoundaryIsRejectedCleanly) {
  const std::string text =
      EmitSystemText(GenerateSystem(FuzzCaseSeed(13, 0)).model);
  for (std::size_t len = 0; len < text.size(); len += 7) {
    auto model = CompileSystem(text.substr(0, len));
    if (!model.ok()) {
      EXPECT_TRUE(IsTypedFrontendError(model.status().code()))
          << "truncated at " << len << ": " << model.status().ToString();
    }
  }
}

TEST(FrontendFuzz, EmptySourceIsAnEmptySystemNotAnError) {
  auto model = CompileSystem("");
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  EXPECT_TRUE(model.value().processes().empty());
}

TEST(FrontendFuzz, FixedHostileInputs) {
  const char* inputs[] = {
      ";",
      "resource",
      "resource add delay",
      "resource add delay 99999999999999999999 area 1;",
      "process p { block b time 0 { } }",
      "process p { block b time 4 { x = y + ; } }",
      "process p deadline -3 { }",
      "share mult among nobody period 2;",
      "process p { block b time 4 { x = a + b; } } share add among p "
      "period 0;",
      "\xff\xfe\x00garbage\x01",
      "process p { block b time 4 { x = a + b; }",  // unclosed
      "{ } } { process",
  };
  for (const char* text : inputs) {
    auto model = CompileSystem(std::string(text));
    ASSERT_FALSE(model.ok()) << "accepted: " << text;
    EXPECT_TRUE(IsTypedFrontendError(model.status().code()))
        << text << " -> " << model.status().ToString();
    EXPECT_FALSE(model.status().message().empty());
  }
}

TEST(FrontendFuzz, MutatorAlwaysChangesNonEmptyText) {
  const std::string text = "resource add delay 1 area 1;\n";
  int changed = 0;
  for (int i = 0; i < 40; ++i) {
    Rng rng(FuzzCaseSeed(14, i));
    if (MutateText(text, rng) != text) ++changed;
  }
  // Byte flips can hit the same value; near-always changed is the contract.
  EXPECT_GE(changed, 38);
  Rng rng(1);
  EXPECT_EQ(MutateText("", rng), "");
}

}  // namespace
}  // namespace mshls
