// Coupled multi-process Modulo Scheduling — step (S3) of the paper and its
// two-part modification of Improved Force-Directed Scheduling (paper §5/§6).
//
// All blocks of all processes are scheduled *simultaneously*: a partial
// solution is the set of time frames of every operation in the system, and
// each iteration performs one IFDS-style gradual time-frame reduction on
// the globally worst candidate.
//
// Forces for a locally assigned resource type are the classic block-local
// spring forces. Forces for a globally assigned type g are evaluated on the
// group demand profile (paper eq. 7–9):
//
//     d_b(t)   block-local distribution of g            (eq. 4)
//     D_b(tau) = max{ d_b(t) : (phase_b + t) mod lambda_g = tau }   (eq. 7)
//     M_p(tau) = max{ D_b(tau) : b in blocks(p) }       (eq. 9, inner max —
//                blocks of one process never overlap, condition C2)
//     G(tau)   = sum over group processes p of M_p(tau) (eq. 9, outer sum)
//
// Part 1 (periodic alignment) is the modulo-maximum transform D; part 2
// (global balancing) is the max/sum chain to G. `GlobalForceMode` lets
// benches ablate the parts.
#pragma once

#include <functional>
#include <vector>

#include "common/status.h"
#include "fds/fds_scheduler.h"
#include "modulo/allocation.h"
#include "sched/time_frames.h"

namespace mshls {

enum class GlobalForceMode {
  /// Part 1 + part 2: forces on the group profile G (the paper's method).
  kFull,
  /// Part 1 only: forces on the block's own modulo profile D_b.
  kBlockModuloOnly,
  /// Ignore global assignments in the force model (classic block-local
  /// forces everywhere); allocation still honours the assignment.
  kIgnoreGlobal,
};

struct CoupledCandidate {
  BlockId block;
  OpId op;
  TimeFrame frame;
  double force_begin = 0;
  double force_end = 0;
  double diff = 0;
};

struct CoupledIterationTrace {
  int iteration = 0;
  std::vector<CoupledCandidate> candidates;
  BlockId chosen_block;
  OpId chosen_op;
  bool shrank_begin = false;
};

using CoupledObserver = std::function<void(const CoupledIterationTrace&)>;

struct CoupledParams {
  FdsParams fds;
  GlobalForceMode mode = GlobalForceMode::kFull;
  CoupledObserver observer;
};

struct CoupledResult {
  SystemSchedule schedule;
  Allocation allocation;
  int iterations = 0;
};

class CoupledScheduler {
 public:
  /// The model must have passed Validate().
  CoupledScheduler(const SystemModel& model, CoupledParams params);

  /// Runs the coupled IFDS to completion. Deterministic.
  [[nodiscard]] StatusOr<CoupledResult> Run();

  /// Current group demand profile of a global type (for tracing); only
  /// meaningful between construction and Run() or from the observer.
  [[nodiscard]] const Profile& GroupProfile(ResourceTypeId type) const;

 private:
  struct BlockState {
    TimeFrameSet frames;
    /// Block-local distribution d per resource type id.
    std::vector<Profile> local;
    /// Modulo-max profile D per resource type id (empty when not global
    /// for this block's process).
    std::vector<Profile> modulo;
  };

  void RebuildBlockState(BlockId b);
  void RebuildProcessAndGroupProfiles();

  /// Force of tentatively narrowing `op` of block `b` to `target` under the
  /// configured mode.
  [[nodiscard]] double EvaluateForce(BlockId b, OpId op,
                                     TimeFrame target) const;

  /// True if `type` participates in global force evaluation for `block`.
  [[nodiscard]] bool GlobalForBlock(ResourceTypeId type, BlockId block) const;

  const SystemModel& model_;
  CoupledParams params_;
  std::vector<BlockState> blocks_;          // by block id
  std::vector<std::vector<Profile>> mp_;    // [process][type] M_p
  std::vector<Profile> group_;              // [type] G
  std::vector<DelayFn> delays_;             // by block id
};

}  // namespace mshls
