#include <gtest/gtest.h>

#include "dfg/bus_insertion.h"
#include "modulo/coupled_scheduler.h"
#include "workloads/benchmarks.h"

namespace mshls {
namespace {

class BusInsertionTest : public ::testing::Test {
 protected:
  ResourceLibrary lib_;
  PaperTypes types_ = AddPaperTypes(lib_);
  ResourceTypeId bus_ = lib_.AddType("bus", /*delay=*/1, /*dii=*/1,
                                     /*area=*/1);

  DelayFn DelayOf(const DataFlowGraph& g) {
    return [this, &g](OpId op) { return lib_.type(g.op(op).type).delay; };
  }

  /// a -> m -> b chain plus a second consumer of a.
  DataFlowGraph Diamond() {
    DataFlowGraph g;
    const OpId a = g.AddOp(types_.add, "a");
    const OpId m = g.AddOp(types_.mult, "m");
    const OpId b = g.AddOp(types_.add, "b");
    g.AddEdge(a, m);
    g.AddEdge(a, b);
    g.AddEdge(m, b);
    EXPECT_TRUE(g.Validate().ok());
    return g;
  }
};

TEST_F(BusInsertionTest, BroadcastInsertsOneTransferPerValue) {
  BusInsertionOptions options;
  options.bus_type = bus_;
  const DataFlowGraph out = InsertBusTransfers(Diamond(), options);
  // a and m have consumers -> 2 transfers; b is a sink -> none.
  EXPECT_EQ(out.op_count(), 3u + 2u);
  int bus_ops = 0;
  for (const Operation& op : out.ops())
    if (op.type == bus_) ++bus_ops;
  EXPECT_EQ(bus_ops, 2);
  // a's transfer feeds both consumers.
  const OpId bus_a = OpId{3};
  EXPECT_EQ(out.op(bus_a).name, "bus_a");
  EXPECT_EQ(out.succs(bus_a).size(), 2u);
}

TEST_F(BusInsertionTest, PointToPointInsertsOneTransferPerEdge) {
  BusInsertionOptions options;
  options.bus_type = bus_;
  options.broadcast = false;
  const DataFlowGraph out = InsertBusTransfers(Diamond(), options);
  EXPECT_EQ(out.op_count(), 3u + 3u);  // one per original edge
  EXPECT_EQ(out.edge_count(), 6u);
}

TEST_F(BusInsertionTest, OriginalIdsAndTypesPreserved) {
  BusInsertionOptions options;
  options.bus_type = bus_;
  const DataFlowGraph in = Diamond();
  const DataFlowGraph out = InsertBusTransfers(in, options);
  for (const Operation& op : in.ops()) {
    EXPECT_EQ(out.op(op.id).type, op.type);
    EXPECT_EQ(out.op(op.id).name, op.name);
  }
}

TEST_F(BusInsertionTest, EveryOriginalEdgeRoutedThroughBus) {
  BusInsertionOptions options;
  options.bus_type = bus_;
  const DataFlowGraph in = Diamond();
  const DataFlowGraph out = InsertBusTransfers(in, options);
  // No direct edge between two original (non-bus) ops survives.
  for (const Edge& e : out.edges()) {
    const bool from_bus = out.op(e.from).type == bus_;
    const bool to_bus = out.op(e.to).type == bus_;
    EXPECT_TRUE(from_bus || to_bus)
        << e.from.value() << " -> " << e.to.value();
  }
}

TEST_F(BusInsertionTest, CriticalPathGrowsByTransferDelays) {
  const DataFlowGraph in = Diamond();
  const int cp_in = in.CriticalPathLength(DelayOf(in));
  BusInsertionOptions options;
  options.bus_type = bus_;
  const DataFlowGraph out = InsertBusTransfers(in, options);
  const int cp_out = out.CriticalPathLength(DelayOf(out));
  // Chain a -> m -> b has two transfers inserted: +2.
  EXPECT_EQ(cp_in, 1 + 2 + 1);
  EXPECT_EQ(cp_out, cp_in + 2);
}

TEST_F(BusInsertionTest, SkipSourcesLeavesInputsDirect) {
  BusInsertionOptions options;
  options.bus_type = bus_;
  options.skip_sources = true;
  const DataFlowGraph out = InsertBusTransfers(Diamond(), options);
  // Only m (non-source with consumers) gets a transfer.
  int bus_ops = 0;
  for (const Operation& op : out.ops())
    if (op.type == bus_) ++bus_ops;
  EXPECT_EQ(bus_ops, 1);
}

TEST_F(BusInsertionTest, SharedGlobalBusAcrossProcesses) {
  // Two processes whose transfers run over one globally shared bus: the
  // coupled scheduler time-multiplexes the transfer slots by residue.
  SystemModel model;
  const PaperTypes t = AddPaperTypes(model.library());
  const ResourceTypeId bus = model.library().AddType("bus", 1, 1, 1);
  std::vector<ProcessId> procs;
  for (int i = 0; i < 2; ++i) {
    DataFlowGraph g;
    const OpId a = g.AddOp(t.add, "a");
    const OpId b = g.AddOp(t.add, "b");
    g.AddEdge(a, b);
    ASSERT_TRUE(g.Validate().ok());
    BusInsertionOptions options;
    options.bus_type = bus;
    DataFlowGraph with_bus = InsertBusTransfers(g, options);
    const ProcessId p = model.AddProcess("p" + std::to_string(i), 8);
    model.AddBlock(p, "b", std::move(with_bus), 8);
    procs.push_back(p);
  }
  model.MakeGlobal(bus, procs);
  model.SetPeriod(bus, 2);
  ASSERT_TRUE(model.Validate().ok());
  CoupledScheduler scheduler(model, CoupledParams{});
  auto result = scheduler.Run();
  ASSERT_TRUE(result.ok());
  const GlobalTypeAllocation* pool = result.value().allocation.FindGlobal(bus);
  ASSERT_NE(pool, nullptr);
  EXPECT_EQ(pool->instances, 1);  // one shared bus suffices
  EXPECT_TRUE(CheckAllocationCovers(model, result.value().schedule,
                                    result.value().allocation)
                  .ok());
}

}  // namespace
}  // namespace mshls
